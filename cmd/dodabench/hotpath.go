package main

// Hot-path micro-benchmarks behind the -json flag: the perf trajectory
// file BENCH_hotpath.json records ns/op and allocs/op for the engine's
// steady-state interaction loop, the concurrent runtime, the alias
// sampler, and the sweep engine's whole-fleet throughput, so future
// changes have a baseline to compare against.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"doda/internal/adversary"
	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/rng"
	"doda/internal/seq"
	"doda/internal/sim"
	"doda/internal/sweep"
)

// perInteraction reports one measured interaction loop.
type perInteraction struct {
	N                    int     `json:"n"`
	Runs                 int     `json:"runs"`
	Interactions         int64   `json:"interactions"`
	NsPerInteraction     float64 `json:"ns_per_interaction"`
	AllocsPerInteraction float64 `json:"allocs_per_interaction"`
	AllocsPerRun         float64 `json:"allocs_per_run"`
}

// perDraw reports the sampler benchmark.
type perDraw struct {
	Outcomes      int     `json:"outcomes"`
	NsPerDraw     float64 `json:"ns_per_draw"`
	AllocsPerDraw float64 `json:"allocs_per_draw"`
}

// sweepThroughput reports the fleet benchmark.
type sweepThroughput struct {
	Cells       int     `json:"cells"`
	Runs        int     `json:"runs"`
	Workers     int     `json:"workers"`
	ElapsedMs   float64 `json:"elapsed_ms"`
	CellsPerSec float64 `json:"cells_per_sec"`
}

// hotpathReport is the BENCH_hotpath.json document.
type hotpathReport struct {
	GoMaxProcs   int             `json:"gomaxprocs"`
	Engine       perInteraction  `json:"engine"`
	Sim          perInteraction  `json:"sim"`
	AliasSampler perDraw         `json:"alias_sampler"`
	WeightedGen  perDraw         `json:"weighted_gen"`
	Sweep        sweepThroughput `json:"sweep"`
}

// benchEngine measures the sequential engine's steady-state interaction
// cost: engine reuse via Reset, generated uniform adversary, Gathering.
func benchEngine(n int) (perInteraction, error) {
	cfg := core.Config{N: n, MaxInteractions: 400*n*n + 4000, VerifyAggregate: true}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return perInteraction{}, err
	}
	adv, err := adversary.NewGenerated("uniform", n, seq.UniformGen(n, rng.New(1)))
	if err != nil {
		return perInteraction{}, err
	}
	alg := algorithms.NewGathering()
	var interactions int64
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		interactions = 0
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := eng.Reset(cfg); err != nil {
				benchErr = err
				return
			}
			out, err := eng.Run(alg, adv)
			if err != nil {
				benchErr = err
				return
			}
			interactions += int64(out.Interactions)
		}
	})
	if benchErr != nil {
		return perInteraction{}, benchErr
	}
	return reduce(n, res, interactions), nil
}

// benchSim measures the concurrent runtime's per-interaction cost on the
// same workload shape (fresh runtime per run: the goroutine fleet is part
// of what it models).
func benchSim(n int) (perInteraction, error) {
	var interactions int64
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		interactions = 0
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			adv, err := adversary.NewGenerated("uniform", n, seq.UniformGen(n, rng.New(uint64(i))))
			if err != nil {
				benchErr = err
				return
			}
			rt, err := sim.NewRuntime(sim.Config{N: n, MaxInteractions: 400*n*n + 4000})
			if err != nil {
				benchErr = err
				return
			}
			out, err := rt.Run(algorithms.NewGathering(), adv)
			if err != nil {
				benchErr = err
				return
			}
			interactions += int64(out.Interactions)
		}
	})
	if benchErr != nil {
		return perInteraction{}, benchErr
	}
	return reduce(n, res, interactions), nil
}

// reduce converts a BenchmarkResult over whole runs into per-interaction
// figures.
func reduce(n int, res testing.BenchmarkResult, interactions int64) perInteraction {
	out := perInteraction{N: n, Runs: res.N, Interactions: interactions}
	if interactions > 0 {
		out.NsPerInteraction = float64(res.T.Nanoseconds()) / float64(interactions)
		out.AllocsPerInteraction = float64(res.MemAllocs) / float64(interactions)
	}
	if res.N > 0 {
		out.AllocsPerRun = float64(res.MemAllocs) / float64(res.N)
	}
	return out
}

// benchAlias measures one alias-table draw.
func benchAlias(outcomes int) (perDraw, error) {
	ws, err := adversary.ZipfWeights(outcomes, 1)
	if err != nil {
		return perDraw{}, err
	}
	table, err := rng.NewAlias(ws)
	if err != nil {
		return perDraw{}, err
	}
	src := rng.New(2)
	sink := 0
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += table.Draw(src)
		}
	})
	_ = sink
	return perDraw{
		Outcomes:      outcomes,
		NsPerDraw:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerDraw: float64(res.AllocsPerOp()),
	}, nil
}

// benchWeightedGen measures one full weighted interaction draw (two alias
// draws plus the without-replacement rejection).
func benchWeightedGen(n int) (perDraw, error) {
	ws, err := adversary.ZipfWeights(n, 1)
	if err != nil {
		return perDraw{}, err
	}
	gen, err := adversary.WeightedGen(ws, rng.New(3))
	if err != nil {
		return perDraw{}, err
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gen(i)
		}
	})
	return perDraw{
		Outcomes:      n,
		NsPerDraw:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerDraw: float64(res.AllocsPerOp()),
	}, nil
}

// benchSweep times one sharded fleet over all cores.
func benchSweep() (sweepThroughput, error) {
	grid := sweep.Grid{
		Scenarios: []sweep.ScenarioRef{
			{Name: "uniform"},
			{Name: "zipf", Params: map[string]string{"alpha": "1"}},
			{Name: "edge-markovian"},
			{Name: "community", Params: map[string]string{"communities": "2"}},
			{Name: "churn"},
		},
		Algorithms: []string{"waiting", "gathering"},
		Sizes:      []int{16, 24},
		Replicas:   5,
		Seed:       4,
	}
	workers := runtime.GOMAXPROCS(0)
	start := time.Now()
	results, totals, err := sweep.Run(grid, sweep.Options{Workers: workers})
	if err != nil {
		return sweepThroughput{}, err
	}
	elapsed := time.Since(start)
	return sweepThroughput{
		Cells:       len(results),
		Runs:        totals.Runs,
		Workers:     workers,
		ElapsedMs:   float64(elapsed.Microseconds()) / 1000,
		CellsPerSec: float64(len(results)) / elapsed.Seconds(),
	}, nil
}

// writeHotpathJSON runs the hot-path suite and writes the report to path.
func writeHotpathJSON(path string) error {
	var rep hotpathReport
	var err error
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	if rep.Engine, err = benchEngine(64); err != nil {
		return fmt.Errorf("engine benchmark: %w", err)
	}
	if rep.Sim, err = benchSim(32); err != nil {
		return fmt.Errorf("sim benchmark: %w", err)
	}
	if rep.AliasSampler, err = benchAlias(1024); err != nil {
		return fmt.Errorf("alias benchmark: %w", err)
	}
	if rep.WeightedGen, err = benchWeightedGen(1024); err != nil {
		return fmt.Errorf("weighted-gen benchmark: %w", err)
	}
	if rep.Sweep, err = benchSweep(); err != nil {
		return fmt.Errorf("sweep benchmark: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
