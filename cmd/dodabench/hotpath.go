package main

// Hot-path micro-benchmarks behind the -json flag: the perf trajectory
// file BENCH_hotpath.json records ns/op and allocs/op for the engine's
// steady-state interaction loop (scalar and batched), the concurrent
// runtime, the alias sampler, the large-n engine configurations, and the
// sweep engine's whole-fleet throughput, so future changes have a
// baseline to compare against (see compare.go for the regression guard).

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"doda/internal/adversary"
	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/rng"
	"doda/internal/seq"
	"doda/internal/sim"
	"doda/internal/sweep"
	"doda/internal/sweepd"
)

// perInteraction reports one measured interaction loop.
type perInteraction struct {
	N                    int     `json:"n"`
	Runs                 int     `json:"runs"`
	Interactions         int64   `json:"interactions"`
	NsPerInteraction     float64 `json:"ns_per_interaction"`
	AllocsPerInteraction float64 `json:"allocs_per_interaction"`
	AllocsPerRun         float64 `json:"allocs_per_run"`
}

// perDraw reports the sampler benchmark.
type perDraw struct {
	Outcomes      int     `json:"outcomes"`
	NsPerDraw     float64 `json:"ns_per_draw"`
	AllocsPerDraw float64 `json:"allocs_per_draw"`
}

// sweepThroughput reports the fleet benchmark.
type sweepThroughput struct {
	Cells       int     `json:"cells"`
	Runs        int     `json:"runs"`
	Workers     int     `json:"workers"`
	ElapsedMs   float64 `json:"elapsed_ms"`
	CellsPerSec float64 `json:"cells_per_sec"`
}

// largeNReport compares the scalar full-provenance engine against the
// batched count-only configuration on one identical large-n workload
// (same seed, same interaction sequence, run to termination).
type largeNReport struct {
	N                  int     `json:"n"`
	Interactions       int64   `json:"interactions"`
	ScalarFullNs       float64 `json:"scalar_full_ns_per_interaction"`
	BatchedCountNs     float64 `json:"batched_count_ns_per_interaction"`
	Speedup            float64 `json:"speedup_x"`
	BatchedCountPerSec float64 `json:"batched_count_interactions_per_sec"`
}

// sweepLargeNReport is one capped very-large-n run through the sweep
// engine (count-only provenance under the auto default).
type sweepLargeNReport struct {
	N               int     `json:"n"`
	MaxInteractions int     `json:"max_interactions"`
	Provenance      string  `json:"provenance"`
	Interactions    float64 `json:"interactions"`
	Transmissions   int     `json:"transmissions"`
	ElapsedMs       float64 `json:"elapsed_ms"`
	PerSec          float64 `json:"interactions_per_sec"`
}

// sweepProgressOverhead reports what the observability layer costs: the
// same checkpointed fleet run with progress tracking disabled and with
// the default throttled progress record, paired and min-of-trials on
// both sides to squeeze out scheduler noise. OverheadFrac is gated
// absolutely (not baseline-relative) in compare.go: the per-replica
// accounting and throttled advisory writes must stay under 2% of sweep
// throughput, or watching a fleet would slow the fleet down.
type sweepProgressOverhead struct {
	Cells           int     `json:"cells"`
	Trials          int     `json:"trials"`
	BaseMs          float64 `json:"base_ms"`
	InstrumentedMs  float64 `json:"instrumented_ms"`
	BaseCellsPerSec float64 `json:"base_cells_per_sec"`
	OverheadFrac    float64 `json:"overhead_frac"`
}

// hotpathReport is the BENCH_hotpath.json document. CalibrationNs is a
// fixed pure-CPU reference loop (rng.Uint64) measured alongside the
// tracked metrics: the regression guard divides out the ratio of the two
// reports' calibrations, so comparing a laptop baseline against a CI
// runner gates on code changes rather than on hardware identity.
type hotpathReport struct {
	GoMaxProcs    int                   `json:"gomaxprocs"`
	CalibrationNs float64               `json:"calibration_ns"`
	Engine        perInteraction        `json:"engine"`
	EngineBatched perInteraction        `json:"engine_batched"`
	Sim           perInteraction        `json:"sim"`
	SimSharded    perInteraction        `json:"sim_sharded"`
	AliasSampler  perDraw               `json:"alias_sampler"`
	WeightedGen   perDraw               `json:"weighted_gen"`
	LargeN        largeNReport          `json:"large_n"`
	Sweep         sweepThroughput       `json:"sweep"`
	SweepLargeN   sweepLargeNReport     `json:"sweep_large_n"`
	SweepProgress sweepProgressOverhead `json:"sweep_progress_overhead"`
	ServeLoad     serveLoadReport       `json:"serve_load"`
	ServeDensity  serveDensityReport    `json:"serve_density"`
}

// benchEngine measures the sequential engine's steady-state interaction
// cost: engine reuse via Reset, generated uniform adversary, Gathering.
// batched selects the BatchAdversary drain path; scalar runs force the
// per-interaction Next path the engine used before batching existed.
func benchEngine(n int, batched bool) (perInteraction, error) {
	cfg := core.Config{N: n, MaxInteractions: 400*n*n + 4000, VerifyAggregate: true, DisableBatch: !batched}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return perInteraction{}, err
	}
	adv, err := adversary.NewGenerated("uniform", n, seq.UniformGen(n, rng.New(1)))
	if err != nil {
		return perInteraction{}, err
	}
	alg := algorithms.NewGathering()
	var interactions int64
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		interactions = 0
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := eng.Reset(cfg); err != nil {
				benchErr = err
				return
			}
			out, err := eng.Run(alg, adv)
			if err != nil {
				benchErr = err
				return
			}
			interactions += int64(out.Interactions)
		}
	})
	if benchErr != nil {
		return perInteraction{}, benchErr
	}
	return reduce(n, res, interactions), nil
}

// benchSim measures the concurrent sharded runtime's steady-state
// per-interaction cost, mirroring benchEngine: one persistent runtime
// (worker fleet included) re-armed via Reset per run, one endless
// generated adversary — so the figure tracks the scheduler's hot path,
// not per-run construction, exactly like the engine figure it is
// compared against. shards = 0 takes the auto default.
func benchSim(n, shards int) (perInteraction, error) {
	cfg := sim.Config{N: n, MaxInteractions: 400*n*n + 4000, Shards: shards}
	rt, err := sim.NewRuntime(cfg)
	if err != nil {
		return perInteraction{}, err
	}
	defer rt.Close()
	gen, err := adversary.NewGenerated("uniform", n, seq.UniformGen(n, rng.New(1)))
	if err != nil {
		return perInteraction{}, err
	}
	// Hoisted interface conversions: boxing per run would be measured as
	// a scheduler allocation.
	var adv core.Adversary = gen
	var alg core.Algorithm = algorithms.NewGathering()
	var interactions int64
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		interactions = 0
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := rt.Reset(cfg); err != nil {
				benchErr = err
				return
			}
			out, err := rt.Run(alg, adv)
			if err != nil {
				benchErr = err
				return
			}
			interactions += int64(out.Interactions)
		}
	})
	if benchErr != nil {
		return perInteraction{}, benchErr
	}
	return reduce(n, res, interactions), nil
}

// reduce converts a BenchmarkResult over whole runs into per-interaction
// figures.
func reduce(n int, res testing.BenchmarkResult, interactions int64) perInteraction {
	out := perInteraction{N: n, Runs: res.N, Interactions: interactions}
	if interactions > 0 {
		out.NsPerInteraction = float64(res.T.Nanoseconds()) / float64(interactions)
		out.AllocsPerInteraction = float64(res.MemAllocs) / float64(interactions)
	}
	if res.N > 0 {
		out.AllocsPerRun = float64(res.MemAllocs) / float64(res.N)
	}
	return out
}

// benchAlias measures one alias-table draw.
func benchAlias(outcomes int) (perDraw, error) {
	ws, err := adversary.ZipfWeights(outcomes, 1)
	if err != nil {
		return perDraw{}, err
	}
	table, err := rng.NewAlias(ws)
	if err != nil {
		return perDraw{}, err
	}
	src := rng.New(2)
	sink := 0
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += table.Draw(src)
		}
	})
	_ = sink
	return perDraw{
		Outcomes:      outcomes,
		NsPerDraw:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerDraw: float64(res.AllocsPerOp()),
	}, nil
}

// benchWeightedGen measures one full weighted interaction draw (two alias
// draws plus the without-replacement rejection).
func benchWeightedGen(n int) (perDraw, error) {
	ws, err := adversary.ZipfWeights(n, 1)
	if err != nil {
		return perDraw{}, err
	}
	gen, err := adversary.WeightedGen(ws, rng.New(3))
	if err != nil {
		return perDraw{}, err
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gen(i)
		}
	})
	return perDraw{
		Outcomes:      n,
		NsPerDraw:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerDraw: float64(res.AllocsPerOp()),
	}, nil
}

// largeNRun plays one uniform Gathering run to termination and times it.
func largeNRun(n int, seed uint64, prov core.ProvenanceMode, disableBatch bool) (int64, time.Duration, error) {
	cfg := core.Config{
		N: n, MaxInteractions: 400*n*n + 4000, VerifyAggregate: true,
		Provenance: prov, DisableBatch: disableBatch,
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return 0, 0, err
	}
	adv, err := adversary.NewGenerated("uniform", n, seq.UniformGen(n, rng.New(seed)))
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	out, err := eng.Run(algorithms.NewGathering(), adv)
	elapsed := time.Since(start)
	if err != nil {
		return 0, 0, err
	}
	if !out.Terminated {
		return 0, 0, fmt.Errorf("large-n run (n=%d) did not terminate", n)
	}
	return int64(out.Interactions), elapsed, nil
}

// benchLargeN is the uniform-adversary min sweep at large n: the same
// seeded interaction sequence played once through the scalar engine with
// full provenance (the pre-batching configuration) and once through the
// batched engine with count-only provenance. Same seed means both runs
// consume the identical interaction sequence, so the ratio is a clean
// apples-to-apples speedup.
func benchLargeN(n int) (largeNReport, error) {
	const seed = 5
	scalarIts, scalarT, err := largeNRun(n, seed, core.ProvenanceFull, true)
	if err != nil {
		return largeNReport{}, err
	}
	batchIts, batchT, err := largeNRun(n, seed, core.ProvenanceCount, false)
	if err != nil {
		return largeNReport{}, err
	}
	if scalarIts != batchIts {
		return largeNReport{}, fmt.Errorf("large-n paths diverged: %d vs %d interactions", scalarIts, batchIts)
	}
	rep := largeNReport{
		N:              n,
		Interactions:   batchIts,
		ScalarFullNs:   float64(scalarT.Nanoseconds()) / float64(scalarIts),
		BatchedCountNs: float64(batchT.Nanoseconds()) / float64(batchIts),
	}
	if rep.BatchedCountNs > 0 {
		rep.Speedup = rep.ScalarFullNs / rep.BatchedCountNs
		rep.BatchedCountPerSec = 1e9 / rep.BatchedCountNs
	}
	return rep, nil
}

// benchSweepLargeN pushes one n = 131072 cell through the sweep engine:
// capped (a full Gathering termination at that size needs ~10¹⁰
// interactions), with the auto provenance default resolving to
// count-only — full bitsets would need ~2 GB at this size.
func benchSweepLargeN() (sweepLargeNReport, error) {
	const n = 128 * 1024
	const cap = 2 << 20
	grid := sweep.Grid{
		Scenarios:       []sweep.ScenarioRef{{Name: "uniform"}},
		Algorithms:      []string{"gathering"},
		Sizes:           []int{n},
		Replicas:        1,
		Seed:            6,
		MaxInteractions: cap,
	}
	start := time.Now()
	results, totals, err := sweep.Run(grid, sweep.Options{Workers: 1})
	if err != nil {
		return sweepLargeNReport{}, err
	}
	elapsed := time.Since(start)
	rep := sweepLargeNReport{
		N:               n,
		MaxInteractions: cap,
		Provenance:      results[0].Provenance,
		Interactions:    totals.Interactions,
		Transmissions:   results[0].Transmissions,
		ElapsedMs:       float64(elapsed.Microseconds()) / 1000,
	}
	if elapsed > 0 {
		rep.PerSec = totals.Interactions / elapsed.Seconds()
	}
	return rep, nil
}

// benchSweep times one sharded fleet over all cores.
func benchSweep() (sweepThroughput, error) {
	grid := sweep.Grid{
		Scenarios: []sweep.ScenarioRef{
			{Name: "uniform"},
			{Name: "zipf", Params: map[string]string{"alpha": "1"}},
			{Name: "edge-markovian"},
			{Name: "community", Params: map[string]string{"communities": "2"}},
			{Name: "churn"},
		},
		Algorithms: []string{"waiting", "gathering"},
		Sizes:      []int{16, 24},
		Replicas:   5,
		Seed:       4,
	}
	workers := runtime.GOMAXPROCS(0)
	start := time.Now()
	results, totals, err := sweep.Run(grid, sweep.Options{Workers: workers})
	if err != nil {
		return sweepThroughput{}, err
	}
	elapsed := time.Since(start)
	return sweepThroughput{
		Cells:       len(results),
		Runs:        totals.Runs,
		Workers:     workers,
		ElapsedMs:   float64(elapsed.Microseconds()) / 1000,
		CellsPerSec: float64(len(results)) / elapsed.Seconds(),
	}, nil
}

// benchSweepProgress times the same checkpointed fleet with progress
// tracking off (ProgressEvery < 0: no per-replica accounting, no
// advisory writes) and on (the default 500ms throttle), interleaved
// A/B/A/B so load shifts hit both sides, taking the min per side. Each
// trial journals into a fresh directory — checkpoints have exactly one
// writer and are never reused.
func benchSweepProgress() (sweepProgressOverhead, error) {
	// Big enough that one trial runs a few hundred ms: the gate measures
	// throughput overhead, and a realistic shard runs minutes — a trial
	// so short that two fixed advisory-file writes register would gate
	// on constants no real fleet can observe.
	grid := sweep.Grid{
		Scenarios: []sweep.ScenarioRef{
			{Name: "uniform"},
			{Name: "zipf", Params: map[string]string{"alpha": "1"}},
			{Name: "churn"},
		},
		Algorithms: []string{"waiting", "gathering"},
		Sizes:      []int{32, 48, 64},
		Replicas:   10,
		Seed:       8,
	}
	cells, err := grid.Cells()
	if err != nil {
		return sweepProgressOverhead{}, err
	}
	trial := func(every time.Duration) (time.Duration, error) {
		dir, err := os.MkdirTemp("", "dodabench-progress-")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		start := time.Now()
		_, _, err = sweepd.Run(grid, filepath.Join(dir, "ck"), sweepd.Options{
			Workers:       runtime.GOMAXPROCS(0),
			ProgressEvery: every,
		})
		return time.Since(start), err
	}
	// One discarded warmup pair first: the initial trial pays one-off
	// costs (page cache, scheduler ramp-up, JIT-warmed branch predictors)
	// that would otherwise inflate whichever side happens to run first
	// and distort the overhead fraction.
	if _, err := trial(-1); err != nil {
		return sweepProgressOverhead{}, err
	}
	if _, err := trial(0); err != nil {
		return sweepProgressOverhead{}, err
	}
	const trials = 6
	minBase, minInst := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < trials; i++ {
		b, err := trial(-1)
		if err != nil {
			return sweepProgressOverhead{}, err
		}
		inst, err := trial(0)
		if err != nil {
			return sweepProgressOverhead{}, err
		}
		if b < minBase {
			minBase = b
		}
		if inst < minInst {
			minInst = inst
		}
	}
	rep := sweepProgressOverhead{
		Cells:          len(cells),
		Trials:         trials,
		BaseMs:         float64(minBase.Microseconds()) / 1000,
		InstrumentedMs: float64(minInst.Microseconds()) / 1000,
	}
	if minBase > 0 {
		rep.BaseCellsPerSec = float64(len(cells)) / minBase.Seconds()
		if frac := float64(minInst)/float64(minBase) - 1; frac > 0 {
			rep.OverheadFrac = frac
		}
	}
	return rep, nil
}

// benchCalibration times the reference loop: one xoshiro draw, a hot
// pure-CPU operation no perf PR is likely to touch.
func benchCalibration() float64 {
	src := rng.New(1)
	var sink uint64
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += src.Uint64()
		}
	})
	_ = sink
	return float64(res.T.Nanoseconds()) / float64(res.N)
}

// collectHotpath runs the whole hot-path suite.
func collectHotpath() (*hotpathReport, error) {
	var rep hotpathReport
	var err error
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.CalibrationNs = benchCalibration()
	if rep.Engine, err = benchEngine(64, false); err != nil {
		return nil, fmt.Errorf("engine benchmark: %w", err)
	}
	if rep.EngineBatched, err = benchEngine(64, true); err != nil {
		return nil, fmt.Errorf("batched engine benchmark: %w", err)
	}
	if rep.Sim, err = benchSim(32, 0); err != nil {
		return nil, fmt.Errorf("sim benchmark: %w", err)
	}
	if rep.SimSharded, err = benchSim(256, 4); err != nil {
		return nil, fmt.Errorf("sharded sim benchmark: %w", err)
	}
	if rep.AliasSampler, err = benchAlias(1024); err != nil {
		return nil, fmt.Errorf("alias benchmark: %w", err)
	}
	if rep.WeightedGen, err = benchWeightedGen(1024); err != nil {
		return nil, fmt.Errorf("weighted-gen benchmark: %w", err)
	}
	if rep.LargeN, err = benchLargeN(4096); err != nil {
		return nil, fmt.Errorf("large-n benchmark: %w", err)
	}
	if rep.Sweep, err = benchSweep(); err != nil {
		return nil, fmt.Errorf("sweep benchmark: %w", err)
	}
	if rep.SweepLargeN, err = benchSweepLargeN(); err != nil {
		return nil, fmt.Errorf("large-n sweep benchmark: %w", err)
	}
	if rep.SweepProgress, err = benchSweepProgress(); err != nil {
		return nil, fmt.Errorf("sweep progress-overhead benchmark: %w", err)
	}
	if rep.ServeLoad, err = benchServeLoad(); err != nil {
		return nil, fmt.Errorf("serve load benchmark: %w", err)
	}
	if rep.ServeDensity, err = benchServeDensity(); err != nil {
		return nil, fmt.Errorf("serve density benchmark: %w", err)
	}
	return &rep, nil
}

// writeReportJSON writes rep to path atomically (temp file + rename), so
// an interrupted run can never leave a truncated trajectory file behind.
func writeReportJSON(rep *hotpathReport, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// writeHotpathJSON runs the hot-path suite and writes the report to path.
func writeHotpathJSON(path string) (*hotpathReport, error) {
	rep, err := collectHotpath()
	if err != nil {
		return nil, err
	}
	if err := writeReportJSON(rep, path); err != nil {
		return nil, err
	}
	return rep, nil
}
