// Command dodabench regenerates the paper's results: it runs the
// experiment suite (E1–E14 reproduce every theorem, lemma and corollary;
// A1–A2 are ablations) and prints paper-vs-measured tables with
// PASS/FAIL verdicts. EXPERIMENTS.md records a full-scale run.
//
// Usage:
//
//	dodabench                  # run everything at quick scale
//	dodabench -scale full      # the EXPERIMENTS.md configuration
//	dodabench -run E10,E12     # a subset
//	dodabench -list            # list experiment ids
//	dodabench -csv out/        # also write each table as CSV
//	dodabench -json BENCH_hotpath.json  # hot-path perf baseline instead
//	dodabench -json new.json -baseline BENCH_hotpath.json  # + regression guard
//	dodabench -run S1 -report scaling.md   # + scaling-law fits (EXPERIMENTS.md section)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"doda/internal/experiments"
	"doda/internal/parallel"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dodabench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dodabench", flag.ContinueOnError)
	var (
		scaleName = fs.String("scale", "quick", "experiment scale: quick | full")
		runIDs    = fs.String("run", "", "comma-separated experiment ids (default: all)")
		seed      = fs.Uint64("seed", 12345, "base seed; same seed reproduces the report")
		list      = fs.Bool("list", false, "list experiments and exit")
		csvDir    = fs.String("csv", "", "directory to write per-table CSV files")
		progress  = fs.Bool("progress", false, "print sweep progress")
		ckptDir   = fs.String("checkpoint", "", "journal the sweep-backed experiments' (S1/S2) grid cells under this directory and resume past them on restart — lets a killed full-scale suite pick up where it stopped")
		report    = fs.String("report", "", "after the experiments, run the scaling-law grid, print the fitted-exponent table, and write the EXPERIMENTS.md-ready section to this file")
		workers   = fs.Int("parallel", 1, "run experiments concurrently on this many workers (numbers are unchanged: every experiment derives its own seed)")
		jsonPath  = fs.String("json", "", "run the hot-path micro-benchmarks and write ns/op and allocs/op to this file (e.g. BENCH_hotpath.json), skipping the experiments")
		baseline  = fs.String("baseline", "", "with -json: compare the fresh report against this committed baseline and fail on regressions")
		tolerance = fs.Float64("tolerance", 0.25, "with -baseline: fail when a tracked ns metric regresses by more than this fraction")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf   = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dodabench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dodabench: memprofile:", err)
			}
		}()
	}

	if *jsonPath != "" {
		if *report != "" {
			return fmt.Errorf("-report cannot be combined with -json (the hot-path benchmark run skips the experiments and the scaling grid)")
		}
		rep, err := writeHotpathJSON(*jsonPath)
		if err != nil {
			return err
		}
		fmt.Printf("hot-path benchmark report written to %s\n", *jsonPath)
		if *baseline != "" {
			return compareBaseline(rep, *baseline, *tolerance, os.Stdout)
		}
		return nil
	}
	if *baseline != "" {
		return fmt.Errorf("-baseline requires -json")
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Name, e.PaperClaim)
		}
		return nil
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.ScaleQuick
	case "full":
		scale = experiments.ScaleFull
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}

	var selected []experiments.Experiment
	if *runIDs == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(experiments.IDs(), ", "))
			}
			selected = append(selected, e)
		}
	}

	cfg := experiments.Config{Scale: scale, Seed: *seed, CheckpointDir: *ckptDir}
	if *progress {
		cfg.Progress = os.Stderr
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	if *workers < 1 {
		*workers = runtime.GOMAXPROCS(0)
	}

	type outcome struct {
		rep     *experiments.Report
		elapsed time.Duration
	}
	failures := 0
	start := time.Now()
	outcomes, err := parallel.Map(len(selected), *workers, func(i int) (outcome, error) {
		t0 := time.Now()
		rep, err := selected[i].Run(cfg)
		if err != nil {
			return outcome{}, fmt.Errorf("%s: %w", selected[i].ID, err)
		}
		return outcome{rep: rep, elapsed: time.Since(t0)}, nil
	})
	if err != nil {
		return err
	}
	for i, e := range selected {
		rep := outcomes[i].rep
		if err := rep.Format(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("   (%s)\n\n", outcomes[i].elapsed.Round(time.Millisecond))
		if !rep.Pass() {
			failures++
		}
		if *csvDir != "" {
			for ti, tb := range rep.Tables {
				name := filepath.Join(*csvDir, fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), ti))
				f, err := os.Create(name)
				if err != nil {
					return err
				}
				if err := tb.CSV(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
		}
	}
	fmt.Printf("suite: %d experiments, %d failed, %s total (scale=%s, seed=%d)\n",
		len(selected), failures, time.Since(start).Round(time.Millisecond), scale, *seed)
	// Write the scaling report even when experiments failed: the grid is
	// independent of the verdicts, and on a full-scale checkpointed run
	// the report is the artifact hours of sweeping were spent on.
	if *report != "" {
		fmt.Println()
		if err := writeScalingReport(*report, scale, *seed, *ckptDir, os.Stdout); err != nil {
			return err
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed", failures)
	}
	return nil
}
