package main

// The -report path: run the standard scaling-law grid (analysis.
// ReportGrid), extract the cross-cell fits, append the fitted-exponent
// table to the suite's stdout, and write the EXPERIMENTS.md-ready
// "Scaling laws" section to the requested file. With -checkpoint set the
// grid runs through the resumable sweep service under <dir>/scaling, so
// a killed full-scale report run picks up where it stopped.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"doda/internal/analysis"
	"doda/internal/experiments"
	"doda/internal/sweep"
	"doda/internal/sweepd"
)

// fullScaleReportCmd is the command EXPERIMENTS.md records for
// regenerating the section at paper scale.
const fullScaleReportCmd = "go run ./cmd/dodabench -run S1 -scale full -seed 12345 -checkpoint ckpt/ -report scaling.md"

// writeScalingReport runs the report grid, prints the selection table to
// out, and writes the markdown section to path.
func writeScalingReport(path string, scale experiments.Scale, seed uint64, checkpointDir string, out io.Writer) error {
	full := scale == experiments.ScaleFull
	grid := analysis.ReportGrid(full, seed)
	var (
		results []sweep.CellResult
		err     error
	)
	if checkpointDir != "" {
		dir := filepath.Join(checkpointDir, "scaling")
		results, _, err = sweepd.Run(grid, dir, sweepd.Options{Resume: true})
	} else {
		results, _, err = sweep.Run(grid, sweep.Options{})
	}
	if err != nil {
		return fmt.Errorf("scaling report: %w", err)
	}
	a, err := analysis.Analyze(results, analysis.Options{Seed: seed})
	if err != nil {
		return fmt.Errorf("scaling report: %w", err)
	}
	a.Grid = &grid

	tb := &experiments.Table{
		Title:   fmt.Sprintf("Scaling laws (scale=%s): AIC selection over the candidate forms", scale),
		Columns: []string{"scenario", "algorithm", "predicted", "selected", "c", "c 95% CI", "exponent", "exp 95% CI", "R2"},
	}
	for _, row := range analysis.SummaryRows(a) {
		cells := make([]any, len(row))
		for i, c := range row {
			cells[i] = c
		}
		tb.AddRow(cells...)
	}
	if err := tb.Format(out); err != nil {
		return err
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := analysis.WriteExperimentsSection(f, a, analysis.ScaleName(full), fullScaleReportCmd); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nscaling-law section written to %s\n", path)
	return nil
}
