package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "E5", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSubsetWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-run", "E5,E1", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Errorf("expected CSV files, got %v", entries)
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty CSV")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run([]string{"-scale", "medium"}); err == nil {
		t.Error("unknown scale should fail")
	}
}

func TestRunParallelMatchesSequentialVerdicts(t *testing.T) {
	// Experiment numbers derive only from per-experiment seeds, so the
	// parallel path must produce passing reports too.
	if err := run([]string{"-run", "E5,E1,E4", "-parallel", "3", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelAutoWorkers(t *testing.T) {
	if err := run([]string{"-run", "E5", "-parallel", "0"}); err != nil {
		t.Fatal(err)
	}
}
