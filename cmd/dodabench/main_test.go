package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "E5", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSubsetWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-run", "E5,E1", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Errorf("expected CSV files, got %v", entries)
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty CSV")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run([]string{"-scale", "medium"}); err == nil {
		t.Error("unknown scale should fail")
	}
}

func TestRunParallelMatchesSequentialVerdicts(t *testing.T) {
	// Experiment numbers derive only from per-experiment seeds, so the
	// parallel path must produce passing reports too.
	if err := run([]string{"-run", "E5,E1,E4", "-parallel", "3", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelAutoWorkers(t *testing.T) {
	if err := run([]string{"-run", "E5", "-parallel", "0"}); err != nil {
		t.Fatal(err)
	}
}

// TestHotpathJSON exercises the -json perf-baseline mode end to end and
// pins the zero-allocation contract in the emitted report.
func TestHotpathJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "BENCH_hotpath.json")
	if err := run([]string{"-json", path}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep hotpathReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, raw)
	}
	if rep.Engine.NsPerInteraction <= 0 || rep.Engine.Interactions == 0 {
		t.Errorf("engine section empty: %+v", rep.Engine)
	}
	// The benchmark counter is process-wide, so unrelated goroutines can
	// leak fractional allocations into it; anything ≥ 1 per run is a
	// real hot-path regression (the exact 0-allocs gate lives in
	// internal/core's AllocsPerRun test).
	if rep.Engine.AllocsPerRun >= 1 {
		t.Errorf("engine steady state allocates %v per run, want < 1", rep.Engine.AllocsPerRun)
	}
	if rep.AliasSampler.AllocsPerDraw != 0 {
		t.Errorf("alias draw allocates %v, want 0", rep.AliasSampler.AllocsPerDraw)
	}
	if rep.Sim.NsPerInteraction <= 0 || rep.WeightedGen.NsPerDraw <= 0 {
		t.Errorf("sim/weighted sections empty: %+v / %+v", rep.Sim, rep.WeightedGen)
	}
	if rep.Sweep.Cells == 0 || rep.Sweep.CellsPerSec <= 0 {
		t.Errorf("sweep section empty: %+v", rep.Sweep)
	}
	if rep.EngineBatched.NsPerInteraction <= 0 || rep.EngineBatched.AllocsPerRun >= 1 {
		t.Errorf("batched engine section bad: %+v", rep.EngineBatched)
	}
	if rep.LargeN.N != 4096 || rep.LargeN.BatchedCountNs <= 0 || rep.LargeN.BatchedCountPerSec <= 0 {
		t.Errorf("large-n section bad: %+v", rep.LargeN)
	}
	if rep.SweepLargeN.N != 128*1024 || rep.SweepLargeN.Provenance != "count" ||
		rep.SweepLargeN.Interactions <= 0 || rep.SweepLargeN.PerSec <= 0 {
		t.Errorf("large-n sweep section bad: %+v", rep.SweepLargeN)
	}
	if rep.SweepProgress.Trials == 0 || rep.SweepProgress.Cells == 0 ||
		rep.SweepProgress.BaseMs <= 0 || rep.SweepProgress.InstrumentedMs <= 0 {
		t.Errorf("progress-overhead section bad: %+v", rep.SweepProgress)
	}
	if rep.ServeLoad.Instances == 0 || rep.ServeLoad.EphemeralNsPerOp <= 0 ||
		rep.ServeLoad.DurablePerSec <= 0 || rep.ServeLoad.DurableP99Ms <= 0 ||
		rep.ServeLoad.DurableP99Ms < rep.ServeLoad.DurableP50Ms {
		t.Errorf("serve-load section bad: %+v", rep.ServeLoad)
	}
	t.Logf("sweep_progress_overhead: %+v", rep.SweepProgress)
	t.Logf("serve_load: %+v", rep.ServeLoad)
}

// TestCompareBaseline unit-tests the regression guard against synthetic
// reports: an improvement passes, a >tolerance regression fails, and a
// missing metric is skipped rather than failing.
func TestCompareBaseline(t *testing.T) {
	dir := t.TempDir()
	base := hotpathReport{}
	base.Engine.NsPerInteraction = 100
	base.EngineBatched.NsPerInteraction = 80
	base.Sim.NsPerInteraction = 1000
	base.AliasSampler.NsPerDraw = 10
	base.WeightedGen.NsPerDraw = 20
	// LargeN left zero: the baseline predates the section → skipped.
	basePath := filepath.Join(dir, "base.json")
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(basePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh := base
	fresh.Engine.NsPerInteraction = 110 // +10%: inside tolerance
	fresh.LargeN.BatchedCountNs = 15
	var out strings.Builder
	if err := compareBaseline(&fresh, basePath, 0.25, &out); err != nil {
		t.Errorf("within-tolerance report failed: %v\n%s", err, out.String())
	}

	slow := base
	slow.Sim.NsPerInteraction = 1500 // +50%: regression
	out.Reset()
	err = compareBaseline(&slow, basePath, 0.25, &out)
	if err == nil {
		t.Fatalf("regression not detected:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "sim.ns_per_interaction") {
		t.Errorf("error %q does not name the regressed metric", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("diff output missing REGRESSION marker:\n%s", out.String())
	}

	if err := compareBaseline(&fresh, filepath.Join(dir, "missing.json"), 0.25, &out); err == nil {
		t.Error("missing baseline file must fail")
	}
}

// TestCompareBaselineCalibration checks the cross-machine rescaling: a
// uniformly slower machine (every metric and the calibration loop 2×
// slower) is not a regression, while a metric that lags its machine is.
func TestCompareBaselineCalibration(t *testing.T) {
	dir := t.TempDir()
	base := hotpathReport{CalibrationNs: 10}
	base.Engine.NsPerInteraction = 100
	base.Sim.NsPerInteraction = 1000
	basePath := filepath.Join(dir, "base.json")
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(basePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	slowMachine := hotpathReport{CalibrationNs: 20}
	slowMachine.Engine.NsPerInteraction = 200
	slowMachine.Sim.NsPerInteraction = 2000
	var out strings.Builder
	if err := compareBaseline(&slowMachine, basePath, 0.25, &out); err != nil {
		t.Errorf("uniformly slower machine flagged as regression: %v\n%s", err, out.String())
	}

	realRegression := slowMachine
	realRegression.Engine.NsPerInteraction = 300 // 1.5× its own machine
	out.Reset()
	if err := compareBaseline(&realRegression, basePath, 0.25, &out); err == nil {
		t.Errorf("machine-relative regression not detected:\n%s", out.String())
	}
}

// TestProgressOverheadGate unit-tests the absolute observability-cost
// ceiling: a report over the 2% line fails regardless of baseline, one
// under it passes, and a baseline predating the section is skipped.
func TestProgressOverheadGate(t *testing.T) {
	dir := t.TempDir()
	base := hotpathReport{}
	base.Engine.NsPerInteraction = 100
	basePath := filepath.Join(dir, "base.json")
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(basePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh := base
	fresh.SweepProgress = sweepProgressOverhead{Cells: 12, Trials: 4, BaseMs: 100, InstrumentedMs: 101, OverheadFrac: 0.01}
	var out strings.Builder
	if err := compareBaseline(&fresh, basePath, 0.25, &out); err != nil {
		t.Errorf("1%% overhead failed the 2%% gate: %v\n%s", err, out.String())
	}

	hot := fresh
	hot.SweepProgress.InstrumentedMs = 110
	hot.SweepProgress.OverheadFrac = 0.10
	out.Reset()
	err = compareBaseline(&hot, basePath, 0.25, &out)
	if err == nil || !strings.Contains(err.Error(), "progress instrumentation") {
		t.Errorf("10%% overhead passed the gate: %v\n%s", err, out.String())
	}

	// No section at all (an old report): skipped, not failed.
	out.Reset()
	if err := compareBaseline(&base, basePath, 0.25, &out); err != nil {
		t.Errorf("missing section failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "skipped") {
		t.Errorf("missing section not reported as skipped:\n%s", out.String())
	}
}

// TestBaselineRequiresJSON pins the flag contract.
func TestBaselineRequiresJSON(t *testing.T) {
	if err := run([]string{"-baseline", "BENCH_hotpath.json"}); err == nil {
		t.Error("-baseline without -json should fail")
	}
}

// TestReportAtomicWrite checks that a pre-existing report is replaced via
// rename, no .tmp file survives, and a write failure leaves the old file
// untouched.
func TestReportAtomicWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_hotpath.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := &hotpathReport{GoMaxProcs: 3}
	if err := writeReportJSON(rep, path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got hotpathReport
	if err := json.Unmarshal(raw, &got); err != nil || got.GoMaxProcs != 3 {
		t.Fatalf("rewritten report bad: %v\n%s", err, raw)
	}

	// A path whose temp file cannot be created must not touch the report.
	bad := filepath.Join(t.TempDir(), "no-such-dir", "report.json")
	if err := writeReportJSON(rep, bad); err == nil {
		t.Error("unwritable path should fail")
	}
}
