package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "E5", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSubsetWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-run", "E5,E1", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Errorf("expected CSV files, got %v", entries)
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty CSV")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run([]string{"-scale", "medium"}); err == nil {
		t.Error("unknown scale should fail")
	}
}

func TestRunParallelMatchesSequentialVerdicts(t *testing.T) {
	// Experiment numbers derive only from per-experiment seeds, so the
	// parallel path must produce passing reports too.
	if err := run([]string{"-run", "E5,E1,E4", "-parallel", "3", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelAutoWorkers(t *testing.T) {
	if err := run([]string{"-run", "E5", "-parallel", "0"}); err != nil {
		t.Fatal(err)
	}
}

// TestHotpathJSON exercises the -json perf-baseline mode end to end and
// pins the zero-allocation contract in the emitted report.
func TestHotpathJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "BENCH_hotpath.json")
	if err := run([]string{"-json", path}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep hotpathReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, raw)
	}
	if rep.Engine.NsPerInteraction <= 0 || rep.Engine.Interactions == 0 {
		t.Errorf("engine section empty: %+v", rep.Engine)
	}
	// The benchmark counter is process-wide, so unrelated goroutines can
	// leak fractional allocations into it; anything ≥ 1 per run is a
	// real hot-path regression (the exact 0-allocs gate lives in
	// internal/core's AllocsPerRun test).
	if rep.Engine.AllocsPerRun >= 1 {
		t.Errorf("engine steady state allocates %v per run, want < 1", rep.Engine.AllocsPerRun)
	}
	if rep.AliasSampler.AllocsPerDraw != 0 {
		t.Errorf("alias draw allocates %v, want 0", rep.AliasSampler.AllocsPerDraw)
	}
	if rep.Sim.NsPerInteraction <= 0 || rep.WeightedGen.NsPerDraw <= 0 {
		t.Errorf("sim/weighted sections empty: %+v / %+v", rep.Sim, rep.WeightedGen)
	}
	if rep.Sweep.Cells == 0 || rep.Sweep.CellsPerSec <= 0 {
		t.Errorf("sweep section empty: %+v", rep.Sweep)
	}
}
