package main

// The serve density benchmark behind the serve_density section: how
// many registered instances one dodaserve process can hold when a live
// cap keeps most of them evicted to their journals. Live instances pay
// their arena (one contiguous block sized by (n, provenance)); evicted
// ones pay only bookkeeping — the instance struct, its name, a closed
// journal. The committed bytes/instance figure is the density claim the
// -baseline gate holds the code to.

import (
	"fmt"
	"os"
	"runtime"

	"doda/internal/core"
	"doda/internal/serve"
)

// serveDensityReport is the serve_density section of BENCH_hotpath.json.
type serveDensityReport struct {
	Instances  int    `json:"instances"`
	LiveCap    int    `json:"live_cap"`
	N          int    `json:"n"`
	Provenance string `json:"provenance"`
	// ArenaBytesPerLive is the deterministic arena footprint of one live
	// instance: core.ArenaBytes(n, provenance).
	ArenaBytesPerLive int `json:"arena_bytes_per_live"`
	// BytesPerInstance is measured heap growth divided by registered
	// instances — the all-in cost with the cap's live/evicted mix.
	BytesPerInstance float64 `json:"bytes_per_instance"`
	InstancesPerGB   float64 `json:"instances_per_gb"`
}

// heapInUse settles the heap and returns live bytes.
func heapInUse() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// benchServeDensity registers instances instances under liveCap and
// measures the marginal heap cost of each. Registration alone exercises
// the density path: every admission over the cap LRU-evicts a
// write-free instance (nothing applied yet, so eviction journals
// nothing), which is exactly the steady state of a many-thousand
// instance host.
func benchServeDensity() (serveDensityReport, error) {
	const (
		instances = 1024
		liveCap   = 64
		n         = 256
	)
	dir, err := os.MkdirTemp("", "dodabench-density-")
	if err != nil {
		return serveDensityReport{}, err
	}
	defer os.RemoveAll(dir)
	srv, err := serve.NewServer(serve.Options{Dir: dir, MaxLiveInstances: liveCap})
	if err != nil {
		return serveDensityReport{}, err
	}
	defer srv.Close()

	before := heapInUse()
	for i := 0; i < instances; i++ {
		_, err := srv.Register(serve.InstanceConfig{
			Name: fmt.Sprintf("d%04d", i), N: n, Algorithm: "waiting", Agg: "min",
		})
		if err != nil {
			return serveDensityReport{}, fmt.Errorf("register %d: %w", i, err)
		}
	}
	after := heapInUse()

	st := srv.Status()
	if st.Total != instances {
		return serveDensityReport{}, fmt.Errorf("status total = %d, want %d", st.Total, instances)
	}
	if st.Live > liveCap {
		return serveDensityReport{}, fmt.Errorf("live cap breached: %d live under cap %d", st.Live, liveCap)
	}

	rep := serveDensityReport{
		Instances:         instances,
		LiveCap:           liveCap,
		N:                 n,
		Provenance:        "full",
		ArenaBytesPerLive: core.ArenaBytes(n, core.ProvenanceFull),
	}
	if after > before {
		rep.BytesPerInstance = float64(after-before) / instances
		rep.InstancesPerGB = float64(1<<30) / rep.BytesPerInstance
	}
	return rep, nil
}
