package main

// The benchmark-regression guard behind -baseline: compare a fresh
// hot-path report against the committed BENCH_hotpath.json and fail when
// any tracked ns metric regresses beyond the tolerance. Only per-unit ns
// figures are tracked — whole-fleet throughput (cells/sec, elapsed ms)
// varies too much with machine load to gate on.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// trackedMetrics extracts the regression-guarded ns metrics of a report.
// A zero value means the metric is absent (e.g. an older baseline that
// predates the section) and is skipped by the comparison.
func trackedMetrics(rep *hotpathReport) map[string]float64 {
	return map[string]float64{
		"engine.ns_per_interaction":                rep.Engine.NsPerInteraction,
		"engine_batched.ns_per_interaction":        rep.EngineBatched.NsPerInteraction,
		"sim.ns_per_interaction":                   rep.Sim.NsPerInteraction,
		"sim_sharded.ns_per_interaction":           rep.SimSharded.NsPerInteraction,
		"alias_sampler.ns_per_draw":                rep.AliasSampler.NsPerDraw,
		"weighted_gen.ns_per_draw":                 rep.WeightedGen.NsPerDraw,
		"large_n.batched_count_ns_per_interaction": rep.LargeN.BatchedCountNs,
		// The no-WAL configuration isolates admission+queue+apply cost;
		// the durable figures (fsync-bound) are recorded but not gated.
		"serve_load.ephemeral_ns_per_op": rep.ServeLoad.EphemeralNsPerOp,
	}
}

// compareBaseline prints a metric-by-metric diff of rep against the
// baseline report at path and returns an error when any tracked metric
// regressed by more than tolerance (a fraction: 0.25 = 25% slower).
//
// When both reports carry a calibration figure, every fresh metric is
// rescaled by baseline_calibration / fresh_calibration first, so a
// baseline committed from one machine still gates code changes — not raw
// hardware speed — when CI re-measures on different silicon.
func compareBaseline(rep *hotpathReport, path string, tolerance float64, w io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base hotpathReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	scale := 1.0
	if base.CalibrationNs > 0 && rep.CalibrationNs > 0 {
		scale = base.CalibrationNs / rep.CalibrationNs
	}
	baseM, newM := trackedMetrics(&base), trackedMetrics(rep)
	names := make([]string, 0, len(baseM))
	for name := range baseM {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "benchmark regression guard vs %s (tolerance %+.0f%%, machine scale ×%.3f):\n",
		path, tolerance*100, scale)
	var regressions []string
	for _, name := range names {
		bv, nv := baseM[name], newM[name]
		if bv <= 0 || nv <= 0 {
			fmt.Fprintf(w, "  %-44s (skipped: metric missing)\n", name)
			continue
		}
		nv *= scale
		delta := nv/bv - 1
		verdict := "ok"
		if delta > tolerance {
			verdict = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s %+.1f%%", name, delta*100))
		}
		fmt.Fprintf(w, "  %-44s %9.2f -> %9.2f ns  (%+6.1f%%)  %s\n", name, bv, nv, delta*100, verdict)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d tracked metric(s) regressed more than %.0f%%: %s",
			len(regressions), tolerance*100, strings.Join(regressions, "; "))
	}
	if err := checkProgressOverhead(rep, w); err != nil {
		return err
	}
	if err := checkDensityGate(rep, &base, tolerance, w); err != nil {
		return err
	}
	return checkAllocGates(rep, w)
}

// checkDensityGate compares the serve_density memory figures against
// the baseline. Unlike the ns metrics, bytes per instance are
// machine-independent (they move with code and Go version, not clock
// speed), so no calibration rescale applies.
func checkDensityGate(rep, base *hotpathReport, tolerance float64, w io.Writer) error {
	bv, nv := base.ServeDensity.BytesPerInstance, rep.ServeDensity.BytesPerInstance
	const name = "serve_density.bytes_per_instance"
	if bv <= 0 || nv <= 0 {
		fmt.Fprintf(w, "  %-44s (skipped: metric missing)\n", name)
		return nil
	}
	delta := nv/bv - 1
	verdict := "ok"
	if delta > tolerance {
		verdict = "REGRESSION"
	}
	fmt.Fprintf(w, "  %-44s %9.0f -> %9.0f B/instance  (%+6.1f%%)  %s\n", name, bv, nv, delta*100, verdict)
	if delta > tolerance {
		return fmt.Errorf("%s regressed %+.1f%% (%.0f -> %.0f bytes/instance, %d instances under live cap %d)",
			name, delta*100, bv, nv, rep.ServeDensity.Instances, rep.ServeDensity.LiveCap)
	}
	return nil
}

// progressOverheadMax is the absolute ceiling on what the observability
// layer may cost: progress accounting and advisory writes must stay
// under 2% of checkpointed sweep throughput. Unlike the ns metrics this
// gate reads only the fresh report — the overhead is a ratio of two
// runs on the same machine, so no baseline or calibration applies.
const progressOverheadMax = 0.02

func checkProgressOverhead(rep *hotpathReport, w io.Writer) error {
	o := rep.SweepProgress
	if o.Trials == 0 {
		fmt.Fprintf(w, "  %-44s (skipped: section missing)\n", "sweep_progress_overhead.overhead_frac")
		return nil
	}
	verdict := "ok"
	if o.OverheadFrac > progressOverheadMax {
		verdict = "REGRESSION"
	}
	fmt.Fprintf(w, "  %-44s %+9.2f%% of sweep throughput (ceiling %+.0f%%)  %s\n",
		"sweep_progress_overhead.overhead_frac", o.OverheadFrac*100, progressOverheadMax*100, verdict)
	if o.OverheadFrac > progressOverheadMax {
		return fmt.Errorf("progress instrumentation costs %.1f%% of sweep throughput, ceiling is %.0f%% (base %.1fms vs instrumented %.1fms over %d cells)",
			o.OverheadFrac*100, progressOverheadMax*100, o.BaseMs, o.InstrumentedMs, o.Cells)
	}
	return nil
}

// allocsPerRunMax is the absolute ceiling on steady-state heap churn in
// the Reset-reuse interaction loops. Both engines recycle every buffer
// across Reset, so a warmed run allocates nothing; the fractional
// headroom only absorbs one-off growth (a map rehash, a pprof label)
// amortized across the benchmark's many runs, not a real per-run
// allocation. Like the progress gate this reads only the fresh report:
// allocation counts are machine-independent, so no baseline or
// calibration applies.
const allocsPerRunMax = 0.5

func checkAllocGates(rep *hotpathReport, w io.Writer) error {
	sections := []struct {
		name string
		m    perInteraction
	}{
		{"engine", rep.Engine},
		{"engine_batched", rep.EngineBatched},
		{"sim", rep.Sim},
		{"sim_sharded", rep.SimSharded},
	}
	var failures []string
	for _, s := range sections {
		if s.m.Runs == 0 {
			fmt.Fprintf(w, "  %-44s (skipped: section missing)\n", s.name+".allocs_per_run")
			continue
		}
		verdict := "ok"
		if s.m.AllocsPerRun > allocsPerRunMax {
			verdict = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s %.1f allocs/run", s.name, s.m.AllocsPerRun))
		}
		fmt.Fprintf(w, "  %-44s %9.2f allocs/run (ceiling %.1f)  %s\n",
			s.name+".allocs_per_run", s.m.AllocsPerRun, allocsPerRunMax, verdict)
	}
	if len(failures) > 0 {
		return fmt.Errorf("steady-state interaction loops must not allocate per run (ceiling %.1f): %s",
			allocsPerRunMax, strings.Join(failures, "; "))
	}
	return nil
}
