package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReportWritesScalingSection drives -report end to end: the suite
// runs, the scaling grid sweeps, and the EXPERIMENTS.md-ready section
// lands in the file — deterministically, so two runs agree byte for
// byte.
func TestReportWritesScalingSection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scaling.md")
	if err := run([]string{"-run", "E1", "-report", path}); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(first)
	for _, want := range []string{
		"## Scaling laws",
		"| uniform | gathering |",
		"| uniform | waiting |",
		"| uniform | waiting-greedy |",
		"Reproduce at full scale with:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("section missing %q:\n%s", want, text)
		}
	}
	if err := run([]string{"-run", "E1", "-report", path}); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(second) != text {
		t.Error("two -report runs wrote different sections")
	}
}
