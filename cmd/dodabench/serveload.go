package main

// The serve load generator behind the hot-path suite: drives an
// in-process serve.Server the way dodaserve's HTTP handler does —
// concurrent instances, batched Ingest, acknowledged handles — and
// reports ingest throughput and tail latency. The ephemeral (no-WAL)
// ns/op figure is regression-gated; the durable figures carry fsync and
// filesystem variance, so they are recorded but not gated.

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"doda/internal/graph"
	"doda/internal/rng"
	"doda/internal/seq"
	"doda/internal/serve"
)

// serveLoadReport is the serve_load section of BENCH_hotpath.json.
type serveLoadReport struct {
	Instances        int     `json:"instances"`
	BatchesPerInst   int     `json:"batches_per_instance"`
	OpsPerBatch      int     `json:"ops_per_batch"`
	TotalOps         int     `json:"total_ops"`
	EphemeralNsPerOp float64 `json:"ephemeral_ns_per_op"`
	EphemeralPerSec  float64 `json:"ephemeral_ops_per_sec"`
	DurablePerSec    float64 `json:"durable_ops_per_sec"`
	DurableP50Ms     float64 `json:"durable_p50_ms"`
	DurableP99Ms     float64 `json:"durable_p99_ms"`
}

// serveWorkload builds batches of off-sink interactions: the waiting
// algorithm transfers only at sink meetings, so these instances ingest
// forever without terminating — a steady-state ingest treadmill.
func serveWorkload(n, batches, perBatch int, seed uint64) [][]seq.Interaction {
	r := rng.New(seed)
	out := make([][]seq.Interaction, batches)
	for b := range out {
		batch := make([]seq.Interaction, perBatch)
		for i := range batch {
			u := 1 + int(r.Uint64()%uint64(n-1))
			v := 1 + int(r.Uint64()%uint64(n-2))
			if v >= u {
				v++
			}
			batch[i] = seq.Interaction{U: graph.NodeID(u), V: graph.NodeID(v)}
		}
		out[b] = batch
	}
	return out
}

// serveLoadTrial feeds every instance its workload concurrently and
// returns the elapsed wall time plus each batch's ack latency.
func serveLoadTrial(srv *serve.Server, instances int, workload [][]seq.Interaction) (time.Duration, []time.Duration, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	insts := make([]*serve.Instance, instances)
	for i := range insts {
		inst, err := srv.Register(serve.InstanceConfig{
			Name: fmt.Sprintf("load-%d", i), N: 256, Algorithm: "waiting", Agg: "min",
		})
		if err != nil {
			return 0, nil, err
		}
		insts[i] = inst
	}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		firstErr  error
		wg        sync.WaitGroup
	)
	start := time.Now()
	for _, inst := range insts {
		wg.Add(1)
		go func(inst *serve.Instance) {
			defer wg.Done()
			lats := make([]time.Duration, 0, len(workload))
			for _, batch := range workload {
				t0 := time.Now()
				h, err := inst.Ingest(ctx, batch, 0)
				if err == nil {
					err = h.Wait(ctx)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				lats = append(lats, time.Since(t0))
			}
			mu.Lock()
			latencies = append(latencies, lats...)
			mu.Unlock()
		}(inst)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return 0, nil, firstErr
	}
	return elapsed, latencies, nil
}

func percentile(lats []time.Duration, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, k int) bool { return lats[i] < lats[k] })
	idx := int(p * float64(len(lats)-1))
	return float64(lats[idx].Microseconds()) / 1000
}

// benchServeLoad measures the continuous-aggregation server under
// concurrent load: instances × batches through the full admission →
// (journal) → apply → ack path. The ephemeral side runs min-of-trials
// for a stable gated ns/op; the durable side runs once and reports
// throughput plus p50/p99 ack latency.
func benchServeLoad() (serveLoadReport, error) {
	const (
		instances = 4
		batches   = 150
		perBatch  = 64
		trials    = 3
	)
	workload := serveWorkload(256, batches, perBatch, 9)
	totalOps := instances * batches * perBatch

	minEphemeral := time.Duration(1 << 62)
	for i := 0; i < trials; i++ {
		srv, err := serve.NewServer(serve.Options{})
		if err != nil {
			return serveLoadReport{}, err
		}
		elapsed, _, err := serveLoadTrial(srv, instances, workload)
		srv.Close()
		if err != nil {
			return serveLoadReport{}, fmt.Errorf("ephemeral trial: %w", err)
		}
		if elapsed < minEphemeral {
			minEphemeral = elapsed
		}
	}

	dir, err := os.MkdirTemp("", "dodabench-serve-")
	if err != nil {
		return serveLoadReport{}, err
	}
	defer os.RemoveAll(dir)
	srv, err := serve.NewServer(serve.Options{Dir: dir})
	if err != nil {
		return serveLoadReport{}, err
	}
	durElapsed, lats, err := serveLoadTrial(srv, instances, workload)
	srv.Close()
	if err != nil {
		return serveLoadReport{}, fmt.Errorf("durable trial: %w", err)
	}

	rep := serveLoadReport{
		Instances:      instances,
		BatchesPerInst: batches,
		OpsPerBatch:    perBatch,
		TotalOps:       totalOps,
	}
	if minEphemeral > 0 {
		rep.EphemeralNsPerOp = float64(minEphemeral.Nanoseconds()) / float64(totalOps)
		rep.EphemeralPerSec = float64(totalOps) / minEphemeral.Seconds()
	}
	if durElapsed > 0 {
		rep.DurablePerSec = float64(totalOps) / durElapsed.Seconds()
	}
	rep.DurableP50Ms = percentile(lats, 0.50)
	rep.DurableP99Ms = percentile(lats, 0.99)
	return rep, nil
}
