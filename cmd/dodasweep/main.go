// Command dodasweep runs sharded parameter sweeps over the scenario
// registry: the cross product of scenarios, algorithms and node counts,
// each cell run under several deterministic seeds, distributed across all
// cores. Results stream to stdout as one JSON line per cell, in cell
// order, bit-for-bit identical for any worker count; a fleet summary goes
// to stderr.
//
// Usage:
//
//	dodasweep -scenarios "uniform;zipf:alpha=1" -algs waiting,gathering -n 16,32 -reps 10
//	dodasweep -scenarios "community:communities=4,p-intra=0.9" -algs gathering -n 64 -reps 50 -workers 4
//	dodasweep -scenarios uniform -algs waiting-greedy -n 32 -reps 5 -seed 7 -summary
//	dodasweep -scenarios uniform -algs gathering -n 131072 -reps 1 -max 2000000   # large n: auto count-only provenance
//	dodasweep -scenarios uniform -algs gathering -n 64 -reps 200 -cpuprofile cpu.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"doda/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dodasweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("dodasweep", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		scenarios = fs.String("scenarios", "uniform", "semicolon-separated scenarios, each name[:k=v,k2=v2] (see `dodascen list`)")
		algs      = fs.String("algs", "gathering", "comma-separated algorithms: "+strings.Join(sweep.AlgorithmNames(), " | "))
		sizes     = fs.String("n", "32", "comma-separated node counts")
		reps      = fs.Int("reps", 10, "seed replicas per cell")
		seed      = fs.Uint64("seed", 1, "grid seed; every cell seed derives from it deterministically")
		max       = fs.Int("max", 0, "interaction cap per run (0 = a generous scenario default)")
		workers   = fs.Int("workers", 0, "worker shards (0 = all cores)")
		summary   = fs.Bool("summary", false, "also print the fleet totals as a final JSON line on stdout")
		prov      = fs.String("provenance", "auto", "engine provenance mode: auto | full | count | off (auto = full below n="+strconv.Itoa(sweep.AutoProvenanceThreshold)+", count-only above)")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memProf   = fs.String("memprofile", "", "write a pprof heap profile after the sweep to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(errw, "dodasweep: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(errw, "dodasweep: memprofile:", err)
			}
		}()
	}

	refs, err := sweep.ParseScenarios(*scenarios)
	if err != nil {
		return err
	}
	ns, err := parseInts(*sizes)
	if err != nil {
		return err
	}
	grid := sweep.Grid{
		Scenarios:       refs,
		Algorithms:      splitList(*algs),
		Sizes:           ns,
		Replicas:        *reps,
		Seed:            *seed,
		MaxInteractions: *max,
		Provenance:      *prov,
	}
	cells, err := grid.Cells()
	if err != nil {
		return err
	}
	// Mirror sweep.Run's effective worker count (default all cores,
	// capped at the cell count) so the banner reports the real
	// parallelism.
	w := *workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(cells) {
		w = len(cells)
	}
	fmt.Fprintf(errw, "dodasweep: %d cells (%d scenarios × %d algorithms × %d sizes), %d replicas each, %d workers\n",
		len(cells), len(refs), len(grid.Algorithms), len(ns), grid.Replicas, w)

	enc := json.NewEncoder(out)
	var encErr error
	start := time.Now()
	results, totals, err := sweep.Run(grid, sweep.Options{
		Workers: *workers,
		OnResult: func(r sweep.CellResult) {
			if encErr == nil {
				encErr = enc.Encode(r)
			}
		},
	})
	if err != nil {
		return err
	}
	if encErr != nil {
		return encErr
	}
	elapsed := time.Since(start)
	cellsPerSec := float64(len(results)) / elapsed.Seconds()
	fmt.Fprintf(errw, "dodasweep: %d runs (%d terminated), %.0f interactions total, %s elapsed, %.1f cells/sec\n",
		totals.Runs, totals.Terminated, totals.Interactions, elapsed.Round(time.Millisecond), cellsPerSec)
	if *summary {
		return enc.Encode(totals)
	}
	return nil
}

// splitList splits a comma-separated list, trimming blanks.
func splitList(raw string) []string {
	var out []string
	for _, s := range strings.Split(raw, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// parseInts parses a comma-separated integer list.
func parseInts(raw string) ([]int, error) {
	var out []int
	for _, s := range splitList(raw) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad node count %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}
