// Command dodasweep runs sharded parameter sweeps over the scenario
// registry: the cross product of scenarios, algorithms and node counts,
// each cell run under several deterministic seeds, distributed across all
// cores. Results stream to stdout as one JSON line per cell, in cell
// order, bit-for-bit identical for any worker count; a fleet summary goes
// to stderr.
//
// Long grids survive restarts: -checkpoint journals every completed cell
// to a crc-guarded JSONL checkpoint directory, -resume skips the
// journaled cells and re-emits the full stream byte-identical to an
// uninterrupted run, and -shard i/m partitions the cell index space
// disjointly so m processes (or hosts) cover the grid exactly once; the
// merge subcommand stitches the m checkpoints back into one ordered
// stream plus fleet totals.
//
// The analyze subcommand turns completed checkpoints (or saved JSONL
// output) into scaling laws: per (scenario, algorithm) group it fits the
// paper's candidate growth forms plus a free power law, selects among
// them by AIC/BIC with bootstrap confidence intervals, tests
// single-parameter monotone trends, and renders a deterministic markdown
// report (or JSON with -json). Checkpoints are validated by the same
// path merge uses, so stale or foreign journals fail identically in
// both. -partial analyzes an unfinished fleet over its complete cells,
// annotating per-group coverage.
//
// The fleet subcommands replace hand-run shards with a lease protocol:
// coordinate serves shard leases over HTTP and merges when every shard
// completes; work leases shards, heartbeats, and checkpoints until the
// fleet is done (a worker that dies silently has its lease requeued);
// status and watch render a live dashboard from the checkpoint journals
// without disturbing the writers. The coordinator journals grants and
// completions to <dir>/coord.log, so coordinate -resume rebuilds the
// partition table after a coordinator crash; workers retry transient
// protocol failures with jittered exponential backoff (-retry-attempts,
// -retry-base, -retry-max) and can inject deterministic filesystem and
// network faults for hardening runs (-chaos-fs, -chaos-http,
// -chaos-max). The merged output stays byte-identical to a
// single-process run regardless of worker count, scheduling, crashes,
// or mid-shard retries — see internal/fleet for the protocol contract
// and internal/chaos for the fault model.
//
// Usage:
//
//	dodasweep -scenarios "uniform;zipf:alpha=1" -algs waiting,gathering -n 16,32 -reps 10
//	dodasweep -scenarios "community:communities=4,p-intra=0.9" -algs gathering -n 64 -reps 50 -workers 4
//	dodasweep -scenarios uniform -algs waiting-greedy -n 32 -reps 5 -seed 7 -summary
//	dodasweep -scenarios uniform -algs gathering -n 131072 -reps 1 -max 2000000   # large n: auto count-only provenance
//	dodasweep ... -checkpoint run1/                  # journal cells; survive a crash
//	dodasweep ... -resume run1/                      # continue; output byte-identical
//	dodasweep ... -shard 0/3 -checkpoint s0/         # one of three disjoint shard processes
//	dodasweep merge -summary s0/ s1/ s2/             # stitch the shards back together
//	dodasweep analyze run1/                          # scaling-law report from a checkpoint
//	dodasweep analyze -json s0/ s1/ s2/              # same analysis over a whole shard fleet
//	dodasweep coordinate -shards 4 -dir fleet/ -addr-file fleet/addr ... > out.jsonl
//	dodasweep work -addr-file fleet/addr             # as many of these as you have cores/hosts
//	dodasweep coordinate -resume -dir fleet/ ...     # coordinator crashed: replay coord.log, keep going
//	dodasweep work -addr-file fleet/addr -chaos-fs 7 -chaos-http 9   # hardening run with injected faults
//	dodasweep status fleet/ -addr-file fleet/addr    # one dashboard snapshot
//	dodasweep watch -every 2s fleet/                 # refresh until the fleet is done
//	dodasweep analyze -partial fleet/                # scaling laws over the cells done so far
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"doda/internal/analysis"
	"doda/internal/sweep"
	"doda/internal/sweepd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dodasweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errw io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "merge":
			return runMerge(args[1:], out, errw)
		case "analyze":
			return runAnalyze(args[1:], out, errw)
		case "coordinate":
			return runCoordinate(args[1:], out, errw)
		case "work":
			return runWork(args[1:], out, errw)
		case "status":
			return runStatus(args[1:], out, errw)
		case "watch":
			return runWatch(args[1:], out, errw)
		}
	}
	fs := flag.NewFlagSet("dodasweep", flag.ContinueOnError)
	fs.SetOutput(errw)
	gf := addGridFlags(fs)
	var (
		workers    = fs.Int("workers", 0, "worker shards (0 = all cores)")
		summary    = fs.Bool("summary", false, "also print the fleet totals as a final JSON line on stdout")
		quiet      = fs.Bool("quiet", false, "suppress the throttled stderr progress line")
		checkpoint = fs.String("checkpoint", "", "journal every completed cell to this directory (crc-guarded JSONL segments); must not already hold a checkpoint")
		resume     = fs.String("resume", "", "resume from the checkpoint in this directory: skip journaled cells, keep journaling, re-emit the full byte-identical stream (grid flags must match, or the stale checkpoint is rejected)")
		shard      = fs.String("shard", "", "run only shard i of m disjoint cell shards, as i/m (e.g. 0/3); pair with -checkpoint and stitch with the merge subcommand")
		perReplica = fs.Bool("per-replica", false, "checkpoint every completed replica, not just whole cells (needs -checkpoint/-resume); resume stays byte-identical — worth it when single cells run for minutes")
		cpuProf    = fs.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memProf    = fs.String("memprofile", "", "write a pprof heap profile after the sweep to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *checkpoint != "" && *resume != "" {
		return fmt.Errorf("-checkpoint and -resume are mutually exclusive (resume keeps journaling into its directory)")
	}
	shardIndex, shardCount, err := parseShard(*shard)
	if err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(errw, "dodasweep: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(errw, "dodasweep: memprofile:", err)
			}
		}()
	}

	grid, err := gf.grid()
	if err != nil {
		return err
	}
	cells, err := grid.Cells()
	if err != nil {
		return err
	}
	inShard := sweep.ShardSelect(shardIndex, shardCount)
	mine := len(cells)
	if shardCount > 1 {
		mine = 0
		for _, c := range cells {
			if inShard(c) {
				mine++
			}
		}
	}
	// Mirror sweep.Run's effective worker count (default all cores,
	// capped at the cell count) so the banner reports the real
	// parallelism.
	w := *workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > mine {
		w = mine
	}
	fmt.Fprintf(errw, "dodasweep: %d cells (%d scenarios × %d algorithms × %d sizes), %d replicas each, %d workers",
		len(cells), len(grid.Scenarios), len(grid.Algorithms), len(grid.Sizes), grid.Replicas, w)
	if shardCount > 1 {
		fmt.Fprintf(errw, ", shard %d/%d (%d cells)", shardIndex, shardCount, mine)
	}
	fmt.Fprintln(errw)

	// Emitter errors (short write, ENOSPC, dead pipe) abort the sweep and
	// surface in the exit code: a cell nobody could record must never be
	// silently lost.
	enc := json.NewEncoder(out)
	emit := func(r sweep.CellResult) error { return enc.Encode(r) }
	if !*quiet {
		prog := newProgressLine(errw, mine)
		inner := emit
		emit = func(r sweep.CellResult) error {
			if err := inner(r); err != nil {
				return err
			}
			prog.bump()
			return nil
		}
	}

	var (
		results []sweep.CellResult
		totals  sweep.Totals
	)
	dir, resuming := *checkpoint, false
	if *resume != "" {
		dir, resuming = *resume, true
	}
	if *perReplica && dir == "" {
		return fmt.Errorf("-per-replica needs -checkpoint or -resume (it tunes checkpoint granularity)")
	}
	start := time.Now()
	if dir != "" {
		results, totals, err = sweepd.Run(grid, dir, sweepd.Options{
			Workers:    *workers,
			ShardIndex: shardIndex,
			ShardCount: shardCount,
			Resume:     resuming,
			PerReplica: *perReplica,
			OnResult:   emit,
		})
	} else {
		var sel func(sweep.Cell) bool
		if shardCount > 1 {
			sel = inShard
		}
		results, totals, err = sweep.Run(grid, sweep.Options{
			Workers:  *workers,
			OnResult: emit,
			Select:   sel,
		})
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	cellsPerSec := float64(len(results)) / elapsed.Seconds()
	fmt.Fprintf(errw, "dodasweep: %d runs (%d terminated), %.0f interactions total, %s elapsed, %.1f cells/sec\n",
		totals.Runs, totals.Terminated, totals.Interactions, elapsed.Round(time.Millisecond), cellsPerSec)
	if *summary {
		return enc.Encode(totals)
	}
	return nil
}

// runMerge implements the merge subcommand: stitch the checkpoints of a
// complete m-way sharded sweep into one ordered JSONL stream plus fleet
// totals, byte-identical to an uninterrupted single-process run.
func runMerge(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("dodasweep merge", flag.ContinueOnError)
	fs.SetOutput(errw)
	summary := fs.Bool("summary", false, "also print the fleet totals as a final JSON line on stdout")
	fs.Usage = func() {
		fmt.Fprintln(errw, "usage: dodasweep merge [-summary] <checkpoint-dir>...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	dirs := fs.Args()
	if len(dirs) == 0 {
		return fmt.Errorf("merge: no checkpoint directories given")
	}
	results, totals, err := sweepd.Merge(dirs)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	fmt.Fprintf(errw, "dodasweep merge: %d cells from %d shard(s), %d runs (%d terminated)\n",
		totals.Cells, len(dirs), totals.Runs, totals.Terminated)
	if *summary {
		return enc.Encode(totals)
	}
	return nil
}

// runAnalyze implements the analyze subcommand: extract scaling laws
// from the checkpoint directories of a completed sweep (one unsharded
// checkpoint, or a whole shard fleet) or from a saved JSONL results
// file, and render the deterministic markdown report (or the JSON
// analysis with -json). Checkpoint directories go through
// sweepd.LoadFleet — the exact validation path the merge subcommand
// uses — so a stale or foreign journal fails here with the same
// grid-fingerprint error it would produce there, and the report of a
// crashed-and-resumed sweep is byte-identical to an uninterrupted one.
func runAnalyze(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("dodasweep analyze", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		jsonOut   = fs.Bool("json", false, "emit the analysis as JSON instead of the markdown report")
		bootstrap = fs.Int("bootstrap", 1000, "residual-bootstrap resamples behind every confidence interval (0 disables CIs)")
		seed      = fs.Uint64("seed", 1, "bootstrap resampling seed; same input and seed, same report bytes")
		results   = fs.String("results", "", "analyze this saved JSONL results file (dodasweep stdout) instead of checkpoint directories")
		partial   = fs.Bool("partial", false, "analyze an unfinished fleet: fit over the complete cells only, annotating coverage per group (directories may cover only some shards)")
	)
	fs.Usage = func() {
		fmt.Fprintln(errw, "usage: dodasweep analyze [-json] [-bootstrap N] [-seed N] <checkpoint-dir>...")
		fmt.Fprintln(errw, "       dodasweep analyze [-json] [-bootstrap N] [-seed N] -results <file.jsonl>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	boot := *bootstrap
	if boot == 0 {
		boot = -1 // the analysis layer reads 0 as "default": map the flag's 0 to "disabled"
	}
	opt := analysis.Options{Bootstrap: boot, Seed: *seed}

	var (
		a   *analysis.Analysis
		err error
	)
	if *results != "" {
		if fs.NArg() > 0 {
			return fmt.Errorf("analyze: -results and checkpoint directories are mutually exclusive")
		}
		if *partial {
			return fmt.Errorf("analyze: -partial reads checkpoint directories, not -results files")
		}
		f, ferr := os.Open(*results)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		cells, rerr := sweep.ReadResults(f)
		if rerr != nil {
			return rerr
		}
		a, err = analysis.Analyze(cells, opt)
	} else {
		dirs := fs.Args()
		if len(dirs) == 0 {
			return fmt.Errorf("analyze: no checkpoint directories given (or use -results <file.jsonl>)")
		}
		if *partial {
			a, err = analysis.AnalyzeCheckpointPartial(expandFleetDirs(dirs), opt)
		} else {
			a, err = analysis.AnalyzeCheckpoint(dirs, opt)
		}
	}
	if err != nil {
		return err
	}
	if *jsonOut {
		b, err := json.MarshalIndent(a, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		_, err = out.Write(b)
		return err
	}
	return analysis.WriteMarkdown(out, a)
}

// parseShard parses the -shard i/m syntax; "" means the whole grid.
func parseShard(raw string) (index, count int, err error) {
	if raw == "" {
		return 0, 1, nil
	}
	is, ms, ok := strings.Cut(raw, "/")
	if !ok {
		return 0, 0, fmt.Errorf("bad shard %q: want i/m (e.g. 0/3)", raw)
	}
	if index, err = strconv.Atoi(strings.TrimSpace(is)); err != nil {
		return 0, 0, fmt.Errorf("bad shard index in %q", raw)
	}
	if count, err = strconv.Atoi(strings.TrimSpace(ms)); err != nil {
		return 0, 0, fmt.Errorf("bad shard count in %q", raw)
	}
	if count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("bad shard %q: need 0 <= i < m", raw)
	}
	return index, count, nil
}

// splitList splits a comma-separated list, trimming blanks.
func splitList(raw string) []string {
	var out []string
	for _, s := range strings.Split(raw, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// parseInts parses a comma-separated integer list.
func parseInts(raw string) ([]int, error) {
	var out []int
	for _, s := range splitList(raw) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad node count %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}
