package main

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"doda/internal/analysis"
	"doda/internal/sweep"
	"doda/internal/sweepd"
)

// s1Args is a quick-scale multi-size grid over the S1 scenario family —
// the configuration the analyze acceptance criterion is stated for.
func s1Args(extra ...string) []string {
	base := []string{
		"-scenarios", "uniform;zipf:alpha=1;community:communities=4,p-intra=0.9",
		"-algs", "waiting,gathering",
		"-n", "12,16,24,32", "-reps", "10", "-seed", "41",
	}
	return append(base, extra...)
}

// TestAnalyzeCheckpointSelectsPaperForm is the acceptance gate for the
// analyze subcommand: on a quick-scale S1-family checkpoint the AIC
// selection per (scenario, algorithm) group must land on the paper's
// predicted form, or the free power law must report an exponent whose
// CI is consistent with it.
func TestAnalyzeCheckpointSelectsPaperForm(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	sweepOut(t, s1Args("-checkpoint", dir))

	raw := sweepOut(t, []string{"analyze", "-json", dir})
	var a analysis.Analysis
	if err := json.Unmarshal([]byte(raw), &a); err != nil {
		t.Fatalf("analyze -json output is not an Analysis: %v", err)
	}
	if a.Grid == nil {
		t.Error("checkpoint-backed analysis must carry the journaled grid")
	}
	if len(a.Groups) != 6 {
		t.Fatalf("got %d groups, want 6", len(a.Groups))
	}
	for _, g := range a.Groups {
		if g.Law == nil {
			t.Errorf("%s/%s: no law fitted: %s", g.Scenario, g.Algorithm, g.Note)
			continue
		}
		if g.Predicted == "" {
			t.Errorf("%s/%s: no paper prediction recorded", g.Scenario, g.Algorithm)
			continue
		}
		if g.Law.Best == g.Predicted {
			continue
		}
		// Selection strayed (legitimate at quick scale): the free fit
		// must still report an exponent + CI near the predicted growth.
		var free analysis.ModelFit
		found := false
		for _, f := range g.Law.Fits {
			if f.Free {
				free, found = f, true
			}
		}
		if !found {
			t.Errorf("%s/%s: no free power fit", g.Scenario, g.Algorithm)
			continue
		}
		if free.ExpLo >= free.ExpHi {
			t.Errorf("%s/%s: degenerate exponent CI [%v, %v]", g.Scenario, g.Algorithm, free.ExpLo, free.ExpHi)
		}
		if math.Abs(free.Exponent-2) > 1.0 {
			t.Errorf("%s/%s: free exponent %.3f far from the Θ(n²)-family growth",
				g.Scenario, g.Algorithm, free.Exponent)
		}
	}
}

// TestAnalyzeIdenticalAcrossShardFleetAndResume: the same grid analyzed
// from (a) an uninterrupted single checkpoint, (b) a crashed-and-resumed
// checkpoint and (c) a merged 3-shard fleet must produce byte-identical
// reports — the property the CI report-smoke step diffs for real.
func TestAnalyzeIdenticalAcrossShardFleetAndResume(t *testing.T) {
	td := t.TempDir()
	clean := filepath.Join(td, "clean")
	sweepOut(t, s1Args("-checkpoint", clean))

	// A killed-and-resumed checkpoint of the same grid.
	crashed := filepath.Join(td, "crashed")
	grid := mustGrid(t, clean)
	stop := errors.New("deterministic crash")
	_, _, err := sweepd.Run(grid, crashed, sweepd.Options{
		AfterCheckpoint: func(done, total int) error {
			if done >= total/2 {
				return stop
			}
			return nil
		},
	})
	if !errors.Is(err, stop) {
		t.Fatalf("crash hook did not fire: %v", err)
	}
	sweepOut(t, s1Args("-resume", crashed))

	// A 3-shard fleet.
	var shardDirs []string
	for i := 0; i < 3; i++ {
		dir := filepath.Join(td, "shard"+itoa(i))
		shardDirs = append(shardDirs, dir)
		sweepOut(t, s1Args("-shard", itoa(i)+"/3", "-checkpoint", dir))
	}

	ref := sweepOut(t, []string{"analyze", clean})
	if !strings.Contains(ref, "# Scaling-law report") {
		t.Fatalf("analyze produced no report:\n%s", ref)
	}
	if got := sweepOut(t, []string{"analyze", crashed}); got != ref {
		t.Error("crashed-and-resumed checkpoint analyzes differently from the uninterrupted one")
	}
	if got := sweepOut(t, append([]string{"analyze"}, shardDirs...)); got != ref {
		t.Error("merged 3-shard fleet analyzes differently from the single checkpoint")
	}
}

// mustGrid reads a checkpoint's journaled grid back.
func mustGrid(t *testing.T, dir string) sweep.Grid {
	t.Helper()
	h, _, err := sweepd.ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	return h.Grid
}

// TestAnalyzeAndMergeShareStaleJournalError: the satellite fix — a
// foreign journal must fail analyze and merge with the exact same
// grid-fingerprint error, because both read fleets through
// sweepd.LoadFleet.
func TestAnalyzeAndMergeShareStaleJournalError(t *testing.T) {
	td := t.TempDir()
	a := filepath.Join(td, "a")
	b := filepath.Join(td, "b")
	sweepOut(t, []string{"-scenarios", "uniform", "-algs", "gathering", "-n", "8,12", "-reps", "2", "-seed", "1", "-shard", "0/2", "-checkpoint", a})
	// A foreign grid (different seed) posing as shard 1.
	sweepOut(t, []string{"-scenarios", "uniform", "-algs", "gathering", "-n", "8,12", "-reps", "2", "-seed", "99", "-shard", "1/2", "-checkpoint", b})

	mergeErr := run([]string{"merge", a, b}, io.Discard, io.Discard)
	analyzeErr := run([]string{"analyze", a, b}, io.Discard, io.Discard)
	if mergeErr == nil || analyzeErr == nil {
		t.Fatalf("foreign journal accepted: merge=%v analyze=%v", mergeErr, analyzeErr)
	}
	if !errors.Is(mergeErr, sweepd.ErrStaleCheckpoint) || !errors.Is(analyzeErr, sweepd.ErrStaleCheckpoint) {
		t.Errorf("want ErrStaleCheckpoint from both: merge=%v analyze=%v", mergeErr, analyzeErr)
	}
	if mergeErr.Error() != analyzeErr.Error() {
		t.Errorf("error messages diverge:\n  merge:   %v\n  analyze: %v", mergeErr, analyzeErr)
	}
}

// TestAnalyzeResultsFile drives the -results path: saved JSONL sweep
// output (including the -summary totals line, which must be skipped)
// analyzes like the live stream.
func TestAnalyzeResultsFile(t *testing.T) {
	out := sweepOut(t, s1Args("-summary"))
	path := filepath.Join(t.TempDir(), "results.jsonl")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	report := sweepOut(t, []string{"analyze", "-results", path})
	if !strings.Contains(report, "# Scaling-law report") || !strings.Contains(report, "uniform / gathering") {
		t.Fatalf("unexpected report:\n%s", report)
	}
	// The report must match the checkpoint-backed one except for the
	// grid line, which only checkpoints can carry.
	dir := filepath.Join(t.TempDir(), "ck")
	sweepOut(t, s1Args("-checkpoint", dir))
	ckReport := sweepOut(t, []string{"analyze", dir})
	if got, want := stripGridLine(ckReport), stripGridLine(report); got != want {
		t.Error("results-file analysis diverges from checkpoint analysis beyond the grid line")
	}
}

func stripGridLine(report string) string {
	var keep []string
	for _, line := range strings.Split(report, "\n") {
		if strings.HasPrefix(line, "- grid: ") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestAnalyzeFlagErrors covers the analyze flag-validation paths.
func TestAnalyzeFlagErrors(t *testing.T) {
	if err := run([]string{"analyze"}, io.Discard, io.Discard); err == nil {
		t.Error("analyze with no inputs accepted")
	}
	if err := run([]string{"analyze", "-results", "x.jsonl", "somedir"}, io.Discard, io.Discard); err == nil {
		t.Error("analyze with both -results and dirs accepted")
	}
	if err := run([]string{"analyze", filepath.Join(t.TempDir(), "empty")}, io.Discard, io.Discard); err == nil {
		t.Error("analyze on a checkpoint-free directory accepted")
	}
}

// TestAnalyzeJSONDeterministic: two -json runs over the same checkpoint
// are byte-identical (the bootstrap streams derive from the seed alone).
func TestAnalyzeJSONDeterministic(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	sweepOut(t, []string{"-scenarios", "uniform", "-algs", "gathering", "-n", "8,12,16", "-reps", "3", "-seed", "5", "-checkpoint", dir})
	first := sweepOut(t, []string{"analyze", "-json", "-bootstrap", "150", "-seed", "9", dir})
	second := sweepOut(t, []string{"analyze", "-json", "-bootstrap", "150", "-seed", "9", dir})
	if first != second {
		t.Error("two analyze -json runs differ")
	}
	if !json.Valid([]byte(first)) {
		t.Error("analyze -json emitted invalid JSON")
	}
}
