package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// sweepOut runs the CLI and returns stdout.
func sweepOut(t *testing.T, args []string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestSweepEmitsOneJSONLinePerCellInOrder(t *testing.T) {
	out := sweepOut(t, []string{
		"-scenarios", "uniform;zipf:alpha=1", "-algs", "waiting,gathering",
		"-n", "8,12", "-reps", "2", "-seed", "3",
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want 8 cells:\n%s", len(lines), out)
	}
	for i, line := range lines {
		var doc map[string]any
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		if doc["index"] != float64(i) {
			t.Errorf("line %d has index %v: cells must stream in order", i, doc["index"])
		}
		if doc["terminated"] != doc["replicas"] {
			t.Errorf("cell %d: %v of %v replicas terminated", i, doc["terminated"], doc["replicas"])
		}
	}
}

// TestShardedEqualsSequential is the acceptance gate for the sweep
// engine: a ≥100-cell scenario×algorithm grid sharded across many
// workers must produce byte-identical output to the workers=1 run.
func TestShardedEqualsSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-run sweep skipped in -short mode")
	}
	// 5 scenarios × 2 algorithms × 10 sizes = 100 cells.
	base := []string{
		"-scenarios", "uniform;zipf:alpha=1;edge-markovian;community:communities=2;churn",
		"-algs", "waiting,gathering",
		"-n", "4,5,6,7,8,9,10,11,12,13",
		"-reps", "2", "-seed", "11", "-summary",
	}
	seq := sweepOut(t, append([]string{"-workers", "1"}, base...))
	workers := 8
	if c := runtime.GOMAXPROCS(0); c > workers {
		workers = c
	}
	par := sweepOut(t, append([]string{"-workers", itoa(workers)}, base...))
	if seq != par {
		t.Errorf("workers=1 and workers=%d outputs differ:\n--- sequential ---\n%s\n--- sharded ---\n%s",
			workers, seq, par)
	}
	if n := strings.Count(seq, "\n"); n != 101 { // 100 cells + totals line
		t.Errorf("got %d lines, want 101", n)
	}
}

func itoa(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func TestSweepErrors(t *testing.T) {
	for _, tt := range []struct {
		name string
		args []string
	}{
		{name: "unknown scenario", args: []string{"-scenarios", "bogus"}},
		{name: "unknown algorithm", args: []string{"-algs", "bogus"}},
		{name: "bad size", args: []string{"-n", "two"}},
		{name: "tiny size", args: []string{"-n", "1"}},
		{name: "zero replicas", args: []string{"-reps", "0"}},
		{name: "empty scenarios", args: []string{"-scenarios", ";"}},
		{name: "bad params", args: []string{"-scenarios", "zipf:novalue"}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args, io.Discard, io.Discard); err == nil {
				t.Error("want error")
			}
		})
	}
}

// TestSweepProvenanceFlag drives the -provenance flag end to end: the
// resolved mode must land in every JSON line and bad values must fail.
func TestSweepProvenanceFlag(t *testing.T) {
	for _, tt := range []struct {
		flag string
		want string
	}{
		{flag: "auto", want: `"provenance":"full"`}, // n=8 is below the auto threshold
		{flag: "count", want: `"provenance":"count"`},
		{flag: "off", want: `"provenance":"off"`},
	} {
		out := sweepOut(t, []string{
			"-scenarios", "uniform", "-algs", "gathering", "-n", "8",
			"-reps", "2", "-seed", "3", "-provenance", tt.flag,
		})
		if !strings.Contains(out, tt.want) {
			t.Errorf("-provenance %s: output missing %s:\n%s", tt.flag, tt.want, out)
		}
	}
	if err := run([]string{"-provenance", "bogus"}, io.Discard, io.Discard); err == nil {
		t.Error("bad provenance flag should fail")
	}
}

// TestSweepProvenanceModesAgreeOnStatistics checks, at the CLI level,
// that full and count-only provenance change nothing but the mode label
// in the streamed JSONL (the batched-vs-scalar differential gate lives
// in internal/sweep, where ForceScalar is reachable).
func TestSweepProvenanceModesAgreeOnStatistics(t *testing.T) {
	base := []string{"-scenarios", "uniform;zipf:alpha=1", "-algs", "waiting,gathering",
		"-n", "8,12", "-reps", "2", "-seed", "3"}
	full := sweepOut(t, append([]string{"-provenance", "full"}, base...))
	count := sweepOut(t, append([]string{"-provenance", "count"}, base...))
	norm := func(s string) string {
		s = strings.ReplaceAll(s, `"provenance":"full"`, `"provenance":"X"`)
		return strings.ReplaceAll(s, `"provenance":"count"`, `"provenance":"X"`)
	}
	if norm(full) != norm(count) {
		t.Errorf("full and count sweeps disagree beyond the mode label:\n--- full ---\n%s\n--- count ---\n%s", full, count)
	}
}

// TestSweepProfiles smoke-tests the pprof flags.
func TestSweepProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	sweepOut(t, []string{
		"-scenarios", "uniform", "-algs", "gathering", "-n", "8", "-reps", "2",
		"-cpuprofile", cpu, "-memprofile", mem,
	})
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty: %v", p, err)
		}
	}
}
