package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"doda/internal/sweep"
	"doda/internal/sweepd"
)

// sweepOut runs the CLI and returns stdout.
func sweepOut(t *testing.T, args []string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestSweepEmitsOneJSONLinePerCellInOrder(t *testing.T) {
	out := sweepOut(t, []string{
		"-scenarios", "uniform;zipf:alpha=1", "-algs", "waiting,gathering",
		"-n", "8,12", "-reps", "2", "-seed", "3",
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want 8 cells:\n%s", len(lines), out)
	}
	for i, line := range lines {
		var doc map[string]any
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		if doc["index"] != float64(i) {
			t.Errorf("line %d has index %v: cells must stream in order", i, doc["index"])
		}
		if doc["terminated"] != doc["replicas"] {
			t.Errorf("cell %d: %v of %v replicas terminated", i, doc["terminated"], doc["replicas"])
		}
	}
}

// TestShardedEqualsSequential is the acceptance gate for the sweep
// engine: a ≥100-cell scenario×algorithm grid sharded across many
// workers must produce byte-identical output to the workers=1 run.
func TestShardedEqualsSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-run sweep skipped in -short mode")
	}
	// 5 scenarios × 2 algorithms × 10 sizes = 100 cells.
	base := []string{
		"-scenarios", "uniform;zipf:alpha=1;edge-markovian;community:communities=2;churn",
		"-algs", "waiting,gathering",
		"-n", "4,5,6,7,8,9,10,11,12,13",
		"-reps", "2", "-seed", "11", "-summary",
	}
	seq := sweepOut(t, append([]string{"-workers", "1"}, base...))
	workers := 8
	if c := runtime.GOMAXPROCS(0); c > workers {
		workers = c
	}
	par := sweepOut(t, append([]string{"-workers", itoa(workers)}, base...))
	if seq != par {
		t.Errorf("workers=1 and workers=%d outputs differ:\n--- sequential ---\n%s\n--- sharded ---\n%s",
			workers, seq, par)
	}
	if n := strings.Count(seq, "\n"); n != 101 { // 100 cells + totals line
		t.Errorf("got %d lines, want 101", n)
	}
}

func itoa(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func TestSweepErrors(t *testing.T) {
	for _, tt := range []struct {
		name string
		args []string
	}{
		{name: "unknown scenario", args: []string{"-scenarios", "bogus"}},
		{name: "unknown algorithm", args: []string{"-algs", "bogus"}},
		{name: "bad size", args: []string{"-n", "two"}},
		{name: "tiny size", args: []string{"-n", "1"}},
		{name: "zero replicas", args: []string{"-reps", "0"}},
		{name: "empty scenarios", args: []string{"-scenarios", ";"}},
		{name: "bad params", args: []string{"-scenarios", "zipf:novalue"}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args, io.Discard, io.Discard); err == nil {
				t.Error("want error")
			}
		})
	}
}

// TestSweepProvenanceFlag drives the -provenance flag end to end: the
// resolved mode must land in every JSON line and bad values must fail.
func TestSweepProvenanceFlag(t *testing.T) {
	for _, tt := range []struct {
		flag string
		want string
	}{
		{flag: "auto", want: `"provenance":"full"`}, // n=8 is below the auto threshold
		{flag: "count", want: `"provenance":"count"`},
		{flag: "off", want: `"provenance":"off"`},
	} {
		out := sweepOut(t, []string{
			"-scenarios", "uniform", "-algs", "gathering", "-n", "8",
			"-reps", "2", "-seed", "3", "-provenance", tt.flag,
		})
		if !strings.Contains(out, tt.want) {
			t.Errorf("-provenance %s: output missing %s:\n%s", tt.flag, tt.want, out)
		}
	}
	if err := run([]string{"-provenance", "bogus"}, io.Discard, io.Discard); err == nil {
		t.Error("bad provenance flag should fail")
	}
}

// TestSweepProvenanceModesAgreeOnStatistics checks, at the CLI level,
// that full and count-only provenance change nothing but the mode label
// in the streamed JSONL (the batched-vs-scalar differential gate lives
// in internal/sweep, where ForceScalar is reachable).
func TestSweepProvenanceModesAgreeOnStatistics(t *testing.T) {
	base := []string{"-scenarios", "uniform;zipf:alpha=1", "-algs", "waiting,gathering",
		"-n", "8,12", "-reps", "2", "-seed", "3"}
	full := sweepOut(t, append([]string{"-provenance", "full"}, base...))
	count := sweepOut(t, append([]string{"-provenance", "count"}, base...))
	norm := func(s string) string {
		s = strings.ReplaceAll(s, `"provenance":"full"`, `"provenance":"X"`)
		return strings.ReplaceAll(s, `"provenance":"count"`, `"provenance":"X"`)
	}
	if norm(full) != norm(count) {
		t.Errorf("full and count sweeps disagree beyond the mode label:\n--- full ---\n%s\n--- count ---\n%s", full, count)
	}
}

// TestSweepProfiles smoke-tests the pprof flags.
func TestSweepProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	sweepOut(t, []string{
		"-scenarios", "uniform", "-algs", "gathering", "-n", "8", "-reps", "2",
		"-cpuprofile", cpu, "-memprofile", mem,
	})
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty: %v", p, err)
		}
	}
}

// failingWriter fails every write after the first n bytes — the
// short-write/ENOSPC class of stream failure.
type failingWriter struct {
	budget int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.budget <= 0 {
		return 0, errors.New("write: no space left on device")
	}
	if len(p) > w.budget {
		n := w.budget
		w.budget = 0
		return n, errors.New("write: no space left on device")
	}
	w.budget -= len(p)
	return len(p), nil
}

// TestWriteErrorPropagatesToExitCode is the regression test for the
// silently-lost-cells bug: a failing JSONL stream must abort the sweep
// and surface as a non-nil error (exit code 1), not drop cells.
func TestWriteErrorPropagatesToExitCode(t *testing.T) {
	args := []string{"-scenarios", "uniform", "-algs", "waiting,gathering",
		"-n", "6,8,10,12", "-reps", "2", "-seed", "3"}
	err := run(args, &failingWriter{budget: 300}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "no space left") {
		t.Fatalf("err = %v, want the stream write error", err)
	}
	// The same failure must also surface through the checkpointed path.
	err = run(append([]string{"-checkpoint", t.TempDir() + "/ck"}, args...),
		&failingWriter{budget: 300}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "no space left") {
		t.Fatalf("checkpointed: err = %v, want the stream write error", err)
	}
}

// TestCheckpointResumeByteIdentical drives -checkpoint/-resume end to
// end: a run killed mid-sweep (via the service's crash hook) and resumed
// through the CLI emits output byte-identical to a clean run.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	base := []string{"-scenarios", "uniform;zipf:alpha=1", "-algs", "waiting,gathering",
		"-n", "6,8,10", "-reps", "2", "-seed", "9", "-summary"}
	clean := sweepOut(t, base)

	// Simulate the SIGKILL with the service's cell-boundary hook, then
	// hand the half-written checkpoint to the CLI's -resume.
	dir := filepath.Join(t.TempDir(), "ck")
	grid := sweep.Grid{
		Scenarios:  []sweep.ScenarioRef{{Name: "uniform"}, {Name: "zipf", Params: map[string]string{"alpha": "1"}}},
		Algorithms: []string{"waiting", "gathering"},
		Sizes:      []int{6, 8, 10},
		Replicas:   2,
		Seed:       9,
		Provenance: "auto", // match the CLI's -provenance default: fingerprints must agree
	}
	killed := errors.New("killed")
	_, _, err := sweepd.Run(grid, dir, sweepd.Options{
		OnResult: func(sweep.CellResult) error { return nil },
		AfterCheckpoint: func(done, total int) error {
			if done >= 5 {
				return killed
			}
			return nil
		},
	})
	if !errors.Is(err, killed) {
		t.Fatalf("setup kill: %v", err)
	}

	resumed := sweepOut(t, append([]string{"-resume", dir}, base...))
	if resumed != clean {
		t.Errorf("-resume output differs from a clean run:\n--- clean ---\n%s\n--- resumed ---\n%s", clean, resumed)
	}
	// Resuming the now-complete checkpoint is a byte-identical no-op too.
	again := sweepOut(t, append([]string{"-resume", dir}, base...))
	if again != clean {
		t.Error("second -resume differs from a clean run")
	}
}

// TestShardMergeByteIdentical runs every shard through the CLI and
// stitches them with the merge subcommand: the merged stream must be
// byte-identical to the unsharded run, and the shard streams must
// partition the cells.
func TestShardMergeByteIdentical(t *testing.T) {
	base := []string{"-scenarios", "uniform;edge-markovian", "-algs", "waiting,gathering",
		"-n", "6,8,10", "-reps", "2", "-seed", "4", "-summary"}
	clean := sweepOut(t, base)

	const m = 3
	tmp := t.TempDir()
	dirs := make([]string, m)
	cellLines := 0
	for i := 0; i < m; i++ {
		dirs[i] = filepath.Join(tmp, "shard"+itoa(i))
		out := sweepOut(t, append([]string{
			"-shard", itoa(i) + "/" + itoa(m), "-checkpoint", dirs[i],
		}, base...))
		// A shard's own stream is its cells plus its shard totals line.
		cellLines += strings.Count(out, "\n") - 1
	}
	if cellLines != 12 {
		t.Errorf("shard streams carry %d cells in total, want 12 (disjoint cover)", cellLines)
	}

	merged := sweepOut(t, append([]string{"merge", "-summary"}, dirs...))
	if merged != clean {
		t.Errorf("merge output differs from the unsharded run:\n--- clean ---\n%s\n--- merged ---\n%s", clean, merged)
	}
}

// TestStaleCheckpointRejectedByCLI: resuming with changed grid flags must
// fail loudly instead of mixing two sweeps.
func TestStaleCheckpointRejectedByCLI(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	sweepOut(t, []string{"-scenarios", "uniform", "-algs", "gathering",
		"-n", "6,8", "-reps", "2", "-seed", "3", "-checkpoint", dir})
	err := run([]string{"-scenarios", "uniform", "-algs", "gathering",
		"-n", "6,8", "-reps", "2", "-seed", "4", "-resume", dir}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "stale checkpoint") {
		t.Errorf("changed -seed on -resume: got %v, want stale-checkpoint rejection", err)
	}
	// A fresh -checkpoint into an existing checkpoint is refused too.
	err = run([]string{"-scenarios", "uniform", "-algs", "gathering",
		"-n", "6,8", "-reps", "2", "-seed", "3", "-checkpoint", dir}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Errorf("re-checkpoint into existing dir: got %v", err)
	}
}

// TestShardAndMergeFlagErrors covers the new flag-validation paths.
func TestShardAndMergeFlagErrors(t *testing.T) {
	for _, tt := range []struct {
		name string
		args []string
	}{
		{name: "malformed shard", args: []string{"-shard", "3"}},
		{name: "shard index out of range", args: []string{"-shard", "3/3"}},
		{name: "negative shard", args: []string{"-shard", "-1/3"}},
		{name: "checkpoint and resume together", args: []string{"-checkpoint", "a", "-resume", "b"}},
		{name: "merge without dirs", args: []string{"merge"}},
		{name: "merge missing dir", args: []string{"merge", "/nonexistent-checkpoint-dir"}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args, io.Discard, io.Discard); err == nil {
				t.Error("want error")
			}
		})
	}
}
