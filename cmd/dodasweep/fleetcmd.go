package main

// Fleet subcommands and live observability: coordinate (lease server +
// final merge), work (lease-driven worker), status / watch (read-only
// fleet dashboards over checkpoint journals), plus the shared grid-flag
// set and the throttled stderr progress line.

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"doda/internal/chaos"
	"doda/internal/fleet"
	"doda/internal/sweep"
	"doda/internal/sweepd"
)

// gridFlags is the one definition of the sweep-grid flag set, shared by
// the root run command and coordinate so a fleet is specified with the
// exact flags a single-process run uses.
type gridFlags struct {
	scenarios, algs, sizes, prov *string
	reps, max                    *int
	seed                         *uint64
}

func addGridFlags(fs *flag.FlagSet) *gridFlags {
	return &gridFlags{
		scenarios: fs.String("scenarios", "uniform", "semicolon-separated scenarios, each name[:k=v,k2=v2] (see `dodascen list`)"),
		algs:      fs.String("algs", "gathering", "comma-separated algorithms: "+strings.Join(sweep.AlgorithmNames(), " | ")),
		sizes:     fs.String("n", "32", "comma-separated node counts"),
		reps:      fs.Int("reps", 10, "seed replicas per cell"),
		seed:      fs.Uint64("seed", 1, "grid seed; every cell seed derives from it deterministically"),
		max:       fs.Int("max", 0, "interaction cap per run (0 = a generous scenario default)"),
		prov:      fs.String("provenance", "auto", "engine provenance mode: auto | full | count | off (auto = full below n="+strconv.Itoa(sweep.AutoProvenanceThreshold)+", count-only above)"),
	}
}

func (g *gridFlags) grid() (sweep.Grid, error) {
	refs, err := sweep.ParseScenarios(*g.scenarios)
	if err != nil {
		return sweep.Grid{}, err
	}
	ns, err := parseInts(*g.sizes)
	if err != nil {
		return sweep.Grid{}, err
	}
	return sweep.Grid{
		Scenarios:       refs,
		Algorithms:      splitList(*g.algs),
		Sizes:           ns,
		Replicas:        *g.reps,
		Seed:            *g.seed,
		MaxInteractions: *g.max,
		Provenance:      *g.prov,
	}, nil
}

// progressLine prints a throttled cells-done/ETA line to stderr as cell
// results stream out. It deliberately never forces a final print: short
// sweeps finish inside the throttle window and stay silent, and the
// existing completion summary already reports totals.
type progressLine struct {
	w     io.Writer
	total int
	start time.Time

	mu   sync.Mutex
	last time.Time
	done int
}

func newProgressLine(w io.Writer, total int) *progressLine {
	now := time.Now()
	return &progressLine{w: w, total: total, start: now, last: now}
}

func (p *progressLine) bump() {
	p.mu.Lock()
	p.done++
	now := time.Now()
	if now.Sub(p.last) >= 500*time.Millisecond && p.done < p.total {
		p.last = now
		elapsed := now.Sub(p.start).Seconds()
		rate := float64(p.done) / elapsed
		eta := "?"
		if rate > 0 {
			eta = (time.Duration(float64(p.total-p.done) / rate * float64(time.Second))).Round(time.Second).String()
		}
		fmt.Fprintf(p.w, "dodasweep: progress %d/%d cells, %.1f cells/sec, ETA %s\n", p.done, p.total, rate, eta)
	}
	p.mu.Unlock()
}

// runCoordinate implements the coordinate subcommand: serve shard leases
// for the grid until every shard completes, then merge the shard
// checkpoints and emit the byte-identical result stream.
func runCoordinate(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("dodasweep coordinate", flag.ContinueOnError)
	fs.SetOutput(errw)
	gf := addGridFlags(fs)
	var (
		shards   = fs.Int("shards", 2, "shard leases to split the grid into (each worker runs one at a time)")
		dir      = fs.String("dir", "", "fleet root directory; shard i checkpoints into dir/shard-<i> (required)")
		addr     = fs.String("addr", "127.0.0.1:0", "host:port to serve the lease protocol on (port 0 picks a free one)")
		addrFile = fs.String("addr-file", "", "write the bound address to this file once listening (workers and scripts discover the coordinator through it)")
		ttl      = fs.Duration("lease-ttl", 30*time.Second, "lease time-to-live without a heartbeat; must comfortably exceed the slowest cell's wall time")
		summary  = fs.Bool("summary", false, "also print the fleet totals as a final JSON line on stdout")
		resume   = fs.Bool("resume", false, "rebuild the partition table of a crashed coordinator from dir/coord.log and the shard checkpoints")
		maxRetry = fs.Int("max-shard-retries", 8, "permanently fail a shard after this many requeues (expiries and releases); the coordinate exit is then non-zero (0 = retry forever)")
	)
	fs.Usage = func() {
		fmt.Fprintln(errw, "usage: dodasweep coordinate -shards M -dir fleet/ [grid flags] [-addr host:port] [-addr-file f] [-lease-ttl d] [-resume]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("coordinate: -dir is required")
	}
	grid, err := gf.grid()
	if err != nil {
		return err
	}
	c, err := fleet.NewCoordinator(grid, fleet.CoordinatorOptions{
		ShardCount:      *shards,
		Dir:             *dir,
		LeaseTTL:        *ttl,
		Resume:          *resume,
		MaxShardRetries: *maxRetry,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(errw, "dodasweep coordinate: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	bound, err := c.Start(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if *addrFile != "" {
		if err := writeFileAtomic(*addrFile, []byte(bound+"\n")); err != nil {
			return err
		}
	}
	fmt.Fprintf(errw, "dodasweep coordinate: serving %d shard lease(s) on %s (lease TTL %s)\n", *shards, bound, *ttl)
	if err := c.Wait(context.Background()); err != nil {
		return err
	}
	fmt.Fprintf(errw, "dodasweep coordinate: all %d shard(s) complete, merging\n", *shards)

	results, totals, err := sweepd.Merge(c.ShardDirs())
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	fmt.Fprintf(errw, "dodasweep coordinate: %d cells, %d runs (%d terminated)\n",
		totals.Cells, totals.Runs, totals.Terminated)
	if *summary {
		return enc.Encode(totals)
	}
	return nil
}

// runWork implements the work subcommand: lease shards from a
// coordinator and execute them with checkpointing and heartbeats until
// the fleet is done.
func runWork(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("dodasweep work", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		coord       = fs.String("coord", "", "coordinator base URL (e.g. http://127.0.0.1:7700)")
		addrFile    = fs.String("addr-file", "", "read the coordinator address from this file (written by coordinate -addr-file)")
		addrTimeout = fs.Duration("addr-timeout", 10*time.Second, "how long to wait for -addr-file to appear")
		workers     = fs.Int("workers", 0, "in-process sweep workers per leased shard (0 = all cores)")
		perReplica  = fs.Bool("per-replica", false, "checkpoint every completed replica of the leased shards")
		name        = fs.String("name", "", "worker name in leases and dashboards (default host:pid)")
		quiet       = fs.Bool("quiet", false, "suppress the per-shard progress lines")
		retryN      = fs.Int("retry-attempts", 0, "attempts per coordinator call before giving up (0 = default 8)")
		retryBase   = fs.Duration("retry-base", 0, "initial retry backoff, doubling per attempt (0 = default 100ms)")
		retryMax    = fs.Duration("retry-max", 0, "retry backoff cap (0 = default 5s)")
		chaosFS     = fs.Uint64("chaos-fs", 0, "seed deterministic filesystem fault injection into the journal write path (0 = off; testing only)")
		chaosHTTP   = fs.Uint64("chaos-http", 0, "seed deterministic transport fault injection into coordinator calls (0 = off; testing only)")
		chaosMax    = fs.Int("chaos-max", 8, "fault budget per chaos seam; after it drains the seam is a passthrough")
	)
	fs.Usage = func() {
		fmt.Fprintln(errw, "usage: dodasweep work (-coord URL | -addr-file f) [-workers N] [-per-replica] [-name s] [-retry-attempts N] [-chaos-fs seed] [-chaos-http seed]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	url, err := coordinatorURL(*coord, *addrFile, *addrTimeout)
	if err != nil {
		return err
	}
	opt := fleet.WorkerOptions{
		Name:       *name,
		Workers:    *workers,
		PerReplica: *perReplica,
		Retry:      fleet.RetryPolicy{Attempts: *retryN, Base: *retryBase, Max: *retryMax},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(errw, "dodasweep work: "+format+"\n", args...)
		},
	}
	var faultFS *chaos.FaultFS
	if *chaosFS != 0 {
		faultFS = chaos.NewFaultFS(chaos.Disk, chaos.FSOptions{
			Seed: *chaosFS, WriteFail: 0.05, SyncFail: 0.05, RenameFail: 0.03, TornRename: 0.02,
			MaxFaults: *chaosMax,
		})
		opt.FS = faultFS
	}
	if *chaosHTTP != 0 {
		opt.Client = &http.Client{
			Timeout: 10 * time.Second,
			Transport: chaos.NewTransport(nil, chaos.TransportOptions{
				Seed: *chaosHTTP, Latency: 0.1, MaxLatency: 50 * time.Millisecond,
				Reset: 0.05, Err5xx: 0.05, DropResponse: 0.03,
				MaxFaults: *chaosMax,
			}),
		}
	}
	if !*quiet {
		opt.OnProgress = func(shard int, p sweepd.Progress) {
			fmt.Fprintf(errw, "dodasweep work: shard %d: %d/%d cells, %.0f interactions\n",
				shard, p.CellsDone, p.CellsTotal, p.Interactions)
		}
	}
	err = fleet.Work(context.Background(), url, opt)
	if err != nil && faultFS != nil && faultFS.Crashed() {
		// An injected torn-rename "power cut": report it distinctly so a
		// supervising script (or the chaos e2e) can restart the worker,
		// which models the reboot.
		return fmt.Errorf("work: injected crash (restart to continue): %w", err)
	}
	return err
}

// writeFileAtomic publishes path via tmp+rename, so a reader polling
// for it (coordinatorURL) can never observe a half-written address.
func writeFileAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// coordinatorURL resolves the coordinator base URL from -coord or
// -addr-file (whichever is given; the file wins a race by appearing).
func coordinatorURL(coord, addrFile string, timeout time.Duration) (string, error) {
	if coord != "" {
		return coord, nil
	}
	if addrFile == "" {
		return "", fmt.Errorf("need -coord URL or -addr-file f")
	}
	deadline := time.Now().Add(timeout)
	for {
		raw, err := os.ReadFile(addrFile)
		if err == nil && len(strings.TrimSpace(string(raw))) > 0 {
			return "http://" + strings.TrimSpace(string(raw)), nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return "", fmt.Errorf("waiting for %s: %w", addrFile, err)
			}
			return "", fmt.Errorf("%s still empty after %s", addrFile, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// expandFleetDirs widens each argument that is a fleet root (no
// checkpoint of its own, but shard-* children) into its shard
// directories, so `status fleet/` works as well as `status fleet/shard-*`.
func expandFleetDirs(dirs []string) []string {
	var out []string
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			out = append(out, dir)
			continue
		}
		hasSeg, shardDirs := false, []string{}
		for _, e := range entries {
			if !e.IsDir() && strings.HasPrefix(e.Name(), "seg-") {
				hasSeg = true
			}
			if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
				shardDirs = append(shardDirs, filepath.Join(dir, e.Name()))
			}
		}
		if !hasSeg && len(shardDirs) > 0 {
			sort.Strings(shardDirs)
			out = append(out, shardDirs...)
			continue
		}
		out = append(out, dir)
	}
	return out
}

// runStatus implements the status subcommand: one read-only snapshot of
// a fleet's progress from its checkpoint journals (plus lease state when
// a coordinator is reachable).
func runStatus(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("dodasweep status", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		coord    = fs.String("coord", "", "also query this coordinator URL for lease and heartbeat state")
		addrFile = fs.String("addr-file", "", "read the coordinator address from this file")
	)
	fs.Usage = func() {
		fmt.Fprintln(errw, "usage: dodasweep status [-coord URL | -addr-file f] <checkpoint-dir|fleet-root>...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	dirs := expandFleetDirs(fs.Args())
	if len(dirs) == 0 && *coord == "" && *addrFile == "" {
		return fmt.Errorf("status: no checkpoint directories given")
	}
	watchers := make(map[string]*sweepd.Watcher, len(dirs))
	_, failed, err := renderStatus(out, dirs, watchers, *coord, *addrFile)
	if err != nil {
		return err
	}
	return failedShardsErr("status", failed)
}

// failedShardsErr turns a permanently-failed shard list into the
// non-zero exit that lets scripts detect a wedged fleet.
func failedShardsErr(cmd string, failed []int) error {
	if len(failed) == 0 {
		return nil
	}
	return fmt.Errorf("%s: %d shard(s) permanently failed: %v", cmd, len(failed), failed)
}

// runWatch implements the watch subcommand: the status snapshot,
// refreshed on an interval until every watched shard reports done (or
// -count refreshes have printed).
func runWatch(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("dodasweep watch", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		coord    = fs.String("coord", "", "also query this coordinator URL for lease and heartbeat state")
		addrFile = fs.String("addr-file", "", "read the coordinator address from this file")
		every    = fs.Duration("every", 2*time.Second, "refresh interval")
		count    = fs.Int("count", 0, "stop after this many refreshes (0 = until the fleet is done)")
	)
	fs.Usage = func() {
		fmt.Fprintln(errw, "usage: dodasweep watch [-every d] [-count N] [-coord URL | -addr-file f] <checkpoint-dir|fleet-root>...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	dirs := expandFleetDirs(fs.Args())
	if len(dirs) == 0 {
		return fmt.Errorf("watch: no checkpoint directories given")
	}
	watchers := make(map[string]*sweepd.Watcher, len(dirs))
	for i := 0; ; i++ {
		fmt.Fprintf(out, "--- %s\n", time.Now().Format("15:04:05"))
		done, failed, err := renderStatus(out, dirs, watchers, *coord, *addrFile)
		if err != nil {
			return err
		}
		if len(failed) > 0 {
			// A permanently failed shard never recovers on its own: stop
			// watching and report the wedge instead of refreshing forever.
			return failedShardsErr("watch", failed)
		}
		if done || (*count > 0 && i+1 >= *count) {
			return nil
		}
		time.Sleep(*every)
	}
}

// renderStatus prints one dashboard snapshot and reports whether every
// watched shard is complete, plus any shards the coordinator has marked
// permanently failed. Watchers are reused across refreshes so
// already-parsed immutable segments are never re-read.
func renderStatus(out io.Writer, dirs []string, watchers map[string]*sweepd.Watcher, coord, addrFile string) (bool, []int, error) {
	allDone := len(dirs) > 0
	var cellsDone, cellsTotal, transmissions int
	var interactions float64
	for _, dir := range dirs {
		w := watchers[dir]
		if w == nil {
			w = sweepd.NewWatcher(dir)
			watchers[dir] = w
		}
		snap, err := w.Snapshot()
		if errors.Is(err, sweepd.ErrNoCheckpoint) {
			fmt.Fprintf(out, "%s: no checkpoint yet\n", dir)
			allDone = false
			continue
		}
		if err != nil {
			return false, nil, fmt.Errorf("status: %s: %w", dir, err)
		}
		cellsDone += snap.CellsDone
		cellsTotal += snap.CellsTotal
		interactions += snap.Interactions
		transmissions += snap.Transmissions
		line := fmt.Sprintf("%s: shard %d/%d: %d/%d cells",
			dir, snap.Header.ShardIndex, snap.Header.ShardCount, snap.CellsDone, snap.CellsTotal)
		if snap.ReplicasDone > 0 {
			line += fmt.Sprintf(" (+%d replicas in flight)", snap.ReplicasDone)
		}
		line += fmt.Sprintf(", %.3g interactions", snap.Interactions)
		if p := snap.Progress; p != nil && p.ElapsedMs > 0 && p.FreshCells > 0 {
			rate := float64(p.FreshCells) / (p.ElapsedMs / 1000)
			line += fmt.Sprintf(", %.1f cells/sec", rate)
			if left := snap.CellsTotal - snap.CellsDone; left > 0 && rate > 0 {
				line += fmt.Sprintf(", ETA %s", (time.Duration(float64(left) / rate * float64(time.Second))).Round(time.Second))
			}
		}
		if snap.CellsDone == snap.CellsTotal {
			line += " [done]"
		} else {
			allDone = false
		}
		fmt.Fprintln(out, line)
	}
	if len(dirs) > 1 {
		fmt.Fprintf(out, "fleet: %d/%d cells, %.3g interactions, %d transmissions\n",
			cellsDone, cellsTotal, interactions, transmissions)
	}
	var failed []int
	if coord != "" || addrFile != "" {
		url, err := coordinatorURL(coord, addrFile, time.Second)
		if err != nil {
			return false, nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		st, err := fleet.FetchStatus(ctx, nil, url)
		cancel()
		if err != nil {
			fmt.Fprintf(out, "coordinator: unreachable (%v)\n", err)
		} else {
			failed = st.Failed
			fmt.Fprintf(out, "coordinator: fingerprint %.12s, %d/%d shards done\n",
				st.Fingerprint, st.Done, st.ShardCount)
			for _, s := range st.Shards {
				row := fmt.Sprintf("  shard %d: %s", s.Shard, s.State)
				if s.Worker != "" {
					row += " by " + s.Worker
				}
				if s.HeartbeatAgeMs >= 0 {
					row += fmt.Sprintf(", heartbeat %.1fs ago", s.HeartbeatAgeMs/1000)
				}
				if s.Retries > 0 {
					row += fmt.Sprintf(", %d retries", s.Retries)
				}
				fmt.Fprintln(out, row)
			}
			if len(failed) > 0 {
				fmt.Fprintf(out, "coordinator: FAILED shards (retry budget spent): %v\n", failed)
			}
		}
	}
	return allDone, failed, nil
}
