package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"doda/internal/fleet"
)

// fleetGridArgs is a small multi-scenario grid used by the fleet CLI
// tests; identical flags drive both the fleet and the single-process
// reference run.
var fleetGridArgs = []string{
	"-scenarios", "uniform;churn", "-algs", "waiting,gathering",
	"-n", "4,6,8", "-reps", "2", "-seed", "321",
}

// TestCoordinateWorkEndToEnd drives the whole fleet path through the
// CLI: a coordinator with 3 shards, two workers discovering it via
// -addr-file, and the merged stdout byte-identical to a plain
// single-process sweep with the same grid flags.
func TestCoordinateWorkEndToEnd(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	fleetDir := filepath.Join(dir, "fleet")

	var coordOut bytes.Buffer
	var wg sync.WaitGroup
	wg.Add(1)
	var coordErr error
	go func() {
		defer wg.Done()
		coordErr = run(append([]string{
			"coordinate", "-shards", "3", "-dir", fleetDir,
			"-addr-file", addrFile, "-summary",
		}, fleetGridArgs...), &coordOut, io.Discard)
	}()

	workErrs := make([]error, 2)
	for i := range workErrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			workErrs[i] = run([]string{
				"work", "-addr-file", addrFile, "-workers", "2", "-quiet",
			}, io.Discard, io.Discard)
		}()
	}
	wg.Wait()
	if coordErr != nil {
		t.Fatalf("coordinate: %v", coordErr)
	}
	for i, err := range workErrs {
		// A worker that arrives after a fast fleet already finished (and
		// the coordinator exited) gets connection-refused on first
		// contact; with this tiny grid that race is expected.
		if err != nil && !strings.Contains(err.Error(), "cannot reach coordinator") {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	want := sweepOut(t, append([]string{"-workers", "1", "-summary", "-quiet"}, fleetGridArgs...))
	if got := coordOut.String(); got != want {
		t.Errorf("fleet output differs from single-process run:\n--- fleet ---\n%s\n--- single ---\n%s", got, want)
	}

	// The finished fleet renders a status dashboard from its journals.
	var status bytes.Buffer
	if err := run([]string{"status", fleetDir}, &status, io.Discard); err != nil {
		t.Fatalf("status: %v", err)
	}
	s := status.String()
	if strings.Count(s, "[done]") != 3 {
		t.Errorf("status should show 3 done shards:\n%s", s)
	}
	if !strings.Contains(s, "fleet:") {
		t.Errorf("status lacks the fleet summary line:\n%s", s)
	}

	// watch with -count exits after one refresh even on a done fleet.
	var watch bytes.Buffer
	if err := run([]string{"watch", "-count", "1", "-every", "10ms", fleetDir}, &watch, io.Discard); err != nil {
		t.Fatalf("watch: %v", err)
	}
	if !strings.Contains(watch.String(), "[done]") {
		t.Errorf("watch output lacks done markers:\n%s", watch.String())
	}

	// Partial analysis of a *complete* fleet still works via the fleet root.
	var md bytes.Buffer
	if err := run([]string{"analyze", "-partial", "-bootstrap", "0", fleetDir}, &md, io.Discard); err != nil {
		t.Fatalf("analyze -partial: %v", err)
	}
	if !strings.Contains(md.String(), "Partial analysis") {
		t.Errorf("partial analysis lacks its banner:\n%.400s", md.String())
	}
}

// TestChaosWorkEndToEnd reruns the fleet e2e with both chaos seams
// armed on every worker: the merged stdout must still be byte-identical
// to a clean single-process sweep. Workers that die of an injected
// "power cut" are restarted, like the real supervisor loop would.
func TestChaosWorkEndToEnd(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	fleetDir := filepath.Join(dir, "fleet")

	var coordOut bytes.Buffer
	var wg sync.WaitGroup
	wg.Add(1)
	var coordErr error
	go func() {
		defer wg.Done()
		coordErr = run(append([]string{
			"coordinate", "-shards", "3", "-dir", fleetDir,
			"-addr-file", addrFile, "-summary", "-lease-ttl", "2s",
		}, fleetGridArgs...), &coordOut, io.Discard)
	}()

	workErrs := make([]error, 2)
	for i := range workErrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seed := strconv.Itoa(5000 + i)
			for attempt := 0; attempt < 30; attempt++ {
				workErrs[i] = run([]string{
					"work", "-addr-file", addrFile, "-workers", "2", "-quiet",
					"-chaos-fs", seed, "-chaos-http", seed, "-chaos-max", "4",
					"-retry-attempts", "10", "-retry-base", "5ms", "-retry-max", "100ms",
				}, io.Discard, io.Discard)
				if workErrs[i] == nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	if coordErr != nil {
		t.Fatalf("coordinate: %v", coordErr)
	}
	for i, err := range workErrs {
		if err != nil && !strings.Contains(err.Error(), "cannot reach coordinator") {
			t.Fatalf("chaos worker %d never converged: %v", i, err)
		}
	}

	want := sweepOut(t, append([]string{"-workers", "1", "-summary", "-quiet"}, fleetGridArgs...))
	if got := coordOut.String(); got != want {
		t.Errorf("chaos fleet output differs from single-process run:\n--- fleet ---\n%s\n--- single ---\n%s", got, want)
	}
}

// TestCoordinateRefusesDirtyDirAndResumesIt: a fleet directory that
// already has a coord.log refuses a fresh coordinate, and -resume on a
// finished fleet re-merges the same bytes instead of redoing work.
func TestCoordinateRefusesDirtyDirAndResumesIt(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	fleetDir := filepath.Join(dir, "fleet")

	var firstOut bytes.Buffer
	var wg sync.WaitGroup
	wg.Add(2)
	var coordErr, workErr error
	go func() {
		defer wg.Done()
		coordErr = run(append([]string{
			"coordinate", "-shards", "2", "-dir", fleetDir, "-addr-file", addrFile, "-summary",
		}, fleetGridArgs...), &firstOut, io.Discard)
	}()
	go func() {
		defer wg.Done()
		workErr = run([]string{"work", "-addr-file", addrFile, "-workers", "2", "-quiet"}, io.Discard, io.Discard)
	}()
	wg.Wait()
	if coordErr != nil || (workErr != nil && !strings.Contains(workErr.Error(), "cannot reach coordinator")) {
		t.Fatalf("first fleet: coord=%v work=%v", coordErr, workErr)
	}

	err := run(append([]string{
		"coordinate", "-shards", "2", "-dir", fleetDir,
	}, fleetGridArgs...), io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "exists") {
		t.Fatalf("fresh coordinate over a used dir: want refusal, got %v", err)
	}

	var resumedOut bytes.Buffer
	if err := run(append([]string{
		"coordinate", "-shards", "2", "-dir", fleetDir, "-summary", "-resume",
	}, fleetGridArgs...), &resumedOut, io.Discard); err != nil {
		t.Fatalf("coordinate -resume on a finished fleet: %v", err)
	}
	if resumedOut.String() != firstOut.String() {
		t.Error("resumed merge differs from the original fleet output")
	}
}

// TestWriteFileAtomic pins the tmp+rename publish of -addr-file.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "addr")
	if err := writeFileAtomic(path, []byte("first\n")); err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(path, []byte("second\n")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "second\n" {
		t.Fatalf("got %q, %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("tmp files left behind: %v", entries)
	}
}

// TestStatusBeforeCheckpoint covers the empty-directory path: status
// must report "no checkpoint yet" rather than erroring.
func TestStatusBeforeCheckpoint(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"status", dir}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no checkpoint yet") {
		t.Errorf("got %q, want a 'no checkpoint yet' line", out.String())
	}
}

// TestExpandFleetDirs checks fleet-root widening: a directory holding
// shard-* children expands to them in order, while a checkpoint
// directory (or anything unreadable) passes through untouched.
func TestExpandFleetDirs(t *testing.T) {
	root := t.TempDir()
	for _, name := range []string{"shard-001", "shard-000", "notes"} {
		if err := os.MkdirAll(filepath.Join(root, name), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	got := expandFleetDirs([]string{root, "missing-dir"})
	want := []string{
		filepath.Join(root, "shard-000"),
		filepath.Join(root, "shard-001"),
		"missing-dir",
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}

	// A directory with its own segments is a checkpoint, not a root.
	ckpt := t.TempDir()
	if err := os.WriteFile(filepath.Join(ckpt, "seg-000000.jsonl"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(ckpt, "shard-000"), 0o755); err != nil {
		t.Fatal(err)
	}
	if got := expandFleetDirs([]string{ckpt}); len(got) != 1 || got[0] != ckpt {
		t.Fatalf("checkpoint dir was expanded: %v", got)
	}
}

// TestFleetCmdFlagErrors pins the usage errors of the fleet subcommands.
func TestFleetCmdFlagErrors(t *testing.T) {
	for _, tt := range []struct {
		name string
		args []string
	}{
		{name: "coordinate without dir", args: []string{"coordinate", "-shards", "2"}},
		{name: "work without coordinator", args: []string{"work"}},
		{name: "status without dirs", args: []string{"status"}},
		{name: "watch without dirs", args: []string{"watch"}},
		{name: "per-replica without checkpoint", args: []string{"-per-replica"}},
		{name: "partial with results file", args: []string{"analyze", "-partial", "-results", "x.jsonl"}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args, io.Discard, io.Discard); err == nil {
				t.Error("want error")
			}
		})
	}
}

// TestWorkAddrFileTimeout bounds the worker's wait for a coordinator
// address that never appears.
func TestWorkAddrFileTimeout(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "never-written")
	err := run([]string{"work", "-addr-file", missing, "-addr-timeout", "100ms"}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("want timeout error")
	}
}

// TestProgressLineThrottles exercises the stderr progress line: silent
// inside the throttle window, one line after it, and silent on the final
// cell (the completion summary covers it).
func TestProgressLineThrottles(t *testing.T) {
	var buf bytes.Buffer
	p := newProgressLine(&buf, 100)
	p.bump()
	if buf.Len() != 0 {
		t.Fatalf("printed inside the throttle window: %q", buf.String())
	}
	p.last = time.Now().Add(-time.Second) // age past the throttle
	p.bump()
	line := buf.String()
	if !strings.Contains(line, "2/100 cells") || !strings.Contains(line, "ETA") {
		t.Fatalf("got %q, want a done/total + ETA line", line)
	}
	buf.Reset()
	p.done = 99
	p.last = time.Now().Add(-time.Second)
	p.bump()
	if buf.Len() != 0 {
		t.Fatalf("printed on the final cell: %q", buf.String())
	}
}

// TestQuietSuppressesProgress runs a real sweep with -quiet and checks
// stderr carries only the banner and summary, no progress lines.
func TestQuietSuppressesProgress(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{
		"-scenarios", "uniform", "-algs", "waiting", "-n", "4", "-reps", "1", "-quiet",
	}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(errw.String(), "progress") {
		t.Errorf("-quiet still printed progress:\n%s", errw.String())
	}
}

// TestStatusWatchExitNonZeroOnFailedShards: a fleet wedged by
// permanently failed shards must make status and watch exit non-zero
// and print the failed shard list, so scripts can detect the wedge.
func TestStatusWatchExitNonZeroOnFailedShards(t *testing.T) {
	grid, err := (&gridFlags{
		scenarios: strp("uniform"), algs: strp("gathering"), sizes: strp("4,6"),
		reps: intp(2), seed: u64p(321), max: intp(0), prov: strp("auto"),
	}).grid()
	if err != nil {
		t.Fatal(err)
	}
	c, err := fleet.NewCoordinator(grid, fleet.CoordinatorOptions{
		ShardCount: 2, Dir: t.TempDir(), LeaseTTL: time.Minute, MaxShardRetries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	url, err := c.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Wedge shard 0: one lease + release exhausts MaxShardRetries=1.
	resp, err := http.Post("http://"+url+"/v1/lease", "application/json",
		strings.NewReader(`{"worker":"flaky"}`))
	if err != nil {
		t.Fatal(err)
	}
	var lease fleet.LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if lease.Status != fleet.StatusLease {
		t.Fatalf("lease status %q", lease.Status)
	}
	resp, err = http.Post("http://"+url+"/v1/release", "application/json",
		strings.NewReader(`{"lease_id":"`+lease.LeaseID+`","reason":"boom"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var out bytes.Buffer
	err = run([]string{"status", "-coord", "http://" + url}, &out, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "permanently failed") {
		t.Fatalf("status on wedged fleet: want failed-shards error, got %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "FAILED shards") || !strings.Contains(out.String(), "failed") {
		t.Errorf("status output missing failed shard list:\n%s", out.String())
	}

	out.Reset()
	err = run([]string{"watch", "-every", "50ms", "-coord", "http://" + url, t.TempDir()}, &out, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "permanently failed") {
		t.Fatalf("watch on wedged fleet: want failed-shards error, got %v\n%s", err, out.String())
	}
}

func strp(s string) *string { return &s }
func intp(i int) *int       { return &i }
func u64p(u uint64) *uint64 { return &u }
