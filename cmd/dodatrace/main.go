// Command dodatrace records, inspects and verifies execution traces.
//
// Usage:
//
//	dodatrace record -n 32 -alg gathering -seed 7 -o run.jsonl
//	dodatrace show run.jsonl
//	dodatrace verify -n 32 run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"doda"
	"doda/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dodatrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: dodatrace <record|show|verify> [flags]")
	}
	switch args[0] {
	case "record":
		return record(args[1:])
	case "show":
		return show(args[1:])
	case "verify":
		return verify(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 32, "number of nodes")
		algName = fs.String("alg", "gathering", "algorithm: waiting | gathering")
		seed    = fs.Uint64("seed", 1, "random seed")
		out     = fs.String("o", "trace.jsonl", "output file")
		max     = fs.Int("max", 0, "interaction cap (0 = generous default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var alg doda.Algorithm
	switch *algName {
	case "waiting":
		alg = doda.NewWaiting()
	case "gathering":
		alg = doda.NewGathering()
	default:
		return fmt.Errorf("unknown algorithm %q", *algName)
	}
	cap := *max
	if cap == 0 {
		cap = 60**n**n + 10000
	}
	adv, _, err := doda.RandomizedAdversary(*n, *seed)
	if err != nil {
		return err
	}
	rec := doda.NewTraceRecorder()
	res, err := doda.Run(doda.Config{N: *n, MaxInteractions: cap, Events: rec, VerifyAggregate: true}, alg, adv)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rec.Write(f); err != nil {
		return err
	}
	fmt.Printf("recorded %d interactions (terminated=%v) to %s\n", res.Interactions, res.Terminated, *out)
	return nil
}

func load(path string) (*trace.Recorder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

func show(args []string) error {
	fs := flag.NewFlagSet("show", flag.ContinueOnError)
	full := fs.Bool("full", false, "print every record (default: summary + transfers)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dodatrace show [-full] <file>")
	}
	rec, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	for _, r := range rec.Records {
		if !*full && r.Sender < 0 {
			continue
		}
		if r.Sender >= 0 {
			fmt.Printf("t=%-8d {%d,%d}  %d -> %d\n", r.T, r.U, r.V, r.Sender, r.Receiver)
		} else {
			fmt.Printf("t=%-8d {%d,%d}  %s\n", r.T, r.U, r.V, r.Decision)
		}
	}
	if s := rec.Result; s != nil {
		fmt.Printf("\n%s vs %s: terminated=%v duration=%d interactions=%d transmissions=%d declined=%d\n",
			s.Algorithm, s.Adversary, s.Terminated, s.Duration, s.Interactions, s.Transmissions, s.Declined)
		if s.Terminated {
			fmt.Printf("sink: %.4g from %d data\n", s.SinkPayload, s.SinkCount)
		}
	}
	return nil
}

func verify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	var (
		n    = fs.Int("n", 0, "number of nodes (required)")
		sink = fs.Int("sink", 0, "sink node")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *n == 0 {
		return fmt.Errorf("usage: dodatrace verify -n <nodes> [-sink id] <file>")
	}
	rec, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := rec.Verify(*n, doda.NodeID(*sink)); err != nil {
		return fmt.Errorf("verification failed: %w", err)
	}
	fmt.Printf("ok: %d records respect the model (single transmission, no receive after send)\n", len(rec.Records))
	return nil
}
