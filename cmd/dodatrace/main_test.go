package main

import (
	"path/filepath"
	"testing"
)

func TestRecordShowVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if err := run([]string{"record", "-n", "12", "-seed", "5", "-o", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"show", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"show", "-full", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"verify", "-n", "12", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordWaiting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.jsonl")
	if err := run([]string{"record", "-n", "8", "-alg", "waiting", "-o", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"verify", "-n", "8", path}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyWrongN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if err := run([]string{"record", "-n", "12", "-o", path}); err != nil {
		t.Fatal(err)
	}
	// Claiming 13 nodes breaks the terminated-means-n-1-transmissions
	// check.
	if err := run([]string{"verify", "-n", "13", path}); err == nil {
		t.Error("verification with wrong n should fail")
	}
}

func TestUsageErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "no subcommand", args: nil},
		{name: "unknown subcommand", args: []string{"frobnicate"}},
		{name: "record bad algorithm", args: []string{"record", "-alg", "nope"}},
		{name: "show missing file", args: []string{"show"}},
		{name: "show nonexistent", args: []string{"show", "/nonexistent/file"}},
		{name: "verify missing n", args: []string{"verify", "somefile"}},
		{name: "verify nonexistent", args: []string{"verify", "-n", "4", "/nonexistent/file"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("want error")
			}
		})
	}
}
