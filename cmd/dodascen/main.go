// Command dodascen explores the scenario registry: it lists the
// registered dynamic-graph workload generators and runs any algorithm
// against any scenario, emitting the outcome as JSON for downstream
// tooling.
//
// Usage:
//
//	dodascen list
//	dodascen run -scenario edge-markovian -alg gathering -n 64 -seed 42
//	dodascen run -scenario community -params communities=8,p-intra=0.95 -alg waiting
//	dodascen run -scenario churn -params p-fail=0.1,p-recover=0.3 -alg waiting-greedy
//	dodascen run -scenario trace -params file=contacts.csv -alg gathering
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"doda"
	"doda/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dodascen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: dodascen <list|run> [flags]")
	}
	switch args[0] {
	case "list":
		return list(out)
	case "run":
		return runScenario(args[1:], out)
	default:
		return fmt.Errorf("unknown command %q (want list or run)", args[0])
	}
}

// list prints the scenario catalogue.
func list(out io.Writer) error {
	for _, spec := range scenario.All() {
		if _, err := fmt.Fprintf(out, "%-16s %s\n", spec.Name, spec.Description); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(out, "%16s cf. %s\n", "", spec.Citation); err != nil {
			return err
		}
		for _, p := range spec.Params {
			def := p.Default
			if def == "" {
				def = "required"
			}
			if _, err := fmt.Fprintf(out, "%16s -params %s=<v> (default %s): %s\n", "", p.Name, def, p.Doc); err != nil {
				return err
			}
		}
	}
	return nil
}

// output is the JSON document one run emits.
type output struct {
	Scenario string            `json:"scenario"`
	Params   map[string]string `json:"params,omitempty"`
	N        int               `json:"n"`
	Seed     uint64            `json:"seed"`
	Max      int               `json:"max_interactions"`
	Result   resultJSON        `json:"result"`
}

// resultJSON flattens core.Result for stable JSON field names.
type resultJSON struct {
	Algorithm     string   `json:"algorithm"`
	Adversary     string   `json:"adversary"`
	Terminated    bool     `json:"terminated"`
	Failed        bool     `json:"failed,omitempty"`
	FailReason    string   `json:"fail_reason,omitempty"`
	Duration      int      `json:"duration"`
	Interactions  int      `json:"interactions"`
	Transmissions int      `json:"transmissions"`
	Declined      int      `json:"declined"`
	LastGap       int      `json:"last_gap"`
	SinkValue     *float64 `json:"sink_value,omitempty"`
	SinkCount     int      `json:"sink_count,omitempty"`
}

func runScenario(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dodascen run", flag.ContinueOnError)
	var (
		scen     = fs.String("scenario", "uniform", "scenario name (see `dodascen list`)")
		algName  = fs.String("alg", "gathering", "algorithm: waiting | gathering | waiting-greedy | full-knowledge")
		nFlag    = fs.Int("n", 32, "number of nodes (ignored by the trace scenario)")
		seed     = fs.Uint64("seed", 1, "random seed")
		max      = fs.Int("max", 0, "interaction cap (0 = a generous default)")
		rawParam = fs.String("params", "", "comma-separated scenario parameters, e.g. p-up=0.1,p-down=0.3")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	params, err := scenario.ParseParams(*rawParam)
	if err != nil {
		return err
	}
	spec, ok := scenario.Lookup(*scen)
	if !ok {
		return fmt.Errorf("unknown scenario %q (known: %s)", *scen, strings.Join(scenario.Names(), ", "))
	}
	w, err := spec.Build(*nFlag, *seed, params)
	if err != nil {
		return err
	}
	n := w.N

	cap := *max
	if cap == 0 {
		cap = scenario.DefaultCap(n)
	}
	if b, finite := w.View.Bound(); finite && cap > b {
		cap = b
	}

	var know *doda.Knowledge
	var alg doda.Algorithm
	switch *algName {
	case "waiting":
		alg = doda.NewWaiting()
	case "gathering":
		alg = doda.NewGathering()
	case "waiting-greedy":
		know, err = doda.NewKnowledge(doda.WithMeetTime(w.View, 0, cap))
		if err != nil {
			return err
		}
		alg = doda.NewWaitingGreedy(doda.TauStar(n))
	case "full-knowledge":
		know, err = doda.NewKnowledge(doda.WithFullSequence(w.View))
		if err != nil {
			return err
		}
		alg = doda.NewFullKnowledge(cap)
	default:
		return fmt.Errorf("unknown algorithm %q (want waiting, gathering, waiting-greedy or full-knowledge)", *algName)
	}

	res, err := doda.Run(doda.Config{N: n, MaxInteractions: cap, Know: know, VerifyAggregate: true}, alg, w.Adversary)
	if err != nil {
		return err
	}

	doc := output{
		Scenario: spec.Name,
		Params:   params,
		N:        n,
		Seed:     *seed,
		Max:      cap,
		Result: resultJSON{
			Algorithm:     res.Algorithm,
			Adversary:     res.Adversary,
			Terminated:    res.Terminated,
			Failed:        res.Failed,
			FailReason:    res.FailReason,
			Duration:      res.Duration,
			Interactions:  res.Interactions,
			Transmissions: res.Transmissions,
			Declined:      res.Declined,
			LastGap:       res.LastGap,
		},
	}
	if res.Terminated {
		v := res.SinkValue.Num
		doc.Result.SinkValue = &v
		doc.Result.SinkCount = res.SinkValue.Count
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
