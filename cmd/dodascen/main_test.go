package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestListPrintsRegisteredScenarios(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	scenarios := 0
	for _, name := range []string{"uniform", "zipf", "edge-markovian", "community", "churn", "trace"} {
		if strings.Contains(out, name) {
			scenarios++
		}
	}
	if scenarios < 4 {
		t.Errorf("list names only %d scenarios:\n%s", scenarios, out)
	}
}

// decodeRun runs the CLI and decodes its JSON output.
func decodeRun(t *testing.T, args []string) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	return doc
}

func TestRunEdgeMarkovianGathering(t *testing.T) {
	doc := decodeRun(t, []string{"run", "-scenario", "edge-markovian", "-alg", "gathering", "-n", "64", "-seed", "42"})
	if doc["scenario"] != "edge-markovian" {
		t.Errorf("scenario = %v", doc["scenario"])
	}
	res, ok := doc["result"].(map[string]any)
	if !ok {
		t.Fatalf("no result object in %v", doc)
	}
	if res["terminated"] != true {
		t.Errorf("result = %v", res)
	}
	if res["transmissions"] != float64(63) {
		t.Errorf("transmissions = %v, want 63", res["transmissions"])
	}
}

func TestRunIsDeterministic(t *testing.T) {
	args := []string{"run", "-scenario", "community", "-params", "communities=3,p-intra=0.8", "-alg", "gathering", "-n", "18", "-seed", "7"}
	a, b := decodeRun(t, args), decodeRun(t, args)
	ra, rb := a["result"].(map[string]any), b["result"].(map[string]any)
	if ra["duration"] != rb["duration"] || ra["interactions"] != rb["interactions"] {
		t.Errorf("same seed, different outcomes: %v vs %v", ra, rb)
	}
}

func TestRunChurnWaitingGreedy(t *testing.T) {
	doc := decodeRun(t, []string{"run", "-scenario", "churn", "-params", "p-fail=0.05,p-recover=0.3",
		"-alg", "waiting-greedy", "-n", "16", "-seed", "3"})
	res := doc["result"].(map[string]any)
	if res["terminated"] != true {
		t.Errorf("result = %v", res)
	}
}

func TestRunTraceScenario(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "contacts.csv")
	var sb strings.Builder
	sb.WriteString("time,u,v\n")
	// A star around node 0, twice over: Waiting terminates on pass one.
	for round := 0; round < 2; round++ {
		for u := 1; u < 6; u++ {
			sb.WriteString(strconv.Itoa(round*5+u) + "," + strconv.Itoa(u) + ",0\n")
		}
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := decodeRun(t, []string{"run", "-scenario", "trace", "-params", "file=" + path, "-alg", "waiting"})
	if doc["n"] != float64(6) {
		t.Errorf("n = %v, want 6 (from the trace)", doc["n"])
	}
	res := doc["result"].(map[string]any)
	if res["terminated"] != true || res["transmissions"] != float64(5) {
		t.Errorf("result = %v", res)
	}
}

func TestRunErrors(t *testing.T) {
	for _, tt := range []struct {
		name string
		args []string
	}{
		{name: "no command", args: nil},
		{name: "unknown command", args: []string{"bogus"}},
		{name: "unknown scenario", args: []string{"run", "-scenario", "bogus"}},
		{name: "unknown algorithm", args: []string{"run", "-alg", "bogus"}},
		{name: "bad params", args: []string{"run", "-params", "novalue"}},
		{name: "unknown param key", args: []string{"run", "-scenario", "edge-markovian", "-params", "bogus=1"}},
		{name: "trace without file", args: []string{"run", "-scenario", "trace"}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tt.args, &buf); err == nil {
				t.Error("want error")
			}
		})
	}
}
