// Command dodaload drives a running dodaserve process through the
// serveclient library: it registers instances, feeds each a
// deterministic seq-stamped workload, and dumps every final engine
// state to files for byte-level diffing. The workload is a pure
// function of (-seed, instance index, batch index), so two runs with
// the same flags — against different servers, through a fault-injecting
// transport, before and after a SIGKILL — must end in identical dumps.
//
// Usage:
//
//	dodaload -addr 127.0.0.1:8080 -instances 64 -batches 4 -dump out/
//	dodaload -addr 127.0.0.1:8080 -instances 64 -batches 4 -chaos 3  # faulty wire
//
// Every operation rides the client's idempotent retry loop, and every
// batch is replayed from seq 1: a run interrupted by a server crash can
// simply be re-run after the restart — acknowledged batches dedup on
// their seq stamps, lost ones apply. Exit status 0 means every batch
// was acknowledged and every requested state dumped.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"doda/internal/chaos"
	"doda/internal/graph"
	"doda/internal/rng"
	"doda/internal/seq"
	"doda/internal/serve"
	"doda/internal/serveclient"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dodaload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("dodaload", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "dodaserve address (host:port)")
		instances = fs.Int("instances", 4, "instances to register and feed")
		n         = fs.Int("n", 16, "nodes per instance")
		batches   = fs.Int("batches", 4, "batches per instance")
		ops       = fs.Int("ops", 8, "interactions per batch")
		seed      = fs.Uint64("seed", 1, "workload seed; same seed reproduces the exact edge sequence")
		chaosSeed = fs.Uint64("chaos", 0, "inject transport faults (resets, 5xx, dropped responses) with this schedule seed (0 = clean wire)")
		chaosMax  = fs.Int("chaos-max", 50, "stop injecting faults after this many")
		dump      = fs.String("dump", "", "write each instance's final /state JSON to <dir>/<name>.json")
		timeout   = fs.Duration("timeout", 5*time.Minute, "overall deadline")
		attempts  = fs.Int("retry-attempts", 12, "client retry budget per call")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *instances < 1 || *n < 3 || *batches < 0 || *ops < 1 {
		return fmt.Errorf("invalid workload shape: instances=%d n=%d batches=%d ops=%d", *instances, *n, *batches, *ops)
	}

	hc := &http.Client{Timeout: 30 * time.Second}
	if *chaosSeed != 0 {
		hc.Transport = chaos.NewTransport(nil, chaos.TransportOptions{
			Seed:         *chaosSeed,
			Reset:        0.08,
			Err5xx:       0.05,
			DropResponse: 0.08,
			MaxFaults:    *chaosMax,
		})
	}
	c := serveclient.New("http://"+*addr, serveclient.Options{
		HTTPClient: hc,
		Retry:      serveclient.RetryPolicy{Attempts: *attempts, Base: 50 * time.Millisecond, Max: 2 * time.Second},
		Seed:       *seed,
	})
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *dump != "" {
		if err := os.MkdirAll(*dump, 0o755); err != nil {
			return err
		}
	}

	for i := 0; i < *instances; i++ {
		name := instName(i)
		if _, err := c.Register(ctx, serve.InstanceConfig{
			Name: name, N: *n, Algorithm: "waiting", Agg: "min",
		}); err != nil {
			return fmt.Errorf("register %s: %w", name, err)
		}
		// Replay from seq 1 every run: what a previous interrupted run
		// got acknowledged dedups server-side, what it lost applies now.
		for b := 1; b <= *batches; b++ {
			if err := c.Feed(ctx, name, batch(*n, *ops, *seed, i, b), uint64(b)); err != nil {
				return fmt.Errorf("%s batch %d: %w", name, b, err)
			}
		}
	}

	if *dump != "" {
		for i := 0; i < *instances; i++ {
			name := instName(i)
			est, err := c.State(ctx, name)
			if err != nil {
				return fmt.Errorf("state %s: %w", name, err)
			}
			raw, err := json.Marshal(est)
			if err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(*dump, name+".json"), append(raw, '\n'), 0o644); err != nil {
				return err
			}
		}
		fmt.Fprintf(stdout, "dodaload: %d instance states dumped to %s\n", *instances, *dump)
	}

	status, err := c.Status(ctx)
	if err != nil {
		return fmt.Errorf("status: %w", err)
	}
	fmt.Fprintf(stdout, "dodaload: server reports %d live / %d evicted / %d total\n",
		status.Live, status.Evicted, status.Total)
	return nil
}

func instName(i int) string { return fmt.Sprintf("load%04d", i) }

// batch derives batch b of instance i — ops off-sink edges fully
// determined by (seed, i, b), so "waiting" instances never terminate
// and every run regenerates the identical workload.
func batch(n, ops int, seed uint64, i, b int) []seq.Interaction {
	src := rng.New(seed ^ uint64(i)<<32 ^ uint64(b))
	its := make([]seq.Interaction, ops)
	for k := range its {
		u := 1 + int(src.Uint64()%uint64(n-1))
		v := 1 + int(src.Uint64()%uint64(n-2))
		if v >= u {
			v++
		}
		its[k] = seq.Interaction{U: graph.NodeID(u), V: graph.NodeID(v)}
	}
	return its
}
