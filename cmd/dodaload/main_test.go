package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"doda/internal/serve"
)

func startServe(t *testing.T, opt serve.Options) string {
	t.Helper()
	srv, err := serve.NewServer(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return strings.TrimPrefix(ts.URL, "http://")
}

func readDumps(t *testing.T, dir string) map[string]string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(ents))
	for _, e := range ents {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(raw)
	}
	return out
}

// TestLoadReplayDeterministic is the driver's own contract: the same
// flags against an evicting server (run twice — the second run is a
// full dedup replay) and against a plain ephemeral server must dump
// byte-identical states, and the evicting server must stay under its
// live cap with every instance registered.
func TestLoadReplayDeterministic(t *testing.T) {
	const instances = 8
	args := []string{"-instances", "8", "-n", "12", "-batches", "3", "-ops", "6", "-seed", "5"}

	refAddr := startServe(t, serve.Options{})
	refDump := t.TempDir()
	if err := run(append(args, "-addr", refAddr, "-dump", refDump), os.Stdout); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	evAddr := startServe(t, serve.Options{Dir: t.TempDir(), MaxLiveInstances: 2})
	evDump := t.TempDir()
	if err := run(append(args, "-addr", evAddr, "-dump", evDump), os.Stdout); err != nil {
		t.Fatalf("evicting run: %v", err)
	}
	// Second run replays every batch from seq 1: all dups, same dumps.
	evDump2 := t.TempDir()
	if err := run(append(args, "-addr", evAddr, "-dump", evDump2), os.Stdout); err != nil {
		t.Fatalf("replay run: %v", err)
	}

	want := readDumps(t, refDump)
	if len(want) != instances {
		t.Fatalf("reference dumped %d files, want %d", len(want), instances)
	}
	for _, got := range []map[string]string{readDumps(t, evDump), readDumps(t, evDump2)} {
		for name, w := range want {
			if got[name] != w {
				t.Fatalf("%s diverged from reference:\n got  %s\n want %s", name, got[name], w)
			}
		}
	}
}
