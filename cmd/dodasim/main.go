// Command dodasim runs a single distributed online data aggregation
// execution and prints the outcome.
//
// Usage:
//
//	dodasim -n 64 -alg gathering -adversary random -seed 7
//	dodasim -n 64 -alg waiting-greedy -tau auto
//	dodasim -n 3 -alg gathering -adversary theorem1 -max 1000
//	dodasim -n 64 -alg gathering -trace run.jsonl
//	dodasim -n 64 -alg gathering -scenario edge-markovian -params p-up=0.1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"doda"
	"doda/internal/offline"
	"doda/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dodasim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dodasim", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 32, "number of nodes (sink is node 0)")
		algName   = fs.String("alg", "gathering", "algorithm: waiting | gathering | waiting-greedy | full-knowledge | future-optimal")
		advName   = fs.String("adversary", "random", "adversary: random | theorem1 | theorem3")
		scenName  = fs.String("scenario", "", "generate the workload from a registered scenario instead of -adversary (see `dodascen list`)")
		scenParam = fs.String("params", "", "comma-separated scenario parameters, e.g. p-up=0.1,p-down=0.3")
		seed      = fs.Uint64("seed", 1, "random seed")
		tauFlag   = fs.String("tau", "auto", "waiting-greedy threshold: integer or 'auto' (= n^1.5·sqrt(ln n))")
		max       = fs.Int("max", 0, "interaction cap (0 = a generous default)")
		tracePath = fs.String("trace", "", "write a JSON-lines trace to this file")
		conc      = fs.Bool("concurrent", false, "use the goroutine-per-node runtime instead of the sequential engine")
		withCost  = fs.Bool("cost", true, "compute cost_A(I) via the successive-convergecast clock (sequence-backed adversaries and scenarios)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	advSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "adversary" {
			advSet = true
		}
	})
	if *scenName == "" && *scenParam != "" {
		return fmt.Errorf("-params requires -scenario")
	}
	if *scenName != "" && advSet {
		return fmt.Errorf("-scenario and -adversary are mutually exclusive")
	}

	var (
		adv    doda.Adversary
		stream *doda.Stream
		view   doda.SequenceView
		know   *doda.Knowledge
		err    error
	)
	switch {
	case *scenName != "":
		spec, ok := scenario.Lookup(*scenName)
		if !ok {
			return fmt.Errorf("unknown scenario %q (known: %s)", *scenName, strings.Join(scenario.Names(), ", "))
		}
		params, err := scenario.ParseParams(*scenParam)
		if err != nil {
			return err
		}
		w, err := spec.Build(*n, *seed, params)
		if err != nil {
			return err
		}
		adv, view = w.Adversary, w.View
		*n = w.N // trace replay dictates its own node count
		stream, _ = w.View.(*doda.Stream)
	case *advName == "random":
		adv, stream, err = doda.RandomizedAdversary(*n, *seed)
		if err != nil {
			return err
		}
		view = stream
	case *advName == "theorem1":
		if *n != 3 {
			return fmt.Errorf("theorem1 adversary needs -n 3")
		}
		adv, err = doda.Theorem1Adversary(0)
		if err != nil {
			return err
		}
	case *advName == "theorem3":
		if *n != 4 {
			return fmt.Errorf("theorem3 adversary needs -n 4")
		}
		var g *doda.Graph
		adv, g, err = doda.Theorem3Adversary(0)
		if err != nil {
			return err
		}
		know, err = doda.NewKnowledge(doda.WithUnderlying(g))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown adversary %q", *advName)
	}

	cap := *max
	if cap == 0 {
		cap = 60**n**n + 10000
		if *scenName != "" {
			cap = scenario.DefaultCap(*n)
		}
	}
	if view != nil {
		if b, finite := view.Bound(); finite && cap > b {
			cap = b
		}
	}

	var alg doda.Algorithm
	switch *algName {
	case "waiting":
		alg = doda.NewWaiting()
	case "gathering":
		alg = doda.NewGathering()
	case "waiting-greedy":
		tau := doda.TauStar(*n)
		if *tauFlag != "auto" {
			tau, err = strconv.Atoi(*tauFlag)
			if err != nil {
				return fmt.Errorf("bad -tau: %w", err)
			}
		}
		if view == nil {
			return fmt.Errorf("waiting-greedy needs a sequence-backed adversary (meetTime oracle)")
		}
		know, err = doda.NewKnowledge(doda.WithMeetTime(view, 0, cap))
		if err != nil {
			return err
		}
		alg = doda.NewWaitingGreedy(tau)
		fmt.Printf("τ = %d\n", tau)
	case "full-knowledge":
		if view == nil {
			return fmt.Errorf("full-knowledge needs a sequence-backed adversary")
		}
		know, err = doda.NewKnowledge(doda.WithFullSequence(view))
		if err != nil {
			return err
		}
		alg = doda.NewFullKnowledge(cap)
	case "future-optimal":
		var prefix *doda.Sequence
		switch {
		case stream != nil:
			prefix = stream.Prefix(cap)
		default:
			s, ok := view.(*doda.Sequence)
			if !ok {
				return fmt.Errorf("future-optimal needs a sequence-backed adversary")
			}
			prefix = s
		}
		know, err = doda.NewKnowledge(doda.WithFutures(prefix))
		if err != nil {
			return err
		}
		adv, err = doda.ObliviousAdversary(adv.Name()+"-prefix", prefix)
		if err != nil {
			return err
		}
		alg = doda.NewFutureOptimal(cap)
	default:
		return fmt.Errorf("unknown algorithm %q", *algName)
	}

	var rec *doda.TraceRecorder
	if *tracePath != "" {
		rec = doda.NewTraceRecorder()
	}

	var res doda.Result
	if *conc {
		rt, err := doda.NewRuntime(doda.RuntimeConfig{N: *n, MaxInteractions: cap, Know: know})
		if err != nil {
			return err
		}
		res, err = rt.Run(alg, adv)
		rt.Close()
		if err != nil {
			return err
		}
	} else {
		cfg := doda.Config{N: *n, MaxInteractions: cap, Know: know, VerifyAggregate: true}
		if rec != nil {
			cfg.Events = rec
		}
		res, err = doda.Run(cfg, alg, adv)
		if err != nil {
			return err
		}
	}

	fmt.Printf("algorithm:     %s\n", res.Algorithm)
	fmt.Printf("adversary:     %s\n", res.Adversary)
	fmt.Printf("terminated:    %v\n", res.Terminated)
	if res.Failed {
		fmt.Printf("failed:        %s\n", res.FailReason)
	}
	fmt.Printf("interactions:  %d\n", res.Interactions)
	fmt.Printf("duration:      %d\n", res.Duration)
	fmt.Printf("transmissions: %d\n", res.Transmissions)
	fmt.Printf("declined:      %d\n", res.Declined)
	fmt.Printf("last gap:      %d\n", res.LastGap)
	if res.Terminated {
		fmt.Printf("sink value:    %.4g (from %d data)\n", res.SinkValue.Num, res.SinkValue.Count)
	}

	if *withCost && view != nil && res.Terminated {
		clock, err := doda.NewClock(view, 0, res.Duration+60**n**n)
		if err != nil {
			return err
		}
		if cost, ok := clock.Cost(res.Duration); ok {
			fmt.Printf("cost:          %d successive convergecasts\n", cost)
		}
	}
	if view != nil && res.Terminated {
		if opt, ok := offline.Opt(view, 0, 0, res.Duration+60**n**n); ok {
			fmt.Printf("offline opt:   %d (ratio %.2f)\n", opt, float64(res.Duration)/float64(opt))
		}
	}

	if rec != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.Write(f); err != nil {
			return err
		}
		fmt.Printf("trace:         %s (%d records)\n", *tracePath, len(rec.Records))
	}
	return nil
}
