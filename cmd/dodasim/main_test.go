package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunGathering(t *testing.T) {
	if err := run([]string{"-n", "16", "-alg", "gathering", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWaiting(t *testing.T) {
	if err := run([]string{"-n", "12", "-alg", "waiting", "-seed", "4", "-cost=false"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWaitingGreedyAutoTau(t *testing.T) {
	if err := run([]string{"-n", "16", "-alg", "waiting-greedy", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWaitingGreedyExplicitTau(t *testing.T) {
	if err := run([]string{"-n", "16", "-alg", "waiting-greedy", "-tau", "200", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFullKnowledge(t *testing.T) {
	if err := run([]string{"-n", "12", "-alg", "full-knowledge", "-seed", "6"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFutureOptimal(t *testing.T) {
	if err := run([]string{"-n", "10", "-alg", "future-optimal", "-seed", "7", "-max", "20000"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTheorem1(t *testing.T) {
	if err := run([]string{"-n", "3", "-adversary", "theorem1", "-max", "500"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTheorem3(t *testing.T) {
	if err := run([]string{"-n", "4", "-adversary", "theorem3", "-max", "500"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunConcurrent(t *testing.T) {
	if err := run([]string{"-n", "10", "-alg", "gathering", "-concurrent", "-seed", "8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run([]string{"-n", "10", "-alg", "gathering", "-trace", path, "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("empty trace file")
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "unknown algorithm", args: []string{"-alg", "nope"}},
		{name: "unknown adversary", args: []string{"-adversary", "nope"}},
		{name: "theorem1 wrong n", args: []string{"-n", "5", "-adversary", "theorem1"}},
		{name: "theorem3 wrong n", args: []string{"-n", "5", "-adversary", "theorem3"}},
		{name: "bad tau", args: []string{"-alg", "waiting-greedy", "-tau", "xyz"}},
		{name: "wg needs random adversary", args: []string{"-n", "3", "-alg", "waiting-greedy", "-adversary", "theorem1"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestRunScenarioFlag(t *testing.T) {
	if err := run([]string{"-n", "16", "-alg", "gathering", "-scenario", "edge-markovian", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarioWithParams(t *testing.T) {
	if err := run([]string{"-n", "15", "-alg", "waiting-greedy", "-scenario", "community",
		"-params", "communities=3,p-intra=0.8", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarioErrors(t *testing.T) {
	for _, tt := range []struct {
		name string
		args []string
	}{
		{name: "unknown scenario", args: []string{"-scenario", "nope"}},
		{name: "bad params", args: []string{"-scenario", "churn", "-params", "novalue"}},
		{name: "unknown param", args: []string{"-scenario", "churn", "-params", "bogus=1"}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestRunScenarioFlagConflicts(t *testing.T) {
	if err := run([]string{"-params", "p-up=0.1"}); err == nil {
		t.Error("want error: -params without -scenario")
	}
	if err := run([]string{"-scenario", "uniform", "-adversary", "random"}); err == nil {
		t.Error("want error: -scenario with explicit -adversary")
	}
}
