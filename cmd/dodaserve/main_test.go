package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer: the server goroutine
// writes log lines while the test reads them.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// launch starts run() in the background on an ephemeral port and returns
// the base URL, a signal channel to stop it, and a channel carrying its
// exit error.
func launch(t *testing.T, args ...string) (base string, stop chan os.Signal, done chan error, out *syncBuffer) {
	t.Helper()
	addrCh := make(chan string, 1)
	stop = make(chan os.Signal, 1)
	done = make(chan error, 1)
	out = &syncBuffer{}
	go func() {
		done <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), out,
			func(a string) { addrCh <- a }, stop)
	}()
	select {
	case a := <-addrCh:
		return "http://" + a, stop, done, out
	case err := <-done:
		t.Fatalf("server exited before listening: %v\n%s", err, out)
		return "", nil, nil, nil
	}
}

func waitExit(t *testing.T, done chan error) error {
	t.Helper()
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit")
		return nil
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func post(t *testing.T, url, ctype, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, ctype, strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func TestFlagErrors(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard, nil, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"stray"}, io.Discard, nil, nil); err == nil {
		t.Fatal("stray argument accepted")
	}
	if err := run([]string{"-addr", "not a real address::"}, io.Discard, nil, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

func TestServeLifecycleAndSigtermDrain(t *testing.T) {
	dir := t.TempDir()
	base, stop, done, out := launch(t, "-dir", dir, "-snapshot-every", "8")

	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d", code)
	}

	code, body := post(t, base+"/v1/instances", "application/json",
		`{"name":"g","n":4,"algorithm":"gathering","agg":"sum"}`)
	if code != http.StatusCreated {
		t.Fatalf("register = %d: %s", code, body)
	}

	// Drive gathering on n=4 to termination: a star on the sink collects
	// everything in three meetings.
	code, body = post(t, base+"/v1/instances/g/ingest?wait=1", "application/jsonl",
		"{\"u\":0,\"v\":1}\n{\"u\":0,\"v\":2}\n{\"u\":0,\"v\":3}\n")
	if code != http.StatusAccepted {
		t.Fatalf("ingest = %d: %s", code, body)
	}

	var st struct {
		Result struct {
			Terminated bool `json:"terminated"`
		} `json:"result"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body = get(t, base+"/v1/instances/g/state")
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("state decode: %v: %s", err, body)
		}
		if st.Result.Terminated {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("instance never terminated: %s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, wantState := get(t, base+"/v1/instances/g/state")

	code, body = get(t, base+"/v1/status")
	if code != http.StatusOK || !strings.Contains(body, `"g"`) {
		t.Fatalf("status = %d: %s", code, body)
	}

	stop <- syscall.SIGTERM
	if err := waitExit(t, done); err != nil {
		t.Fatalf("drain exit: %v\n%s", err, out)
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Fatalf("no clean-drain line in output:\n%s", out)
	}

	// Restart over the same directory: the instance comes back with the
	// exact same state bytes.
	base2, stop2, done2, out2 := launch(t, "-dir", dir)
	if !strings.Contains(out2.String(), "recovered 1 instance(s)") {
		t.Fatalf("no recovery line:\n%s", out2)
	}
	_, gotState := get(t, base2+"/v1/instances/g/state")
	if gotState != wantState {
		t.Fatalf("recovered state diverged:\n got %s\nwant %s", gotState, wantState)
	}
	stop2 <- syscall.SIGTERM
	if err := waitExit(t, done2); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func TestServeEphemeralModeAndBackpressure(t *testing.T) {
	base, stop, done, _ := launch(t, "-max-pending", "4")

	code, body := post(t, base+"/v1/instances", "application/json",
		`{"name":"w","n":64,"algorithm":"waiting","agg":"min"}`)
	if code != http.StatusCreated {
		t.Fatalf("register = %d: %s", code, body)
	}

	// Flood without wait=1 until the admission budget fills: the server
	// must answer 429 with a Retry-After rather than queueing unboundedly.
	var batch strings.Builder
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&batch, "{\"u\":%d,\"v\":%d}\n", 1+i%62, 2+i%61)
	}
	saw429 := false
	for i := 0; i < 200 && !saw429; i++ {
		code, body = post(t, base+"/v1/instances/w/ingest", "application/jsonl", batch.String())
		switch code {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			saw429 = true
			if !strings.Contains(body, "retry_after_ms") {
				t.Fatalf("429 without retry_after_ms: %s", body)
			}
		default:
			t.Fatalf("ingest = %d: %s", code, body)
		}
	}
	if !saw429 {
		t.Fatal("never saw backpressure despite max-pending 4")
	}

	stop <- syscall.SIGTERM
	if err := waitExit(t, done); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
