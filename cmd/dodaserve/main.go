// Command dodaserve runs the continuous aggregation server: a
// long-running HTTP process multiplexing concurrent DODA instances over
// the streaming engine, journaling every accepted batch so a crash or
// restart resumes exactly where it left off.
//
// Usage:
//
//	dodaserve -addr :8080 -dir /var/lib/doda
//	dodaserve -addr 127.0.0.1:0 -dir ./state -snapshot-every 512 -v
//
// On SIGTERM or SIGINT the server drains gracefully: admissions stop,
// queued batches flush, final snapshots land, and the process exits 0.
// A non-graceful exit loses nothing that was acknowledged — the journal
// replays on the next start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"doda/internal/serve"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, nil, stop); err != nil {
		fmt.Fprintln(os.Stderr, "dodaserve:", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until a signal arrives on stop, then
// drains and returns. started (when non-nil) receives the bound address
// once the listener is up — tests use it to learn the ephemeral port.
func run(args []string, stdout io.Writer, started func(addr string), stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("dodaserve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free one)")
		dir        = fs.String("dir", "", "durability root: each instance journals into its own subdirectory (empty = ephemeral, nothing survives a restart)")
		maxPending = fs.Int("max-pending", 4096, "per-instance admission budget: journaled-but-unapplied interactions before ingest returns 429")
		snapEvery  = fs.Int("snapshot-every", 1024, "rotate an instance's journal after this many applied interactions")
		stall      = fs.Duration("stall-timeout", 10*time.Second, "flag an instance stalled after this long with pending work and no progress")
		maxLive    = fs.Int("max-live-instances", 0, "cap on instances holding live engine state; excess instances are LRU-evicted to their journals and rehydrate on next ingest (0 = unlimited; requires -dir)")
		idleTTL    = fs.Duration("idle-ttl", 0, "evict instances untouched for this long to their journals (0 = never; requires -dir)")
		drainT     = fs.Duration("drain-timeout", 30*time.Second, "how long a graceful shutdown may spend flushing queues")
		verbose    = fs.Bool("v", false, "log per-instance operational events")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	opt := serve.Options{
		Dir:              *dir,
		MaxPending:       *maxPending,
		SnapshotEvery:    *snapEvery,
		StallTimeout:     *stall,
		MaxLiveInstances: *maxLive,
		IdleTTL:          *idleTTL,
	}
	if *verbose {
		opt.Logf = func(format string, a ...any) {
			fmt.Fprintf(stdout, format+"\n", a...)
		}
	}
	srv, err := serve.NewServer(opt)
	if err != nil {
		return err
	}
	if n := len(srv.Instances()); n > 0 {
		fmt.Fprintf(stdout, "dodaserve: recovered %d instance(s) from %s\n", n, *dir)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Fprintf(stdout, "dodaserve: listening on %s\n", ln.Addr())
	if started != nil {
		started(ln.Addr().String())
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case sig := <-stop:
		fmt.Fprintf(stdout, "dodaserve: %v, draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	// Stop taking connections first so no new batches race the flush,
	// then drain: every batch acknowledged before this point is journaled
	// and lands in the final snapshots.
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		srv.Close()
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(stdout, "dodaserve: drained cleanly")
	return nil
}
