module doda

go 1.24
