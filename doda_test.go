package doda

import (
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	adv, _, err := RandomizedAdversary(16, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{N: 16, MaxInteractions: 1 << 18, VerifyAggregate: true}, NewGathering(), adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated || res.Transmissions != 15 {
		t.Fatalf("res = %+v", res)
	}
}

func TestWaitingGreedyFlow(t *testing.T) {
	const n = 16
	adv, stream, err := RandomizedAdversary(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	budget := 40 * n * n
	know, err := NewKnowledge(WithMeetTime(stream, 0, budget))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{N: n, MaxInteractions: budget, Know: know, VerifyAggregate: true},
		NewWaitingGreedy(TauStar(n)), adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("res = %+v", res)
	}
}

func TestCostFlow(t *testing.T) {
	adv, stream, err := RandomizedAdversary(12, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{N: 12, MaxInteractions: 1 << 18}, NewGathering(), adv)
	if err != nil {
		t.Fatal(err)
	}
	clock, err := NewClock(stream, 0, res.Duration+1<<14)
	if err != nil {
		t.Fatal(err)
	}
	cost, ok := clock.Cost(res.Duration)
	if !ok || cost < 1 {
		t.Fatalf("cost = %d,%v", cost, ok)
	}
}

func TestAdversarialConstructions(t *testing.T) {
	adv1, err := Theorem1Adversary(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{N: 3, MaxInteractions: 1000}, NewGathering(), adv1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminated {
		t.Error("Theorem 1 adversary should prevent termination")
	}

	adv3, g, err := Theorem3Adversary(0)
	if err != nil {
		t.Fatal(err)
	}
	know, err := NewKnowledge(WithUnderlying(g))
	if err != nil {
		t.Fatal(err)
	}
	res3, err := Run(Config{N: 4, MaxInteractions: 1000, Know: know}, NewSpanningTree(), adv3)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Terminated {
		t.Error("Theorem 3 adversary should prevent termination")
	}
}

func TestTraceFlow(t *testing.T) {
	rec := NewTraceRecorder()
	adv, _, err := RandomizedAdversary(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{N: 8, MaxInteractions: 1 << 16, Events: rec}, NewGathering(), adv); err != nil {
		t.Fatal(err)
	}
	if err := rec.Verify(8, 0); err != nil {
		t.Errorf("trace verification: %v", err)
	}
}

func TestExperimentRegistry(t *testing.T) {
	if len(Experiments()) != 20 {
		t.Errorf("got %d experiments", len(Experiments()))
	}
	if _, ok := ExperimentByID("E8"); !ok {
		t.Error("E8 missing")
	}
	if _, ok := ExperimentByID("S1"); !ok {
		t.Error("S1 missing")
	}
}

func TestPairAndSequence(t *testing.T) {
	it, err := Pair(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if it.U != 1 || it.V != 3 {
		t.Errorf("Pair = %v", it)
	}
	s, err := NewSequence(4, []Interaction{it})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if _, err := Pair(2, 2); err == nil {
		t.Error("self pair should fail")
	}
}

func TestRuntimeFacade(t *testing.T) {
	adv, _, err := RandomizedAdversary(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(RuntimeConfig{N: 8, MaxInteractions: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run(NewGathering(), adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("res = %+v", res)
	}
}

// TestProvenanceFacade exercises the provenance-mode and batched-path
// re-exports through the root package.
func TestProvenanceFacade(t *testing.T) {
	mode, err := ParseProvenanceMode("count")
	if err != nil || mode != ProvenanceCount {
		t.Fatalf("ParseProvenanceMode = %v, %v", mode, err)
	}
	adv, err := NewGeneratedAdversary("star", 16, func(t int) Interaction {
		return Interaction{U: 0, V: NodeID(1 + t%15)}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := adv.(BatchAdversary); !ok {
		t.Fatal("generated adversaries must support batching")
	}
	res, err := Run(Config{N: 16, MaxInteractions: 1 << 16, Provenance: ProvenanceCount}, NewGathering(), adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated || res.SinkValue.Origins != nil {
		t.Fatalf("res = %+v", res)
	}
}
