// Package doda is a faithful, executable reproduction of
//
//	Quentin Bramas, Toshimitsu Masuzawa, Sébastien Tixeuil:
//	"Distributed Online Data Aggregation in Dynamic Graphs",
//	ICDCS 2016 (arXiv:1602.01065).
//
// The paper studies distributed online data aggregation (DODA) in dynamic
// graphs modelled as sequences of pairwise interactions: every node
// starts with a datum, a node may transmit its (aggregated) datum at most
// once, and the goal is that the designated sink ends up as the only data
// owner. The library provides:
//
//   - the execution model (sequential engine and a concurrent
//     goroutine-per-node message-passing runtime),
//   - the paper's adversaries — oblivious, adaptive online (including the
//     executable impossibility constructions of Theorems 1–3), and the
//     randomized adversary,
//   - the paper's algorithms — Waiting, Gathering, Waiting Greedy,
//     spanning-tree convergecast, future-gossip optimal, and the
//     full-knowledge offline optimum,
//   - knowledge oracles (meetTime, future, underlying graph, full
//     sequence),
//   - the offline-optimum machinery: opt(t), the successive-convergecast
//     clock T(i) and the paper's cost function, and
//   - an experiment harness (E1–E14, A1–A2) that regenerates every
//     quantitative result in the paper; see EXPERIMENTS.md.
//
// Quick start:
//
//	adv, _, err := doda.RandomizedAdversary(64, 42)
//	if err != nil { ... }
//	res, err := doda.Run(doda.Config{N: 64, MaxInteractions: 1 << 20},
//	    doda.NewGathering(), adv)
//	fmt.Println(res.Terminated, res.Duration)
package doda

import (
	"doda/internal/adversary"
	"doda/internal/agg"
	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/experiments"
	"doda/internal/graph"
	"doda/internal/knowledge"
	"doda/internal/offline"
	"doda/internal/seq"
	"doda/internal/sim"
	"doda/internal/trace"
)

// Model types.
type (
	// NodeID identifies a node; nodes are numbered 0..n-1 and the sink
	// defaults to node 0.
	NodeID = graph.NodeID
	// Interaction is one pairwise interaction {U, V} with U < V.
	Interaction = seq.Interaction
	// TimedStep is an entry of a node's future: (time, partner).
	TimedStep = seq.TimedStep
	// Sequence is a finite interaction sequence.
	Sequence = seq.Sequence
	// Stream is an unbounded, lazily materialised interaction sequence.
	Stream = seq.Stream
	// SequenceView is read access to either.
	SequenceView = seq.View
	// Graph is an undirected static graph (e.g. the underlying graph Ḡ).
	Graph = graph.Undirected
	// Edge is an undirected graph edge.
	Edge = graph.Edge
)

// Execution types.
type (
	// Algorithm is a distributed online data aggregation algorithm.
	Algorithm = core.Algorithm
	// Adversary produces the interaction sequence.
	Adversary = core.Adversary
	// BatchAdversary is the optional batched extension every oblivious
	// adversary implements: the engine drains whole interaction buffers
	// instead of making one Next call per interaction.
	BatchAdversary = core.BatchAdversary
	// ProvenanceMode selects how much per-datum provenance a run
	// maintains (full bitsets, counts only, or nothing).
	ProvenanceMode = core.ProvenanceMode
	// Decision is an algorithm's per-interaction output.
	Decision = core.Decision
	// Config parameterises an execution.
	Config = core.Config
	// Result summarises an execution.
	Result = core.Result
	// Env is the environment passed to algorithms.
	Env = core.Env
	// Event is a traced interaction.
	Event = core.Event
	// Knowledge is the set of oracles granted to nodes.
	Knowledge = knowledge.Bundle
	// KnowledgeOption grants one oracle.
	KnowledgeOption = knowledge.Option
	// AggFunc is a commutative, associative aggregation function.
	AggFunc = agg.Func
	// Value is a datum with provenance.
	Value = agg.Value
	// Schedule is an optimal offline convergecast plan.
	Schedule = offline.Schedule
	// Clock iterates the successive-convergecast times T(i).
	Clock = offline.Clock
	// Runtime is the concurrent goroutine-per-node executor.
	Runtime = sim.Runtime
	// RuntimeConfig parameterises a concurrent execution.
	RuntimeConfig = sim.Config
	// TraceRecorder records executions as replayable event streams.
	TraceRecorder = trace.Recorder
	// Experiment is one paper-result reproduction.
	Experiment = experiments.Experiment
	// ExperimentConfig parameterises an experiment run.
	ExperimentConfig = experiments.Config
	// ExperimentReport is an experiment's outcome.
	ExperimentReport = experiments.Report
)

// Decision values.
const (
	// NoTransfer is the paper's ⊥ output: nobody transmits.
	NoTransfer = core.NoTransfer
	// FirstReceives designates the smaller-identifier endpoint as
	// receiver.
	FirstReceives = core.FirstReceives
	// SecondReceives designates the larger-identifier endpoint as
	// receiver.
	SecondReceives = core.SecondReceives
)

// Experiment scales.
const (
	// ScaleQuick runs small sweeps (seconds).
	ScaleQuick = experiments.ScaleQuick
	// ScaleFull runs the EXPERIMENTS.md sweeps (minutes).
	ScaleFull = experiments.ScaleFull
)

// Provenance modes (see core.ProvenanceMode for the exact semantics).
const (
	// ProvenanceFull tracks and verifies per-datum origin bitsets.
	ProvenanceFull = core.ProvenanceFull
	// ProvenanceCount keeps only fold counts (no bitsets, no overlap
	// detection) — the large-n measurement mode.
	ProvenanceCount = core.ProvenanceCount
	// ProvenanceOff skips end-of-run sink verification entirely.
	ProvenanceOff = core.ProvenanceOff
)

// ParseProvenanceMode parses "full", "count" or "off".
func ParseProvenanceMode(s string) (ProvenanceMode, error) {
	return core.ParseProvenanceMode(s)
}

// Aggregation functions.
var (
	// Min keeps the smallest payload.
	Min = agg.Min
	// Max keeps the largest payload.
	Max = agg.Max
	// Sum adds payloads.
	Sum = agg.Sum
	// Count counts aggregated data.
	Count = agg.Count
)

// Run executes one algorithm against one adversary on the sequential
// engine.
func Run(cfg Config, alg Algorithm, adv Adversary) (Result, error) {
	return core.RunOnce(cfg, alg, adv)
}

// NewRuntime prepares a concurrent goroutine-per-node execution.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) {
	return sim.NewRuntime(cfg)
}

// Algorithms.

// NewWaiting returns the paper's Waiting algorithm (transmit only to the
// sink).
func NewWaiting() Algorithm { return algorithms.Waiting{} }

// NewGathering returns the paper's Gathering algorithm (transmit to the
// sink or to any data owner), optimal without knowledge (Corollary 2).
func NewGathering() Algorithm { return algorithms.NewGathering() }

// NewWaitingGreedy returns Waiting Greedy with threshold tau; it requires
// the meetTime oracle (WithMeetTime).
func NewWaitingGreedy(tau int) Algorithm { return algorithms.WaitingGreedy{Tau: tau} }

// TauStar returns Corollary 3's optimal threshold ⌈n^{3/2}√(ln n)⌉.
func TauStar(n int) int { return algorithms.TauStar(n) }

// NewSpanningTree returns the Theorem 4/5 algorithm (wait for children in
// a shared spanning tree of Ḡ, then transmit to the parent); it requires
// the underlying-graph oracle (WithUnderlying). Single-run instances.
func NewSpanningTree() Algorithm { return algorithms.NewSpanningTree() }

// NewFullKnowledge returns the Theorem 8 algorithm playing the optimal
// offline schedule; it requires the full-sequence oracle
// (WithFullSequence). Single-run instances.
func NewFullKnowledge(horizon int) Algorithm { return algorithms.NewFullKnowledge(horizon) }

// NewFutureOptimal returns the Theorem 6 algorithm (gossip futures, then
// play the optimal suffix schedule); it requires the futures oracle
// (WithFutures). Single-run instances.
func NewFutureOptimal(horizon int) Algorithm { return algorithms.NewFutureOptimal(horizon) }

// Adversaries.

// RandomizedAdversary returns the §4 randomized adversary on n nodes and
// the lazily materialised stream backing it (hand the stream to
// WithMeetTime or WithFullSequence so oracles and adversary agree).
func RandomizedAdversary(n int, seed uint64) (Adversary, *Stream, error) {
	return adversary.Randomized(n, seed)
}

// ObliviousAdversary wraps any fixed sequence as an adversary.
func ObliviousAdversary(name string, view SequenceView) (Adversary, error) {
	return adversary.NewOblivious(name, view)
}

// RecurrentAdversary cycles through edges forever (Theorem 4's recurrent
// interactions).
func RecurrentAdversary(n int, edges []Edge) (Adversary, *Stream, error) {
	return adversary.Recurrent(n, edges)
}

// RecurrentAdversaryDelayed cycles through the frequent edges repeat
// times per round before playing the delayed edge once — the schedule
// family exhibiting Theorem 4's unbounded cost.
func RecurrentAdversaryDelayed(n int, frequent []Edge, delayed Edge, repeat int) (Adversary, *Stream, error) {
	return adversary.DelayedRecurrent(n, frequent, delayed, repeat)
}

// WeightedAdversary returns a non-uniform randomized adversary drawing
// interaction endpoints with probability proportional to the per-node
// weights — the paper's open question 3 (§5) made executable. Equal
// weights recover the uniform randomized adversary.
func WeightedAdversary(weights []float64, seed uint64) (Adversary, *Stream, error) {
	return adversary.Weighted(weights, seed)
}

// ZipfWeights returns w_i = (i+1)^-alpha, a standard skewed contact
// distribution for WeightedAdversary (node 0 heaviest).
func ZipfWeights(n int, alpha float64) ([]float64, error) {
	return adversary.ZipfWeights(n, alpha)
}

// SinkScaledWeights returns uniform weights with the sink's weight
// multiplied by factor, for WeightedAdversary.
func SinkScaledWeights(n int, sink NodeID, factor float64) ([]float64, error) {
	return adversary.SinkScaledWeights(n, sink, factor)
}

// Theorem1Adversary returns the adaptive adversary that defeats every
// DODA algorithm on 3 nodes (Theorem 1).
func Theorem1Adversary(sink NodeID) (Adversary, error) {
	return adversary.NewTheorem1(3, sink)
}

// Theorem3Adversary returns the adaptive adversary that defeats every
// Ḡ-aware algorithm on the 4-node cycle (Theorem 3), along with the cycle
// graph to grant as knowledge.
func Theorem3Adversary(sink NodeID) (Adversary, *Graph, error) {
	th, err := adversary.NewTheorem3(4, sink)
	if err != nil {
		return nil, nil, err
	}
	g, err := th.UnderlyingGraph()
	if err != nil {
		return nil, nil, err
	}
	return th, g, nil
}

// Knowledge oracles.

// NewKnowledge assembles a knowledge bundle from the granted oracles.
func NewKnowledge(opts ...KnowledgeOption) (*Knowledge, error) {
	return knowledge.NewBundle(opts...)
}

// WithMeetTime grants u.meetTime(t) over view with a look-ahead horizon.
func WithMeetTime(view SequenceView, sink NodeID, horizon int) KnowledgeOption {
	return knowledge.WithMeetTime(view, sink, horizon)
}

// WithFutures grants every node its own future from the finite sequence.
func WithFutures(s *Sequence) KnowledgeOption { return knowledge.WithFutures(s) }

// WithUnderlying grants the underlying graph Ḡ.
func WithUnderlying(g *Graph) KnowledgeOption { return knowledge.WithUnderlying(g) }

// WithFullSequence grants complete knowledge of the sequence.
func WithFullSequence(view SequenceView) KnowledgeOption {
	return knowledge.WithFullSequence(view)
}

// Offline optimum and cost.

// Opt returns opt(from): the completion time of an optimal convergecast
// started at from, searched up to horizon.
func Opt(view SequenceView, sink NodeID, from, horizon int) (int, bool) {
	return offline.Opt(view, sink, from, horizon)
}

// PlanConvergecast computes the optimal convergecast schedule itself.
func PlanConvergecast(view SequenceView, sink NodeID, from, horizon int) (*Schedule, error) {
	return offline.Plan(view, sink, from, horizon)
}

// NewClock iterates T(1), T(2), ... — the successive-convergecast times
// defining the paper's cost function. Use Clock.Cost(duration) to obtain
// cost_A(I).
func NewClock(view SequenceView, sink NodeID, horizon int) (*Clock, error) {
	return offline.NewClock(view, sink, horizon)
}

// Sequences.

// NewSequence validates and copies a finite interaction sequence.
func NewSequence(n int, steps []Interaction) (*Sequence, error) {
	return seq.NewSequence(n, steps)
}

// NewStream wraps a generator as an unbounded lazy sequence.
func NewStream(n int, gen func(t int) Interaction) (*Stream, error) {
	return seq.NewStream(n, gen)
}

// Pair returns the canonical interaction {a, b}.
func Pair(a, b NodeID) (Interaction, error) { return seq.NewInteraction(a, b) }

// Tracing.

// NewTraceRecorder returns an event recorder to plug into Config.Events.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// Experiments.

// Experiments returns every paper-result reproduction (E1–E14, A1–A2).
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID finds an experiment ("E10", "a2", ...).
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }
