package doda_test

// End-to-end integration tests across the public API: adversaries,
// knowledge oracles, engine, traces, offline optimum and cost must agree
// with each other on full pipelines.

import (
	"bytes"
	"testing"

	"doda"
	"doda/internal/trace"
)

func TestPipelineTraceReconstructionOfflineAgreement(t *testing.T) {
	// Run Gathering with a trace; reconstruct the sequence from the
	// trace; the offline optimum computed on the reconstruction must
	// match the one computed on the adversary's own stream, and replay
	// verification must pass.
	const n = 24
	adv, stream, err := doda.RandomizedAdversary(n, 1234)
	if err != nil {
		t.Fatal(err)
	}
	rec := doda.NewTraceRecorder()
	res, err := doda.Run(doda.Config{
		N: n, MaxInteractions: 1 << 18, Events: rec, VerifyAggregate: true,
	}, doda.NewGathering(), adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("res = %+v", res)
	}
	if err := rec.Verify(n, 0); err != nil {
		t.Fatalf("trace verify: %v", err)
	}

	reconstructed, err := rec.Sequence(n)
	if err != nil {
		t.Fatal(err)
	}
	optFromTrace, ok1 := doda.Opt(reconstructed, 0, 0, reconstructed.Len())
	optFromStream, ok2 := doda.Opt(stream, 0, 0, res.Interactions)
	if !ok1 || !ok2 || optFromTrace != optFromStream {
		t.Errorf("opt mismatch: trace %d,%v stream %d,%v", optFromTrace, ok1, optFromStream, ok2)
	}

	// The trace must round-trip through its serialisation.
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(rec.Records) {
		t.Errorf("round trip lost records: %d vs %d", len(back.Records), len(rec.Records))
	}
}

func TestPipelineFullKnowledgeBeatsEveryone(t *testing.T) {
	// On the same sequence, the full-knowledge player must terminate at
	// the offline optimum, which lower-bounds every other algorithm.
	const n = 20
	seeds := []uint64{5, 6, 7}
	for _, seed := range seeds {
		advFK, streamFK, err := doda.RandomizedAdversary(n, seed)
		if err != nil {
			t.Fatal(err)
		}
		const horizon = 1 << 16
		knowFK, err := doda.NewKnowledge(doda.WithFullSequence(streamFK))
		if err != nil {
			t.Fatal(err)
		}
		resFK, err := doda.Run(doda.Config{N: n, MaxInteractions: horizon, Know: knowFK},
			doda.NewFullKnowledge(horizon), advFK)
		if err != nil {
			t.Fatal(err)
		}
		advG, _, err := doda.RandomizedAdversary(n, seed)
		if err != nil {
			t.Fatal(err)
		}
		resG, err := doda.Run(doda.Config{N: n, MaxInteractions: horizon}, doda.NewGathering(), advG)
		if err != nil {
			t.Fatal(err)
		}
		if !resFK.Terminated || !resG.Terminated {
			t.Fatalf("seed %d: FK=%+v G=%+v", seed, resFK, resG)
		}
		if resFK.Duration > resG.Duration {
			t.Errorf("seed %d: full knowledge (%d) slower than gathering (%d)",
				seed, resFK.Duration, resG.Duration)
		}
		opt, ok := doda.Opt(streamFK, 0, 0, horizon)
		if !ok || resFK.Duration != opt {
			t.Errorf("seed %d: FK duration %d != opt %d", seed, resFK.Duration, opt)
		}
	}
}

func TestPipelineWeightedAdversary(t *testing.T) {
	const n = 24
	ws, err := doda.ZipfWeights(n, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	adv, _, err := doda.WeightedAdversary(ws, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := doda.Run(doda.Config{N: n, MaxInteractions: 1 << 20, VerifyAggregate: true},
		doda.NewGathering(), adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("res = %+v", res)
	}
	if _, err := doda.SinkScaledWeights(n, 0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := doda.ZipfWeights(1, 1); err == nil {
		t.Error("want error")
	}
}

func TestPipelineRecurrentAndStream(t *testing.T) {
	// Custom stream construction through the facade.
	st, err := doda.NewStream(4, func(t int) doda.Interaction {
		pairs := []doda.Interaction{{U: 2, V: 3}, {U: 1, V: 2}, {U: 0, V: 1}}
		return pairs[t%3]
	})
	if err != nil {
		t.Fatal(err)
	}
	adv, err := doda.ObliviousAdversary("custom", st)
	if err != nil {
		t.Fatal(err)
	}
	res, err := doda.Run(doda.Config{N: 4, MaxInteractions: 100}, doda.NewGathering(), adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("res = %+v", res)
	}

	// Recurrent adversary over explicit edges.
	e01, err := doda.Pair(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = e01
	edges := []doda.Edge{{U: 0, V: 1}, {U: 1, V: 2}}
	radv, rstream, err := doda.RecurrentAdversary(3, edges)
	if err != nil {
		t.Fatal(err)
	}
	if rstream.At(2) != (doda.Interaction{U: 0, V: 1}) {
		t.Errorf("recurrent stream wrong: %v", rstream.At(2))
	}
	res2, err := doda.Run(doda.Config{N: 3, MaxInteractions: 50}, doda.NewWaiting(), radv)
	if err != nil {
		t.Fatal(err)
	}
	_ = res2
}

func TestPipelineFutureOptimalVsClockCost(t *testing.T) {
	// Theorem 6 through the public API: cost of future-optimal ≤ n.
	const n = 12
	_, stream, err := doda.RandomizedAdversary(n, 77)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 50000
	prefix := stream.Prefix(horizon)
	know, err := doda.NewKnowledge(doda.WithFutures(prefix))
	if err != nil {
		t.Fatal(err)
	}
	adv, err := doda.ObliviousAdversary("prefix", prefix)
	if err != nil {
		t.Fatal(err)
	}
	res, err := doda.Run(doda.Config{N: n, MaxInteractions: horizon, Know: know},
		doda.NewFutureOptimal(horizon), adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("res = %+v", res)
	}
	clock, err := doda.NewClock(prefix, 0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	cost, ok := clock.Cost(res.Duration)
	if !ok || cost > n {
		t.Errorf("cost = %d,%v want ≤ %d", cost, ok, n)
	}
}

func TestPipelineExperimentThroughFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	e, ok := doda.ExperimentByID("E5")
	if !ok {
		t.Fatal("E5 missing")
	}
	rep, err := e.Run(doda.ExperimentConfig{Scale: doda.ScaleQuick, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Error("E5 failed through the facade")
	}
}
