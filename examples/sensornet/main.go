// Sensornet: the paper's motivating scenario — sensors deployed on a
// human body reporting to a hub. Contact rates are heterogeneous (a
// torso sensor meets the hub constantly, a shoe sensor rarely), so the
// network is a *non-uniform* dynamic graph: exactly the weighted
// randomized adversary of the paper's open question 3. Each sensor holds
// one battery reading; the hub must learn the minimum while every sensor
// transmits at most once (the paper's energy constraint).
//
// The example compares the three oblivious strategies online on the same
// interaction stream: Waiting, Gathering and Waiting Greedy with the
// meetTime oracle.
package main

import (
	"fmt"
	"os"

	"doda"
	"doda/internal/rng"
)

// bodyWeights models the contact pattern: the hub (node 0) participates
// heavily, torso sensors moderately, extremity sensors rarely.
func bodyWeights(n int) []float64 {
	weights := make([]float64, n)
	for i := range weights {
		switch {
		case i == 0:
			weights[i] = float64(n) / 2
		case i <= n/4:
			weights[i] = 2
		default:
			weights[i] = 0.5
		}
	}
	return weights
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sensornet:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n      = 48
		budget = 1 << 19
	)

	// Battery levels: extremity sensors run lower.
	batteries := make([]float64, n)
	src := rng.New(99)
	for i := range batteries {
		batteries[i] = 20 + 80*src.Float64()
	}
	batteries[n-1] = 7.5 // the critical reading the hub must learn

	fmt.Printf("body-area network: %d sensors, min battery = %.1f%%\n\n", n, 7.5)
	fmt.Printf("%-24s %13s %13s %9s\n", "algorithm", "interactions", "transmissions", "min@hub")

	type contestant struct {
		name string
		make func(st *doda.Stream) (doda.Algorithm, *doda.Knowledge, error)
	}
	contestants := []contestant{
		{name: "waiting", make: func(*doda.Stream) (doda.Algorithm, *doda.Knowledge, error) {
			return doda.NewWaiting(), nil, nil
		}},
		{name: "gathering", make: func(*doda.Stream) (doda.Algorithm, *doda.Knowledge, error) {
			return doda.NewGathering(), nil, nil
		}},
		{name: "waiting-greedy", make: func(st *doda.Stream) (doda.Algorithm, *doda.Knowledge, error) {
			know, err := doda.NewKnowledge(doda.WithMeetTime(st, 0, budget))
			if err != nil {
				return nil, nil, err
			}
			return doda.NewWaitingGreedy(doda.TauStar(n)), know, nil
		}},
	}

	for _, c := range contestants {
		// Each contestant gets an identical copy of the contact stream
		// (same seed) so the comparison is apples to apples.
		adv, stream, err := doda.WeightedAdversary(bodyWeights(n), 4242)
		if err != nil {
			return err
		}
		alg, know, err := c.make(stream)
		if err != nil {
			return err
		}
		res, err := doda.Run(doda.Config{
			N:               n,
			Agg:             doda.Min,
			Payloads:        batteries,
			MaxInteractions: budget,
			Know:            know,
			VerifyAggregate: true,
		}, alg, adv)
		if err != nil {
			return err
		}
		status := fmt.Sprintf("%d", res.Interactions)
		sinkMin := "-"
		if res.Terminated {
			sinkMin = fmt.Sprintf("%.1f%%", res.SinkValue.Num)
		} else {
			status += " (not done)"
		}
		fmt.Printf("%-24s %13s %13d %9s\n", c.name, status, res.Transmissions, sinkMin)
	}

	fmt.Println("\nwaiting-greedy exploits next-hub-contact knowledge: extremity sensors")
	fmt.Println("hand their reading to torso sensors that will see the hub sooner.")
	return nil
}
