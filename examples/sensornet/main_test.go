package main

import (
	"os"
	"testing"
)

// TestRunSmoke executes the example end to end. The examples double as
// executable documentation, so they must keep running (and keep
// exiting 0) as the library underneath them evolves; their prose output
// is silenced here to keep test logs readable.
func TestRunSmoke(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()
	if err := run(); err != nil {
		t.Fatalf("example failed: %v", err)
	}
}
