// Vehicular: cars on a ring road exchange data ad hoc with their
// neighbours and with a roadside unit (RSU) they all eventually pass —
// the paper's second motivating scenario. Contacts recur (every car keeps
// passing the same spots), so the underlying graph Ḡ is known and the
// interactions are recurrent: exactly the setting of Theorems 4 and 5.
//
// The example aggregates the total count of hazard observations at the
// RSU with the spanning-tree algorithm, then shows Theorem 4's dark side:
// an unlucky (adversarial) schedule that starves one tree edge makes the
// cost grow even though every contact still recurs.
package main

import (
	"fmt"
	"os"

	"doda"
	"doda/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vehicular:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 20 // RSU = node 0, cars 1..19 around the ring

	// Ḡ: ring of cars, with the RSU inserted between car 1 and car 19.
	g, err := graph.Cycle(n)
	if err != nil {
		return err
	}

	// Hazard observations per car; the RSU wants the total count.
	hazards := make([]float64, n)
	for i := 1; i < n; i++ {
		hazards[i] = float64(i % 3) // 0, 1 or 2 observations
	}
	want := 0.0
	for _, h := range hazards {
		want += h
	}

	// Benign recurring traffic: every contact recurs round-robin.
	edges := g.Edges()
	adv, stream, err := doda.RecurrentAdversary(n, edges)
	if err != nil {
		return err
	}
	know, err := doda.NewKnowledge(doda.WithUnderlying(g))
	if err != nil {
		return err
	}
	res, err := doda.Run(doda.Config{
		N:               n,
		Agg:             doda.Sum,
		Payloads:        hazards,
		MaxInteractions: len(edges) * (n + 2) * 4,
		Know:            know,
		VerifyAggregate: true,
	}, doda.NewSpanningTree(), adv)
	if err != nil {
		return err
	}
	fmt.Printf("ring road, %d cars + RSU, spanning-tree convergecast\n", n-1)
	fmt.Printf("  terminated:   %v after %d interactions\n", res.Terminated, res.Interactions)
	fmt.Printf("  hazard total: %g (expected %g)\n", res.SinkValue.Num, want)
	if opt, ok := doda.Opt(stream, 0, 0, res.Duration+len(edges)*(n+2)); ok {
		fmt.Printf("  offline opt:  %d (duration %d, ratio %.2f)\n", opt, res.Duration, float64(res.Duration)/float64(opt))
	}

	// Theorem 4's unboundedness: starve one tree edge. The BFS tree
	// rooted at the RSU uses the ring edges; delay edge {9,10} (the car
	// 10 leaf contact) so the convergecast up that branch stalls. The
	// frequent contacts are ordered so that each pass admits a full
	// offline convergecast along the remaining path — T(i) advances once
	// per pass while the spanning-tree algorithm waits k passes for its
	// starved edge, so the cost grows with k.
	fmt.Println("\nadversarial recurrence (Theorem 4): one contact recurs rarely")
	fmt.Printf("  %-12s %12s %6s\n", "delay factor", "interactions", "cost")
	delayed := graph.MustEdge(9, 10)
	var frequent []doda.Edge
	for i := 10; i < n-1; i++ { // 10-11, 11-12, ..., 18-19
		frequent = append(frequent, graph.MustEdge(doda.NodeID(i), doda.NodeID(i+1)))
	}
	frequent = append(frequent, graph.MustEdge(0, doda.NodeID(n-1)))
	for i := 9; i >= 1; i-- { // 8-9, 7-8, ..., 0-1
		frequent = append(frequent, graph.MustEdge(doda.NodeID(i-1), doda.NodeID(i)))
	}
	for _, k := range []int{1, 8, 32} {
		advK, streamK, err := doda.RecurrentAdversaryDelayed(n, frequent, delayed, k)
		if err != nil {
			return err
		}
		knowK, err := doda.NewKnowledge(doda.WithUnderlying(g))
		if err != nil {
			return err
		}
		resK, err := doda.Run(doda.Config{
			N:               n,
			Agg:             doda.Sum,
			Payloads:        hazards,
			MaxInteractions: (k*len(frequent) + 1) * (n + 2) * 4,
			Know:            knowK,
			VerifyAggregate: true,
		}, doda.NewSpanningTree(), advK)
		if err != nil {
			return err
		}
		cost := "-"
		if resK.Terminated {
			clock, err := doda.NewClock(streamK, 0, resK.Duration+(k*len(frequent)+1)*(n+2)*4)
			if err != nil {
				return err
			}
			if c, ok := clock.Cost(resK.Duration); ok {
				cost = fmt.Sprintf("%d", c)
			}
		}
		fmt.Printf("  %-12d %12d %6s\n", k, resK.Interactions, cost)
	}
	fmt.Println("\ncost grows with the delay factor: finite for every recurrent schedule")
	fmt.Println("(Theorem 4) but not bounded by any constant.")
	return nil
}
