// Quickstart: aggregate the minimum of 32 sensor readings at a sink over
// a uniformly random dynamic network (the paper's randomized adversary),
// using the Gathering algorithm — optimal when nodes know nothing
// (Corollary 2).
package main

import (
	"fmt"
	"os"

	"doda"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 32

	// The randomized adversary picks each interaction uniformly among
	// the n(n-1)/2 node pairs. The returned stream is the materialised
	// sequence, reusable for offline analysis below.
	adv, stream, err := doda.RandomizedAdversary(n, 2016)
	if err != nil {
		return err
	}

	// Node i starts with payload 100+i; the sink (node 0) must end up
	// with the minimum, 100.
	payloads := make([]float64, n)
	for i := range payloads {
		payloads[i] = 100 + float64(i)
	}

	res, err := doda.Run(doda.Config{
		N:               n,
		Agg:             doda.Min,
		Payloads:        payloads,
		MaxInteractions: 1 << 20,
		VerifyAggregate: true,
	}, doda.NewGathering(), adv)
	if err != nil {
		return err
	}

	fmt.Printf("terminated:    %v after %d interactions\n", res.Terminated, res.Interactions)
	fmt.Printf("transmissions: %d (exactly n-1 = %d)\n", res.Transmissions, n-1)
	fmt.Printf("sink value:    %g aggregated from %d nodes\n", res.SinkValue.Num, res.SinkValue.Count)

	// How close to optimal was that? opt(0) is the offline optimum on
	// the same sequence; cost counts how many optimal convergecasts
	// would have fit in the time Gathering used (the paper's §2.3 cost).
	if opt, ok := doda.Opt(stream, 0, 0, res.Duration+1<<16); ok {
		fmt.Printf("offline opt:   %d interactions (gathering/opt = %.1fx)\n",
			opt+1, float64(res.Duration+1)/float64(opt+1))
	}
	clock, err := doda.NewClock(stream, 0, res.Duration+1<<16)
	if err != nil {
		return err
	}
	if cost, ok := clock.Cost(res.Duration); ok {
		fmt.Printf("cost:          %d successive convergecasts (theory: Θ(n/log n))\n", cost)
	}
	return nil
}
