// Knowledge: the paper's central message in one run — each rung of the
// knowledge ladder buys a provably faster aggregation under the
// randomized adversary:
//
//	none          Gathering        Θ(n²)              (Theorem 9, Corollary 2)
//	meetTime      Waiting Greedy   Θ(n^{3/2}√log n)   (Theorems 10-11, Corollary 3)
//	future        future-gossip    Θ(n log n)         (Theorem 6, Corollary 1)
//	full sequence offline optimum  (n-1)·H(n-1)       (Theorem 8)
//
// All five algorithms run on the same sequence (same seed), so the
// interaction counts are directly comparable.
package main

import (
	"fmt"
	"math"
	"os"

	"doda"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "knowledge:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n    = 64
		seed = 2016
	)
	horizon := 80 * n * n

	harmonic := 0.0
	for i := 1; i < n; i++ {
		harmonic += 1 / float64(i)
	}

	type rung struct {
		name   string
		know   string
		theory string
		run    func() (doda.Result, error)
	}
	rungs := []rung{
		{name: "waiting", know: "none", theory: fmt.Sprintf("n(n-1)/2·H(n-1) ≈ %.0f", float64(n)*float64(n-1)/2*harmonic),
			run: func() (doda.Result, error) {
				adv, _, err := doda.RandomizedAdversary(n, seed)
				if err != nil {
					return doda.Result{}, err
				}
				return doda.Run(doda.Config{N: n, MaxInteractions: horizon}, doda.NewWaiting(), adv)
			}},
		{name: "gathering", know: "none", theory: fmt.Sprintf("(n-1)² = %d", (n-1)*(n-1)),
			run: func() (doda.Result, error) {
				adv, _, err := doda.RandomizedAdversary(n, seed)
				if err != nil {
					return doda.Result{}, err
				}
				return doda.Run(doda.Config{N: n, MaxInteractions: horizon}, doda.NewGathering(), adv)
			}},
		{name: "waiting-greedy(τ*)", know: "meetTime", theory: fmt.Sprintf("τ* = %d", doda.TauStar(n)),
			run: func() (doda.Result, error) {
				adv, stream, err := doda.RandomizedAdversary(n, seed)
				if err != nil {
					return doda.Result{}, err
				}
				know, err := doda.NewKnowledge(doda.WithMeetTime(stream, 0, horizon))
				if err != nil {
					return doda.Result{}, err
				}
				return doda.Run(doda.Config{N: n, MaxInteractions: horizon, Know: know},
					doda.NewWaitingGreedy(doda.TauStar(n)), adv)
			}},
		{name: "future-optimal", know: "future", theory: "Θ(n log n), cost ≤ n",
			run: func() (doda.Result, error) {
				_, stream, err := doda.RandomizedAdversary(n, seed)
				if err != nil {
					return doda.Result{}, err
				}
				length := int(12*float64(n)*math.Log(float64(n))) + 1000
				prefix := stream.Prefix(length)
				know, err := doda.NewKnowledge(doda.WithFutures(prefix))
				if err != nil {
					return doda.Result{}, err
				}
				adv, err := doda.ObliviousAdversary("randomized-prefix", prefix)
				if err != nil {
					return doda.Result{}, err
				}
				return doda.Run(doda.Config{N: n, MaxInteractions: length, Know: know},
					doda.NewFutureOptimal(length), adv)
			}},
		{name: "full-knowledge", know: "full sequence", theory: fmt.Sprintf("(n-1)·H(n-1) ≈ %.0f", float64(n-1)*harmonic),
			run: func() (doda.Result, error) {
				adv, stream, err := doda.RandomizedAdversary(n, seed)
				if err != nil {
					return doda.Result{}, err
				}
				know, err := doda.NewKnowledge(doda.WithFullSequence(stream))
				if err != nil {
					return doda.Result{}, err
				}
				return doda.Run(doda.Config{N: n, MaxInteractions: horizon, Know: know},
					doda.NewFullKnowledge(horizon), adv)
			}},
	}

	fmt.Printf("the knowledge ladder at n = %d (one seed, same sequence)\n\n", n)
	fmt.Printf("%-20s %-14s %13s   %s\n", "algorithm", "knowledge", "interactions", "theory")
	for _, r := range rungs {
		res, err := r.run()
		if err != nil {
			return err
		}
		count := "did not finish"
		if res.Terminated {
			count = fmt.Sprintf("%d", res.Interactions)
		}
		fmt.Printf("%-20s %-14s %13s   %s\n", r.name, r.know, count, r.theory)
	}
	fmt.Println("\nevery additional piece of knowledge buys a provable speed-up;")
	fmt.Println("the paper shows each rung is tight for its knowledge class.")
	return nil
}
