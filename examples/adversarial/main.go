// Adversarial: watch the paper's impossibility proofs happen. The
// Theorem 1 adversary reacts to the algorithm's transmissions on three
// nodes so that one node can never deliver; the Theorem 3 adversary does
// the same on a 4-node cycle even though every node knows the underlying
// graph. In both cases the offline optimum keeps completing convergecasts
// forever, so cost_A(I) exceeds every bound.
package main

import (
	"fmt"
	"os"

	"doda"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adversarial:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Theorem 1: adaptive adversary vs Gathering on {sink, a, b}")
	fmt.Printf("  %-10s %-11s %-22s\n", "horizon", "terminated", "convergecasts possible")
	for _, horizon := range []int{100, 1000, 10000} {
		adv, err := doda.Theorem1Adversary(0)
		if err != nil {
			return err
		}
		rec := doda.NewTraceRecorder()
		res, err := doda.Run(doda.Config{N: 3, MaxInteractions: horizon, Events: rec},
			doda.NewGathering(), adv)
		if err != nil {
			return err
		}
		count, err := convergecastsPossible(rec, 3)
		if err != nil {
			return err
		}
		fmt.Printf("  %-10d %-11v %-22d\n", horizon, res.Terminated, count)
	}
	fmt.Println("  the algorithm never terminates, yet an offline optimum could have")
	fmt.Println("  aggregated everything again and again: cost = ∞ (Theorem 1).")

	fmt.Println("\nTheorem 3: adaptive adversary vs spanning-tree on the 4-cycle (Ḡ known)")
	fmt.Printf("  %-10s %-11s %-22s\n", "horizon", "terminated", "convergecasts possible")
	for _, horizon := range []int{100, 1000, 10000} {
		adv, g, err := doda.Theorem3Adversary(0)
		if err != nil {
			return err
		}
		know, err := doda.NewKnowledge(doda.WithUnderlying(g))
		if err != nil {
			return err
		}
		rec := doda.NewTraceRecorder()
		res, err := doda.Run(doda.Config{N: 4, MaxInteractions: horizon, Know: know, Events: rec},
			doda.NewSpanningTree(), adv)
		if err != nil {
			return err
		}
		count, err := convergecastsPossible(rec, 4)
		if err != nil {
			return err
		}
		fmt.Printf("  %-10d %-11v %-22d\n", horizon, res.Terminated, count)
	}
	fmt.Println("  knowing the topology does not help against an adaptive adversary")
	fmt.Println("  when the graph has a cycle (Theorem 3).")
	return nil
}

// convergecastsPossible counts how many successive optimal convergecasts
// fit into the interactions the adversary actually emitted.
func convergecastsPossible(rec *doda.TraceRecorder, n int) (int, error) {
	s, err := rec.Sequence(n)
	if err != nil {
		return 0, err
	}
	clock, err := doda.NewClock(s, 0, s.Len())
	if err != nil {
		return 0, err
	}
	count := 0
	for {
		if _, ok := clock.T(count + 1); !ok {
			return count, nil
		}
		count++
	}
}
