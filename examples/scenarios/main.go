// Scenarios: a tour of the workload-generation layer. The paper proves
// its bounds against the uniform randomized adversary; this example runs
// the same algorithm (Gathering, optimal without knowledge) against the
// richer contact models of the scenario subsystem and shows how contact
// structure reshapes the cost:
//
//   - edge-Markovian contacts are bursty (live edges persist), which
//     barely changes the total interaction count;
//   - community structure throttles aggregation, because the final
//     cross-community merges wait on rare inter-community contacts;
//   - node churn is close to neutral in interaction-count terms — time
//     in the DODA model is counted in interactions, and filtering
//     interactions to online pairs rescales rates and opportunities
//     alike;
//   - a replayed contact trace runs through exactly the same machinery
//     as the synthetic models.
package main

import (
	"fmt"
	"os"
	"strings"

	"doda"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scenarios:", err)
		os.Exit(1)
	}
}

// runModel aggregates under one scenario model and reports the duration.
func runModel(m doda.ScenarioModel, seed uint64) (doda.Result, error) {
	adv, _, err := doda.ScenarioAdversary(m, seed)
	if err != nil {
		return doda.Result{}, err
	}
	n := m.N()
	return doda.Run(doda.Config{N: n, MaxInteractions: 4000 * n * n},
		doda.NewGathering(), adv)
}

func run() error {
	const n, seed = 48, 7

	// Build one instance of each generative model through the library
	// API (cmd/dodascen exposes the same registry on the command line).
	uniform, err := doda.NewUniformScenario(n)
	if err != nil {
		return err
	}
	bursty, err := doda.NewEdgeMarkovian(n, 0.05, 0.2)
	if err != nil {
		return err
	}
	sizes, err := doda.EvenCommunitySizes(n, 4)
	if err != nil {
		return err
	}
	clustered, err := doda.NewCommunity(sizes, 0.95)
	if err != nil {
		return err
	}
	flaky, err := doda.NewChurn(uniform, 0.1, 0.2)
	if err != nil {
		return err
	}

	fmt.Printf("Gathering at n=%d under four contact models (seed %d):\n\n", n, seed)
	for _, m := range []doda.ScenarioModel{uniform, bursty, clustered, flaky} {
		res, err := runModel(m, seed)
		if err != nil {
			return err
		}
		if !res.Terminated {
			return fmt.Errorf("%s: did not terminate", m.Name())
		}
		fmt.Printf("  %-18s duration %6d interactions (%d transmissions)\n",
			m.Name(), res.Duration+1, res.Transmissions)
	}

	// Trace replay: the same engine consumes a recorded contact trace.
	// Here the "trace" is an inline CSV — swap in any time,u,v file.
	trace := `time,u,v
# two rounds of a star around node 0
1,1,0
2,2,0
3,3,0
4,1,0
5,2,0
6,3,0
`
	s, err := doda.ReplayTrace(strings.NewReader(trace))
	if err != nil {
		return err
	}
	adv, err := doda.TraceAdversary(s)
	if err != nil {
		return err
	}
	res, err := doda.Run(doda.Config{N: s.N(), MaxInteractions: s.Len()},
		doda.NewGathering(), adv)
	if err != nil {
		return err
	}
	fmt.Printf("\nTrace replay (%d contacts, %d nodes): terminated=%v after %d interactions\n",
		s.Len(), s.N(), res.Terminated, res.Interactions)
	return nil
}
