package doda

// Serve-client re-exports: programs feeding a remote dodaserve process
// use the root package's retrying client and never import internal/.
// See internal/serveclient/doc.go for the idempotency and retry
// contracts.

import "doda/internal/serveclient"

// Serve-client types.
type (
	// ServeClient talks to one dodaserve process with bounded,
	// deterministically-jittered retries; every operation is safe to
	// retry because ingest is seq-stamped and the server acks duplicates
	// without re-applying them.
	ServeClient = serveclient.Client
	// ServeClientOptions tunes a client (HTTP transport, retry policy,
	// jitter seed).
	ServeClientOptions = serveclient.Options
	// ServeClientRetryPolicy bounds and paces retries (zero value:
	// 8 attempts, 100ms base doubling to a 5s cap).
	ServeClientRetryPolicy = serveclient.RetryPolicy
	// ServeStream is a seq-stamped batched feeder for one instance.
	ServeStream = serveclient.Stream
	// ServeAPIError is a deliberate non-2xx answer from the server.
	ServeAPIError = serveclient.APIError
)

// NewServeClient builds a client for the dodaserve process at baseURL.
func NewServeClient(baseURL string, opt ServeClientOptions) *ServeClient {
	return serveclient.New(baseURL, opt)
}
