package offline

import (
	"testing"
	"testing/quick"

	"doda/internal/graph"
	"doda/internal/rng"
	"doda/internal/seq"
)

func TestBroadcastCompletionChain(t *testing.T) {
	// 0 informs 1 at t=0, 1 informs 2 at t=1.
	s := mustSeq(t, 3, []seq.Interaction{{U: 0, V: 1}, {U: 1, V: 2}})
	end, ok := BroadcastCompletion(s, 0, 0, s.Len())
	if !ok || end != 1 {
		t.Errorf("BroadcastCompletion = %d,%v", end, ok)
	}
}

func TestBroadcastCompletionBlocked(t *testing.T) {
	// Wrong order: {1,2} then {0,1} spreads from 0 to 1 only.
	s := mustSeq(t, 3, []seq.Interaction{{U: 1, V: 2}, {U: 0, V: 1}})
	if _, ok := BroadcastCompletion(s, 0, 0, s.Len()); ok {
		t.Error("broadcast should not complete")
	}
	// From source 2 the same order works.
	if end, ok := BroadcastCompletion(s, 2, 0, s.Len()); !ok || end != 1 {
		t.Errorf("from 2: %d,%v", end, ok)
	}
}

func TestBroadcastCompletionFromOffset(t *testing.T) {
	s := mustSeq(t, 3, []seq.Interaction{
		{U: 0, V: 1}, {U: 1, V: 2}, // early broadcast
		{U: 0, V: 2}, {U: 0, V: 1}, // late one: 0->2 at 2, 0->1 at 3
	})
	end, ok := BroadcastCompletion(s, 0, 1, s.Len())
	if !ok || end != 3 {
		t.Errorf("BroadcastCompletion(from=1) = %d,%v", end, ok)
	}
}

func TestBroadcastCompletionBadSource(t *testing.T) {
	s := mustSeq(t, 3, []seq.Interaction{{U: 0, V: 1}})
	if _, ok := BroadcastCompletion(s, 9, 0, s.Len()); ok {
		t.Error("bad source should fail")
	}
}

func TestAllInformedCompletion(t *testing.T) {
	// Forward then backward wave over a path: all informed at t=4.
	s := mustSeq(t, 4, []seq.Interaction{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3},
		{U: 1, V: 2}, {U: 0, V: 1},
	})
	end, ok := AllInformedCompletion(s, 0, s.Len())
	if !ok || end != 4 {
		t.Errorf("AllInformedCompletion = %d,%v", end, ok)
	}
}

func TestAllInformedIncomplete(t *testing.T) {
	s := mustSeq(t, 3, []seq.Interaction{{U: 0, V: 1}})
	if _, ok := AllInformedCompletion(s, 0, s.Len()); ok {
		t.Error("gossip cannot complete without node 2")
	}
}

func TestAllInformedLargeN(t *testing.T) {
	// Exercise the multi-word bitmask path (n > 64).
	src := rng.New(77)
	n := 70
	s, err := seq.Uniform(n, 40*n, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := AllInformedCompletion(s, 0, s.Len()); !ok {
		t.Error("gossip should complete on a long uniform sequence")
	}
}

func TestReverseWindow(t *testing.T) {
	s := mustSeq(t, 3, []seq.Interaction{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	rev, err := ReverseWindow(s, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []seq.Interaction{{U: 0, V: 2}, {U: 1, V: 2}, {U: 0, V: 1}}
	for i := range want {
		if rev.At(i) != want[i] {
			t.Fatalf("rev = %v %v %v", rev.At(0), rev.At(1), rev.At(2))
		}
	}
	if _, err := ReverseWindow(s, 2, 1); err == nil {
		t.Error("empty window should fail")
	}
	if _, err := ReverseWindow(s, 0, 5); err == nil {
		t.Error("window beyond bound should fail")
	}
}

func TestTheorem8Duality(t *testing.T) {
	// The heart of Theorem 8's proof: a convergecast to s on I[a..b]
	// exists iff a broadcast from s completes on the reversed window.
	src := rng.New(88)
	for trial := 0; trial < 60; trial++ {
		n := 3 + src.Intn(6)
		s, err := seq.Uniform(n, 30*n, src)
		if err != nil {
			t.Fatal(err)
		}
		sink := graph.NodeID(src.Intn(n))
		from := src.Intn(10)
		end := from + src.Intn(s.Len()-from-1)
		covers := Covers(s, sink, from, end)
		rev, err := ReverseWindow(s, from, end)
		if err != nil {
			t.Fatal(err)
		}
		_, broadcastOK := BroadcastCompletion(rev, sink, 0, rev.Len())
		if covers != broadcastOK {
			t.Fatalf("duality broken: n=%d window [%d,%d] covers=%v broadcast=%v",
				n, from, end, covers, broadcastOK)
		}
	}
}

func TestQuickBroadcastMonotoneInWindow(t *testing.T) {
	// If a broadcast completes by horizon h it completes for any h' > h.
	f := func(seedRaw uint64) bool {
		src := rng.New(seedRaw)
		n := 3 + src.Intn(5)
		s, err := seq.Uniform(n, 50*n, src)
		if err != nil {
			return false
		}
		end, ok := BroadcastCompletion(s, 0, 0, s.Len())
		if !ok {
			return true
		}
		end2, ok2 := BroadcastCompletion(s, 0, 0, end+1)
		return ok2 && end2 == end
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickAllInformedAfterEveryBroadcast(t *testing.T) {
	// All-informed completion is at least every single-source broadcast
	// completion.
	f := func(seedRaw uint64) bool {
		src := rng.New(seedRaw)
		n := 3 + src.Intn(5)
		s, err := seq.Uniform(n, 60*n, src)
		if err != nil {
			return false
		}
		all, ok := AllInformedCompletion(s, 0, s.Len())
		if !ok {
			return true
		}
		for u := 0; u < n; u++ {
			single, ok := BroadcastCompletion(s, graph.NodeID(u), 0, s.Len())
			if !ok || single > all {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
