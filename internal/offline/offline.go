// Package offline computes optimal offline convergecasts on interaction
// sequences, the successive-convergecast clock T(i), and the paper's cost
// function (§2.3):
//
//	T(1)   = opt(0)
//	T(i+1) = opt(T(i) + 1)
//	cost_A(I) = min{ i | duration(A, I) <= T(i) }
//
// where opt(t) is the completion time of a minimum-duration data
// aggregation schedule (a "convergecast") started at time t.
//
// The core primitive is the reverse-broadcast argument used in the proof
// of Theorem 8: a convergecast exists on the window I[from..end] iff a
// broadcast from the sink exists on the reversed window, i.e. iff the
// backward infection process started at the sink at time end reaches all
// nodes. Backward infection also yields the schedule itself: when node u
// is infected at time t through interaction {u, v} (v already infected),
// u sends at t to v, and v's own send happens strictly later — so every
// node transmits exactly once and data flows to the sink.
package offline

import (
	"fmt"

	"doda/internal/graph"
	"doda/internal/seq"
)

// Schedule is an optimal offline convergecast plan: for every non-sink
// node, the time at which it transmits and the receiver of its datum.
type Schedule struct {
	Sink graph.NodeID
	// Start is the first time index the schedule was allowed to use.
	Start int
	// End is the completion time: the largest send time.
	End int
	// SendTime[u] is when node u transmits (-1 for the sink).
	SendTime []int
	// Receiver[u] is who receives u's datum (-1 for the sink).
	Receiver []graph.NodeID
}

// Covers reports whether a convergecast to sink exists within the window
// I[from..end] (inclusive bounds), by running the backward infection
// process. It returns the infection order size; full coverage means a
// schedule exists.
func Covers(view seq.View, sink graph.NodeID, from, end int) bool {
	n := view.N()
	infected := make([]bool, n)
	infected[sink] = true
	count := 1
	for t := end; t >= from; t-- {
		it := view.At(t)
		iu, iv := infected[it.U], infected[it.V]
		if iu == iv {
			continue
		}
		if iu {
			infected[it.V] = true
		} else {
			infected[it.U] = true
		}
		count++
		if count == n {
			return true
		}
	}
	return count == n
}

// Opt returns the completion time opt(from) of an optimal convergecast
// starting at time from, searching window ends up to horizon (exclusive).
// ok is false when no convergecast completes before the horizon — the
// paper's opt(t) = ∞ case.
func Opt(view seq.View, sink graph.NodeID, from, horizon int) (end int, ok bool) {
	s, err := Plan(view, sink, from, horizon)
	if err != nil {
		return 0, false
	}
	return s.End, true
}

// ErrNoConvergecast reports that no convergecast completes within the
// allowed horizon.
type ErrNoConvergecast struct {
	From, Horizon int
}

func (e *ErrNoConvergecast) Error() string {
	return fmt.Sprintf("offline: no convergecast in window [%d,%d)", e.From, e.Horizon)
}

// Plan computes an optimal (minimum completion time) convergecast
// schedule starting at time from, considering interactions strictly
// before horizon. The search uses galloping followed by binary search on
// the monotone predicate Covers(from, end).
func Plan(view seq.View, sink graph.NodeID, from, horizon int) (*Schedule, error) {
	n := view.N()
	if sink < 0 || int(sink) >= n {
		return nil, fmt.Errorf("offline: sink %d out of range [0,%d)", sink, n)
	}
	if from < 0 {
		from = 0
	}
	if b, finite := view.Bound(); finite && horizon > b {
		horizon = b
	}
	// A convergecast needs at least n-1 transmissions, hence n-1
	// interactions: the earliest possible end is from + n - 2.
	lo := from + n - 2
	if lo < from {
		lo = from
	}
	if lo >= horizon {
		return nil, &ErrNoConvergecast{From: from, Horizon: horizon}
	}
	// Gallop for an upper bound end with coverage.
	hi := lo
	step := n
	for !Covers(view, sink, from, hi) {
		if hi == horizon-1 {
			return nil, &ErrNoConvergecast{From: from, Horizon: horizon}
		}
		hi += step
		step *= 2
		if hi > horizon-1 {
			hi = horizon - 1
		}
	}
	// Binary search the minimal covering end in [lo, hi].
	for lo < hi {
		mid := lo + (hi-lo)/2
		if Covers(view, sink, from, mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return extract(view, sink, from, lo), nil
}

// extract replays the backward infection at the minimal end and records
// the schedule. At the minimal end the last infection happens exactly at
// `end` (otherwise a smaller window would cover), so End == end.
func extract(view seq.View, sink graph.NodeID, from, end int) *Schedule {
	n := view.N()
	s := &Schedule{
		Sink:     sink,
		Start:    from,
		End:      end,
		SendTime: make([]int, n),
		Receiver: make([]graph.NodeID, n),
	}
	for u := range s.SendTime {
		s.SendTime[u] = -1
		s.Receiver[u] = -1
	}
	infected := make([]bool, n)
	infected[sink] = true
	count := 1
	for t := end; t >= from && count < n; t-- {
		it := view.At(t)
		iu, iv := infected[it.U], infected[it.V]
		if iu == iv {
			continue
		}
		var sender, receiver graph.NodeID
		if iu {
			sender, receiver = it.V, it.U
		} else {
			sender, receiver = it.U, it.V
		}
		infected[sender] = true
		s.SendTime[sender] = t
		s.Receiver[sender] = receiver
		count++
	}
	return s
}

// Validate checks that the schedule is a correct convergecast: every
// non-sink node sends exactly once, through an interaction that really
// occurs at its send time, to a receiver that transmits strictly later
// (or is the sink), with the completion time consistent.
func (s *Schedule) Validate(view seq.View) error {
	n := view.N()
	if len(s.SendTime) != n || len(s.Receiver) != n {
		return fmt.Errorf("offline: schedule sized for %d nodes, view has %d", len(s.SendTime), n)
	}
	maxSend := -1
	for u := 0; u < n; u++ {
		uid := graph.NodeID(u)
		if uid == s.Sink {
			if s.SendTime[u] != -1 {
				return fmt.Errorf("offline: sink %d has a send time", u)
			}
			continue
		}
		t := s.SendTime[u]
		if t < s.Start {
			return fmt.Errorf("offline: node %d sends at %d before start %d", u, t, s.Start)
		}
		it := view.At(t)
		recv := s.Receiver[u]
		if !it.Involves(uid) || !it.Involves(recv) {
			return fmt.Errorf("offline: node %d's send at %d does not match interaction %v", u, t, it)
		}
		if recv != s.Sink && s.SendTime[recv] <= t {
			return fmt.Errorf("offline: receiver %d of node %d sends at %d, not after %d",
				recv, u, s.SendTime[recv], t)
		}
		if t > maxSend {
			maxSend = t
		}
	}
	if maxSend != s.End {
		return fmt.Errorf("offline: End = %d but last send is %d", s.End, maxSend)
	}
	return nil
}

// Clock iterates the successive-convergecast times T(1), T(2), ... over a
// view, lazily: T(1) = opt(0), T(i+1) = opt(T(i)+1).
type Clock struct {
	view    seq.View
	sink    graph.NodeID
	horizon int
	ts      []int // ts[i-1] = T(i)
	dead    bool  // no further convergecast fits in the horizon
}

// NewClock returns a Clock over view with the given search horizon.
func NewClock(view seq.View, sink graph.NodeID, horizon int) (*Clock, error) {
	if sink < 0 || int(sink) >= view.N() {
		return nil, fmt.Errorf("offline: sink %d out of range [0,%d)", sink, view.N())
	}
	return &Clock{view: view, sink: sink, horizon: horizon}, nil
}

// T returns T(i) for i >= 1 and whether it is finite within the horizon.
func (c *Clock) T(i int) (int, bool) {
	if i < 1 {
		return 0, false
	}
	for len(c.ts) < i && !c.dead {
		from := 0
		if len(c.ts) > 0 {
			from = c.ts[len(c.ts)-1] + 1
		}
		end, ok := Opt(c.view, c.sink, from, c.horizon)
		if !ok {
			c.dead = true
			break
		}
		c.ts = append(c.ts, end)
	}
	if i <= len(c.ts) {
		return c.ts[i-1], true
	}
	return 0, false
}

// Computed returns how many successive convergecasts have been computed.
func (c *Clock) Computed() int { return len(c.ts) }

// Cost returns cost_A(I) = min{ i | duration <= T(i) } for an algorithm
// that terminated at the given duration (the time index of its last
// transmission). ok is false when the cost is infinite within the
// horizon: every computable T(i) is smaller than duration. A duration of
// -1 (terminated with no transmissions needed, n == 1 edge cases) has
// cost 1 when T(1) exists.
func (c *Clock) Cost(duration int) (int, bool) {
	for i := 1; ; i++ {
		ti, ok := c.T(i)
		if !ok {
			return 0, false
		}
		if duration <= ti {
			return i, true
		}
	}
}
