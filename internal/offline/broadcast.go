package offline

// Broadcast machinery. Theorem 8's proof rests on a duality: a
// convergecast on a window exists iff a broadcast from the sink exists on
// the reversed window ("by reversing the order of the interactions in
// the sequence, this implies that a sequence of Θ(n log n) interactions
// is also sufficient to perform a convergecast"). This file implements
// forward broadcast (infection) so the duality is directly testable, and
// because broadcast completion times are what the proofs of Theorem 6
// and Corollary 1 bound (futures spread by broadcast).

import (
	"fmt"

	"doda/internal/graph"
	"doda/internal/seq"
)

// BroadcastCompletion returns the earliest time at which information
// originating at source at time `from` has reached all nodes, spreading
// through interactions (both endpoints leave an interaction knowing
// everything either knew — the control-information gossip of the model).
// ok is false if the broadcast does not complete before horizon.
func BroadcastCompletion(view seq.View, source graph.NodeID, from, horizon int) (int, bool) {
	n := view.N()
	if source < 0 || int(source) >= n {
		return 0, false
	}
	if b, finite := view.Bound(); finite && horizon > b {
		horizon = b
	}
	if from < 0 {
		from = 0
	}
	informed := make([]bool, n)
	informed[source] = true
	count := 1
	if count == n {
		return from, true
	}
	for t := from; t < horizon; t++ {
		it := view.At(t)
		iu, iv := informed[it.U], informed[it.V]
		if iu == iv {
			continue
		}
		informed[it.U], informed[it.V] = true, true
		count++
		if count == n {
			return t, true
		}
	}
	return 0, false
}

// AllInformedCompletion returns the earliest time at which *every* node
// knows *every* node's initial information under pairwise gossip — the
// completion of n simultaneous broadcasts. This is the quantity the
// future-gossip algorithm's phase 1 waits for (Theorem 6 / Corollary 1).
func AllInformedCompletion(view seq.View, from, horizon int) (int, bool) {
	n := view.N()
	if b, finite := view.Bound(); finite && horizon > b {
		horizon = b
	}
	if from < 0 {
		from = 0
	}
	// know[u] is a bitmask over origins for n <= 64, otherwise a word
	// slice; keep it simple and exact with word slices.
	words := (n + 63) / 64
	know := make([][]uint64, n)
	full := make([]uint64, words)
	for u := 0; u < n; u++ {
		know[u] = make([]uint64, words)
		know[u][u/64] |= 1 << (uint(u) % 64)
		full[u/64] |= 1 << (uint(u) % 64)
	}
	isFull := func(u int) bool {
		for w := range full {
			if know[u][w] != full[w] {
				return false
			}
		}
		return true
	}
	fullCount := 0
	for u := 0; u < n; u++ {
		if isFull(u) {
			fullCount++
		}
	}
	for t := from; t < horizon; t++ {
		it := view.At(t)
		u, v := int(it.U), int(it.V)
		wasU, wasV := isFull(u), isFull(v)
		for w := 0; w < words; w++ {
			merged := know[u][w] | know[v][w]
			know[u][w], know[v][w] = merged, merged
		}
		if !wasU && isFull(u) {
			fullCount++
		}
		if !wasV && isFull(v) {
			fullCount++
		}
		if fullCount == n {
			return t, true
		}
	}
	return 0, false
}

// ReverseWindow materialises the interactions of view in [from, end]
// (inclusive) in reversed order, as a finite sequence. It is the
// transformation at the heart of Theorem 8's broadcast/convergecast
// duality.
func ReverseWindow(view seq.View, from, end int) (*seq.Sequence, error) {
	if from < 0 {
		from = 0
	}
	if end < from {
		return nil, fmt.Errorf("offline: empty window [%d,%d]", from, end)
	}
	if b, finite := view.Bound(); finite && end >= b {
		return nil, fmt.Errorf("offline: window end %d beyond bound %d", end, b)
	}
	steps := make([]seq.Interaction, 0, end-from+1)
	for t := end; t >= from; t-- {
		steps = append(steps, view.At(t))
	}
	return seq.NewSequence(view.N(), steps)
}
