package offline

import (
	"errors"
	"testing"
	"testing/quick"

	"doda/internal/graph"
	"doda/internal/rng"
	"doda/internal/seq"
)

func mustSeq(t *testing.T, n int, steps []seq.Interaction) *seq.Sequence {
	t.Helper()
	s, err := seq.NewSequence(n, steps)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCoversSimpleChain(t *testing.T) {
	// 2 -> 1 at t=0, 1 -> 0 at t=1: convergecast to sink 0 within [0,1].
	s := mustSeq(t, 3, []seq.Interaction{{U: 1, V: 2}, {U: 0, V: 1}})
	if !Covers(s, 0, 0, 1) {
		t.Error("chain should cover")
	}
	// Window [0,0] is too small.
	if Covers(s, 0, 0, 0) {
		t.Error("single interaction cannot aggregate 3 nodes")
	}
}

func TestCoversWrongOrder(t *testing.T) {
	// {0,1} then {1,2}: node 2 can reach the sink only via 1, but 1's
	// send must happen after 2's — impossible here.
	s := mustSeq(t, 3, []seq.Interaction{{U: 0, V: 1}, {U: 1, V: 2}})
	if Covers(s, 0, 0, 1) {
		t.Error("reversed chain must not cover")
	}
}

func TestPlanMinimalEnd(t *testing.T) {
	// The chain completes at t=1 even though more interactions follow.
	s := mustSeq(t, 3, []seq.Interaction{
		{U: 1, V: 2}, {U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 1},
	})
	plan, err := Plan(s, 0, 0, s.Len())
	if err != nil {
		t.Fatal(err)
	}
	if plan.End != 1 {
		t.Errorf("End = %d, want 1", plan.End)
	}
	if err := plan.Validate(s); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if plan.SendTime[0] != -1 || plan.Receiver[0] != -1 {
		t.Error("sink should not send")
	}
	if plan.SendTime[2] != 0 || plan.Receiver[2] != 1 {
		t.Errorf("node 2 schedule = %d -> %d", plan.SendTime[2], plan.Receiver[2])
	}
	if plan.SendTime[1] != 1 || plan.Receiver[1] != 0 {
		t.Errorf("node 1 schedule = %d -> %d", plan.SendTime[1], plan.Receiver[1])
	}
}

func TestPlanRespectsFrom(t *testing.T) {
	// Starting at t=1 skips the early chain; the only completion uses
	// the later interactions.
	s := mustSeq(t, 3, []seq.Interaction{
		{U: 1, V: 2}, {U: 0, V: 1}, // early convergecast
		{U: 1, V: 2}, {U: 0, V: 2}, // later one: 1->2 at 2, 2->0 at 3
	})
	plan, err := Plan(s, 0, 1, s.Len())
	if err != nil {
		t.Fatal(err)
	}
	if plan.End != 3 {
		t.Errorf("End = %d, want 3", plan.End)
	}
	if err := plan.Validate(s); err != nil {
		t.Error(err)
	}
}

func TestPlanNoConvergecast(t *testing.T) {
	// Node 2 never interacts: impossible.
	s := mustSeq(t, 3, []seq.Interaction{{U: 0, V: 1}, {U: 0, V: 1}})
	_, err := Plan(s, 0, 0, s.Len())
	var noCC *ErrNoConvergecast
	if !errors.As(err, &noCC) {
		t.Fatalf("err = %v, want ErrNoConvergecast", err)
	}
	if _, ok := Opt(s, 0, 0, s.Len()); ok {
		t.Error("Opt should report no convergecast")
	}
}

func TestPlanBadSink(t *testing.T) {
	s := mustSeq(t, 3, []seq.Interaction{{U: 0, V: 1}})
	if _, err := Plan(s, 9, 0, s.Len()); err == nil {
		t.Error("want error for out-of-range sink")
	}
}

func TestPlanFromBeyondEnd(t *testing.T) {
	s := mustSeq(t, 3, []seq.Interaction{{U: 1, V: 2}, {U: 0, V: 1}})
	if _, err := Plan(s, 0, 10, s.Len()); err == nil {
		t.Error("want error when window is empty")
	}
}

func TestPlanNegativeFromClamped(t *testing.T) {
	s := mustSeq(t, 3, []seq.Interaction{{U: 1, V: 2}, {U: 0, V: 1}})
	plan, err := Plan(s, 0, -5, s.Len())
	if err != nil {
		t.Fatal(err)
	}
	if plan.End != 1 {
		t.Errorf("End = %d", plan.End)
	}
}

func TestOptOnStarSequence(t *testing.T) {
	// Star: every node meets the sink once, in order 1..4. Completion is
	// the last interaction.
	steps := []seq.Interaction{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4},
	}
	s := mustSeq(t, 5, steps)
	end, ok := Opt(s, 0, 0, s.Len())
	if !ok || end != 3 {
		t.Errorf("Opt = %d,%v want 3,true", end, ok)
	}
}

func TestClockSuccessiveConvergecasts(t *testing.T) {
	// Two disjoint back-to-back convergecasts on 3 nodes.
	unit := []seq.Interaction{{U: 1, V: 2}, {U: 0, V: 1}}
	s := mustSeq(t, 3, append(append([]seq.Interaction{}, unit...), unit...))
	c, err := NewClock(s, 0, s.Len())
	if err != nil {
		t.Fatal(err)
	}
	t1, ok := c.T(1)
	if !ok || t1 != 1 {
		t.Errorf("T(1) = %d,%v", t1, ok)
	}
	t2, ok := c.T(2)
	if !ok || t2 != 3 {
		t.Errorf("T(2) = %d,%v", t2, ok)
	}
	if _, ok := c.T(3); ok {
		t.Error("T(3) should be infinite")
	}
	if c.Computed() != 2 {
		t.Errorf("Computed = %d", c.Computed())
	}
	if _, ok := c.T(0); ok {
		t.Error("T(0) is undefined")
	}
}

func TestClockCost(t *testing.T) {
	unit := []seq.Interaction{{U: 1, V: 2}, {U: 0, V: 1}}
	s := mustSeq(t, 3, append(append([]seq.Interaction{}, unit...), unit...))
	c, err := NewClock(s, 0, s.Len())
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		duration int
		want     int
		wantOK   bool
	}{
		{duration: 0, want: 1, wantOK: true},
		{duration: 1, want: 1, wantOK: true}, // optimal
		{duration: 2, want: 2, wantOK: true},
		{duration: 3, want: 2, wantOK: true},
		{duration: 4, wantOK: false}, // beyond T(2): infinite cost
	}
	for _, tt := range tests {
		got, ok := c.Cost(tt.duration)
		if ok != tt.wantOK || (ok && got != tt.want) {
			t.Errorf("Cost(%d) = %d,%v want %d,%v", tt.duration, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestClockBadSink(t *testing.T) {
	s := mustSeq(t, 3, []seq.Interaction{{U: 0, V: 1}})
	if _, err := NewClock(s, -1, s.Len()); err == nil {
		t.Error("want error for bad sink")
	}
}

func TestOptOnUniformMatchesBruteForce(t *testing.T) {
	// Brute-force reference: try all window ends increasing.
	src := rng.New(101)
	for trial := 0; trial < 30; trial++ {
		n := 3 + src.Intn(4)
		s, err := seq.Uniform(n, 120, src)
		if err != nil {
			t.Fatal(err)
		}
		from := src.Intn(20)
		got, gotOK := Opt(s, 0, from, s.Len())
		wantOK := false
		want := 0
		for end := from; end < s.Len(); end++ {
			if Covers(s, 0, from, end) {
				want, wantOK = end, true
				break
			}
		}
		if gotOK != wantOK || (gotOK && got != want) {
			t.Fatalf("trial %d: Opt(from=%d) = %d,%v want %d,%v", trial, from, got, gotOK, want, wantOK)
		}
	}
}

func TestQuickPlanValidates(t *testing.T) {
	f := func(seedRaw uint64) bool {
		src := rng.New(seedRaw)
		n := 3 + src.Intn(6)
		s, err := seq.Uniform(n, 40*n, src)
		if err != nil {
			return false
		}
		sink := graph.NodeID(src.Intn(n))
		from := src.Intn(n)
		plan, err := Plan(s, sink, from, s.Len())
		if err != nil {
			// Rare but possible on short sequences; not a failure of the
			// planner itself.
			var noCC *ErrNoConvergecast
			return errors.As(err, &noCC)
		}
		return plan.Validate(s) == nil
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickOptMonotoneInFrom(t *testing.T) {
	// Starting later can never finish earlier.
	f := func(seedRaw uint64) bool {
		src := rng.New(seedRaw)
		n := 3 + src.Intn(4)
		s, err := seq.Uniform(n, 60*n, src)
		if err != nil {
			return false
		}
		e1, ok1 := Opt(s, 0, 0, s.Len())
		e2, ok2 := Opt(s, 0, 5, s.Len())
		if !ok1 || !ok2 {
			return true // nothing to compare
		}
		return e2 >= e1
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
