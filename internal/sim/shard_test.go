package sim

// Differential acceptance suite for the sharded scheduler: the runtime
// must produce core.Engine's exact Result for every registry scenario,
// every provenance mode, every shard count, observer algorithms, and
// coarse-state adaptive adversaries — at sizes large enough that node
// state spans several shards and several ownership words. The whole
// suite runs in CI's race-detector job, which is what certifies the
// slot protocol's release/acquire discipline.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"doda/internal/adversary"
	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/knowledge"
	"doda/internal/rng"
	"doda/internal/scenario"
	"doda/internal/seq"
)

// sameRes compares every scalar Result field plus the sink value.
func sameRes(t *testing.T, label string, a, b core.Result) {
	t.Helper()
	if a.Terminated != b.Terminated || a.Failed != b.Failed ||
		a.FailReason != b.FailReason || a.Duration != b.Duration ||
		a.Interactions != b.Interactions || a.Transmissions != b.Transmissions ||
		a.Declined != b.Declined || a.LastGap != b.LastGap ||
		a.SinkValue.Num != b.SinkValue.Num || a.SinkValue.Count != b.SinkValue.Count {
		t.Errorf("%s: %+v != %+v", label, a, b)
	}
}

// buildWorkload instantiates one registry scenario, writing a small
// contact trace to disk for the trace spec (same shape as the sweep
// package's differential test).
func buildWorkload(t *testing.T, spec scenario.Spec, n int, seed uint64) *scenario.Workload {
	t.Helper()
	params := map[string]string{}
	if spec.Name == "trace" {
		path := filepath.Join(t.TempDir(), "trace.csv")
		var rows bytes.Buffer
		rows.WriteString("time,u,v\n")
		line := 0
		for round := 0; round < 2; round++ {
			for u := 1; u < n-1; u++ {
				fmt.Fprintf(&rows, "%d,%d,%d\n", line, u, u+1)
				line++
			}
		}
		for u := 1; u < n; u++ {
			fmt.Fprintf(&rows, "%d,%d,%d\n", line, 0, u)
			line++
		}
		if err := os.WriteFile(path, rows.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		params["file"] = path
	}
	w, err := spec.Build(n, seed, params)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestSimMatchesEngineEveryRegistryScenario is the tentpole equivalence
// gate: every registered scenario — trace replay included — through the
// engine and the sharded runtime under every provenance mode, at a size
// where ownership spans two bitset words and state spans all shards.
func TestSimMatchesEngineEveryRegistryScenario(t *testing.T) {
	const n = 70
	for _, spec := range scenario.All() {
		for _, mode := range []core.ProvenanceMode{core.ProvenanceFull, core.ProvenanceCount, core.ProvenanceOff} {
			label := fmt.Sprintf("%s/%v", spec.Name, mode)

			we := buildWorkload(t, spec, n, 23)
			cap := scenario.DefaultCap(we.N)
			if b, finite := we.View.Bound(); finite && cap > b {
				cap = b
			}
			engRes, err := core.RunOnce(core.Config{
				N: we.N, MaxInteractions: cap, VerifyAggregate: true, Provenance: mode,
			}, algorithms.NewGathering(), we.Adversary)
			if err != nil {
				t.Fatalf("%s engine: %v", label, err)
			}

			ws := buildWorkload(t, spec, n, 23)
			rt, err := NewRuntime(Config{N: ws.N, MaxInteractions: cap, Provenance: mode, Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			simRes, err := rt.Run(algorithms.NewGathering(), ws.Adversary)
			rt.Close()
			if err != nil {
				t.Fatalf("%s sim: %v", label, err)
			}

			if !engRes.Terminated {
				t.Fatalf("%s: engine did not terminate", label)
			}
			sameRes(t, label, engRes, simRes)
		}
	}
}

// TestSimShardCountInvariance pins that the partitioning is invisible:
// one shard (everything local), the auto default, and counts that leave
// shards of uneven sizes all produce the engine's Result.
func TestSimShardCountInvariance(t *testing.T) {
	const n = 70
	const seed = 9
	mkAdv := func() core.Adversary {
		a, err := adversary.NewGenerated("uniform", n, seq.UniformGen(n, rng.New(seed)))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	ref, err := core.RunOnce(core.Config{
		N: n, MaxInteractions: 50 * n * n, VerifyAggregate: true,
	}, algorithms.NewGathering(), mkAdv())
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 3, 4, 7, 64} {
		rt, err := NewRuntime(Config{N: n, MaxInteractions: 50 * n * n, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run(algorithms.NewGathering(), mkAdv())
		rt.Close()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		sameRes(t, fmt.Sprintf("shards=%d", shards), ref, res)
	}
}

// TestSimObserverMatchesEngine drives an Observer algorithm
// (future-optimal), whose Observe must see every interaction — the
// prescreen is bypassed and every position dispatches — and whose
// Observe/Decide mutate shared plan state across shard workers.
func TestSimObserverMatchesEngine(t *testing.T) {
	for _, n := range []int{10, 33} {
		const horizon = 50000
		run := func(viaSim bool) core.Result {
			adv, stream, err := adversary.Randomized(n, 33)
			if err != nil {
				t.Fatal(err)
			}
			know, err := knowledge.NewBundle(knowledge.WithFutures(stream.Prefix(horizon)))
			if err != nil {
				t.Fatal(err)
			}
			if viaSim {
				rt, err := NewRuntime(Config{N: n, MaxInteractions: horizon, Know: know, Shards: 4})
				if err != nil {
					t.Fatal(err)
				}
				defer rt.Close()
				res, err := rt.Run(algorithms.NewFutureOptimal(horizon), adv)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			res, err := core.RunOnce(core.Config{
				N: n, MaxInteractions: horizon, Know: know, VerifyAggregate: true,
			}, algorithms.NewFutureOptimal(horizon), adv)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		eng, sim := run(false), run(true)
		if !eng.Terminated {
			t.Fatalf("n=%d: engine did not terminate: %+v", n, eng)
		}
		sameRes(t, fmt.Sprintf("n=%d", n), eng, sim)
	}
}

// TestSimCoarseMatchesEngine checks the scheduler's coarse drain-replay
// path (adaptive adversaries reading only coarse ownership state)
// against both the sim's own scalar path and the engine.
func TestSimCoarseMatchesEngine(t *testing.T) {
	const n = 70
	for _, tc := range []struct {
		name string
		alg  func() core.Algorithm
	}{
		{"gathering", func() core.Algorithm { return algorithms.NewGathering() }},
		{"waiting", func() core.Algorithm { return algorithms.Waiting{} }},
	} {
		eng, err := core.RunOnce(core.Config{
			N: n, MaxInteractions: 1 << 18, VerifyAggregate: true, DisableBatch: true,
		}, tc.alg(), adversary.NewAdaptiveOwners(5))
		if err != nil {
			t.Fatal(err)
		}
		for _, disable := range []bool{false, true} {
			rt, err := NewRuntime(Config{N: n, MaxInteractions: 1 << 18, DisableBatch: disable})
			if err != nil {
				t.Fatal(err)
			}
			res, err := rt.Run(tc.alg(), adversary.NewAdaptiveOwners(5))
			rt.Close()
			if err != nil {
				t.Fatalf("%s disable=%v: %v", tc.name, disable, err)
			}
			sameRes(t, fmt.Sprintf("%s disable=%v", tc.name, disable), eng, res)
		}
	}
}

// stateBoundAdv mirrors the engine coarse suite's trickiest fixture: it
// emits {0,1} while t < 3 under full ownership and {0,2} while t < 6
// once any transfer happened — pure in (t, owner count), with an
// exhaustion point that *moves* when ownership changes.
type stateBoundAdv struct{}

func (stateBoundAdv) Name() string { return "state-bound" }
func (a stateBoundAdv) pick(t, n, nOwn int) (seq.Interaction, bool) {
	if nOwn == n {
		if t >= 3 {
			return seq.Interaction{}, false
		}
		return seq.Interaction{U: 0, V: 1}, true
	}
	if t >= 6 {
		return seq.Interaction{}, false
	}
	return seq.Interaction{U: 0, V: 2}, true
}
func (a stateBoundAdv) Next(t int, view core.ExecView) (seq.Interaction, bool) {
	return a.pick(t, view.N(), view.OwnerCount())
}
func (a stateBoundAdv) NextCoarseBatch(t int, view core.WordView, buf []seq.Interaction) int {
	k := 0
	for ; k < len(buf); k++ {
		it, ok := a.pick(t+k, view.N(), view.OwnerCount())
		if !ok {
			break
		}
		buf[k] = it
	}
	return k
}

// transferAtAlg transfers to the first endpoint exactly at time `at`.
type transferAtAlg struct{ at int }

func (transferAtAlg) Name() string          { return "transfer-at" }
func (transferAtAlg) Oblivious() bool       { return true }
func (transferAtAlg) Setup(*core.Env) error { return nil }
func (a transferAtAlg) Decide(_ *core.Env, _ seq.Interaction, t int) core.Decision {
	if t == a.at {
		return core.FirstReceives
	}
	return core.NoTransfer
}

// TestSimCoarseExhaustionAfterFinalTransfer pins the coarse loop's
// subtlest window in the sim scheduler: exhaustion declared by a short
// batch whose last interaction is the transfer that invalidates the
// claim — the scheduler must re-drain, like Engine.runCoarse does.
func TestSimCoarseExhaustionAfterFinalTransfer(t *testing.T) {
	for _, disable := range []bool{false, true} {
		rt, err := NewRuntime(Config{N: 8, MaxInteractions: 1 << 20, DisableBatch: disable})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run(transferAtAlg{at: 2}, stateBoundAdv{})
		rt.Close()
		if err != nil {
			t.Fatal(err)
		}
		if res.Interactions != 6 || res.Transmissions != 1 || res.Declined != 5 {
			t.Errorf("disable=%v: %+v", disable, res)
		}
	}
}

// TestSimSteadyStateZeroAllocs pins the Reset+Run recycling contract:
// once the runtime, its worker fleet and the adversary exist, repeated
// runs allocate nothing — the engine's own steady-state guarantee, now
// matched by the concurrent scheduler.
func TestSimSteadyStateZeroAllocs(t *testing.T) {
	const n = 32
	cfg := Config{N: n, MaxInteractions: 50 * n * n}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	gen, err := adversary.NewGenerated("uniform", n, seq.UniformGen(n, rng.New(7)))
	if err != nil {
		t.Fatal(err)
	}
	// Hoist the interface conversions: boxing an adversary or algorithm
	// value per run would itself allocate and mask what we measure.
	var adv core.Adversary = gen
	var alg core.Algorithm = algorithms.NewGathering()
	// Warm up: spawn workers, fault in lazily-built buffers.
	if _, err := rt.Run(alg, adv); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := rt.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(alg, adv); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Reset+Run allocates %v objects, want 0", allocs)
	}
}

// FuzzSimVsEngine fuzzes the engine/sim differential over seeds, sizes
// and provenance modes — the concurrent mirror of the engine's
// FuzzBatchedVsScalar.
func FuzzSimVsEngine(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(0))
	f.Add(uint64(2), uint8(3), uint8(1))
	f.Add(uint64(3), uint8(200), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, modeRaw uint8) {
		n := int(nRaw%120) + 2
		mode := core.ProvenanceMode(modeRaw % 3)
		cap := 400*n*n + 4000
		mkAdv := func() core.Adversary {
			a, err := adversary.NewGenerated("uniform", n, seq.UniformGen(n, rng.New(seed)))
			if err != nil {
				t.Fatal(err)
			}
			return a
		}
		eng, err := core.RunOnce(core.Config{
			N: n, MaxInteractions: cap, VerifyAggregate: true, Provenance: mode,
		}, algorithms.NewGathering(), mkAdv())
		if err != nil {
			t.Fatal(err)
		}
		rt, err := NewRuntime(Config{N: n, MaxInteractions: cap, Provenance: mode})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run(algorithms.NewGathering(), mkAdv())
		rt.Close()
		if err != nil {
			t.Fatal(err)
		}
		sameRes(t, fmt.Sprintf("seed=%d n=%d mode=%v", seed, n, mode), eng, res)
	})
}
