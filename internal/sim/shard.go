// Shard workers: the persistent goroutines that own partitions of node
// state and realise the node-local interaction protocol.
//
// A dispatch hands the workers a compact array of slots — one per
// interaction that can still matter — and a single atomic turn token
// serialises them: slot i's protocol only starts once slot i-1 has
// fully completed, which is exactly the model's "interactions are
// atomic and totally ordered". Within a slot the two involved shards
// run a three-state machine over the slot's fields: the shard owning
// the second endpoint publishes its control information (infoReady),
// the shard owning the first endpoint observes, decides, applies its
// side (outcomeReady), and the publishing shard applies the other side
// and passes the turn on. Each atomic store/load pair is a
// release/acquire edge, so everything a shard wrote during its section
// — node data, algorithm state, knowledge caches — is visible to the
// next section without locks; the race detector verifies this across
// the differential suite.
//
// Workers park on a buffered wake channel between dispatches and
// acknowledge completion on a shared done channel, so the scheduler and
// the fleet strictly alternate: shared state (the adversary, Env.State,
// knowledge bundles) is never accessed concurrently.
package sim

import (
	"math/bits"
	"runtime"
	"sync/atomic"

	"doda/internal/agg"
	"doda/internal/core"
	"doda/internal/seq"
)

// slot protocol states.
const (
	slotEmpty uint32 = iota
	slotInfoReady
	slotOutcomeReady
)

// slot carries one dispatched interaction through the shard protocol.
// Slots are reused across dispatches; the scheduler re-initialises the
// fields and state before each wake.
type slot struct {
	it             seq.Interaction
	t              int
	uShard, vShard int

	state atomic.Uint32

	// Published by the V shard at infoReady.
	vOwns bool
	vVal  agg.Value

	// Published by the U shard at outcomeReady; decision and bothOwned
	// are also what the scheduler integrates after the dispatch.
	decision  core.Decision
	bothOwned bool
	takeMine  bool
	gaveYours bool
	outVal    agg.Value
}

// worker is one shard's parking spot.
type worker struct {
	id   int
	wake chan int // number of slots in the dispatch
}

// ensureWorkers spawns the fleet if it is not already running. Workers
// are spawned lazily so a Runtime that is never Run owns no goroutines.
func (rt *Runtime) ensureWorkers() {
	if rt.started {
		return
	}
	rt.stopCh = make(chan struct{})
	if rt.done == nil || cap(rt.done) < rt.nShards {
		rt.done = make(chan struct{}, rt.nShards)
	}
	if len(rt.workers) != rt.nShards {
		rt.workers = make([]*worker, rt.nShards)
		for i := range rt.workers {
			rt.workers[i] = &worker{id: i, wake: make(chan int, 1)}
		}
	}
	stop := rt.stopCh
	for _, w := range rt.workers {
		rt.wg.Add(1)
		go rt.runWorker(w, stop)
	}
	rt.started = true
}

// dispatch hands nSlots prepared slots to the involved shards and waits
// for all of them to finish their walk. involved is a shard bitmask.
func (rt *Runtime) dispatch(nSlots int, involved uint64) {
	rt.turn.Store(0)
	nInv := bits.OnesCount64(involved)
	for s := 0; involved != 0; s++ {
		if involved&(1<<uint(s)) != 0 {
			involved &^= 1 << uint(s)
			rt.workers[s].wake <- nSlots
		}
	}
	for i := 0; i < nInv; i++ {
		<-rt.done
	}
}

// runWorker is the worker goroutine body.
func (rt *Runtime) runWorker(w *worker, stop <-chan struct{}) {
	defer rt.wg.Done()
	for {
		select {
		case <-stop:
			return
		case nSlots := <-w.wake:
			rt.runShard(w.id, nSlots)
			rt.done <- struct{}{}
		}
	}
}

// runShard walks the dispatched slots in order and plays this shard's
// part in each: leader (owns the first endpoint), follower (owns the
// second), both (same-shard interaction), or none (skip).
func (rt *Runtime) runShard(me, nSlots int) {
	for idx := 0; idx < nSlots; idx++ {
		sl := &rt.slots[idx]
		lead := sl.uShard == me
		follow := sl.vShard == me
		switch {
		case lead && follow:
			rt.awaitTurn(int32(idx))
			rt.playLocal(sl)
			rt.turn.Store(int32(idx) + 1)
		case follow:
			rt.awaitTurn(int32(idx))
			v := sl.it.V
			sl.vOwns = rt.owns[v]
			sl.vVal = rt.data[v]
			sl.state.Store(slotInfoReady)
			rt.awaitState(sl, slotOutcomeReady)
			switch {
			case sl.takeMine:
				// The leader transmitted its datum to us; the in-place
				// merge mirrors the engine's receiver-side merge, and an
				// overlap error leaves our value unchanged (refuse
				// rather than corrupt), matching the engine's behaviour
				// on the same fault.
				_ = agg.MergeInto(rt.cfg.Agg, &rt.data[v], sl.outVal)
			case sl.gaveYours:
				rt.data[v] = agg.Value{}
				rt.owns[v] = false
			}
			rt.turn.Store(int32(idx) + 1)
		case lead:
			rt.awaitState(sl, slotInfoReady)
			rt.playLead(sl)
			sl.state.Store(slotOutcomeReady)
		}
	}
}

// playLead runs the first endpoint's side of a cross-shard slot:
// observe, decide, apply. The follower's control info is already in the
// slot; its datum moves by value through the slot in either direction.
func (rt *Runtime) playLead(sl *slot) {
	u := sl.it.U
	if rt.obsAll {
		rt.observer.Observe(rt.env, sl.it, sl.t)
	}
	if rt.owns[u] && sl.vOwns {
		sl.bothOwned = true
		d := rt.alg.Decide(rt.env, sl.it, sl.t)
		sl.decision = d
		switch d {
		case core.FirstReceives: // we receive the follower's datum
			// In-place union into our own provenance set; the follower
			// retires its datum on gaveYours and is blocked on the
			// outcome until we finish, so nothing else can read the set
			// being folded in.
			if err := agg.MergeInto(rt.cfg.Agg, &rt.data[u], sl.vVal); err == nil {
				sl.gaveYours = true
			} else {
				sl.decision = core.NoTransfer // refuse instead of corrupting
			}
		case core.SecondReceives: // we transmit to the follower
			sl.takeMine = true
			sl.outVal = rt.data[u]
			rt.data[u] = agg.Value{}
			rt.owns[u] = false
		}
	}
}

// playLocal plays a slot whose endpoints both live on this shard, with
// the same decision and fault semantics as the cross-shard split.
func (rt *Runtime) playLocal(sl *slot) {
	u, v := sl.it.U, sl.it.V
	if rt.obsAll {
		rt.observer.Observe(rt.env, sl.it, sl.t)
	}
	if rt.owns[u] && rt.owns[v] {
		sl.bothOwned = true
		d := rt.alg.Decide(rt.env, sl.it, sl.t)
		sl.decision = d
		switch d {
		case core.FirstReceives:
			if err := agg.MergeInto(rt.cfg.Agg, &rt.data[u], rt.data[v]); err == nil {
				rt.data[v] = agg.Value{}
				rt.owns[v] = false
			} else {
				sl.decision = core.NoTransfer // refuse instead of corrupting
			}
		case core.SecondReceives:
			out := rt.data[u]
			rt.data[u] = agg.Value{}
			rt.owns[u] = false
			_ = agg.MergeInto(rt.cfg.Agg, &rt.data[v], out)
		}
	}
}

// awaitTurn spins until the turn token reaches idx. On a single-P
// schedule the waited-for goroutine cannot progress while we spin, so
// rt.spin is zero there and the wait yields immediately; on multi-P
// schedules a short spin usually wins the race without a reschedule.
func (rt *Runtime) awaitTurn(idx int32) {
	for i := 0; rt.turn.Load() != idx; i++ {
		if i >= rt.spin {
			runtime.Gosched()
		}
	}
}

// awaitState spins until the slot's protocol state reaches want.
func (rt *Runtime) awaitState(sl *slot, want uint32) {
	for i := 0; sl.state.Load() != want; i++ {
		if i >= rt.spin {
			runtime.Gosched()
		}
	}
}
