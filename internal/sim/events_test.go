package sim

import (
	"testing"

	"doda/internal/adversary"
	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/knowledge"
	"doda/internal/seq"
	"doda/internal/trace"
)

func TestRuntimeEventsMatchEngine(t *testing.T) {
	// Tracing the concurrent runtime must produce the exact same event
	// stream as tracing the sequential engine on the same workload.
	const n = 10
	const seed = 99

	engRec := trace.NewRecorder()
	advA, _, err := adversary.Randomized(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	engRes, err := core.RunOnce(core.Config{
		N: n, MaxInteractions: 100000, Events: engRec,
	}, algorithms.NewGathering(), advA)
	if err != nil {
		t.Fatal(err)
	}

	simRec := trace.NewRecorder()
	advB, _, err := adversary.Randomized(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(Config{N: n, MaxInteractions: 100000, Events: simRec})
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := rt.Run(algorithms.NewGathering(), advB)
	if err != nil {
		t.Fatal(err)
	}

	if engRes.Duration != simRes.Duration {
		t.Fatalf("durations differ: %d vs %d", engRes.Duration, simRes.Duration)
	}
	if len(engRec.Records) != len(simRec.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(engRec.Records), len(simRec.Records))
	}
	for i := range engRec.Records {
		if engRec.Records[i] != simRec.Records[i] {
			t.Fatalf("record %d differs:\nengine %+v\nsim    %+v",
				i, engRec.Records[i], simRec.Records[i])
		}
	}
	if simRec.Result == nil || simRec.Result.Terminated != simRes.Terminated {
		t.Error("sim summary missing or inconsistent")
	}
	if err := simRec.Verify(n, 0); err != nil {
		t.Errorf("sim trace verification: %v", err)
	}
}

func TestRuntimeEventsWithWaitingGreedy(t *testing.T) {
	const n = 12
	rec := trace.NewRecorder()
	adv, stream, err := adversary.Randomized(n, 5)
	if err != nil {
		t.Fatal(err)
	}
	cap := 50 * n * n
	know, err := knowledge.NewBundle(knowledge.WithMeetTime(stream, 0, cap))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(Config{N: n, MaxInteractions: cap, Know: know, Events: rec})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run(algorithms.WaitingGreedy{Tau: algorithms.TauStar(n)}, adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("res = %+v", res)
	}
	declined := 0
	for _, r := range rec.Records {
		if r.BothOwned && r.Sender < 0 {
			declined++
		}
	}
	if declined != res.Declined {
		t.Errorf("trace says %d declined, result says %d", declined, res.Declined)
	}
}

func TestRuntimeEventsSequenceReconstruction(t *testing.T) {
	rec := trace.NewRecorder()
	s, err := seq.NewSequence(3, []seq.Interaction{{U: 1, V: 2}, {U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	adv, err := adversary.NewOblivious("seq", s)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(Config{N: 3, MaxInteractions: 10, Events: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(algorithms.NewGathering(), adv); err != nil {
		t.Fatal(err)
	}
	back, err := rec.Sequence(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < back.Len(); i++ {
		if back.At(i) != s.At(i) {
			t.Fatalf("reconstructed sequence differs at %d", i)
		}
	}
}
