// Package sim is the concurrent, message-passing realisation of the DODA
// model: every node runs as its own goroutine with a mailbox, and a
// scheduler goroutine plays the adversary. When two nodes interact, the
// scheduler notifies both; they rendezvous directly with each other,
// exchange control information (the paper's "nodes can exchange control
// information before deciding whether they transmit"), agree on the
// transfer decision, move the datum in a message, and acknowledge the
// scheduler.
//
// Interactions are atomic and totally ordered in the model (a sequence of
// single-edge graphs), so the scheduler waits for each interaction's
// acknowledgement before emitting the next one; the node-local protocol
// within an interaction, however, is genuinely concurrent message
// passing. The runtime produces results identical to core.Engine — the
// equivalence is tested — which justifies using the fast sequential
// engine as the measurement instrument in benchmarks.
//
// Every goroutine has a managed lifetime: Run tears the whole system down
// (stop channel + WaitGroup) before returning, on every path.
package sim

import (
	"fmt"
	"sync"

	"doda/internal/agg"
	"doda/internal/core"
	"doda/internal/graph"
	"doda/internal/knowledge"
	"doda/internal/seq"
)

// meetMsg tells a node it is interacting at time t. The three rendezvous
// channels are allocated once per run and reused for every interaction:
// the ack discipline below guarantees each is drained before the
// scheduler emits the next interaction, so reuse cannot cross-talk.
type meetMsg struct {
	t  int
	it seq.Interaction
	// lead is true for the node that runs the decision (the canonical
	// first endpoint). The follower sends its control info to the leader
	// over info and receives the outcome over outcome.
	lead    bool
	info    chan controlInfo
	outcome chan outcomeMsg
	// ack returns both endpoints' post-interaction ownership to the
	// scheduler. The FOLLOWER sends it, after applying the outcome —
	// which proves the outcome channel is drained and makes channel
	// reuse race-free.
	ack chan ackMsg
}

// controlInfo is what the follower reveals to the leader at the start of
// an interaction.
type controlInfo struct {
	owns  bool
	value agg.Value
}

// outcomeMsg closes the rendezvous: whether the follower's datum moved to
// the leader, or the leader's datum is attached for the follower to
// merge. It also carries everything the follower needs to acknowledge the
// interaction on behalf of both endpoints.
type outcomeMsg struct {
	// takeMine: the follower must aggregate value (the leader
	// transmitted).
	takeMine bool
	// gaveYours: the leader consumed the follower's datum (the follower
	// transmitted and no longer owns data).
	gaveYours bool
	value     agg.Value
	// leaderOwns is the leader's ownership after applying its side.
	leaderOwns bool
	decision   core.Decision
	bothOwned  bool
}

// ackMsg reports both endpoints' ownership after the interaction, plus
// what happened, so the scheduler can maintain the adversary's view.
type ackMsg struct {
	u, v         graph.NodeID
	uOwns, vOwns bool
	decision     core.Decision
	bothOwned    bool
}

// node is one node goroutine's state.
type node struct {
	id    graph.NodeID
	owns  bool
	value agg.Value
	inbox chan meetMsg
}

// Config parameterises a concurrent run. Fields mirror core.Config.
type Config struct {
	N               int
	Sink            graph.NodeID
	Agg             agg.Func
	Payloads        []float64
	MaxInteractions int
	Know            *knowledge.Bundle
	// Events receives trace events from the scheduler (nil = no
	// tracing). Delivery order matches interaction order.
	Events core.EventSink
	// Provenance mirrors core.Config.Provenance: non-full modes skip
	// the per-node origin bitsets and their per-transfer unions.
	Provenance core.ProvenanceMode
	// DisableBatch mirrors core.Config.DisableBatch: force one
	// Adversary.Next call per interaction even for batchable sources.
	DisableBatch bool
}

// schedulerBatch is the scheduler's BatchAdversary drain-buffer length.
// Deliberately smaller than the engine's batch size: each interaction
// here still costs a goroutine rendezvous (~µs), so the buffer only
// needs to amortise the adversary dispatch, not dominate cache budgets.
const schedulerBatch = 256

// Runtime executes one algorithm against one adversary with one goroutine
// per node. Single-use, like core.Engine.
type Runtime struct {
	cfg   Config
	env   *core.Env
	nodes []*node
	owns  []bool // scheduler's view, updated from acks
	nOwn  int
	used  bool
}

var _ core.ExecView = (*Runtime)(nil)

// NewRuntime validates cfg and prepares a run.
func NewRuntime(cfg Config) (*Runtime, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("sim: need at least 2 nodes, got %d", cfg.N)
	}
	if cfg.Sink < 0 || int(cfg.Sink) >= cfg.N {
		return nil, fmt.Errorf("sim: sink %d out of range [0,%d)", cfg.Sink, cfg.N)
	}
	if cfg.MaxInteractions <= 0 {
		return nil, fmt.Errorf("sim: MaxInteractions must be positive, got %d", cfg.MaxInteractions)
	}
	switch cfg.Provenance {
	case core.ProvenanceFull, core.ProvenanceCount, core.ProvenanceOff:
	default:
		return nil, fmt.Errorf("sim: invalid provenance mode %v", cfg.Provenance)
	}
	if cfg.Agg == nil {
		cfg.Agg = agg.Min
	}
	if cfg.Payloads == nil {
		cfg.Payloads = make([]float64, cfg.N)
		for i := range cfg.Payloads {
			cfg.Payloads[i] = float64(i)
		}
	}
	if len(cfg.Payloads) != cfg.N {
		return nil, fmt.Errorf("sim: %d payloads for %d nodes", len(cfg.Payloads), cfg.N)
	}
	know := cfg.Know
	if know == nil {
		var err error
		know, err = knowledge.NewBundle()
		if err != nil {
			return nil, err
		}
	}
	rt := &Runtime{
		cfg: cfg,
		env: &core.Env{
			N:     cfg.N,
			Sink:  cfg.Sink,
			Know:  know,
			State: make([]any, cfg.N),
		},
		nodes: make([]*node, cfg.N),
		owns:  make([]bool, cfg.N),
		nOwn:  cfg.N,
	}
	for u := 0; u < cfg.N; u++ {
		val := agg.Value{Num: cfg.Payloads[u], Count: 1}
		if cfg.Provenance == core.ProvenanceFull {
			val = agg.Initial(graph.NodeID(u), cfg.Payloads[u], cfg.N)
		}
		rt.nodes[u] = &node{
			id:    graph.NodeID(u),
			owns:  true,
			value: val,
			inbox: make(chan meetMsg),
		}
		rt.owns[u] = true
	}
	return rt, nil
}

// N implements core.ExecView.
func (rt *Runtime) N() int { return rt.cfg.N }

// Sink implements core.ExecView.
func (rt *Runtime) Sink() graph.NodeID { return rt.cfg.Sink }

// Owns implements core.ExecView from the scheduler's acknowledged state.
func (rt *Runtime) Owns(u graph.NodeID) bool {
	if u < 0 || int(u) >= rt.cfg.N {
		return false
	}
	return rt.owns[u]
}

// OwnerCount implements core.ExecView.
func (rt *Runtime) OwnerCount() int { return rt.nOwn }

// Run plays alg against adv. It spawns one goroutine per node, drives the
// interaction sequence, and always shuts every goroutine down before
// returning.
func (rt *Runtime) Run(alg core.Algorithm, adv core.Adversary) (core.Result, error) {
	if alg == nil || adv == nil {
		return core.Result{}, fmt.Errorf("sim: nil algorithm or adversary")
	}
	if rt.used {
		return core.Result{}, fmt.Errorf("sim: runtime is single-use; create a new one")
	}
	rt.used = true

	// Mirror the engine: D∅ODA algorithms get no node memory.
	if alg.Oblivious() {
		rt.env.State = nil
	}

	if err := alg.Setup(rt.env); err != nil {
		return core.Result{}, fmt.Errorf("sim: setup of %s: %w", alg.Name(), err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, nd := range rt.nodes {
		wg.Add(1)
		go func(nd *node) {
			defer wg.Done()
			nd.loop(rt, alg, stop)
		}(nd)
	}
	// shutdown is idempotent and must complete before reading any node's
	// state from this goroutine: a follower may still be applying a
	// merge when the scheduler observes termination.
	var stopOnce sync.Once
	shutdown := func() {
		stopOnce.Do(func() {
			close(stop)
			wg.Wait()
		})
	}
	defer shutdown()

	res := core.Result{
		Algorithm: alg.Name(),
		Adversary: adv.Name(),
		Duration:  -1,
	}
	// One set of rendezvous channels for the whole run: the follower's
	// ack proves info and outcome are drained before the next
	// interaction reuses them, so the per-interaction channel pair the
	// runtime used to allocate is unnecessary.
	ack := make(chan ackMsg)
	info := make(chan controlInfo, 1)
	outcome := make(chan outcomeMsg, 1)

	// Batchable adversaries are drained through a buffer, mirroring the
	// engine: the node-local rendezvous protocol below is untouched, only
	// the scheduler's per-interaction adversary dispatch is amortised.
	ba, batched := adv.(core.BatchAdversary)
	batched = batched && !rt.cfg.DisableBatch
	var batch []seq.Interaction
	if batched {
		batch = make([]seq.Interaction, schedulerBatch)
	}
	bpos, blen := 0, 0
	exhausted := false

	for t := 0; t < rt.cfg.MaxInteractions; t++ {
		var it seq.Interaction
		if batched {
			if bpos == blen {
				if exhausted {
					break
				}
				want := len(batch)
				if rem := rt.cfg.MaxInteractions - t; rem < want {
					want = rem
				}
				blen = ba.NextBatch(t, rt, batch[:want])
				if blen < 0 || blen > want {
					return res, fmt.Errorf("sim: adversary %s returned %d interactions for a %d-slot batch", adv.Name(), blen, want)
				}
				exhausted = blen < want
				bpos = 0
				if blen == 0 {
					break
				}
			}
			it = batch[bpos]
			bpos++
		} else {
			next, ok := adv.Next(t, rt)
			if !ok {
				break
			}
			it = next
		}
		canon, err := seq.NewInteraction(it.U, it.V)
		if err != nil {
			return res, fmt.Errorf("sim: adversary %s at t=%d: %w", adv.Name(), t, err)
		}
		if int(canon.V) >= rt.cfg.N {
			return res, fmt.Errorf("sim: adversary %s at t=%d: interaction %v out of range", adv.Name(), t, canon)
		}
		res.Interactions++

		lead := meetMsg{t: t, it: canon, lead: true, info: info, outcome: outcome, ack: ack}
		follow := meetMsg{t: t, it: canon, lead: false, info: info, outcome: outcome, ack: ack}
		rt.nodes[canon.U].inbox <- lead
		rt.nodes[canon.V].inbox <- follow

		// The follower acknowledges for both endpoints; ownership flags
		// maintain the owner count incrementally (a transfer clears at
		// most one flag, so the old O(n) rescan was pure overhead).
		a := <-ack
		if rt.owns[a.u] != a.uOwns {
			rt.owns[a.u] = a.uOwns
			rt.nOwn--
		}
		if rt.owns[a.v] != a.vOwns {
			rt.owns[a.v] = a.vOwns
			rt.nOwn--
		}
		ev := core.Event{T: t, It: canon, BothOwned: a.bothOwned, Decision: a.decision}
		if a.bothOwned {
			if receiver, transferred := a.decision.Receiver(canon); transferred {
				res.Transmissions++
				res.LastGap = t - res.Duration - 1
				res.Duration = t
				sender, _ := a.decision.Sender(canon)
				ev.Sender, ev.Receiver = sender, receiver
			} else {
				res.Declined++
			}
		}
		if rt.cfg.Events != nil {
			rt.cfg.Events.OnEvent(ev)
		}

		if !rt.owns[rt.cfg.Sink] {
			res.Failed = true
			res.FailReason = fmt.Sprintf("sink %d transmitted its data at t=%d and can never terminate", rt.cfg.Sink, t)
			break
		}
		if rt.nOwn == 1 {
			res.Terminated = true
			break
		}
	}

	shutdown()
	if res.Terminated {
		res.SinkValue = rt.nodes[rt.cfg.Sink].value
		if rt.cfg.Provenance != core.ProvenanceOff && res.SinkValue.Count != rt.cfg.N {
			return res, fmt.Errorf("sim: sink aggregated %d data, want %d", res.SinkValue.Count, rt.cfg.N)
		}
	}
	if rt.cfg.Events != nil {
		rt.cfg.Events.OnDone(res)
	}
	return res, nil
}

// loop is the node goroutine body: wait for meet messages, run the
// pairwise interaction protocol, exit on stop.
func (nd *node) loop(rt *Runtime, alg core.Algorithm, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case m := <-nd.inbox:
			if m.lead {
				nd.leadInteraction(rt, alg, m)
			} else {
				nd.followInteraction(rt, m)
			}
		}
	}
}

// leadInteraction runs on the canonical first endpoint: collect the
// peer's control info, run Observe/Decide exactly once, apply the
// transfer, and inform the peer — which acknowledges the scheduler once
// it has applied the outcome.
func (nd *node) leadInteraction(rt *Runtime, alg core.Algorithm, m meetMsg) {
	peer := <-m.info // follower's control information

	if obs, ok := alg.(core.Observer); ok {
		obs.Observe(rt.env, m.it, m.t)
	}

	var out outcomeMsg
	if nd.owns && peer.owns {
		out.bothOwned = true
		d := alg.Decide(rt.env, m.it, m.t)
		out.decision = d
		switch d {
		case core.FirstReceives: // leader receives the follower's datum
			// In-place union into the leader's own provenance set; the
			// follower retires its datum on gaveYours, and it is blocked
			// on the outcome until we finish, so nothing else can read
			// the set being folded in.
			if err := agg.MergeInto(rt.cfg.Agg, &nd.value, peer.value); err == nil {
				out.gaveYours = true
			} else {
				out.decision = core.NoTransfer // refuse instead of corrupting
			}
		case core.SecondReceives: // leader transmits to the follower
			out.takeMine = true
			out.value = nd.value
			nd.value = agg.Value{}
			nd.owns = false
		}
	}
	out.leaderOwns = nd.owns
	m.outcome <- out
}

// followInteraction runs on the second endpoint: reveal control info,
// apply the leader's outcome, then acknowledge the scheduler for both
// endpoints (the ack doubles as the proof that every rendezvous channel
// is drained, which is what lets the scheduler reuse them).
func (nd *node) followInteraction(rt *Runtime, m meetMsg) {
	m.info <- controlInfo{owns: nd.owns, value: nd.value}
	out := <-m.outcome
	switch {
	case out.takeMine:
		// The leader transmitted its datum to us; the in-place merge
		// mirrors the engine's receiver-side merge (aggregation
		// functions are commutative, provenance is a union, so order is
		// irrelevant). The leader already dropped its reference to the
		// attached value's provenance set.
		// An overlap error leaves nd.value unchanged (refuse rather than
		// corrupt), matching the engine's behaviour on the same fault.
		_ = agg.MergeInto(rt.cfg.Agg, &nd.value, out.value)
	case out.gaveYours:
		nd.value = agg.Value{}
		nd.owns = false
	}
	m.ack <- ackMsg{
		u: m.it.U, v: m.it.V,
		uOwns: out.leaderOwns, vOwns: nd.owns,
		decision:  out.decision,
		bothOwned: out.bothOwned,
	}
}
