// Package sim is the concurrent, sharded realisation of the DODA model.
// Node state is partitioned over a small fleet of persistent shard
// workers; a scheduler goroutine plays the adversary, prescreens each
// drained batch of interactions word-parallel against the ownership
// bitset, and dispatches only the interactions that can still matter —
// the ones where both endpoints own data (every interaction, for
// observer algorithms). Within a dispatched batch the workers realise
// the paper's node-local protocol: for each interaction the shard
// owning the second endpoint reveals its control information ("nodes
// can exchange control information before deciding whether they
// transmit"), the shard owning the first endpoint decides and applies
// its side of the transfer, and the revealing shard applies the other
// side and passes the turn token on.
//
// Interactions are atomic and totally ordered in the model (a sequence
// of single-edge graphs), so an atomic turn token serialises the
// dispatched interactions; the protocol within an interaction, however,
// is genuine cross-goroutine message passing through the slot's state
// machine. The runtime produces results identical to core.Engine — the
// equivalence is tested across the scenario registry, under the race
// detector — which justifies using the fast sequential engine as the
// measurement instrument in benchmarks.
//
// Unlike its channel-rendezvous predecessor (one goroutine per node,
// one rendezvous per interaction), the worker fleet persists across
// runs: Reset re-arms the runtime the way core.Engine.Reset does,
// reusing every slice and provenance bitset, so steady-state bench
// loops allocate nothing and pay no goroutine churn. Close tears the
// fleet down; Run itself never leaks goroutines because the workers
// always park back on their wake channels before Run returns.
package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"doda/internal/agg"
	"doda/internal/bitset"
	"doda/internal/core"
	"doda/internal/graph"
	"doda/internal/knowledge"
	"doda/internal/seq"
)

// Config parameterises a concurrent run. Fields mirror core.Config.
type Config struct {
	N               int
	Sink            graph.NodeID
	Agg             agg.Func
	Payloads        []float64
	MaxInteractions int
	Know            *knowledge.Bundle
	// Events receives trace events from the scheduler (nil = no
	// tracing). Delivery order matches interaction order.
	Events core.EventSink
	// Provenance mirrors core.Config.Provenance: non-full modes skip
	// the per-node origin bitsets and their per-transfer unions.
	Provenance core.ProvenanceMode
	// DisableBatch mirrors core.Config.DisableBatch: force one
	// Adversary.Next call per interaction even for batchable sources.
	DisableBatch bool
	// Shards is the number of persistent shard workers node state is
	// partitioned over (0 = auto: GOMAXPROCS clamped to [2,4], never
	// more than N). Differential tests sweep it to prove the result is
	// shard-count invariant.
	Shards int
}

// Batch sizing for the scheduler's drain buffer. The buffer starts
// small — early in a run almost every interaction is between two owners
// and a prescreen against stale ownership admits them all — and grows
// quadratically in n/owners as data concentrates, because the active
// fraction of a uniform batch shrinks like (owners/n)². The cap keeps
// the slot array and prescreen mask a fixed, reusable size.
const (
	simMinBatch = 32
	simMaxBatch = 1024
)

// Runtime executes algorithms against adversaries on a persistent shard
// fleet. Like core.Engine it is single-use between Resets; unlike the
// engine it owns goroutines, so callers that are done with it should
// Close it (a GC'd un-Closed runtime leaks its workers).
type Runtime struct {
	cfg Config
	env *core.Env

	// Node state, indexed by node id. While a dispatch is in flight it
	// is owned by the shard workers (worker shardOf(u) owns entry u);
	// between dispatches ownership reverts to the scheduler. The two
	// phases are separated by the wake/done channel pair, so there is
	// never concurrent access.
	owns []bool
	data []agg.Value

	// Scheduler-side integrated view: ownWords mirrors owns as a packed
	// bitset and nOwn counts owners, both updated as dispatched slots
	// are integrated in interaction order. They back the adversary's
	// ExecView/WordView and the batch prescreen.
	ownWords []uint64
	nOwn     int
	used     bool

	// Recycled storage, engine-style: sized for the largest N seen.
	origins     []*bitset.Set
	stateBuf    []any
	defPayloads []float64
	emptyKnow   *knowledge.Bundle
	batch       []seq.Interaction
	mask        []uint64
	slots       []slot

	// Per-run bindings the workers read (published before each wake).
	alg      core.Algorithm
	observer core.Observer
	obsAll   bool
	advName  string

	// Worker fleet.
	nShards int
	spin    int
	workers []*worker
	started bool
	stopCh  chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup

	// turn is the batch-local serialisation token: slot i's protocol
	// may only run while turn == i.
	turn atomic.Int32
}

var (
	_ core.ExecView = (*Runtime)(nil)
	_ core.WordView = (*Runtime)(nil)
)

// NewRuntime validates cfg and prepares a run. Workers are spawned
// lazily on the first Run.
func NewRuntime(cfg Config) (*Runtime, error) {
	rt := &Runtime{}
	if err := rt.Reset(cfg); err != nil {
		return nil, err
	}
	return rt, nil
}

// Reset re-arms the runtime for a new run under cfg, reusing slices,
// provenance bitsets and — when the shard count is unchanged — the
// running worker fleet, so steady-state Reset+Run loops allocate
// nothing. Like core.Engine.Reset, it recycles the provenance sets a
// previous run handed out through Result.SinkValue.
func (rt *Runtime) Reset(cfg Config) error {
	if cfg.N < 2 {
		return fmt.Errorf("sim: need at least 2 nodes, got %d", cfg.N)
	}
	if cfg.Sink < 0 || int(cfg.Sink) >= cfg.N {
		return fmt.Errorf("sim: sink %d out of range [0,%d)", cfg.Sink, cfg.N)
	}
	if cfg.MaxInteractions <= 0 {
		return fmt.Errorf("sim: MaxInteractions must be positive, got %d", cfg.MaxInteractions)
	}
	switch cfg.Provenance {
	case core.ProvenanceFull, core.ProvenanceCount, core.ProvenanceOff:
	default:
		return fmt.Errorf("sim: invalid provenance mode %v", cfg.Provenance)
	}
	if cfg.Shards < 0 {
		return fmt.Errorf("sim: Shards must be non-negative, got %d", cfg.Shards)
	}
	if cfg.Agg == nil {
		cfg.Agg = agg.Min
	}
	if cfg.Payloads == nil {
		if len(rt.defPayloads) != cfg.N {
			rt.defPayloads = make([]float64, cfg.N)
			for i := range rt.defPayloads {
				rt.defPayloads[i] = float64(i)
			}
		}
		cfg.Payloads = rt.defPayloads
	}
	if len(cfg.Payloads) != cfg.N {
		return fmt.Errorf("sim: %d payloads for %d nodes", len(cfg.Payloads), cfg.N)
	}
	know := cfg.Know
	if know == nil {
		if rt.emptyKnow == nil {
			var err error
			rt.emptyKnow, err = knowledge.NewBundle()
			if err != nil {
				return err
			}
		}
		know = rt.emptyKnow
	}

	shards := cfg.Shards
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
		if shards < 2 {
			shards = 2
		}
		if shards > 4 {
			shards = 4
		}
	}
	// The involved-shard bitmask is one word; N bounds useful shards.
	if shards > 64 {
		shards = 64
	}
	if shards > cfg.N {
		shards = cfg.N
	}
	if rt.started && shards != rt.nShards {
		rt.Close()
	}
	rt.nShards = shards
	rt.spin = 0
	if runtime.GOMAXPROCS(0) > 1 {
		rt.spin = 64
	}

	if cap(rt.owns) < cfg.N {
		rt.owns = make([]bool, cfg.N)
		rt.data = make([]agg.Value, cfg.N)
		rt.origins = make([]*bitset.Set, cfg.N)
		rt.stateBuf = make([]any, cfg.N)
	}
	rt.owns = rt.owns[:cfg.N]
	rt.data = rt.data[:cfg.N]
	rt.origins = rt.origins[:cfg.N]
	rt.stateBuf = rt.stateBuf[:cfg.N]
	nw := bitset.WordsFor(cfg.N)
	if cap(rt.ownWords) < nw {
		rt.ownWords = make([]uint64, nw)
	}
	rt.ownWords = rt.ownWords[:nw]
	for i := range rt.ownWords {
		rt.ownWords[i] = ^uint64(0)
	}
	if tail := uint(cfg.N % 64); tail != 0 {
		rt.ownWords[nw-1] = (1 << tail) - 1
	}
	if len(rt.batch) == 0 {
		rt.batch = make([]seq.Interaction, simMaxBatch)
		rt.mask = make([]uint64, bitset.WordsFor(simMaxBatch))
		rt.slots = make([]slot, simMaxBatch)
	}
	if rt.env == nil {
		rt.env = &core.Env{}
	}
	rt.env.N = cfg.N
	rt.env.Sink = cfg.Sink
	rt.env.Know = know
	rt.env.State = rt.stateBuf

	full := cfg.Provenance == core.ProvenanceFull
	for u := 0; u < cfg.N; u++ {
		var set *bitset.Set
		if full {
			set = rt.origins[u]
			if set == nil || set.Cap() != cfg.N {
				set = bitset.New(cfg.N)
				rt.origins[u] = set
			} else {
				set.Clear()
			}
			set.Add(u)
		}
		rt.owns[u] = true
		rt.data[u] = agg.Value{Num: cfg.Payloads[u], Count: 1, Origins: set}
		rt.stateBuf[u] = nil
	}
	rt.cfg = cfg
	rt.nOwn = cfg.N
	rt.used = false
	return nil
}

// Close stops the worker fleet and waits for it to exit. Idempotent; a
// Closed runtime can be Reset and Run again (workers respawn lazily).
func (rt *Runtime) Close() {
	if !rt.started {
		return
	}
	close(rt.stopCh)
	rt.wg.Wait()
	rt.started = false
}

// N implements core.ExecView.
func (rt *Runtime) N() int { return rt.cfg.N }

// Sink implements core.ExecView.
func (rt *Runtime) Sink() graph.NodeID { return rt.cfg.Sink }

// Owns implements core.ExecView from the scheduler's integrated state.
func (rt *Runtime) Owns(u graph.NodeID) bool {
	if u < 0 || int(u) >= rt.cfg.N {
		return false
	}
	return bitset.TestWord(rt.ownWords, int(u))
}

// OwnerCount implements core.ExecView.
func (rt *Runtime) OwnerCount() int { return rt.nOwn }

// OwnerWords implements core.WordView. The slice aliases live scheduler
// state: valid until the next integrated transfer, and read-only.
func (rt *Runtime) OwnerWords() []uint64 { return rt.ownWords }

// shardOf maps a node id to the worker owning its state.
func (rt *Runtime) shardOf(u graph.NodeID) int {
	return int(u) * rt.nShards / rt.cfg.N
}

// Run plays alg against adv on the shard fleet. The dispatch mirrors
// core.Engine.Run: batchable (oblivious) adversaries are drained
// through the prescreened batch path, coarse-state adaptive adversaries
// through a drain-replay loop, everything else one Next at a time.
func (rt *Runtime) Run(alg core.Algorithm, adv core.Adversary) (core.Result, error) {
	if alg == nil || adv == nil {
		return core.Result{}, fmt.Errorf("sim: nil algorithm or adversary")
	}
	if rt.used {
		return core.Result{}, fmt.Errorf("sim: runtime already ran; Reset it (or create a new one) first")
	}
	rt.used = true

	// Mirror the engine: D∅ODA algorithms get no node memory.
	if alg.Oblivious() {
		rt.env.State = nil
	}
	if err := alg.Setup(rt.env); err != nil {
		return core.Result{}, fmt.Errorf("sim: setup of %s: %w", alg.Name(), err)
	}

	rt.alg = alg
	rt.observer, rt.obsAll = alg.(core.Observer)
	rt.advName = adv.Name()
	rt.ensureWorkers()

	res := core.Result{
		Algorithm: alg.Name(),
		Adversary: adv.Name(),
		Duration:  -1,
	}
	var err error
	if ba, ok := adv.(core.BatchAdversary); ok && !rt.cfg.DisableBatch {
		err = rt.runBatchedSim(ba, &res)
	} else if ca, ok := adv.(core.CoarseBatchAdversary); ok && !rt.cfg.DisableBatch {
		err = rt.runCoarseSim(ca, &res)
	} else {
		err = rt.runScalarSim(adv, &res)
	}
	if err != nil {
		return res, err
	}
	if res.Terminated {
		res.SinkValue = rt.data[rt.cfg.Sink]
		if rt.cfg.Provenance != core.ProvenanceOff && res.SinkValue.Count != rt.cfg.N {
			return res, fmt.Errorf("sim: sink aggregated %d data, want %d", res.SinkValue.Count, rt.cfg.N)
		}
	}
	if rt.cfg.Events != nil {
		rt.cfg.Events.OnDone(res)
	}
	return res, nil
}

// adaptiveBatchLen sizes the next drain so that, against a uniform
// adversary, each batch carries roughly simMinBatch dispatchable
// interactions regardless of how concentrated ownership has become.
func (rt *Runtime) adaptiveBatchLen(remaining int) int {
	w := simMinBatch
	if rt.nOwn > 0 {
		r := rt.cfg.N / rt.nOwn
		w = simMinBatch * r * r
	}
	if w > simMaxBatch || w < 0 {
		w = simMaxBatch
	}
	if w > remaining {
		w = remaining
	}
	return w
}

// runScalarSim is the one-Next-per-interaction loop for fully adaptive
// adversaries.
func (rt *Runtime) runScalarSim(adv core.Adversary, res *core.Result) error {
	for t := 0; t < rt.cfg.MaxInteractions; t++ {
		it, ok := adv.Next(t, rt)
		if !ok {
			return nil // adversary exhausted its (finite) sequence
		}
		stop, err := rt.playOne(t, it, res)
		if err != nil || stop {
			return err
		}
	}
	return nil
}

// runBatchedSim drains an oblivious adversary through rt.batch and
// plays each drain as one prescreened dispatch.
func (rt *Runtime) runBatchedSim(ba core.BatchAdversary, res *core.Result) error {
	for t := 0; t < rt.cfg.MaxInteractions; {
		want := rt.adaptiveBatchLen(rt.cfg.MaxInteractions - t)
		got := ba.NextBatch(t, rt, rt.batch[:want])
		if got < 0 || got > want {
			return fmt.Errorf("sim: adversary %s returned %d interactions for a %d-slot batch", rt.advName, got, want)
		}
		if got == 0 {
			return nil
		}
		stop, err := rt.playBatch(t, got, res)
		if err != nil || stop {
			return err
		}
		t += got
		if got < want {
			return nil // adversary exhausted its (finite) sequence
		}
	}
	return nil
}

// runCoarseSim drains a coarse-state adaptive adversary and replays the
// drain one interaction at a time until the ownership state changes,
// then re-drains — the sim-side mirror of Engine.runCoarse. Unlike the
// oblivious path the tail of a drained batch is only hypothetically
// valid (the adversary would emit different interactions after a
// transfer), so interactions past the first ownership change must never
// be dispatched: node state they mutated could not be taken back.
func (rt *Runtime) runCoarseSim(ca core.CoarseBatchAdversary, res *core.Result) error {
	for t := 0; t < rt.cfg.MaxInteractions; {
		want := simMaxBatch
		if rem := rt.cfg.MaxInteractions - t; rem < want {
			want = rem
		}
		got := ca.NextCoarseBatch(t, rt, rt.batch[:want])
		if got < 0 || got > want {
			return fmt.Errorf("sim: adversary %s returned %d interactions for a %d-slot batch", rt.advName, got, want)
		}
		if got == 0 {
			return nil // exhausted under the current state
		}
		ownBefore := rt.nOwn
		consumed := got
		for i := 0; i < got; i++ {
			stop, err := rt.playOne(t+i, rt.batch[i], res)
			if err != nil || stop {
				return err
			}
			if rt.nOwn != ownBefore {
				consumed = i + 1
				break
			}
		}
		t += consumed
		if consumed == got && got < want && rt.nOwn == ownBefore {
			// Exhaustion was declared under a state that still holds; a
			// transfer on the batch's last interaction instead falls
			// through and re-drains (see Engine.runCoarse).
			return nil
		}
	}
	return nil
}

// playBatch validates, prescreens, dispatches and integrates one
// drained batch. It returns stop=true when the run ended inside the
// batch. A malformed interaction at position p truncates the batch: the
// valid prefix is still played (matching the engine, which plays and
// counts every interaction before the offending one) and the error —
// built exactly like the scalar path's — is returned only if the run
// did not end earlier.
func (rt *Runtime) playBatch(start, blen int, res *core.Result) (bool, error) {
	batch := rt.batch[:blen]
	n := rt.cfg.N
	var pendErr error
	valid := blen
	for i := range batch {
		c := batch[i]
		if c.U > c.V {
			c.U, c.V = c.V, c.U
		}
		if c.U < 0 || c.U == c.V || int(c.V) >= n {
			if _, err := seq.NewInteraction(batch[i].U, batch[i].V); err != nil {
				pendErr = fmt.Errorf("sim: adversary %s at t=%d: %w", rt.advName, start+i, err)
			} else {
				pendErr = fmt.Errorf("sim: adversary %s at t=%d: interaction %v out of range", rt.advName, start+i, c)
			}
			valid = i
			break
		}
		batch[i] = c
	}
	batch = batch[:valid]

	// Prescreen against the ownership words at batch start: monotone
	// ownership makes the screen sound for the whole batch (see
	// core.PrescreenBoth). Observer algorithms see every interaction,
	// so for them every position is dispatched.
	active := valid
	if !rt.obsAll {
		active = core.PrescreenBoth(rt.ownWords, batch, rt.mask)
	}

	if active > 0 {
		si := 0
		var involved uint64
		for i := range batch {
			if !rt.obsAll && !bitset.TestWord(rt.mask, i) {
				continue
			}
			us, vs := rt.shardOf(batch[i].U), rt.shardOf(batch[i].V)
			sl := &rt.slots[si]
			sl.it = batch[i]
			sl.t = start + i
			sl.uShard, sl.vShard = us, vs
			sl.decision = core.NoTransfer
			sl.bothOwned = false
			sl.takeMine, sl.gaveYours = false, false
			sl.state.Store(slotEmpty)
			involved |= 1<<uint(us) | 1<<uint(vs)
			si++
		}
		rt.dispatch(si, involved)
	}

	// Integrate in interaction order. Slots past a termination cut were
	// executed speculatively but cannot have transferred (a single
	// owner never meets another owner); past a failure cut they may
	// have, but the run is over and node state is discarded by Reset.
	si := 0
	for i := range batch {
		var d core.Decision
		var both bool
		if rt.obsAll || bitset.TestWord(rt.mask, i) {
			sl := &rt.slots[si]
			si++
			d, both = sl.decision, sl.bothOwned
		}
		if rt.integratePos(start+i, batch[i], both, d, res) {
			return true, nil
		}
	}
	return pendErr != nil, pendErr
}

// playOne validates and plays a single interaction: inactive ones are
// integrated directly, active ones dispatched as a one-slot batch.
func (rt *Runtime) playOne(t int, it seq.Interaction, res *core.Result) (bool, error) {
	canon, err := seq.NewInteraction(it.U, it.V)
	if err != nil {
		return true, fmt.Errorf("sim: adversary %s at t=%d: %w", rt.advName, t, err)
	}
	if int(canon.V) >= rt.cfg.N {
		return true, fmt.Errorf("sim: adversary %s at t=%d: interaction %v out of range", rt.advName, t, canon)
	}
	if !rt.obsAll && !(bitset.TestWord(rt.ownWords, int(canon.U)) && bitset.TestWord(rt.ownWords, int(canon.V))) {
		res.Interactions++
		return rt.integrateTail(t, core.Event{T: t, It: canon}, res), nil
	}
	us, vs := rt.shardOf(canon.U), rt.shardOf(canon.V)
	sl := &rt.slots[0]
	sl.it = canon
	sl.t = t
	sl.uShard, sl.vShard = us, vs
	sl.decision = core.NoTransfer
	sl.bothOwned = false
	sl.takeMine, sl.gaveYours = false, false
	sl.state.Store(slotEmpty)
	rt.dispatch(1, 1<<uint(us)|1<<uint(vs))
	return rt.integratePos(t, canon, sl.bothOwned, sl.decision, res), nil
}

// integratePos folds one played interaction into the scheduler's view
// and the result, emits its event, and reports whether the run is over.
func (rt *Runtime) integratePos(t int, it seq.Interaction, both bool, d core.Decision, res *core.Result) bool {
	res.Interactions++
	ev := core.Event{T: t, It: it, BothOwned: both, Decision: d}
	if both {
		if receiver, transferred := d.Receiver(it); transferred {
			sender, _ := d.Sender(it)
			bitset.ClearWordBit(rt.ownWords, int(sender))
			rt.nOwn--
			res.Transmissions++
			res.LastGap = t - res.Duration - 1
			res.Duration = t
			ev.Sender, ev.Receiver = sender, receiver
		} else {
			res.Declined++
		}
	}
	return rt.integrateTail(t, ev, res)
}

// integrateTail is the event-emission and end-of-run check shared by
// the active and screened-out integration paths.
func (rt *Runtime) integrateTail(t int, ev core.Event, res *core.Result) bool {
	if rt.cfg.Events != nil {
		rt.cfg.Events.OnEvent(ev)
	}
	if !bitset.TestWord(rt.ownWords, int(rt.cfg.Sink)) {
		res.Failed = true
		res.FailReason = fmt.Sprintf("sink %d transmitted its data at t=%d and can never terminate", rt.cfg.Sink, t)
		return true
	}
	if rt.nOwn == 1 {
		res.Terminated = true
		return true
	}
	return false
}
