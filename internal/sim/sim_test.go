package sim

import (
	"runtime"
	"testing"
	"time"

	"doda/internal/adversary"
	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/knowledge"
	"doda/internal/seq"
)

func TestRuntimeValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "too few nodes", cfg: Config{N: 1, MaxInteractions: 5}},
		{name: "bad sink", cfg: Config{N: 3, Sink: 9, MaxInteractions: 5}},
		{name: "no cap", cfg: Config{N: 3}},
		{name: "payload mismatch", cfg: Config{N: 3, MaxInteractions: 5, Payloads: []float64{1, 2}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewRuntime(tt.cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestRuntimeSingleUse(t *testing.T) {
	rt, err := NewRuntime(Config{N: 3, MaxInteractions: 5})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := seq.NewSequence(3, []seq.Interaction{{U: 1, V: 2}})
	adv, _ := adversary.NewOblivious("seq", s)
	if _, err := rt.Run(algorithms.Waiting{}, adv); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(algorithms.Waiting{}, adv); err == nil {
		t.Error("second Run should fail")
	}
}

func TestRuntimeNilParticipants(t *testing.T) {
	rt, err := NewRuntime(Config{N: 3, MaxInteractions: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(nil, nil); err == nil {
		t.Error("want error")
	}
}

func TestRuntimeGatheringTerminates(t *testing.T) {
	adv, _, err := adversary.Randomized(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(Config{N: 8, MaxInteractions: 10000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run(algorithms.NewGathering(), adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("res = %+v", res)
	}
	if res.Transmissions != 7 {
		t.Errorf("transmissions = %d", res.Transmissions)
	}
	if res.SinkValue.Count != 8 || !res.SinkValue.Origins.Full() {
		t.Errorf("sink value = %+v", res.SinkValue)
	}
}

func TestRuntimeNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		adv, _, err := adversary.Randomized(6, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		rt, err := NewRuntime(Config{N: 6, MaxInteractions: 5000})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(algorithms.NewGathering(), adv); err != nil {
			t.Fatal(err)
		}
	}
	// Give exited goroutines a moment to be reaped by the scheduler.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: before=%d after=%d", before, runtime.NumGoroutine())
}

// equivalence runs the same algorithm/adversary/seed in both the
// sequential engine and the concurrent runtime and compares results.
func equivalence(t *testing.T, n int, seed uint64, mkAlg func() core.Algorithm, know func(st *seq.Stream) *knowledge.Bundle) {
	t.Helper()
	advA, streamA, err := adversary.Randomized(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	advB, streamB, err := adversary.Randomized(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	cap := 50 * n * n

	var knowA, knowB *knowledge.Bundle
	if know != nil {
		knowA, knowB = know(streamA), know(streamB)
	}

	engineRes, err := core.RunOnce(core.Config{
		N: n, MaxInteractions: cap, Know: knowA, VerifyAggregate: true,
	}, mkAlg(), advA)
	if err != nil {
		t.Fatal(err)
	}

	rt, err := NewRuntime(Config{N: n, MaxInteractions: cap, Know: knowB})
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := rt.Run(mkAlg(), advB)
	if err != nil {
		t.Fatal(err)
	}

	if engineRes.Terminated != simRes.Terminated ||
		engineRes.Duration != simRes.Duration ||
		engineRes.Interactions != simRes.Interactions ||
		engineRes.Transmissions != simRes.Transmissions ||
		engineRes.Declined != simRes.Declined ||
		engineRes.LastGap != simRes.LastGap {
		t.Errorf("engine %+v != sim %+v", engineRes, simRes)
	}
	if engineRes.Terminated && engineRes.SinkValue.Num != simRes.SinkValue.Num {
		t.Errorf("sink payload: engine %v, sim %v", engineRes.SinkValue.Num, simRes.SinkValue.Num)
	}
}

func TestEquivalenceWaiting(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		equivalence(t, 10, seed, func() core.Algorithm { return algorithms.Waiting{} }, nil)
	}
}

func TestEquivalenceGathering(t *testing.T) {
	for _, seed := range []uint64{4, 5, 6} {
		equivalence(t, 12, seed, func() core.Algorithm { return algorithms.NewGathering() }, nil)
	}
}

func TestEquivalenceWaitingGreedy(t *testing.T) {
	const n = 12
	for _, seed := range []uint64{7, 8} {
		equivalence(t, n, seed,
			func() core.Algorithm { return algorithms.WaitingGreedy{Tau: algorithms.TauStar(n)} },
			func(st *seq.Stream) *knowledge.Bundle {
				b, err := knowledge.NewBundle(knowledge.WithMeetTime(st, 0, 50*n*n))
				if err != nil {
					t.Fatal(err)
				}
				return b
			})
	}
}

func TestRuntimeAdaptiveAdversary(t *testing.T) {
	// The Theorem 1 adversary must also defeat Gathering under the
	// concurrent runtime: no termination within the cap.
	adv, err := adversary.NewTheorem1(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(Config{N: 3, MaxInteractions: 2000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run(algorithms.NewGathering(), adv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminated {
		t.Errorf("theorem-1 adversary failed to block gathering: %+v", res)
	}
	if res.Interactions != 2000 {
		t.Errorf("interactions = %d", res.Interactions)
	}
}

func TestRuntimeSequenceExhaustion(t *testing.T) {
	s, _ := seq.NewSequence(3, []seq.Interaction{{U: 1, V: 2}})
	adv, _ := adversary.NewOblivious("seq", s)
	rt, err := NewRuntime(Config{N: 3, MaxInteractions: 100})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run(algorithms.Waiting{}, adv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminated || res.Interactions != 1 {
		t.Errorf("res = %+v", res)
	}
}
