package sim

import (
	"runtime"
	"testing"
	"time"

	"doda/internal/adversary"
	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/knowledge"
	"doda/internal/rng"
	"doda/internal/seq"
)

func TestRuntimeValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "too few nodes", cfg: Config{N: 1, MaxInteractions: 5}},
		{name: "bad sink", cfg: Config{N: 3, Sink: 9, MaxInteractions: 5}},
		{name: "no cap", cfg: Config{N: 3}},
		{name: "payload mismatch", cfg: Config{N: 3, MaxInteractions: 5, Payloads: []float64{1, 2}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewRuntime(tt.cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestRuntimeSingleUse(t *testing.T) {
	rt, err := NewRuntime(Config{N: 3, MaxInteractions: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	s, _ := seq.NewSequence(3, []seq.Interaction{{U: 1, V: 2}})
	adv, _ := adversary.NewOblivious("seq", s)
	if _, err := rt.Run(algorithms.Waiting{}, adv); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(algorithms.Waiting{}, adv); err == nil {
		t.Error("second Run should fail")
	}
}

func TestRuntimeNilParticipants(t *testing.T) {
	rt, err := NewRuntime(Config{N: 3, MaxInteractions: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := rt.Run(nil, nil); err == nil {
		t.Error("want error")
	}
}

func TestRuntimeGatheringTerminates(t *testing.T) {
	adv, _, err := adversary.Randomized(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(Config{N: 8, MaxInteractions: 10000})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res, err := rt.Run(algorithms.NewGathering(), adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("res = %+v", res)
	}
	if res.Transmissions != 7 {
		t.Errorf("transmissions = %d", res.Transmissions)
	}
	if res.SinkValue.Count != 8 || !res.SinkValue.Origins.Full() {
		t.Errorf("sink value = %+v", res.SinkValue)
	}
}

func TestRuntimeNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		adv, _, err := adversary.Randomized(6, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		rt, err := NewRuntime(Config{N: 6, MaxInteractions: 5000})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(algorithms.NewGathering(), adv); err != nil {
			t.Fatal(err)
		}
		rt.Close()
	}
	// Give exited goroutines a moment to be reaped by the scheduler.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: before=%d after=%d", before, runtime.NumGoroutine())
}

// equivalence runs the same algorithm/adversary/seed in both the
// sequential engine and the concurrent runtime and compares results.
func equivalence(t *testing.T, n int, seed uint64, mkAlg func() core.Algorithm, know func(st *seq.Stream) *knowledge.Bundle) {
	t.Helper()
	advA, streamA, err := adversary.Randomized(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	advB, streamB, err := adversary.Randomized(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	cap := 50 * n * n

	var knowA, knowB *knowledge.Bundle
	if know != nil {
		knowA, knowB = know(streamA), know(streamB)
	}

	engineRes, err := core.RunOnce(core.Config{
		N: n, MaxInteractions: cap, Know: knowA, VerifyAggregate: true,
	}, mkAlg(), advA)
	if err != nil {
		t.Fatal(err)
	}

	rt, err := NewRuntime(Config{N: n, MaxInteractions: cap, Know: knowB})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	simRes, err := rt.Run(mkAlg(), advB)
	if err != nil {
		t.Fatal(err)
	}

	if engineRes.Terminated != simRes.Terminated ||
		engineRes.Duration != simRes.Duration ||
		engineRes.Interactions != simRes.Interactions ||
		engineRes.Transmissions != simRes.Transmissions ||
		engineRes.Declined != simRes.Declined ||
		engineRes.LastGap != simRes.LastGap {
		t.Errorf("engine %+v != sim %+v", engineRes, simRes)
	}
	if engineRes.Terminated && engineRes.SinkValue.Num != simRes.SinkValue.Num {
		t.Errorf("sink payload: engine %v, sim %v", engineRes.SinkValue.Num, simRes.SinkValue.Num)
	}
}

func TestEquivalenceWaiting(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		equivalence(t, 10, seed, func() core.Algorithm { return algorithms.Waiting{} }, nil)
	}
}

func TestEquivalenceGathering(t *testing.T) {
	for _, seed := range []uint64{4, 5, 6} {
		equivalence(t, 12, seed, func() core.Algorithm { return algorithms.NewGathering() }, nil)
	}
}

func TestEquivalenceWaitingGreedy(t *testing.T) {
	const n = 12
	for _, seed := range []uint64{7, 8} {
		equivalence(t, n, seed,
			func() core.Algorithm { return algorithms.WaitingGreedy{Tau: algorithms.TauStar(n)} },
			func(st *seq.Stream) *knowledge.Bundle {
				b, err := knowledge.NewBundle(knowledge.WithMeetTime(st, 0, 50*n*n))
				if err != nil {
					t.Fatal(err)
				}
				return b
			})
	}
}

func TestRuntimeAdaptiveAdversary(t *testing.T) {
	// The Theorem 1 adversary must also defeat Gathering under the
	// concurrent runtime: no termination within the cap.
	adv, err := adversary.NewTheorem1(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(Config{N: 3, MaxInteractions: 2000})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res, err := rt.Run(algorithms.NewGathering(), adv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminated {
		t.Errorf("theorem-1 adversary failed to block gathering: %+v", res)
	}
	if res.Interactions != 2000 {
		t.Errorf("interactions = %d", res.Interactions)
	}
}

func TestRuntimeSequenceExhaustion(t *testing.T) {
	s, _ := seq.NewSequence(3, []seq.Interaction{{U: 1, V: 2}})
	adv, _ := adversary.NewOblivious("seq", s)
	rt, err := NewRuntime(Config{N: 3, MaxInteractions: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res, err := rt.Run(algorithms.Waiting{}, adv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminated || res.Interactions != 1 {
		t.Errorf("res = %+v", res)
	}
}

// runtimeResult plays one seeded uniform Gathering workload through the
// runtime under the given provenance/batch configuration.
func runtimeResult(t *testing.T, n int, seed uint64, prov core.ProvenanceMode, disableBatch bool) core.Result {
	t.Helper()
	adv, err := adversary.NewGenerated("uniform", n, seq.UniformGen(n, rng.New(seed)))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(Config{
		N: n, MaxInteractions: 50 * n * n,
		Provenance: prov, DisableBatch: disableBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res, err := rt.Run(algorithms.NewGathering(), adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("n=%d seed=%d: did not terminate", n, seed)
	}
	return res
}

// TestRuntimeBatchedMatchesScalar checks the scheduler's batch drain
// against the per-interaction Next path across provenance modes.
func TestRuntimeBatchedMatchesScalar(t *testing.T) {
	const n = 12
	for _, prov := range []core.ProvenanceMode{core.ProvenanceFull, core.ProvenanceCount, core.ProvenanceOff} {
		for _, seed := range []uint64{1, 2, 3} {
			batched := runtimeResult(t, n, seed, prov, false)
			scalar := runtimeResult(t, n, seed, prov, true)
			if batched.Duration != scalar.Duration || batched.Interactions != scalar.Interactions ||
				batched.Transmissions != scalar.Transmissions || batched.Declined != scalar.Declined ||
				batched.SinkValue.Num != scalar.SinkValue.Num || batched.SinkValue.Count != scalar.SinkValue.Count {
				t.Errorf("prov=%v seed=%d: batched %+v != scalar %+v", prov, seed, batched, scalar)
			}
		}
	}
}

// TestRuntimeProvenanceModes pins the mode semantics in the runtime: the
// execution is identical across modes, full mode carries origins, the
// others do not, and invalid modes are rejected.
func TestRuntimeProvenanceModes(t *testing.T) {
	const n = 10
	full := runtimeResult(t, n, 7, core.ProvenanceFull, false)
	if full.SinkValue.Origins == nil || !full.SinkValue.Origins.Full() {
		t.Errorf("full mode origins = %v", full.SinkValue.Origins)
	}
	for _, prov := range []core.ProvenanceMode{core.ProvenanceCount, core.ProvenanceOff} {
		res := runtimeResult(t, n, 7, prov, false)
		if res.SinkValue.Origins != nil {
			t.Errorf("%v mode leaked origins %v", prov, res.SinkValue.Origins)
		}
		if res.Duration != full.Duration || res.Interactions != full.Interactions ||
			res.SinkValue.Num != full.SinkValue.Num {
			t.Errorf("%v mode changed the execution: %+v vs %+v", prov, res, full)
		}
	}
	if _, err := NewRuntime(Config{N: 4, MaxInteractions: 10, Provenance: core.ProvenanceMode(7)}); err == nil {
		t.Error("invalid provenance mode must be rejected")
	}
}
