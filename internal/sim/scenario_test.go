package sim

// Equivalence of the sequential engine and the concurrent runtime on
// scenario-generated workloads: the existing equivalence tests cover the
// paper's randomized adversary; these extend the claim to the workload
// generators of internal/scenario (edge-Markovian, community, churn),
// whose temporally correlated and filtered sequences exercise different
// interaction patterns.

import (
	"testing"

	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/knowledge"
	"doda/internal/scenario"
	"doda/internal/seq"
)

// scenarioEquivalence plays the same model/seed/algorithm on both
// executors and requires identical results.
func scenarioEquivalence(t *testing.T, m scenario.Model, seed uint64, mkAlg func() core.Algorithm, withMeetTime bool) {
	t.Helper()
	n := m.N()
	cap := 200 * n * n

	build := func() (core.Adversary, *seq.Stream) {
		adv, st, err := scenario.Adversary(m, seed)
		if err != nil {
			t.Fatal(err)
		}
		return adv, st
	}
	know := func(st *seq.Stream) *knowledge.Bundle {
		if !withMeetTime {
			return nil
		}
		b, err := knowledge.NewBundle(knowledge.WithMeetTime(st, 0, cap))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	advA, streamA := build()
	engineRes, err := core.RunOnce(core.Config{
		N: n, MaxInteractions: cap, Know: know(streamA), VerifyAggregate: true,
	}, mkAlg(), advA)
	if err != nil {
		t.Fatal(err)
	}

	advB, streamB := build()
	rt, err := NewRuntime(Config{N: n, MaxInteractions: cap, Know: know(streamB)})
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := rt.Run(mkAlg(), advB)
	if err != nil {
		t.Fatal(err)
	}

	if engineRes.Terminated != simRes.Terminated ||
		engineRes.Duration != simRes.Duration ||
		engineRes.Interactions != simRes.Interactions ||
		engineRes.Transmissions != simRes.Transmissions ||
		engineRes.Declined != simRes.Declined ||
		engineRes.LastGap != simRes.LastGap {
		t.Errorf("engine %+v != sim %+v", engineRes, simRes)
	}
	if engineRes.Terminated && engineRes.SinkValue.Num != simRes.SinkValue.Num {
		t.Errorf("sink payload: engine %v, sim %v", engineRes.SinkValue.Num, simRes.SinkValue.Num)
	}
}

func TestEquivalenceEdgeMarkovian(t *testing.T) {
	m, err := scenario.NewEdgeMarkovian(10, 0.1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 2, 3} {
		scenarioEquivalence(t, m, seed, func() core.Algorithm { return algorithms.NewGathering() }, false)
	}
}

func TestEquivalenceCommunityChurn(t *testing.T) {
	sizes, err := scenario.EvenSizes(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := scenario.NewCommunity(sizes, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := scenario.NewChurn(cm, 0.05, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{4, 5} {
		scenarioEquivalence(t, ch, seed, func() core.Algorithm { return algorithms.Waiting{} }, false)
		scenarioEquivalence(t, ch, seed, func() core.Algorithm { return algorithms.NewGathering() }, false)
	}
}

func TestEquivalenceScenarioWaitingGreedy(t *testing.T) {
	// A knowledge-using algorithm over a scenario stream: the meetTime
	// oracle must agree between executors because both read the same
	// deterministic stream.
	m, err := scenario.NewEdgeMarkovian(10, 0.2, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	scenarioEquivalence(t, m, 6,
		func() core.Algorithm { return algorithms.WaitingGreedy{Tau: algorithms.TauStar(10)} }, true)
}
