package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"doda/internal/adversary"
	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/knowledge"
	"doda/internal/parallel"
	"doda/internal/rng"
	"doda/internal/scenario"
	"doda/internal/seq"
)

// AlgorithmNames lists the algorithms a sweep can run.
func AlgorithmNames() []string {
	return []string{"waiting", "gathering", "waiting-greedy", "full-knowledge"}
}

func knownAlgorithm(name string) bool {
	for _, a := range AlgorithmNames() {
		if a == name {
			return true
		}
	}
	return false
}

// needsKnowledge reports whether the algorithm consults a knowledge
// oracle and therefore needs a stream-backed (caching) workload; the
// others run on the allocation-free generator fast path.
func needsKnowledge(name string) bool {
	return name == "waiting-greedy" || name == "full-knowledge"
}

// newAlgorithm builds the named algorithm for an n-node run capped at cap
// interactions, plus the knowledge bundle it requires (nil for the
// knowledge-free algorithms; view must be non-nil for the others).
func newAlgorithm(name string, n, cap int, view seq.View) (core.Algorithm, *knowledge.Bundle, error) {
	switch name {
	case "waiting":
		return algorithms.Waiting{}, nil, nil
	case "gathering":
		return algorithms.NewGathering(), nil, nil
	case "waiting-greedy":
		know, err := knowledge.NewBundle(knowledge.WithMeetTime(view, 0, cap))
		if err != nil {
			return nil, nil, err
		}
		return algorithms.WaitingGreedy{Tau: algorithms.TauStar(n)}, know, nil
	case "full-knowledge":
		know, err := knowledge.NewBundle(knowledge.WithFullSequence(view))
		if err != nil {
			return nil, nil, err
		}
		return algorithms.NewFullKnowledge(cap), know, nil
	default:
		return nil, nil, fmt.Errorf("sweep: unknown algorithm %q", name)
	}
}

// Options tunes one sweep execution.
type Options struct {
	// Workers is the shard count (< 1 = GOMAXPROCS).
	Workers int
	// OnResult, when non-nil, receives every cell result in cell-index
	// order as soon as it and all its predecessors have completed — the
	// streaming hook cmd/dodasweep uses to emit JSON lines while later
	// cells are still running. Called from worker goroutines under a
	// lock; keep it cheap. A non-nil error aborts the sweep: no further
	// results are delivered and Run returns the error — an emitter that
	// cannot write (short write, ENOSPC) must stop the sweep rather than
	// silently lose cells.
	OnResult func(CellResult) error
	// ForceScalar disables the engine's batched adversary fast path for
	// every run. Differential tests flip it to prove batched and scalar
	// sweeps produce byte-identical output.
	ForceScalar bool
	// Select, when non-nil, restricts the sweep to the cells it returns
	// true for. Cell identity (index, seed) is fixed by the full grid
	// before selection, so a selected cell's result is byte-identical
	// whether the rest of the grid runs in this process or another —
	// the contract shard runs and checkpoint resumes are built on.
	// Results, totals and OnResult cover only the selected cells.
	Select func(Cell) bool
}

// Run executes the grid and returns the per-cell results in cell order
// plus the fleet totals. Results are bit-for-bit independent of
// opt.Workers.
func Run(grid Grid, opt Options) ([]CellResult, Totals, error) {
	cells, err := grid.Cells()
	if err != nil {
		return nil, Totals{}, err
	}
	if opt.Select != nil {
		selected := make([]Cell, 0, len(cells))
		for _, c := range cells {
			if opt.Select(c) {
				selected = append(selected, c)
			}
		}
		cells = selected
	}
	workers := opt.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1 // empty selection: MapWorkers still wants a pool
	}

	// One runner per worker: a reusable engine plus sample buffers, so
	// steady-state cells allocate only what the workload model needs.
	runners := make([]*runner, workers)
	for w := range runners {
		runners[w] = &runner{}
	}
	em := &emitter{fn: opt.OnResult, pending: map[int]CellResult{}}

	results, err := parallel.MapWorkers(len(cells), workers, func(w, i int) (CellResult, error) {
		res, err := runners[w].runCell(grid, opt, cells[i])
		if err != nil {
			return CellResult{}, err
		}
		if err := em.emit(i, res); err != nil {
			return CellResult{}, err
		}
		return res, nil
	})
	if err != nil {
		return nil, Totals{}, err
	}
	return results, TotalsOf(results), nil
}

// emitter delivers cell results to a callback in index order, buffering
// out-of-order completions from the shards. The first callback error
// latches: no further results are delivered, and every later emit returns
// the same error so the workers abort instead of sweeping cells nobody
// can record.
type emitter struct {
	mu      sync.Mutex
	next    int
	pending map[int]CellResult
	fn      func(CellResult) error
	err     error
}

func (e *emitter) emit(i int, r CellResult) error {
	if e.fn == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return e.err
	}
	e.pending[i] = r
	for {
		r, ok := e.pending[e.next]
		if !ok {
			return nil
		}
		delete(e.pending, e.next)
		e.next++
		if err := e.fn(r); err != nil {
			// Name the cell actually being delivered: the caller that
			// surfaced the error may have been draining another worker's
			// buffered result.
			e.err = fmt.Errorf("sweep: emit cell %d: %w", r.Index, err)
			return e.err
		}
	}
}

// runner is one worker's scratch state.
type runner struct {
	eng  *core.Engine
	durs []float64
	ints []float64
}

// runCell executes every replica of one cell.
func (r *runner) runCell(grid Grid, opt Options, cell Cell) (CellResult, error) {
	spec, ok := scenario.Lookup(cell.Scenario.Name)
	if !ok {
		return CellResult{}, fmt.Errorf("sweep: scenario %q not registered", cell.Scenario.Name)
	}
	prov, err := core.ParseProvenanceMode(cell.Provenance)
	if err != nil {
		return CellResult{}, fmt.Errorf("sweep: cell %d: %w", cell.Index, err)
	}
	res := CellResult{Cell: cell, Replicas: grid.Replicas}
	r.durs = r.durs[:0]
	r.ints = r.ints[:0]

	// Replica seeds derive from the cell seed alone.
	src := rng.New(cell.Seed)

	fast := spec.Model != nil && !needsKnowledge(cell.Algorithm)
	var model scenario.Model
	var alg core.Algorithm
	if fast {
		var err error
		model, err = spec.Model(cell.N, cell.Scenario.Params)
		if err != nil {
			return CellResult{}, err
		}
		// The knowledge-free algorithms are stateless across runs, so
		// one instance serves every replica.
		if alg, _, err = newAlgorithm(cell.Algorithm, model.N(), 1, nil); err != nil {
			return CellResult{}, err
		}
	}

	for rep := 0; rep < grid.Replicas; rep++ {
		repSeed := src.Uint64()
		var (
			adv  core.Adversary
			know *knowledge.Bundle
			n    int
			cap  int
		)
		if fast {
			// Generator fast path: no stream caching, no per-replica
			// workload allocations beyond the model's own state.
			n = model.N()
			cap = grid.MaxInteractions
			if cap == 0 {
				cap = scenario.DefaultCap(n)
			}
			gen, err := adversary.NewGenerated(spec.Name, n, model.Generator(rng.New(repSeed)))
			if err != nil {
				return CellResult{}, err
			}
			adv = gen
		} else {
			w, err := spec.Build(cell.N, repSeed, cell.Scenario.Params)
			if err != nil {
				return CellResult{}, err
			}
			n = w.N
			cap = grid.MaxInteractions
			if cap == 0 {
				cap = scenario.DefaultCap(n)
			}
			if b, finite := w.View.Bound(); finite && cap > b {
				cap = b
			}
			if alg, know, err = newAlgorithm(cell.Algorithm, n, cap, w.View); err != nil {
				return CellResult{}, err
			}
			adv = w.Adversary
		}

		cfg := core.Config{
			N: n, MaxInteractions: cap, Know: know, VerifyAggregate: true,
			Provenance: prov, DisableBatch: opt.ForceScalar,
		}
		if r.eng == nil {
			var err error
			if r.eng, err = core.NewEngine(cfg); err != nil {
				return CellResult{}, err
			}
		} else if err := r.eng.Reset(cfg); err != nil {
			return CellResult{}, err
		}
		out, err := r.eng.Run(alg, adv)
		if err != nil {
			return CellResult{}, fmt.Errorf("sweep: cell %d (%s/%s/n=%d) replica %d: %w",
				cell.Index, cell.Scenario, cell.Algorithm, cell.N, rep, err)
		}
		res.Transmissions += out.Transmissions
		r.ints = append(r.ints, float64(out.Interactions))
		if out.Terminated {
			res.Terminated++
			d := float64(out.Duration + 1)
			r.durs = append(r.durs, d)
			res.durW.Add(d)
		}
	}
	res.Duration = metricOf(r.durs)
	res.Interactions = metricOf(r.ints)
	return res, nil
}
