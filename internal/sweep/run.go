package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"doda/internal/adversary"
	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/knowledge"
	"doda/internal/parallel"
	"doda/internal/rng"
	"doda/internal/scenario"
	"doda/internal/seq"
)

// AlgorithmNames lists the algorithms a sweep can run.
func AlgorithmNames() []string {
	return []string{"waiting", "gathering", "waiting-greedy", "full-knowledge"}
}

func knownAlgorithm(name string) bool {
	for _, a := range AlgorithmNames() {
		if a == name {
			return true
		}
	}
	return false
}

// needsKnowledge reports whether the algorithm consults a knowledge
// oracle and therefore needs a stream-backed (caching) workload; the
// others run on the allocation-free generator fast path.
func needsKnowledge(name string) bool {
	return name == "waiting-greedy" || name == "full-knowledge"
}

// newAlgorithm builds the named algorithm for an n-node run capped at cap
// interactions, plus the knowledge bundle it requires (nil for the
// knowledge-free algorithms; view must be non-nil for the others).
func newAlgorithm(name string, n, cap int, view seq.View) (core.Algorithm, *knowledge.Bundle, error) {
	switch name {
	case "waiting":
		return algorithms.Waiting{}, nil, nil
	case "gathering":
		return algorithms.NewGathering(), nil, nil
	case "waiting-greedy":
		know, err := knowledge.NewBundle(knowledge.WithMeetTime(view, 0, cap))
		if err != nil {
			return nil, nil, err
		}
		return algorithms.WaitingGreedy{Tau: algorithms.TauStar(n)}, know, nil
	case "full-knowledge":
		know, err := knowledge.NewBundle(knowledge.WithFullSequence(view))
		if err != nil {
			return nil, nil, err
		}
		return algorithms.NewFullKnowledge(cap), know, nil
	default:
		return nil, nil, fmt.Errorf("sweep: unknown algorithm %q", name)
	}
}

// Options tunes one sweep execution.
type Options struct {
	// Workers is the shard count (< 1 = GOMAXPROCS).
	Workers int
	// OnResult, when non-nil, receives every cell result in cell-index
	// order as soon as it and all its predecessors have completed — the
	// streaming hook cmd/dodasweep uses to emit JSON lines while later
	// cells are still running. Called from worker goroutines under a
	// lock; keep it cheap. A non-nil error aborts the sweep: no further
	// results are delivered and Run returns the error — an emitter that
	// cannot write (short write, ENOSPC) must stop the sweep rather than
	// silently lose cells.
	OnResult func(CellResult) error
	// ForceScalar disables the engine's batched adversary fast path for
	// every run. Differential tests flip it to prove batched and scalar
	// sweeps produce byte-identical output.
	ForceScalar bool
	// Select, when non-nil, restricts the sweep to the cells it returns
	// true for. Cell identity (index, seed) is fixed by the full grid
	// before selection, so a selected cell's result is byte-identical
	// whether the rest of the grid runs in this process or another —
	// the contract shard runs and checkpoint resumes are built on.
	// Results, totals and OnResult cover only the selected cells.
	Select func(Cell) bool
	// OnReplica, when non-nil, receives each freshly executed replica's
	// outcome the moment it completes, before the cell result is
	// finalised — the hook per-replica checkpointing hangs off. It is
	// called from worker goroutines (concurrently across cells, in
	// replica order within a cell); implementations must synchronise. A
	// non-nil error aborts the sweep. Restored replicas (ResumeReplicas)
	// are not re-delivered.
	OnReplica func(cell Cell, rep int, out ReplicaOutcome) error
	// ResumeReplicas, when non-nil, supplies the journaled outcomes of a
	// cell's leading replicas. The returned prefix is folded into the
	// cell result exactly as if those replicas had just run (their seeds
	// are still drawn and discarded, so the remaining replicas see the
	// same seed stream), making a mid-cell resume byte-identical to an
	// uninterrupted run. Called from worker goroutines; must be safe for
	// concurrent use and must return at most Replicas outcomes.
	ResumeReplicas func(cell Cell) []ReplicaOutcome
	// OnCellWall, when non-nil, receives each cell's wall-clock run time
	// the moment the cell finishes executing, always before that cell is
	// delivered to OnResult. Wall time is observability metadata and
	// deliberately lives outside CellResult: the result stream must stay
	// bit-for-bit independent of machine speed. Called from worker
	// goroutines; must be safe for concurrent use.
	OnCellWall func(cell Cell, wall time.Duration)
}

// Run executes the grid and returns the per-cell results in cell order
// plus the fleet totals. Results are bit-for-bit independent of
// opt.Workers.
func Run(grid Grid, opt Options) ([]CellResult, Totals, error) {
	cells, err := grid.Cells()
	if err != nil {
		return nil, Totals{}, err
	}
	if opt.Select != nil {
		selected := make([]Cell, 0, len(cells))
		for _, c := range cells {
			if opt.Select(c) {
				selected = append(selected, c)
			}
		}
		cells = selected
	}
	workers := opt.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1 // empty selection: MapWorkers still wants a pool
	}

	// One runner per worker: a reusable engine plus sample buffers, so
	// steady-state cells allocate only what the workload model needs.
	runners := make([]*runner, workers)
	for w := range runners {
		runners[w] = &runner{}
	}
	em := &emitter{fn: opt.OnResult, pending: map[int]CellResult{}}

	results, err := parallel.MapWorkers(len(cells), workers, func(w, i int) (CellResult, error) {
		start := time.Now()
		res, err := runners[w].runCell(grid, opt, cells[i])
		if err != nil {
			return CellResult{}, err
		}
		if opt.OnCellWall != nil {
			opt.OnCellWall(cells[i], time.Since(start))
		}
		if err := em.emit(i, res); err != nil {
			return CellResult{}, err
		}
		return res, nil
	})
	if err != nil {
		return nil, Totals{}, err
	}
	return results, TotalsOf(results), nil
}

// emitter delivers cell results to a callback in index order, buffering
// out-of-order completions from the shards. The first callback error
// latches: no further results are delivered, and every later emit returns
// the same error so the workers abort instead of sweeping cells nobody
// can record.
type emitter struct {
	mu      sync.Mutex
	next    int
	pending map[int]CellResult
	fn      func(CellResult) error
	err     error
}

func (e *emitter) emit(i int, r CellResult) error {
	if e.fn == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return e.err
	}
	e.pending[i] = r
	for {
		r, ok := e.pending[e.next]
		if !ok {
			return nil
		}
		delete(e.pending, e.next)
		e.next++
		if err := e.fn(r); err != nil {
			// Name the cell actually being delivered: the caller that
			// surfaced the error may have been draining another worker's
			// buffered result.
			e.err = fmt.Errorf("sweep: emit cell %d: %w", r.Index, err)
			return e.err
		}
	}
}

// runner is one worker's scratch state.
type runner struct {
	eng  *core.Engine
	durs []float64
	ints []float64
}

// runCell executes every replica of one cell.
func (r *runner) runCell(grid Grid, opt Options, cell Cell) (CellResult, error) {
	spec, ok := scenario.Lookup(cell.Scenario.Name)
	if !ok {
		return CellResult{}, fmt.Errorf("sweep: scenario %q not registered", cell.Scenario.Name)
	}
	prov, err := core.ParseProvenanceMode(cell.Provenance)
	if err != nil {
		return CellResult{}, fmt.Errorf("sweep: cell %d: %w", cell.Index, err)
	}
	res := CellResult{Cell: cell, Replicas: grid.Replicas}
	r.durs = r.durs[:0]
	r.ints = r.ints[:0]

	// Journaled replicas of a partially-checkpointed cell: folded in
	// below exactly as if they had just run, so the finished cell is
	// byte-identical to an uninterrupted one.
	var prior []ReplicaOutcome
	if opt.ResumeReplicas != nil {
		prior = opt.ResumeReplicas(cell)
		if len(prior) > grid.Replicas {
			return CellResult{}, fmt.Errorf("sweep: cell %d: %d restored replicas exceed the %d configured",
				cell.Index, len(prior), grid.Replicas)
		}
	}

	// Replica seeds derive from the cell seed alone.
	src := rng.New(cell.Seed)

	fast := spec.Model != nil && !needsKnowledge(cell.Algorithm)
	var model scenario.Model
	var alg core.Algorithm
	if fast {
		var err error
		model, err = spec.Model(cell.N, cell.Scenario.Params)
		if err != nil {
			return CellResult{}, err
		}
		// The knowledge-free algorithms are stateless across runs, so
		// one instance serves every replica.
		if alg, _, err = newAlgorithm(cell.Algorithm, model.N(), 1, nil); err != nil {
			return CellResult{}, err
		}
	}

	for rep := 0; rep < grid.Replicas; rep++ {
		repSeed := src.Uint64()
		if rep < len(prior) {
			// The seed above was drawn and discarded, so the fresh
			// replicas below see the exact seed stream an uninterrupted
			// run would have given them.
			r.apply(&res, prior[rep])
			continue
		}
		var (
			adv  core.Adversary
			know *knowledge.Bundle
			n    int
			cap  int
		)
		if fast {
			// Generator fast path: no stream caching, no per-replica
			// workload allocations beyond the model's own state.
			n = model.N()
			cap = grid.MaxInteractions
			if cap == 0 {
				cap = scenario.DefaultCap(n)
			}
			gen, err := adversary.NewGenerated(spec.Name, n, model.Generator(rng.New(repSeed)))
			if err != nil {
				return CellResult{}, err
			}
			adv = gen
		} else {
			w, err := spec.Build(cell.N, repSeed, cell.Scenario.Params)
			if err != nil {
				return CellResult{}, err
			}
			n = w.N
			cap = grid.MaxInteractions
			if cap == 0 {
				cap = scenario.DefaultCap(n)
			}
			if b, finite := w.View.Bound(); finite && cap > b {
				cap = b
			}
			if alg, know, err = newAlgorithm(cell.Algorithm, n, cap, w.View); err != nil {
				return CellResult{}, err
			}
			adv = w.Adversary
		}

		cfg := core.Config{
			N: n, MaxInteractions: cap, Know: know, VerifyAggregate: true,
			Provenance: prov, DisableBatch: opt.ForceScalar,
		}
		if r.eng == nil {
			var err error
			if r.eng, err = core.NewEngine(cfg); err != nil {
				return CellResult{}, err
			}
		} else if err := r.eng.Reset(cfg); err != nil {
			return CellResult{}, err
		}
		out, err := r.eng.Run(alg, adv)
		if err != nil {
			return CellResult{}, fmt.Errorf("sweep: cell %d (%s/%s/n=%d) replica %d: %w",
				cell.Index, cell.Scenario, cell.Algorithm, cell.N, rep, err)
		}
		oc := ReplicaOutcome{
			Terminated:    out.Terminated,
			Interactions:  float64(out.Interactions),
			Transmissions: out.Transmissions,
		}
		if out.Terminated {
			oc.Duration = float64(out.Duration + 1)
		}
		r.apply(&res, oc)
		if opt.OnReplica != nil {
			if err := opt.OnReplica(cell, rep, oc); err != nil {
				return CellResult{}, err
			}
		}
	}
	res.Duration = metricOf(r.durs)
	res.Interactions = metricOf(r.ints)
	return res, nil
}

// apply folds one replica outcome — fresh or restored — into the cell
// accumulators. Replaying journaled outcomes through the same fold, in
// the same replica order, is what makes a mid-cell resume byte-identical.
func (r *runner) apply(res *CellResult, oc ReplicaOutcome) {
	res.Transmissions += oc.Transmissions
	r.ints = append(r.ints, oc.Interactions)
	if oc.Terminated {
		res.Terminated++
		r.durs = append(r.durs, oc.Duration)
		res.durW.Add(oc.Duration)
	}
}
