package sweep

// Differential acceptance tests for the batched interaction pipeline:
// batched and scalar execution must produce byte-identical sweep JSONL
// for every registry scenario, every sweep algorithm and every provenance
// mode, and identical engine Results for every registry workload
// (including trace replay, which the grid cannot express).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/scenario"
)

// sweepJSONL runs the grid and renders every cell result plus the totals
// exactly as cmd/dodasweep streams them.
func sweepJSONL(t *testing.T, grid Grid, opt Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	opt.OnResult = func(r CellResult) error {
		return enc.Encode(r)
	}
	_, totals, err := Run(grid, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(totals); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBatchedSweepEqualsScalarSweep is the sweep half of the batching
// acceptance gate: for every generative registry scenario, both the
// knowledge-free fast path and the stream-backed knowledge algorithms,
// and all provenance choices, the batched fleet must emit byte-identical
// JSONL to the scalar fleet.
func TestBatchedSweepEqualsScalarSweep(t *testing.T) {
	var refs []ScenarioRef
	for _, spec := range scenario.All() {
		if spec.Model == nil {
			continue // trace replay is covered by the engine-level test below
		}
		refs = append(refs, ScenarioRef{Name: spec.Name})
	}
	if len(refs) < 5 {
		t.Fatalf("registry shrank: %d generative scenarios", len(refs))
	}
	for _, prov := range []string{"auto", "full", "count", "off"} {
		grid := Grid{
			Scenarios:  refs,
			Algorithms: AlgorithmNames(), // fast path and knowledge fallback
			Sizes:      []int{6, 9},
			Replicas:   2,
			Seed:       17,
			Provenance: prov,
		}
		batched := sweepJSONL(t, grid, Options{Workers: 2})
		scalar := sweepJSONL(t, grid, Options{Workers: 2, ForceScalar: true})
		if !bytes.Equal(batched, scalar) {
			t.Errorf("provenance=%s: batched and scalar sweeps differ:\n--- batched ---\n%s\n--- scalar ---\n%s",
				prov, batched, scalar)
		}
	}
}

// buildWorkload instantiates one registry scenario, writing a small
// contact trace to disk for the trace spec.
func buildWorkload(t *testing.T, spec scenario.Spec, n int, seed uint64) *scenario.Workload {
	t.Helper()
	params := map[string]string{}
	if spec.Name == "trace" {
		path := filepath.Join(t.TempDir(), "trace.csv")
		var rows bytes.Buffer
		rows.WriteString("time,u,v\n")
		// A deterministic little trace Gathering terminates on: two
		// passes over the non-sink path 1-2-...-(n-1) (the second pass is
		// mostly skips, exercising non-owner interactions), then a star
		// pass that drains every remaining owner into the sink.
		line := 0
		for round := 0; round < 2; round++ {
			for u := 1; u < n-1; u++ {
				fmt.Fprintf(&rows, "%d,%d,%d\n", line, u, u+1)
				line++
			}
		}
		for u := 1; u < n; u++ {
			fmt.Fprintf(&rows, "%d,%d,%d\n", line, 0, u)
			line++
		}
		if err := os.WriteFile(path, rows.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		params["file"] = path
	}
	w, err := spec.Build(n, seed, params)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestBatchedEqualsScalarEveryRegistryScenario runs every registered
// scenario — trace replay included — through the engine's batched and
// scalar paths under every provenance mode and demands identical Results.
func TestBatchedEqualsScalarEveryRegistryScenario(t *testing.T) {
	const n = 10
	for _, spec := range scenario.All() {
		for _, mode := range []core.ProvenanceMode{core.ProvenanceFull, core.ProvenanceCount, core.ProvenanceOff} {
			label := fmt.Sprintf("%s/%v", spec.Name, mode)
			var results [2]core.Result
			for i, disable := range []bool{false, true} {
				w := buildWorkload(t, spec, n, 23)
				cap := scenario.DefaultCap(w.N)
				if b, finite := w.View.Bound(); finite && cap > b {
					cap = b
				}
				cfg := core.Config{
					N: w.N, MaxInteractions: cap, VerifyAggregate: true,
					Provenance: mode, DisableBatch: disable,
				}
				res, err := core.RunOnce(cfg, algorithms.NewGathering(), w.Adversary)
				if err != nil {
					t.Fatalf("%s disable=%v: %v", label, disable, err)
				}
				if !res.Terminated {
					t.Fatalf("%s disable=%v: did not terminate", label, disable)
				}
				results[i] = res
			}
			batched, scalar := results[0], results[1]
			if batched.Duration != scalar.Duration || batched.Interactions != scalar.Interactions ||
				batched.Transmissions != scalar.Transmissions || batched.Declined != scalar.Declined ||
				batched.LastGap != scalar.LastGap ||
				batched.SinkValue.Num != scalar.SinkValue.Num ||
				batched.SinkValue.Count != scalar.SinkValue.Count {
				t.Errorf("%s: batched %+v != scalar %+v", label, batched, scalar)
			}
			if mode == core.ProvenanceFull {
				if batched.SinkValue.Origins == nil || scalar.SinkValue.Origins == nil ||
					!batched.SinkValue.Origins.Equal(scalar.SinkValue.Origins) {
					t.Errorf("%s: provenance differs: %v vs %v", label,
						batched.SinkValue.Origins, scalar.SinkValue.Origins)
				}
			}
		}
	}
}

// TestAutoProvenanceResolution pins the auto threshold and the per-cell
// mode logging.
func TestAutoProvenanceResolution(t *testing.T) {
	grid := Grid{
		Scenarios:  []ScenarioRef{{Name: "uniform"}},
		Algorithms: []string{"gathering"},
		Sizes:      []int{8, AutoProvenanceThreshold},
		Replicas:   1,
		Seed:       3,
		// A tight cap: the large cell need not terminate, this test only
		// reads the resolved modes.
		MaxInteractions: 50,
	}
	cells, err := grid.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Provenance != "full" || cells[1].Provenance != "count" {
		t.Errorf("auto resolution = %q/%q, want full/count", cells[0].Provenance, cells[1].Provenance)
	}

	grid.Provenance = "off"
	cells, err = grid.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Provenance != "off" {
			t.Errorf("explicit off resolved to %q", c.Provenance)
		}
	}

	grid.Provenance = "bogus"
	if _, err := grid.Cells(); err == nil {
		t.Error("bogus provenance choice must fail grid validation")
	}
}

// TestCellOutputCarriesProvenance checks the mode reaches the JSONL the
// CLI streams.
func TestCellOutputCarriesProvenance(t *testing.T) {
	results, _, err := Run(Grid{
		Scenarios:  []ScenarioRef{{Name: "uniform"}},
		Algorithms: []string{"gathering"},
		Sizes:      []int{6},
		Replicas:   1,
		Seed:       2,
	}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(results[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"provenance":"full"`)) {
		t.Errorf("cell output missing resolved provenance: %s", raw)
	}
}
