package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"doda/internal/core"
	"doda/internal/scenario"
	"doda/internal/stats"
)

// ScenarioRef names one registry scenario with its parameter overrides.
type ScenarioRef struct {
	Name   string            `json:"name"`
	Params map[string]string `json:"params,omitempty"`
}

// String renders the reference canonically (parameters sorted by key), in
// the same syntax ParseScenarios accepts: name or name:k=v,k2=v2.
func (r ScenarioRef) String() string {
	if len(r.Params) == 0 {
		return r.Name
	}
	keys := make([]string, 0, len(r.Params))
	for k := range r.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + r.Params[k]
	}
	return r.Name + ":" + strings.Join(parts, ",")
}

// ParseScenarios parses a semicolon-separated scenario list, each entry
// being a registry name optionally followed by ":" and the comma-separated
// k=v parameters scenario.ParseParams accepts:
//
//	uniform;zipf:alpha=1;community:communities=4,p-intra=0.9
//
// The one parser cmd/dodasweep and tests share, mirroring how the other
// CLIs share scenario.ParseParams.
func ParseScenarios(raw string) ([]ScenarioRef, error) {
	if strings.TrimSpace(raw) == "" {
		return nil, fmt.Errorf("sweep: empty scenario list")
	}
	var refs []ScenarioRef
	for _, entry := range strings.Split(raw, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rawParams, _ := strings.Cut(entry, ":")
		name = strings.TrimSpace(name)
		params, err := scenario.ParseParams(rawParams)
		if err != nil {
			return nil, fmt.Errorf("sweep: scenario %q: %w", name, err)
		}
		refs = append(refs, ScenarioRef{Name: name, Params: params})
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("sweep: empty scenario list")
	}
	return refs, nil
}

// Grid is a sweep specification: the cross product of scenarios,
// algorithms and sizes, each run Replicas times under per-cell seeds.
type Grid struct {
	// Scenarios are the registry scenarios to sweep.
	Scenarios []ScenarioRef
	// Algorithms are algorithm names (see AlgorithmNames).
	Algorithms []string
	// Sizes are the node counts to sweep.
	Sizes []int
	// Replicas is the number of seeded runs per cell (>= 1).
	Replicas int
	// Seed derives every cell's seed; same grid, same seed, same
	// results — regardless of worker count.
	Seed uint64
	// MaxInteractions caps each run (0 = scenario.DefaultCap for the
	// cell's node count).
	MaxInteractions int
	// Provenance selects the engine provenance mode for every cell:
	// "full", "count", "off", or "auto" (the default when empty) —
	// full bitset provenance below AutoProvenanceThreshold nodes,
	// count-only at and above it, so large-n grids shed the O(n) bitset
	// union per transfer and the O(n²) bitset memory. The resolved mode
	// is recorded in each cell's output.
	Provenance string
}

// AutoProvenanceThreshold is the node count at and above which the "auto"
// provenance choice drops from full bitset provenance to count-only. At
// 2048 nodes the bitsets cost 512 KB per engine and 32 words per transfer
// union — the point where they start to show up in sweep profiles.
const AutoProvenanceThreshold = 2048

// resolveProvenance maps a grid-level provenance choice and a cell's node
// count to the engine mode the cell runs under.
func resolveProvenance(choice string, n int) (core.ProvenanceMode, error) {
	switch choice {
	case "", "auto":
		if n >= AutoProvenanceThreshold {
			return core.ProvenanceCount, nil
		}
		return core.ProvenanceFull, nil
	default:
		m, err := core.ParseProvenanceMode(choice)
		if err != nil {
			return 0, fmt.Errorf("sweep: provenance %q: want auto, full, count or off", choice)
		}
		return m, nil
	}
}

// Cell is one grid point: a scenario, an algorithm and a node count, with
// the deterministic seed all its replicas derive from. Provenance is the
// resolved engine provenance mode ("full", "count" or "off") the cell's
// replicas run under, logged so downstream analysis knows how much was
// verified.
type Cell struct {
	Index      int         `json:"index"`
	Scenario   ScenarioRef `json:"scenario"`
	Algorithm  string      `json:"algorithm"`
	N          int         `json:"n"`
	Seed       uint64      `json:"seed"`
	Provenance string      `json:"provenance"`
}

// Cells expands and validates the grid in deterministic order
// (scenario-major, then algorithm, then size).
func (g Grid) Cells() ([]Cell, error) {
	if len(g.Scenarios) == 0 {
		return nil, fmt.Errorf("sweep: no scenarios")
	}
	if len(g.Algorithms) == 0 {
		return nil, fmt.Errorf("sweep: no algorithms")
	}
	if len(g.Sizes) == 0 {
		return nil, fmt.Errorf("sweep: no sizes")
	}
	if g.Replicas < 1 {
		return nil, fmt.Errorf("sweep: replicas must be >= 1, got %d", g.Replicas)
	}
	if g.MaxInteractions < 0 {
		return nil, fmt.Errorf("sweep: negative interaction cap %d", g.MaxInteractions)
	}
	for _, n := range g.Sizes {
		if n < 2 {
			return nil, fmt.Errorf("sweep: need at least 2 nodes, got %d", n)
		}
		if _, err := resolveProvenance(g.Provenance, n); err != nil {
			return nil, err
		}
	}
	for _, ref := range g.Scenarios {
		spec, ok := scenario.Lookup(ref.Name)
		if !ok {
			return nil, fmt.Errorf("sweep: unknown scenario %q (known: %s)",
				ref.Name, strings.Join(scenario.Names(), ", "))
		}
		// Validate parameters up front: a bad key or value must fail the
		// whole grid before any cell runs (and streams output), not
		// mid-sweep. Generative scenarios are probed by building the
		// model once; build-only scenarios (trace) get a key check.
		if spec.Model != nil {
			if _, err := spec.Model(g.Sizes[0], ref.Params); err != nil {
				return nil, fmt.Errorf("sweep: scenario %s: %w", ref, err)
			}
		} else {
			for k := range ref.Params {
				known := false
				for _, p := range spec.Params {
					if p.Name == k {
						known = true
						break
					}
				}
				if !known {
					return nil, fmt.Errorf("sweep: scenario %s: unknown parameter %q", ref, k)
				}
			}
		}
	}
	for _, alg := range g.Algorithms {
		if !knownAlgorithm(alg) {
			return nil, fmt.Errorf("sweep: unknown algorithm %q (known: %s)",
				alg, strings.Join(AlgorithmNames(), ", "))
		}
	}
	cells := make([]Cell, 0, len(g.Scenarios)*len(g.Algorithms)*len(g.Sizes))
	for _, ref := range g.Scenarios {
		for _, alg := range g.Algorithms {
			for _, n := range g.Sizes {
				i := len(cells)
				mode, err := resolveProvenance(g.Provenance, n)
				if err != nil {
					return nil, err // unreachable: sizes validated above
				}
				cells = append(cells, Cell{
					Index:      i,
					Scenario:   ref,
					Algorithm:  alg,
					N:          n,
					Seed:       cellSeed(g.Seed, i),
					Provenance: mode.String(),
				})
			}
		}
	}
	return cells, nil
}

// fingerprintVersion salts the grid fingerprint: bump it whenever the
// Grid schema or the cell-expansion order changes meaning, so checkpoints
// written under the old semantics are rejected rather than silently
// misread.
const fingerprintVersion = "doda/sweep/grid/v1"

// Fingerprint returns a stable hex digest of the grid configuration —
// every field that shapes the cell list or any cell's result. Checkpoint
// and resume use it as the cell-identity contract: a journal written for
// one fingerprint is rejected by any grid with another, so stale
// checkpoints can never smuggle results into a changed sweep. The digest
// is deterministic (JSON marshals struct fields in declaration order and
// map keys sorted).
func (g Grid) Fingerprint() (string, error) {
	b, err := json.Marshal(g)
	if err != nil {
		return "", fmt.Errorf("sweep: fingerprint: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(fingerprintVersion))
	h.Write([]byte{'\n'})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ShardOf maps a cell index to one of m disjoint shards by hashing the
// index with a fixed splitmix64 step (no dependence on the grid seed, the
// worker count, or anything else), so m independent processes — or hosts
// — each running their own shard cover the grid exactly once. Hashing
// rather than striding spreads the expensive large-n cells evenly: grids
// enumerate sizes contiguously, so contiguous ranges would load-skew.
func ShardOf(index, shards int) int {
	if shards <= 1 {
		return 0
	}
	z := (uint64(index) + 1) * 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(shards))
}

// ShardSelect returns the cell predicate for shard index of count — the
// one implementation of shard membership every shard-aware call site
// (run selection, checkpoint service, CLI banner counting) shares.
func ShardSelect(index, count int) func(Cell) bool {
	return func(c Cell) bool { return ShardOf(c.Index, count) == index }
}

// cellSeed derives a cell's seed from the grid seed and the cell index
// with one splitmix64 step, so seeds depend only on (grid seed, index) —
// never on which worker runs the cell or in which order.
func cellSeed(base uint64, index int) uint64 {
	z := base + (uint64(index)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Metric is a JSON-friendly summary of a per-replica measurement. StdDev
// is 0 (not NaN, which JSON cannot carry) when fewer than two samples
// exist.
type Metric struct {
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Median float64 `json:"median"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// metricOf summarises xs, mapping the NaNs of degenerate samples to 0 so
// the result always marshals.
func metricOf(xs []float64) Metric {
	if len(xs) == 0 {
		return Metric{}
	}
	s := stats.Summarize(xs)
	m := Metric{
		Count:  s.N,
		Mean:   s.Mean,
		StdDev: s.StdDev,
		Min:    s.Min,
		Max:    s.Max,
		Median: s.Median,
		P90:    s.P90,
		P99:    s.P99,
	}
	if m.StdDev != m.StdDev { // NaN for single-sample cells
		m.StdDev = 0
	}
	return m
}

// ReplicaOutcome is one replica's contribution to a cell result — the
// exact values runCell folds into the cell accumulators, so a cell
// rebuilt by replaying journaled outcomes and then running the remaining
// replicas is byte-identical to one run uninterrupted. Duration is the
// paper's duration + 1 (meaningful only when Terminated).
type ReplicaOutcome struct {
	Terminated    bool    `json:"terminated"`
	Duration      float64 `json:"duration"`
	Interactions  float64 `json:"interactions"`
	Transmissions int     `json:"transmissions"`
}

// CellResult is one completed cell: how many replicas terminated and the
// distribution of their costs. Duration counts interactions up to and
// including the last transmission (the paper's duration + 1) over the
// terminated replicas only; Interactions counts consumed interactions
// over all replicas.
type CellResult struct {
	Cell
	Replicas      int    `json:"replicas"`
	Terminated    int    `json:"terminated"`
	Transmissions int    `json:"transmissions"`
	Duration      Metric `json:"duration"`
	Interactions  Metric `json:"interactions"`

	// durW carries the cell's duration accumulator to the fleet totals
	// without re-deriving it from the lossy Metric.
	durW stats.Welford
}

// DurationAcc returns the cell's exact duration accumulator — the state
// TotalsOf folds, which the rounded Duration metric cannot reconstruct.
// Checkpoints journal it alongside the result so a resumed or merged
// sweep reproduces the fleet totals bit-for-bit.
func (r *CellResult) DurationAcc() stats.Welford { return r.durW }

// SetDurationAcc restores the accumulator DurationAcc snapshotted, when a
// cell result is rebuilt from a checkpoint record.
func (r *CellResult) SetDurationAcc(w stats.Welford) { r.durW = w }

// Totals summarises a whole sweep, computed by merging the per-cell
// accumulators in cell order (so it, too, is worker-count independent).
type Totals struct {
	Cells        int     `json:"cells"`
	Runs         int     `json:"runs"`
	Terminated   int     `json:"terminated"`
	Interactions float64 `json:"interactions"`
	Duration     Metric  `json:"duration"`
}

// TotalsOf folds cell results into fleet totals in slice order. Callers
// wanting totals byte-identical to an uninterrupted run — the checkpoint
// resume and shard merge paths — must pass the results sorted by cell
// index: Welford merges are exact only when replayed in the same order,
// and cell-index order is the one Run uses.
func TotalsOf(results []CellResult) Totals {
	t := Totals{Cells: len(results)}
	var w stats.Welford
	for i := range results {
		r := &results[i]
		t.Runs += r.Replicas
		t.Terminated += r.Terminated
		t.Interactions += r.Interactions.Mean * float64(r.Interactions.Count)
		w.Merge(&r.durW)
	}
	if w.N() > 0 {
		t.Duration = Metric{Count: w.N(), Mean: w.Mean(), StdDev: w.StdDev(), Min: w.Min(), Max: w.Max()}
		if t.Duration.StdDev != t.Duration.StdDev {
			t.Duration.StdDev = 0
		}
	}
	return t
}
