package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// ReadResults decodes a stream of CellResult JSON lines — the format
// cmd/dodasweep writes to stdout and the merge subcommand re-emits — back
// into typed results, so saved sweep output can feed the analysis layer
// without re-running the grid. A trailing Totals line (the -summary
// flag's last line) is recognised and skipped; blank lines are ignored;
// anything else that is not a cell result is an error.
//
// Results read this way carry everything the JSON carries — which is
// everything except the exact duration accumulator (an unexported field
// only checkpoints journal). TotalsOf over read results therefore
// reproduces counts exactly but duration moments only to Metric
// precision; consumers needing bit-exact totals must read a checkpoint
// (sweepd.ReadCheckpoint / sweepd.LoadFleet) instead.
func ReadResults(r io.Reader) ([]CellResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []CellResult
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		// A cell line always carries "index" and "scenario"; the totals
		// line carries neither. Probe before committing to a decode so a
		// totals line is skipped rather than misread as a zero cell.
		var probe struct {
			Index    *int             `json:"index"`
			Scenario *json.RawMessage `json:"scenario"`
			Cells    *int             `json:"cells"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("sweep: results line %d: %w", lineNo, err)
		}
		if probe.Index == nil || probe.Scenario == nil {
			if probe.Cells != nil {
				continue // the -summary totals line
			}
			return nil, fmt.Errorf("sweep: results line %d is not a cell result", lineNo)
		}
		var res CellResult
		if err := json.Unmarshal(line, &res); err != nil {
			return nil, fmt.Errorf("sweep: results line %d: %w", lineNo, err)
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sweep: reading results: %w", err)
	}
	return out, nil
}
