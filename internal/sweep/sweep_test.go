package sweep

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func testGrid() Grid {
	return Grid{
		Scenarios: []ScenarioRef{
			{Name: "uniform"},
			{Name: "zipf", Params: map[string]string{"alpha": "1"}},
			{Name: "community", Params: map[string]string{"communities": "2", "p-intra": "0.8"}},
		},
		Algorithms: []string{"waiting", "gathering"},
		Sizes:      []int{6, 10},
		Replicas:   3,
		Seed:       21,
	}
}

func TestGridCellsExpansionAndSeeds(t *testing.T) {
	g := testGrid()
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3*2*2 {
		t.Fatalf("%d cells, want 12", len(cells))
	}
	seen := map[uint64]bool{}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
		if c.Seed != cellSeed(g.Seed, i) {
			t.Errorf("cell %d seed not derived from index", i)
		}
		if seen[c.Seed] {
			t.Errorf("cell %d seed collides", i)
		}
		seen[c.Seed] = true
	}
	// Expansion order is scenario-major, then algorithm, then size.
	if cells[0].Scenario.Name != "uniform" || cells[0].Algorithm != "waiting" || cells[0].N != 6 {
		t.Errorf("cell 0 = %+v", cells[0])
	}
	if cells[1].N != 10 || cells[2].Algorithm != "gathering" || cells[4].Scenario.Name != "zipf" {
		t.Errorf("unexpected expansion order: %+v", cells[:5])
	}
}

func TestGridValidation(t *testing.T) {
	base := testGrid()
	for name, mutate := range map[string]func(*Grid){
		"no scenarios":      func(g *Grid) { g.Scenarios = nil },
		"no algorithms":     func(g *Grid) { g.Algorithms = nil },
		"no sizes":          func(g *Grid) { g.Sizes = nil },
		"zero replicas":     func(g *Grid) { g.Replicas = 0 },
		"negative cap":      func(g *Grid) { g.MaxInteractions = -1 },
		"unknown scenario":  func(g *Grid) { g.Scenarios = []ScenarioRef{{Name: "bogus"}} },
		"unknown algorithm": func(g *Grid) { g.Algorithms = []string{"bogus"} },
		"tiny size":         func(g *Grid) { g.Sizes = []int{1} },
	} {
		g := base
		mutate(&g)
		if _, err := g.Cells(); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

// TestRunWorkerCountInvariant is the library-level half of the sharding
// acceptance test: identical results for 1, 3 and 8 workers, compared
// structurally (including the unexported accumulator) and after JSON
// round-tripping.
func TestRunWorkerCountInvariant(t *testing.T) {
	g := testGrid()
	var base []CellResult
	var baseTotals Totals
	for _, workers := range []int{1, 3, 8} {
		results, totals, err := Run(g, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			base, baseTotals = results, totals
			continue
		}
		if !reflect.DeepEqual(results, base) {
			t.Errorf("workers=%d results differ from sequential", workers)
		}
		if !reflect.DeepEqual(totals, baseTotals) {
			t.Errorf("workers=%d totals differ from sequential", workers)
		}
	}
	if baseTotals.Cells != 12 || baseTotals.Runs != 36 {
		t.Errorf("totals = %+v", baseTotals)
	}
	if baseTotals.Terminated != baseTotals.Runs {
		t.Errorf("only %d/%d runs terminated", baseTotals.Terminated, baseTotals.Runs)
	}
}

// TestRunStreamsInCellOrder checks the OnResult reorder buffer.
func TestRunStreamsInCellOrder(t *testing.T) {
	var streamed []int
	results, _, err := Run(testGrid(), Options{
		Workers:  4,
		OnResult: func(r CellResult) error { streamed = append(streamed, r.Index); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(results) {
		t.Fatalf("streamed %d of %d cells", len(streamed), len(results))
	}
	for i, idx := range streamed {
		if idx != i {
			t.Fatalf("streamed order %v", streamed)
		}
	}
}

// TestRunKnowledgeAlgorithmFallback exercises the stream-backed slow path
// (waiting-greedy needs the meetTime oracle, so cells cannot use the
// generator fast path).
func TestRunKnowledgeAlgorithmFallback(t *testing.T) {
	results, totals, err := Run(Grid{
		Scenarios:  []ScenarioRef{{Name: "uniform"}},
		Algorithms: []string{"waiting-greedy"},
		Sizes:      []int{8},
		Replicas:   2,
		Seed:       5,
	}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || totals.Terminated != 2 {
		t.Fatalf("results = %+v, totals = %+v", results, totals)
	}
}

func TestCellResultMarshalsCleanly(t *testing.T) {
	results, _, err := Run(Grid{
		Scenarios:  []ScenarioRef{{Name: "uniform"}},
		Algorithms: []string{"gathering"},
		Sizes:      []int{6},
		Replicas:   1, // single replica: StdDev would be NaN if unsanitised
		Seed:       2,
	}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(results[0])
	if err != nil {
		t.Fatalf("cell result does not marshal: %v", err)
	}
	if !strings.Contains(string(raw), `"stddev":0`) {
		t.Errorf("single-replica stddev not sanitised: %s", raw)
	}
}

func TestParseScenarios(t *testing.T) {
	refs, err := ParseScenarios(" uniform; zipf:alpha=2 ;community:communities=4,p-intra=0.9")
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 3 || refs[1].Params["alpha"] != "2" || refs[2].Params["p-intra"] != "0.9" {
		t.Fatalf("refs = %+v", refs)
	}
	if refs[1].String() != "zipf:alpha=2" {
		t.Errorf("String() = %q", refs[1].String())
	}
	if got := refs[2].String(); got != "community:communities=4,p-intra=0.9" {
		t.Errorf("String() = %q (params must sort)", got)
	}
	for _, bad := range []string{"", " ; ", "zipf:novalue"} {
		if _, err := ParseScenarios(bad); err == nil {
			t.Errorf("ParseScenarios(%q) should fail", bad)
		}
	}
}

// TestFingerprintPinsEveryGridField: any field that shapes the cell list
// or a cell's result must change the fingerprint, and equal grids must
// fingerprint identically — the stale-checkpoint rejection contract.
func TestFingerprintPinsEveryGridField(t *testing.T) {
	base := testGrid()
	fp, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp2, _ := testGrid().Fingerprint(); fp2 != fp {
		t.Error("equal grids fingerprint differently")
	}
	for name, mutate := range map[string]func(*Grid){
		"seed":            func(g *Grid) { g.Seed++ },
		"replicas":        func(g *Grid) { g.Replicas++ },
		"sizes":           func(g *Grid) { g.Sizes = append(g.Sizes, 14) },
		"algorithms":      func(g *Grid) { g.Algorithms = g.Algorithms[:1] },
		"scenario params": func(g *Grid) { g.Scenarios[1].Params = map[string]string{"alpha": "2"} },
		"scenario list":   func(g *Grid) { g.Scenarios = g.Scenarios[:2] },
		"cap":             func(g *Grid) { g.MaxInteractions = 99 },
		"provenance":      func(g *Grid) { g.Provenance = "count" },
	} {
		g := testGrid()
		mutate(&g)
		got, err := g.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got == fp {
			t.Errorf("mutating %s did not change the fingerprint", name)
		}
	}
}

// TestShardOfDisjointCover: every cell index lands in exactly one shard,
// and shard 0 of 1 is everything.
func TestShardOfDisjointCover(t *testing.T) {
	for idx := 0; idx < 1000; idx++ {
		if ShardOf(idx, 1) != 0 {
			t.Fatalf("ShardOf(%d, 1) = %d", idx, ShardOf(idx, 1))
		}
		for _, m := range []int{2, 3, 7, 64} {
			s := ShardOf(idx, m)
			if s < 0 || s >= m {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", idx, m, s)
			}
		}
	}
}

// TestRunSelectRestrictsCells: a selected subset runs exactly those
// cells, with results byte-identical to the same cells from a full run —
// the cell-identity contract shard processes rely on.
func TestRunSelectRestrictsCells(t *testing.T) {
	g := testGrid()
	full, _, err := Run(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sel := func(c Cell) bool { return c.Index%3 == 1 }
	part, _, err := Run(g, Options{Workers: 2, Select: sel})
	if err != nil {
		t.Fatal(err)
	}
	var want []CellResult
	for _, r := range full {
		if r.Index%3 == 1 {
			want = append(want, r)
		}
	}
	if !reflect.DeepEqual(part, want) {
		t.Errorf("selected results differ from the same cells of a full run")
	}
	// Empty selection is legal and returns nothing.
	none, totals, err := Run(g, Options{Select: func(Cell) bool { return false }})
	if err != nil || len(none) != 0 || totals.Cells != 0 {
		t.Errorf("empty selection: %d results, %+v, %v", len(none), totals, err)
	}
}

// TestRunOnResultErrorPropagates: an emitter failure must abort the sweep
// and surface as Run's error — never silently drop cells.
func TestRunOnResultErrorPropagates(t *testing.T) {
	calls := 0
	_, _, err := Run(testGrid(), Options{
		Workers: 4,
		OnResult: func(CellResult) error {
			calls++
			if calls == 3 {
				return errBoom
			}
			return nil
		},
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want the emitter error", err)
	}
	if calls > 3 {
		t.Errorf("emitter called %d times after failing on call 3", calls)
	}
}

var errBoom = fmt.Errorf("boom: short write")
