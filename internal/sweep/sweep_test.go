package sweep

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func testGrid() Grid {
	return Grid{
		Scenarios: []ScenarioRef{
			{Name: "uniform"},
			{Name: "zipf", Params: map[string]string{"alpha": "1"}},
			{Name: "community", Params: map[string]string{"communities": "2", "p-intra": "0.8"}},
		},
		Algorithms: []string{"waiting", "gathering"},
		Sizes:      []int{6, 10},
		Replicas:   3,
		Seed:       21,
	}
}

func TestGridCellsExpansionAndSeeds(t *testing.T) {
	g := testGrid()
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3*2*2 {
		t.Fatalf("%d cells, want 12", len(cells))
	}
	seen := map[uint64]bool{}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
		if c.Seed != cellSeed(g.Seed, i) {
			t.Errorf("cell %d seed not derived from index", i)
		}
		if seen[c.Seed] {
			t.Errorf("cell %d seed collides", i)
		}
		seen[c.Seed] = true
	}
	// Expansion order is scenario-major, then algorithm, then size.
	if cells[0].Scenario.Name != "uniform" || cells[0].Algorithm != "waiting" || cells[0].N != 6 {
		t.Errorf("cell 0 = %+v", cells[0])
	}
	if cells[1].N != 10 || cells[2].Algorithm != "gathering" || cells[4].Scenario.Name != "zipf" {
		t.Errorf("unexpected expansion order: %+v", cells[:5])
	}
}

func TestGridValidation(t *testing.T) {
	base := testGrid()
	for name, mutate := range map[string]func(*Grid){
		"no scenarios":      func(g *Grid) { g.Scenarios = nil },
		"no algorithms":     func(g *Grid) { g.Algorithms = nil },
		"no sizes":          func(g *Grid) { g.Sizes = nil },
		"zero replicas":     func(g *Grid) { g.Replicas = 0 },
		"negative cap":      func(g *Grid) { g.MaxInteractions = -1 },
		"unknown scenario":  func(g *Grid) { g.Scenarios = []ScenarioRef{{Name: "bogus"}} },
		"unknown algorithm": func(g *Grid) { g.Algorithms = []string{"bogus"} },
		"tiny size":         func(g *Grid) { g.Sizes = []int{1} },
	} {
		g := base
		mutate(&g)
		if _, err := g.Cells(); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

// TestRunWorkerCountInvariant is the library-level half of the sharding
// acceptance test: identical results for 1, 3 and 8 workers, compared
// structurally (including the unexported accumulator) and after JSON
// round-tripping.
func TestRunWorkerCountInvariant(t *testing.T) {
	g := testGrid()
	var base []CellResult
	var baseTotals Totals
	for _, workers := range []int{1, 3, 8} {
		results, totals, err := Run(g, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			base, baseTotals = results, totals
			continue
		}
		if !reflect.DeepEqual(results, base) {
			t.Errorf("workers=%d results differ from sequential", workers)
		}
		if !reflect.DeepEqual(totals, baseTotals) {
			t.Errorf("workers=%d totals differ from sequential", workers)
		}
	}
	if baseTotals.Cells != 12 || baseTotals.Runs != 36 {
		t.Errorf("totals = %+v", baseTotals)
	}
	if baseTotals.Terminated != baseTotals.Runs {
		t.Errorf("only %d/%d runs terminated", baseTotals.Terminated, baseTotals.Runs)
	}
}

// TestRunStreamsInCellOrder checks the OnResult reorder buffer.
func TestRunStreamsInCellOrder(t *testing.T) {
	var streamed []int
	results, _, err := Run(testGrid(), Options{
		Workers:  4,
		OnResult: func(r CellResult) { streamed = append(streamed, r.Index) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(results) {
		t.Fatalf("streamed %d of %d cells", len(streamed), len(results))
	}
	for i, idx := range streamed {
		if idx != i {
			t.Fatalf("streamed order %v", streamed)
		}
	}
}

// TestRunKnowledgeAlgorithmFallback exercises the stream-backed slow path
// (waiting-greedy needs the meetTime oracle, so cells cannot use the
// generator fast path).
func TestRunKnowledgeAlgorithmFallback(t *testing.T) {
	results, totals, err := Run(Grid{
		Scenarios:  []ScenarioRef{{Name: "uniform"}},
		Algorithms: []string{"waiting-greedy"},
		Sizes:      []int{8},
		Replicas:   2,
		Seed:       5,
	}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || totals.Terminated != 2 {
		t.Fatalf("results = %+v, totals = %+v", results, totals)
	}
}

func TestCellResultMarshalsCleanly(t *testing.T) {
	results, _, err := Run(Grid{
		Scenarios:  []ScenarioRef{{Name: "uniform"}},
		Algorithms: []string{"gathering"},
		Sizes:      []int{6},
		Replicas:   1, // single replica: StdDev would be NaN if unsanitised
		Seed:       2,
	}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(results[0])
	if err != nil {
		t.Fatalf("cell result does not marshal: %v", err)
	}
	if !strings.Contains(string(raw), `"stddev":0`) {
		t.Errorf("single-replica stddev not sanitised: %s", raw)
	}
}

func TestParseScenarios(t *testing.T) {
	refs, err := ParseScenarios(" uniform; zipf:alpha=2 ;community:communities=4,p-intra=0.9")
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 3 || refs[1].Params["alpha"] != "2" || refs[2].Params["p-intra"] != "0.9" {
		t.Fatalf("refs = %+v", refs)
	}
	if refs[1].String() != "zipf:alpha=2" {
		t.Errorf("String() = %q", refs[1].String())
	}
	if got := refs[2].String(); got != "community:communities=4,p-intra=0.9" {
		t.Errorf("String() = %q (params must sort)", got)
	}
	for _, bad := range []string{"", " ; ", "zipf:novalue"} {
		if _, err := ParseScenarios(bad); err == nil {
			t.Errorf("ParseScenarios(%q) should fail", bad)
		}
	}
}
