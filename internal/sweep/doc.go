// Package sweep is the sharded parameter-sweep engine: it expands a
// grid of (scenario × algorithm × node count × seed replicas) over the
// scenario registry into cells, shards the cells across a bounded
// worker pool, and aggregates per-cell statistics — replacing the
// hand-rolled per-adversary loops the experiments and CLIs used to
// carry.
//
// # Determinism and seed derivation
//
// Determinism is the load-bearing property: every cell derives its seed
// from the grid seed and the cell's index alone (one splitmix64 step —
// see cellSeed), and every replica's seed from the cell seed alone, so
// the results are bit-for-bit identical no matter how many workers run
// the sweep or which worker picks up which cell. Cell identity (index,
// seed) is fixed by the full grid before any selection, which is why a
// shard or a resumed subset reproduces exactly the cells an unsharded
// run would have produced.
//
// # Ordering and streaming
//
// Run returns results in cell-index order and delivers them to
// Options.OnResult in that order as soon as each cell and all its
// predecessors have completed, buffering out-of-order completions. An
// OnResult error latches and aborts the sweep: a cell nobody could
// record must never be silently lost.
//
// # Sharding and totals
//
// ShardOf hashes the cell index with a fixed splitmix64 step into m
// disjoint shards, so m independent processes or hosts cover the grid
// exactly once (hashing rather than striding spreads the expensive
// large-n cells evenly). TotalsOf folds the exact per-cell Welford
// accumulators in cell-index order — the order Run uses — which is what
// makes resumed and merged totals bit-identical to an uninterrupted
// run's.
//
// # Performance
//
// Workers reuse one core.Engine each (via Engine.Reset) plus per-worker
// sample buffers, so the steady-state measurement loop does not
// allocate; Grid.Provenance defaults to "auto", dropping from full
// bitset provenance to count-only at AutoProvenanceThreshold nodes.
//
// ReadResults decodes the JSONL stream cmd/dodasweep writes back into
// typed results, so saved output can feed internal/analysis without
// re-running the grid.
package sweep
