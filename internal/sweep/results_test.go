package sweep

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestReadResultsRoundTrip: the JSONL stream Run emits decodes back into
// the same results (through JSON), with a -summary totals line skipped.
func TestReadResultsRoundTrip(t *testing.T) {
	grid := Grid{
		Scenarios:  []ScenarioRef{{Name: "uniform"}},
		Algorithms: []string{"gathering"},
		Sizes:      []int{8, 12},
		Replicas:   3,
		Seed:       5,
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	results, totals, err := Run(grid, Options{OnResult: func(r CellResult) error { return enc.Encode(r) }})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(totals); err != nil {
		t.Fatal(err)
	}

	got, err := ReadResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(results) {
		t.Fatalf("read %d results, want %d", len(got), len(results))
	}
	want, _ := json.Marshal(results)
	have, _ := json.Marshal(got)
	if !bytes.Equal(want, have) {
		t.Errorf("results drifted through the stream:\nwant %s\ngot  %s", want, have)
	}
}

func TestReadResultsRejectsGarbage(t *testing.T) {
	if _, err := ReadResults(strings.NewReader("not json\n")); err == nil {
		t.Error("non-JSON line accepted")
	}
	if _, err := ReadResults(strings.NewReader(`{"foo": 1}` + "\n")); err == nil {
		t.Error("JSON line that is neither cell nor totals accepted")
	}
	got, err := ReadResults(strings.NewReader("\n\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("blank input: got %v, %v; want empty, nil", got, err)
	}
}
