package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"doda/internal/seq"
)

// waitCfg is a forever-running instance (waiting declines off-sink
// interactions), so eviction tests control exactly when it ends.
func waitCfg(name string, n int) InstanceConfig {
	return InstanceConfig{Name: name, N: n, Algorithm: "waiting", Agg: "min"}
}

func mustState(t *testing.T, inst *Instance) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := inst.State(ctx)
	if err != nil {
		t.Fatalf("State(%s): %v", inst.Name(), err)
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func feedSeq(t *testing.T, inst *Instance, its []seq.Interaction, seqNo uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	h, err := inst.Ingest(ctx, its, seqNo)
	if err != nil {
		t.Fatalf("Ingest(%s, seq %d): %v", inst.Name(), seqNo, err)
	}
	if err := h.Wait(ctx); err != nil {
		t.Fatalf("apply(%s, seq %d): %v", inst.Name(), seqNo, err)
	}
}

// TestEvictRehydrateInvisible: a forced eviction must not change what
// the instance reports — state before eviction, after rehydration, and
// after further ingest all match a never-evicted twin byte for byte,
// and the seq contract (dup acks) survives the cycle.
func TestEvictRehydrateInvisible(t *testing.T) {
	s := newTestServer(t, Options{Dir: t.TempDir()})
	ref := newTestServer(t, Options{Dir: t.TempDir()})

	const n = 16
	inst := mustRegister(t, s, waitCfg("evictee", n))
	twin := mustRegister(t, ref, waitCfg("evictee", n))

	b1 := offSinkBatch(n, 40, 1)
	feedSeq(t, inst, b1, 1)
	feedSeq(t, twin, b1, 1)

	before := mustState(t, inst)
	if err := s.Evict("evictee"); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if st := inst.Status(); st.State != "evicted" || st.MemBytes != 0 {
		t.Fatalf("after evict: state %s, mem %d", st.State, st.MemBytes)
	}

	// Dup retry of an acked batch against the evicted instance must
	// rehydrate and ack idempotently.
	feedSeq(t, inst, b1, 1)
	if got := mustState(t, inst); string(got) != string(before) {
		t.Fatalf("state changed across evict/rehydrate:\n before %s\n after  %s", before, got)
	}

	// Further progress tracks the never-evicted twin.
	b2 := offSinkBatch(n, 40, 2)
	feedSeq(t, inst, b2, 2)
	feedSeq(t, twin, b2, 2)
	if got, want := mustState(t, inst), mustState(t, twin); string(got) != string(want) {
		t.Fatalf("post-rehydrate state diverged from twin:\n got  %s\n want %s", got, want)
	}
	if st := inst.Status(); st.State != "running" || st.LastSeq != 2 || st.MemBytes == 0 {
		t.Fatalf("after rehydrate: %+v", st)
	}
}

// TestStatusCountsAcrossEvictCycle: /v1/status distinguishes
// live/evicted/total, and the counts move correctly through an
// evict→rehydrate cycle (the regression this PR fixes).
func TestStatusCountsAcrossEvictCycle(t *testing.T) {
	s := newTestServer(t, Options{Dir: t.TempDir()})
	const n = 8
	a := mustRegister(t, s, waitCfg("a", n))
	mustRegister(t, s, waitCfg("b", n))

	check := func(wantLive, wantEvicted int) {
		t.Helper()
		st := s.Status()
		if st.Live != wantLive || st.Evicted != wantEvicted || st.Total != wantLive+wantEvicted {
			t.Fatalf("status counts live=%d evicted=%d total=%d, want %d/%d/%d",
				st.Live, st.Evicted, st.Total, wantLive, wantEvicted, wantLive+wantEvicted)
		}
	}
	check(2, 0)
	if err := s.Evict("a"); err != nil {
		t.Fatal(err)
	}
	check(1, 1)
	feedSeq(t, a, offSinkBatch(n, 8, 3), 1) // transparent rehydration
	check(2, 0)
}

// TestLiveCapLRU: with MaxLiveInstances=2, registering and touching
// instances evicts the least-recently-touched one; every instance stays
// reachable and correct through the churn.
func TestLiveCapLRU(t *testing.T) {
	s := newTestServer(t, Options{Dir: t.TempDir(), MaxLiveInstances: 2})
	const n = 8
	insts := make([]*Instance, 4)
	for i := range insts {
		insts[i] = mustRegister(t, s, waitCfg(fmt.Sprintf("i%d", i), n))
	}
	st := s.Status()
	if st.Live != 2 || st.Evicted != 2 || st.Total != 4 {
		t.Fatalf("after 4 registrations under cap 2: live=%d evicted=%d total=%d", st.Live, st.Evicted, st.Total)
	}
	// Touch every instance round-robin; each touch may evict another,
	// but seq-stamped ingest keeps all of them exactly-once.
	for round := 1; round <= 3; round++ {
		for i, inst := range insts {
			feedSeq(t, inst, offSinkBatch(n, 8, uint64(16*round+i)), uint64(round))
		}
	}
	st = s.Status()
	if st.Live > 2 {
		t.Fatalf("cap 2 exceeded: %d live", st.Live)
	}
	for _, inst := range insts {
		if got := inst.Status().LastSeq; got != 3 {
			t.Fatalf("%s lastSeq = %d, want 3", inst.Name(), got)
		}
	}
}

// TestIdleTTLEviction: an untouched instance is evicted by the watchdog
// after IdleTTL, then rehydrates on touch.
func TestIdleTTLEviction(t *testing.T) {
	s := newTestServer(t, Options{
		Dir:          t.TempDir(),
		IdleTTL:      50 * time.Millisecond,
		StallTimeout: time.Second,
	})
	const n = 8
	inst := mustRegister(t, s, waitCfg("idler", n))
	feedSeq(t, inst, offSinkBatch(n, 8, 9), 1)

	deadline := time.Now().Add(10 * time.Second)
	for inst.Status().State != "evicted" {
		if time.Now().After(deadline) {
			t.Fatalf("instance not evicted after TTL; status %+v", inst.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}
	feedSeq(t, inst, offSinkBatch(n, 8, 10), 2)
	if st := inst.Status(); st.State != "running" || st.LastSeq != 2 {
		t.Fatalf("after rehydrate: %+v", st)
	}
}

// TestEvictDoneInstance: finished instances evict too (result released)
// and rehydrate with the result recomputed from the WAL.
func TestEvictDoneInstance(t *testing.T) {
	s := newTestServer(t, Options{Dir: t.TempDir()})
	const n = 4
	inst := mustRegister(t, s, gatherCfg("fin", n))
	// Drive to termination: gather everything into the sink.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var sn uint64
	for inst.Status().State == "running" {
		sn++
		h, err := inst.Ingest(ctx, []seq.Interaction{it(1, 0), it(2, 0), it(3, 0)}, sn)
		if err != nil {
			break
		}
		h.Wait(ctx)
	}
	if st := inst.Status(); st.State != "done" {
		t.Fatalf("instance did not finish: %+v", st)
	}
	want, err := inst.Result()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Evict("fin"); err != nil {
		t.Fatal(err)
	}
	got, err := inst.Result() // rehydrates
	if err != nil {
		t.Fatal(err)
	}
	if got.SinkValue.Num != want.SinkValue.Num || got.Terminated != want.Terminated {
		t.Fatalf("result changed across evict: got %+v want %+v", got, want)
	}
	if st := inst.Status(); st.State != "done" {
		t.Fatalf("after rehydrate: %+v", st)
	}
}

// TestEvictionRequiresDir: eviction without durability is a config
// error, not a silent data-loss mode.
func TestEvictionRequiresDir(t *testing.T) {
	if _, err := NewServer(Options{MaxLiveInstances: 4}); err == nil {
		t.Fatal("NewServer with cap and no Dir should fail")
	}
	if _, err := NewServer(Options{IdleTTL: time.Second}); err == nil {
		t.Fatal("NewServer with IdleTTL and no Dir should fail")
	}
}

// TestColdRecoveryUnderCap: restarting a server over many journaled
// instances hydrates only up to the cap; the rest come up evicted and
// rehydrate on demand with their state intact.
func TestColdRecoveryUnderCap(t *testing.T) {
	dir := t.TempDir()
	const n, total, cap_ = 8, 6, 2
	states := make(map[string][]byte)
	{
		s := newTestServer(t, Options{Dir: dir})
		for i := 0; i < total; i++ {
			name := fmt.Sprintf("c%d", i)
			inst := mustRegister(t, s, waitCfg(name, n))
			feedSeq(t, inst, offSinkBatch(n, 16, uint64(i+100)), 1)
			states[name] = mustState(t, inst)
		}
		s.Close()
	}
	s := newTestServer(t, Options{Dir: dir, MaxLiveInstances: cap_})
	st := s.Status()
	if st.Total != total || st.Live > cap_ {
		t.Fatalf("cold recovery: live=%d evicted=%d total=%d (cap %d)", st.Live, st.Evicted, st.Total, cap_)
	}
	for name, want := range states {
		inst, ok := s.Get(name)
		if !ok {
			t.Fatalf("instance %s lost across restart", name)
		}
		if got := mustState(t, inst); string(got) != string(want) {
			t.Fatalf("%s state changed across cold restart:\n got  %s\n want %s", name, got, want)
		}
	}
	if st := s.Status(); st.Live > cap_ {
		t.Fatalf("cap breached after touches: %d live", st.Live)
	}
}
