package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"doda/internal/chaos"
	"doda/internal/rng"
	"doda/internal/seq"
)

// chaosWorkload is the scripted batch sequence both the clean and the
// faulted runs feed: uniform interactions over all nodes (sink
// included), so the waiting instance makes real progress and may even
// terminate — both runs must land in the same place regardless.
func chaosWorkload(n, batches, perBatch int, seed uint64) [][]seq.Interaction {
	gen := seq.UniformGen(n, rng.New(seed))
	out := make([][]seq.Interaction, batches)
	t := 0
	for i := range out {
		b := make([]seq.Interaction, perBatch)
		for k := range b {
			b[k] = gen(t)
			t++
		}
		out[i] = b
	}
	return out
}

// feedAll ingests the workload with explicit sequence stamps, acking
// each batch before the next, and returns the final EngineState JSON.
// ErrInstanceDone (the run terminated mid-workload) ends the feed — it
// happens at the same batch in every run because Feed is deterministic.
func feedAll(ctx context.Context, t *testing.T, inst *Instance, workload [][]seq.Interaction) []byte {
	t.Helper()
	for i, batch := range workload {
		h, err := inst.Ingest(ctx, batch, uint64(i+1))
		if errors.Is(err, ErrInstanceDone) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Wait(ctx); err != nil && !errors.Is(err, ErrInstanceDone) {
			t.Fatal(err)
		}
	}
	st, err := inst.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// cleanFinalState runs the workload on a fault-free ephemeral server.
func cleanFinalState(t *testing.T, cfg InstanceConfig, workload [][]seq.Interaction) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s := newTestServer(t, Options{})
	inst := mustRegister(t, s, cfg)
	return feedAll(ctx, t, inst, workload)
}

// TestChaosFSRecoveryByteIdentical is the tentpole robustness assertion:
// a server suffering injected disk faults (short writes, failed fsyncs,
// failed and torn renames) plus repeated abrupt restarts — both
// scheduled and forced by simulated power cuts — recovers its instance
// to a state byte-identical to a run that saw no faults at all.
func TestChaosFSRecoveryByteIdentical(t *testing.T) {
	cfg := InstanceConfig{Name: "w", N: 32, Algorithm: "waiting", Agg: "min"}
	workload := chaosWorkload(32, 50, 8, 1234)
	want := cleanFinalState(t, cfg, workload)

	for _, seed := range []uint64{1, 2, 3, 7} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			ffs := chaos.NewFaultFS(nil, chaos.FSOptions{
				Seed:       seed,
				WriteFail:  0.08,
				SyncFail:   0.08,
				RenameFail: 0.08,
				TornRename: 0.05,
				MaxFaults:  30,
			})
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()

			open := func() *Server {
				var lastErr error
				for {
					if err := ctx.Err(); err != nil {
						t.Fatalf("could not reopen server: %v (last open error: %v)", err, lastErr)
					}
					ffs.Revive()
					s, err := NewServer(Options{Dir: dir, FS: ffs, SnapshotEvery: 16})
					if err == nil {
						return s
					}
					lastErr = err
				}
			}
			s := open()
			defer func() { s.Close() }()

			// The registration itself must survive injected faults.
			for {
				_, err := s.Register(cfg)
				if err == nil {
					break
				}
				if _, ok := s.Get(cfg.Name); ok {
					break
				}
				s.Close()
				s = open()
			}

			restart := func() {
				s.Close()
				s = open()
			}

			sinceRestart := 0
			for i := 0; i < len(workload); {
				if ctx.Err() != nil {
					t.Fatal("timed out feeding workload")
				}
				// Forced abrupt restart every few batches: the crash-replay
				// path runs even on seeds whose faults never latch a power
				// cut.
				if sinceRestart >= 9 {
					restart()
					sinceRestart = 0
				}
				inst, ok := s.Get(cfg.Name)
				if !ok {
					// The registration was acknowledged, so a recovered
					// server that lacks the instance has discarded durable
					// state — exactly the bug this test exists to catch.
					t.Fatalf("batch %d: acknowledged instance missing after restart", i)
				}
				h, err := inst.TryIngest(workload[i], uint64(i+1))
				if err == nil {
					err = h.Wait(ctx)
				}
				switch {
				case err == nil, errors.Is(err, ErrInstanceDone):
					i++
					sinceRestart++
					if errors.Is(err, ErrInstanceDone) {
						i = len(workload)
					}
				case errors.Is(err, ErrBackpressure), errors.Is(err, ErrWAL):
					// Transient: the worker drains or rewrites; retry.
					time.Sleep(time.Millisecond)
				case errors.Is(err, ErrInstanceFailed), errors.Is(err, ErrInstanceClosed),
					errors.Is(err, chaos.ErrCrashed):
					restart()
					sinceRestart = 0
				default:
					t.Fatalf("batch %d: unexpected error: %v", i, err)
				}
			}

			// One last crash/recover cycle, then read the final state.
			restart()
			inst, ok := s.Get(cfg.Name)
			if !ok {
				t.Fatal("instance lost after final restart")
			}
			st, err := inst.State(ctx)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("state after %d injected faults diverged from fault-free run:\n got %s\nwant %s",
					ffs.Faults(), got, want)
			}
			if ffs.Faults() == 0 {
				t.Fatal("schedule injected no faults — the run proved nothing")
			}
		})
	}
}

// TestChaosTransportExactlyOnce drives the HTTP API through an unreliable
// client transport — connection resets, injected 503s, and delivered-but-
// lost responses (the case that makes blind retries dangerous) — and
// asserts sequence-stamped retries keep ingestion exactly-once: the final
// state matches a fault-free run byte for byte.
func TestChaosTransportExactlyOnce(t *testing.T) {
	cfg := InstanceConfig{Name: "w", N: 24, Algorithm: "waiting", Agg: "min"}
	workload := chaosWorkload(24, 40, 6, 77)
	want := cleanFinalState(t, cfg, workload)

	srv := newTestServer(t, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tr := chaos.NewTransport(nil, chaos.TransportOptions{
		Seed:         5,
		Reset:        0.15,
		Err5xx:       0.10,
		DropResponse: 0.15,
		MaxFaults:    60,
	})
	client := &http.Client{Transport: tr, Timeout: 10 * time.Second}
	deadline := time.Now().Add(60 * time.Second)

	// do retries one request until a terminal status arrives.
	do := func(method, path string, body func() io.Reader) (int, []byte) {
		for {
			if time.Now().After(deadline) {
				t.Fatalf("%s %s: retries exhausted", method, path)
			}
			req, err := http.NewRequest(method, ts.URL+path, body())
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				continue // injected reset or dropped response: retry
			}
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				continue
			}
			switch resp.StatusCode {
			case http.StatusServiceUnavailable, http.StatusTooManyRequests:
				continue // injected 503 or genuine backpressure: retry
			}
			return resp.StatusCode, raw
		}
	}

	cfgJSON, _ := json.Marshal(cfg)
	code, body := do("POST", "/v1/instances", func() io.Reader { return bytes.NewReader(cfgJSON) })
	// A lost response can make the retried register see "already exists".
	if code != http.StatusCreated && !(code == http.StatusBadRequest && strings.Contains(string(body), "already exists")) {
		t.Fatalf("register: %d %s", code, body)
	}

	for i, batch := range workload {
		var sb strings.Builder
		for _, it := range batch {
			fmt.Fprintf(&sb, "{\"u\":%d,\"v\":%d}\n", it.U, it.V)
		}
		path := fmt.Sprintf("/v1/instances/w/ingest?seq=%d&wait=1", i+1)
		code, body := do("POST", path, func() io.Reader { return strings.NewReader(sb.String()) })
		if code == http.StatusConflict {
			break // instance finished mid-workload
		}
		if code != http.StatusAccepted {
			t.Fatalf("ingest %d: %d %s", i+1, code, body)
		}
	}

	code, got := do("GET", "/v1/instances/w/state", func() io.Reader { return nil })
	if code != http.StatusOK {
		t.Fatalf("state: %d %s", code, got)
	}
	// The endpoint appends the encoder's newline; normalise both sides.
	if !bytes.Equal(bytes.TrimSpace(got), bytes.TrimSpace(want)) {
		t.Fatalf("state after %d injected transport faults diverged:\n got %s\nwant %s", tr.Faults(), got, want)
	}
	if tr.Faults() == 0 {
		t.Fatal("schedule injected no transport faults — the run proved nothing")
	}
}

// TestWALTornTailDropsOnlyUnacked crashes "mid-append" by tearing bytes
// off the journal tail and asserts recovery keeps every acknowledged
// batch and repairs the file.
func TestWALTornTailDropsOnlyUnacked(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s, err := NewServer(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Register(InstanceConfig{Name: "w", N: 8, Algorithm: "waiting"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		h, err := inst.Ingest(ctx, offSinkBatch(8, 4, uint64(i)), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	want, err := inst.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	s.Close()

	// Tear the last 10 bytes off the journal — a power cut mid-append.
	walPath := filepath.Join(dir, "w", genName(0))
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, Options{Dir: dir})
	inst2, ok := s2.Get("w")
	if !ok {
		t.Fatal("instance not recovered")
	}
	st, err := inst2.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Batches 1 and 2 were acked and must survive; batch 3's record was
	// torn, so the recovered state is the state after batch 2 — which is
	// exactly what a client that never got batch 3's ack must assume.
	if st.T != 8 {
		t.Fatalf("recovered t = %d, want 8 (batches 1-2)", st.T)
	}
	// Re-sending batch 3 (the retry a real client performs) converges to
	// the original state.
	h, err := inst2.Ingest(ctx, offSinkBatch(8, 4, 3), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := inst2.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("retried state diverged:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	// The torn file was repaired: it now parses clean.
	if _, repaired, err := parseGen(chaos.Disk, filepath.Join(dir, "w"), genName(0)); err != nil || repaired {
		t.Fatalf("parseGen after repair: repaired=%v err=%v", repaired, err)
	}
}

// TestWALGenerationFallback damages the newest generation beyond its
// header+state prefix and asserts recovery falls back to the previous
// one — the invariant that rotation deletes old generations only after
// the new one is durable makes that always possible.
func TestWALGenerationFallback(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// SnapshotEvery=4 forces a rotation per batch.
	s, err := NewServer(Options{Dir: dir, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Register(InstanceConfig{Name: "w", N: 8, Algorithm: "waiting"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		h, err := inst.Ingest(ctx, offSinkBatch(8, 4, uint64(i)), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Reconstruct a mid-rotation crash: the previous generation is still
	// present, the new one tore before its state record became durable.
	idir := filepath.Join(dir, "w")
	names, err := genNames(idir)
	if err != nil || len(names) != 1 {
		t.Fatalf("gens = %v, err = %v", names, err)
	}
	cur := names[0]
	curN, _ := genNumber(cur)
	raw, err := os.ReadFile(filepath.Join(idir, cur))
	if err != nil {
		t.Fatal(err)
	}
	// The torn successor: only half the header line made it.
	nl := bytes.IndexByte(raw, '\n')
	if err := os.WriteFile(filepath.Join(idir, genName(curN+1)), raw[:nl/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, Options{Dir: dir, SnapshotEvery: 4})
	inst2, ok := s2.Get("w")
	if !ok {
		t.Fatal("instance not recovered")
	}
	st, err := inst2.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.T != 8 {
		t.Fatalf("fallback state t = %d, want 8", st.T)
	}
	// The damaged generation was swept.
	names, err = genNames(idir)
	if err != nil || len(names) != 1 {
		t.Fatalf("gens after fallback = %v, err = %v", names, err)
	}
}

// TestWALAppendFailureWedgesThenRecovers exhausts one injected short
// write and asserts the ErrWAL wedge clears automatically: the worker
// rewrites the log as a fresh generation and admission resumes.
func TestWALAppendFailureWedgesThenRecovers(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Register on the clean disk, then reopen through a schedule whose
	// single short-write fault lands on the first ingest append.
	s0, err := NewServer(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s0.Register(InstanceConfig{Name: "w", N: 8, Algorithm: "waiting"}); err != nil {
		t.Fatal(err)
	}
	s0.Close()
	ffs := chaos.NewFaultFS(nil, chaos.FSOptions{Seed: 1, WriteFail: 1, MaxFaults: 1})
	s, err := NewServer(Options{Dir: dir, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	inst, ok := s.Get("w")
	if !ok {
		t.Fatal("instance not recovered")
	}
	batch := offSinkBatch(8, 4, 1)
	// The single fault budget fires on this append: wedged, not admitted.
	if _, err := inst.TryIngest(batch, 1); !errors.Is(err, ErrWAL) {
		t.Fatalf("first ingest err = %v, want ErrWAL", err)
	}
	// The blocking path rides out the rewrite and succeeds.
	h, err := inst.Ingest(ctx, batch, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if got := ffs.Faults(); got != 1 {
		t.Fatalf("faults = %d, want 1", got)
	}
	if st := inst.Status(); st.State != "running" || st.LastSeq != 1 {
		t.Fatalf("status = %+v", st)
	}
}
