// Package serve is the continuous aggregation service: a long-running
// server multiplexing many concurrent DODA aggregation instances over the
// push-mode engine (core.Begin/Feed/Finish), in the style of continuous
// aggregate queries over a dynamic graph. Interactions arrive as a live
// stream — JSONL over HTTP or in-process Ingest calls — are journaled,
// queued, and applied asynchronously by one worker goroutine per
// instance, which acknowledges completion through a Handle.
//
// # Durability contract
//
// Every instance owns a write-ahead log of crc-guarded record lines (the
// same framing the sweepd checkpoint journal uses) in its own directory:
// a header record naming the instance configuration, a state record
// holding a core.EngineState snapshot, then one record per accepted
// ingest batch. The acknowledgement order is strict:
//
//	admission (queue slot reserved) → WAL append + fsync → enqueue → ack
//
// so an acknowledged batch is durable before the caller learns about it,
// and a batch that was refused admission is never journaled. Periodically
// the worker rotates the log: a new generation file is written atomically
// (tmp + fsync + rename + directory fsync, sweepd-style) holding the
// current engine snapshot plus all journaled-but-unapplied batches, and
// only after the new generation is durable are older generations deleted.
// Recovery therefore always finds a complete generation: the newest one
// that parses wins, a torn tail (the unsynced last append of a crash) is
// dropped and repaired, and a generation damaged mid-rotation falls back
// to its still-present predecessor. Replaying the snapshot plus the
// ingest tail reproduces the engine state byte-for-byte — Feed is
// deterministic — which the chaos tests assert by diffing EngineState
// JSON against an uninterrupted run.
//
// Exactly-once across retries: callers may stamp batches with a
// contiguous sequence number. A batch at or below the journaled sequence
// is acknowledged idempotently without re-journaling (the retry after a
// lost ack), a gap is rejected. Unstamped batches are assigned the next
// sequence and are at-least-once under retries.
//
// # Backpressure and admission control
//
// Each instance has a bounded pending-operation budget (Options
// MaxPending). Admission is per instance, so one hot instance exhausts
// only its own budget and cannot starve the rest. When the budget is
// full, TryIngest fails fast with ErrBackpressure — the HTTP ingest
// endpoint translates it to 429 Too Many Requests with a Retry-After
// header — while the in-process Ingest blocks until a slot frees or its
// context expires. Nothing is silently dropped: every accepted batch is
// acknowledged, every refused batch is refused loudly.
//
// # Eviction and density
//
// A server is built to hold thousands of registered instances while
// only a bounded working set holds engine memory. Two knobs gate the
// working set (both require a durability directory): MaxLiveInstances
// is a hard cap — registering or rehydrating past it evicts the
// least-recently-touched live instance first — and IdleTTL lets the
// watchdog evict instances untouched for that long. Eviction is
// invisible to clients: the instance's queue is flushed, a final
// rotation journals its snapshot (skipped when nothing was applied —
// every acknowledged batch is already durable in the WAL tail, so a
// failed or skipped rotation degrades to replay cost, never data
// loss), and the engine's arena-backed state is released in O(1). The
// instance stays registered in the "evicted" state (mem_bytes 0 in
// /v1/status, which reports live/evicted/total counts) and the next
// ingest, state read, or result call rehydrates it from its journal —
// byte-identical, with the seq contract intact, so a duplicate retry
// that lands on an evicted instance re-acks exactly as a live one
// would. Cold recovery honors the cap too: a restart over thousands of
// journaled instances validates every journal but hydrates only up to
// MaxLiveInstances engines, bringing the rest up evicted.
//
// Live engine memory is arena-backed (core.Config.Arena): one
// contiguous block per instance sized exactly from (n, provenance
// mode), so a host's memory budget divides cleanly into an instance
// budget — the serve_density section of BENCH_hotpath.json commits the
// measured bytes/instance and instances/GB.
//
// # Failure model
//
// A panic in an instance worker is recovered: the instance is marked
// failed (its queued handles resolve with the failure), the server and
// every other instance keep running. A watchdog marks instances that
// hold pending work without progress for Options.StallTimeout as
// stalled in the status report. A WAL append failure (e.g. injected
// ENOSPC) wedges only the write path: the instance refuses further
// admissions with ErrWAL until the worker rewrites the log as a fresh
// generation, after which admission resumes — the torn tail it leaves
// behind was never acknowledged, so recovery semantics are unchanged.
// Drain performs the graceful SIGTERM sequence: stop admissions, flush
// every queue, take a final snapshot rotation, close the logs.
package serve
