package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"doda/internal/chaos"
	"doda/internal/core"
	"doda/internal/graph"
	"doda/internal/seq"
)

// Options configures a Server.
type Options struct {
	// Dir is the durability root: each instance journals into its own
	// subdirectory. Empty means ephemeral (no WAL, nothing survives a
	// restart).
	Dir string
	// FS is the write-path filesystem seam (nil = the real disk); the
	// chaos tests inject faults through it.
	FS chaos.FS
	// MaxPending bounds each instance's journaled-but-unapplied
	// interaction count — the per-instance admission budget (default
	// 4096).
	MaxPending int
	// SnapshotEvery rotates an instance's WAL after this many applied
	// interactions (default 1024).
	SnapshotEvery int
	// StallTimeout is how long an instance may hold pending work without
	// applying any of it before the watchdog flags it stalled (default
	// 10s).
	StallTimeout time.Duration
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.MaxPending <= 0 {
		o.MaxPending = 4096
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 1024
	}
	if o.StallTimeout <= 0 {
		o.StallTimeout = 10 * time.Second
	}
	if o.FS == nil {
		o.FS = chaos.Disk
	}
}

// ErrDraining reports an operation refused because the server is
// draining.
var ErrDraining = errors.New("serve: server draining")

// Server multiplexes aggregation instances.
type Server struct {
	opt Options

	mu        sync.Mutex
	instances map[string]*Instance
	draining  bool

	watchStop chan struct{}
	watchDone chan struct{}
}

// NewServer builds a server and, when opt.Dir holds instance journals
// from a previous process, recovers every one of them before returning:
// a restarted server resumes exactly where the crash left it.
func NewServer(opt Options) (*Server, error) {
	opt.fill()
	s := &Server{
		opt:       opt,
		instances: make(map[string]*Instance),
		watchStop: make(chan struct{}),
		watchDone: make(chan struct{}),
	}
	if opt.Dir != "" {
		if err := os.MkdirAll(opt.Dir, walDirPerm); err != nil {
			return nil, err
		}
		if err := s.recoverAll(); err != nil {
			return nil, err
		}
	}
	go s.watchdog()
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// recoverAll replays every instance directory under Dir.
func (s *Server) recoverAll() error {
	entries, err := os.ReadDir(s.opt.Dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if !nameRE.MatchString(name) {
			continue
		}
		inst, err := s.recoverInstance(name)
		if errors.Is(err, errNoWAL) {
			// A torn genesis: the registration was never acknowledged
			// (Create only acks after the first generation is durable), so
			// the directory holds no instance — sweep it and move on.
			s.logf("serve: sweeping %s: %v", name, err)
			if rerr := os.RemoveAll(filepath.Join(s.opt.Dir, name)); rerr != nil {
				return rerr
			}
			continue
		}
		if err != nil {
			return fmt.Errorf("serve: recover %s: %w", name, err)
		}
		s.instances[name] = inst
		go inst.worker()
	}
	return nil
}

// recoverInstance rebuilds one instance from its WAL: restore the
// snapshot, replay the journaled tail, reopen for appends.
func (s *Server) recoverInstance(name string) (*Instance, error) {
	dir := filepath.Join(s.opt.Dir, name)
	log, rec, err := recoverWAL(s.opt.FS, dir)
	if err != nil {
		return nil, err
	}
	if rec.cfg.Name != name {
		return nil, fmt.Errorf("wal names instance %q, directory is %q", rec.cfg.Name, name)
	}
	cfg, alg, err := rec.cfg.engineConfig()
	if err != nil {
		return nil, err
	}
	eng := &core.Engine{}
	if err := eng.RestoreStream(cfg, alg, rec.state); err != nil {
		return nil, err
	}
	// Replay the journaled-but-unsnapshotted tail. Feed is deterministic
	// and ignores post-done batches, so the replayed engine is
	// byte-identical to the pre-crash one.
	for _, in := range rec.tail {
		for _, uv := range in.Its {
			if _, err := eng.Feed(seq.Interaction{U: graph.NodeID(uv[0]), V: graph.NodeID(uv[1])}); err != nil {
				return nil, fmt.Errorf("replay batch %d: %w", in.Seq, err)
			}
		}
	}
	lastSeq := rec.lastSeq()
	inst := newInstance(s, rec.cfg, eng, log, lastSeq, lastSeq)
	if eng.StreamDone() {
		res, err := eng.Finish()
		if err != nil {
			return nil, fmt.Errorf("replay verification: %w", err)
		}
		inst.result = res
		inst.state = stateDone
	}
	s.logf("serve: recovered instance %s (seq %d, %s)", name, lastSeq, inst.state)
	return inst, nil
}

// Register creates a new aggregation instance.
func (s *Server) Register(icfg InstanceConfig) (*Instance, error) {
	icfg = icfg.normalized()
	cfg, alg, err := icfg.engineConfig()
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if err := eng.Begin(alg); err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if _, ok := s.instances[icfg.Name]; ok {
		return nil, fmt.Errorf("serve: instance %q already exists", icfg.Name)
	}
	var log *wal
	if s.opt.Dir != "" {
		st, err := eng.StateSnapshot()
		if err != nil {
			return nil, err
		}
		log, err = createWAL(s.opt.FS, filepath.Join(s.opt.Dir, icfg.Name), icfg, st)
		if err != nil {
			return nil, err
		}
	}
	inst := newInstance(s, icfg, eng, log, 0, 0)
	s.instances[icfg.Name] = inst
	go inst.worker()
	return inst, nil
}

// Get returns a registered instance.
func (s *Server) Get(name string) (*Instance, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	inst, ok := s.instances[name]
	return inst, ok
}

// Remove closes and forgets an instance; its journal directory is
// deleted, so this is the explicit "query finished, release it" call.
func (s *Server) Remove(name string) error {
	s.mu.Lock()
	inst, ok := s.instances[name]
	if ok {
		delete(s.instances, name)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: no instance %q", name)
	}
	inst.close()
	if s.opt.Dir != "" {
		return os.RemoveAll(filepath.Join(s.opt.Dir, name))
	}
	return nil
}

// Instances lists the registered instances, name-sorted.
func (s *Server) Instances() []*Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Instance, 0, len(s.instances))
	for _, inst := range s.instances {
		out = append(out, inst)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].cfg.Name < out[k].cfg.Name })
	return out
}

// ServerStatus is the /v1/status document.
type ServerStatus struct {
	Draining  bool             `json:"draining,omitempty"`
	Instances []InstanceStatus `json:"instances"`
}

// Status snapshots every instance.
func (s *Server) Status() ServerStatus {
	s.mu.Lock()
	st := ServerStatus{Draining: s.draining}
	insts := make([]*Instance, 0, len(s.instances))
	for _, inst := range s.instances {
		insts = append(insts, inst)
	}
	s.mu.Unlock()
	sort.Slice(insts, func(i, k int) bool { return insts[i].cfg.Name < insts[k].cfg.Name })
	for _, inst := range insts {
		st.Instances = append(st.Instances, inst.Status())
	}
	return st
}

// Draining reports whether a drain has begun (readyz turns 503).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// watchdog periodically flags instances that hold pending work without
// making progress — a stuck worker shows up in the status report instead
// of silently eating its queue's latency budget.
func (s *Server) watchdog() {
	defer close(s.watchDone)
	tick := time.NewTicker(s.opt.StallTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.watchStop:
			return
		case <-tick.C:
		}
		for _, inst := range s.Instances() {
			inst.mu.Lock()
			if inst.state == stateRunning && inst.pendingOps > 0 &&
				time.Since(inst.lastMove) > s.opt.StallTimeout && !inst.stalled {
				inst.stalled = true
				s.logf("serve: instance %s stalled: %d pending ops, no progress for %v",
					inst.cfg.Name, inst.pendingOps, time.Since(inst.lastMove).Round(time.Millisecond))
			}
			inst.mu.Unlock()
		}
	}
}

// Drain performs the graceful shutdown sequence: stop admissions (and
// registrations), flush every instance queue, take final snapshots, and
// close the journals. Bounded by ctx; instances that cannot flush in
// time report errors but the drain still closes everything.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrDraining
	}
	s.draining = true
	s.mu.Unlock()

	var firstErr error
	for _, inst := range s.Instances() {
		if err := inst.drain(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	close(s.watchStop)
	<-s.watchDone
	return firstErr
}

// Close shuts down without flushing: journaled batches survive in the
// WAL and apply on the next start, but nothing new is accepted and
// pending handles fail. Drain is the graceful variant.
func (s *Server) Close() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	for _, inst := range s.Instances() {
		inst.close()
	}
	if !already {
		close(s.watchStop)
		<-s.watchDone
	}
}
