package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"doda/internal/chaos"
	"doda/internal/core"
	"doda/internal/graph"
	"doda/internal/seq"
)

// Options configures a Server.
type Options struct {
	// Dir is the durability root: each instance journals into its own
	// subdirectory. Empty means ephemeral (no WAL, nothing survives a
	// restart).
	Dir string
	// FS is the write-path filesystem seam (nil = the real disk); the
	// chaos tests inject faults through it.
	FS chaos.FS
	// MaxPending bounds each instance's journaled-but-unapplied
	// interaction count — the per-instance admission budget (default
	// 4096).
	MaxPending int
	// SnapshotEvery rotates an instance's WAL after this many applied
	// interactions (default 1024).
	SnapshotEvery int
	// StallTimeout is how long an instance may hold pending work without
	// applying any of it before the watchdog flags it stalled (default
	// 10s).
	StallTimeout time.Duration
	// MaxLiveInstances caps how many instances may hold live engine
	// state at once (0 = unlimited). When a registration or rehydration
	// would exceed the cap, the least-recently-touched live instance is
	// evicted first: its state is snapshotted to the WAL, its engine
	// memory released, and it rehydrates transparently on the next
	// ingest. Requires Dir (eviction without durability would lose
	// state).
	MaxLiveInstances int
	// IdleTTL evicts instances that have seen no ingest or state read
	// for this long (0 = never). Requires Dir.
	IdleTTL time.Duration
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.MaxPending <= 0 {
		o.MaxPending = 4096
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 1024
	}
	if o.StallTimeout <= 0 {
		o.StallTimeout = 10 * time.Second
	}
	if o.FS == nil {
		o.FS = chaos.Disk
	}
}

// ErrDraining reports an operation refused because the server is
// draining.
var ErrDraining = errors.New("serve: server draining")

// Server multiplexes aggregation instances.
type Server struct {
	opt Options

	// lifeMu serializes instance lifecycle transitions (register under a
	// cap, evict, rehydrate, remove, drain-flagging). It is always taken
	// before mu and before any instance's mu, and is never held while
	// waiting on a worker that needs mu-protected state to progress —
	// evictions wait on instance queues, not on lifeMu holders.
	lifeMu sync.Mutex

	mu        sync.Mutex
	instances map[string]*Instance
	draining  bool

	watchStop chan struct{}
	watchDone chan struct{}
}

// NewServer builds a server and, when opt.Dir holds instance journals
// from a previous process, recovers every one of them before returning:
// a restarted server resumes exactly where the crash left it. With
// MaxLiveInstances set, only the first cap instances recovered are
// hydrated; the rest come up evicted and rehydrate on first touch.
func NewServer(opt Options) (*Server, error) {
	opt.fill()
	if (opt.MaxLiveInstances > 0 || opt.IdleTTL > 0) && opt.Dir == "" {
		return nil, errors.New("serve: eviction (MaxLiveInstances/IdleTTL) requires Dir: evicted state must be durable")
	}
	s := &Server{
		opt:       opt,
		instances: make(map[string]*Instance),
		watchStop: make(chan struct{}),
		watchDone: make(chan struct{}),
	}
	if opt.Dir != "" {
		if err := os.MkdirAll(opt.Dir, walDirPerm); err != nil {
			return nil, err
		}
		if err := s.recoverAll(); err != nil {
			return nil, err
		}
	}
	go s.watchdog()
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// recoverAll replays every instance directory under Dir. With a live
// cap, directories past the cap are recovered cold: their WAL is
// validated and their sequence position read, but no engine is built —
// they start evicted and rehydrate on first touch.
func (s *Server) recoverAll() error {
	entries, err := os.ReadDir(s.opt.Dir)
	if err != nil {
		return err
	}
	live := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if !nameRE.MatchString(name) {
			continue
		}
		hydrate := s.opt.MaxLiveInstances <= 0 || live < s.opt.MaxLiveInstances
		inst, err := s.recoverInstance(name, hydrate)
		if errors.Is(err, errNoWAL) {
			// A torn genesis: the registration was never acknowledged
			// (Create only acks after the first generation is durable), so
			// the directory holds no instance — sweep it and move on.
			s.logf("serve: sweeping %s: %v", name, err)
			if rerr := os.RemoveAll(filepath.Join(s.opt.Dir, name)); rerr != nil {
				return rerr
			}
			continue
		}
		if err != nil {
			return fmt.Errorf("serve: recover %s: %w", name, err)
		}
		s.instances[name] = inst
		if hydrate {
			live++
			go inst.worker()
		}
	}
	return nil
}

// recoverInstance rebuilds one instance from its WAL: restore the
// snapshot, replay the journaled tail, reopen for appends. With
// hydrate=false the WAL is validated and closed again and the instance
// comes up evicted (no engine, no open journal, no worker).
func (s *Server) recoverInstance(name string, hydrate bool) (*Instance, error) {
	dir := filepath.Join(s.opt.Dir, name)
	log, rec, err := recoverWAL(s.opt.FS, dir)
	if err != nil {
		return nil, err
	}
	if rec.cfg.Name != name {
		log.close()
		return nil, fmt.Errorf("wal names instance %q, directory is %q", rec.cfg.Name, name)
	}
	lastSeq := rec.lastSeq()
	if !hydrate {
		log.close()
		inst := newInstance(s, rec.cfg, nil, nil, lastSeq, lastSeq)
		inst.state = stateEvicted
		close(inst.workerDone) // no worker is running
		s.logf("serve: recovered instance %s cold (seq %d, evicted)", name, lastSeq)
		return inst, nil
	}
	eng, err := restoreEngine(rec)
	if err != nil {
		log.close()
		return nil, err
	}
	inst := newInstance(s, rec.cfg, eng, log, lastSeq, lastSeq)
	if eng.StreamDone() {
		res, err := eng.Finish()
		if err != nil {
			log.close()
			return nil, fmt.Errorf("replay verification: %w", err)
		}
		inst.result = res
		inst.state = stateDone
	}
	s.logf("serve: recovered instance %s (seq %d, %s)", name, lastSeq, inst.state)
	return inst, nil
}

// restoreEngine builds an arena-backed engine from a recovered WAL:
// restore the snapshot, replay the journaled-but-unsnapshotted tail.
// Feed is deterministic and ignores post-done batches, so the replayed
// engine is byte-identical to the one that wrote the WAL.
func restoreEngine(rec *recovered) (*core.Engine, error) {
	cfg, alg, err := rec.cfg.engineConfig()
	if err != nil {
		return nil, err
	}
	if cfg.Arena, err = core.NewArena(cfg.N, cfg.Provenance); err != nil {
		return nil, err
	}
	eng := &core.Engine{}
	if err := eng.RestoreStream(cfg, alg, rec.state); err != nil {
		return nil, err
	}
	for _, in := range rec.tail {
		for _, uv := range in.Its {
			if _, err := eng.Feed(seq.Interaction{U: graph.NodeID(uv[0]), V: graph.NodeID(uv[1])}); err != nil {
				return nil, fmt.Errorf("replay batch %d: %w", in.Seq, err)
			}
		}
	}
	return eng, nil
}

// Register creates a new aggregation instance. Under a live cap it may
// first evict the least-recently-touched live instance to make room.
func (s *Server) Register(icfg InstanceConfig) (*Instance, error) {
	icfg = icfg.normalized()
	cfg, alg, err := icfg.engineConfig()
	if err != nil {
		return nil, err
	}
	if cfg.Arena, err = core.NewArena(cfg.N, cfg.Provenance); err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if err := eng.Begin(alg); err != nil {
		return nil, err
	}

	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if err := s.makeRoom(nil); err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if _, ok := s.instances[icfg.Name]; ok {
		return nil, fmt.Errorf("serve: instance %q already exists", icfg.Name)
	}
	var log *wal
	if s.opt.Dir != "" {
		st, err := eng.StateSnapshot()
		if err != nil {
			return nil, err
		}
		log, err = createWAL(s.opt.FS, filepath.Join(s.opt.Dir, icfg.Name), icfg, st)
		if err != nil {
			return nil, err
		}
	}
	inst := newInstance(s, icfg, eng, log, 0, 0)
	s.instances[icfg.Name] = inst
	go inst.worker()
	return inst, nil
}

// liveInstances returns the instances currently holding an engine,
// ordered by least-recent touch.
func (s *Server) liveInstances() []*Instance {
	s.mu.Lock()
	live := make([]*Instance, 0, len(s.instances))
	for _, inst := range s.instances {
		if inst.isLive() {
			live = append(live, inst)
		}
	}
	s.mu.Unlock()
	sort.Slice(live, func(i, k int) bool {
		ti, tk := live[i].touched(), live[k].touched()
		if ti.Equal(tk) {
			return live[i].cfg.Name < live[k].cfg.Name
		}
		return ti.Before(tk)
	})
	return live
}

// makeRoom evicts least-recently-touched live instances until one more
// engine fits under the cap. keep (if non-nil) is never evicted — it is
// the instance being rehydrated. Caller holds lifeMu.
func (s *Server) makeRoom(keep *Instance) error {
	if s.opt.MaxLiveInstances <= 0 {
		return nil
	}
	for {
		live := s.liveInstances()
		if len(live) < s.opt.MaxLiveInstances {
			return nil
		}
		var victim *Instance
		for _, inst := range live {
			if inst != keep {
				victim = inst
				break
			}
		}
		if victim == nil {
			return fmt.Errorf("%w: live-instance cap %d held entirely by the caller", ErrBackpressure, s.opt.MaxLiveInstances)
		}
		ctx, cancel := context.WithTimeout(context.Background(), s.opt.StallTimeout)
		err := victim.evict(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("%w: cannot evict %s: %v", ErrBackpressure, victim.cfg.Name, err)
		}
		s.logf("serve: evicted instance %s (cap %d)", victim.cfg.Name, s.opt.MaxLiveInstances)
	}
}

// Evict forces an instance out of memory: its state is snapshotted to
// the WAL, its engine and journal released. The instance transparently
// rehydrates on the next ingest or state read. Exported for operational
// tooling and tests; the cap and IdleTTL drive the same path.
func (s *Server) Evict(name string) error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	inst, ok := s.Get(name)
	if !ok {
		return fmt.Errorf("serve: no instance %q", name)
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.opt.StallTimeout)
	defer cancel()
	return inst.evict(ctx)
}

// ensureLive rehydrates inst if it is evicted, evicting another
// instance first when the cap requires it. The fast path (instance is
// live) takes no lifecycle lock.
func (s *Server) ensureLive(inst *Instance) error {
	inst.mu.Lock()
	evicted := inst.state == stateEvicted
	inst.mu.Unlock()
	if !evicted {
		return nil
	}
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	inst.mu.Lock()
	evicted = inst.state == stateEvicted
	inst.mu.Unlock()
	if !evicted {
		return nil // raced with another rehydrator; done
	}
	s.mu.Lock()
	cur, ok := s.instances[inst.cfg.Name]
	draining := s.draining
	s.mu.Unlock()
	if draining {
		return ErrDraining
	}
	if !ok || cur != inst {
		return ErrInstanceClosed
	}
	if err := s.makeRoom(inst); err != nil {
		return err
	}
	return s.rehydrate(inst)
}

// rehydrate rebuilds an evicted instance's engine and journal from its
// WAL and restarts its worker. Caller holds lifeMu and has made room.
func (s *Server) rehydrate(inst *Instance) error {
	dir := filepath.Join(s.opt.Dir, inst.cfg.Name)
	log, rec, err := recoverWAL(s.opt.FS, dir)
	if err != nil {
		return fmt.Errorf("serve: rehydrate %s: %w", inst.cfg.Name, err)
	}
	eng, err := restoreEngine(rec)
	if err != nil {
		log.close()
		return fmt.Errorf("serve: rehydrate %s: %w", inst.cfg.Name, err)
	}
	lastSeq := rec.lastSeq()

	inst.mu.Lock()
	defer inst.mu.Unlock()
	inst.eng = eng
	inst.log = log
	inst.lastSeq = lastSeq
	inst.appliedSeq = lastSeq
	inst.appliedOps = 0
	inst.state = stateRunning
	inst.closing = false
	inst.noAdmit = false
	inst.evicting = false
	inst.stalled = false
	inst.lastMove = time.Now()
	inst.lastTouch = inst.lastMove
	inst.workerDone = make(chan struct{})
	if eng.StreamDone() {
		res, err := eng.Finish()
		if err != nil {
			// The WAL verified at eviction time; a terminal verification
			// failure here means the journal was damaged on disk since.
			inst.eng = nil
			inst.log = nil
			inst.state = stateEvicted
			log.close()
			return fmt.Errorf("serve: rehydrate %s: replay verification: %w", inst.cfg.Name, err)
		}
		inst.result = res
		inst.state = stateDone
	}
	go inst.worker()
	inst.cond.Broadcast()
	s.logf("serve: rehydrated instance %s (seq %d, %s)", inst.cfg.Name, lastSeq, inst.state)
	return nil
}

// Get returns a registered instance.
func (s *Server) Get(name string) (*Instance, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	inst, ok := s.instances[name]
	return inst, ok
}

// Remove closes and forgets an instance; its journal directory is
// deleted, so this is the explicit "query finished, release it" call.
// Taking lifeMu keeps removal ordered against a concurrent rehydration
// of the same instance.
func (s *Server) Remove(name string) error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	s.mu.Lock()
	inst, ok := s.instances[name]
	if ok {
		delete(s.instances, name)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: no instance %q", name)
	}
	inst.close()
	if s.opt.Dir != "" {
		return os.RemoveAll(filepath.Join(s.opt.Dir, name))
	}
	return nil
}

// Instances lists the registered instances, name-sorted.
func (s *Server) Instances() []*Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Instance, 0, len(s.instances))
	for _, inst := range s.instances {
		out = append(out, inst)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].cfg.Name < out[k].cfg.Name })
	return out
}

// ServerStatus is the /v1/status document. Total counts every
// registered instance; Live those currently holding engine state;
// Evicted those whose state lives only in their WAL until next touch.
type ServerStatus struct {
	Draining  bool             `json:"draining,omitempty"`
	Live      int              `json:"live"`
	Evicted   int              `json:"evicted"`
	Total     int              `json:"total"`
	Instances []InstanceStatus `json:"instances"`
}

// Status snapshots every instance.
func (s *Server) Status() ServerStatus {
	s.mu.Lock()
	st := ServerStatus{Draining: s.draining}
	insts := make([]*Instance, 0, len(s.instances))
	for _, inst := range s.instances {
		insts = append(insts, inst)
	}
	s.mu.Unlock()
	sort.Slice(insts, func(i, k int) bool { return insts[i].cfg.Name < insts[k].cfg.Name })
	for _, inst := range insts {
		row := inst.Status()
		st.Instances = append(st.Instances, row)
		st.Total++
		if row.State == stateEvicted.String() {
			st.Evicted++
		} else {
			st.Live++
		}
	}
	return st
}

// Draining reports whether a drain has begun (readyz turns 503).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// watchdog periodically flags instances that hold pending work without
// making progress — a stuck worker shows up in the status report instead
// of silently eating its queue's latency budget — and, with IdleTTL
// set, evicts instances nothing has touched for a TTL.
func (s *Server) watchdog() {
	defer close(s.watchDone)
	period := s.opt.StallTimeout
	if s.opt.IdleTTL > 0 && s.opt.IdleTTL < period {
		period = s.opt.IdleTTL
	}
	tick := time.NewTicker(period / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.watchStop:
			return
		case <-tick.C:
		}
		for _, inst := range s.Instances() {
			inst.mu.Lock()
			if inst.state == stateRunning && inst.pendingOps > 0 &&
				time.Since(inst.lastMove) > s.opt.StallTimeout && !inst.stalled {
				inst.stalled = true
				s.logf("serve: instance %s stalled: %d pending ops, no progress for %v",
					inst.cfg.Name, inst.pendingOps, time.Since(inst.lastMove).Round(time.Millisecond))
			}
			inst.mu.Unlock()
		}
		if s.opt.IdleTTL > 0 {
			s.evictIdle()
		}
	}
}

// evictIdle evicts every live instance whose last touch is older than
// IdleTTL.
func (s *Server) evictIdle() {
	if s.Draining() {
		return
	}
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	for _, inst := range s.liveInstances() {
		idle := time.Since(inst.touched())
		if idle < s.opt.IdleTTL {
			break // ordered by touch: the rest are fresher
		}
		ctx, cancel := context.WithTimeout(context.Background(), s.opt.StallTimeout)
		err := inst.evict(ctx)
		cancel()
		if err != nil {
			s.logf("serve: idle eviction of %s: %v", inst.cfg.Name, err)
			continue
		}
		s.logf("serve: evicted idle instance %s (idle %v)", inst.cfg.Name, idle.Round(time.Millisecond))
	}
}

// Drain performs the graceful shutdown sequence: stop admissions (and
// registrations), flush every instance queue, take final snapshots, and
// close the journals. Bounded by ctx; instances that cannot flush in
// time report errors but the drain still closes everything.
func (s *Server) Drain(ctx context.Context) error {
	// Cycling lifeMu around the flag set guarantees no rehydration is in
	// flight once draining is visible: ensureLive re-checks the flag
	// under lifeMu.
	s.lifeMu.Lock()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.lifeMu.Unlock()
		return ErrDraining
	}
	s.draining = true
	s.mu.Unlock()
	s.lifeMu.Unlock()

	var firstErr error
	for _, inst := range s.Instances() {
		if err := inst.drain(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	close(s.watchStop)
	<-s.watchDone
	return firstErr
}

// Close shuts down without flushing: journaled batches survive in the
// WAL and apply on the next start, but nothing new is accepted and
// pending handles fail. Drain is the graceful variant.
func (s *Server) Close() {
	s.lifeMu.Lock()
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	s.lifeMu.Unlock()
	for _, inst := range s.Instances() {
		inst.close()
	}
	if !already {
		close(s.watchStop)
		<-s.watchDone
	}
}
