package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"doda/internal/graph"
	"doda/internal/seq"
)

// ingestLine is one JSONL ingest body line.
type ingestLine struct {
	U int `json:"u"`
	V int `json:"v"`
}

// maxIngestBody bounds one ingest request (16 MiB of JSONL).
const maxIngestBody = 16 << 20

// retryAfter is the client back-off hint sent with 429 responses.
const retryAfter = 1 * time.Second

// Handler returns the server's HTTP API:
//
//	POST   /v1/instances              register (InstanceConfig JSON body)
//	GET    /v1/instances/{name}       instance status
//	DELETE /v1/instances/{name}       remove instance
//	POST   /v1/instances/{name}/ingest JSONL {"u":..,"v":..} lines;
//	       ?seq=N stamps the batch, ?wait=1 blocks until applied
//	GET    /v1/instances/{name}/state  deterministic EngineState JSON
//	GET    /v1/status                 all-instance snapshot
//	GET    /healthz                   process liveness (always 200)
//	GET    /readyz                    admission readiness (503 draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Status())
	})
	mux.HandleFunc("POST /v1/instances", s.handleRegister)
	mux.HandleFunc("GET /v1/instances/{name}", s.handleInstanceStatus)
	mux.HandleFunc("DELETE /v1/instances/{name}", s.handleRemove)
	mux.HandleFunc("POST /v1/instances/{name}/ingest", s.handleIngest)
	mux.HandleFunc("GET /v1/instances/{name}/state", s.handleState)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error        string `json:"error"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var cfg InstanceConfig
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&cfg); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad config: %v", err)})
		return
	}
	inst, err := s.Register(cfg)
	switch {
	case err == nil:
		writeJSON(w, http.StatusCreated, inst.Status())
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	}
}

func (s *Server) instanceOf(w http.ResponseWriter, r *http.Request) (*Instance, bool) {
	name := r.PathValue("name")
	inst, ok := s.Get(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no instance %q", name)})
		return nil, false
	}
	return inst, true
}

func (s *Server) handleInstanceStatus(w http.ResponseWriter, r *http.Request) {
	if inst, ok := s.instanceOf(w, r); ok {
		writeJSON(w, http.StatusOK, inst.Status())
	}
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instanceOf(w, r)
	if !ok {
		return
	}
	if err := s.Remove(inst.Name()); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleIngest is the JSONL ingest endpoint. Backpressure is explicit:
// a full instance queue answers 429 Too Many Requests with a Retry-After
// header — the client retries, nothing is dropped silently.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instanceOf(w, r)
	if !ok {
		return
	}
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: ErrDraining.Error()})
		return
	}
	var seqNo uint64
	if q := r.URL.Query().Get("seq"); q != "" {
		var err error
		seqNo, err = strconv.ParseUint(q, 10, 64)
		if err != nil || seqNo == 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "seq must be a positive integer"})
			return
		}
	}
	var its []seq.Interaction
	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, maxIngestBody))
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec ingestLine
		if err := json.Unmarshal(line, &rec); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad ingest line %q: %v", line, err)})
			return
		}
		its = append(its, seq.Interaction{U: graph.NodeID(rec.U), V: graph.NodeID(rec.V)})
	}
	if err := sc.Err(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	h, err := inst.TryIngest(its, seqNo)
	switch {
	case err == nil:
	case errors.Is(err, ErrBackpressure) || errors.Is(err, ErrWAL):
		w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter.Seconds())))
		writeJSON(w, http.StatusTooManyRequests, errorBody{
			Error:        err.Error(),
			RetryAfterMs: retryAfter.Milliseconds(),
		})
		return
	case errors.Is(err, ErrInstanceDone):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	case errors.Is(err, ErrInstanceFailed), errors.Is(err, ErrInstanceClosed):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	case errors.Is(err, ErrSequenceGap):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	if r.URL.Query().Get("wait") != "" {
		if err := h.Wait(r.Context()); err != nil {
			writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
			return
		}
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"ops": len(its)})
}

// handleState serves the deterministic engine snapshot the recovery
// tests diff byte-for-byte.
func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instanceOf(w, r)
	if !ok {
		return
	}
	st, err := inst.State(r.Context())
	if err != nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}
