package serve

// Property: eviction is invisible. For a random schedule of forced
// evictions, kill-without-flush restarts, and duplicate-seq retries,
// every instance's final EngineState is byte-identical to an
// uninterrupted in-memory run of the same batches. This is the
// serve-wide pin for the whole PR: arena-backed engines, WAL
// evict/rehydrate, and the exactly-once seq contract all have to hold
// simultaneously for the diff to stay empty.

import (
	"fmt"
	"testing"
	"time"

	"doda/internal/rng"
	"doda/internal/seq"
)

// evictWorkload is a deterministic per-instance batch list.
type evictWorkload struct {
	names   []string
	batches [][][]seq.Interaction // [instance][batch] -> interactions
}

func makeEvictWorkload(n, instances, batches, ops int, seed uint64) evictWorkload {
	w := evictWorkload{
		names:   make([]string, instances),
		batches: make([][][]seq.Interaction, instances),
	}
	for i := range w.names {
		w.names[i] = fmt.Sprintf("p%d", i)
		w.batches[i] = make([][]seq.Interaction, batches)
		for b := range w.batches[i] {
			w.batches[i][b] = offSinkBatch(n, ops, seed^uint64(i*1000+b))
		}
	}
	return w
}

func TestPropertyEvictRehydrateInvisible(t *testing.T) {
	const (
		n         = 12
		instances = 3
		batches   = 24
		ops       = 8
	)
	seeds := []uint64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			w := makeEvictWorkload(n, instances, batches, ops, seed)

			// Reference: one uninterrupted in-memory server.
			want := make(map[string][]byte)
			{
				ref := newTestServer(t, Options{})
				for i, name := range w.names {
					inst := mustRegister(t, ref, waitCfg(name, n))
					for b, its := range w.batches[i] {
						feedSeq(t, inst, its, uint64(b+1))
					}
					want[name] = mustState(t, inst)
				}
			}

			// Chaotic run: tight live cap, random evictions, kills, dups.
			dir := t.TempDir()
			opt := Options{Dir: dir, MaxLiveInstances: 2, StallTimeout: 5 * time.Second}
			s, err := NewServer(opt)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { s.Close() }()
			restart := func() {
				s.Close()
				s2, err := NewServer(opt)
				if err != nil {
					t.Fatalf("restart: %v", err)
				}
				s = s2
			}
			get := func(name string) *Instance {
				inst, ok := s.Get(name)
				if !ok {
					t.Fatalf("instance %s missing", name)
				}
				return inst
			}
			for _, name := range w.names {
				mustRegister(t, s, waitCfg(name, n))
			}

			src := rng.New(seed * 7919)
			next := make([]int, instances) // next batch index per instance
			for remaining := instances * batches; remaining > 0; {
				i := int(src.Uint64() % uint64(instances))
				if next[i] >= batches {
					continue
				}
				seqNo := uint64(next[i] + 1)
				its := w.batches[i][next[i]]
				switch src.Uint64() % 8 {
				case 0: // forced eviction before the send
					if err := s.Evict(w.names[i]); err != nil {
						t.Fatalf("evict %s: %v", w.names[i], err)
					}
				case 1: // kill the process without flushing, recover
					restart()
				case 2: // send, kill before the ack round-trips, resend (dup)
					if _, err := get(w.names[i]).TryIngest(its, seqNo); err != nil {
						t.Fatalf("pre-kill send %s seq %d: %v", w.names[i], seqNo, err)
					}
					restart()
				case 3: // duplicate retry of the previous batch
					if seqNo > 1 {
						feedSeq(t, get(w.names[i]), w.batches[i][next[i]-1], seqNo-1)
					}
				}
				feedSeq(t, get(w.names[i]), its, seqNo)
				next[i]++
				remaining--
			}

			for _, name := range w.names {
				got := mustState(t, get(name))
				if string(got) != string(want[name]) {
					t.Fatalf("seed %d: %s final state diverged from uninterrupted run:\n got  %s\n want %s",
						seed, name, got, want[name])
				}
			}
			// The schedule's churn must never have breached the cap.
			if st := s.Status(); st.Live > opt.MaxLiveInstances {
				t.Fatalf("live cap breached: %d live", st.Live)
			}
		})
	}
}
