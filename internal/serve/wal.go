package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"doda/internal/chaos"
	"doda/internal/core"
	"doda/internal/sweepd"
)

// walVersion is the instance log schema version; readers reject others.
const walVersion = 1

const (
	walPrefix  = "wal-"
	walSuffix  = ".jsonl"
	walTmpSfx  = ".tmp"
	walDirPerm = 0o755
)

// ErrWAL reports a wedged write-ahead log: an append failed mid-record,
// so further appends would bury valid records behind garbage. The
// instance worker recovers by rewriting the log as a fresh generation;
// until then admissions are refused with this error.
var ErrWAL = errors.New("serve: write-ahead log wedged, rewrite pending")

// walHeader is record 0 of every generation: the instance identity.
type walHeader struct {
	Version int            `json:"version"`
	Config  InstanceConfig `json:"config"`
}

// walState is record 1: the engine snapshot the generation starts from
// and the sequence number of the last batch folded into it.
type walState struct {
	AppliedSeq uint64           `json:"applied_seq"`
	State      core.EngineState `json:"state"`
}

// walIngest journals one accepted batch.
type walIngest struct {
	Seq uint64   `json:"seq"`
	Its [][2]int `json:"its"`
}

// wal is one instance's open write-ahead log. Calls are serialised by the
// owning instance's mutex.
type wal struct {
	fs  chaos.FS
	dir string

	gen    int        // current generation number
	f      chaos.File // open for append on the current generation
	broken bool       // an append failed mid-record; see ErrWAL
}

func genName(n int) string {
	return fmt.Sprintf("%s%08d%s", walPrefix, n, walSuffix)
}

func genNumber(name string) (int, bool) {
	if !strings.HasPrefix(name, walPrefix) || !strings.HasSuffix(name, walSuffix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, walPrefix), walSuffix))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// genNames lists the generation files in dir, ascending, sweeping
// leftover tmp files from a crashed rotation.
func genNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, walTmpSfx) {
			if _, ok := genNumber(strings.TrimSuffix(name, walTmpSfx)); ok {
				os.Remove(filepath.Join(dir, name))
			}
			continue
		}
		if _, ok := genNumber(name); ok {
			names = append(names, name)
		}
	}
	sort.Slice(names, func(i, k int) bool {
		a, _ := genNumber(names[i])
		b, _ := genNumber(names[k])
		return a < b
	})
	return names, nil
}

// encodeRecords frames a generation's records: header, state, ingests.
func encodeRecords(hdr walHeader, st walState, pending []walIngest) ([][]byte, error) {
	recs := make([]any, 0, len(pending)+2)
	recs = append(recs, hdr, st)
	for _, in := range pending {
		recs = append(recs, in)
	}
	lines := make([][]byte, 0, len(recs))
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			return nil, err
		}
		lines = append(lines, sweepd.EncodeRecord(b))
	}
	return lines, nil
}

// writeGen atomically publishes one generation file: tmp + fsync +
// rename + directory fsync, so a crash at any instant leaves either the
// old world or the complete new one.
func writeGen(fsys chaos.FS, dir string, gen int, lines [][]byte) error {
	name := genName(gen)
	tmp := filepath.Join(dir, name+walTmpSfx)
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	for _, line := range lines {
		if _, err := f.Write(line); err != nil {
			f.Close()
			fsys.Remove(tmp)
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, name)); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(dir)
}

// createWAL starts generation 0 for a freshly registered instance and
// opens it for appends.
func createWAL(fsys chaos.FS, dir string, cfg InstanceConfig, st core.EngineState) (*wal, error) {
	if err := os.MkdirAll(dir, walDirPerm); err != nil {
		return nil, err
	}
	names, err := genNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) > 0 {
		return nil, fmt.Errorf("serve: %s already holds a write-ahead log", dir)
	}
	w := &wal{fs: fsys, dir: dir, gen: 0}
	lines, err := encodeRecords(walHeader{Version: walVersion, Config: cfg}, walState{State: st}, nil)
	if err != nil {
		return nil, err
	}
	if err := writeGen(fsys, dir, 0, lines); err != nil {
		return nil, err
	}
	if err := w.openAppend(); err != nil {
		return nil, err
	}
	return w, nil
}

// openAppend opens the current generation for appends.
func (w *wal) openAppend() error {
	f, err := w.fs.OpenFile(filepath.Join(w.dir, genName(w.gen)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	return nil
}

// append journals one batch and makes it durable. On failure the log is
// wedged (ErrWAL) until rotate rewrites it: the failed write may have
// left a partial record at the tail, and appending after it would turn
// an unacknowledged torn tail into unrecoverable mid-log corruption.
func (w *wal) append(rec walIngest) error {
	if w.broken {
		return ErrWAL
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(sweepd.EncodeRecord(b)); err != nil {
		w.broken = true
		return fmt.Errorf("%w: %w", ErrWAL, err)
	}
	if err := w.f.Sync(); err != nil {
		w.broken = true
		return fmt.Errorf("%w: %w", ErrWAL, err)
	}
	return nil
}

// rotate publishes a fresh generation holding the current snapshot plus
// the journaled-but-unapplied batches, switches appends to it, and
// deletes older generations. It also clears a wedged log: the new
// generation is written whole, so the old tail's damage is left behind.
func (w *wal) rotate(cfg InstanceConfig, st walState, pending []walIngest) error {
	lines, err := encodeRecords(walHeader{Version: walVersion, Config: cfg}, st, pending)
	if err != nil {
		return err
	}
	next := w.gen + 1
	if err := writeGen(w.fs, w.dir, next, lines); err != nil {
		return err
	}
	if w.f != nil {
		w.f.Close()
	}
	old := w.gen
	w.gen = next
	w.broken = false
	if err := w.openAppend(); err != nil {
		return err
	}
	// The new generation is durable; older ones are now garbage. Removal
	// failures are harmless (recovery prefers the newest valid gen) but
	// surface through SyncDir if the directory itself is sick.
	names, err := genNames(w.dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		if n, ok := genNumber(name); ok && n <= old {
			w.fs.Remove(filepath.Join(w.dir, name))
		}
	}
	return w.fs.SyncDir(w.dir)
}

func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// errNoWAL reports an instance directory with no readable generation:
// either nothing was ever published, or the only generation tore before
// its header+state prefix became durable. Both mean the registration was
// never acknowledged — the directory holds no instance.
var errNoWAL = errors.New("serve: no readable write-ahead log")

// errGenDamaged classifies a generation whose *content* is unusable (torn
// before the header+state prefix, or undecodable records). Recovery may
// fall back past such a generation. I/O errors while reading or repairing
// are deliberately NOT this class: the bytes on disk may be fine, so
// falling back — or worse, concluding errNoWAL and sweeping the
// directory — would discard acknowledged data. Those abort recovery
// instead, and the caller retries.
var errGenDamaged = errors.New("serve: generation damaged")

// recovered is the parsed durable state of one instance directory.
type recovered struct {
	cfg     InstanceConfig
	state   core.EngineState
	applied uint64
	tail    []walIngest
	gen     int
}

// recoverWAL reads an instance directory back: the newest generation
// with a valid header + state prefix wins; a torn tail is dropped and
// the file repaired; generations newer than the winner (torn mid-
// rotation) and older than it (superseded) are deleted. Returns the
// recovered state and an open log ready for appends.
func recoverWAL(fsys chaos.FS, dir string) (*wal, *recovered, error) {
	names, err := genNames(dir)
	if err != nil {
		return nil, nil, err
	}
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("%w: %s", errNoWAL, dir)
	}
	for i := len(names) - 1; i >= 0; i-- {
		rec, _, err := parseGen(fsys, dir, names[i])
		if errors.Is(err, errGenDamaged) {
			// Damaged mid-rotation: fall back to the predecessor, which
			// rotation deletes only after its successor is durable.
			continue
		}
		if err != nil {
			// An I/O failure, not damage — the generation may be perfectly
			// good. Abort recovery rather than silently falling past it.
			return nil, nil, err
		}
		// This generation wins; every other generation file is garbage.
		for k, name := range names {
			if k != i {
				fsys.Remove(filepath.Join(dir, name))
			}
		}
		if err := fsys.SyncDir(dir); err != nil {
			return nil, nil, err
		}
		w := &wal{fs: fsys, dir: dir, gen: rec.gen}
		if err := w.openAppend(); err != nil {
			return nil, nil, err
		}
		return w, rec, nil
	}
	return nil, nil, fmt.Errorf("%w: %s: every generation is damaged", errNoWAL, dir)
}

// parseGen reads one generation file. A decode failure on a trailing
// record is a torn tail: the valid prefix is kept and the file rewritten
// without it (repaired=true). A generation without a valid header and
// state record does not parse — that failure is errGenDamaged, letting
// recovery fall back; I/O failures (read, repair write) are returned
// unwrapped so recovery aborts and retries instead of discarding data.
func parseGen(fsys chaos.FS, dir, name string) (*recovered, bool, error) {
	raw, err := fsys.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil, false, err
	}
	gen, _ := genNumber(name)
	lines, torn := sweepd.SplitRecords(raw)
	rec := &recovered{gen: gen}
	var valid [][]byte
	for li, line := range lines {
		body, err := sweepd.DecodeRecord(line)
		if err != nil {
			// A crc failure is how a torn append looks; everything after
			// it belongs to the same unsynced write and is dropped too.
			torn = true
			break
		}
		if err := rec.readRecord(li, body); err != nil {
			return nil, false, fmt.Errorf("%w: %s: %w", errGenDamaged, name, err)
		}
		keep := make([]byte, 0, len(line)+1)
		keep = append(append(keep, line...), '\n')
		valid = append(valid, keep)
	}
	if len(valid) < 2 {
		return nil, false, fmt.Errorf("%w: %s: generation lacks header+state", errGenDamaged, name)
	}
	repaired := false
	if torn {
		// Rewrite the file without the torn tail so future appends land
		// after valid bytes.
		if err := rewriteGen(fsys, dir, name, valid); err != nil {
			return nil, false, err
		}
		repaired = true
	}
	return rec, repaired, nil
}

// rewriteGen atomically replaces name with the given record lines.
func rewriteGen(fsys chaos.FS, dir, name string, lines [][]byte) error {
	tmp := filepath.Join(dir, name+walTmpSfx)
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	for _, line := range lines {
		if _, err := f.Write(line); err != nil {
			f.Close()
			fsys.Remove(tmp)
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, name)); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(dir)
}

// readRecord parses one record line by position and shape.
func (r *recovered) readRecord(li int, body []byte) error {
	switch li {
	case 0:
		var h walHeader
		if err := json.Unmarshal(body, &h); err != nil {
			return fmt.Errorf("serve: wal header: %w", err)
		}
		if h.Version != walVersion {
			return fmt.Errorf("serve: wal version %d, this reader speaks %d", h.Version, walVersion)
		}
		r.cfg = h.Config
		return nil
	case 1:
		var s walState
		if err := json.Unmarshal(body, &s); err != nil {
			return fmt.Errorf("serve: wal state: %w", err)
		}
		r.state = s.State
		r.applied = s.AppliedSeq
		return nil
	default:
		var in walIngest
		if err := json.Unmarshal(body, &in); err != nil {
			return fmt.Errorf("serve: wal ingest record %d: %w", li, err)
		}
		if in.Seq == 0 {
			return fmt.Errorf("serve: wal ingest record %d: zero sequence", li)
		}
		if want := r.lastSeq() + 1; in.Seq != want {
			return fmt.Errorf("serve: wal ingest record %d: sequence %d, want %d", li, in.Seq, want)
		}
		r.tail = append(r.tail, in)
		return nil
	}
}

// lastSeq is the highest journaled sequence in the recovered state.
func (r *recovered) lastSeq() uint64 {
	if len(r.tail) > 0 {
		return r.tail[len(r.tail)-1].Seq
	}
	return r.applied
}
