package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"doda/internal/graph"
	"doda/internal/rng"
	"doda/internal/seq"
)

// it builds one interaction.
func it(u, v int) seq.Interaction {
	return seq.Interaction{U: graph.NodeID(u), V: graph.NodeID(v)}
}

// gatherCfg is a quick-terminating instance: gathering funnels every
// transfer toward data-weight, terminating fast under uniform traffic.
func gatherCfg(name string, n int) InstanceConfig {
	return InstanceConfig{Name: name, N: n, Algorithm: "gathering", Agg: "sum"}
}

// offSinkBatch produces k interactions among non-sink nodes: the waiting
// algorithm declines all of them, so the instance stays running forever —
// the load-test workload.
func offSinkBatch(n, k int, seed uint64) []seq.Interaction {
	src := rng.New(seed)
	out := make([]seq.Interaction, k)
	for i := range out {
		u := 1 + int(src.Uint64()%uint64(n-1))
		v := 1 + int(src.Uint64()%uint64(n-1))
		for v == u {
			v = 1 + int(src.Uint64()%uint64(n-1))
		}
		out[i] = it(u, v)
	}
	return out
}

func newTestServer(t *testing.T, opt Options) *Server {
	t.Helper()
	s, err := NewServer(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func mustRegister(t *testing.T, s *Server, cfg InstanceConfig) *Instance {
	t.Helper()
	inst, err := s.Register(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestRegisterValidation(t *testing.T) {
	s := newTestServer(t, Options{})
	for _, cfg := range []InstanceConfig{
		{Name: "", N: 4, Algorithm: "waiting"},
		{Name: "../evil", N: 4, Algorithm: "waiting"},
		{Name: ".hidden", N: 4, Algorithm: "waiting"},
		{Name: "x", N: 1, Algorithm: "waiting"},
		{Name: "x", N: 4, Algorithm: "full-knowledge"}, // needs future view
		{Name: "x", N: 4, Algorithm: "waiting", Agg: "median"},
		{Name: "x", N: 4, Algorithm: "waiting", Provenance: "maybe"},
		{Name: "x", N: 4, Algorithm: "waiting", Sink: 7},
	} {
		if _, err := s.Register(cfg); err == nil {
			t.Errorf("Register(%+v) should fail", cfg)
		}
	}
	if _, err := s.Register(gatherCfg("dup", 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register(gatherCfg("dup", 4)); err == nil {
		t.Error("duplicate name should fail")
	}
}

func TestIngestToTermination(t *testing.T) {
	s := newTestServer(t, Options{})
	inst := mustRegister(t, s, gatherCfg("g", 4))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// gathering with default payloads 0..3, sum: funnel 3->2->1->0.
	for _, batch := range [][]seq.Interaction{
		{it(2, 3), it(1, 2)},
		{it(0, 1)},
	} {
		h, err := inst.Ingest(ctx, batch, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	res, err := inst.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated || res.SinkValue.Num != 6 {
		t.Fatalf("result = %+v", res)
	}
	st := inst.Status()
	if st.State != "done" || !st.Terminated || st.SinkValue == nil || *st.SinkValue != 6 {
		t.Fatalf("status = %+v", st)
	}
	// Post-done ingest is refused at admission.
	if _, err := inst.TryIngest([]seq.Interaction{it(1, 2)}, 0); !errors.Is(err, ErrInstanceDone) {
		t.Fatalf("post-done ingest err = %v", err)
	}
}

func TestBackpressureFailFast(t *testing.T) {
	s := newTestServer(t, Options{MaxPending: 8})
	inst := mustRegister(t, s, InstanceConfig{Name: "w", N: 16, Algorithm: "waiting"})
	// A batch larger than the whole budget can never be admitted.
	if _, err := inst.TryIngest(offSinkBatch(16, 9, 1), 0); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("oversized TryIngest err = %v, want ErrBackpressure", err)
	}
	// Blocking Ingest honors its deadline while the queue stays full.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := inst.Ingest(ctx, offSinkBatch(16, 9, 2), 0); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("blocking Ingest err = %v, want ErrBackpressure", err)
	}
	// A batch that fits is admitted fine afterwards.
	h, err := inst.TryIngest(offSinkBatch(16, 4, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer wcancel()
	if err := h.Wait(wctx); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceDedupAndGap(t *testing.T) {
	s := newTestServer(t, Options{})
	inst := mustRegister(t, s, InstanceConfig{Name: "w", N: 8, Algorithm: "waiting"})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	batch := offSinkBatch(8, 3, 1)
	h, err := inst.Ingest(ctx, batch, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	before, err := inst.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Retrying seq 1 is an idempotent ack: nothing is re-applied.
	h2, err := inst.Ingest(ctx, batch, 1)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-h2.Done():
	default:
		t.Fatal("duplicate should resolve immediately")
	}
	after, err := inst.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(before)
	b2, _ := json.Marshal(after)
	if string(b1) != string(b2) {
		t.Fatalf("duplicate changed state:\n%s\n%s", b1, b2)
	}
	// A gap is rejected.
	if _, err := inst.Ingest(ctx, batch, 5); !errors.Is(err, ErrSequenceGap) {
		t.Fatalf("gap err = %v", err)
	}
	if st := inst.Status(); st.LastSeq != 1 || st.AppliedSeq != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, Options{})
	victim := mustRegister(t, s, InstanceConfig{Name: "victim", N: 8, Algorithm: "waiting"})
	healthy := mustRegister(t, s, gatherCfg("healthy", 4))

	// Force a worker panic: a nil engine dereferences on the next apply.
	victim.mu.Lock()
	victim.eng = nil
	victim.mu.Unlock()
	h, err := victim.TryIngest(offSinkBatch(8, 2, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := h.Wait(ctx); !errors.Is(err, ErrInstanceFailed) {
		t.Fatalf("handle err = %v, want ErrInstanceFailed", err)
	}
	if st := victim.Status(); st.State != "failed" || st.FailReason == "" {
		t.Fatalf("victim status = %+v", st)
	}
	if _, err := victim.TryIngest(offSinkBatch(8, 1, 2), 0); !errors.Is(err, ErrInstanceFailed) {
		t.Fatalf("post-failure ingest err = %v", err)
	}

	// The server and its other instances keep working.
	h2, err := healthy.TryIngest([]seq.Interaction{it(2, 3)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestWatchdogFlagsStalledInstance(t *testing.T) {
	s := newTestServer(t, Options{StallTimeout: 20 * time.Millisecond})
	inst := mustRegister(t, s, InstanceConfig{Name: "w", N: 8, Algorithm: "waiting"})
	// Fabricate a stuck worker: pending work, no progress for a while.
	inst.mu.Lock()
	inst.pendingOps = 3
	inst.lastMove = time.Now().Add(-time.Minute)
	inst.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if inst.Status().Stalled {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("watchdog never flagged the stalled instance")
}

func TestDrainFlushesAndPersists(t *testing.T) {
	dir := t.TempDir()
	s, err := NewServer(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Register(InstanceConfig{Name: "w", N: 8, Algorithm: "waiting"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var want string
	for i := 0; i < 5; i++ {
		if _, err := inst.Ingest(ctx, offSinkBatch(8, 7, uint64(i+1)), 0); err != nil {
			t.Fatal(err)
		}
	}
	st, err := inst.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(st)
	want = string(b)

	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Draining is latched: registration and ingest refuse.
	if _, err := s.Register(gatherCfg("late", 4)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain register err = %v", err)
	}

	// A new server over the same directory resumes identically.
	s2 := newTestServer(t, Options{Dir: dir})
	inst2, ok := s2.Get("w")
	if !ok {
		t.Fatal("instance not recovered")
	}
	st2, err := inst2.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(st2)
	if string(b2) != want {
		t.Fatalf("recovered state diverged:\n got %s\nwant %s", b2, want)
	}
	if got := inst2.Status(); got.LastSeq != 5 || got.AppliedSeq != 5 {
		t.Fatalf("recovered status = %+v", got)
	}
	// And keeps serving.
	h, err := inst2.Ingest(ctx, offSinkBatch(8, 3, 99), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryAfterAbruptClose(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	s, err := NewServer(Options{Dir: dir, SnapshotEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Register(gatherCfg("g", 16))
	if err != nil {
		t.Fatal(err)
	}
	// Terminating workload fed with explicit seqs, acked batch by batch.
	gen := seq.UniformGen(16, rng.New(42))
	var fed []seq.Interaction
	for t0 := 0; t0 < 400; t0++ {
		fed = append(fed, gen(t0))
	}
	// The gathering run may terminate partway through the workload;
	// ingest then refuses with ErrInstanceDone, which ends the feed.
	var n uint64
	for i := 0; i+4 <= len(fed); i += 4 {
		n++
		h, err := inst.Ingest(ctx, fed[i:i+4], n)
		if errors.Is(err, ErrInstanceDone) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Wait(ctx); err != nil && !errors.Is(err, ErrInstanceDone) {
			t.Fatal(err)
		}
	}
	want, err := inst.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	// Abrupt close: no drain, no final snapshot. Durable = snapshot at
	// some rotation + journal tail.
	s.Close()

	s2 := newTestServer(t, Options{Dir: dir, SnapshotEvery: 10})
	inst2, ok := s2.Get("g")
	if !ok {
		t.Fatal("instance not recovered")
	}
	got, err := inst2.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("recovered state diverged:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

func TestRemoveDeletesJournal(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Options{Dir: dir})
	mustRegister(t, s, gatherCfg("gone", 4))
	if err := s.Remove("gone"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("gone"); ok {
		t.Fatal("instance still registered")
	}
	// The name is reusable, including its directory.
	mustRegister(t, s, gatherCfg("gone", 4))
	if err := s.Remove("nope"); err == nil {
		t.Fatal("removing a missing instance should fail")
	}
}

func TestServerStatusOrdering(t *testing.T) {
	s := newTestServer(t, Options{})
	for _, name := range []string{"zeta", "alpha", "mid"} {
		mustRegister(t, s, gatherCfg(name, 4))
	}
	st := s.Status()
	if len(st.Instances) != 3 {
		t.Fatalf("instances = %d", len(st.Instances))
	}
	for i, want := range []string{"alpha", "mid", "zeta"} {
		if st.Instances[i].Name != want {
			t.Fatalf("order = %v", st.Instances)
		}
	}
}

func TestIngestValidation(t *testing.T) {
	s := newTestServer(t, Options{})
	inst := mustRegister(t, s, InstanceConfig{Name: "w", N: 4, Algorithm: "waiting"})
	for _, bad := range [][]seq.Interaction{
		nil,
		{it(1, 1)},
		{it(0, 9)},
		{{U: -1, V: 2}},
	} {
		if _, err := inst.TryIngest(bad, 0); err == nil {
			t.Errorf("TryIngest(%v) should fail", bad)
		}
	}
}

// TestOverloadIsolation asserts the admission-control contract: flooding
// one instance to sustained backpressure must not inflate a sibling
// instance's ingest latency beyond 2× its unloaded baseline (plus a
// fixed scheduling-noise allowance).
func TestOverloadIsolation(t *testing.T) {
	s := newTestServer(t, Options{MaxPending: 64})
	hot := mustRegister(t, s, InstanceConfig{Name: "hot", N: 256, Algorithm: "waiting"})
	cold := mustRegister(t, s, InstanceConfig{Name: "cold", N: 256, Algorithm: "waiting"})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	probe := func(seed uint64) time.Duration {
		start := time.Now()
		h, err := cold.Ingest(ctx, offSinkBatch(256, 8, seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	baseline := time.Duration(0)
	const probes = 50
	for i := 0; i < probes; i++ {
		baseline += probe(uint64(i + 1))
	}
	baseline /= probes

	// Flood the hot instance from the background until told to stop;
	// overloaded closes once the flood has actually hit backpressure, so
	// the loaded probes below run under established overload.
	stop := make(chan struct{})
	rejected := make(chan int, 1)
	overloaded := make(chan struct{})
	go func() {
		batch := offSinkBatch(256, 64, 7)
		n := 0
		for {
			select {
			case <-stop:
				rejected <- n
				return
			default:
			}
			if _, err := hot.TryIngest(batch, 0); errors.Is(err, ErrBackpressure) {
				if n == 0 {
					close(overloaded)
				}
				n++
			}
		}
	}()
	select {
	case <-overloaded:
	case <-ctx.Done():
		t.Fatal("flood never hit backpressure — overload not established")
	}

	loaded := time.Duration(0)
	for i := 0; i < probes; i++ {
		loaded += probe(uint64(i + 1000))
	}
	loaded /= probes
	close(stop)
	nRejected := <-rejected

	if nRejected == 0 {
		t.Fatal("flood stopped rejecting — overload not sustained")
	}
	// 2× baseline plus 20ms absolute margin for scheduler noise on tiny
	// baselines.
	if limit := 2*baseline + 20*time.Millisecond; loaded > limit {
		t.Fatalf("cold ingest latency %v under overload exceeds limit %v (baseline %v)", loaded, limit, baseline)
	}
	if hotSt := hot.Status(); hotSt.State != "running" {
		t.Fatalf("hot status = %+v", hotSt)
	}
}

func TestHandleWaitContext(t *testing.T) {
	h := newHandle()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := h.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = %v", err)
	}
	h.err = fmt.Errorf("boom")
	close(h.ch)
	if err := h.Wait(context.Background()); err == nil || err.Error() != "boom" {
		t.Fatalf("Wait = %v", err)
	}
}
