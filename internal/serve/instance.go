package serve

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"sync"
	"time"

	"doda/internal/agg"
	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/graph"
	"doda/internal/seq"
)

// Sentinel errors callers branch on.
var (
	// ErrBackpressure reports a full per-instance admission budget; the
	// HTTP layer translates it to 429 Too Many Requests.
	ErrBackpressure = errors.New("serve: instance queue full, retry later")
	// ErrInstanceDone reports ingest into an instance whose aggregation
	// already finished.
	ErrInstanceDone = errors.New("serve: instance finished")
	// ErrInstanceFailed reports ingest into an instance whose worker
	// failed (panic, engine violation, or wedged log beyond recovery).
	ErrInstanceFailed = errors.New("serve: instance failed")
	// ErrInstanceClosed reports ingest into a closed (or draining)
	// instance.
	ErrInstanceClosed = errors.New("serve: instance closed")
	// ErrSequenceGap reports a stamped batch that skips ahead of the
	// journaled sequence.
	ErrSequenceGap = errors.New("serve: ingest sequence gap")
)

// InstanceConfig describes one aggregation instance. It is the WAL
// header payload, so it must stay pure data.
type InstanceConfig struct {
	// Name identifies the instance; it doubles as its directory name
	// ([a-zA-Z0-9._-]+, no leading dot).
	Name string `json:"name"`
	// N is the node count (>= 2).
	N int `json:"n"`
	// Algorithm is the aggregation algorithm: "waiting" or "gathering"
	// (the knowledge-free, snapshot-able members of the repo's registry;
	// the knowledge-backed algorithms need the future view, which a live
	// stream by definition does not have).
	Algorithm string `json:"algorithm"`
	// Agg names the aggregation function: min, max, sum or count
	// (default min).
	Agg string `json:"agg,omitempty"`
	// Sink is the sink node (default 0).
	Sink int `json:"sink,omitempty"`
	// Provenance is full, count or off (default full).
	Provenance string `json:"provenance,omitempty"`
	// MaxInteractions caps the instance's stream (default: practically
	// unbounded).
	MaxInteractions int `json:"max_interactions,omitempty"`
}

// defaultMaxInteractions stands in for "unbounded" on live streams.
const defaultMaxInteractions = int(1) << 50

var nameRE = regexp.MustCompile(`^[a-zA-Z0-9_-][a-zA-Z0-9._-]*$`)

// engineConfig resolves the serving config into a core.Config plus the
// algorithm instance.
func (c InstanceConfig) engineConfig() (core.Config, core.Algorithm, error) {
	if !nameRE.MatchString(c.Name) {
		return core.Config{}, nil, fmt.Errorf("serve: invalid instance name %q", c.Name)
	}
	var alg core.Algorithm
	switch c.Algorithm {
	case "waiting":
		alg = algorithms.Waiting{}
	case "gathering":
		alg = algorithms.NewGathering()
	default:
		return core.Config{}, nil, fmt.Errorf("serve: unknown or unservable algorithm %q (want waiting or gathering)", c.Algorithm)
	}
	var af agg.Func
	switch c.Agg {
	case "", "min":
		af = agg.Min
	case "max":
		af = agg.Max
	case "sum":
		af = agg.Sum
	case "count":
		af = agg.Count
	default:
		return core.Config{}, nil, fmt.Errorf("serve: unknown aggregation %q", c.Agg)
	}
	prov := core.ProvenanceFull
	if c.Provenance != "" {
		var err error
		prov, err = core.ParseProvenanceMode(c.Provenance)
		if err != nil {
			return core.Config{}, nil, err
		}
	}
	maxIt := c.MaxInteractions
	if maxIt == 0 {
		maxIt = defaultMaxInteractions
	}
	cfg := core.Config{
		N:               c.N,
		Sink:            graph.NodeID(c.Sink),
		Agg:             af,
		MaxInteractions: maxIt,
		Provenance:      prov,
		VerifyAggregate: true,
	}
	return cfg, alg, nil
}

// normalized returns the config with defaults made explicit, so the WAL
// header and a restart's engineConfig agree exactly.
func (c InstanceConfig) normalized() InstanceConfig {
	if c.Agg == "" {
		c.Agg = "min"
	}
	if c.Provenance == "" {
		c.Provenance = core.ProvenanceFull.String()
	}
	return c
}

// Handle acknowledges one accepted batch: Done closes when the batch has
// been applied to the engine (or the instance failed first), Err reports
// how it went.
type Handle struct {
	ch  chan struct{}
	err error
}

func newHandle() *Handle { return &Handle{ch: make(chan struct{})} }

// resolvedHandle is the pre-completed ack of an idempotent duplicate.
func resolvedHandle() *Handle {
	h := newHandle()
	close(h.ch)
	return h
}

// Done closes when the batch has been applied (or abandoned).
func (h *Handle) Done() <-chan struct{} { return h.ch }

// Err reports the batch's fate; call it after Done closes.
func (h *Handle) Err() error { return h.err }

// Wait blocks until the batch is applied or ctx expires.
func (h *Handle) Wait(ctx context.Context) error {
	select {
	case <-h.ch:
		return h.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// instance state machine.
type instanceState int

const (
	stateRunning instanceState = iota
	stateDone                  // aggregation finished (terminated, failed run, or horizon)
	stateFailed                // worker panicked or infrastructure failed
	stateClosed
	stateEvicted // engine released; state lives in the WAL until next touch
)

func (s instanceState) String() string {
	switch s {
	case stateRunning:
		return "running"
	case stateDone:
		return "done"
	case stateFailed:
		return "failed"
	case stateClosed:
		return "closed"
	case stateEvicted:
		return "evicted"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ingestBatch is one queued unit of work.
type ingestBatch struct {
	seq    uint64
	its    []seq.Interaction
	handle *Handle
}

// Instance is one live aggregation: a push-mode engine, its bounded
// ingest queue, its WAL, and the worker goroutine applying batches.
type Instance struct {
	srv *Server
	cfg InstanceConfig

	mu   sync.Mutex
	cond *sync.Cond
	// queue is the journaled-but-unapplied batch deque; pendingOps is the
	// summed interaction count in it, charged against MaxPending.
	queue      []ingestBatch
	pendingOps int
	lastSeq    uint64 // highest journaled sequence
	appliedSeq uint64 // highest applied sequence
	appliedOps int    // interactions applied since the last rotation
	totalOps   int    // interactions applied since registration
	state      instanceState
	failReason string
	stalled    bool
	noAdmit    bool // drain: reject admissions, keep applying
	closing    bool // worker should exit once the queue is empty
	evicting   bool // an eviction is flushing the queue; admissions wait
	lastMove   time.Time
	lastTouch  time.Time   // last ingest/state read; drives LRU + IdleTTL
	result     core.Result // valid once state == stateDone

	eng *core.Engine
	log *wal // nil in ephemeral mode

	workerDone chan struct{}
}

// newInstance wires an instance around an engine that is already Begun
// (fresh registration) or Restored (recovery).
func newInstance(srv *Server, cfg InstanceConfig, eng *core.Engine, log *wal, lastSeq, appliedSeq uint64) *Instance {
	inst := &Instance{
		srv:        srv,
		cfg:        cfg,
		eng:        eng,
		log:        log,
		lastSeq:    lastSeq,
		appliedSeq: appliedSeq,
		lastMove:   time.Now(),
		workerDone: make(chan struct{}),
	}
	inst.lastTouch = inst.lastMove
	inst.cond = sync.NewCond(&inst.mu)
	return inst
}

// isLive reports whether the instance currently holds engine state.
func (inst *Instance) isLive() bool {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.eng != nil && (inst.state == stateRunning || inst.state == stateDone)
}

// touched returns the last-touch time for LRU ordering.
func (inst *Instance) touched() time.Time {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.lastTouch
}

// Name returns the instance name.
func (inst *Instance) Name() string { return inst.cfg.Name }

// Config returns the instance configuration.
func (inst *Instance) Config() InstanceConfig { return inst.cfg }

// validate range-checks a batch up front so malformed input is a client
// error at admission, never a poisoned engine later.
func (inst *Instance) validate(its []seq.Interaction) error {
	if len(its) == 0 {
		return fmt.Errorf("serve: empty batch")
	}
	for _, it := range its {
		if it.U < 0 || it.V < 0 || int(it.U) >= inst.cfg.N || int(it.V) >= inst.cfg.N || it.U == it.V {
			return fmt.Errorf("serve: interaction {%d %d} invalid for n=%d", it.U, it.V, inst.cfg.N)
		}
	}
	return nil
}

// admitLocked performs sequencing and admission under inst.mu. It
// returns (handle, true) for an idempotent duplicate, an error for a
// refused batch, or (nil, false, nil) when the batch may proceed.
func (inst *Instance) admitLocked(seqNo uint64, ops int) (*Handle, bool, error) {
	switch inst.state {
	case stateDone:
		if seqNo != 0 && seqNo <= inst.lastSeq {
			// Retry of an acknowledged batch — possibly the very batch
			// that finished the instance, whose ack was lost in flight.
			// Ack again so the exactly-once contract survives termination.
			inst.lastTouch = time.Now()
			return resolvedHandle(), true, nil
		}
		return nil, false, ErrInstanceDone
	case stateFailed:
		return nil, false, fmt.Errorf("%w: %s", ErrInstanceFailed, inst.failReason)
	case stateClosed:
		return nil, false, ErrInstanceClosed
	case stateEvicted:
		// Ingest paths rehydrate before admitting; reaching this is a
		// caller that skipped ensureLive.
		return nil, false, fmt.Errorf("serve: instance %s evicted", inst.cfg.Name)
	}
	if inst.noAdmit {
		return nil, false, ErrInstanceClosed
	}
	if seqNo != 0 {
		if seqNo <= inst.lastSeq {
			// Retry of an acknowledged batch: ack again, journal nothing.
			inst.lastTouch = time.Now()
			return resolvedHandle(), true, nil
		}
		if seqNo != inst.lastSeq+1 {
			return nil, false, fmt.Errorf("%w: got %d, journal is at %d", ErrSequenceGap, seqNo, inst.lastSeq)
		}
	}
	if inst.log != nil && inst.log.broken {
		return nil, false, ErrWAL
	}
	if inst.pendingOps+ops > inst.srv.opt.MaxPending {
		return nil, false, ErrBackpressure
	}
	return nil, false, nil
}

// ingestLocked journals and enqueues an admitted batch. Caller holds
// inst.mu and has passed admitLocked.
func (inst *Instance) ingestLocked(seqNo uint64, its []seq.Interaction) (*Handle, error) {
	if seqNo == 0 {
		seqNo = inst.lastSeq + 1
	}
	if inst.log != nil {
		rec := walIngest{Seq: seqNo, Its: make([][2]int, len(its))}
		for i, it := range its {
			rec.Its[i] = [2]int{int(it.U), int(it.V)}
		}
		if err := inst.log.append(rec); err != nil {
			// The record may be half-written: the log is wedged until the
			// worker rewrites it. The batch was NOT acknowledged, so the
			// torn tail is dropped on recovery — semantics preserved.
			inst.cond.Broadcast() // wake the worker to rewrite
			return nil, err
		}
	}
	h := newHandle()
	inst.lastSeq = seqNo
	inst.queue = append(inst.queue, ingestBatch{seq: seqNo, its: its, handle: h})
	inst.pendingOps += len(its)
	inst.lastTouch = time.Now()
	inst.cond.Broadcast()
	return h, nil
}

// settleLocked waits out an in-flight eviction and reports whether the
// instance ended up evicted (caller must unlock, rehydrate via
// ensureLive, and retry). On false return the caller still holds the
// lock with no eviction pending, so admission checks are stable.
func (inst *Instance) settleLocked(ctx context.Context) bool {
	for inst.evicting && (ctx == nil || ctx.Err() == nil) {
		inst.cond.Wait()
	}
	return inst.state == stateEvicted
}

// TryIngest admits one batch without blocking on backpressure: a full
// queue fails fast with ErrBackpressure. seqNo stamps the batch for
// exactly-once retries (0 = server-assigned, at-least-once). The batch
// is durable when TryIngest returns; the Handle resolves when it has
// been applied. An evicted instance is transparently rehydrated first
// (TryIngest then blocks only on the rehydration itself, never on a
// full queue).
func (inst *Instance) TryIngest(its []seq.Interaction, seqNo uint64) (*Handle, error) {
	if err := inst.validate(its); err != nil {
		return nil, err
	}
	// Bounded retries: with a tiny live cap and hot contention the
	// instance can be re-evicted between rehydration and admission;
	// after a few losses surface backpressure and let the client retry.
	for attempt := 0; attempt < 8; attempt++ {
		inst.mu.Lock()
		if inst.settleLocked(nil) {
			inst.mu.Unlock()
			if err := inst.srv.ensureLive(inst); err != nil {
				return nil, err
			}
			continue
		}
		h, dup, err := inst.admitLocked(seqNo, len(its))
		if dup || err != nil {
			inst.mu.Unlock()
			return h, err
		}
		h, err = inst.ingestLocked(seqNo, its)
		inst.mu.Unlock()
		return h, err
	}
	return nil, fmt.Errorf("%w: instance thrashing in and out of memory", ErrBackpressure)
}

// Ingest admits one batch, blocking while the queue is full until a slot
// frees or ctx expires — the in-process backpressure contract. Evicted
// instances rehydrate transparently.
func (inst *Instance) Ingest(ctx context.Context, its []seq.Interaction, seqNo uint64) (*Handle, error) {
	if err := inst.validate(its); err != nil {
		return nil, err
	}
	// Wake the cond wait when ctx fires so the deadline is honored.
	stop := context.AfterFunc(ctx, func() {
		inst.mu.Lock()
		inst.cond.Broadcast()
		inst.mu.Unlock()
	})
	defer stop()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		inst.mu.Lock()
		if inst.settleLocked(ctx) {
			inst.mu.Unlock()
			if err := inst.srv.ensureLive(inst); err != nil {
				return nil, err
			}
			continue
		}
		stale := false
		for !stale {
			h, dup, err := inst.admitLocked(seqNo, len(its))
			if dup {
				inst.mu.Unlock()
				return h, nil
			}
			switch {
			case err == nil:
				h, err := inst.ingestLocked(seqNo, its)
				inst.mu.Unlock()
				return h, err
			case errors.Is(err, ErrBackpressure) || errors.Is(err, ErrWAL):
				if ctxErr := ctx.Err(); ctxErr != nil {
					inst.mu.Unlock()
					return nil, fmt.Errorf("%w (%w)", err, ctxErr)
				}
				inst.cond.Wait()
				// An eviction may have started while we waited: settle
				// and rehydrate from the top instead of admitting into
				// a vanishing engine.
				stale = inst.evicting || inst.state == stateEvicted
			default:
				inst.mu.Unlock()
				return nil, err
			}
		}
		inst.mu.Unlock()
	}
}

// worker is the instance's apply loop: dequeue, feed the engine, resolve
// handles, rotate the WAL on schedule. Panics are isolated here — the
// instance fails, the server lives.
func (inst *Instance) worker() {
	defer close(inst.workerDone)
	defer func() {
		if r := recover(); r != nil {
			inst.markFailed(fmt.Sprintf("worker panic: %v", r))
			inst.srv.logf("serve: instance %s: worker panic: %v", inst.cfg.Name, r)
		}
	}()
	for {
		inst.mu.Lock()
		for len(inst.queue) == 0 && !inst.closing &&
			!(inst.log != nil && inst.log.broken) {
			inst.cond.Wait()
		}
		if inst.log != nil && inst.log.broken {
			if err := inst.rotateLocked(); err != nil {
				reason := fmt.Sprintf("write-ahead log unrecoverable: %v", err)
				inst.mu.Unlock()
				inst.markFailed(reason)
				return
			}
			inst.cond.Broadcast() // admissions may resume
		}
		if len(inst.queue) == 0 {
			if inst.closing {
				inst.mu.Unlock()
				return
			}
			inst.mu.Unlock()
			continue
		}
		batch := inst.queue[0]
		inst.mu.Unlock()

		// Apply outside the lock: compute must not block admissions.
		var feedErr error
		for _, it := range batch.its {
			if _, err := inst.eng.Feed(it); err != nil {
				feedErr = err
				break
			}
		}

		inst.mu.Lock()
		inst.queue = inst.queue[1:]
		if len(inst.queue) == 0 {
			inst.queue = nil
		}
		inst.pendingOps -= len(batch.its)
		inst.appliedSeq = batch.seq
		inst.appliedOps += len(batch.its)
		inst.totalOps += len(batch.its)
		inst.lastMove = time.Now()
		inst.stalled = false
		// Wake blocked Ingest callers (budget freed) and State waiters
		// (queue may have flushed).
		inst.cond.Broadcast()
		if feedErr != nil {
			reason := fmt.Sprintf("engine rejected batch %d: %v", batch.seq, feedErr)
			inst.mu.Unlock()
			batch.handle.err = fmt.Errorf("%w: %s", ErrInstanceFailed, reason)
			close(batch.handle.ch)
			inst.markFailed(reason)
			return
		}
		engineDone := inst.eng.StreamDone()
		rotateNow := inst.log != nil &&
			(inst.appliedOps >= inst.srv.opt.SnapshotEvery || engineDone)
		if rotateNow {
			if err := inst.rotateLocked(); err != nil {
				reason := fmt.Sprintf("snapshot rotation: %v", err)
				inst.mu.Unlock()
				batch.handle.err = fmt.Errorf("%w: %s", ErrInstanceFailed, reason)
				close(batch.handle.ch)
				inst.markFailed(reason)
				return
			}
			inst.cond.Broadcast() // a freed budget may unblock Ingest
		}
		if engineDone && inst.state == stateRunning {
			res, err := inst.eng.Finish()
			if err != nil {
				inst.mu.Unlock()
				batch.handle.err = err
				close(batch.handle.ch)
				inst.markFailed(fmt.Sprintf("terminal verification: %v", err))
				return
			}
			inst.result = res
			inst.state = stateDone
			inst.cond.Broadcast()
		}
		inst.mu.Unlock()
		close(batch.handle.ch)
		if engineDone {
			inst.resolvePending(ErrInstanceDone)
		}
	}
}

// rotateLocked snapshots the engine and rewrites the WAL as a fresh
// generation (state + pending batches). Caller holds inst.mu; the engine
// is quiescent because only the worker mutates it and the worker is the
// caller.
func (inst *Instance) rotateLocked() error {
	st, err := inst.eng.StateSnapshot()
	if err != nil {
		return err
	}
	pending := make([]walIngest, len(inst.queue))
	for i, b := range inst.queue {
		rec := walIngest{Seq: b.seq, Its: make([][2]int, len(b.its))}
		for k, it := range b.its {
			rec.Its[k] = [2]int{int(it.U), int(it.V)}
		}
		pending[i] = rec
	}
	if err := inst.log.rotate(inst.cfg, walState{AppliedSeq: inst.appliedSeq, State: st}, pending); err != nil {
		return err
	}
	inst.appliedOps = 0
	return nil
}

// markFailed transitions the instance to failed and resolves every
// queued handle with the failure.
func (inst *Instance) markFailed(reason string) {
	inst.mu.Lock()
	if inst.state == stateRunning {
		inst.state = stateFailed
		inst.failReason = reason
	}
	inst.cond.Broadcast()
	inst.mu.Unlock()
	inst.resolvePending(fmt.Errorf("%w: %s", ErrInstanceFailed, reason))
}

// resolvePending fails (or done-acks) every still-queued handle.
func (inst *Instance) resolvePending(err error) {
	inst.mu.Lock()
	queue := inst.queue
	inst.queue = nil
	inst.pendingOps = 0
	inst.cond.Broadcast()
	inst.mu.Unlock()
	for _, b := range queue {
		b.handle.err = err
		close(b.handle.ch)
	}
}

// drain stops admissions, waits for the queue to empty (bounded by ctx),
// then stops the worker and closes the WAL after a final rotation.
func (inst *Instance) drain(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		inst.mu.Lock()
		inst.cond.Broadcast()
		inst.mu.Unlock()
	})
	defer stop()
	inst.mu.Lock()
	inst.noAdmit = true
	for len(inst.queue) > 0 && inst.state == stateRunning && ctx.Err() == nil {
		inst.cond.Wait()
	}
	flushed := len(inst.queue) == 0
	inst.closing = true
	inst.cond.Broadcast()
	done := inst.workerDone // under the lock: rehydration swaps the channel
	inst.mu.Unlock()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain of %s: %w", inst.cfg.Name, ctx.Err())
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.log != nil {
		if inst.state == stateRunning || inst.state == stateDone {
			// Final snapshot so restart resumes from the flushed state
			// without replay.
			if err := inst.rotateLocked(); err != nil {
				inst.srv.logf("serve: instance %s: final snapshot: %v", inst.cfg.Name, err)
			}
		}
		inst.log.close()
	}
	if inst.state == stateRunning {
		inst.state = stateClosed
	}
	if !flushed {
		return fmt.Errorf("serve: drain of %s: queue not empty", inst.cfg.Name)
	}
	return nil
}

// evict flushes the queue (bounded by ctx), stops the worker, makes any
// applied-but-unsnapshotted progress durable, and releases the engine
// and journal — the instance's only remaining footprint is its WAL and
// this struct. Caller holds the server's lifeMu. On a flush timeout the
// eviction aborts and the instance stays live.
//
// While evicting is set every admission path settles (waits) before
// touching the queue, so the flush cannot be outrun by new batches.
func (inst *Instance) evict(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		inst.mu.Lock()
		inst.cond.Broadcast()
		inst.mu.Unlock()
	})
	defer stop()

	inst.mu.Lock()
	if inst.state == stateEvicted {
		inst.mu.Unlock()
		return nil
	}
	if (inst.state != stateRunning && inst.state != stateDone) || inst.eng == nil {
		st := inst.state
		inst.mu.Unlock()
		return fmt.Errorf("serve: cannot evict %s instance %s", st, inst.cfg.Name)
	}
	if inst.log == nil {
		inst.mu.Unlock()
		return fmt.Errorf("serve: cannot evict ephemeral instance %s", inst.cfg.Name)
	}
	inst.evicting = true
	for len(inst.queue) > 0 && inst.state == stateRunning && ctx.Err() == nil {
		inst.cond.Wait()
	}
	if len(inst.queue) > 0 && inst.state == stateRunning {
		// Flush timed out: abort; the instance stays live and admissions
		// waiting on the eviction resume.
		inst.evicting = false
		inst.cond.Broadcast()
		inst.mu.Unlock()
		return fmt.Errorf("serve: evict %s: queue would not flush: %w", inst.cfg.Name, ctx.Err())
	}
	inst.closing = true
	inst.cond.Broadcast()
	ch := inst.workerDone
	inst.mu.Unlock()
	<-ch

	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.state != stateRunning && inst.state != stateDone {
		// The worker failed while flushing; nothing to release safely.
		inst.evicting = false
		inst.cond.Broadcast()
		return fmt.Errorf("serve: evict %s: instance %s", inst.cfg.Name, inst.state)
	}
	// Final snapshot, but only when something was applied since the last
	// rotation. Skipping it is always safe — every acknowledged batch is
	// already durable in the WAL tail and replays at rehydration — so a
	// rotation failure degrades to replay cost, never to data loss. The
	// skip also makes evicting a freshly-registered or just-rotated
	// instance write-free.
	if inst.appliedOps > 0 && !inst.log.broken {
		if err := inst.rotateLocked(); err != nil {
			inst.srv.logf("serve: evict %s: final snapshot: %v (tail remains durable)", inst.cfg.Name, err)
		}
	}
	inst.log.close()
	inst.eng = nil
	inst.log = nil
	// The result aliases engine-owned bitsets (and through them the
	// arena); drop it so eviction actually releases the block. Rehydrate
	// recomputes it from the replayed stream.
	inst.result = core.Result{}
	inst.state = stateEvicted
	inst.closing = false
	inst.evicting = false
	inst.stalled = false
	inst.cond.Broadcast()
	return nil
}

// close shuts the instance down without flushing: pending handles fail.
func (inst *Instance) close() {
	inst.mu.Lock()
	inst.noAdmit = true
	inst.closing = true
	inst.cond.Broadcast()
	done := inst.workerDone // under the lock: rehydration swaps the channel
	inst.mu.Unlock()
	<-done
	inst.resolvePending(ErrInstanceClosed)
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.log != nil {
		inst.log.close()
	}
	if inst.state == stateRunning {
		inst.state = stateClosed
	}
}

// InstanceStatus is one instance's row in the status report.
type InstanceStatus struct {
	Name       string   `json:"name"`
	State      string   `json:"state"`
	FailReason string   `json:"fail_reason,omitempty"`
	Stalled    bool     `json:"stalled,omitempty"`
	N          int      `json:"n"`
	Algorithm  string   `json:"algorithm"`
	Agg        string   `json:"agg"`
	PendingOps int      `json:"pending_ops"`
	LastSeq    uint64   `json:"last_seq"`
	AppliedSeq uint64   `json:"applied_seq"`
	AppliedOps int      `json:"applied_ops"`
	Owners     int      `json:"owners"`
	Terminated bool     `json:"terminated,omitempty"`
	SinkValue  *float64 `json:"sink_value,omitempty"`
	// MemBytes is the instance's arena footprint — the contiguous block
	// its word-backed engine state is carved from. Zero while evicted.
	MemBytes int `json:"mem_bytes,omitempty"`
}

// Status snapshots the instance for /v1/status.
func (inst *Instance) Status() InstanceStatus {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	s := InstanceStatus{
		Name:       inst.cfg.Name,
		State:      inst.state.String(),
		FailReason: inst.failReason,
		Stalled:    inst.stalled,
		N:          inst.cfg.N,
		Algorithm:  inst.cfg.Algorithm,
		Agg:        inst.cfg.Agg,
		PendingOps: inst.pendingOps,
		LastSeq:    inst.lastSeq,
		AppliedSeq: inst.appliedSeq,
		AppliedOps: inst.totalOps,
	}
	if inst.eng != nil {
		s.Owners = inst.eng.OwnerCount()
		if prov, err := core.ParseProvenanceMode(inst.cfg.Provenance); err == nil {
			s.MemBytes = core.ArenaBytes(inst.cfg.N, prov)
		}
	}
	if inst.state == stateDone && inst.result.Terminated {
		s.Terminated = true
		v := inst.result.SinkValue.Num
		s.SinkValue = &v
	}
	return s
}

// State returns the engine snapshot — the deterministic document the
// recovery tests diff. It waits for the pending queue to flush first
// (bounded by ctx) so two servers that accepted the same batches report
// the same state regardless of worker timing. Evicted instances are
// transparently rehydrated.
func (inst *Instance) State(ctx context.Context) (core.EngineState, error) {
	stop := context.AfterFunc(ctx, func() {
		inst.mu.Lock()
		inst.cond.Broadcast()
		inst.mu.Unlock()
	})
	defer stop()
	for {
		if err := ctx.Err(); err != nil {
			return core.EngineState{}, err
		}
		inst.mu.Lock()
		if inst.settleLocked(ctx) {
			inst.mu.Unlock()
			if err := inst.srv.ensureLive(inst); err != nil {
				return core.EngineState{}, err
			}
			continue
		}
		for len(inst.queue) > 0 && inst.state == stateRunning && !inst.evicting && ctx.Err() == nil {
			inst.cond.Wait()
		}
		if inst.evicting || inst.state == stateEvicted {
			// An eviction overtook the flush wait; settle and retry.
			inst.mu.Unlock()
			continue
		}
		if err := ctx.Err(); err != nil {
			inst.mu.Unlock()
			return core.EngineState{}, err
		}
		if inst.state == stateFailed {
			reason := inst.failReason
			inst.mu.Unlock()
			return core.EngineState{}, fmt.Errorf("%w: %s", ErrInstanceFailed, reason)
		}
		inst.lastTouch = time.Now()
		// The worker is idle (queue empty), so reading the engine is safe.
		st, err := inst.eng.StateSnapshot()
		inst.mu.Unlock()
		return st, err
	}
}

// Result returns the finished aggregation's result, rehydrating an
// evicted instance to recompute it.
func (inst *Instance) Result() (core.Result, error) {
	for attempt := 0; attempt < 8; attempt++ {
		inst.mu.Lock()
		if inst.settleLocked(nil) {
			inst.mu.Unlock()
			if err := inst.srv.ensureLive(inst); err != nil {
				return core.Result{}, err
			}
			continue
		}
		defer inst.mu.Unlock()
		switch inst.state {
		case stateDone:
			return inst.result, nil
		case stateFailed:
			return core.Result{}, fmt.Errorf("%w: %s", ErrInstanceFailed, inst.failReason)
		default:
			return core.Result{}, fmt.Errorf("serve: instance %s still running", inst.cfg.Name)
		}
	}
	return core.Result{}, fmt.Errorf("%w: instance thrashing in and out of memory", ErrBackpressure)
}
