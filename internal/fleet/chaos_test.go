package fleet

// Robustness tests: retry pacing, durable coordinator resume, and a
// seeded chaos fleet whose merged output must stay byte-identical to a
// fault-free single-process run.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"doda/internal/chaos"
	"doda/internal/sweep"
	"doda/internal/sweepd"
)

// tinyGrid keeps the resume tests fast; byte-identity is covered by the
// full testGrid elsewhere.
func tinyGrid() sweep.Grid {
	return sweep.Grid{
		Scenarios:  []sweep.ScenarioRef{{Name: "uniform"}, {Name: "churn"}},
		Algorithms: []string{"waiting", "gathering"},
		Sizes:      []int{4, 5, 6, 7},
		Replicas:   1,
		Seed:       777,
	}
}

func TestRetryBackoffDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	for k := 1; k < p.Attempts; k++ {
		d := p.Max
		if exp := p.Base << (k - 1); exp > 0 && exp < p.Max {
			d = exp
		}
		got := p.backoff(11, 3, k)
		if got < d/2 || got >= d {
			t.Fatalf("backoff k=%d: %v outside [%v, %v)", k, got, d/2, d)
		}
		if got != p.backoff(11, 3, k) {
			t.Fatalf("backoff k=%d not deterministic", k)
		}
	}
	if p.backoff(11, 3, 1) == p.backoff(12, 3, 1) && p.backoff(11, 4, 1) == p.backoff(11, 3, 1) {
		t.Fatal("jitter ignores seed and call number")
	}
}

// TestPostJSONRetryHealsTransient: two 503s then success must succeed
// after exactly three attempts.
func TestPostJSONRetryHealsTransient(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, http.StatusOK, OKResponse{Status: "ok"})
	}))
	defer srv.Close()
	var ack OKResponse
	pol := RetryPolicy{Attempts: 5, Base: time.Millisecond, Max: 5 * time.Millisecond}
	code, err := postJSONRetry(context.Background(), srv.Client(), srv.URL, OKResponse{}, &ack, pol, 1, 1)
	if err != nil || code != http.StatusOK {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("want 3 attempts, got %d", got)
	}
	if ack.Status != "ok" {
		t.Fatalf("ack %+v", ack)
	}
}

// TestPostJSONRetryTerminal410: a deliberate 410 must not be retried.
func TestPostJSONRetryTerminal410(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		writeJSON(w, http.StatusGone, OKResponse{Status: "revoked"})
	}))
	defer srv.Close()
	code, err := postJSONRetry(context.Background(), srv.Client(), srv.URL, OKResponse{}, nil,
		RetryPolicy{Attempts: 5, Base: time.Millisecond}, 1, 1)
	if err != nil || code != http.StatusGone {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("410 retried: %d attempts", got)
	}
}

// TestPostJSONRetryExhaustsBudget: a server that never heals burns
// exactly Attempts tries and reports why.
func TestPostJSONRetryExhaustsBudget(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "dead", http.StatusInternalServerError)
	}))
	defer srv.Close()
	_, err := postJSONRetry(context.Background(), srv.Client(), srv.URL, OKResponse{}, nil,
		RetryPolicy{Attempts: 3, Base: time.Millisecond, Max: 2 * time.Millisecond}, 1, 1)
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("want budget-exhausted error, got %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("want 3 attempts, got %d", got)
	}
}

// TestGarbledResponseLeavesDstUntouched: a 200 with a hostile body must
// error without half-writing the destination.
func TestGarbledResponseLeavesDstUntouched(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"lease","shard":7,"lease_id":`) // truncated mid-value
	}))
	defer srv.Close()
	lease := LeaseResponse{Status: "sentinel"}
	_, err := postJSON(context.Background(), srv.Client(), srv.URL, LeaseRequest{}, &lease)
	if err == nil {
		t.Fatal("truncated body must error")
	}
	if lease.Status != "sentinel" || lease.Shard != 0 {
		t.Fatalf("dst was partially written: %+v", lease)
	}
}

// leaseFrom takes one lease directly off the wire.
func leaseFrom(t *testing.T, url, worker string) LeaseResponse {
	t.Helper()
	var lease LeaseResponse
	code, err := postJSON(context.Background(), http.DefaultClient, url+"/v1/lease",
		LeaseRequest{Worker: worker}, &lease)
	if err != nil || code != http.StatusOK || lease.Status != StatusLease {
		t.Fatalf("lease for %s: code=%d status=%q err=%v", worker, code, lease.Status, err)
	}
	return lease
}

// runShard executes one lease's shard to completion in-process.
func runShard(t *testing.T, lease LeaseResponse) {
	t.Helper()
	if _, _, err := sweepd.Run(lease.Grid, lease.Dir, sweepd.Options{
		Workers: 1, ShardIndex: lease.Shard, ShardCount: lease.ShardCount, Resume: true,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCoordinatorResumeRestoresTable: a restarted coordinator must know
// completed shards, honor surviving leases (same lease ID, fresh TTL),
// and adopt checkpoints that finished while it was down.
func TestCoordinatorResumeRestoresTable(t *testing.T) {
	grid := tinyGrid()
	dir := t.TempDir()
	c1, url1 := startCoordinator(t, grid, CoordinatorOptions{ShardCount: 3, Dir: dir, LeaseTTL: time.Minute})

	// Shard A: completed and reported.
	la := leaseFrom(t, url1, "w-done")
	runShard(t, la)
	var ack OKResponse
	if code, err := postJSON(context.Background(), http.DefaultClient, url1+"/v1/complete",
		CompleteRequest{LeaseID: la.LeaseID, Dir: la.Dir}, &ack); err != nil || code != http.StatusOK {
		t.Fatalf("complete: code=%d err=%v", code, err)
	}
	// Shard B: leased and still running when the coordinator dies.
	lb := leaseFrom(t, url1, "w-survivor")
	// Shard C: completed on disk but the completion call was lost.
	lc := leaseFrom(t, url1, "w-lost")
	runShard(t, lc)

	c1.Close()

	c2, url2 := startCoordinator(t, grid, CoordinatorOptions{ShardCount: 3, Dir: dir, LeaseTTL: time.Minute, Resume: true})
	st := c2.Status()
	if st.Shards[la.Shard].State != stateDone {
		t.Fatalf("completed shard not restored: %+v", st.Shards[la.Shard])
	}
	if s := st.Shards[lc.Shard]; s.State != stateDone {
		t.Fatalf("finished checkpoint not adopted: %+v", s)
	}
	if s := st.Shards[lb.Shard]; s.State != stateLeased || s.Worker != "w-survivor" {
		t.Fatalf("surviving lease not restored: %+v", s)
	}
	// The survivor's old lease ID must still heartbeat and complete.
	if code, err := postJSON(context.Background(), http.DefaultClient, url2+"/v1/heartbeat",
		HeartbeatRequest{LeaseID: lb.LeaseID}, &ack); err != nil || code != http.StatusOK {
		t.Fatalf("survivor heartbeat: code=%d err=%v", code, err)
	}
	runShard(t, lb)
	if code, err := postJSON(context.Background(), http.DefaultClient, url2+"/v1/complete",
		CompleteRequest{LeaseID: lb.LeaseID, Dir: lb.Dir}, &ack); err != nil || code != http.StatusOK {
		t.Fatalf("survivor complete: code=%d err=%v", code, err)
	}
	if err := c2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	want, wantTotals, err := sweep.Run(grid, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, gotTotals, err := sweepd.Merge(c2.ShardDirs())
	if err != nil {
		t.Fatal(err)
	}
	if renderJSONL(t, got, gotTotals) != renderJSONL(t, want, wantTotals) {
		t.Fatal("resumed fleet merge differs from single-process run")
	}
}

// TestResumeRefusesForeignLog: a coord.log from another grid or shard
// count must not be resumed.
func TestResumeRefusesForeignLog(t *testing.T) {
	dir := t.TempDir()
	grid := tinyGrid()
	c, err := NewCoordinator(grid, CoordinatorOptions{ShardCount: 3, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	other := grid
	other.Seed = 778
	if _, err := NewCoordinator(other, CoordinatorOptions{ShardCount: 3, Dir: dir, Resume: true}); err == nil || !strings.Contains(err.Error(), "different grid") {
		t.Fatalf("foreign grid resume: want fingerprint error, got %v", err)
	}
	if _, err := NewCoordinator(grid, CoordinatorOptions{ShardCount: 4, Dir: dir, Resume: true}); err == nil || !strings.Contains(err.Error(), "shards") {
		t.Fatalf("shard-count mismatch resume: want error, got %v", err)
	}
	if _, err := NewCoordinator(grid, CoordinatorOptions{ShardCount: 3, Dir: dir}); err == nil || !strings.Contains(err.Error(), "exists") {
		t.Fatalf("fresh coordinator over existing log: want refusal, got %v", err)
	}
	if _, err := NewCoordinator(grid, CoordinatorOptions{ShardCount: 3, Dir: t.TempDir(), Resume: true}); err == nil || !strings.Contains(err.Error(), "nothing to resume") {
		t.Fatalf("resume without a log: want error, got %v", err)
	}
}

// TestCoordinatorCrashMidFleetResume is the pillar-1 e2e: kill the
// coordinator while workers are mid-shard, resume it on the same
// address, and require the merged output byte-identical to an
// uninterrupted run.
func TestCoordinatorCrashMidFleetResume(t *testing.T) {
	grid := testGrid()
	want, wantTotals, err := sweep.Run(grid, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	c1, err := NewCoordinator(grid, CoordinatorOptions{ShardCount: 4, Dir: dir, LeaseTTL: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + addr

	// Workers with a patient retry policy: they must ride out the
	// coordinator's death and rebirth without giving up.
	pol := RetryPolicy{Attempts: 60, Base: 10 * time.Millisecond, Max: 200 * time.Millisecond}
	errs := make(chan error, 3)
	for w := 0; w < 3; w++ {
		go func(w int) {
			errs <- Work(context.Background(), url, WorkerOptions{
				Name: fmt.Sprintf("worker-%d", w), Workers: 2, Retry: pol, Logf: t.Logf,
			})
		}(w)
	}

	// Kill the coordinator once at least one grant is journaled.
	deadline := time.Now().Add(10 * time.Second)
	for c1.Status().Done == 0 && time.Now().Before(deadline) {
		leased := false
		for _, s := range c1.Status().Shards {
			if s.State == stateLeased {
				leased = true
			}
		}
		if leased {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	c1.Close()

	c2, err := NewCoordinator(grid, CoordinatorOptions{ShardCount: 4, Dir: dir, LeaseTTL: 10 * time.Second, Resume: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	// The old port lingers briefly; retry the bind like a restarted
	// process would.
	for i := 0; ; i++ {
		if _, err = c2.Start(addr); err == nil {
			break
		}
		if i > 200 {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer c2.Close()

	for w := 0; w < 3; w++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker failed: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c2.Wait(ctx); err != nil {
		t.Fatalf("resumed coordinator never completed: %v", err)
	}

	got, gotTotals, err := sweepd.Merge(c2.ShardDirs())
	if err != nil {
		t.Fatal(err)
	}
	if renderJSONL(t, got, gotTotals) != renderJSONL(t, want, wantTotals) {
		t.Fatal("crash-resumed fleet merge differs from single-process run")
	}
}

// TestChaosFleetByteIdentical is the pillar-3 e2e: three workers, each
// with a seeded fault filesystem and a seeded fault transport, restart
// on every injected death until the fleet drains — and the merge must
// still be byte-identical to a clean single-process run.
func TestChaosFleetByteIdentical(t *testing.T) {
	grid := testGrid()
	want, wantTotals, err := sweep.Run(grid, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	c, url := startCoordinator(t, grid, CoordinatorOptions{
		ShardCount: 4,
		Dir:        t.TempDir(),
		LeaseTTL:   2 * time.Second,
	})

	pol := RetryPolicy{Attempts: 10, Base: 5 * time.Millisecond, Max: 100 * time.Millisecond}
	errs := make(chan error, 3)
	for w := 0; w < 3; w++ {
		go func(w int) {
			seed := uint64(1000 + w)
			fs := chaos.NewFaultFS(chaos.Disk, chaos.FSOptions{
				Seed: seed, WriteFail: 0.05, SyncFail: 0.05, RenameFail: 0.03, TornRename: 0.02, MaxFaults: 6,
			})
			client := &http.Client{
				Timeout: 10 * time.Second,
				Transport: chaos.NewTransport(nil, chaos.TransportOptions{
					Seed: seed, Latency: 0.1, MaxLatency: 20 * time.Millisecond,
					Reset: 0.05, Err5xx: 0.05, DropResponse: 0.03, MaxFaults: 10,
				}),
			}
			opt := WorkerOptions{
				Name: fmt.Sprintf("chaos-%d", w), Workers: 2,
				Client: client, Retry: pol, RetrySeed: seed, FS: fs, Logf: t.Logf,
			}
			// Each injected death is a process crash; the restart loop is
			// the supervisor. The fault budget guarantees convergence.
			var err error
			for attempt := 0; attempt < 40; attempt++ {
				err = Work(context.Background(), url, opt)
				if err == nil {
					break
				}
				t.Logf("chaos worker %d restart %d: %v", w, attempt, err)
				fs.Revive()
			}
			errs <- err
		}(w)
	}
	for w := 0; w < 3; w++ {
		if err := <-errs; err != nil {
			t.Fatalf("chaos worker never converged: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("fleet never drained under chaos: %v", err)
	}

	got, gotTotals, err := sweepd.Merge(c.ShardDirs())
	if err != nil {
		t.Fatal(err)
	}
	if renderJSONL(t, got, gotTotals) != renderJSONL(t, want, wantTotals) {
		t.Fatal("chaos fleet merge differs from fault-free single-process run")
	}
}

// TestWorkerReleasesLeaseOnRunError: a run error must requeue the shard
// immediately via /v1/release, not after TTL expiry.
func TestWorkerReleasesLeaseOnRunError(t *testing.T) {
	grid := tinyGrid()
	c, url := startCoordinator(t, grid, CoordinatorOptions{ShardCount: 2, Dir: t.TempDir(), LeaseTTL: time.Minute})

	lease := leaseFrom(t, url, "erroring")
	var ack OKResponse
	code, err := postJSON(context.Background(), http.DefaultClient, url+"/v1/release",
		ReleaseRequest{LeaseID: lease.LeaseID, Reason: "disk on fire"}, &ack)
	if err != nil || code != http.StatusOK {
		t.Fatalf("release: code=%d err=%v", code, err)
	}
	st := c.Status()
	if s := st.Shards[lease.Shard]; s.State != statePending || s.Retries != 1 {
		t.Fatalf("released shard not requeued: %+v", s)
	}
	// A second release of the same (now dead) lease answers 410.
	code, err = postJSON(context.Background(), http.DefaultClient, url+"/v1/release",
		ReleaseRequest{LeaseID: lease.LeaseID}, &ack)
	if err != nil || code != http.StatusGone {
		t.Fatalf("stale release: code=%d err=%v", code, err)
	}
}
