package fleet

// Fuzzing the client side of the protocol: whatever bytes and status a
// coordinator (or an impostor on its port) answers with, the worker's
// decode path must neither panic nor half-write its state.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzProtocolResponses drives postJSON and FetchStatus with arbitrary
// response bodies and statuses.
func FuzzProtocolResponses(f *testing.F) {
	f.Add(200, []byte(`{"status":"lease","shard":1,"lease_id":"s1-e1"}`))
	f.Add(200, []byte(`{"status":"lease","shard":`))
	f.Add(200, []byte(``))
	f.Add(200, []byte(`null`))
	f.Add(200, []byte(`[]`))
	f.Add(200, []byte(`{"shards": "not-an-array"}`))
	f.Add(500, []byte(`<html>gateway error</html>`))
	f.Add(410, []byte(`{"status":"revoked"}`))
	f.Add(204, []byte("\x00\xff\xfe"))
	f.Fuzz(func(t *testing.T, status int, body []byte) {
		if status < 200 || status > 599 {
			status = 200 + (abs(status) % 400)
		}
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(status)
			w.Write(body)
		}))
		defer srv.Close()

		lease := LeaseResponse{Status: "sentinel", Shard: -1}
		if _, err := postJSON(context.Background(), srv.Client(), srv.URL, LeaseRequest{Worker: "fuzz"}, &lease); err != nil {
			// On any decode error the destination must be untouched.
			if lease.Status != "sentinel" || lease.Shard != -1 {
				t.Fatalf("error %v left dst half-written: %+v", err, lease)
			}
		}
		var ack OKResponse
		postJSON(context.Background(), srv.Client(), srv.URL, HeartbeatRequest{LeaseID: "x"}, &ack)
		FetchStatus(context.Background(), srv.Client(), srv.URL)
	})
}

func abs(v int) int {
	if v < 0 {
		if v == -v { // math.MinInt
			return 0
		}
		return -v
	}
	return v
}
