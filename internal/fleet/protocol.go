package fleet

import "doda/internal/sweep"

// Lease response statuses.
const (
	StatusLease = "lease"
	StatusWait  = "wait"
	StatusDone  = "done"
)

// LeaseRequest asks the coordinator for a shard to run.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse is the coordinator's answer: a lease, a backoff hint, or
// fleet completion.
type LeaseResponse struct {
	Status     string     `json:"status"`
	Shard      int        `json:"shard,omitempty"`
	ShardCount int        `json:"shard_count,omitempty"`
	LeaseID    string     `json:"lease_id,omitempty"`
	TTLMs      int64      `json:"ttl_ms,omitempty"`
	Dir        string     `json:"dir,omitempty"`
	Grid       sweep.Grid `json:"grid,omitempty"`
	RetryMs    int64      `json:"retry_ms,omitempty"`
}

// HeartbeatRequest keeps a lease alive.
type HeartbeatRequest struct {
	LeaseID string `json:"lease_id"`
}

// CompleteRequest reports a finished shard and where its checkpoint
// lives.
type CompleteRequest struct {
	LeaseID string `json:"lease_id"`
	Dir     string `json:"dir"`
}

// ReleaseRequest hands a still-valid lease back to the coordinator
// because the worker cannot finish it (run error, shutdown). The shard
// requeues immediately instead of waiting out the TTL.
type ReleaseRequest struct {
	LeaseID string `json:"lease_id"`
	Reason  string `json:"reason,omitempty"`
}

// OKResponse acknowledges a heartbeat, completion, or release.
type OKResponse struct {
	Status string `json:"status"`
}

// ShardStatus is one shard's row in the fleet dashboard.
type ShardStatus struct {
	Shard int `json:"shard"`
	// State is "pending", "leased", "done", or "failed" (retry budget
	// permanently exhausted).
	State  string `json:"state"`
	Worker string `json:"worker,omitempty"`
	// HeartbeatAgeMs is the age of the lease's last heartbeat (leased
	// shards only; -1 when not applicable).
	HeartbeatAgeMs float64 `json:"heartbeat_age_ms"`
	// Retries counts how many times the shard's lease expired and was
	// requeued.
	Retries int    `json:"retries"`
	Dir     string `json:"dir,omitempty"`
}

// FleetStatus is the GET /v1/status payload.
type FleetStatus struct {
	Fingerprint string `json:"fingerprint"`
	ShardCount  int    `json:"shard_count"`
	Done        int    `json:"done"`
	// Failed lists permanently failed shards: the fleet can never
	// complete without intervention. Dashboards exit non-zero on it.
	Failed []int         `json:"failed,omitempty"`
	Shards []ShardStatus `json:"shards"`
}
