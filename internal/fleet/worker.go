package fleet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"doda/internal/chaos"
	"doda/internal/rng"
	"doda/internal/sweepd"
)

// ErrLeaseRevoked aborts a shard run whose lease the coordinator
// reassigned (the worker missed heartbeats, typically after a stall).
// The abandoned checkpoint stays valid; whoever holds the new lease
// resumes it.
var ErrLeaseRevoked = errors.New("fleet: lease revoked")

// WorkerOptions tunes one worker process.
type WorkerOptions struct {
	// Name identifies the worker in leases and dashboards (default
	// host:pid).
	Name string
	// Workers is the in-process sweep worker count per leased shard
	// (< 1 = GOMAXPROCS).
	Workers int
	// PerReplica selects replica-granularity checkpointing for the
	// shards this worker runs.
	PerReplica bool
	// ProgressEvery throttles the shard progress records (sweepd
	// semantics: 0 = default, negative = disabled).
	ProgressEvery time.Duration
	// OnProgress, when non-nil, observes each leased shard's progress
	// flushes.
	OnProgress func(shard int, p sweepd.Progress)
	// Client overrides the HTTP client (tests, chaos transports).
	Client *http.Client
	// Retry paces re-attempts of coordinator calls that fail
	// transiently (zero value = defaults; see RetryPolicy).
	Retry RetryPolicy
	// RetrySeed seeds the deterministic retry jitter (0 = derived from
	// Name, so same-named reruns jitter identically).
	RetrySeed uint64
	// FS is the filesystem the leased shards' journals publish through
	// (nil = the real disk; chaos tests hand a chaos.FaultFS in here).
	FS chaos.FS
	// Logf, when non-nil, receives worker lifecycle lines: why the loop
	// ended, exhausted retry budgets, released leases. Printf semantics.
	Logf func(format string, args ...any)
}

// wclient is one worker's view of the coordinator: every call runs
// under the retry policy with a per-call jitter stream.
type wclient struct {
	hc    *http.Client
	base  string
	pol   RetryPolicy
	seed  uint64
	calls atomic.Uint64
	logf  func(format string, args ...any)
}

func (w *wclient) post(ctx context.Context, path string, body, dst any) (int, error) {
	return postJSONRetry(ctx, w.hc, w.base+path, body, dst, w.pol, w.seed, w.calls.Add(1))
}

// Work runs the worker loop against the coordinator at baseURL (e.g.
// "http://127.0.0.1:7700"): lease a shard, execute it with checkpointing
// and heartbeats, report completion, repeat until the coordinator says
// the fleet is done. Transient call failures (resets, 5xx, timeouts)
// retry with jittered backoff; only after the budget is exhausted on a
// coordinator we had already reached does the loop conclude it is gone
// and end cleanly — logging why — since the journaled work is durable
// and a restarted coordinator can hand the shards out again.
func Work(ctx context.Context, baseURL string, opt WorkerOptions) error {
	if opt.Name == "" {
		host, _ := os.Hostname()
		opt.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	if opt.RetrySeed == 0 {
		h := fnv.New64a()
		h.Write([]byte(opt.Name))
		opt.RetrySeed = h.Sum64()
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	wc := &wclient{hc: client, base: baseURL, pol: opt.Retry.withDefaults(), seed: opt.RetrySeed, logf: logf}

	contacted := false
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease LeaseResponse
		code, err := wc.post(ctx, "/v1/lease", LeaseRequest{Worker: opt.Name}, &lease)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return err
			}
			if contacted {
				logf("fleet: worker %s: coordinator unreachable, giving up: %v", opt.Name, err)
				return nil // journaled work is durable; a restarted coordinator re-leases it
			}
			return fmt.Errorf("fleet: cannot reach coordinator: %w", err)
		}
		if code != http.StatusOK {
			return fmt.Errorf("fleet: lease request: HTTP %d", code)
		}
		contacted = true
		switch lease.Status {
		case StatusDone:
			logf("fleet: worker %s: fleet done, exiting", opt.Name)
			return nil
		case StatusWait:
			wait := time.Duration(lease.RetryMs) * time.Millisecond
			if wait <= 0 {
				wait = 250 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
		case StatusLease:
			if err := runLease(ctx, wc, lease, opt); err != nil {
				if errors.Is(err, ErrLeaseRevoked) {
					logf("fleet: worker %s: %v", opt.Name, err)
					continue // someone else owns the shard now
				}
				return err
			}
		default:
			return fmt.Errorf("fleet: lease response status %q", lease.Status)
		}
	}
}

// runLease executes one leased shard: heartbeat in the background, run
// the checkpointed sweep (resuming whatever a previous leaseholder
// journaled), then report completion. A run error releases the lease so
// the shard requeues immediately rather than waiting out the TTL.
func runLease(ctx context.Context, wc *wclient, lease LeaseResponse, opt WorkerOptions) error {
	var revoked atomic.Bool
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go heartbeatLoop(hbCtx, wc, lease, &revoked)

	checkRevoked := func() error {
		if revoked.Load() {
			return fmt.Errorf("%w: shard %d", ErrLeaseRevoked, lease.Shard)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		return nil
	}
	sopt := sweepd.Options{
		Workers:         opt.Workers,
		ShardIndex:      lease.Shard,
		ShardCount:      lease.ShardCount,
		Resume:          true,
		PerReplica:      opt.PerReplica,
		ProgressEvery:   opt.ProgressEvery,
		FS:              opt.FS,
		AfterCheckpoint: func(done, total int) error { return checkRevoked() },
	}
	if opt.PerReplica {
		sopt.AfterReplica = func(cell, reps int) error { return checkRevoked() }
	}
	if opt.OnProgress != nil {
		shard := lease.Shard
		sopt.OnProgress = func(p sweepd.Progress) { opt.OnProgress(shard, p) }
	}
	if _, _, err := sweepd.Run(lease.Grid, lease.Dir, sopt); err != nil {
		releaseLease(ctx, wc, lease, err)
		return err
	}
	stopHB()

	var ack OKResponse
	code, err := wc.post(ctx, "/v1/complete",
		CompleteRequest{LeaseID: lease.LeaseID, Dir: lease.Dir}, &ack)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		// Coordinator gone past the retry budget; the finished journal
		// speaks for itself when a resumed coordinator rescans it.
		wc.logf("fleet: shard %d finished but completion not delivered: %v", lease.Shard, err)
		return nil
	}
	if code == http.StatusGone {
		// The lease expired while we finished; the next leaseholder's
		// resume is a no-op and reports the shard complete.
		return fmt.Errorf("%w: shard %d (completed late)", ErrLeaseRevoked, lease.Shard)
	}
	if code != http.StatusOK {
		return fmt.Errorf("fleet: complete: HTTP %d", code)
	}
	return nil
}

// releaseLease best-effort hands a lease back after a run error. One
// try, no retries: if it is lost the TTL expiry requeues the shard
// anyway, just slower.
func releaseLease(ctx context.Context, wc *wclient, lease LeaseResponse, cause error) {
	relCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
	defer cancel()
	var ack OKResponse
	if _, err := postJSON(relCtx, wc.hc, wc.base+"/v1/release",
		ReleaseRequest{LeaseID: lease.LeaseID, Reason: cause.Error()}, &ack); err == nil {
		wc.logf("fleet: released lease on shard %d after error: %v", lease.Shard, cause)
	}
}

// heartbeatLoop extends the lease on a jittered TTL/3 period until
// stopped, flagging revocation when the coordinator answers 410 or
// stays unreachable for a full retry budget of beats in a row (a dead
// coordinator cannot merge, so finishing the shard for it has no owner
// — abort and keep the journal). The jitter (±20%, deterministic from
// the retry seed) keeps a fleet's heartbeats from arriving in lockstep.
func heartbeatLoop(ctx context.Context, wc *wclient, lease LeaseResponse, revoked *atomic.Bool) {
	period := time.Duration(lease.TTLMs) * time.Millisecond / 3
	if period <= 0 {
		period = time.Second
	}
	h := fnv.New64a()
	h.Write([]byte(lease.LeaseID))
	jitter := rng.New(wc.seed ^ h.Sum64())
	next := func() time.Duration {
		return period*4/5 + time.Duration(jitter.Float64()*float64(period)*0.4)
	}
	t := time.NewTimer(next())
	defer t.Stop()
	misses := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			var ack OKResponse
			code, err := postJSON(ctx, wc.hc, wc.base+"/v1/heartbeat",
				HeartbeatRequest{LeaseID: lease.LeaseID}, &ack)
			switch {
			case transient(code, err):
				if misses++; misses >= wc.pol.Attempts {
					wc.logf("fleet: shard %d: %d heartbeats unanswered, abandoning lease", lease.Shard, misses)
					revoked.Store(true)
					return
				}
			case code == http.StatusOK:
				misses = 0
			default:
				revoked.Store(true)
				return
			}
			t.Reset(next())
		}
	}
}

// FetchStatus reads the coordinator's fleet dashboard. The response is
// decoded under the same hardened contract as the POST calls.
func FetchStatus(ctx context.Context, client *http.Client, baseURL string) (FleetStatus, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/status", nil)
	if err != nil {
		return FleetStatus{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return FleetStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return FleetStatus{}, fmt.Errorf("fleet: status: HTTP %d", resp.StatusCode)
	}
	var st FleetStatus
	if err := decodeBody(resp, baseURL+"/v1/status", &st); err != nil {
		return FleetStatus{}, err
	}
	return st, nil
}
