package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"doda/internal/sweepd"
)

// ErrLeaseRevoked aborts a shard run whose lease the coordinator
// reassigned (the worker missed heartbeats, typically after a stall).
// The abandoned checkpoint stays valid; whoever holds the new lease
// resumes it.
var ErrLeaseRevoked = errors.New("fleet: lease revoked")

// WorkerOptions tunes one worker process.
type WorkerOptions struct {
	// Name identifies the worker in leases and dashboards (default
	// host:pid).
	Name string
	// Workers is the in-process sweep worker count per leased shard
	// (< 1 = GOMAXPROCS).
	Workers int
	// PerReplica selects replica-granularity checkpointing for the
	// shards this worker runs.
	PerReplica bool
	// ProgressEvery throttles the shard progress records (sweepd
	// semantics: 0 = default, negative = disabled).
	ProgressEvery time.Duration
	// OnProgress, when non-nil, observes each leased shard's progress
	// flushes.
	OnProgress func(shard int, p sweepd.Progress)
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// Work runs the worker loop against the coordinator at baseURL (e.g.
// "http://127.0.0.1:7700"): lease a shard, execute it with checkpointing
// and heartbeats, report completion, repeat until the coordinator says
// the fleet is done. A coordinator that vanishes after first contact
// ends the loop cleanly — the journaled work is durable and a restarted
// coordinator can hand the shards out again.
func Work(ctx context.Context, baseURL string, opt WorkerOptions) error {
	if opt.Name == "" {
		host, _ := os.Hostname()
		opt.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	contacted := false
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease LeaseResponse
		code, err := postJSON(ctx, client, baseURL+"/v1/lease", LeaseRequest{Worker: opt.Name}, &lease)
		if err != nil {
			if contacted {
				return nil // coordinator gone; our journals are durable
			}
			return fmt.Errorf("fleet: cannot reach coordinator: %w", err)
		}
		if code != http.StatusOK {
			return fmt.Errorf("fleet: lease request: HTTP %d", code)
		}
		contacted = true
		switch lease.Status {
		case StatusDone:
			return nil
		case StatusWait:
			wait := time.Duration(lease.RetryMs) * time.Millisecond
			if wait <= 0 {
				wait = 250 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
		case StatusLease:
			if err := runLease(ctx, client, baseURL, lease, opt); err != nil {
				if errors.Is(err, ErrLeaseRevoked) {
					continue // someone else owns the shard now
				}
				return err
			}
		default:
			return fmt.Errorf("fleet: lease response status %q", lease.Status)
		}
	}
}

// runLease executes one leased shard: heartbeat in the background, run
// the checkpointed sweep (resuming whatever a previous leaseholder
// journaled), then report completion.
func runLease(ctx context.Context, client *http.Client, baseURL string, lease LeaseResponse, opt WorkerOptions) error {
	var revoked atomic.Bool
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go heartbeatLoop(hbCtx, client, baseURL, lease, &revoked)

	checkRevoked := func() error {
		if revoked.Load() {
			return fmt.Errorf("%w: shard %d", ErrLeaseRevoked, lease.Shard)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		return nil
	}
	sopt := sweepd.Options{
		Workers:         opt.Workers,
		ShardIndex:      lease.Shard,
		ShardCount:      lease.ShardCount,
		Resume:          true,
		PerReplica:      opt.PerReplica,
		ProgressEvery:   opt.ProgressEvery,
		AfterCheckpoint: func(done, total int) error { return checkRevoked() },
	}
	if opt.PerReplica {
		sopt.AfterReplica = func(cell, reps int) error { return checkRevoked() }
	}
	if opt.OnProgress != nil {
		shard := lease.Shard
		sopt.OnProgress = func(p sweepd.Progress) { opt.OnProgress(shard, p) }
	}
	if _, _, err := sweepd.Run(lease.Grid, lease.Dir, sopt); err != nil {
		return err
	}
	stopHB()

	var ack OKResponse
	code, err := postJSON(ctx, client, baseURL+"/v1/complete",
		CompleteRequest{LeaseID: lease.LeaseID, Dir: lease.Dir}, &ack)
	if err != nil {
		return nil // coordinator gone; the finished journal speaks for itself
	}
	if code == http.StatusGone {
		// The lease expired while we finished; the next leaseholder's
		// resume is a no-op and reports the shard complete.
		return fmt.Errorf("%w: shard %d (completed late)", ErrLeaseRevoked, lease.Shard)
	}
	if code != http.StatusOK {
		return fmt.Errorf("fleet: complete: HTTP %d", code)
	}
	return nil
}

// heartbeatLoop extends the lease every TTL/3 until stopped, flagging
// revocation when the coordinator answers 410 or stays unreachable for
// several beats in a row (a dead coordinator cannot merge, so finishing
// the shard for it has no owner — abort and keep the journal).
func heartbeatLoop(ctx context.Context, client *http.Client, baseURL string, lease LeaseResponse, revoked *atomic.Bool) {
	period := time.Duration(lease.TTLMs) * time.Millisecond / 3
	if period <= 0 {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	misses := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			var ack OKResponse
			code, err := postJSON(ctx, client, baseURL+"/v1/heartbeat",
				HeartbeatRequest{LeaseID: lease.LeaseID}, &ack)
			switch {
			case err != nil:
				if misses++; misses >= 3 {
					revoked.Store(true)
					return
				}
			case code == http.StatusOK:
				misses = 0
			default:
				revoked.Store(true)
				return
			}
		}
	}
}

// postJSON posts a JSON body and decodes the JSON response, returning
// the HTTP status code.
func postJSON(ctx context.Context, client *http.Client, url string, body, dst any) (int, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if dst != nil {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil && !errors.Is(err, io.EOF) {
			return resp.StatusCode, fmt.Errorf("fleet: decoding response from %s: %w", url, err)
		}
	}
	return resp.StatusCode, nil
}

// FetchStatus reads the coordinator's fleet dashboard.
func FetchStatus(ctx context.Context, client *http.Client, baseURL string) (FleetStatus, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/status", nil)
	if err != nil {
		return FleetStatus{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return FleetStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return FleetStatus{}, fmt.Errorf("fleet: status: HTTP %d", resp.StatusCode)
	}
	var st FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return FleetStatus{}, err
	}
	return st, nil
}
