package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"time"

	"doda/internal/rng"
)

// maxResponseBytes bounds how much of a (possibly hostile or confused)
// peer response a client will read before deciding.
const maxResponseBytes = 8 << 20

// RetryPolicy bounds and paces re-attempts of one protocol call after a
// transient failure (connection reset, timeout, 5xx, garbled response
// body). The zero value means the defaults: 8 attempts, 100ms initial
// backoff doubling to a 5s cap, each delay jittered deterministically
// into [d/2, d) so a fleet of workers never retries in lockstep.
type RetryPolicy struct {
	// Attempts is the total tries per call (default 8).
	Attempts int
	// Base is the backoff before the second attempt (default 100ms);
	// it doubles per attempt.
	Base time.Duration
	// Max caps the backoff (default 5s).
	Max time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 8
	}
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	return p
}

// backoff returns the jittered delay before retry k (k ≥ 1 failures so
// far) of call number call: d = min(Max, Base·2^(k-1)), scaled into
// [d/2, d) by a uniform draw that is a pure function of (seed, call, k)
// — deterministic per worker, decorrelated across workers.
func (p RetryPolicy) backoff(seed, call uint64, k int) time.Duration {
	d := p.Max
	if k-1 < 32 {
		if exp := p.Base << (k - 1); exp > 0 && exp < p.Max {
			d = exp
		}
	}
	u := rng.New(seed ^ (call << 20) ^ uint64(k)).Float64()
	return d/2 + time.Duration(u*float64(d/2))
}

// transient reports whether one call outcome is worth retrying:
// transport errors (resets, timeouts) and garbled response bodies
// surface as err != nil, and any 5xx answer is a server that may heal —
// all transient. Every other HTTP status (410 Gone above all) is a
// deliberate answer and terminal.
func transient(code int, err error) bool {
	if err != nil {
		return true
	}
	return code >= 500
}

// postJSONRetry is postJSON under a RetryPolicy: transient failures are
// retried with deterministic jittered backoff until the budget is
// exhausted; terminal outcomes (2xx, 410, other 4xx, context
// cancellation) return immediately. The returned error wraps the last
// transient failure so callers can report why the budget died.
func postJSONRetry(ctx context.Context, client *http.Client, url string, body, dst any, p RetryPolicy, seed, call uint64) (int, error) {
	p = p.withDefaults()
	var (
		code int
		err  error
	)
	for k := 0; k < p.Attempts; k++ {
		if k > 0 {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(p.backoff(seed, call, k)):
			}
		}
		code, err = postJSON(ctx, client, url, body, dst)
		if !transient(code, err) {
			return code, err
		}
		if cerr := ctx.Err(); cerr != nil {
			return 0, cerr
		}
	}
	if err == nil {
		err = fmt.Errorf("HTTP %d", code)
	}
	return code, fmt.Errorf("fleet: %s: retry budget exhausted after %d attempts: %w", url, p.Attempts, err)
}

// postJSON posts a JSON body and decodes the JSON response, returning
// the HTTP status code. The response read is bounded, only 2xx bodies
// are decoded, and decoding goes through a fresh value that is copied
// into dst only on full success — a truncated or hostile body can error
// but never panic or leave dst half-written.
func postJSON(ctx context.Context, client *http.Client, url string, body, dst any) (int, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, decodeBody(resp, url, dst)
}

// decodeBody applies the hardened response-decoding contract shared by
// postJSON and FetchStatus.
func decodeBody(resp *http.Response, url string, dst any) error {
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return fmt.Errorf("fleet: reading response from %s: %w", url, err)
	}
	if dst == nil || resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return nil // an empty body reads as the zero value
	}
	fresh := reflect.New(reflect.TypeOf(dst).Elem())
	if err := json.Unmarshal(data, fresh.Interface()); err != nil {
		return fmt.Errorf("fleet: decoding response from %s: %w", url, err)
	}
	reflect.ValueOf(dst).Elem().Set(fresh.Elem())
	return nil
}
