// Package fleet coordinates a multi-process sweep: one coordinator owns
// the grid's shard partition table and hands shard leases to workers
// over a small HTTP/JSON protocol; workers execute shards through the
// checkpointed sweep service and heartbeat while they run.
//
// # Protocol
//
// All requests and responses are JSON. The coordinator serves:
//
//	POST /v1/lease      {"worker": name}
//	  → {"status":"lease", "shard":i, "shard_count":m, "lease_id":id,
//	     "ttl_ms":t, "dir":path, "grid":{...}}   a shard to run
//	  → {"status":"wait", "retry_ms":t}          all shards busy; ask again
//	  → {"status":"done"}                        every shard is complete
//	POST /v1/heartbeat  {"lease_id": id}
//	  → 200 {"status":"ok"}                      lease extended by one TTL
//	  → 410                                      lease revoked or unknown
//	POST /v1/complete   {"lease_id": id, "dir": path}
//	  → 200 {"status":"ok"}                      shard recorded complete
//	  → 410                                      lease revoked or unknown
//	POST /v1/release    {"lease_id": id, "reason": s}
//	  → 200 {"status":"ok"}                      shard requeued immediately
//	  → 410                                      lease revoked or unknown
//	GET  /v1/status
//	  → FleetStatus                              per-shard state dashboard
//
// A lease expires when no heartbeat arrives for one TTL; the coordinator
// then requeues the shard and every later heartbeat or complete carrying
// the old lease id gets 410, which tells the stale worker to abandon the
// shard at its next checkpoint boundary. A worker whose run errors hands
// the lease back through /v1/release instead of making the shard wait
// out the TTL.
//
// # Durability and retries
//
// The coordinator journals its own state to Dir/coord.log, an
// append-only event log in the sweepd record framing (crc32c-guarded
// JSONL). Grants and completions are fsynced before they are committed
// in memory or acknowledged on the wire; requeues are appended
// best-effort, because replay order makes a later grant of the same
// shard supersede a lost requeue. CoordinatorOptions.Resume rebuilds
// the partition table from that log: completed shards stay done,
// granted leases come back with their lease IDs intact and a fresh TTL
// (so workers that outlived the coordinator just keep heartbeating),
// and every other shard's checkpoint directory is scanned so work that
// finished while no coordinator was listening is adopted rather than
// redone.
//
// On the worker side every protocol call distinguishes transient
// failures (connection errors, timeouts, 5xx answers, garbled response
// bodies) from deliberate ones (410 Gone and other 4xx). Transient
// failures retry under WorkerOptions.Retry with exponential backoff and
// deterministic jitter — a pure function of the worker's retry seed, so
// a chaos schedule reproduces exactly — and only an exhausted budget
// against a coordinator the worker had already reached ends the loop
// (logged, exit nil: journaled work is durable and a resumed
// coordinator re-leases or adopts it). Response decoding is bounded and
// all-or-nothing: a hostile or truncated body errors without
// half-writing worker state.
//
// # Determinism
//
// Fleet output is byte-identical to a single-process run of the same
// grid regardless of which worker ran which shard, how work was
// scheduled, or how many times a shard was retried after a crash. The
// guarantee is inherited, not invented here: every cell's seed derives
// from the grid seed and cell index alone, shard membership is a pure
// function of cell index, every checkpoint directory is pinned to the
// grid's fingerprint, and a resumed shard replays its journal before
// running only the missing cells (or missing replicas, under per-replica
// granularity). The coordinator merges the shard checkpoints through the
// same sweepd.Merge every hand-driven shard run uses.
//
// Two processes must never journal into one shard directory at once.
// The lease protocol prevents it in the steady state — one live lease
// per shard — but a revoked worker only notices at a checkpoint
// boundary, so the lease TTL must comfortably exceed the wall time of
// the slowest cell (or replica, under per-replica checkpointing).
// Should both protections fail, the journal's O_EXCL tmp-file guard
// makes the overlap a loud error rather than silent corruption.
//
// Workers run shards in subdirectories of the coordinator's root
// directory, so this package assumes coordinator and workers share a
// filesystem (one host, or a shared mount). The protocol itself carries
// paths, not journal bytes; a byte-shipping transport can be layered on
// later without changing the lease mechanics.
package fleet
