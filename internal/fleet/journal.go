package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"doda/internal/sweepd"
)

// coordLogName is the coordinator's append-only event log inside the
// fleet directory. Records reuse the sweepd journal framing (crc32c,
// space, JSON, newline), so the same torn-tail rules apply: only the
// final record may be damaged, and only by truncation.
const coordLogName = "coord.log"

// coordRecord kinds.
const (
	recHeader   = "header"
	recGrant    = "grant"
	recComplete = "complete"
	recRequeue  = "requeue"
)

// coordLogVersion guards the log format.
const coordLogVersion = 1

// coordRecord is one event in the coordinator log. The first record is
// always a header carrying the fleet's identity; every later record
// moves one shard. Replay order is authoritative: a later grant of the
// same shard supersedes an earlier one, so losing a requeue record (they
// are written best-effort from the expiry loop) cannot corrupt the
// table — the superseding grant re-leases the shard either way.
type coordRecord struct {
	Kind        string `json:"kind"`
	Version     int    `json:"version,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	ShardCount  int    `json:"shard_count,omitempty"`
	// Shard has no omitempty: shard 0 is a real value.
	Shard   int    `json:"shard"`
	Worker  string `json:"worker,omitempty"`
	LeaseID string `json:"lease_id,omitempty"`
	Seq     int    `json:"seq,omitempty"`
	Dir     string `json:"dir,omitempty"`
	Reason  string `json:"reason,omitempty"`
}

// coordLog is the open append handle. Grants and completions are
// fsynced before the coordinator commits them in memory (and before the
// worker sees an acknowledgement); requeues are appended without fsync.
type coordLog struct {
	f    *os.File
	path string
}

// createCoordLog starts a fresh log, refusing to clobber an existing
// one — a fleet directory with a coord.log is a crashed fleet, and
// overwriting it silently would destroy the resume evidence.
func createCoordLog(dir string, header coordRecord) (*coordLog, error) {
	path := filepath.Join(dir, coordLogName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("fleet: %s exists — a previous coordinator ran here; use resume or a fresh directory", path)
		}
		return nil, err
	}
	l := &coordLog{f: f, path: path}
	if err := l.append(header); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// openCoordLog reads an existing log for resume: it returns every
// intact record and reopens the file for appending, first truncating
// away a torn or corrupt final record (the only damage an append+fsync
// log can legally carry). Corruption before the final record is fatal.
func openCoordLog(dir string) (*coordLog, []coordRecord, error) {
	path := filepath.Join(dir, coordLogName)
	raw, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil, fmt.Errorf("fleet: no %s in %s — nothing to resume", coordLogName, dir)
		}
		return nil, nil, err
	}
	lines, torn := sweepd.SplitRecords(raw)
	var recs []coordRecord
	keep := 0
	for i, line := range lines {
		body, err := sweepd.DecodeRecord(line)
		if err != nil {
			if i == len(lines)-1 && !torn {
				torn = true // damaged final record: drop it like a torn tail
				break
			}
			return nil, nil, fmt.Errorf("fleet: %s record %d: %w", path, i, err)
		}
		var rec coordRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			return nil, nil, fmt.Errorf("fleet: %s record %d: %w", path, i, err)
		}
		recs = append(recs, rec)
		keep += len(line) + 1
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if torn {
		if err := f.Truncate(int64(keep)); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(keep), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &coordLog{f: f, path: path}, recs, nil
}

// append journals one record and fsyncs. An error means the event is
// not durable and must not be acknowledged.
func (l *coordLog) append(rec coordRecord) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := l.f.Write(sweepd.EncodeRecord(body)); err != nil {
		return err
	}
	return l.f.Sync()
}

// appendNoSync journals one record without forcing it to disk — for
// best-effort events (requeues) whose loss replay tolerates.
func (l *coordLog) appendNoSync(rec coordRecord) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = l.f.Write(sweepd.EncodeRecord(body))
	return err
}

func (l *coordLog) Close() error {
	if l == nil || l.f == nil {
		return nil
	}
	return l.f.Close()
}
