package fleet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"doda/internal/sweepd"
)

// coordLogName is the coordinator's append-only event log inside the
// fleet directory. Records reuse the sweepd journal framing (crc32c,
// space, JSON, newline), so the same torn-tail rules apply: only the
// final record may be damaged, and only by truncation.
const coordLogName = "coord.log"

// coordRecord kinds.
const (
	recHeader   = "header"
	recGrant    = "grant"
	recComplete = "complete"
	recRequeue  = "requeue"
	recFail     = "fail"
)

// coordLogVersion guards the log format.
const coordLogVersion = 1

// coordRecord is one event in the coordinator log. The first record is
// always a header carrying the fleet's identity; every later record
// moves one shard. Replay order is authoritative: a later grant of the
// same shard supersedes an earlier one, so losing a requeue record (they
// are written best-effort from the expiry loop) cannot corrupt the
// table — the superseding grant re-leases the shard either way.
type coordRecord struct {
	Kind        string `json:"kind"`
	Version     int    `json:"version,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	ShardCount  int    `json:"shard_count,omitempty"`
	// Shard has no omitempty: shard 0 is a real value.
	Shard   int    `json:"shard"`
	Worker  string `json:"worker,omitempty"`
	LeaseID string `json:"lease_id,omitempty"`
	Seq     int    `json:"seq,omitempty"`
	Dir     string `json:"dir,omitempty"`
	Reason  string `json:"reason,omitempty"`
}

// coordLog is the open append handle. Grants and completions are
// fsynced before the coordinator commits them in memory (and before the
// worker sees an acknowledgement); requeues are appended without fsync.
type coordLog struct {
	f    *os.File
	path string
}

// createCoordLog starts a fresh log, refusing to clobber an existing
// one — a fleet directory with a coord.log is a crashed fleet, and
// overwriting it silently would destroy the resume evidence.
func createCoordLog(dir string, header coordRecord) (*coordLog, error) {
	path := filepath.Join(dir, coordLogName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("fleet: %s exists — a previous coordinator ran here; use resume or a fresh directory", path)
		}
		return nil, err
	}
	l := &coordLog{f: f, path: path}
	if err := l.append(header); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// maxCoordRecord bounds one journal line. Real records are a few hundred
// bytes of JSON; a "line" longer than this is corruption, not data, and
// refusing it keeps replay memory O(1) instead of O(line).
const maxCoordRecord = 1 << 20

// openCoordLog streams an existing log for resume: apply is called once
// per intact record, in order, so replay memory stays bounded by one
// record no matter how large the log grew (a long fleet appends a grant
// and a completion per lease, plus a requeue per expiry — multi-MB logs
// are routine). The file is reopened for appending, first truncating
// away a torn or corrupt final record (the only damage an append+fsync
// log can legally carry). Corruption before the final record is fatal,
// as is an error from apply.
func openCoordLog(dir string, apply func(i int, rec coordRecord) error) (*coordLog, error) {
	path := filepath.Join(dir, coordLogName)
	rf, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("fleet: no %s in %s — nothing to resume", coordLogName, dir)
		}
		return nil, err
	}
	br := bufio.NewReaderSize(rf, 64<<10)
	var keep int64
	for i := 0; ; i++ {
		line, err := readCoordLine(br)
		if errors.Is(err, io.EOF) && len(line) == 0 {
			break
		}
		if err != nil && !errors.Is(err, io.EOF) {
			rf.Close()
			return nil, fmt.Errorf("fleet: %s record %d: %w", path, i, err)
		}
		// err == io.EOF here means the final line lacks its newline — a
		// torn append. It can only be the last iteration.
		torn := errors.Is(err, io.EOF)
		body, derr := sweepd.DecodeRecord(line)
		var rec coordRecord
		if derr == nil {
			derr = json.Unmarshal(body, &rec)
		}
		if derr != nil {
			// A damaged record is legal only at the tail: nothing may
			// follow it.
			if _, peekErr := br.Peek(1); !torn && peekErr == nil {
				rf.Close()
				return nil, fmt.Errorf("fleet: %s record %d: %w", path, i, derr)
			}
			break // drop the torn/corrupt final record
		}
		if torn {
			break // intact bytes but no newline: the append still tore
		}
		if err := apply(i, rec); err != nil {
			rf.Close()
			return nil, err
		}
		keep += int64(len(line)) + 1
	}
	rf.Close()
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(keep); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(keep, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &coordLog{f: f, path: path}, nil
}

// readCoordLine reads one newline-terminated record line (newline
// stripped), enforcing maxCoordRecord. Returns io.EOF alongside any
// trailing bytes that lack their newline. The returned slice aliases
// the reader's buffer in the common case and is valid only until the
// next call — callers decode before reading again.
func readCoordLine(br *bufio.Reader) ([]byte, error) {
	chunk, err := br.ReadSlice('\n')
	if err == nil {
		return chunk[:len(chunk)-1], nil
	}
	if !errors.Is(err, bufio.ErrBufferFull) {
		return chunk, err // io.EOF with a partial line, or a read error
	}
	// Rare: a record longer than the reader buffer. Accumulate, still
	// refusing anything over the record bound.
	line := append([]byte(nil), chunk...)
	for {
		chunk, err := br.ReadSlice('\n')
		line = append(line, chunk...)
		if errors.Is(err, bufio.ErrBufferFull) {
			if len(line) > maxCoordRecord {
				return nil, fmt.Errorf("record exceeds %d bytes", maxCoordRecord)
			}
			continue
		}
		if err != nil {
			return line, err
		}
		return line[:len(line)-1], nil
	}
}

// append journals one record and fsyncs. An error means the event is
// not durable and must not be acknowledged.
func (l *coordLog) append(rec coordRecord) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := l.f.Write(sweepd.EncodeRecord(body)); err != nil {
		return err
	}
	return l.f.Sync()
}

// appendNoSync journals one record without forcing it to disk — for
// best-effort events (requeues) whose loss replay tolerates.
func (l *coordLog) appendNoSync(rec coordRecord) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = l.f.Write(sweepd.EncodeRecord(body))
	return err
}

func (l *coordLog) Close() error {
	if l == nil || l.f == nil {
		return nil
	}
	return l.f.Close()
}
