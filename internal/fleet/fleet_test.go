package fleet

// Fleet differential tests: a coordinator handing shard leases to
// in-process workers must merge to output byte-identical to a plain
// single-process sweep — including when a worker dies mid-shard and its
// lease is requeued to a survivor.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"doda/internal/sweep"
	"doda/internal/sweepd"
)

// testGrid is small enough for fast fleets but spans scenarios and
// algorithms so shard hashes land everywhere.
func testGrid() sweep.Grid {
	sizes := make([]int, 12)
	for i := range sizes {
		sizes[i] = 4 + i
	}
	return sweep.Grid{
		Scenarios: []sweep.ScenarioRef{
			{Name: "uniform"},
			{Name: "zipf", Params: map[string]string{"alpha": "1"}},
			{Name: "churn"},
		},
		Algorithms: []string{"waiting", "gathering"},
		Sizes:      sizes,
		Replicas:   2,
		Seed:       90210,
	}
}

func renderJSONL(t *testing.T, results []sweep.CellResult, totals sweep.Totals) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Encode(totals); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// startCoordinator boots a coordinator on a loopback port and tears it
// down with the test.
func startCoordinator(t *testing.T, grid sweep.Grid, opt CoordinatorOptions) (*Coordinator, string) {
	t.Helper()
	c, err := NewCoordinator(grid, opt)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, "http://" + addr
}

// TestFleetByteIdenticalToSingleProcess is the heart of the fleet
// contract: 3 workers draining 4 shard leases merge to the exact stream
// one process produces.
func TestFleetByteIdenticalToSingleProcess(t *testing.T) {
	grid := testGrid()
	want, wantTotals, err := sweep.Run(grid, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	c, url := startCoordinator(t, grid, CoordinatorOptions{
		ShardCount: 4,
		Dir:        t.TempDir(),
		LeaseTTL:   30 * time.Second,
	})
	errs := make(chan error, 3)
	for w := 0; w < 3; w++ {
		go func(w int) {
			errs <- Work(context.Background(), url, WorkerOptions{
				Name: fmt.Sprintf("worker-%d", w), Workers: 2,
			})
		}(w)
	}
	for w := 0; w < 3; w++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker failed: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("coordinator never completed: %v", err)
	}

	got, gotTotals, err := sweepd.Merge(c.ShardDirs())
	if err != nil {
		t.Fatal(err)
	}
	if renderJSONL(t, got, gotTotals) != renderJSONL(t, want, wantTotals) {
		t.Fatal("fleet merge differs from single-process run")
	}
}

// TestDeadWorkerLeaseRequeued kills a worker mid-shard (it journals two
// cells, stops heartbeating, and vanishes without completing); the
// lease must expire, be requeued, and the surviving workers must finish
// the fleet with byte-identical merged output.
func TestDeadWorkerLeaseRequeued(t *testing.T) {
	grid := testGrid()
	want, wantTotals, err := sweep.Run(grid, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	c, url := startCoordinator(t, grid, CoordinatorOptions{
		ShardCount: 3,
		Dir:        t.TempDir(),
		LeaseTTL:   200 * time.Millisecond,
	})

	// The doomed worker: takes the first lease, journals two cells, and
	// dies — no completion report, no further heartbeats.
	var lease LeaseResponse
	code, err := postJSON(context.Background(), http.DefaultClient, url+"/v1/lease",
		LeaseRequest{Worker: "doomed"}, &lease)
	if err != nil || code != http.StatusOK || lease.Status != StatusLease {
		t.Fatalf("doomed worker lease: code=%d status=%q err=%v", code, lease.Status, err)
	}
	killed := errors.New("simulated worker death")
	_, _, err = sweepd.Run(lease.Grid, lease.Dir, sweepd.Options{
		Workers:    1,
		ShardIndex: lease.Shard,
		ShardCount: lease.ShardCount,
		Resume:     true,
		AfterCheckpoint: func(done, total int) error {
			if done >= 2 {
				return killed
			}
			return nil
		},
	})
	if !errors.Is(err, killed) {
		t.Fatalf("doomed worker: want injected death, got %v", err)
	}

	// Its lease must expire and requeue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Status()
		s := st.Shards[lease.Shard]
		if s.State == statePending && s.Retries >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never requeued: %+v", s)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Two healthy workers drain the fleet, resuming the dead worker's
	// checkpoint.
	errs := make(chan error, 2)
	for w := 0; w < 2; w++ {
		go func(w int) {
			errs <- Work(context.Background(), url, WorkerOptions{
				Name: fmt.Sprintf("healthy-%d", w), Workers: 2,
			})
		}(w)
	}
	for w := 0; w < 2; w++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker failed: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("coordinator never completed: %v", err)
	}
	st := c.Status()
	if st.Shards[lease.Shard].Retries < 1 {
		t.Fatalf("shard %d should record a retry, got %+v", lease.Shard, st.Shards[lease.Shard])
	}

	got, gotTotals, err := sweepd.Merge(c.ShardDirs())
	if err != nil {
		t.Fatal(err)
	}
	if renderJSONL(t, got, gotTotals) != renderJSONL(t, want, wantTotals) {
		t.Fatal("fleet merge with requeued lease differs from single-process run")
	}
}

// TestHeartbeatRevocationStopsStaleWorker proves a stale leaseholder is
// told to stand down: after its lease expires and requeues, its
// heartbeat gets 410.
func TestHeartbeatRevocationStopsStaleWorker(t *testing.T) {
	grid := testGrid()
	_, url := startCoordinator(t, grid, CoordinatorOptions{
		ShardCount: 2,
		Dir:        t.TempDir(),
		LeaseTTL:   50 * time.Millisecond,
	})
	var lease LeaseResponse
	code, err := postJSON(context.Background(), http.DefaultClient, url+"/v1/lease",
		LeaseRequest{Worker: "stale"}, &lease)
	if err != nil || code != http.StatusOK || lease.Status != StatusLease {
		t.Fatalf("lease: code=%d status=%q err=%v", code, lease.Status, err)
	}
	time.Sleep(150 * time.Millisecond) // let the lease expire
	var ack OKResponse
	code, err = postJSON(context.Background(), http.DefaultClient, url+"/v1/heartbeat",
		HeartbeatRequest{LeaseID: lease.LeaseID}, &ack)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusGone {
		t.Fatalf("stale heartbeat: want 410, got %d", code)
	}
	code, err = postJSON(context.Background(), http.DefaultClient, url+"/v1/complete",
		CompleteRequest{LeaseID: lease.LeaseID, Dir: lease.Dir}, &ack)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusGone {
		t.Fatalf("stale complete: want 410, got %d", code)
	}
}

// TestStatusEndpoint sanity-checks the dashboard payload over HTTP.
func TestStatusEndpoint(t *testing.T) {
	grid := testGrid()
	_, url := startCoordinator(t, grid, CoordinatorOptions{
		ShardCount: 2,
		Dir:        filepath.Join(t.TempDir(), "fleet"),
		LeaseTTL:   time.Minute,
	})
	var lease LeaseResponse
	if _, err := postJSON(context.Background(), http.DefaultClient, url+"/v1/lease",
		LeaseRequest{Worker: "w0"}, &lease); err != nil {
		t.Fatal(err)
	}
	st, err := FetchStatus(context.Background(), nil, url)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := grid.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if st.Fingerprint != fp {
		t.Fatalf("status fingerprint %.12s, want %.12s", st.Fingerprint, fp)
	}
	if st.ShardCount != 2 || len(st.Shards) != 2 {
		t.Fatalf("status shards: %+v", st)
	}
	if st.Shards[lease.Shard].State != stateLeased || st.Shards[lease.Shard].Worker != "w0" {
		t.Fatalf("leased shard row: %+v", st.Shards[lease.Shard])
	}
	if age := st.Shards[lease.Shard].HeartbeatAgeMs; age < 0 {
		t.Fatalf("leased shard should have a heartbeat age, got %v", age)
	}
}

// TestWorkerExitsWhenFleetDone: a late worker joining a finished fleet
// exits immediately with no error.
func TestWorkerExitsWhenFleetDone(t *testing.T) {
	grid := testGrid()
	_, url := startCoordinator(t, grid, CoordinatorOptions{
		ShardCount: 1,
		Dir:        t.TempDir(),
		LeaseTTL:   time.Minute,
	})
	if err := Work(context.Background(), url, WorkerOptions{Name: "first", Workers: 2}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- Work(context.Background(), url, WorkerOptions{Name: "late"}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("late worker never exited")
	}
}
