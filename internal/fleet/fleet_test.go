package fleet

// Fleet differential tests: a coordinator handing shard leases to
// in-process workers must merge to output byte-identical to a plain
// single-process sweep — including when a worker dies mid-shard and its
// lease is requeued to a survivor.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"doda/internal/sweep"
	"doda/internal/sweepd"
)

// testGrid is small enough for fast fleets but spans scenarios and
// algorithms so shard hashes land everywhere.
func testGrid() sweep.Grid {
	sizes := make([]int, 12)
	for i := range sizes {
		sizes[i] = 4 + i
	}
	return sweep.Grid{
		Scenarios: []sweep.ScenarioRef{
			{Name: "uniform"},
			{Name: "zipf", Params: map[string]string{"alpha": "1"}},
			{Name: "churn"},
		},
		Algorithms: []string{"waiting", "gathering"},
		Sizes:      sizes,
		Replicas:   2,
		Seed:       90210,
	}
}

func renderJSONL(t *testing.T, results []sweep.CellResult, totals sweep.Totals) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Encode(totals); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// startCoordinator boots a coordinator on a loopback port and tears it
// down with the test.
func startCoordinator(t *testing.T, grid sweep.Grid, opt CoordinatorOptions) (*Coordinator, string) {
	t.Helper()
	c, err := NewCoordinator(grid, opt)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, "http://" + addr
}

// TestFleetByteIdenticalToSingleProcess is the heart of the fleet
// contract: 3 workers draining 4 shard leases merge to the exact stream
// one process produces.
func TestFleetByteIdenticalToSingleProcess(t *testing.T) {
	grid := testGrid()
	want, wantTotals, err := sweep.Run(grid, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	c, url := startCoordinator(t, grid, CoordinatorOptions{
		ShardCount: 4,
		Dir:        t.TempDir(),
		LeaseTTL:   30 * time.Second,
	})
	errs := make(chan error, 3)
	for w := 0; w < 3; w++ {
		go func(w int) {
			errs <- Work(context.Background(), url, WorkerOptions{
				Name: fmt.Sprintf("worker-%d", w), Workers: 2,
			})
		}(w)
	}
	for w := 0; w < 3; w++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker failed: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("coordinator never completed: %v", err)
	}

	got, gotTotals, err := sweepd.Merge(c.ShardDirs())
	if err != nil {
		t.Fatal(err)
	}
	if renderJSONL(t, got, gotTotals) != renderJSONL(t, want, wantTotals) {
		t.Fatal("fleet merge differs from single-process run")
	}
}

// TestDeadWorkerLeaseRequeued kills a worker mid-shard (it journals two
// cells, stops heartbeating, and vanishes without completing); the
// lease must expire, be requeued, and the surviving workers must finish
// the fleet with byte-identical merged output.
func TestDeadWorkerLeaseRequeued(t *testing.T) {
	grid := testGrid()
	want, wantTotals, err := sweep.Run(grid, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	c, url := startCoordinator(t, grid, CoordinatorOptions{
		ShardCount: 3,
		Dir:        t.TempDir(),
		LeaseTTL:   200 * time.Millisecond,
	})

	// The doomed worker: takes the first lease, journals two cells, and
	// dies — no completion report, no further heartbeats.
	var lease LeaseResponse
	code, err := postJSON(context.Background(), http.DefaultClient, url+"/v1/lease",
		LeaseRequest{Worker: "doomed"}, &lease)
	if err != nil || code != http.StatusOK || lease.Status != StatusLease {
		t.Fatalf("doomed worker lease: code=%d status=%q err=%v", code, lease.Status, err)
	}
	killed := errors.New("simulated worker death")
	_, _, err = sweepd.Run(lease.Grid, lease.Dir, sweepd.Options{
		Workers:    1,
		ShardIndex: lease.Shard,
		ShardCount: lease.ShardCount,
		Resume:     true,
		AfterCheckpoint: func(done, total int) error {
			if done >= 2 {
				return killed
			}
			return nil
		},
	})
	if !errors.Is(err, killed) {
		t.Fatalf("doomed worker: want injected death, got %v", err)
	}

	// Its lease must expire and requeue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Status()
		s := st.Shards[lease.Shard]
		if s.State == statePending && s.Retries >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never requeued: %+v", s)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Two healthy workers drain the fleet, resuming the dead worker's
	// checkpoint.
	errs := make(chan error, 2)
	for w := 0; w < 2; w++ {
		go func(w int) {
			errs <- Work(context.Background(), url, WorkerOptions{
				Name: fmt.Sprintf("healthy-%d", w), Workers: 2,
			})
		}(w)
	}
	for w := 0; w < 2; w++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker failed: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("coordinator never completed: %v", err)
	}
	st := c.Status()
	if st.Shards[lease.Shard].Retries < 1 {
		t.Fatalf("shard %d should record a retry, got %+v", lease.Shard, st.Shards[lease.Shard])
	}

	got, gotTotals, err := sweepd.Merge(c.ShardDirs())
	if err != nil {
		t.Fatal(err)
	}
	if renderJSONL(t, got, gotTotals) != renderJSONL(t, want, wantTotals) {
		t.Fatal("fleet merge with requeued lease differs from single-process run")
	}
}

// TestHeartbeatRevocationStopsStaleWorker proves a stale leaseholder is
// told to stand down: after its lease expires and requeues, its
// heartbeat gets 410.
func TestHeartbeatRevocationStopsStaleWorker(t *testing.T) {
	grid := testGrid()
	_, url := startCoordinator(t, grid, CoordinatorOptions{
		ShardCount: 2,
		Dir:        t.TempDir(),
		LeaseTTL:   50 * time.Millisecond,
	})
	var lease LeaseResponse
	code, err := postJSON(context.Background(), http.DefaultClient, url+"/v1/lease",
		LeaseRequest{Worker: "stale"}, &lease)
	if err != nil || code != http.StatusOK || lease.Status != StatusLease {
		t.Fatalf("lease: code=%d status=%q err=%v", code, lease.Status, err)
	}
	time.Sleep(150 * time.Millisecond) // let the lease expire
	var ack OKResponse
	code, err = postJSON(context.Background(), http.DefaultClient, url+"/v1/heartbeat",
		HeartbeatRequest{LeaseID: lease.LeaseID}, &ack)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusGone {
		t.Fatalf("stale heartbeat: want 410, got %d", code)
	}
	code, err = postJSON(context.Background(), http.DefaultClient, url+"/v1/complete",
		CompleteRequest{LeaseID: lease.LeaseID, Dir: lease.Dir}, &ack)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusGone {
		t.Fatalf("stale complete: want 410, got %d", code)
	}
}

// TestStatusEndpoint sanity-checks the dashboard payload over HTTP.
func TestStatusEndpoint(t *testing.T) {
	grid := testGrid()
	_, url := startCoordinator(t, grid, CoordinatorOptions{
		ShardCount: 2,
		Dir:        filepath.Join(t.TempDir(), "fleet"),
		LeaseTTL:   time.Minute,
	})
	var lease LeaseResponse
	if _, err := postJSON(context.Background(), http.DefaultClient, url+"/v1/lease",
		LeaseRequest{Worker: "w0"}, &lease); err != nil {
		t.Fatal(err)
	}
	st, err := FetchStatus(context.Background(), nil, url)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := grid.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if st.Fingerprint != fp {
		t.Fatalf("status fingerprint %.12s, want %.12s", st.Fingerprint, fp)
	}
	if st.ShardCount != 2 || len(st.Shards) != 2 {
		t.Fatalf("status shards: %+v", st)
	}
	if st.Shards[lease.Shard].State != stateLeased || st.Shards[lease.Shard].Worker != "w0" {
		t.Fatalf("leased shard row: %+v", st.Shards[lease.Shard])
	}
	if age := st.Shards[lease.Shard].HeartbeatAgeMs; age < 0 {
		t.Fatalf("leased shard should have a heartbeat age, got %v", age)
	}
}

// TestWorkerExitsWhenFleetDone: a late worker joining a finished fleet
// exits immediately with no error.
func TestWorkerExitsWhenFleetDone(t *testing.T) {
	grid := testGrid()
	_, url := startCoordinator(t, grid, CoordinatorOptions{
		ShardCount: 1,
		Dir:        t.TempDir(),
		LeaseTTL:   time.Minute,
	})
	if err := Work(context.Background(), url, WorkerOptions{Name: "first", Workers: 2}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- Work(context.Background(), url, WorkerOptions{Name: "late"}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("late worker never exited")
	}
}

// TestShardRetryBudgetFailsPermanently: a shard whose workers keep
// releasing it burns its retry budget and is marked permanently failed —
// leases stop being handed out, Wait reports the wedge instead of
// blocking forever, and a resumed coordinator re-derives the failure
// from the journal.
func TestShardRetryBudgetFailsPermanently(t *testing.T) {
	grid := testGrid()
	dir := t.TempDir()
	c, url := startCoordinator(t, grid, CoordinatorOptions{
		ShardCount:      2,
		Dir:             dir,
		LeaseTTL:        time.Minute,
		MaxShardRetries: 2,
	})

	// Burn both shards' budgets: lease, then hand the lease straight
	// back as failed. Two releases per shard exhaust MaxShardRetries=2.
	for i := 0; i < 4; i++ {
		var lease LeaseResponse
		code, err := postJSON(context.Background(), http.DefaultClient, url+"/v1/lease",
			LeaseRequest{Worker: "flaky"}, &lease)
		if err != nil || code != http.StatusOK || lease.Status != StatusLease {
			t.Fatalf("lease %d: code=%d status=%q err=%v", i, code, lease.Status, err)
		}
		var ack OKResponse
		if _, err := postJSON(context.Background(), http.DefaultClient, url+"/v1/release",
			ReleaseRequest{LeaseID: lease.LeaseID, Reason: "injected failure"}, &ack); err != nil {
			t.Fatal(err)
		}
	}

	// The fleet is wedged: no more leases, both shards failed.
	var lease LeaseResponse
	code, err := postJSON(context.Background(), http.DefaultClient, url+"/v1/lease",
		LeaseRequest{Worker: "late"}, &lease)
	if err != nil || code != http.StatusOK {
		t.Fatalf("post-failure lease: code=%d err=%v", code, err)
	}
	if lease.Status != StatusDone {
		t.Fatalf("wedged fleet must tell workers it is over, got %q", lease.Status)
	}
	st := c.Status()
	if len(st.Failed) != 2 || st.Failed[0] != 0 || st.Failed[1] != 1 {
		t.Fatalf("status failed list: %v", st.Failed)
	}
	for i, s := range st.Shards {
		if s.State != stateFailed {
			t.Fatalf("shard %d state %q, want failed", i, s.State)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = c.Wait(ctx)
	if err == nil || !strings.Contains(err.Error(), "permanently failed") {
		t.Fatalf("Wait on wedged fleet: want failed-shards error, got %v", err)
	}

	// A resumed coordinator must still know the shards are failed.
	c.Close()
	c2, err := NewCoordinator(grid, CoordinatorOptions{
		ShardCount: 2, Dir: dir, Resume: true, MaxShardRetries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if failed := c2.FailedShards(); len(failed) != 2 {
		t.Fatalf("resumed coordinator failed shards: %v", failed)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := c2.Wait(ctx2); err == nil {
		t.Fatal("resumed Wait on wedged fleet must not return nil")
	}
}

// TestResumeStreamsMultiMBLog pins the streaming replay path: a
// coordinator log several MB long (tens of thousands of grant/requeue
// churn records, the shape a week-long fleet leaves behind) resumes
// correctly, and a torn final append is truncated away. Replay memory
// is bounded structurally — openCoordLog hands records to a callback
// one at a time instead of materializing the log — so this test's job
// is to prove the streaming decoder agrees with the old whole-file
// semantics at realistic scale.
func TestResumeStreamsMultiMBLog(t *testing.T) {
	grid := testGrid()
	fp, err := grid.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	const shards = 4
	dir := t.TempDir()

	enc := func(rec coordRecord) []byte {
		body, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		return sweepd.EncodeRecord(body)
	}
	var raw bytes.Buffer
	raw.Write(enc(coordRecord{Kind: recHeader, Version: coordLogVersion, Fingerprint: fp, ShardCount: shards}))
	// Churn: every shard is granted and requeued over and over. Later
	// records supersede earlier ones, so only the tail matters — but the
	// decoder has to wade through all of it.
	seq := 0
	requeues := make([]int, shards)
	const rounds = 16000
	for r := 0; r < rounds; r++ {
		s := r % shards
		seq++
		raw.Write(enc(coordRecord{Kind: recGrant, Shard: s, Worker: fmt.Sprintf("w%d", r%7),
			LeaseID: fmt.Sprintf("lease-%08d", seq), Seq: seq}))
		raw.Write(enc(coordRecord{Kind: recRequeue, Shard: s, Reason: "ttl expired"}))
		requeues[s]++
	}
	// Tail that defines the final table: shards 0 and 1 complete, shard 2
	// holds a live lease, shard 3 stays pending.
	for s := 0; s < 2; s++ {
		seq++
		raw.Write(enc(coordRecord{Kind: recGrant, Shard: s, Worker: "closer",
			LeaseID: fmt.Sprintf("lease-%08d", seq), Seq: seq}))
		raw.Write(enc(coordRecord{Kind: recComplete, Shard: s, Dir: filepath.Join(dir, fmt.Sprintf("shard-%03d", s))}))
	}
	seq++
	liveLease := fmt.Sprintf("lease-%08d", seq)
	raw.Write(enc(coordRecord{Kind: recGrant, Shard: 2, Worker: "survivor", LeaseID: liveLease, Seq: seq}))
	intact := raw.Len()
	// A torn final append: half a record, no newline.
	torn := enc(coordRecord{Kind: recGrant, Shard: 3, Worker: "victim", LeaseID: "lease-torn", Seq: seq + 1})
	raw.Write(torn[:len(torn)/2])

	if raw.Len() < 2<<20 {
		t.Fatalf("synthetic log only %d bytes; the test wants multi-MB", raw.Len())
	}
	path := filepath.Join(dir, coordLogName)
	if err := os.WriteFile(path, raw.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := NewCoordinator(grid, CoordinatorOptions{ShardCount: shards, Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st := c.Status()
	if st.Done != 2 {
		t.Fatalf("done=%d, want 2", st.Done)
	}
	wantStates := []string{stateDone, stateDone, stateLeased, statePending}
	for i, want := range wantStates {
		if st.Shards[i].State != want {
			t.Errorf("shard %d state %q, want %q", i, st.Shards[i].State, want)
		}
	}
	if got := st.Shards[2].Worker; got != "survivor" {
		t.Errorf("shard 2 worker %q, want survivor", got)
	}
	if got := st.Shards[3].Retries; got != requeues[3] {
		t.Errorf("shard 3 retries %d, want %d", got, requeues[3])
	}
	c.mu.Lock()
	leasedShard, ok := c.byLease[liveLease]
	c.mu.Unlock()
	if !ok || leasedShard != 2 {
		t.Errorf("live lease %q maps to shard %d (ok=%v), want 2", liveLease, leasedShard, ok)
	}

	// The torn tail must be gone from disk so the next append lands on a
	// clean record boundary.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(intact) {
		t.Errorf("coord.log %d bytes after resume, want torn tail truncated to %d", fi.Size(), intact)
	}
}

// TestOpenCoordLogCorruptionRules pins the streaming decoder's damage
// semantics: corruption before the final record is fatal (the log is
// fsynced, so mid-file damage is not a crash artifact), a corrupt final
// record is dropped like a torn tail, and an absurdly long line is
// refused instead of buffered.
func TestOpenCoordLogCorruptionRules(t *testing.T) {
	enc := func(rec coordRecord) []byte {
		body, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		return sweepd.EncodeRecord(body)
	}
	header := enc(coordRecord{Kind: recHeader, Version: coordLogVersion, Fingerprint: "fp", ShardCount: 1})
	grant := enc(coordRecord{Kind: recGrant, Shard: 0, Worker: "w", LeaseID: "l1", Seq: 1})

	write := func(t *testing.T, chunks ...[]byte) string {
		t.Helper()
		dir := t.TempDir()
		var raw []byte
		for _, c := range chunks {
			raw = append(raw, c...)
		}
		if err := os.WriteFile(filepath.Join(dir, coordLogName), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	replay := func(dir string) (int, error) {
		n := 0
		log, err := openCoordLog(dir, func(int, coordRecord) error { n++; return nil })
		if log != nil {
			log.Close()
		}
		return n, err
	}

	t.Run("mid-file corruption is fatal", func(t *testing.T) {
		bad := append([]byte(nil), grant...)
		bad[2] ^= 0xff // break the crc
		dir := write(t, header, bad, grant)
		if _, err := replay(dir); err == nil {
			t.Fatal("corrupt mid-file record must fail resume")
		}
	})
	t.Run("corrupt final record is dropped", func(t *testing.T) {
		bad := append([]byte(nil), grant...)
		bad[2] ^= 0xff
		dir := write(t, header, grant, bad)
		n, err := replay(dir)
		if err != nil || n != 2 {
			t.Fatalf("n=%d err=%v, want the 2 intact records and no error", n, err)
		}
	})
	t.Run("oversized line is refused", func(t *testing.T) {
		huge := append(bytes.Repeat([]byte{'a'}, maxCoordRecord+2), '\n')
		dir := write(t, header, huge, grant)
		if _, err := replay(dir); err == nil {
			t.Fatal("over-limit record must fail resume")
		}
	})
}
