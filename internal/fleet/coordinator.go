package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"doda/internal/sweep"
)

// CoordinatorOptions tunes a fleet coordinator.
type CoordinatorOptions struct {
	// ShardCount is the number of shard leases the grid is split into
	// (each worker runs one shard at a time).
	ShardCount int
	// Dir is the fleet's root directory; shard i checkpoints into
	// Dir/shard-<i>.
	Dir string
	// LeaseTTL is how long a lease survives without a heartbeat before
	// its shard is requeued (default 30s). It must comfortably exceed
	// the wall time of the slowest cell — a worker only notices a
	// revocation at a checkpoint boundary.
	LeaseTTL time.Duration
	// RetryEvery is the backoff hint returned when all shards are leased
	// (default LeaseTTL/4).
	RetryEvery time.Duration
}

// shard lease states.
const (
	statePending = "pending"
	stateLeased  = "leased"
	stateDone    = "done"
)

// shardState is the coordinator's record of one shard.
type shardState struct {
	state    string
	worker   string
	leaseID  string
	expires  time.Time
	lastBeat time.Time
	retries  int
	dir      string
}

// Coordinator owns the shard partition table of one grid and serves the
// lease protocol. Create with NewCoordinator, then Start/Wait/Close.
type Coordinator struct {
	grid        sweep.Grid
	fingerprint string
	opt         CoordinatorOptions

	mu       sync.Mutex
	shards   []*shardState
	byLease  map[string]int
	leaseSeq int
	doneOnce sync.Once
	doneCh   chan struct{}

	srv    *http.Server
	lis    net.Listener
	stopHB chan struct{}
}

// NewCoordinator validates the grid and builds the partition table.
func NewCoordinator(grid sweep.Grid, opt CoordinatorOptions) (*Coordinator, error) {
	if opt.ShardCount < 1 {
		return nil, fmt.Errorf("fleet: shard count %d < 1", opt.ShardCount)
	}
	if opt.Dir == "" {
		return nil, fmt.Errorf("fleet: empty fleet directory")
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = 30 * time.Second
	}
	if opt.RetryEvery <= 0 {
		opt.RetryEvery = opt.LeaseTTL / 4
	}
	fp, err := grid.Fingerprint()
	if err != nil {
		return nil, err
	}
	if _, err := grid.Cells(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		grid:        grid,
		fingerprint: fp,
		opt:         opt,
		shards:      make([]*shardState, opt.ShardCount),
		byLease:     make(map[string]int),
		doneCh:      make(chan struct{}),
		stopHB:      make(chan struct{}),
	}
	for i := range c.shards {
		c.shards[i] = &shardState{
			state: statePending,
			dir:   filepath.Join(opt.Dir, fmt.Sprintf("shard-%03d", i)),
		}
	}
	return c, nil
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/lease", c.handleLease)
	mux.HandleFunc("/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/v1/complete", c.handleComplete)
	mux.HandleFunc("/v1/status", c.handleStatus)
	return mux
}

// Start listens on addr (host:port; port 0 picks a free one), serves the
// API in the background, and runs the lease-expiry loop. It returns the
// bound address.
func (c *Coordinator) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	c.lis = lis
	c.srv = &http.Server{Handler: c.Handler()}
	go c.srv.Serve(lis)
	go c.expiryLoop()
	return lis.Addr().String(), nil
}

// expiryLoop requeues shards whose leases stopped heartbeating.
func (c *Coordinator) expiryLoop() {
	period := c.opt.LeaseTTL / 4
	if period > time.Second {
		period = time.Second
	}
	if period <= 0 {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-c.stopHB:
			return
		case <-c.doneCh:
			return
		case now := <-t.C:
			c.mu.Lock()
			c.expireLocked(now)
			c.mu.Unlock()
		}
	}
}

// expireLocked requeues every leased shard whose lease has expired.
func (c *Coordinator) expireLocked(now time.Time) {
	for _, s := range c.shards {
		if s.state == stateLeased && now.After(s.expires) {
			delete(c.byLease, s.leaseID)
			s.state = statePending
			s.worker = ""
			s.leaseID = ""
			s.retries++
		}
	}
}

// Wait blocks until every shard completes or the context is cancelled.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops the server and the expiry loop.
func (c *Coordinator) Close() error {
	close(c.stopHB)
	if c.srv != nil {
		return c.srv.Close()
	}
	return nil
}

// ShardDirs lists every shard's checkpoint directory in shard order —
// the merge input once Wait returns.
func (c *Coordinator) ShardDirs() []string {
	dirs := make([]string, len(c.shards))
	for i, s := range c.shards {
		dirs[i] = s.dir
	}
	return dirs
}

// Status snapshots the fleet for the dashboard.
func (c *Coordinator) Status() FleetStatus {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	st := FleetStatus{
		Fingerprint: c.fingerprint,
		ShardCount:  len(c.shards),
		Shards:      make([]ShardStatus, len(c.shards)),
	}
	for i, s := range c.shards {
		row := ShardStatus{
			Shard:          i,
			State:          s.state,
			Worker:         s.worker,
			HeartbeatAgeMs: -1,
			Retries:        s.retries,
			Dir:            s.dir,
		}
		if s.state == stateLeased {
			row.HeartbeatAgeMs = float64(now.Sub(s.lastBeat).Nanoseconds()) / 1e6
		}
		if s.state == stateDone {
			st.Done++
		}
		st.Shards[i] = row
	}
	return st
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	c.expireLocked(now)
	resp := LeaseResponse{Status: StatusDone}
	allDone := true
	for i, s := range c.shards {
		if s.state == stateDone {
			continue
		}
		allDone = false
		if s.state != statePending {
			continue
		}
		c.leaseSeq++
		s.state = stateLeased
		s.worker = req.Worker
		s.leaseID = fmt.Sprintf("s%d-e%d", i, c.leaseSeq)
		s.expires = now.Add(c.opt.LeaseTTL)
		s.lastBeat = now
		c.byLease[s.leaseID] = i
		resp = LeaseResponse{
			Status:     StatusLease,
			Shard:      i,
			ShardCount: len(c.shards),
			LeaseID:    s.leaseID,
			TTLMs:      c.opt.LeaseTTL.Milliseconds(),
			Dir:        s.dir,
			Grid:       c.grid,
		}
		break
	}
	if allDone {
		resp = LeaseResponse{Status: StatusDone}
	} else if resp.Status == StatusDone {
		resp = LeaseResponse{Status: StatusWait, RetryMs: c.opt.RetryEvery.Milliseconds()}
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	c.expireLocked(now)
	i, ok := c.byLease[req.LeaseID]
	if ok {
		s := c.shards[i]
		s.expires = now.Add(c.opt.LeaseTTL)
		s.lastBeat = now
	}
	c.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusGone, OKResponse{Status: "revoked"})
		return
	}
	writeJSON(w, http.StatusOK, OKResponse{Status: "ok"})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	c.expireLocked(now)
	i, ok := c.byLease[req.LeaseID]
	if ok {
		s := c.shards[i]
		delete(c.byLease, s.leaseID)
		s.state = stateDone
		s.worker = ""
		s.leaseID = ""
		if req.Dir != "" {
			s.dir = req.Dir
		}
		done := 0
		for _, sh := range c.shards {
			if sh.state == stateDone {
				done++
			}
		}
		if done == len(c.shards) {
			c.doneOnce.Do(func() { close(c.doneCh) })
		}
	}
	c.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusGone, OKResponse{Status: "revoked"})
		return
	}
	writeJSON(w, http.StatusOK, OKResponse{Status: "ok"})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

// decodeJSON parses a request body, answering 400 on garbage (an empty
// body reads as the zero value). Returns false when the response is
// already written.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil && !errors.Is(err, io.EOF) {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
