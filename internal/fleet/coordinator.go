package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"doda/internal/sweep"
	"doda/internal/sweepd"
)

// CoordinatorOptions tunes a fleet coordinator.
type CoordinatorOptions struct {
	// ShardCount is the number of shard leases the grid is split into
	// (each worker runs one shard at a time).
	ShardCount int
	// Dir is the fleet's root directory; shard i checkpoints into
	// Dir/shard-<i>, and the coordinator's own event log is
	// Dir/coord.log.
	Dir string
	// LeaseTTL is how long a lease survives without a heartbeat before
	// its shard is requeued (default 30s). It must comfortably exceed
	// the wall time of the slowest cell — a worker only notices a
	// revocation at a checkpoint boundary.
	LeaseTTL time.Duration
	// RetryEvery is the backoff hint returned when all shards are leased
	// (default LeaseTTL/4).
	RetryEvery time.Duration
	// Resume rebuilds the partition table of a crashed coordinator from
	// Dir/coord.log and the shards' own checkpoints instead of starting
	// fresh. Grants whose workers survived keep their lease IDs (with a
	// fresh TTL), so running workers reconnect without losing work.
	Resume bool
	// MaxShardRetries permanently fails a shard once it has been requeued
	// this many times (lease expiries and releases both count): a shard
	// that keeps killing its workers stops being handed out, and Wait
	// reports the fleet wedged instead of spinning forever. 0 = unlimited.
	MaxShardRetries int
	// Logf, when non-nil, receives coordinator lifecycle lines (resume
	// summary, shards recovered from checkpoints). Printf semantics.
	Logf func(format string, args ...any)
}

// shard lease states.
const (
	statePending = "pending"
	stateLeased  = "leased"
	stateDone    = "done"
	stateFailed  = "failed"
)

// shardState is the coordinator's record of one shard.
type shardState struct {
	state    string
	worker   string
	leaseID  string
	expires  time.Time
	lastBeat time.Time
	retries  int
	dir      string
}

// Coordinator owns the shard partition table of one grid and serves the
// lease protocol. Create with NewCoordinator, then Start/Wait/Close.
type Coordinator struct {
	grid        sweep.Grid
	fingerprint string
	opt         CoordinatorOptions

	mu       sync.Mutex
	shards   []*shardState
	byLease  map[string]int
	leaseSeq int
	log      *coordLog
	doneOnce sync.Once
	doneCh   chan struct{}

	srv       *http.Server
	lis       net.Listener
	stopHB    chan struct{}
	closeOnce sync.Once
	logf      func(format string, args ...any)
}

// NewCoordinator validates the grid and builds the partition table.
func NewCoordinator(grid sweep.Grid, opt CoordinatorOptions) (*Coordinator, error) {
	if opt.ShardCount < 1 {
		return nil, fmt.Errorf("fleet: shard count %d < 1", opt.ShardCount)
	}
	if opt.Dir == "" {
		return nil, fmt.Errorf("fleet: empty fleet directory")
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = 30 * time.Second
	}
	if opt.RetryEvery <= 0 {
		opt.RetryEvery = opt.LeaseTTL / 4
	}
	fp, err := grid.Fingerprint()
	if err != nil {
		return nil, err
	}
	if _, err := grid.Cells(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		grid:        grid,
		fingerprint: fp,
		opt:         opt,
		shards:      make([]*shardState, opt.ShardCount),
		byLease:     make(map[string]int),
		doneCh:      make(chan struct{}),
		stopHB:      make(chan struct{}),
		logf:        opt.Logf,
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	for i := range c.shards {
		c.shards[i] = &shardState{
			state: statePending,
			dir:   filepath.Join(opt.Dir, fmt.Sprintf("shard-%03d", i)),
		}
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	if opt.Resume {
		if err := c.resume(); err != nil {
			return nil, err
		}
	} else {
		log, err := createCoordLog(opt.Dir, coordRecord{
			Kind:        recHeader,
			Version:     coordLogVersion,
			Fingerprint: fp,
			ShardCount:  opt.ShardCount,
		})
		if err != nil {
			return nil, err
		}
		c.log = log
	}
	return c, nil
}

// resume rebuilds the partition table from the event log and the shard
// checkpoints. Replay is sequential, so a later grant of a shard
// supersedes an earlier one and a missing requeue record self-heals.
// Leased shards come back with their lease IDs intact and a fresh TTL:
// a worker that survived the coordinator crash heartbeats on and its
// eventual completion is honored. Finally, every not-yet-done shard's
// checkpoint directory is scanned — a shard that finished but whose
// completion call was lost with the old coordinator is detected by its
// full journal and marked done.
func (c *Coordinator) resume() error {
	now := time.Now()
	sawHeader := false
	// Records are applied as they stream off disk — the log is never
	// held in memory whole, so a multi-MB log from a long fleet replays
	// in O(one record) space.
	log, err := openCoordLog(c.opt.Dir, func(i int, rec coordRecord) error {
		if i == 0 {
			if rec.Kind != recHeader {
				return fmt.Errorf("fleet: %s/%s: missing header record", c.opt.Dir, coordLogName)
			}
			if rec.Version != coordLogVersion {
				return fmt.Errorf("fleet: coord.log version %d, want %d", rec.Version, coordLogVersion)
			}
			if rec.Fingerprint != c.fingerprint {
				return fmt.Errorf("fleet: coord.log is for a different grid (fingerprint %.12s, want %.12s)", rec.Fingerprint, c.fingerprint)
			}
			if rec.ShardCount != len(c.shards) {
				return fmt.Errorf("fleet: coord.log has %d shards, want %d", rec.ShardCount, len(c.shards))
			}
			sawHeader = true
			return nil
		}
		if rec.Shard < 0 || rec.Shard >= len(c.shards) {
			return fmt.Errorf("fleet: coord.log references shard %d of %d", rec.Shard, len(c.shards))
		}
		s := c.shards[rec.Shard]
		switch rec.Kind {
		case recGrant:
			if s.leaseID != "" {
				delete(c.byLease, s.leaseID)
			}
			s.state = stateLeased
			s.worker = rec.Worker
			s.leaseID = rec.LeaseID
			s.expires = now.Add(c.opt.LeaseTTL)
			s.lastBeat = now
			c.byLease[rec.LeaseID] = rec.Shard
			if rec.Seq > c.leaseSeq {
				c.leaseSeq = rec.Seq
			}
		case recRequeue:
			if s.leaseID != "" {
				delete(c.byLease, s.leaseID)
			}
			s.state = statePending
			s.worker = ""
			s.leaseID = ""
			s.retries++
			// Re-derive permanent failure from the requeue count: the fail
			// record itself is unsynced and may not have survived.
			if c.opt.MaxShardRetries > 0 && s.retries >= c.opt.MaxShardRetries {
				s.state = stateFailed
			}
		case recFail:
			if s.leaseID != "" {
				delete(c.byLease, s.leaseID)
			}
			s.state = stateFailed
			s.worker = ""
			s.leaseID = ""
		case recComplete:
			if s.leaseID != "" {
				delete(c.byLease, s.leaseID)
			}
			s.state = stateDone
			s.worker = ""
			s.leaseID = ""
			if rec.Dir != "" {
				s.dir = rec.Dir
			}
		default:
			return fmt.Errorf("fleet: coord.log record kind %q", rec.Kind)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !sawHeader {
		log.Close()
		return fmt.Errorf("fleet: %s/%s: missing header record", c.opt.Dir, coordLogName)
	}
	c.log = log
	recovered := c.adoptFinishedCheckpoints()
	done := 0
	for _, s := range c.shards {
		if s.state == stateDone {
			done++
		}
	}
	c.logf("fleet: resumed from coord.log: %d/%d shards done (%d recovered from checkpoints), %d leases live, %d failed",
		done, len(c.shards), recovered, len(c.byLease), len(c.failedShardsLocked()))
	c.maybeFinishedLocked()
	return nil
}

// adoptFinishedCheckpoints scans every not-yet-done shard's checkpoint
// directory and marks as done those whose journal already holds every
// cell of the shard — work that finished while no coordinator was
// listening. Returns how many shards it recovered.
func (c *Coordinator) adoptFinishedCheckpoints() int {
	cells, err := c.grid.Cells()
	if err != nil {
		return 0
	}
	want := make([]int, len(c.shards))
	for _, cell := range cells {
		want[sweep.ShardOf(cell.Index, len(c.shards))]++
	}
	recovered := 0
	for i, s := range c.shards {
		if s.state == stateDone {
			continue
		}
		hdr, recs, err := sweepd.ReadCheckpoint(s.dir)
		if err != nil {
			continue // no/partial checkpoint: the shard really is unfinished
		}
		if hdr.Fingerprint != c.fingerprint || hdr.ShardIndex != i || hdr.ShardCount != len(c.shards) {
			continue
		}
		seen := make(map[int]bool, len(recs))
		for _, r := range recs {
			seen[r.Index] = true
		}
		if len(seen) < want[i] {
			continue
		}
		if err := c.log.append(coordRecord{Kind: recComplete, Shard: i, Dir: s.dir, Reason: "checkpoint scan"}); err != nil {
			continue
		}
		if s.leaseID != "" {
			delete(c.byLease, s.leaseID)
		}
		s.state = stateDone
		s.worker = ""
		s.leaseID = ""
		recovered++
	}
	return recovered
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/lease", c.handleLease)
	mux.HandleFunc("/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/v1/complete", c.handleComplete)
	mux.HandleFunc("/v1/release", c.handleRelease)
	mux.HandleFunc("/v1/status", c.handleStatus)
	return mux
}

// Start listens on addr (host:port; port 0 picks a free one), serves the
// API in the background, and runs the lease-expiry loop. It returns the
// bound address.
func (c *Coordinator) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	c.lis = lis
	c.srv = &http.Server{Handler: c.Handler()}
	go c.srv.Serve(lis)
	go c.expiryLoop()
	return lis.Addr().String(), nil
}

// expiryLoop requeues shards whose leases stopped heartbeating.
func (c *Coordinator) expiryLoop() {
	period := c.opt.LeaseTTL / 4
	if period > time.Second {
		period = time.Second
	}
	if period <= 0 {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-c.stopHB:
			return
		case <-c.doneCh:
			return
		case now := <-t.C:
			c.mu.Lock()
			c.expireLocked(now)
			c.mu.Unlock()
		}
	}
}

// expireLocked requeues every leased shard whose lease has expired.
// The requeue record is journaled best-effort, unsynced: replay
// tolerates its loss because the superseding grant re-leases the shard.
func (c *Coordinator) expireLocked(now time.Time) {
	for i, s := range c.shards {
		if s.state == stateLeased && now.After(s.expires) {
			c.requeueLocked(i, "lease expired")
		}
	}
}

// requeueLocked returns shard i to the pending pool — or, when the
// retry budget is spent, marks it permanently failed.
func (c *Coordinator) requeueLocked(i int, reason string) {
	s := c.shards[i]
	c.log.appendNoSync(coordRecord{Kind: recRequeue, Shard: i, Worker: s.worker, LeaseID: s.leaseID, Reason: reason})
	delete(c.byLease, s.leaseID)
	s.state = statePending
	s.worker = ""
	s.leaseID = ""
	s.retries++
	if c.opt.MaxShardRetries > 0 && s.retries >= c.opt.MaxShardRetries {
		// The fail record is advisory (replay re-derives failure from the
		// requeue count), so an unsynced append is enough.
		c.log.appendNoSync(coordRecord{Kind: recFail, Shard: i, Reason: fmt.Sprintf("%d retries", s.retries)})
		s.state = stateFailed
		c.logf("fleet: shard %d permanently failed after %d retries (last: %s)", i, s.retries, reason)
		c.maybeFinishedLocked()
	}
}

// maybeFinishedLocked closes the done channel once no shard can make
// further progress: every shard is done or permanently failed. Wait
// distinguishes the two outcomes.
func (c *Coordinator) maybeFinishedLocked() {
	for _, s := range c.shards {
		if s.state != stateDone && s.state != stateFailed {
			return
		}
	}
	c.doneOnce.Do(func() { close(c.doneCh) })
}

// failedShardsLocked lists the permanently failed shards in order.
func (c *Coordinator) failedShardsLocked() []int {
	var failed []int
	for i, s := range c.shards {
		if s.state == stateFailed {
			failed = append(failed, i)
		}
	}
	return failed
}

// FailedShards lists the permanently failed shards (retry budget spent).
func (c *Coordinator) FailedShards() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failedShardsLocked()
}

// Wait blocks until no shard can make further progress or the context is
// cancelled. A fleet whose every shard completed returns nil; a fleet
// wedged by permanently failed shards returns an error naming them.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.doneCh:
	case <-ctx.Done():
		return ctx.Err()
	}
	if failed := c.FailedShards(); len(failed) > 0 {
		return fmt.Errorf("fleet: %d shard(s) permanently failed after exhausting %d retries: %v",
			len(failed), c.opt.MaxShardRetries, failed)
	}
	return nil
}

// Close stops the server and the expiry loop and releases the event
// log. Safe to call more than once.
func (c *Coordinator) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.stopHB)
		if c.srv != nil {
			err = c.srv.Close()
		}
		c.log.Close()
	})
	return err
}

// ShardDirs lists every shard's checkpoint directory in shard order —
// the merge input once Wait returns.
func (c *Coordinator) ShardDirs() []string {
	dirs := make([]string, len(c.shards))
	for i, s := range c.shards {
		dirs[i] = s.dir
	}
	return dirs
}

// Status snapshots the fleet for the dashboard.
func (c *Coordinator) Status() FleetStatus {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	st := FleetStatus{
		Fingerprint: c.fingerprint,
		ShardCount:  len(c.shards),
		Shards:      make([]ShardStatus, len(c.shards)),
	}
	for i, s := range c.shards {
		row := ShardStatus{
			Shard:          i,
			State:          s.state,
			Worker:         s.worker,
			HeartbeatAgeMs: -1,
			Retries:        s.retries,
			Dir:            s.dir,
		}
		if s.state == stateLeased {
			row.HeartbeatAgeMs = float64(now.Sub(s.lastBeat).Nanoseconds()) / 1e6
		}
		if s.state == stateDone {
			st.Done++
		}
		if s.state == stateFailed {
			st.Failed = append(st.Failed, i)
		}
		st.Shards[i] = row
	}
	return st
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	c.expireLocked(now)
	resp := LeaseResponse{Status: StatusDone}
	allDone := true
	for i, s := range c.shards {
		// Failed shards are terminal too: once everything is done or
		// failed, workers are told the fleet is over so they exit instead
		// of polling a wedged coordinator forever.
		if s.state == stateDone || s.state == stateFailed {
			continue
		}
		allDone = false
		if s.state != statePending {
			continue
		}
		seq := c.leaseSeq + 1
		leaseID := fmt.Sprintf("s%d-e%d", i, seq)
		// The grant is journaled (and fsynced) before it is committed or
		// acknowledged: a coordinator that crashes right after answering
		// still knows about the lease on resume.
		if err := c.log.append(coordRecord{Kind: recGrant, Shard: i, Worker: req.Worker, LeaseID: leaseID, Seq: seq}); err != nil {
			c.mu.Unlock()
			http.Error(w, fmt.Sprintf("journal: %v", err), http.StatusInternalServerError)
			return
		}
		c.leaseSeq = seq
		s.state = stateLeased
		s.worker = req.Worker
		s.leaseID = leaseID
		s.expires = now.Add(c.opt.LeaseTTL)
		s.lastBeat = now
		c.byLease[s.leaseID] = i
		resp = LeaseResponse{
			Status:     StatusLease,
			Shard:      i,
			ShardCount: len(c.shards),
			LeaseID:    s.leaseID,
			TTLMs:      c.opt.LeaseTTL.Milliseconds(),
			Dir:        s.dir,
			Grid:       c.grid,
		}
		break
	}
	if allDone {
		resp = LeaseResponse{Status: StatusDone}
	} else if resp.Status == StatusDone {
		resp = LeaseResponse{Status: StatusWait, RetryMs: c.opt.RetryEvery.Milliseconds()}
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	c.expireLocked(now)
	i, ok := c.byLease[req.LeaseID]
	if ok {
		s := c.shards[i]
		s.expires = now.Add(c.opt.LeaseTTL)
		s.lastBeat = now
	}
	c.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusGone, OKResponse{Status: "revoked"})
		return
	}
	writeJSON(w, http.StatusOK, OKResponse{Status: "ok"})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	c.expireLocked(now)
	i, ok := c.byLease[req.LeaseID]
	if ok {
		s := c.shards[i]
		// Journal first: an unacknowledged completion is retried by the
		// worker, an acknowledged one must survive a coordinator crash.
		if err := c.log.append(coordRecord{Kind: recComplete, Shard: i, Worker: s.worker, LeaseID: s.leaseID, Dir: req.Dir}); err != nil {
			c.mu.Unlock()
			http.Error(w, fmt.Sprintf("journal: %v", err), http.StatusInternalServerError)
			return
		}
		delete(c.byLease, s.leaseID)
		s.state = stateDone
		s.worker = ""
		s.leaseID = ""
		if req.Dir != "" {
			s.dir = req.Dir
		}
		c.maybeFinishedLocked()
	}
	c.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusGone, OKResponse{Status: "revoked"})
		return
	}
	writeJSON(w, http.StatusOK, OKResponse{Status: "ok"})
}

// handleRelease returns a still-valid lease to the pending pool at the
// worker's request — it hit a run error and wants the shard retried
// (possibly elsewhere) without waiting out the TTL.
func (c *Coordinator) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req ReleaseRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	c.expireLocked(now)
	i, ok := c.byLease[req.LeaseID]
	if ok {
		reason := req.Reason
		if reason == "" {
			reason = "released"
		}
		c.requeueLocked(i, reason)
	}
	c.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusGone, OKResponse{Status: "revoked"})
		return
	}
	writeJSON(w, http.StatusOK, OKResponse{Status: "ok"})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

// decodeJSON parses a request body, answering 400 on garbage (an empty
// body reads as the zero value). Returns false when the response is
// already written.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil && !errors.Is(err, io.EOF) {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
