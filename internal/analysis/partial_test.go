package analysis

import (
	"bytes"
	"strings"
	"testing"

	"doda/internal/sweep"
	"doda/internal/sweepd"
)

// TestAnalyzeCheckpointPartial runs only one shard of a two-shard fleet
// and analyzes the half-finished fleet: fits must cover the complete
// cells, every group must be coverage-annotated, and absent groups must
// still appear.
func TestAnalyzeCheckpointPartial(t *testing.T) {
	grid := sweep.Grid{
		Scenarios:  []sweep.ScenarioRef{{Name: "uniform"}, {Name: "churn"}},
		Algorithms: []string{"waiting", "gathering"},
		Sizes:      []int{4, 6, 8, 10, 12},
		Replicas:   2,
		Seed:       4242,
	}
	dir := t.TempDir()
	if _, _, err := sweepd.Run(grid, dir, sweepd.Options{
		Workers: 2, ShardIndex: 0, ShardCount: 2, ProgressEvery: -1,
	}); err != nil {
		t.Fatal(err)
	}

	opt := Options{Bootstrap: -1, Seed: 1}
	a, err := AnalyzeCheckpointPartial([]string{dir}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Partial {
		t.Fatal("analysis not marked partial")
	}
	cells, err := grid.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if a.CellsTotal != len(cells) {
		t.Fatalf("CellsTotal=%d, want %d", a.CellsTotal, len(cells))
	}
	if a.Cells == 0 || a.Cells >= len(cells) {
		t.Fatalf("one shard should hold some but not all cells, got %d/%d", a.Cells, len(cells))
	}
	if want := len(grid.Scenarios) * len(grid.Algorithms); len(a.Groups) != want {
		t.Fatalf("groups=%d, want every grid group (%d)", len(a.Groups), want)
	}
	coveredCells := 0
	for _, g := range a.Groups {
		if g.CoverageTotal != len(grid.Sizes) {
			t.Fatalf("group %s/%s coverage total %d, want %d", g.Scenario, g.Algorithm, g.CoverageTotal, len(grid.Sizes))
		}
		if g.CoverageDone+len(g.MissingSizes) != g.CoverageTotal {
			t.Fatalf("group %s/%s coverage %d + missing %d != total %d",
				g.Scenario, g.Algorithm, g.CoverageDone, len(g.MissingSizes), g.CoverageTotal)
		}
		coveredCells += g.CoverageDone
	}
	if coveredCells != a.Cells {
		t.Fatalf("group coverage sums to %d, analysis saw %d cells", coveredCells, a.Cells)
	}

	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, a); err != nil {
		t.Fatal(err)
	}
	md := buf.String()
	if !strings.Contains(md, "Partial analysis") {
		t.Fatal("markdown lacks the partial banner")
	}
	if !strings.Contains(md, "Coverage:") {
		t.Fatal("markdown lacks coverage annotations")
	}

	// The complete-fleet path must still refuse a partial fleet.
	if _, err := AnalyzeCheckpoint([]string{dir}, opt); err == nil {
		t.Fatal("AnalyzeCheckpoint accepted an incomplete fleet")
	}
}

// TestPartialAnnotationsAbsentFromCompleteAnalysis pins the golden-file
// contract: a complete analysis carries no partial markers, so the
// non-partial markdown is byte-identical to before the partial layer
// existed.
func TestPartialAnnotationsAbsentFromCompleteAnalysis(t *testing.T) {
	grid := sweep.Grid{
		Scenarios:  []sweep.ScenarioRef{{Name: "uniform"}},
		Algorithms: []string{"waiting"},
		Sizes:      []int{4, 6, 8},
		Replicas:   2,
		Seed:       7,
	}
	dir := t.TempDir()
	if _, _, err := sweepd.Run(grid, dir, sweepd.Options{Workers: 1, ProgressEvery: -1}); err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeCheckpoint([]string{dir}, Options{Bootstrap: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Partial || a.CellsTotal != 0 {
		t.Fatalf("complete analysis marked partial: %+v", a)
	}
	for _, g := range a.Groups {
		if g.CoverageTotal != 0 || g.CoverageDone != 0 || g.MissingSizes != nil {
			t.Fatalf("complete analysis group carries coverage: %+v", g)
		}
	}
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, a); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Partial analysis") || strings.Contains(buf.String(), "Coverage:") {
		t.Fatal("complete markdown contains partial annotations")
	}
}
