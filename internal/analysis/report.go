package analysis

import (
	"io"

	"doda/internal/sweep"
)

// ReportGrid is the standard scaling-law grid behind `dodabench
// -report`: the paper's three online algorithms under the uniform
// adversary (the model every theorem is stated for), swept over a
// multi-point size range so the candidate fits have exponents to bite
// on. Quick scale is the committed-EXPERIMENTS.md configuration
// (seconds); full scale pushes the sizes the PR 3/4 throughput work
// made affordable.
func ReportGrid(full bool, seed uint64) sweep.Grid {
	g := sweep.Grid{
		Scenarios:  []sweep.ScenarioRef{{Name: "uniform"}},
		Algorithms: []string{"waiting", "gathering", "waiting-greedy"},
		Sizes:      []int{16, 24, 32, 48, 64},
		Replicas:   24,
		Seed:       seed ^ 0x5ca11a6, // decorrelate from the experiment suite's own derived seeds
	}
	if full {
		g.Sizes = []int{64, 96, 128, 192, 256, 384, 512}
		g.Replicas = 40
	}
	return g
}

// WriteExperimentsSection renders an EXPERIMENTS.md-ready "Scaling laws"
// section from an analysis of the report grid: the selection summary
// table plus the exact command that reproduces the analysis at full
// scale. reproduce is the full-scale command line to embed.
func WriteExperimentsSection(w io.Writer, a *Analysis, scale string, reproduce string) error {
	bw := &errWriter{w: w}
	bw.printf("## Scaling laws\n\n")
	bw.printf("Cross-cell regression fits over the sweep grid (scale=%s), extracted by\n", scale)
	bw.printf("`internal/analysis`: per (scenario, algorithm) group, every candidate growth\n")
	bw.printf("form is fitted by least squares on log(mean duration) and the forms are\n")
	bw.printf("ranked by AIC; the free power law `c*n^a` reports the empirical exponent\n")
	if a.Bootstrap > 0 {
		bw.printf("with a %d-resample residual-bootstrap 95%% CI.\n\n", a.Bootstrap)
	} else {
		bw.printf("as a point estimate (bootstrap CIs disabled for this run).\n\n")
	}
	writeSummaryTable(bw, a)
	matches, total := 0, 0
	for i := range a.Groups {
		g := &a.Groups[i]
		if g.Law == nil || g.Predicted == "" {
			continue
		}
		total++
		if g.MatchesPrediction() {
			matches++
		}
	}
	if total > 0 {
		bw.printf("\n%d of %d predicted groups select the paper's form.\n", matches, total)
	}
	if reproduce != "" {
		bw.printf("\nReproduce at full scale with:\n\n```sh\n%s\n```\n", reproduce)
	}
	return bw.err
}

// ScaleName renders the grid scale for the section header.
func ScaleName(full bool) string {
	if full {
		return "full"
	}
	return "quick"
}

// SummaryRows flattens the per-group selections into printable rows
// (scenario, algorithm, predicted, selected, c, c CI, exponent, exp CI,
// R²) for CLIs that render their own tables.
func SummaryRows(a *Analysis) [][]string {
	rows := make([][]string, 0, len(a.Groups))
	for gi := range a.Groups {
		g := &a.Groups[gi]
		if g.Law == nil {
			rows = append(rows, []string{g.Scenario, g.Algorithm, dash(g.Predicted), "(no fit)", "-", "-", "-", "-", "-"})
			continue
		}
		sel, _ := g.Law.FitByName(g.Law.Best)
		free, _ := g.Law.FreeFit()
		rows = append(rows, []string{
			g.Scenario, g.Algorithm, dash(g.Predicted), g.Law.Best,
			fnum(sel.C), ci(sel.CLo, sel.CHi),
			fnum(free.Exponent), ci(free.ExpLo, free.ExpHi), fnum(sel.R2),
		})
	}
	return rows
}
