package analysis

import (
	"fmt"
	"hash/fnv"
	"math"

	"doda/internal/rng"
	"doda/internal/stats"
)

// Model names. The display names are the paper's asymptotic shorthands;
// each fixed candidate is fitted against the paper's *exact* closed form
// (see forms below), because at experiment sizes the lower-order terms
// still matter — (n-1)² vs n² is a 12% gap at n=16, and fitting the
// exact form is what lets quick-scale grids select the right model.
const (
	ModelNHn       = "n*H(n)"
	ModelN2        = "n^2"
	ModelN2Hn      = "n^2*H(n)"
	ModelN15SqrtLn = "n^1.5*sqrt(log n)"
	ModelFreePower = "c*n^a"
)

// form is one fixed-shape candidate: a display name, the exact closed
// form fitted, and its evaluator.
type form struct {
	name string
	expr string
	g    func(n float64) float64
}

// hn returns H(n) for a float node count (always integral in practice).
func hn(n float64) float64 { return stats.Harmonic(int(n)) }

// forms is the fixed candidate set, in report order: the paper's closed
// forms for the offline optimum / Waiting Greedy's lower envelope
// ((n-1)·H(n-1), i.e. Θ(n log n)), Gathering ((n-1)², Θ(n²)), Waiting
// (n(n-1)/2·H(n-1), Θ(n² log n)) and Waiting Greedy's upper bound
// (n^1.5·√(ln n)).
func candidateForms() []form {
	return []form{
		{ModelNHn, "(n-1)*H(n-1)", func(n float64) float64 { return (n - 1) * hn(n-1) }},
		{ModelN2, "(n-1)^2", func(n float64) float64 { return (n - 1) * (n - 1) }},
		{ModelN2Hn, "n(n-1)/2*H(n-1)", func(n float64) float64 { return n * (n - 1) / 2 * hn(n-1) }},
		{ModelN15SqrtLn, "n^1.5*sqrt(ln n)", func(n float64) float64 {
			return math.Pow(n, 1.5) * math.Sqrt(math.Log(n))
		}},
	}
}

// PredictedModel returns the candidate the paper's theorems predict for
// an algorithm, or "" when the paper makes no growth claim for it. The
// theorems are stated for §4's uniform randomized adversary; on other
// scenarios the prediction is the baseline the measured growth is
// compared against — S1's finding is precisely that contact structure
// bends it (a Zipf-heavy sink pulls Gathering below n², for instance).
func PredictedModel(algorithm string) string {
	switch algorithm {
	case "waiting":
		return ModelN2Hn // Theorem 9: n(n-1)/2·H(n-1)
	case "gathering":
		return ModelN2 // Theorem 9: (n-1)²
	case "waiting-greedy":
		return ModelN15SqrtLn // Theorem 10: O(n^1.5·√log n)
	case "full-knowledge":
		return ModelNHn // Theorem 8: the offline optimum (n-1)·H(n-1)
	default:
		return ""
	}
}

// ModelFit is one candidate's least-squares fit over a group's (n, mean
// duration) points, with bootstrap confidence intervals and information
// criteria. All regression happens in log space (multiplicative noise,
// every decade weighted equally); RSS, R² and the criteria refer to that
// space.
type ModelFit struct {
	// Model is the candidate's display name (asymptotic shorthand).
	Model string `json:"model"`
	// Form is the exact expression fitted.
	Form string `json:"form"`
	// Free marks the free power-law candidate, the only one with a
	// fitted exponent.
	Free bool `json:"free,omitempty"`
	// C is the fitted scale constant, with its bootstrap CI.
	C   float64 `json:"c"`
	CLo float64 `json:"c_lo"`
	CHi float64 `json:"c_hi"`
	// Exponent is the fitted power (free candidate only), with its
	// bootstrap CI.
	Exponent float64 `json:"exponent,omitempty"`
	ExpLo    float64 `json:"exponent_lo,omitempty"`
	ExpHi    float64 `json:"exponent_hi,omitempty"`
	// R2 is the log-space coefficient of determination.
	R2 float64 `json:"r2"`
	// RSS is the log-space residual sum of squares.
	RSS float64 `json:"rss"`
	// AIC and BIC score the candidate (lower is better); DeltaAIC and
	// DeltaBIC are the gaps to the group's best candidate under each
	// criterion, 0 for the respective winner.
	AIC      float64 `json:"aic"`
	BIC      float64 `json:"bic"`
	DeltaAIC float64 `json:"delta_aic"`
	DeltaBIC float64 `json:"delta_bic"`
}

// LawFit is a full candidate-set fit over one point set: every model's
// fit plus the AIC selection.
type LawFit struct {
	// Fits holds every candidate in report order (fixed forms first,
	// free power last).
	Fits []ModelFit `json:"fits"`
	// Best is the model with the lowest AIC; ties break toward fewer
	// parameters, then candidate order.
	Best string `json:"best"`
	// BestBIC is the BIC winner, reported alongside because BIC's
	// harsher parameter penalty is the more conservative referee when
	// the two disagree about the free-exponent model.
	BestBIC string `json:"best_bic"`
}

// FitByName returns the named candidate's fit.
func (l *LawFit) FitByName(model string) (ModelFit, bool) {
	for _, f := range l.Fits {
		if f.Model == model {
			return f, true
		}
	}
	return ModelFit{}, false
}

// FreeFit returns the free power-law candidate's fit.
func (l *LawFit) FreeFit() (ModelFit, bool) { return l.FitByName(ModelFreePower) }

// FitScalingLaw fits every candidate form to the (n, y) points and
// selects among them by AIC/BIC. It needs at least three points with
// distinct positive n and positive y — two points make the free power
// law exact and the selection vacuous. Bootstrap CIs are deterministic
// given opt.Seed: the resampling streams derive from it alone.
func FitScalingLaw(ns, ys []float64, opt Options) (*LawFit, error) {
	opt = opt.withDefaults()
	return fitLaw(ns, ys, opt.Bootstrap, opt.Seed)
}

// fitLaw is FitScalingLaw after defaulting: bootstrap is the resolved
// resample count (0 = no CIs).
func fitLaw(ns, ys []float64, bootstrap int, seed uint64) (*LawFit, error) {
	if len(ns) != len(ys) {
		return nil, fmt.Errorf("analysis: mismatched lengths %d and %d", len(ns), len(ys))
	}
	if len(ns) < 3 {
		return nil, fmt.Errorf("analysis: need >= 3 sizes to fit scaling laws, got %d", len(ns))
	}
	distinct := map[float64]bool{}
	for _, n := range ns {
		distinct[n] = true
	}
	if len(distinct) < 3 {
		return nil, fmt.Errorf("analysis: need >= 3 distinct sizes, got %d", len(distinct))
	}

	law := &LawFit{}
	m := len(ns)
	for fi, f := range candidateForms() {
		ff, err := stats.FitScaledForm(ns, ys, f.g)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", f.name, err)
		}
		mf := ModelFit{
			Model: f.name, Form: f.expr,
			C: ff.C(), R2: ff.R2, RSS: ff.RSS,
			AIC: stats.AIC(ff.RSS, m, 1), BIC: stats.BIC(ff.RSS, m, 1),
		}
		mf.CLo, mf.CHi = mf.C, mf.C
		if bootstrap > 0 {
			src := rng.New(deriveSeed(seed, uint64(fi)+1))
			cs := bootstrapForm(src, ns, ys, f.g, ff, bootstrap)
			mf.CLo, mf.CHi = logNormalCI(ff.LogC, cs, m-1)
		}
		law.Fits = append(law.Fits, mf)
	}

	pf, err := stats.FitPowerLaw(ns, ys)
	if err != nil {
		return nil, fmt.Errorf("analysis: free power fit: %w", err)
	}
	free := ModelFit{
		Model: ModelFreePower, Form: "c*n^a (free exponent)", Free: true,
		C: pf.C(), Exponent: pf.Exponent, R2: pf.R2, RSS: pf.RSS,
		AIC: stats.AIC(pf.RSS, m, 2), BIC: stats.BIC(pf.RSS, m, 2),
	}
	free.CLo, free.CHi = free.C, free.C
	free.ExpLo, free.ExpHi = free.Exponent, free.Exponent
	if bootstrap > 0 {
		src := rng.New(deriveSeed(seed, 0))
		as, cs := bootstrapPower(src, ns, ys, pf, bootstrap)
		free.ExpLo, free.ExpHi = normalCI(pf.Exponent, as, m-2)
		free.CLo, free.CHi = logNormalCI(pf.LogC, cs, m-2)
	}
	law.Fits = append(law.Fits, free)

	law.Best = selectBest(law.Fits, func(f ModelFit) float64 { return f.AIC })
	law.BestBIC = selectBest(law.Fits, func(f ModelFit) float64 { return f.BIC })
	best, _ := law.FitByName(law.Best)
	bestBIC, _ := law.FitByName(law.BestBIC)
	for i := range law.Fits {
		law.Fits[i].DeltaAIC = law.Fits[i].AIC - best.AIC
		law.Fits[i].DeltaBIC = law.Fits[i].BIC - bestBIC.BIC
	}
	return law, nil
}

// selectBest picks the candidate minimising the criterion; ties (within
// nothing — exact equality only) break toward the earlier, simpler
// candidate, since the free power law is listed last.
func selectBest(fits []ModelFit, crit func(ModelFit) float64) string {
	best := 0
	for i := 1; i < len(fits); i++ {
		if crit(fits[i]) < crit(fits[best]) {
			best = i
		}
	}
	return fits[best].Model
}

// bootstrapForm resamples residuals around a fixed-form fit (fixed-x
// residual bootstrap — with a handful of distinct sizes, resampling the
// points themselves would routinely degenerate to a single size) and
// returns the refitted scale constants.
func bootstrapForm(src *rng.Source, ns, ys []float64, g func(float64) float64, fit stats.FormFit, b int) []float64 {
	m := len(ns)
	resid := make([]float64, m)
	infl := residInflation(m, 1)
	for i := range ns {
		resid[i] = infl * (math.Log(ys[i]) - math.Log(g(ns[i])) - fit.LogC)
	}
	cs := make([]float64, 0, b)
	for it := 0; it < b; it++ {
		// Refitting a scale-only model to resampled residuals reduces to
		// averaging them, so the refit is done in closed form.
		sum := 0.0
		for range resid {
			sum += resid[src.Intn(m)]
		}
		cs = append(cs, math.Exp(fit.LogC+sum/float64(m)))
	}
	return cs
}

// bootstrapPower resamples residuals around the free power-law fit and
// returns the refitted exponents and scale constants.
func bootstrapPower(src *rng.Source, ns, ys []float64, fit stats.PowerFit, b int) (exps, cs []float64) {
	m := len(ns)
	lx := make([]float64, m)
	resid := make([]float64, m)
	infl := residInflation(m, 2)
	for i := range ns {
		lx[i] = math.Log(ns[i])
		resid[i] = infl * (math.Log(ys[i]) - (fit.LogC + fit.Exponent*lx[i]))
	}
	ystar := make([]float64, m)
	exps = make([]float64, 0, b)
	cs = make([]float64, 0, b)
	for it := 0; it < b; it++ {
		for i := range ns {
			ystar[i] = math.Exp(fit.LogC + fit.Exponent*lx[i] + resid[src.Intn(m)])
		}
		pf, err := stats.FitPowerLaw(ns, ystar)
		if err != nil {
			continue // cannot happen: ns are unchanged and ystar > 0
		}
		exps = append(exps, pf.Exponent)
		cs = append(cs, pf.C())
	}
	return exps, cs
}

// residInflation is the √(m/(m−k)) leverage correction applied to
// least-squares residuals before resampling: a k-parameter fit absorbs
// k degrees of freedom, deflating the residual variance, and resampling
// the raw residuals would hand the bootstrap an interval that is
// systematically too narrow (measurably so at the 3–8 sizes a sweep
// grid carries).
func residInflation(m, k int) float64 {
	if m <= k {
		return 1
	}
	return math.Sqrt(float64(m) / float64(m-k))
}

// normalCI builds the 95% bootstrap interval est ± t·sd(samples), with
// Student's t at the residual degrees of freedom. With the 3–8 sizes a
// sweep grid carries, the plain percentile interval is systematically
// too narrow (the classic small-m undercoverage); anchoring the width
// on the bootstrap standard error and the t quantile restores nominal
// coverage, and the interval still collapses to a point on noise-free
// data.
func normalCI(est float64, samples []float64, dof int) (lo, hi float64) {
	if len(samples) < 2 {
		return est, est
	}
	sd := stats.StdDev(samples)
	if math.IsNaN(sd) {
		return est, est
	}
	h := tQuantile975(dof) * sd
	return est - h, est + h
}

// logNormalCI is normalCI computed in log space for a positive scale
// parameter: samples are bootstrap replicates of c, the interval is
// exp(log c ± t·sd(log samples)), which keeps the bounds positive.
func logNormalCI(logEst float64, samples []float64, dof int) (lo, hi float64) {
	logs := make([]float64, 0, len(samples))
	for _, s := range samples {
		if s > 0 {
			logs = append(logs, math.Log(s))
		}
	}
	llo, lhi := normalCI(logEst, logs, dof)
	return math.Exp(llo), math.Exp(lhi)
}

// tQuantile975 is the 97.5th percentile of Student's t with the given
// degrees of freedom (the two-sided 95% multiplier), tabulated exactly
// where sweeps live (tiny dof) and flattening to the normal 1.96 beyond.
func tQuantile975(dof int) float64 {
	table := []float64{ // dof 1..30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	switch {
	case dof < 1:
		return table[0]
	case dof <= len(table):
		return table[dof-1]
	default:
		return 1.96
	}
}

// deriveSeed derives an independent stream seed from the analysis seed
// and a stable tag with one splitmix64 step, so every (group, model)
// pair gets its own deterministic resampling stream and adding a model
// or group never perturbs another's CI.
func deriveSeed(base, tag uint64) uint64 {
	z := base + (tag+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// groupSeed tags the analysis seed with a group's identity string, so a
// group's bootstrap streams are stable no matter which other groups the
// sweep happens to contain.
func groupSeed(base uint64, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return deriveSeed(base, h.Sum64())
}
