package analysis

// The golden-file test pins the markdown report byte-for-byte for one
// fixed (grid, analysis seed): the renderer is a pure function of the
// analysis, the analysis is a pure function of (results, options), and
// the sweep results are deterministic by the per-cell seed contract —
// so any byte drift here means a contract broke somewhere in that
// chain. Regenerate deliberately with:
//
//	go test ./internal/analysis -run TestGoldenReport -update

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"doda/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite the golden report file")

// goldenGrid exercises every report feature: multi-size groups that fit
// (uniform, zipf), a three-point community family that produces a
// p-intra trend, and enough structure for the selection table.
func goldenGrid() sweep.Grid {
	return sweep.Grid{
		Scenarios: []sweep.ScenarioRef{
			{Name: "uniform"},
			{Name: "zipf", Params: map[string]string{"alpha": "1"}},
			{Name: "community", Params: map[string]string{"communities": "2", "p-intra": "0.5"}},
			{Name: "community", Params: map[string]string{"communities": "2", "p-intra": "0.9"}},
			{Name: "community", Params: map[string]string{"communities": "2", "p-intra": "0.99"}},
		},
		Algorithms: []string{"waiting", "gathering"},
		Sizes:      []int{16, 24, 32},
		Replicas:   6,
		Seed:       0x5eed,
	}
}

func TestGoldenReport(t *testing.T) {
	grid := goldenGrid()
	results, _, err := sweep.Run(grid, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(results, Options{Bootstrap: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a.Grid = &grid
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, a); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "report.golden.md")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report drifted from %s (regenerate with -update if intended)\n--- got ---\n%s",
			golden, buf.String())
	}
}
