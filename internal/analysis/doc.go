// Package analysis is the cross-cell analysis layer: it consumes
// completed sweep results — live sweep.Run output, a decoded JSONL
// stream (sweep.ReadResults), or sweepd checkpoint journals — and
// extracts the scaling laws the paper states its headline results as.
//
// # What it computes
//
// Cells are grouped by (scenario, algorithm). For every group with at
// least three distinct sizes, the mean duration is fitted against the
// paper's candidate growth forms — (n−1)·H(n−1) (the offline optimum,
// Θ(n log n)), (n−1)² (Gathering, Θ(n²)), n(n−1)/2·H(n−1) (Waiting,
// Θ(n² log n)), n^1.5·√(ln n) (Waiting Greedy's bound) — plus a free
// power law c·n^a. Fixed candidates use the paper's exact closed forms
// rather than their asymptotic skeletons because at experiment sizes the
// lower-order terms still matter: (n−1)² vs n² is a 12% gap at n=16,
// and the exact form is what lets quick-scale grids select the right
// model. All regression is least squares on log(mean duration); the
// candidates are ranked by AIC (BIC reported alongside as the more
// conservative referee), and every estimate carries a 95% confidence
// interval from a deterministic residual bootstrap (leverage-corrected,
// t-calibrated — plain percentile intervals undercover badly at the
// 3–8 sizes a grid carries).
//
// Families of cells sharing (scenario name, algorithm, n) but differing
// in exactly one numeric scenario parameter additionally get a monotone
// trend test (Kendall's τ plus a strict-monotonicity verdict) — the S2
// community-mixing claim as a statistic.
//
// # Determinism
//
// The whole pipeline is a pure function of (results, Options): the
// bootstrap streams derive from Options.Seed and the group/model
// identity alone (never from map order, time, or which checkpoint
// layout produced the results), and the markdown renderer formats
// deterministically. Consequently an uninterrupted checkpoint, a
// crashed-and-resumed one and a merged shard fleet of the same grid all
// produce byte-identical reports — a property CI diffs for real, and
// the golden-file test pins exactly.
//
// # Surfaces
//
// `dodasweep analyze` renders the markdown report (or JSON) from
// checkpoint directories or saved JSONL output; `dodabench -report`
// runs ReportGrid and writes the EXPERIMENTS.md-ready section; the root
// package re-exports the library entry points (doda.AnalyzeSweep,
// doda.FitScalingLaw, doda.WriteSweepAnalysis).
package analysis
