package analysis

import (
	"bytes"
	"math"
	"testing"

	"doda/internal/rng"
	"doda/internal/sweep"
)

// runGrid sweeps a small grid for analysis tests.
func runGrid(t *testing.T, grid sweep.Grid) []sweep.CellResult {
	t.Helper()
	results, _, err := sweep.Run(grid, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// The acceptance-criterion behaviour: on a real multi-size sweep the
// AIC selection per (scenario, algorithm) group lands on the paper's
// predicted form, or at least the free-fit exponent CI brackets the
// predicted growth.
func TestAnalyzeSelectsPaperForms(t *testing.T) {
	results := runGrid(t, sweep.Grid{
		Scenarios:  []sweep.ScenarioRef{{Name: "uniform"}},
		Algorithms: []string{"waiting", "gathering"},
		Sizes:      []int{16, 24, 32, 48, 64},
		Replicas:   16,
		Seed:       7,
	})
	a, err := Analyze(results, Options{Bootstrap: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(a.Groups))
	}
	wantExp := map[string]float64{"gathering": 2.0, "waiting": 2.2} // n²·H(n) fits a local exponent slightly above 2
	for i := range a.Groups {
		g := &a.Groups[i]
		if g.Law == nil {
			t.Fatalf("%s/%s: no fit: %s", g.Scenario, g.Algorithm, g.Note)
		}
		free, ok := g.Law.FreeFit()
		if !ok {
			t.Fatalf("%s/%s: no free fit", g.Scenario, g.Algorithm)
		}
		want := wantExp[g.Algorithm]
		if !g.MatchesPrediction() && math.Abs(free.Exponent-want) > 0.35 {
			t.Errorf("%s/%s: selected %q (predicted %q) and free exponent %.3f strays from %.1f",
				g.Scenario, g.Algorithm, g.Law.Best, g.Predicted, free.Exponent, want)
		}
		if free.ExpLo > free.Exponent || free.ExpHi < free.Exponent {
			t.Errorf("%s/%s: exponent %.3f outside its own CI [%.3f, %.3f]",
				g.Scenario, g.Algorithm, free.Exponent, free.ExpLo, free.ExpHi)
		}
	}
}

// syntheticResults builds cells following y = c·n^a with multiplicative
// log-uniform noise of half-width sigma.
func syntheticResults(seed uint64, c, a, sigma float64, sizes []int) []sweep.CellResult {
	src := rng.New(seed)
	out := make([]sweep.CellResult, len(sizes))
	for i, n := range sizes {
		noise := sigma * (2*src.Float64() - 1)
		mean := c * math.Pow(float64(n), a) * math.Exp(noise)
		out[i] = sweep.CellResult{
			Cell:       sweep.Cell{Index: i, Scenario: sweep.ScenarioRef{Name: "uniform"}, Algorithm: "gathering", N: n},
			Replicas:   8,
			Terminated: 8,
			Duration:   sweep.Metric{Count: 8, Mean: mean},
		}
	}
	return out
}

// The satellite property test: fitted exponents on synthetic c·n^a data
// recover a within the bootstrap CI. The rng is deterministic, so this
// is a fixed, reproducible panel of draws rather than a flaky sampler;
// the coverage bar (≥ 90% of trials) is where a 95% percentile
// bootstrap on 8 points comfortably sits.
func TestFreeFitRecoversSyntheticExponent(t *testing.T) {
	sizes := []int{16, 24, 32, 48, 64, 96, 128, 192}
	trials, covered := 0, 0
	for seed := uint64(1); seed <= 30; seed++ {
		c := 0.5 + float64(seed%5)
		a := 1.0 + 0.25*float64(seed%7)
		results := syntheticResults(seed, c, a, 0.05, sizes)
		an, err := Analyze(results, Options{Bootstrap: 500, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		free, ok := an.Groups[0].Law.FreeFit()
		if !ok {
			t.Fatal("no free fit")
		}
		if math.Abs(free.Exponent-a) > 0.15 {
			t.Errorf("seed %d: exponent %.3f strays from true %.3f", seed, free.Exponent, a)
		}
		trials++
		if free.ExpLo <= a && a <= free.ExpHi {
			covered++
		}
	}
	if covered*10 < trials*9 {
		t.Errorf("bootstrap CI covered the true exponent in only %d/%d trials", covered, trials)
	}
}

// Noise-free synthetic data must recover the exponent essentially
// exactly, select the free power law only if no fixed form matches, and
// collapse the CI onto the estimate.
func TestFreeFitExactData(t *testing.T) {
	results := syntheticResults(1, 3, 1.75, 0, []int{16, 32, 64, 128})
	an, err := Analyze(results, Options{Bootstrap: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	free, _ := an.Groups[0].Law.FreeFit()
	if math.Abs(free.Exponent-1.75) > 1e-9 {
		t.Errorf("exponent = %v, want 1.75", free.Exponent)
	}
	if math.Abs(free.C-3) > 1e-9 {
		t.Errorf("c = %v, want 3", free.C)
	}
	if free.ExpHi-free.ExpLo > 1e-9 {
		t.Errorf("CI [%v, %v] did not collapse on exact data", free.ExpLo, free.ExpHi)
	}
	if an.Groups[0].Law.Best != ModelFreePower {
		t.Errorf("best = %q, want the free power law on n^1.75 data", an.Groups[0].Law.Best)
	}
}

func TestAnalyzeTrendExtraction(t *testing.T) {
	mk := func(idx int, p string, mean float64) sweep.CellResult {
		return sweep.CellResult{
			Cell: sweep.Cell{
				Index:     idx,
				Scenario:  sweep.ScenarioRef{Name: "community", Params: map[string]string{"communities": "4", "p-intra": p}},
				Algorithm: "gathering",
				N:         32,
			},
			Replicas: 4, Terminated: 4,
			Duration: sweep.Metric{Count: 4, Mean: mean},
		}
	}
	results := []sweep.CellResult{mk(0, "0.5", 1000), mk(1, "0.9", 2500), mk(2, "0.99", 9000)}
	a, err := Analyze(results, Options{Bootstrap: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trends) != 1 {
		t.Fatalf("got %d trends, want 1: %+v", len(a.Trends), a.Trends)
	}
	tr := a.Trends[0]
	if tr.Param != "p-intra" || tr.Scenario != "community" || tr.N != 32 {
		t.Errorf("trend identity wrong: %+v", tr)
	}
	if tr.Fixed != "communities=4" {
		t.Errorf("fixed = %q, want communities=4", tr.Fixed)
	}
	if tr.Tau != 1 || tr.Monotone != 1 {
		t.Errorf("tau = %v monotone = %d, want 1/+1 on increasing means", tr.Tau, tr.Monotone)
	}
}

func TestAnalyzeRejectsDuplicateCells(t *testing.T) {
	results := syntheticResults(1, 1, 2, 0, []int{16, 32, 16})
	if _, err := Analyze(results, Options{}); err == nil {
		t.Error("duplicate (scenario, algorithm, n) accepted")
	}
}

func TestAnalyzeGroupsWithTooFewSizesGetNote(t *testing.T) {
	results := syntheticResults(1, 1, 2, 0, []int{16, 32})
	a, err := Analyze(results, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := a.Groups[0]
	if g.Law != nil || g.Note == "" {
		t.Errorf("two-size group must carry a note instead of a law, got %+v", g)
	}
}

// The markdown renderer is a pure function of the analysis: same cells,
// same options, same bytes — the property the CI report-smoke diff and
// the golden file both lean on.
func TestMarkdownDeterministic(t *testing.T) {
	grid := sweep.Grid{
		Scenarios:  []sweep.ScenarioRef{{Name: "uniform"}, {Name: "zipf", Params: map[string]string{"alpha": "1"}}},
		Algorithms: []string{"gathering"},
		Sizes:      []int{16, 24, 32},
		Replicas:   6,
		Seed:       11,
	}
	render := func() string {
		a, err := Analyze(runGrid(t, grid), Options{Bootstrap: 100, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		a.Grid = &grid
		var buf bytes.Buffer
		if err := WriteMarkdown(&buf, a); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first, second := render(), render()
	if first != second {
		t.Error("two renders of the same analysis differ")
	}
}
