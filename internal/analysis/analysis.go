package analysis

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"doda/internal/stats"
	"doda/internal/sweep"
	"doda/internal/sweepd"
)

// Options tunes one analysis pass.
type Options struct {
	// Bootstrap is the number of residual-bootstrap resamples behind
	// every confidence interval. 0 means the default (1000); a negative
	// count disables resampling, collapsing every CI to its point
	// estimate.
	Bootstrap int
	// Seed drives the bootstrap resampling streams; the same (input,
	// seed) always yields the same report, byte for byte. 0 means 1.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Bootstrap == 0 {
		o.Bootstrap = 1000
	}
	if o.Bootstrap < 0 {
		o.Bootstrap = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Point is one fitted observation: a node count and the mean measured
// duration (interactions to aggregate, over the terminated replicas).
type Point struct {
	N          int     `json:"n"`
	Mean       float64 `json:"mean"`
	StdDev     float64 `json:"stddev"`
	Replicas   int     `json:"replicas"`
	Terminated int     `json:"terminated"`
}

// GroupFit is the scaling analysis of one (scenario, algorithm) group:
// its per-size points and — given at least three distinct sizes — the
// candidate-set fit with model selection.
type GroupFit struct {
	// Scenario is the canonical scenario reference (name:params sorted).
	Scenario string `json:"scenario"`
	// Algorithm is the algorithm name.
	Algorithm string `json:"algorithm"`
	// Predicted is the model the paper's theorems predict for the
	// algorithm ("" when the paper makes no claim).
	Predicted string `json:"predicted,omitempty"`
	// Points are the fitted (n, mean duration) observations, ascending
	// in n.
	Points []Point `json:"points"`
	// SkippedSizes lists sizes excluded because no replica terminated
	// (a capped run yields no duration to fit).
	SkippedSizes []int `json:"skipped_sizes,omitempty"`
	// Law is the candidate-set fit, nil when the group has fewer than
	// three usable sizes (Note says so).
	Law *LawFit `json:"law,omitempty"`
	// Note explains a missing Law.
	Note string `json:"note,omitempty"`
	// CoverageDone/CoverageTotal count the group's complete cells
	// against the grid's sizes, and MissingSizes lists the sizes still
	// outstanding. Set only by partial analyses (AnalyzeCheckpointPartial);
	// a complete analysis leaves them zero.
	CoverageDone  int   `json:"coverage_done,omitempty"`
	CoverageTotal int   `json:"coverage_total,omitempty"`
	MissingSizes  []int `json:"missing_sizes,omitempty"`
}

// MatchesPrediction reports whether the AIC selection agrees with the
// paper's predicted model (false when either side is unknown).
func (g *GroupFit) MatchesPrediction() bool {
	return g.Law != nil && g.Predicted != "" && g.Law.Best == g.Predicted
}

// Trend is a monotonicity test over one varying scenario parameter: the
// cells sharing (scenario name, algorithm, n) and every other parameter,
// ordered by the varying parameter's value. This is the S2
// community-mixing claim as a statistic: Kendall's τ between the
// parameter and the mean duration, plus a strict-monotonicity verdict.
type Trend struct {
	// Scenario is the registry scenario name (without the varying
	// parameter).
	Scenario string `json:"scenario"`
	// Fixed renders the non-varying parameters, canonically.
	Fixed string `json:"fixed,omitempty"`
	// Algorithm and N pin the rest of the cell identity.
	Algorithm string `json:"algorithm"`
	N         int    `json:"n"`
	// Param is the varying parameter; Values its sorted values and
	// Means the mean durations at each value.
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
	Means  []float64 `json:"means"`
	// Tau is Kendall's rank correlation between Values and Means.
	Tau float64 `json:"tau"`
	// Monotone is +1 for strictly increasing means, -1 for strictly
	// decreasing, 0 for neither.
	Monotone int `json:"monotone"`
}

// Analysis is a whole sweep's scaling-law extraction.
type Analysis struct {
	// Cells is the number of cell results analysed.
	Cells int `json:"cells"`
	// Bootstrap and Seed record the resampling configuration.
	Bootstrap int    `json:"bootstrap"`
	Seed      uint64 `json:"seed"`
	// Grid is the sweep grid, when known (checkpoint-backed analyses
	// carry it; raw result streams do not).
	Grid *sweep.Grid `json:"grid,omitempty"`
	// Partial marks an analysis over an unfinished fleet: fits cover
	// only the complete cells, and CellsTotal is the grid's full cell
	// count (Cells of them were complete at read time).
	Partial    bool `json:"partial,omitempty"`
	CellsTotal int  `json:"cells_total,omitempty"`
	// Groups are the per-(scenario, algorithm) fits, sorted by scenario
	// then algorithm.
	Groups []GroupFit `json:"groups"`
	// Trends are the single-parameter monotonicity tests, sorted.
	Trends []Trend `json:"trends,omitempty"`
}

// Analyze extracts scaling laws from a set of completed sweep cells
// (live sweep.Run output, a decoded JSONL stream, or restored checkpoint
// records). Cells are grouped by (scenario, algorithm); each group with
// at least three distinct sizes gets the full candidate-set fit. The
// output is deterministic given (results, opt).
func Analyze(results []sweep.CellResult, opt Options) (*Analysis, error) {
	opt = opt.withDefaults()
	if len(results) == 0 {
		return nil, fmt.Errorf("analysis: no cell results")
	}

	type groupKey struct{ scenario, algorithm string }
	groups := make(map[groupKey][]sweep.CellResult)
	seen := make(map[string]bool, len(results))
	for _, r := range results {
		id := fmt.Sprintf("%s|%s|%d", r.Scenario, r.Algorithm, r.N)
		if seen[id] {
			return nil, fmt.Errorf("analysis: duplicate cell %s/%s/n=%d (mixed result streams?)",
				r.Scenario, r.Algorithm, r.N)
		}
		seen[id] = true
		k := groupKey{r.Scenario.String(), r.Algorithm}
		groups[k] = append(groups[k], r)
	}

	keys := make([]groupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].scenario != keys[j].scenario {
			return keys[i].scenario < keys[j].scenario
		}
		return keys[i].algorithm < keys[j].algorithm
	})

	a := &Analysis{Cells: len(results), Bootstrap: opt.Bootstrap, Seed: opt.Seed}
	for _, k := range keys {
		cells := groups[k]
		sort.Slice(cells, func(i, j int) bool { return cells[i].N < cells[j].N })
		g := GroupFit{Scenario: k.scenario, Algorithm: k.algorithm, Predicted: PredictedModel(k.algorithm)}
		var ns, ys []float64
		for _, c := range cells {
			if c.Terminated == 0 || !(c.Duration.Mean > 0) {
				g.SkippedSizes = append(g.SkippedSizes, c.N)
				continue
			}
			g.Points = append(g.Points, Point{
				N: c.N, Mean: c.Duration.Mean, StdDev: c.Duration.StdDev,
				Replicas: c.Replicas, Terminated: c.Terminated,
			})
			ns = append(ns, float64(c.N))
			ys = append(ys, c.Duration.Mean)
		}
		if len(ns) >= 3 {
			law, err := fitLaw(ns, ys, opt.Bootstrap, groupSeed(opt.Seed, k.scenario+"|"+k.algorithm))
			if err != nil {
				return nil, fmt.Errorf("analysis: group %s/%s: %w", k.scenario, k.algorithm, err)
			}
			g.Law = law
		} else {
			g.Note = fmt.Sprintf("needs >= 3 sizes with terminated replicas to fit scaling laws, have %d", len(ns))
		}
		a.Groups = append(a.Groups, g)
	}

	a.Trends = extractTrends(results)
	return a, nil
}

// AnalyzeCheckpoint analyzes the checkpoint directories of a complete
// sweep — one unsharded checkpoint or a whole m-shard fleet. The
// directories are read and cross-validated by sweepd.LoadFleet, the same
// path `dodasweep merge` uses, so a stale or foreign journal fails here
// exactly as it fails there. The analysis depends only on the journaled
// grid and results, so a crashed-and-resumed checkpoint, an uninterrupted
// one and a merged shard fleet all produce the identical report.
func AnalyzeCheckpoint(dirs []string, opt Options) (*Analysis, error) {
	header, results, _, err := sweepd.LoadFleet(dirs)
	if err != nil {
		return nil, err
	}
	a, err := Analyze(results, opt)
	if err != nil {
		return nil, err
	}
	grid := header.Grid
	a.Grid = &grid
	return a, nil
}

// AnalyzeCheckpointPartial analyzes however much of a fleet exists right
// now: the directories may cover only some shards and any shard may be
// mid-run. The scaling-law fits run over the complete cells only —
// which, by the cell-seed contract, are byte-identical to what the
// finished sweep will contain — and every (scenario, algorithm) group is
// annotated with its coverage so a reader can tell a converged estimate
// from one resting on two sizes. Groups with no complete cells yet still
// appear, with their full missing-size list.
func AnalyzeCheckpointPartial(dirs []string, opt Options) (*Analysis, error) {
	header, results, total, err := sweepd.LoadFleetPartial(dirs)
	if err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("analysis: no complete cells journaled yet")
	}
	a, err := Analyze(results, opt)
	if err != nil {
		return nil, err
	}
	grid := header.Grid
	a.Grid = &grid
	a.Partial = true
	a.CellsTotal = total
	annotateCoverage(a, grid)
	return a, nil
}

// annotateCoverage fills the per-group coverage counters of a partial
// analysis against the grid's cross product, adding rows for groups with
// no complete cells at all.
func annotateCoverage(a *Analysis, grid sweep.Grid) {
	type key struct{ scenario, algorithm string }
	have := make(map[key]*GroupFit, len(a.Groups))
	for i := range a.Groups {
		g := &a.Groups[i]
		have[key{g.Scenario, g.Algorithm}] = g
	}
	for _, ref := range grid.Scenarios {
		for _, alg := range grid.Algorithms {
			k := key{ref.String(), alg}
			g, ok := have[k]
			if !ok {
				a.Groups = append(a.Groups, GroupFit{
					Scenario: k.scenario, Algorithm: k.algorithm,
					Predicted:     PredictedModel(alg),
					Note:          "no complete cells yet",
					CoverageTotal: len(grid.Sizes),
					MissingSizes:  append([]int(nil), grid.Sizes...),
				})
				continue
			}
			// A size is covered when its cell is complete — whether or
			// not it was usable for fitting (SkippedSizes are complete
			// cells with no terminated replica).
			done := make(map[int]bool, len(g.Points)+len(g.SkippedSizes))
			for _, p := range g.Points {
				done[p.N] = true
			}
			for _, n := range g.SkippedSizes {
				done[n] = true
			}
			g.CoverageTotal = len(grid.Sizes)
			for _, n := range grid.Sizes {
				if done[n] {
					g.CoverageDone++
				} else {
					g.MissingSizes = append(g.MissingSizes, n)
				}
			}
			sort.Ints(g.MissingSizes)
		}
	}
	sort.Slice(a.Groups, func(i, j int) bool {
		if a.Groups[i].Scenario != a.Groups[j].Scenario {
			return a.Groups[i].Scenario < a.Groups[j].Scenario
		}
		return a.Groups[i].Algorithm < a.Groups[j].Algorithm
	})
}

// extractTrends finds every (scenario name, algorithm, n) family whose
// cells differ in exactly one numeric scenario parameter and tests the
// mean duration for a monotone trend over it.
func extractTrends(results []sweep.CellResult) []Trend {
	type famKey struct {
		name, algorithm string
		n               int
	}
	fams := make(map[famKey][]sweep.CellResult)
	for _, r := range results {
		if r.Terminated == 0 || !(r.Duration.Mean > 0) {
			continue
		}
		k := famKey{r.Scenario.Name, r.Algorithm, r.N}
		fams[k] = append(fams[k], r)
	}
	keys := make([]famKey, 0, len(fams))
	for k := range fams {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.name != b.name {
			return a.name < b.name
		}
		if a.algorithm != b.algorithm {
			return a.algorithm < b.algorithm
		}
		return a.n < b.n
	})

	var trends []Trend
	for _, k := range keys {
		cells := fams[k]
		if len(cells) < 3 {
			continue
		}
		param, ok := varyingParam(cells)
		if !ok {
			continue
		}
		type pv struct {
			v    float64
			mean float64
		}
		pvs := make([]pv, 0, len(cells))
		valid := true
		for _, c := range cells {
			v, err := strconv.ParseFloat(c.Scenario.Params[param], 64)
			if err != nil {
				valid = false
				break
			}
			pvs = append(pvs, pv{v, c.Duration.Mean})
		}
		if !valid {
			continue
		}
		sort.Slice(pvs, func(i, j int) bool { return pvs[i].v < pvs[j].v })
		t := Trend{
			Scenario: k.name, Algorithm: k.algorithm, N: k.n, Param: param,
			Fixed: fixedParams(cells[0].Scenario, param),
		}
		for i, p := range pvs {
			if i > 0 && p.v == pvs[i-1].v {
				valid = false // duplicate parameter value: ambiguous trend
				break
			}
			t.Values = append(t.Values, p.v)
			t.Means = append(t.Means, p.mean)
		}
		if !valid {
			continue
		}
		tau, err := stats.KendallTau(t.Values, t.Means)
		if err != nil {
			continue
		}
		t.Tau = tau
		t.Monotone = stats.StrictlyMonotone(t.Means)
		trends = append(trends, t)
	}
	return trends
}

// varyingParam returns the single parameter key whose value differs
// across the cells, if exactly one does and every cell defines it.
func varyingParam(cells []sweep.CellResult) (string, bool) {
	keySet := map[string]bool{}
	for _, c := range cells {
		for k := range c.Scenario.Params {
			keySet[k] = true
		}
	}
	var varying []string
	for k := range keySet {
		first, firstOK := cells[0].Scenario.Params[k]
		same := firstOK
		for _, c := range cells[1:] {
			v, ok := c.Scenario.Params[k]
			if !ok {
				return "", false // a cell misses the key: families must share the schema
			}
			if v != first {
				same = false
			}
		}
		if !firstOK {
			return "", false
		}
		if !same {
			varying = append(varying, k)
		}
	}
	if len(varying) != 1 {
		return "", false
	}
	return varying[0], true
}

// fixedParams renders the non-varying parameters canonically (sorted).
func fixedParams(ref sweep.ScenarioRef, varying string) string {
	keys := make([]string, 0, len(ref.Params))
	for k := range ref.Params {
		if k != varying {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + ref.Params[k]
	}
	return strings.Join(parts, ",")
}
