package analysis

// Deterministic markdown rendering of an Analysis. Byte-stability is a
// contract, not an accident: the same (results, Options) must render the
// same bytes on every run, platform and shard layout, because CI diffs
// the report of a crashed-and-resumed sweep against an uninterrupted
// one, and the golden-file test pins the exact output. Nothing here may
// consult the clock, the environment, map iteration order, or float
// formatting that varies across platforms (Go's strconv does not).

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"doda/internal/sweep"
)

// fnum renders a float compactly and deterministically: up to 4
// significant digits, shortest form.
func fnum(v float64) string {
	if v != v {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// ci renders a bootstrap interval.
func ci(lo, hi float64) string {
	return "[" + fnum(lo) + ", " + fnum(hi) + "]"
}

// WriteMarkdown renders the full scaling-law report: the analysis
// configuration, one section per (scenario, algorithm) group with its
// measured points and candidate-model table, and the trend tests.
func WriteMarkdown(w io.Writer, a *Analysis) error {
	bw := &errWriter{w: w}
	bw.printf("# Scaling-law report\n\n")
	if a.Partial {
		bw.printf("**Partial analysis**: the fleet is not finished — fits cover the %d of %d cells complete so far. Complete cells are final (the cell-seed contract), but group estimates may shift as coverage grows.\n\n",
			a.Cells, a.CellsTotal)
	}
	bw.printf("- cells analysed: %d\n", a.Cells)
	if a.Bootstrap > 0 {
		bw.printf("- confidence intervals: %d residual-bootstrap resamples, seed %d, 95%% t-intervals\n",
			a.Bootstrap, a.Seed)
	} else {
		bw.printf("- confidence intervals: disabled (point estimates only)\n")
	}
	if a.Grid != nil {
		bw.printf("- grid: %s\n", gridLine(a.Grid))
	}
	bw.printf("- model selection: lowest AIC over the candidate set (BIC reported alongside); fits are least squares on log(mean duration)\n")

	bw.printf("\n## Selected models\n\n")
	writeSummaryTable(bw, a)

	for gi := range a.Groups {
		g := &a.Groups[gi]
		bw.printf("\n## %s / %s\n\n", g.Scenario, g.Algorithm)
		if a.Partial {
			if len(g.MissingSizes) > 0 {
				bw.printf("Coverage: %d/%d sizes complete (missing n: %s).\n\n",
					g.CoverageDone, g.CoverageTotal, intList(g.MissingSizes))
			} else {
				bw.printf("Coverage: %d/%d sizes complete.\n\n", g.CoverageDone, g.CoverageTotal)
			}
		}
		if g.Predicted != "" {
			bw.printf("Paper prediction: `%s`.", g.Predicted)
			if g.Law != nil {
				if g.MatchesPrediction() {
					bw.printf(" Selected: `%s` — matches.\n\n", g.Law.Best)
				} else {
					bw.printf(" Selected: `%s` — differs.\n\n", g.Law.Best)
				}
			} else {
				bw.printf("\n\n")
			}
		} else if g.Law != nil {
			bw.printf("Selected: `%s`.\n\n", g.Law.Best)
		}
		bw.printf("| n | replicas | terminated | mean duration | stddev |\n")
		bw.printf("|--:|--:|--:|--:|--:|\n")
		for _, p := range g.Points {
			bw.printf("| %d | %d | %d | %s | %s |\n", p.N, p.Replicas, p.Terminated, fnum(p.Mean), fnum(p.StdDev))
		}
		if len(g.SkippedSizes) > 0 {
			bw.printf("\nSkipped sizes (no terminated replica): %s.\n", intList(g.SkippedSizes))
		}
		if g.Law == nil {
			bw.printf("\n_%s._\n", g.Note)
			continue
		}
		bw.printf("\n| model | form | c | c 95%% CI | exponent | exp 95%% CI | R² | ΔAIC | ΔBIC |\n")
		bw.printf("|---|---|--:|---|--:|---|--:|--:|--:|\n")
		for _, f := range g.Law.Fits {
			exp, expCI := "—", "—"
			if f.Free {
				exp, expCI = fnum(f.Exponent), ci(f.ExpLo, f.ExpHi)
			}
			marker := ""
			if f.Model == g.Law.Best {
				marker = " ←"
			}
			bw.printf("| `%s`%s | %s | %s | %s | %s | %s | %s | %s | %s |\n",
				f.Model, marker, f.Form, fnum(f.C), ci(f.CLo, f.CHi),
				exp, expCI, fnum(f.R2), fnum(f.DeltaAIC), fnum(f.DeltaBIC))
		}
		if g.Law.BestBIC != g.Law.Best {
			bw.printf("\nBIC disagrees: it selects `%s`.\n", g.Law.BestBIC)
		}
	}

	if len(a.Trends) > 0 {
		bw.printf("\n## Parameter trends\n\n")
		bw.printf("| scenario | fixed | algorithm | n | param | values | mean durations | Kendall τ | monotone |\n")
		bw.printf("|---|---|---|--:|---|---|---|--:|---|\n")
		for _, t := range a.Trends {
			bw.printf("| %s | %s | %s | %d | %s | %s | %s | %s | %s |\n",
				t.Scenario, dash(t.Fixed), t.Algorithm, t.N, t.Param,
				floatList(t.Values), floatList(t.Means), fnum(t.Tau), monotoneWord(t.Monotone))
		}
	}
	return bw.err
}

// WriteSummaryTable renders the one-row-per-group selection table — the
// EXPERIMENTS.md-ready view `dodabench -report` embeds.
func WriteSummaryTable(w io.Writer, a *Analysis) error {
	bw := &errWriter{w: w}
	writeSummaryTable(bw, a)
	return bw.err
}

func writeSummaryTable(bw *errWriter, a *Analysis) {
	bw.printf("| scenario | algorithm | predicted | selected (AIC) | c | c 95%% CI | free exponent | exp 95%% CI | R² (sel) |\n")
	bw.printf("|---|---|---|---|--:|---|--:|---|--:|\n")
	for gi := range a.Groups {
		g := &a.Groups[gi]
		if g.Law == nil {
			bw.printf("| %s | %s | %s | _%s_ | — | — | — | — | — |\n",
				g.Scenario, g.Algorithm, dash(g.Predicted), g.Note)
			continue
		}
		sel, _ := g.Law.FitByName(g.Law.Best)
		free, _ := g.Law.FreeFit()
		bw.printf("| %s | %s | %s | `%s` | %s | %s | %s | %s | %s |\n",
			g.Scenario, g.Algorithm, dash(g.Predicted), g.Law.Best,
			fnum(sel.C), ci(sel.CLo, sel.CHi),
			fnum(free.Exponent), ci(free.ExpLo, free.ExpHi), fnum(sel.R2))
	}
}

func dash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}

func monotoneWord(m int) string {
	switch m {
	case 1:
		return "increasing"
	case -1:
		return "decreasing"
	default:
		return "no"
	}
}

func intList(xs []int) string {
	s := make([]int, len(xs))
	copy(s, xs)
	sort.Ints(s)
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ", ")
}

func floatList(xs []float64) string {
	parts := make([]string, len(xs))
	for i, v := range xs {
		parts[i] = fnum(v)
	}
	return strings.Join(parts, ", ")
}

// gridLine renders the grid identity compactly.
func gridLine(g *sweep.Grid) string {
	refs := make([]string, len(g.Scenarios))
	for i, r := range g.Scenarios {
		refs[i] = r.String()
	}
	sizes := make([]string, len(g.Sizes))
	for i, n := range g.Sizes {
		sizes[i] = strconv.Itoa(n)
	}
	prov := g.Provenance
	if prov == "" {
		prov = "auto"
	}
	return fmt.Sprintf("scenarios=[%s] algorithms=[%s] sizes=[%s] replicas=%d seed=%d max=%d provenance=%s",
		strings.Join(refs, "; "), strings.Join(g.Algorithms, ","), strings.Join(sizes, ","),
		g.Replicas, g.Seed, g.MaxInteractions, prov)
}

// errWriter latches the first write error so the renderers read cleanly.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
