package knowledge

import (
	"errors"
	"testing"

	"doda/internal/graph"
	"doda/internal/seq"
)

func testSequence(t *testing.T) *seq.Sequence {
	t.Helper()
	s, err := seq.NewSequence(4, []seq.Interaction{
		{U: 1, V: 2}, {U: 0, V: 2}, {U: 0, V: 1}, {U: 2, V: 3}, {U: 0, V: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEmptyBundleGrantsNothing(t *testing.T) {
	b, err := NewBundle()
	if err != nil {
		t.Fatal(err)
	}
	if b.HasMeetTime() || b.HasFutures() || b.HasUnderlying() || b.HasFullSequence() {
		t.Error("empty bundle grants an oracle")
	}
	if _, _, err := b.MeetTime(1, 0); !errors.Is(err, ErrNotGranted) {
		t.Errorf("MeetTime err = %v", err)
	}
	if _, err := b.FutureOf(1); !errors.Is(err, ErrNotGranted) {
		t.Errorf("FutureOf err = %v", err)
	}
	if _, err := b.Underlying(); !errors.Is(err, ErrNotGranted) {
		t.Errorf("Underlying err = %v", err)
	}
	if _, err := b.FullSequence(); !errors.Is(err, ErrNotGranted) {
		t.Errorf("FullSequence err = %v", err)
	}
	if b.NumFutures() != 0 {
		t.Error("NumFutures should be 0")
	}
}

func TestNilBundleSafeQueries(t *testing.T) {
	var b *Bundle
	if b.HasMeetTime() || b.HasFutures() || b.HasUnderlying() || b.HasFullSequence() {
		t.Error("nil bundle grants an oracle")
	}
}

func TestMeetTimeOracle(t *testing.T) {
	s := testSequence(t)
	b, err := NewBundle(WithMeetTime(s, 0, s.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if !b.HasMeetTime() {
		t.Fatal("meetTime not granted")
	}
	mt, ok, err := b.MeetTime(2, 0)
	if err != nil || !ok || mt != 1 {
		t.Errorf("MeetTime(2,0) = %d,%v,%v", mt, ok, err)
	}
	// Node 2 never meets the sink after t=1.
	if _, ok, _ := b.MeetTime(2, 1); ok {
		t.Error("phantom meeting")
	}
	// Sink: identity.
	if mt, ok, _ := b.MeetTime(0, 42); !ok || mt != 42 {
		t.Errorf("sink MeetTime = %d,%v", mt, ok)
	}
}

func TestMeetTimeBadSink(t *testing.T) {
	s := testSequence(t)
	if _, err := NewBundle(WithMeetTime(s, 99, s.Len())); err == nil {
		t.Error("want error for bad sink")
	}
}

func TestFuturesOracle(t *testing.T) {
	s := testSequence(t)
	b, err := NewBundle(WithFutures(s))
	if err != nil {
		t.Fatal(err)
	}
	if b.NumFutures() != 4 {
		t.Errorf("NumFutures = %d", b.NumFutures())
	}
	f, err := b.FutureOf(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []seq.TimedStep{{T: 3, With: 2}, {T: 4, With: 0}}
	if len(f) != len(want) {
		t.Fatalf("FutureOf(3) = %v", f)
	}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("FutureOf(3) = %v, want %v", f, want)
		}
	}
	if _, err := b.FutureOf(11); err == nil {
		t.Error("want error for out-of-range node")
	}
}

func TestUnderlyingOracle(t *testing.T) {
	s := testSequence(t)
	b, err := NewBundle(WithUnderlying(s.UnderlyingGraph()))
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Underlying()
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 2) || g.HasEdge(1, 3) {
		t.Error("wrong underlying graph")
	}
	if _, err := NewBundle(WithUnderlying(nil)); err == nil {
		t.Error("want error for nil graph")
	}
}

func TestFullSequenceOracle(t *testing.T) {
	s := testSequence(t)
	b, err := NewBundle(WithFullSequence(s))
	if err != nil {
		t.Fatal(err)
	}
	v, err := b.FullSequence()
	if err != nil {
		t.Fatal(err)
	}
	if v.N() != 4 {
		t.Errorf("N = %d", v.N())
	}
	if _, err := NewBundle(WithFullSequence(nil)); err == nil {
		t.Error("want error for nil view")
	}
}

func TestCombinedGrants(t *testing.T) {
	s := testSequence(t)
	b, err := NewBundle(
		WithMeetTime(s, 0, s.Len()),
		WithFutures(s),
		WithUnderlying(s.UnderlyingGraph()),
		WithFullSequence(s),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !b.HasMeetTime() || !b.HasFutures() || !b.HasUnderlying() || !b.HasFullSequence() {
		t.Error("combined bundle missing grants")
	}
}

func TestFutureConsistentWithMeetTime(t *testing.T) {
	// For every node, its first future entry with the sink must agree
	// with the meetTime oracle.
	s := testSequence(t)
	b, err := NewBundle(WithMeetTime(s, 0, s.Len()), WithFutures(s))
	if err != nil {
		t.Fatal(err)
	}
	for u := graph.NodeID(1); u < 4; u++ {
		f, err := b.FutureOf(u)
		if err != nil {
			t.Fatal(err)
		}
		wantT, wantOK := -1, false
		for _, step := range f {
			if step.With == 0 {
				wantT, wantOK = step.T, true
				break
			}
		}
		got, ok, err := b.MeetTime(u, -1)
		if err != nil {
			t.Fatal(err)
		}
		if ok != wantOK || (ok && got != wantT) {
			t.Errorf("node %d: meetTime %d,%v future says %d,%v", u, got, ok, wantT, wantOK)
		}
	}
}
