// Package knowledge implements the paper's knowledge model (§2.1): a
// knowledge is a function or attribute given to every node providing
// information about the future, the topology, or anything else. By
// default a node knows only its identifier and whether it is the sink;
// the classes DODA(i1, i2, ...) of the paper correspond to Bundles
// carrying the respective oracles.
//
// Supported oracles:
//
//   - meetTime:  u.meetTime(t) = smallest t' > t with I_t' = {u, s}
//     (identity for the sink itself) — used by Waiting Greedy.
//   - future:    u.future = the sequence of interactions involving u,
//     with their occurrence times — used by the Theorem 6 algorithm.
//   - underlying graph Ḡ — used by the spanning-tree algorithm (§3.2).
//   - full sequence — the DODA(full knowledge) class of Theorem 8.
package knowledge

import (
	"errors"
	"fmt"

	"doda/internal/graph"
	"doda/internal/seq"
)

// ErrNotGranted reports use of an oracle the bundle does not carry.
var ErrNotGranted = errors.New("knowledge: oracle not granted")

// Bundle is the set of knowledge oracles granted to the nodes of one
// execution. The zero Bundle grants nothing beyond the default
// (identifier + isSink), which is the paper's "no knowledge" setting.
type Bundle struct {
	meet       *seq.MeetTimes
	futures    [][]seq.TimedStep
	underlying *graph.Undirected
	full       seq.View
}

// Option grants one oracle to a Bundle.
type Option interface {
	apply(b *Bundle) error
}

type optionFunc func(b *Bundle) error

func (f optionFunc) apply(b *Bundle) error { return f(b) }

// WithMeetTime grants the meetTime oracle computed over view with the
// given look-ahead horizon.
func WithMeetTime(view seq.View, sink graph.NodeID, horizon int) Option {
	return optionFunc(func(b *Bundle) error {
		mt, err := seq.NewMeetTimes(view, sink, horizon)
		if err != nil {
			return fmt.Errorf("meetTime oracle: %w", err)
		}
		b.meet = mt
		return nil
	})
}

// WithFutures grants every node its own future, extracted from the
// finite sequence s.
func WithFutures(s *seq.Sequence) Option {
	return optionFunc(func(b *Bundle) error {
		futures := make([][]seq.TimedStep, s.N())
		for u := 0; u < s.N(); u++ {
			futures[u] = s.FutureOf(graph.NodeID(u))
		}
		b.futures = futures
		return nil
	})
}

// WithUnderlying grants the underlying graph Ḡ.
func WithUnderlying(g *graph.Undirected) Option {
	return optionFunc(func(b *Bundle) error {
		if g == nil {
			return errors.New("knowledge: nil underlying graph")
		}
		b.underlying = g
		return nil
	})
}

// WithFullSequence grants complete knowledge of the interaction sequence.
func WithFullSequence(view seq.View) Option {
	return optionFunc(func(b *Bundle) error {
		if view == nil {
			return errors.New("knowledge: nil sequence view")
		}
		b.full = view
		return nil
	})
}

// NewBundle assembles a Bundle from the granted oracles.
func NewBundle(opts ...Option) (*Bundle, error) {
	b := &Bundle{}
	for _, o := range opts {
		if err := o.apply(b); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// HasMeetTime reports whether the meetTime oracle is granted.
func (b *Bundle) HasMeetTime() bool { return b != nil && b.meet != nil }

// MeetTime returns u.meetTime(t) and whether a meeting exists within the
// oracle's horizon. Calling it without the grant returns ErrNotGranted.
func (b *Bundle) MeetTime(u graph.NodeID, t int) (int, bool, error) {
	if !b.HasMeetTime() {
		return 0, false, ErrNotGranted
	}
	mt, ok := b.meet.Next(u, t)
	return mt, ok, nil
}

// HasFutures reports whether per-node futures are granted.
func (b *Bundle) HasFutures() bool { return b != nil && b.futures != nil }

// FutureOf returns u's future. The slice is shared; callers must not
// mutate it.
func (b *Bundle) FutureOf(u graph.NodeID) ([]seq.TimedStep, error) {
	if !b.HasFutures() {
		return nil, ErrNotGranted
	}
	if u < 0 || int(u) >= len(b.futures) {
		return nil, fmt.Errorf("knowledge: node %d out of range", u)
	}
	return b.futures[u], nil
}

// NumFutures returns how many nodes have futures (the node count), or 0
// when not granted.
func (b *Bundle) NumFutures() int {
	if !b.HasFutures() {
		return 0
	}
	return len(b.futures)
}

// HasUnderlying reports whether Ḡ is granted.
func (b *Bundle) HasUnderlying() bool { return b != nil && b.underlying != nil }

// Underlying returns the underlying graph Ḡ.
func (b *Bundle) Underlying() (*graph.Undirected, error) {
	if !b.HasUnderlying() {
		return nil, ErrNotGranted
	}
	return b.underlying, nil
}

// HasFullSequence reports whether the full sequence is granted.
func (b *Bundle) HasFullSequence() bool { return b != nil && b.full != nil }

// FullSequence returns the granted sequence view.
func (b *Bundle) FullSequence() (seq.View, error) {
	if !b.HasFullSequence() {
		return nil, ErrNotGranted
	}
	return b.full, nil
}
