package agg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"doda/internal/graph"
	"doda/internal/rng"
)

func TestInitial(t *testing.T) {
	v := Initial(3, 7.5, 8)
	if v.Num != 7.5 || v.Count != 1 {
		t.Errorf("Initial = %+v", v)
	}
	if !v.Origins.Has(3) || v.Origins.Count() != 1 {
		t.Errorf("Origins = %v", v.Origins)
	}
}

func TestBuiltins(t *testing.T) {
	tests := []struct {
		f    Func
		a, b float64
		want float64
	}{
		{f: Min, a: 2, b: 5, want: 2},
		{f: Min, a: 5, b: 2, want: 2},
		{f: Max, a: 2, b: 5, want: 5},
		{f: Max, a: -2, b: -5, want: -2},
		{f: Sum, a: 2, b: 5, want: 7},
		{f: Count, a: 1, b: 1, want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.f.Name(), func(t *testing.T) {
			if got := tt.f.Combine(tt.a, tt.b); got != tt.want {
				t.Errorf("%s(%v,%v) = %v, want %v", tt.f.Name(), tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", func(a, b float64) float64 { return a }); err == nil {
		t.Error("want error for empty name")
	}
	if _, err := New("x", nil); err == nil {
		t.Error("want error for nil combine")
	}
	f, err := New("first", func(a, b float64) float64 { return a })
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "first" {
		t.Errorf("Name = %q", f.Name())
	}
}

func TestMerge(t *testing.T) {
	a := Initial(0, 10, 4)
	b := Initial(2, 3, 4)
	m, err := Merge(Min, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Num != 3 || m.Count != 2 {
		t.Errorf("Merge = %+v", m)
	}
	if !m.Origins.Has(0) || !m.Origins.Has(2) || m.Origins.Count() != 2 {
		t.Errorf("Origins = %v", m.Origins)
	}
	// Inputs must be untouched.
	if a.Origins.Count() != 1 || b.Origins.Count() != 1 {
		t.Error("Merge mutated inputs")
	}
}

func TestMergeDetectsDoubleAggregation(t *testing.T) {
	a := Initial(1, 5, 4)
	b := Initial(1, 6, 4) // same origin: would double-count node 1
	_, err := Merge(Sum, a, b)
	var overlap *ErrOverlap
	if !errors.As(err, &overlap) {
		t.Fatalf("err = %v, want ErrOverlap", err)
	}
	if overlap.Error() == "" {
		t.Error("empty error message")
	}
}

func TestFoldAll(t *testing.T) {
	got, err := FoldAll(Min, []float64{4, 2, 9, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("FoldAll = %v", got)
	}
	if _, err := FoldAll(Sum, nil); err == nil {
		t.Error("want error for empty payloads")
	}
}

func TestQuickMergeOrderIndependent(t *testing.T) {
	// min/max/sum are commutative+associative: merging in any order must
	// give the same payload, count, and provenance.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		const n = 12
		payloads := make([]float64, n)
		for i := range payloads {
			payloads[i] = src.Float64()*200 - 100
		}
		for _, fu := range []Func{Min, Max, Sum} {
			// Left fold in index order.
			acc1 := Initial(0, payloads[0], n)
			for i := 1; i < n; i++ {
				var err error
				acc1, err = Merge(fu, acc1, Initial(graph.NodeID(i), payloads[i], n))
				if err != nil {
					return false
				}
			}
			// Fold in a random permutation, pairing randomly.
			perm := src.Perm(n)
			vals := make([]Value, n)
			for i, p := range perm {
				vals[i] = Initial(graph.NodeID(p), payloads[p], n)
			}
			for len(vals) > 1 {
				i := src.Intn(len(vals) - 1)
				m, err := Merge(fu, vals[i], vals[i+1])
				if err != nil {
					return false
				}
				vals = append(vals[:i], vals[i+1:]...)
				vals[i] = m
			}
			acc2 := vals[0]
			if math.Abs(acc1.Num-acc2.Num) > 1e-9 || acc1.Count != acc2.Count {
				return false
			}
			if !acc1.Origins.Equal(acc2.Origins) || !acc1.Origins.Full() {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestMergeIntoMatchesMerge pins the equivalence the zero-allocation hot
// path rests on: MergeInto must produce exactly the Value Merge produces
// — payload, count and provenance — for every aggregation function.
func TestMergeIntoMatchesMerge(t *testing.T) {
	const n = 67 // cross a word boundary in the bitset
	src := rng.New(5)
	for _, fu := range []Func{Min, Max, Sum, Count} {
		a := Initial(0, src.Float64()*100, n)
		b := Initial(1, src.Float64()*100, n)
		for i := 2; i < n; i++ {
			v := Initial(graph.NodeID(i), src.Float64()*100, n)
			if src.Bool() {
				var err error
				if a, err = Merge(fu, a, v); err != nil {
					t.Fatal(err)
				}
			} else if err := MergeInto(fu, &b, v); err != nil {
				t.Fatal(err)
			}
		}
		want, err := Merge(fu, a, b)
		if err != nil {
			t.Fatal(err)
		}
		got := Value{Num: a.Num, Count: a.Count, Origins: a.Origins.Clone()}
		if err := MergeInto(fu, &got, b); err != nil {
			t.Fatal(err)
		}
		if got.Num != want.Num || got.Count != want.Count {
			t.Errorf("%s: MergeInto = (%v, %d), Merge = (%v, %d)",
				fu.Name(), got.Num, got.Count, want.Num, want.Count)
		}
		if !got.Origins.Equal(want.Origins) {
			t.Errorf("%s: provenance %v != %v", fu.Name(), got.Origins, want.Origins)
		}
		if !got.Origins.Full() {
			t.Errorf("%s: provenance %v not full", fu.Name(), got.Origins)
		}
	}
}

func TestMergeIntoRejectsOverlapUnchanged(t *testing.T) {
	a := Initial(0, 1, 4)
	b := Initial(0, 2, 4) // same origin: overlap
	before := Value{Num: a.Num, Count: a.Count, Origins: a.Origins.Clone()}
	if err := MergeInto(Min, &a, b); err == nil {
		t.Fatal("want overlap error")
	}
	if a.Num != before.Num || a.Count != before.Count || !a.Origins.Equal(before.Origins) {
		t.Errorf("failed MergeInto mutated dst: %+v", a)
	}
}

func TestMergeIntoNilProvenance(t *testing.T) {
	dst := Value{Num: 3, Count: 1}
	if err := MergeInto(Sum, &dst, Initial(1, 4, 4)); err != nil {
		t.Fatal(err)
	}
	if dst.Num != 7 || dst.Count != 2 || dst.Origins != nil {
		t.Errorf("nil-dst merge = %+v", dst)
	}
}

// TestMergeIntoAllocationFree is the hot-path allocation regression gate
// at the agg layer: one in-place merge must not touch the heap.
func TestMergeIntoAllocationFree(t *testing.T) {
	const n = 256
	a := Initial(0, 1, n)
	b := Initial(1, 2, n)
	allocs := testing.AllocsPerRun(1000, func() {
		// Undo the previous iteration so the overlap check keeps passing.
		a.Origins.Remove(1)
		a.Count = 1
		if err := MergeInto(Sum, &a, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("MergeInto allocates %v objects per call, want 0", allocs)
	}
}
