// Package agg models the paper's aggregation functions: functions that
// take two data and output one datum of the same size (min, max, sum,
// ...). Every Value additionally carries provenance — the set of nodes
// whose original data have been folded into it — which lets the engine
// verify, at the end of every execution, that the sink's datum aggregates
// the data of all n nodes exactly once. That safety check backs the whole
// test suite.
package agg

import (
	"fmt"

	"doda/internal/bitset"
	"doda/internal/graph"
)

// Value is a datum owned by a node: a numeric payload plus provenance.
type Value struct {
	Num     float64
	Count   int         // how many original data are folded in
	Origins *bitset.Set // which nodes they originated from
}

// Initial returns node u's initial datum with payload num, in a universe
// of n nodes.
func Initial(u graph.NodeID, num float64, n int) Value {
	origins := bitset.New(n)
	origins.Add(int(u))
	return Value{Num: num, Count: 1, Origins: origins}
}

// Func is an aggregation function. Implementations must be commutative
// and associative so that any aggregation order yields the same final
// value at the sink.
type Func interface {
	// Name identifies the function in traces and experiment output.
	Name() string
	// Combine folds two payloads into one.
	Combine(a, b float64) float64
}

type fn struct {
	name    string
	combine func(a, b float64) float64
}

func (f fn) Name() string                 { return f.name }
func (f fn) Combine(a, b float64) float64 { return f.combine(a, b) }

// Built-in aggregation functions from the paper's examples ("such
// functions include min, max, etc.") plus the common sum/count folds.
var (
	// Min keeps the smaller payload.
	Min Func = fn{name: "min", combine: func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}}
	// Max keeps the larger payload.
	Max Func = fn{name: "max", combine: func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}}
	// Sum adds payloads.
	Sum Func = fn{name: "sum", combine: func(a, b float64) float64 { return a + b }}
	// Count counts original data; payloads are ignored (the Value's
	// Count field carries the answer).
	Count Func = fn{name: "count", combine: func(a, b float64) float64 { return a + b }}
)

// New returns a custom aggregation function. The combine closure must be
// commutative and associative.
func New(name string, combine func(a, b float64) float64) (Func, error) {
	if name == "" {
		return nil, fmt.Errorf("agg: empty name")
	}
	if combine == nil {
		return nil, fmt.Errorf("agg: nil combine for %q", name)
	}
	return fn{name: name, combine: combine}, nil
}

// ErrOverlap reports an attempt to merge two values whose provenances
// overlap, i.e. some original datum would be counted twice. A correct
// DODA execution can never trigger it: each node transmits at most once.
type ErrOverlap struct {
	A, B *bitset.Set
}

func (e *ErrOverlap) Error() string {
	return fmt.Sprintf("agg: provenance overlap between %v and %v", e.A, e.B)
}

// Merge folds b into a using f and returns the result. It fails if the
// two values' provenances overlap (double aggregation) — violating the
// single-transmission rule.
func Merge(f Func, a, b Value) (Value, error) {
	if a.Origins != nil && b.Origins != nil && a.Origins.IntersectsWith(b.Origins) {
		return Value{}, &ErrOverlap{A: a.Origins, B: b.Origins}
	}
	origins := a.Origins
	if origins != nil && b.Origins != nil {
		origins = origins.Clone()
		origins.UnionWith(b.Origins)
	}
	return Value{
		Num:     f.Combine(a.Num, b.Num),
		Count:   a.Count + b.Count,
		Origins: origins,
	}, nil
}

// MergeInto folds src into dst in place using f: dst's provenance set is
// unioned with src's without cloning, so the measurement hot path does no
// per-transfer allocation. It is only safe when src's Value is retired
// after the call (the engine zeroes the sender's datum), because dst does
// not take a private copy of anything. The overlap check is identical to
// Merge's; on error dst is left unchanged.
func MergeInto(f Func, dst *Value, src Value) error {
	if dst.Origins != nil && src.Origins != nil {
		if dst.Origins.IntersectsWith(src.Origins) {
			return &ErrOverlap{A: dst.Origins, B: src.Origins}
		}
		dst.Origins.UnionWith(src.Origins)
	}
	dst.Num = f.Combine(dst.Num, src.Num)
	dst.Count += src.Count
	return nil
}

// FoldAll computes the expected final sink value: the aggregation of all
// initial payloads, in index order. Because Funcs are commutative and
// associative this is the unique correct answer regardless of the
// transmission schedule.
func FoldAll(f Func, payloads []float64) (float64, error) {
	if len(payloads) == 0 {
		return 0, fmt.Errorf("agg: no payloads")
	}
	acc := payloads[0]
	for _, p := range payloads[1:] {
		acc = f.Combine(acc, p)
	}
	return acc, nil
}
