package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("streams diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestNewDistinctSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d times in 1000 draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	zeros := 0
	for i := 0; i < 100; i++ {
		if s.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("seed 0 produced %d zero outputs in 100 draws", zeros)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling streams collided %d times", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	// Chi-squared style sanity check on Intn(10).
	s := New(11)
	const draws = 100000
	var counts [10]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(10)]++
	}
	want := float64(draws) / 10
	for d, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("digit %d count %d too far from %v", d, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63() = %d < 0", v)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(13)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(17)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	if rate := float64(hits) / draws; math.Abs(rate-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate %v", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(23)
	for _, n := range []int{0, 1, 2, 5, 64} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(29)
	const draws = 60000
	var counts [6]int
	for i := 0; i < draws; i++ {
		counts[s.Perm(6)[0]]++
	}
	want := float64(draws) / 6
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Perm first element %d count %d, want ~%v", v, c, want)
		}
	}
}

func TestShuffle(t *testing.T) {
	s := New(31)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	Shuffle(s, xs)
	if len(xs) != 8 {
		t.Fatalf("length changed: %v", xs)
	}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("elements changed: %v", xs)
	}
}

func TestPairValid(t *testing.T) {
	s := New(37)
	for _, n := range []int{2, 3, 5, 10, 100} {
		for i := 0; i < 500; i++ {
			a, b := s.Pair(n)
			if a < 0 || b >= n || a >= b {
				t.Fatalf("Pair(%d) = (%d,%d) invalid", n, a, b)
			}
		}
	}
}

func TestPairUniform(t *testing.T) {
	// All 10 unordered pairs of 5 nodes should be equally likely.
	s := New(41)
	const draws = 100000
	counts := make(map[[2]int]int)
	for i := 0; i < draws; i++ {
		a, b := s.Pair(5)
		counts[[2]int{a, b}]++
	}
	if len(counts) != 10 {
		t.Fatalf("saw %d distinct pairs, want 10", len(counts))
	}
	want := float64(draws) / 10
	for p, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("pair %v count %d, want ~%v", p, c, want)
		}
	}
}

func TestPairPanicsBelowTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pair(1) did not panic")
		}
	}()
	New(1).Pair(1)
}

func TestStateRestore(t *testing.T) {
	s := New(43)
	s.Uint64()
	st := s.State()
	a := make([]uint64, 10)
	for i := range a {
		a[i] = s.Uint64()
	}
	s.Restore(st)
	for i := range a {
		if got := s.Uint64(); got != a[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

func TestQuickIntnAlwaysInRange(t *testing.T) {
	s := New(47)
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPairOrdered(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%200) + 2
		a, b := New(seed).Pair(n)
		return 0 <= a && a < b && b < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSameSeedSameStream(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkPair(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_, _ = s.Pair(1024)
	}
}

// TestPairAtMatchesLinearScan pins the O(1) triangular-root inversion to
// the linear row scan it replaced: every pair index of every tested n
// must map to exactly the same (a, b), so the package's deterministic
// output stream is unchanged by the speedup.
func TestPairAtMatchesLinearScan(t *testing.T) {
	scan := func(n int, k uint64) (int, int) {
		a := 0
		rowLen := uint64(n - 1)
		for k >= rowLen {
			k -= rowLen
			a++
			rowLen--
		}
		return a, a + 1 + int(k)
	}
	for _, n := range []int{2, 3, 4, 5, 7, 64, 101, 257} {
		total := uint64(n) * uint64(n-1) / 2
		for k := uint64(0); k < total; k++ {
			ga, gb := pairAt(n, k)
			wa, wb := scan(n, k)
			if ga != wa || gb != wb {
				t.Fatalf("pairAt(%d, %d) = (%d,%d), scan gives (%d,%d)", n, k, ga, gb, wa, wb)
			}
		}
	}
	// Spot-check huge n (the scan is too slow to sweep): boundary and
	// random indexes, verified against the closed-form forward mapping
	// k(a, b) = a·n - a(a+3)/2 + b - 1.
	src := New(99)
	for _, n := range []int{1 << 17, 1 << 20} {
		total := uint64(n) * uint64(n-1) / 2
		ks := []uint64{0, 1, uint64(n - 2), uint64(n - 1), total / 2, total - 2, total - 1}
		for i := 0; i < 200; i++ {
			ks = append(ks, src.boundedUint64(total))
		}
		for _, k := range ks {
			a, b := pairAt(n, k)
			if a < 0 || b >= n || a >= b {
				t.Fatalf("pairAt(%d, %d) = (%d,%d) invalid", n, k, a, b)
			}
			au, bu := uint64(a), uint64(b)
			back := au*uint64(n) - au*(au+3)/2 + bu - 1
			if back != k {
				t.Fatalf("pairAt(%d, %d) = (%d,%d) maps back to index %d", n, k, a, b, back)
			}
		}
	}
}
