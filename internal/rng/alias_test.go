package rng

import (
	"math"
	"testing"
)

func TestNewAliasValidation(t *testing.T) {
	for _, ws := range [][]float64{
		nil,
		{},
		{1, 0},
		{1, -2},
		{1, math.NaN()},
		{math.Inf(1), 1},
	} {
		if _, err := NewAlias(ws); err == nil {
			t.Errorf("NewAlias(%v) should fail", ws)
		}
	}
}

// TestAliasMatchesDistribution draws heavily from a skewed table and
// compares empirical frequencies to the exact probabilities.
func TestAliasMatchesDistribution(t *testing.T) {
	ws := []float64{1, 2, 3, 10, 0.5}
	total := 0.0
	for _, w := range ws {
		total += w
	}
	a, err := NewAlias(ws)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != len(ws) {
		t.Fatalf("N = %d", a.N())
	}
	const draws = 200000
	src := New(42)
	counts := make([]int, len(ws))
	for i := 0; i < draws; i++ {
		counts[a.Draw(src)]++
	}
	for i, w := range ws {
		want := w / total
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("outcome %d: frequency %.4f, want %.4f", i, got, want)
		}
	}
}

// TestAliasSingleOutcome pins the degenerate one-column table.
func TestAliasSingleOutcome(t *testing.T) {
	a, err := NewAlias([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	src := New(1)
	for i := 0; i < 100; i++ {
		if got := a.Draw(src); got != 0 {
			t.Fatalf("draw = %d", got)
		}
	}
}

func TestAliasDeterministic(t *testing.T) {
	ws := []float64{0.1, 5, 2, 2, 9, 0.01}
	a, err := NewAlias(ws)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := New(9), New(9)
	for i := 0; i < 1000; i++ {
		if a.Draw(s1) != a.Draw(s2) {
			t.Fatal("same seed diverged")
		}
	}
}

// TestAliasDrawAllocationFree is the sampler's allocation regression
// gate: O(1) time and zero allocations per draw.
func TestAliasDrawAllocationFree(t *testing.T) {
	ws := make([]float64, 512)
	for i := range ws {
		ws[i] = 1 / float64(i+1)
	}
	a, err := NewAlias(ws)
	if err != nil {
		t.Fatal(err)
	}
	src := New(3)
	sink := 0
	allocs := testing.AllocsPerRun(1000, func() {
		sink += a.Draw(src)
	})
	if allocs != 0 {
		t.Errorf("Draw allocates %v objects per call, want 0", allocs)
	}
	_ = sink
}
