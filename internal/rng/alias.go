package rng

// Walker/Vose alias-method sampling: draw from an arbitrary discrete
// distribution in O(1) time and zero allocations per draw, after an O(n)
// construction. The weighted adversary uses it to replace its linear CDF
// scan, turning skewed-contact workload generation from O(n) to O(1) per
// interaction.
//
// Reference: M. D. Vose, "A Linear Algorithm For Generating Random
// Numbers With a Given Distribution", IEEE Trans. Software Eng. 17(9),
// 1991.

import (
	"fmt"
	"math"
)

// Alias is an immutable alias table for a discrete distribution over
// [0, n). It is safe for concurrent Draw calls because draws only read
// the table; all randomness comes from the caller's Source.
type Alias struct {
	prob  []float64 // acceptance probability of each column
	alias []int     // fallback outcome of each column
}

// NewAlias builds the alias table for the given weights. Weights must be
// positive and finite, and there must be at least one.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("rng: alias table needs at least one weight")
	}
	total := 0.0
	for i, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("rng: weight[%d] = %v must be positive and finite", i, w)
		}
		total += w
	}

	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	// Scale weights to mean 1 and split into under- and over-full
	// columns; each under-full column is topped up by exactly one
	// over-full one (its alias).
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Float round-off leaves stragglers in one of the lists; they are
	// (numerically) exactly full columns.
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// N returns the number of outcomes.
func (a *Alias) N() int { return len(a.prob) }

// Draw samples one outcome using src: one bounded integer and one float
// per draw, no allocation.
func (a *Alias) Draw(src *Source) int {
	i := src.Intn(len(a.prob))
	if src.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
