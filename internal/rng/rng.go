// Package rng provides a small, fast, deterministic pseudo-random number
// generator substrate for the doda simulators and experiment harness.
//
// The generator is xoshiro256**, seeded through splitmix64. Unlike
// math/rand, the exact output stream of this package is part of its
// contract: experiments seeded with the same value reproduce bit-for-bit
// across runs, platforms and Go releases, which the experiment harness
// relies on to make every table in EXPERIMENTS.md regenerable.
//
// Sources are NOT safe for concurrent use; create one Source per goroutine
// (Split derives independent streams deterministically).
package rng

import (
	"errors"
	"math"
	"math/bits"
)

// Source is a deterministic xoshiro256** pseudo-random number generator.
//
// The zero value is not usable; construct Sources with New or Split.
type Source struct {
	s0, s1, s2, s3 uint64
}

// ErrEmptyRange reports an invalid request such as Intn(0).
var ErrEmptyRange = errors.New("rng: empty range")

// New returns a Source seeded from seed via splitmix64, so that nearby
// seeds still yield well-distributed, independent-looking streams.
func New(seed uint64) *Source {
	var sm = seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	s := &Source{s0: next(), s1: next(), s2: next(), s3: next()}
	// A pathological all-zero state would make xoshiro emit only zeros.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 0x9e3779b97f4a7c15
	}
	return s
}

// Split derives a new Source from the current one. The derived stream is
// deterministic given the parent's state, and advances the parent, so
// successive Splits yield distinct streams.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s1*5, 7) * 9

	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = bits.RotateLeft64(s.s3, 45)

	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, mirroring
// math/rand; callers in this repository always pass validated sizes.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic(ErrEmptyRange)
	}
	return int(s.boundedUint64(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high bits give the full double-precision mantissa.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// boundedUint64 returns a uniform value in [0, n) using Lemire's
// multiply-shift rejection method (unbiased).
func (s *Source) boundedUint64(n uint64) uint64 {
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Perm returns a uniform random permutation of [0, n) as a fresh slice.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes xs uniformly in place (Fisher–Yates).
func Shuffle[T any](s *Source, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Pair returns a uniformly chosen unordered pair {a,b} of distinct
// integers in [0, n), returned with a < b. It panics if n < 2.
//
// This is the randomized adversary's elementary step: every interaction is
// a uniform draw over the n(n-1)/2 unordered node pairs.
func (s *Source) Pair(n int) (a, b int) {
	if n < 2 {
		panic(ErrEmptyRange)
	}
	total := uint64(n) * uint64(n-1) / 2
	return pairAt(n, s.boundedUint64(total))
}

// pairAt returns the k-th unordered pair of [0, n) in lexicographic order
// ({0,1}, {0,2}, ..., {n-2,n-1}), inverting the index in O(1). Counting
// pairs from the END of the order, the reversed rows have lengths
// 1, 2, ..., n-1, so the reversed row index is the triangular root of
// j = total-1-k. The float estimate is corrected by an exact integer walk
// of at most a step or two, so every k maps to the same (a, b) as a
// linear row scan — Pair's deterministic output stream is that of the
// old O(n) scan, bit for bit — while the draw stops costing O(n) at
// large n (the scan dominated whole-run profiles beyond n ≈ 10³).
func pairAt(n int, k uint64) (a, b int) {
	j := uint64(n)*uint64(n-1)/2 - 1 - k
	i := uint64((math.Sqrt(float64(8*j+1)) - 1) / 2)
	for i*(i+1)/2 > j {
		i--
	}
	for (i+1)*(i+2)/2 <= j {
		i++
	}
	a = n - 2 - int(i)
	off := j - i*(i+1)/2 // position within the reversed row, in [0, i]
	b = a + 1 + int(i-off)
	return a, b
}

// State returns the current internal state, for checkpointing a stream.
func (s *Source) State() [4]uint64 {
	return [4]uint64{s.s0, s.s1, s.s2, s.s3}
}

// Restore sets the internal state previously captured with State.
func (s *Source) Restore(state [4]uint64) {
	s.s0, s.s1, s.s2, s.s3 = state[0], state[1], state[2], state[3]
}
