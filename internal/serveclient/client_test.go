package serveclient

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"doda/internal/chaos"
	"doda/internal/rng"
	"doda/internal/serve"
)

// offSinkBatch generates k interactions among nodes 1..n-1 (never the
// sink), so a "waiting" instance stays running forever and the tests
// control exactly when state is read.
func offSinkBatch(n, k int, seed uint64) [][2]int {
	src := rng.New(seed)
	out := make([][2]int, k)
	for i := range out {
		u := 1 + int(src.Uint64()%uint64(n-1))
		v := 1 + int(src.Uint64()%uint64(n-1))
		for v == u {
			v = 1 + int(src.Uint64()%uint64(n-1))
		}
		out[i] = [2]int{u, v}
	}
	return out
}

func newServePair(t *testing.T, opt serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.NewServer(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func waitCfg(name string, n int) serve.InstanceConfig {
	return serve.InstanceConfig{Name: name, N: n, Algorithm: "waiting", Agg: "min"}
}

// fastRetry keeps test retries snappy.
var fastRetry = RetryPolicy{Attempts: 10, Base: time.Millisecond, Max: 20 * time.Millisecond}

// TestClientChaosDifferential is the tentpole pin for the client
// library: a sweep of registrations and batched feeds pushed through a
// fault-injecting transport (connection resets, synthesized 5xx,
// delivered-but-dropped responses) must leave the server with engine
// state byte-identical to the same sweep over a clean wire. Runs with a
// tight live cap so retries also land on evicted instances.
func TestClientChaosDifferential(t *testing.T) {
	const (
		n         = 12
		instances = 3
		batches   = 10
		ops       = 8
	)
	seeds := []uint64{3, 11, 27}
	if testing.Short() {
		seeds = seeds[:1]
	}

	run := func(t *testing.T, hc *http.Client, seed uint64, opt serve.Options) map[string][]byte {
		t.Helper()
		_, ts := newServePair(t, opt)
		c := New(ts.URL, Options{HTTPClient: hc, Retry: fastRetry, Seed: seed})
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()

		streams := make([]*Stream, instances)
		for i := range streams {
			name := fmt.Sprintf("p%d", i)
			if _, err := c.Register(ctx, waitCfg(name, n)); err != nil {
				t.Fatalf("register %s: %v", name, err)
			}
			st, err := c.Stream(ctx, name, 0)
			if err != nil {
				t.Fatalf("stream %s: %v", name, err)
			}
			streams[i] = st
		}
		for b := 0; b < batches; b++ {
			for i, st := range streams {
				for _, uv := range offSinkBatch(n, ops, uint64(i*1000+b)) {
					if err := st.Add(ctx, uv[0], uv[1]); err != nil {
						t.Fatalf("add p%d batch %d: %v", i, b, err)
					}
				}
				if err := st.Flush(ctx); err != nil {
					t.Fatalf("flush p%d batch %d: %v", i, b, err)
				}
			}
		}
		out := make(map[string][]byte)
		for i := range streams {
			name := fmt.Sprintf("p%d", i)
			est, err := c.State(ctx, name)
			if err != nil {
				t.Fatalf("state %s: %v", name, err)
			}
			bts, err := json.Marshal(est)
			if err != nil {
				t.Fatal(err)
			}
			out[name] = bts
		}
		return out
	}

	want := run(t, &http.Client{Timeout: 10 * time.Second}, 0, serve.Options{})
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			hc := &http.Client{
				Timeout: 10 * time.Second,
				Transport: chaos.NewTransport(nil, chaos.TransportOptions{
					Seed:         seed,
					Reset:        0.12,
					Err5xx:       0.08,
					DropResponse: 0.12,
					MaxFaults:    40,
				}),
			}
			got := run(t, hc, seed, serve.Options{
				Dir:              t.TempDir(),
				MaxLiveInstances: 2,
				StallTimeout:     5 * time.Second,
			})
			for name, w := range want {
				if string(got[name]) != string(w) {
					t.Fatalf("seed %d: %s state diverged under chaos:\n got  %s\n want %s",
						seed, name, got[name], w)
				}
			}
		})
	}
}

// TestRegisterIdempotent: re-registering an existing instance resolves
// to its live status instead of failing — the dropped-ack retry path.
func TestRegisterIdempotent(t *testing.T) {
	_, ts := newServePair(t, serve.Options{})
	c := New(ts.URL, Options{Retry: fastRetry})
	ctx := context.Background()
	if _, err := c.Register(ctx, waitCfg("dup", 8)); err != nil {
		t.Fatal(err)
	}
	st, err := c.Register(ctx, waitCfg("dup", 8))
	if err != nil {
		t.Fatalf("second register: %v", err)
	}
	if st.Name != "dup" || st.State != "running" {
		t.Fatalf("second register resolved to %+v", st)
	}
}

// TestTerminalErrorsDoNotRetry: a 404 is a deliberate answer; the
// client must return it on the first attempt, not burn the budget.
func TestTerminalErrorsDoNotRetry(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"no instance \"ghost\""}`)
	}))
	defer ts.Close()
	c := New(ts.URL, Options{Retry: fastRetry})
	_, err := c.InstanceStatus(context.Background(), "ghost")
	ae, ok := err.(*APIError)
	if !ok || ae.Status != http.StatusNotFound {
		t.Fatalf("want *APIError 404, got %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("404 retried: %d requests", got)
	}
}

// TestBackpressureRetry: 429 with a Retry-After hint is flow control —
// the client waits and retries until the server accepts.
func TestBackpressureRetry(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 3 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"backpressure","retry_after_ms":1}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"ops":1}`)
	}))
	defer ts.Close()
	c := New(ts.URL, Options{Retry: fastRetry})
	st := &Stream{c: c, name: "x", next: 1, batch: 4}
	if err := st.Feed(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(context.Background(), 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(context.Background()); err != nil {
		t.Fatalf("flush through 429s: %v", err)
	}
	if got := hits.Load(); got != 4 {
		t.Fatalf("want 4 requests (3×429 + accept), got %d", got)
	}
	if st.Seq() != 2 {
		t.Fatalf("seq after ack = %d, want 2", st.Seq())
	}
}

// TestStreamResume: a fresh Stream picks up after the server's
// acknowledged prefix, so a restarted client process continues the
// sequence instead of colliding with it.
func TestStreamResume(t *testing.T) {
	_, ts := newServePair(t, serve.Options{})
	c := New(ts.URL, Options{Retry: fastRetry})
	ctx := context.Background()
	if _, err := c.Register(ctx, waitCfg("res", 8)); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stream(ctx, "res", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, uv := range offSinkBatch(8, 6, 42) {
		if err := st.Add(ctx, uv[0], uv[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st2, err := c.Stream(ctx, "res", 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Seq() != st.Seq() {
		t.Fatalf("resumed stream at seq %d, want %d", st2.Seq(), st.Seq())
	}
}

// TestBackoffDeterministic: the jitter is a pure function of (seed,
// call, attempt) and stays within [d/2, d).
func TestBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	for call := uint64(1); call <= 3; call++ {
		for k := 1; k <= 6; k++ {
			d1 := p.backoff(7, call, k)
			d2 := p.backoff(7, call, k)
			if d1 != d2 {
				t.Fatalf("backoff(7,%d,%d) not deterministic: %v vs %v", call, k, d1, d2)
			}
			full := p.Max
			if exp := p.Base << (k - 1); exp < p.Max {
				full = exp
			}
			if d1 < full/2 || d1 >= full {
				t.Fatalf("backoff(7,%d,%d)=%v outside [%v,%v)", call, k, d1, full/2, full)
			}
		}
	}
	if p.backoff(7, 1, 1) == p.backoff(8, 1, 1) {
		t.Fatal("different seeds should decorrelate jitter")
	}
}

// TestRemove: DELETE round-trips and the instance is gone.
func TestRemove(t *testing.T) {
	_, ts := newServePair(t, serve.Options{})
	c := New(ts.URL, Options{Retry: fastRetry})
	ctx := context.Background()
	if _, err := c.Register(ctx, waitCfg("gone", 8)); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(ctx, "gone"); err != nil {
		t.Fatal(err)
	}
	_, err := c.InstanceStatus(ctx, "gone")
	ae, ok := err.(*APIError)
	if !ok || ae.Status != http.StatusNotFound {
		t.Fatalf("want 404 after remove, got %v", err)
	}
	sst, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sst.Total != 0 {
		t.Fatalf("server still reports %d instances", sst.Total)
	}
}
