package serveclient

import (
	"context"
	"fmt"
	"net/http"
	"strconv"

	"doda/internal/graph"
	"doda/internal/seq"
)

// DefaultBatchSize is how many interactions Add buffers before an
// automatic Flush.
const DefaultBatchSize = 256

// Stream is a seq-stamped feeder for one instance. It owns the
// client-side sequence counter: every batch it sends carries the next
// number, and the counter only advances on a confirmed ack — so any
// failed Flush can simply be retried (same seq, same bytes) and the
// server's journal-before-ack dup handling keeps application
// exactly-once. A Stream is not safe for concurrent use; run one
// goroutine per instance.
type Stream struct {
	c     *Client
	name  string
	next  uint64
	batch int
	buf   []seq.Interaction
}

// Stream opens a feeder for name, resuming the sequence from the
// server's journal (LastSeq+1) so a restarted client carries on where
// the acknowledged prefix ends. batchSize ≤ 0 uses DefaultBatchSize.
func (c *Client) Stream(ctx context.Context, name string, batchSize int) (*Stream, error) {
	st, err := c.InstanceStatus(ctx, name)
	if err != nil {
		return nil, err
	}
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &Stream{c: c, name: name, next: st.LastSeq + 1, batch: batchSize}, nil
}

// Seq returns the sequence number the next sent batch will carry.
func (s *Stream) Seq() uint64 { return s.next }

// Buffered returns how many interactions are waiting for a Flush.
func (s *Stream) Buffered() int { return len(s.buf) }

// Add buffers one interaction, flushing automatically when the buffer
// reaches the batch size. On error the interaction stays buffered;
// calling Add or Flush again retries the same batch under the same seq.
func (s *Stream) Add(ctx context.Context, u, v int) error {
	s.buf = append(s.buf, seq.Interaction{U: graph.NodeID(u), V: graph.NodeID(v)})
	if len(s.buf) >= s.batch {
		return s.Flush(ctx)
	}
	return nil
}

// Flush sends the buffered batch and waits for it to apply. The buffer
// is cleared and the sequence advanced only on success.
func (s *Stream) Flush(ctx context.Context) error {
	if len(s.buf) == 0 {
		return nil
	}
	if err := s.send(ctx, s.buf); err != nil {
		return err
	}
	s.buf = s.buf[:0]
	return nil
}

// Feed flushes any buffered interactions, then sends its as one batch.
func (s *Stream) Feed(ctx context.Context, its []seq.Interaction) error {
	if err := s.Flush(ctx); err != nil {
		return err
	}
	if len(its) == 0 {
		return nil
	}
	return s.send(ctx, its)
}

func (s *Stream) send(ctx context.Context, its []seq.Interaction) error {
	if err := s.c.Feed(ctx, s.name, its, s.next); err != nil {
		return err
	}
	s.next++
	return nil
}

// Feed sends one batch at an explicit sequence number and waits for it
// to apply. A batch the server already acknowledged at that seq is
// acked again without re-applying, so replaying a whole workload from
// seq 1 after a crash is safe — the exactly-once path crash-recovery
// drivers lean on. Most callers want a Stream, which tracks the counter.
func (c *Client) Feed(ctx context.Context, name string, its []seq.Interaction, seqNo uint64) error {
	body := make([]byte, 0, 24*len(its))
	for _, it := range its {
		body = append(body, `{"u":`...)
		body = strconv.AppendInt(body, int64(it.U), 10)
		body = append(body, `,"v":`...)
		body = strconv.AppendInt(body, int64(it.V), 10)
		body = append(body, "}\n"...)
	}
	path := instancePath(name, "/ingest") + "?wait=1&seq=" + strconv.FormatUint(seqNo, 10)
	if err := c.do(ctx, http.MethodPost, path, "application/x-ndjson", body, nil); err != nil {
		return fmt.Errorf("serveclient: feed %s seq %d: %w", name, seqNo, err)
	}
	return nil
}
