// Package serveclient is the Go client for dodaserve's HTTP API: it
// wraps registration, batched ingest, state reads, and removal behind a
// retrying transport so callers get the server's exactly-once contract
// without hand-rolling sequence numbers or backoff.
//
// # Idempotency contract
//
// Every ingest a Stream sends is stamped with a client-side sequence
// number (the server's ?seq= protocol). The server journals a batch
// before acknowledging it and treats a re-send of an acknowledged
// sequence as a duplicate to ack again, not re-apply. That makes every
// retry the client issues — after a connection reset, a 5xx, a dropped
// response, or a 429 — safe: a batch is applied exactly once no matter
// how many times the wire delivered it, and a Flush that ultimately
// fails can be called again without risking double-application. The
// chaos tests pin this end to end: a client sweep through injected
// transport faults must leave the server with EngineState byte-identical
// to a fault-free run.
//
// # Retry policy
//
// RetryPolicy mirrors the fleet worker's shape: bounded attempts,
// exponential backoff from Base doubling to Max, each delay jittered
// deterministically into [d/2, d) as a pure function of (seed, call,
// attempt) so client fleets never retry in lockstep. Transient outcomes
// — transport errors, 5xx, garbled 2xx bodies — consume attempts; 429
// responses also consume attempts but wait at least the server's
// Retry-After hint first, because they are flow control, not failure.
// Any other status is a deliberate answer and returned immediately as
// an *APIError.
//
// # Response hardening
//
// Response decoding is all-or-nothing: bodies are read bounded, decoded
// into a fresh value, and copied into the caller's destination only on
// full success — a hostile or truncated response can produce an error
// but never a panic or a half-written struct (fuzzed by
// FuzzServeClientResponses).
package serveclient
