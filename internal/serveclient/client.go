package serveclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"doda/internal/core"
	"doda/internal/rng"
	"doda/internal/serve"
)

// maxResponseBytes bounds how much of a (possibly hostile or confused)
// server response the client reads before deciding.
const maxResponseBytes = 8 << 20

// maxErrorBytes bounds how much of an error body is kept in an
// APIError message.
const maxErrorBytes = 512

// maxRetryAfter caps how long the client honors a server's Retry-After
// hint, so a broken clock or hostile header cannot park the retry loop.
const maxRetryAfter = time.Minute

// RetryPolicy bounds and paces re-attempts of one call after a
// transient failure, mirroring the fleet worker's policy: the zero
// value means 8 attempts, 100ms initial backoff doubling to a 5s cap,
// each delay jittered deterministically into [d/2, d).
type RetryPolicy struct {
	// Attempts is the total tries per call (default 8).
	Attempts int
	// Base is the backoff before the second attempt (default 100ms);
	// it doubles per attempt.
	Base time.Duration
	// Max caps the backoff (default 5s).
	Max time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 8
	}
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	return p
}

// backoff returns the jittered delay before retry k (k ≥ 1 failures so
// far) of call number call: d = min(Max, Base·2^(k-1)), scaled into
// [d/2, d) by a uniform draw that is a pure function of (seed, call, k).
func (p RetryPolicy) backoff(seed, call uint64, k int) time.Duration {
	d := p.Max
	if k-1 < 32 {
		if exp := p.Base << (k - 1); exp > 0 && exp < p.Max {
			d = exp
		}
	}
	u := rng.New(seed ^ (call << 20) ^ uint64(k)).Float64()
	return d/2 + time.Duration(u*float64(d/2))
}

// APIError is a deliberate non-2xx answer from the server.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error string.
	Message string
	// RetryAfter is the server's backpressure hint on 429 (0 = none).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serveclient: HTTP %d: %s", e.Status, e.Message)
}

// Options configures a Client.
type Options struct {
	// HTTPClient issues the requests (default http.DefaultClient). Point
	// its Transport at chaos.NewTransport to fault-inject the client.
	HTTPClient *http.Client
	// Retry is the per-call retry policy (zero value = defaults).
	Retry RetryPolicy
	// Seed decorrelates backoff jitter across client processes.
	Seed uint64
}

// Client talks to one dodaserve process.
type Client struct {
	base  string
	hc    *http.Client
	rp    RetryPolicy
	seed  uint64
	calls atomic.Uint64
}

// New builds a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opt Options) *Client {
	hc := opt.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   hc,
		rp:   opt.Retry.withDefaults(),
		seed: opt.Seed,
	}
}

// transient reports whether one call outcome is worth retrying:
// transport errors and garbled bodies surface as err != nil, 5xx is a
// server that may heal, and 429 is flow control — all transient under
// the bounded budget. Every other status is a deliberate answer.
func transient(err error) bool {
	if err == nil {
		return false
	}
	var ae *APIError
	if apiErrorAs(err, &ae) {
		return ae.Status >= 500 || ae.Status == http.StatusTooManyRequests
	}
	return true
}

// apiErrorAs is errors.As for *APIError without importing errors twice.
func apiErrorAs(err error, target **APIError) bool {
	for err != nil {
		if ae, ok := err.(*APIError); ok {
			*target = ae
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// do issues one API call under the retry policy. body (may be nil) is
// re-sent verbatim on every attempt; the caller guarantees the request
// is idempotent (seq-stamped ingests, registrations by name, reads).
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte, dst any) error {
	call := c.calls.Add(1)
	var lastErr error
	for k := 0; k < c.rp.Attempts; k++ {
		if k > 0 {
			delay := c.rp.backoff(c.seed, call, k)
			// 429 is flow control: wait at least what the server asked.
			var ae *APIError
			if apiErrorAs(lastErr, &ae) && ae.RetryAfter > delay {
				delay = ae.RetryAfter
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
		}
		lastErr = c.doOnce(ctx, method, path, contentType, body, dst)
		if !transient(lastErr) {
			return lastErr
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
	}
	return fmt.Errorf("serveclient: %s %s: retry budget exhausted after %d attempts: %w",
		method, path, c.rp.Attempts, lastErr)
}

func (c *Client) doOnce(ctx context.Context, method, path, contentType string, body []byte, dst any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return fmt.Errorf("serveclient: reading response: %w", err)
	}
	return decodeResponse(resp.StatusCode, resp.Header.Get("Retry-After"), data, dst)
}

// decodeResponse interprets one HTTP exchange. 2xx bodies decode into
// dst all-or-nothing (a fresh value is copied in only on full success);
// non-2xx bodies become an *APIError carrying the server's message and
// Retry-After hint. Pure, so FuzzServeClientResponses can hammer it.
func decodeResponse(status int, retryAfterHeader string, body []byte, dst any) error {
	if status >= 200 && status <= 299 {
		if dst == nil || len(bytes.TrimSpace(body)) == 0 {
			return nil
		}
		fresh := reflect.New(reflect.TypeOf(dst).Elem())
		if err := json.Unmarshal(body, fresh.Interface()); err != nil {
			return fmt.Errorf("serveclient: decoding response: %w", err)
		}
		reflect.ValueOf(dst).Elem().Set(fresh.Elem())
		return nil
	}
	ae := &APIError{Status: status}
	var eb struct {
		Error        string `json:"error"`
		RetryAfterMs int64  `json:"retry_after_ms"`
	}
	if err := json.Unmarshal(body, &eb); err == nil && eb.Error != "" {
		ae.Message = eb.Error
		if eb.RetryAfterMs > 0 {
			ae.RetryAfter = time.Duration(eb.RetryAfterMs) * time.Millisecond
		}
	} else {
		ae.Message = strings.TrimSpace(string(body))
	}
	if len(ae.Message) > maxErrorBytes {
		ae.Message = ae.Message[:maxErrorBytes]
	}
	if ae.RetryAfter == 0 && retryAfterHeader != "" {
		if secs, err := strconv.Atoi(retryAfterHeader); err == nil && secs >= 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	// A broken or hostile hint must not stall the retry loop for hours.
	if ae.RetryAfter < 0 || ae.RetryAfter > maxRetryAfter {
		ae.RetryAfter = maxRetryAfter
	}
	return ae
}

func instancePath(name string, suffix string) string {
	return "/v1/instances/" + url.PathEscape(name) + suffix
}

// Register creates an instance. It is idempotent per name: a retry that
// lost the first response (the server registered, the ack vanished)
// lands on "already exists" and resolves to the live instance's status,
// so callers must re-register with a consistent config.
func (c *Client) Register(ctx context.Context, cfg serve.InstanceConfig) (serve.InstanceStatus, error) {
	body, err := json.Marshal(cfg)
	if err != nil {
		return serve.InstanceStatus{}, err
	}
	var st serve.InstanceStatus
	err = c.do(ctx, http.MethodPost, "/v1/instances", "application/json", body, &st)
	var ae *APIError
	if apiErrorAs(err, &ae) && strings.Contains(ae.Message, "already exists") {
		return c.InstanceStatus(ctx, cfg.Name)
	}
	return st, err
}

// InstanceStatus fetches one instance's status row.
func (c *Client) InstanceStatus(ctx context.Context, name string) (serve.InstanceStatus, error) {
	var st serve.InstanceStatus
	err := c.do(ctx, http.MethodGet, instancePath(name, ""), "", nil, &st)
	return st, err
}

// Status fetches the all-instance server snapshot.
func (c *Client) Status(ctx context.Context) (serve.ServerStatus, error) {
	var st serve.ServerStatus
	err := c.do(ctx, http.MethodGet, "/v1/status", "", nil, &st)
	return st, err
}

// State fetches an instance's deterministic engine snapshot — the
// document recovery tests diff byte-for-byte. Evicted instances
// rehydrate server-side.
func (c *Client) State(ctx context.Context, name string) (core.EngineState, error) {
	var st core.EngineState
	err := c.do(ctx, http.MethodGet, instancePath(name, "/state"), "", nil, &st)
	return st, err
}

// Remove deletes an instance and its journal.
func (c *Client) Remove(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, instancePath(name, ""), "", nil, nil)
}
