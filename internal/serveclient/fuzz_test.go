package serveclient

import (
	"strings"
	"testing"

	"doda/internal/serve"
)

// FuzzServeClientResponses hammers decodeResponse — the single funnel
// every byte from the server passes through — with arbitrary (status,
// Retry-After header, body) triples. The invariants: never panic, never
// half-write the destination (an error leaves the caller's value
// untouched), and non-2xx always surfaces as *APIError with a bounded
// message and a sane Retry-After.
func FuzzServeClientResponses(f *testing.F) {
	f.Add(200, "", []byte(`{"name":"a","state":"running","n":8,"algorithm":"waiting","agg":"min","pending_ops":0,"last_seq":3,"applied_seq":3,"applied_ops":24,"owners":1}`))
	f.Add(201, "", []byte(`{"name":"a","state":"running"}`))
	f.Add(202, "", []byte(`{"ops":8}`))
	f.Add(200, "", []byte(``))
	f.Add(200, "", []byte(`{"name":"a","state":`)) // truncated mid-value
	f.Add(200, "", []byte(`[1,2,3]`))              // wrong shape
	f.Add(200, "", []byte(`null`))
	f.Add(204, "", []byte{})
	f.Add(404, "", []byte(`{"error":"no instance \"x\""}`))
	f.Add(429, "1", []byte(`{"error":"backpressure","retry_after_ms":1000}`))
	f.Add(429, "garbage", []byte(`not json at all`))
	f.Add(429, "99999999999999999999", []byte(`{}`))
	f.Add(503, "", []byte(`<html>bad gateway</html>`))
	f.Add(500, "-5", []byte(strings.Repeat("x", 4096)))
	f.Add(409, "", []byte(`{"error":"serve: sequence gap: got 7, journal is at 3"}`))
	f.Add(302, "", []byte{0xff, 0xfe, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, status int, retryAfter string, body []byte) {
		sentinel := serve.InstanceStatus{Name: "sentinel", State: "untouched", LastSeq: 777}
		dst := sentinel
		err := decodeResponse(status, retryAfter, body, &dst)

		if status >= 200 && status <= 299 {
			if err != nil {
				// All-or-nothing: a rejected 2xx body must leave dst alone.
				if dst != sentinel {
					t.Fatalf("decode error %v but dst mutated: %+v", err, dst)
				}
			}
			return
		}
		ae, ok := err.(*APIError)
		if !ok {
			t.Fatalf("non-2xx status %d: want *APIError, got %v", status, err)
		}
		if dst != sentinel {
			t.Fatalf("non-2xx mutated dst: %+v", dst)
		}
		if ae.Status != status {
			t.Fatalf("APIError.Status = %d, want %d", ae.Status, status)
		}
		if len(ae.Message) > maxErrorBytes {
			t.Fatalf("unbounded error message: %d bytes", len(ae.Message))
		}
		if ae.RetryAfter < 0 || ae.RetryAfter > maxRetryAfter {
			t.Fatalf("insane RetryAfter %v from header %q body %q", ae.RetryAfter, retryAfter, body)
		}
		// The error string must render without panicking.
		_ = ae.Error()
	})
}
