package trace

import (
	"bytes"
	"strings"
	"testing"

	"doda/internal/adversary"
	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/graph"
)

// FuzzRead hardens the trace parser against arbitrary input: it must
// never panic, and anything it accepts must round-trip.
func FuzzRead(f *testing.F) {
	// Seed corpus: a real trace, fragments, and junk.
	rec := NewRecorder()
	adv, _, err := adversary.Randomized(6, 1)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := core.RunOnce(core.Config{N: 6, MaxInteractions: 10000, Events: rec},
		algorithms.NewGathering(), adv); err != nil {
		f.Fatal(err)
	}
	var real bytes.Buffer
	if err := rec.Write(&real); err != nil {
		f.Fatal(err)
	}
	f.Add(real.String())
	f.Add(`{"record":{"t":0,"u":0,"v":1,"decision":"⊥","sender":-1,"receiver":-1}}`)
	f.Add(`{"summary":{"terminated":true}}`)
	f.Add(`{}`)
	f.Add(`not json at all`)
	f.Add("")
	f.Add(`{"record":{"t":-1,"u":999`)

	f.Fuzz(func(t *testing.T, input string) {
		parsed, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := parsed.Write(&buf); err != nil {
			t.Fatalf("accepted trace failed to serialise: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back.Records) != len(parsed.Records) {
			t.Fatalf("round trip changed record count: %d -> %d",
				len(parsed.Records), len(back.Records))
		}
	})
}

// FuzzVerify hardens trace verification against arbitrary record
// contents: it must never panic, whatever senders/receivers claim.
func FuzzVerify(f *testing.F) {
	f.Add(3, 0, 1, 2, 0)
	f.Add(5, 4, -1, -1, 1)
	f.Add(2, 0, 7, 9, 0)
	f.Fuzz(func(t *testing.T, n, sink, sender, receiver, repeat int) {
		if n < 1 || n > 64 {
			return
		}
		if repeat < 0 || repeat > 8 {
			return
		}
		rec := &Recorder{}
		for i := 0; i <= repeat; i++ {
			rec.Records = append(rec.Records, Record{
				T: i, U: 0, V: 1, Sender: sender, Receiver: receiver,
			})
		}
		// Must not panic; the error result is unconstrained.
		_ = rec.Verify(n, graph.NodeID(sink))
	})
}
