package trace

import (
	"bytes"
	"strings"
	"testing"

	"doda/internal/adversary"
	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/seq"
)

func recordRun(t *testing.T, n int, seed uint64) *Recorder {
	t.Helper()
	rec := NewRecorder()
	adv, _, err := adversary.Randomized(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.RunOnce(core.Config{
		N: n, MaxInteractions: 100000, Events: rec, VerifyAggregate: true,
	}, algorithms.NewGathering(), adv)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRecorderCapturesRun(t *testing.T) {
	rec := recordRun(t, 8, 3)
	if rec.Result == nil {
		t.Fatal("no summary")
	}
	if !rec.Result.Terminated {
		t.Fatalf("summary = %+v", rec.Result)
	}
	if len(rec.Records) != rec.Result.Interactions {
		t.Errorf("%d records for %d interactions", len(rec.Records), rec.Result.Interactions)
	}
	transfers := 0
	for _, r := range rec.Records {
		if r.Sender >= 0 {
			transfers++
		}
	}
	if transfers != rec.Result.Transmissions {
		t.Errorf("%d transfer records, summary says %d", transfers, rec.Result.Transmissions)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rec := recordRun(t, 6, 9)
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(rec.Records) {
		t.Fatalf("records: %d != %d", len(back.Records), len(rec.Records))
	}
	for i := range rec.Records {
		if back.Records[i] != rec.Records[i] {
			t.Fatalf("record %d: %+v != %+v", i, back.Records[i], rec.Records[i])
		}
	}
	if back.Result == nil || *back.Result != *rec.Result {
		t.Errorf("summary mismatch: %+v vs %+v", back.Result, rec.Result)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("want error")
	}
	if _, err := Read(strings.NewReader("{}\n")); err == nil {
		t.Error("empty envelope should error")
	}
}

func TestSequenceReconstruction(t *testing.T) {
	rec := recordRun(t, 6, 11)
	s, err := rec.Sequence(6)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(rec.Records) {
		t.Errorf("len = %d", s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		it := s.At(i)
		if int(it.U) != rec.Records[i].U || int(it.V) != rec.Records[i].V {
			t.Fatalf("step %d mismatch", i)
		}
	}
}

func TestSequenceRejectsNonContiguous(t *testing.T) {
	rec := &Recorder{Records: []Record{{T: 5, U: 0, V: 1}}}
	if _, err := rec.Sequence(3); err == nil {
		t.Error("want error for non-contiguous trace")
	}
}

func TestVerifyAcceptsRealRun(t *testing.T) {
	rec := recordRun(t, 10, 13)
	if err := rec.Verify(10, 0); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestVerifyCatchesDoubleTransmit(t *testing.T) {
	rec := &Recorder{Records: []Record{
		{T: 0, U: 1, V: 2, Sender: 1, Receiver: 2, BothOwned: true},
		{T: 1, U: 1, V: 2, Sender: 1, Receiver: 2, BothOwned: true},
	}}
	if err := rec.Verify(3, 0); err == nil {
		t.Error("double transmission must fail verification")
	}
}

func TestVerifyCatchesReceiveAfterTransmit(t *testing.T) {
	rec := &Recorder{Records: []Record{
		{T: 0, U: 1, V: 2, Sender: 1, Receiver: 2},
		{T: 1, U: 0, V: 1, Sender: 0, Receiver: 1}, // 1 already transmitted
	}}
	if err := rec.Verify(3, 2); err == nil {
		t.Error("receive-after-transmit must fail verification")
	}
}

func TestVerifyCatchesBogusTermination(t *testing.T) {
	rec := &Recorder{
		Records: []Record{{T: 0, U: 1, V: 2, Sender: 1, Receiver: 2}},
		Result:  &Summary{Terminated: true},
	}
	if err := rec.Verify(3, 0); err == nil {
		t.Error("termination with missing transmissions must fail")
	}
}

func TestVerifyBadSink(t *testing.T) {
	rec := &Recorder{}
	if err := rec.Verify(3, 7); err == nil {
		t.Error("want error for bad sink")
	}
}

func TestRecorderDecisionStrings(t *testing.T) {
	rec := NewRecorder()
	it := seq.MustInteraction(0, 1)
	rec.OnEvent(core.Event{T: 0, It: it, BothOwned: true, Decision: core.NoTransfer})
	rec.OnEvent(core.Event{T: 1, It: it, BothOwned: true, Decision: core.FirstReceives, Sender: 1, Receiver: 0})
	if rec.Records[0].Decision != "⊥" || rec.Records[0].Sender != -1 {
		t.Errorf("record 0 = %+v", rec.Records[0])
	}
	if rec.Records[1].Decision != "first" || rec.Records[1].Sender != 1 {
		t.Errorf("record 1 = %+v", rec.Records[1])
	}
}
