// Package trace records executions as JSON-lines event streams that can
// be written, read back, inspected and replayed. A trace captures enough
// to audit a run offline: every interaction, the algorithm's decision,
// and the final result.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"doda/internal/core"
	"doda/internal/graph"
	"doda/internal/seq"
)

// Record is one traced interaction.
type Record struct {
	T         int    `json:"t"`
	U         int    `json:"u"`
	V         int    `json:"v"`
	BothOwned bool   `json:"bothOwned"`
	Decision  string `json:"decision"`
	Sender    int    `json:"sender"`   // -1 when no transfer
	Receiver  int    `json:"receiver"` // -1 when no transfer
}

// Summary is the trace trailer: the run's outcome.
type Summary struct {
	Algorithm     string  `json:"algorithm"`
	Adversary     string  `json:"adversary"`
	Terminated    bool    `json:"terminated"`
	Failed        bool    `json:"failed"`
	FailReason    string  `json:"failReason,omitempty"`
	Duration      int     `json:"duration"`
	Interactions  int     `json:"interactions"`
	Transmissions int     `json:"transmissions"`
	Declined      int     `json:"declined"`
	SinkPayload   float64 `json:"sinkPayload"`
	SinkCount     int     `json:"sinkCount"`
}

// Recorder collects events in memory; it implements core.EventSink.
type Recorder struct {
	Records []Record
	Result  *Summary
}

var _ core.EventSink = (*Recorder)(nil)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// OnEvent implements core.EventSink.
func (r *Recorder) OnEvent(ev core.Event) {
	rec := Record{
		T:         ev.T,
		U:         int(ev.It.U),
		V:         int(ev.It.V),
		BothOwned: ev.BothOwned,
		Decision:  ev.Decision.String(),
		Sender:    -1,
		Receiver:  -1,
	}
	if _, ok := ev.Decision.Receiver(ev.It); ok {
		rec.Sender = int(ev.Sender)
		rec.Receiver = int(ev.Receiver)
	}
	r.Records = append(r.Records, rec)
}

// OnDone implements core.EventSink.
func (r *Recorder) OnDone(res core.Result) {
	r.Result = &Summary{
		Algorithm:     res.Algorithm,
		Adversary:     res.Adversary,
		Terminated:    res.Terminated,
		Failed:        res.Failed,
		FailReason:    res.FailReason,
		Duration:      res.Duration,
		Interactions:  res.Interactions,
		Transmissions: res.Transmissions,
		Declined:      res.Declined,
		SinkPayload:   res.SinkValue.Num,
		SinkCount:     res.SinkValue.Count,
	}
}

// envelope is one JSON line: exactly one of the fields is set.
type envelope struct {
	Record  *Record  `json:"record,omitempty"`
	Summary *Summary `json:"summary,omitempty"`
}

// Write streams the trace as JSON lines: one envelope per record, then
// one for the summary.
func (r *Recorder) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range r.Records {
		if err := enc.Encode(envelope{Record: &r.Records[i]}); err != nil {
			return fmt.Errorf("trace: encode record %d: %w", i, err)
		}
	}
	if r.Result != nil {
		if err := enc.Encode(envelope{Summary: r.Result}); err != nil {
			return fmt.Errorf("trace: encode summary: %w", err)
		}
	}
	return bw.Flush()
}

// Read parses a JSON-lines trace written by Write.
func Read(rd io.Reader) (*Recorder, error) {
	out := &Recorder{}
	dec := json.NewDecoder(rd)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("trace: decode: %w", err)
		}
		switch {
		case env.Record != nil:
			out.Records = append(out.Records, *env.Record)
		case env.Summary != nil:
			out.Result = env.Summary
		default:
			return nil, errors.New("trace: empty envelope")
		}
	}
	return out, nil
}

// Sequence reconstructs the interaction sequence the trace observed.
func (r *Recorder) Sequence(n int) (*seq.Sequence, error) {
	steps := make([]seq.Interaction, len(r.Records))
	for i, rec := range r.Records {
		if rec.T != i {
			return nil, fmt.Errorf("trace: record %d has t=%d (trace not contiguous)", i, rec.T)
		}
		it, err := seq.NewInteraction(graph.NodeID(rec.U), graph.NodeID(rec.V))
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		steps[i] = it
	}
	return seq.NewSequence(n, steps)
}

// Verify replays the trace's transfers against the model rules: each node
// transmits at most once, transfers only occur between current data
// owners, and — when the trace claims termination — the sink ends as the
// unique owner having aggregated all n data.
func (r *Recorder) Verify(n int, sink graph.NodeID) error {
	if sink < 0 || int(sink) >= n {
		return fmt.Errorf("trace: sink %d out of range [0,%d)", sink, n)
	}
	owns := make([]bool, n)
	for i := range owns {
		owns[i] = true
	}
	transmissions := 0
	for i, rec := range r.Records {
		if rec.Sender < 0 {
			continue
		}
		if rec.Sender >= n || rec.Receiver < 0 || rec.Receiver >= n {
			return fmt.Errorf("trace: record %d transfer %d->%d out of range", i, rec.Sender, rec.Receiver)
		}
		if !owns[rec.Sender] {
			return fmt.Errorf("trace: record %d: sender %d already transmitted", i, rec.Sender)
		}
		if !owns[rec.Receiver] {
			return fmt.Errorf("trace: record %d: receiver %d cannot receive after transmitting", i, rec.Receiver)
		}
		owns[rec.Sender] = false
		transmissions++
	}
	if r.Result != nil && r.Result.Terminated {
		if transmissions != n-1 {
			return fmt.Errorf("trace: terminated with %d transmissions, want %d", transmissions, n-1)
		}
		for u := 0; u < n; u++ {
			if owns[u] != (graph.NodeID(u) == sink) {
				return fmt.Errorf("trace: terminated but node %d ownership is %v", u, owns[u])
			}
		}
	}
	return nil
}
