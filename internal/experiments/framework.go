package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Scale selects experiment sizes.
type Scale int

const (
	// ScaleQuick runs small sweeps suitable for unit tests (seconds).
	ScaleQuick Scale = iota + 1
	// ScaleFull runs the sweep sizes recorded in EXPERIMENTS.md
	// (minutes).
	ScaleFull
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleQuick:
		return "quick"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// Config parameterises a suite run.
type Config struct {
	// Scale selects sweep sizes (default ScaleQuick).
	Scale Scale
	// Seed derives all randomness; same seed, same report.
	Seed uint64
	// Progress, when non-nil, receives one line per sweep point.
	Progress io.Writer
	// CheckpointDir, when non-empty, makes the sweep-backed experiments
	// (S1/S2) journal every completed grid cell under this directory and
	// resume past already-journaled cells on the next run — so a killed
	// full-scale suite run picks up where it stopped instead of
	// re-sweeping from cell 0. Results are identical either way: the
	// per-cell deterministic seed contract makes resumed and fresh cells
	// indistinguishable.
	CheckpointDir string
}

func (c Config) scale() Scale {
	if c.Scale == 0 {
		return ScaleQuick
	}
	return c.Scale
}

func (c Config) progressf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format, args...)
	}
}

// Table is a formatted result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends one row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v != v: // NaN
		return "NaN"
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Format renders the table as aligned ASCII.
func (t *Table) Format(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if n := w - len([]rune(s)); n > 0 {
		return s + strings.Repeat(" ", n)
	}
	return s
}

// CSV renders the table as comma-separated values (cells are simple
// numbers and identifiers; no quoting is needed or applied).
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Check is one verdict line of a report: a named assertion with outcome.
type Check struct {
	Name string
	Pass bool
	Got  string
	Want string
}

// Report is an experiment's outcome.
type Report struct {
	ID         string
	Name       string
	PaperClaim string
	Tables     []*Table
	Checks     []Check
	Notes      []string
}

// Pass reports whether all checks passed.
func (r *Report) Pass() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// check records an assertion outcome.
func (r *Report) check(name string, pass bool, gotFormat string, got any, want string) {
	r.Checks = append(r.Checks, Check{
		Name: name,
		Pass: pass,
		Got:  fmt.Sprintf(gotFormat, got),
		Want: want,
	})
}

// note records free-form commentary.
func (r *Report) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Format renders the full report.
func (r *Report) Format(w io.Writer) error {
	status := "PASS"
	if !r.Pass() {
		status = "FAIL"
	}
	if _, err := fmt.Fprintf(w, "== %s: %s [%s]\n   paper: %s\n", r.ID, r.Name, status, r.PaperClaim); err != nil {
		return err
	}
	for _, tb := range r.Tables {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := tb.Format(w); err != nil {
			return err
		}
	}
	if len(r.Checks) > 0 {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		for _, c := range r.Checks {
			mark := "ok  "
			if !c.Pass {
				mark = "FAIL"
			}
			if _, err := fmt.Fprintf(w, "  [%s] %s: got %s, want %s\n", mark, c.Name, c.Got, c.Want); err != nil {
				return err
			}
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Experiment is one reproducible experiment.
type Experiment struct {
	ID         string
	Name       string
	PaperClaim string
	Run        func(cfg Config) (*Report, error)
}

// All returns every experiment in display order.
func All() []Experiment {
	return []Experiment{
		e1(), e2(), e3(), e4(), e5(), e6(), e7(),
		e8(), e9(), e10(), e11(), e12(), e13(), e14(),
		a1(), a2(), x1(), x2(), s1(), s2(),
	}
}

// ByID finds an experiment by its identifier (case-insensitive).
func ByID(id string) (Experiment, bool) {
	id = strings.ToUpper(strings.TrimSpace(id))
	for _, e := range All() {
		if strings.ToUpper(e.ID) == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all experiment identifiers.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}
