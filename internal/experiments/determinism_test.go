package experiments

import (
	"bytes"
	"testing"
)

// Experiments are advertised as bit-for-bit reproducible given
// (Scale, Seed); EXPERIMENTS.md relies on it. Pin the property on a
// cheap experiment end-to-end, including formatting.
func TestExperimentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	e, ok := ByID("E5")
	if !ok {
		t.Fatal("E5 missing")
	}
	render := func(seed uint64) string {
		rep, err := e.Run(Config{Scale: ScaleQuick, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.Format(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := render(777)
	second := render(777)
	if first != second {
		t.Errorf("same seed produced different reports:\n%s\nvs\n%s", first, second)
	}
	other := render(778)
	if first == other {
		t.Errorf("different seeds produced identical reports (suspicious)")
	}
}

func TestExperimentSeedChangesMeasurements(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	// E8's means are Monte-Carlo: different seeds must move them, and
	// both must still pass the paper's bands.
	e, ok := ByID("E8")
	if !ok {
		t.Fatal("E8 missing")
	}
	r1, err := e.Run(Config{Scale: ScaleQuick, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(Config{Scale: ScaleQuick, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Pass() || !r2.Pass() {
		t.Error("E8 failed under one of the seeds")
	}
	if len(r1.Tables) == 0 || len(r2.Tables) == 0 {
		t.Fatal("missing tables")
	}
	if r1.Tables[0].Rows[0][1] == r2.Tables[0].Rows[0][1] {
		t.Error("different seeds yielded identical measured means")
	}
}
