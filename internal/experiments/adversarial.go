package experiments

// Experiments E1-E6: the oblivious / adaptive adversary results of
// Section 3 — impossibility constructions made executable, plus the
// possibility results under topology and future knowledge.

import (
	"fmt"

	"doda/internal/adversary"
	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/graph"
	"doda/internal/knowledge"
	"doda/internal/offline"
	"doda/internal/rng"
	"doda/internal/seq"
	"doda/internal/stats"
)

func e1() Experiment {
	return Experiment{
		ID:         "E1",
		Name:       "Adaptive adversary defeats every algorithm (3 nodes)",
		PaperClaim: "Theorem 1: for every A ∈ DODA there is an adaptive online adversary with cost_A(I) = ∞",
		Run:        runE1,
	}
}

func runE1(cfg Config) (*Report, error) {
	r := &Report{ID: "E1", Name: "Adaptive adversary defeats every algorithm (3 nodes)",
		PaperClaim: "Theorem 1: cost_A(I) = ∞ under the adaptive online adversary"}
	horizons := []int{100, 1000, 10000}
	if cfg.scale() == ScaleFull {
		horizons = []int{100, 1000, 10000, 100000}
	}
	algs := []func() core.Algorithm{
		func() core.Algorithm { return algorithms.Waiting{} },
		func() core.Algorithm { return algorithms.NewGathering() },
		func() core.Algorithm {
			alg, _ := algorithms.NewGatheringTieBreak(algorithms.RandomTieBreak, cfg.Seed)
			return alg
		},
		func() core.Algorithm { return newCoinFlip(0.5, cfg.Seed+1) },
	}
	tb := &Table{
		Title:   "Theorem 1 adversary vs algorithms (n=3): terminated? / convergecasts still possible",
		Columns: []string{"algorithm", "horizon", "terminated", "T(i) computed", "cost"},
	}
	for _, mk := range algs {
		for _, h := range horizons {
			alg := mk()
			adv, err := adversary.NewTheorem1(3, 0)
			if err != nil {
				return nil, err
			}
			rec := newRecording(adv, 3)
			res, err := core.RunOnce(core.Config{N: 3, MaxInteractions: h}, alg, rec)
			if err != nil {
				return nil, err
			}
			emitted, err := rec.Sequence()
			if err != nil {
				return nil, err
			}
			clock, err := offline.NewClock(emitted, 0, emitted.Len())
			if err != nil {
				return nil, err
			}
			// Count how many successive convergecasts fit in the emitted
			// prefix: it must keep growing with the horizon, witnessing
			// cost_A = ∞.
			count := 0
			for {
				if _, ok := clock.T(count + 1); !ok {
					break
				}
				count++
			}
			cost := "∞"
			if res.Terminated {
				if c, ok := clock.Cost(res.Duration); ok {
					cost = fmt.Sprintf("%d", c)
				}
			}
			tb.AddRow(alg.Name(), h, res.Terminated, count, cost)
			r.check(fmt.Sprintf("%s@%d not terminated", alg.Name(), h), !res.Terminated,
				"terminated=%v", res.Terminated, "non-termination")
			r.check(fmt.Sprintf("%s@%d convergecasts possible", alg.Name(), h), count >= h/10,
				"%d successive convergecasts", count, fmt.Sprintf(">= %d", h/10))
			cfg.progressf("E1 %s horizon=%d done\n", alg.Name(), h)
		}
	}
	r.Tables = append(r.Tables, tb)
	r.note("cost_A(I) exceeds every bound: the algorithm never terminates while T(i) stays finite for all i")
	return r, nil
}

func e2() Experiment {
	return Experiment{
		ID:         "E2",
		Name:       "Oblivious adversary defeats oblivious randomized algorithms",
		PaperClaim: "Theorem 2: for every randomized A ∈ D∅ODA there is an oblivious adversary with cost_A(I) = ∞ w.h.p.",
		Run:        runE2,
	}
}

func runE2(cfg Config) (*Report, error) {
	r := &Report{ID: "E2", Name: "Oblivious adversary defeats oblivious randomized algorithms",
		PaperClaim: "Theorem 2: star prefix + blocking loop defeats oblivious randomized algorithms w.h.p."}
	ns := sizes(cfg, []int{8, 16, 32}, []int{8, 16, 32, 64, 128})
	trials := reps(cfg, 200, 1000)
	probes := reps(cfg, 400, 2000)
	tb := &Table{
		Title:   "Theorem 2 construction vs coin-flip(0.5): estimated l0, chosen d, non-termination rate",
		Columns: []string{"n", "l0", "d", "trials", "blocked rate"},
	}
	src := rng.New(cfg.Seed ^ 0xe2)
	for _, n := range ns {
		l0, d, err := estimateTheorem2Params(n, probes, src)
		if err != nil {
			return nil, err
		}
		built, err := adversary.BuildTheorem2(n, l0, d, 4*n)
		if err != nil {
			return nil, err
		}
		blocked := 0
		for trial := 0; trial < trials; trial++ {
			adv, err := adversary.NewOblivious("theorem2", built)
			if err != nil {
				return nil, err
			}
			res, err := core.RunOnce(core.Config{N: n, MaxInteractions: built.Len()},
				newCoinFlip(0.5, src.Uint64()), adv)
			if err != nil {
				return nil, err
			}
			if !res.Terminated {
				blocked++
			}
		}
		rate := float64(blocked) / float64(trials)
		tb.AddRow(n, l0, d, trials, rate)
		r.check(fmt.Sprintf("n=%d mostly blocked", n), rate >= 0.5,
			"blocked rate %.3f", rate, ">= 0.5, increasing with n")
		cfg.progressf("E2 n=%d rate=%.3f\n", n, rate)
	}
	r.Tables = append(r.Tables, tb)
	return r, nil
}

// estimateTheorem2Params performs the adversary's "knows the code" step
// empirically: Monte-Carlo over star prefixes to find l0 (first prefix
// length at which someone has transmitted with probability > 1 - 1/n) and
// the node d with the highest probability of still owning data.
func estimateTheorem2Params(n, probes int, src *rng.Source) (l0, d int, err error) {
	m := n - 1
	maxLen := 8 * m
	star, err := adversary.BuildTheorem2(n, maxLen, 0, 0)
	if err != nil {
		return 0, 0, err
	}
	// survivors[l] counts trials where no transmission happened in the
	// length-l prefix; ownersAt[u] counts trials where u_{u} still owns
	// data at the end of the estimation prefix.
	firstTx := make([]int, probes)
	owners := make([]int, n)
	for trial := 0; trial < probes; trial++ {
		rec := trace2recorder{}
		adv, err := adversary.NewOblivious("star", star)
		if err != nil {
			return 0, 0, err
		}
		eng, err := core.NewEngine(core.Config{N: n, MaxInteractions: star.Len(), Events: &rec})
		if err != nil {
			return 0, 0, err
		}
		if _, err := eng.Run(newCoinFlip(0.5, src.Uint64()), adv); err != nil {
			return 0, 0, err
		}
		firstTx[trial] = rec.firstTransmission
		for u := 1; u < n; u++ {
			if eng.Owns(graph.NodeID(u)) {
				owners[u]++
			}
		}
	}
	// P_l = fraction of trials whose first transmission is at or after l.
	l0 = maxLen
	for l := 1; l <= maxLen; l++ {
		survive := 0
		for _, ft := range firstTx {
			if ft < 0 || ft >= l {
				survive++
			}
		}
		if float64(survive)/float64(probes) < 1/float64(n) {
			l0 = l
			break
		}
	}
	// Choose u_d with maximal survival frequency, excluding u_{l0 mod m}
	// (the proof's requirement that d's transmission probability is
	// unchanged between prefix lengths l0-1 and l0).
	excluded := l0 % m
	best, bestCount := -1, -1
	for i := 0; i < m; i++ {
		if i == excluded {
			continue
		}
		if owners[i+1] > bestCount {
			best, bestCount = i, owners[i+1]
		}
	}
	return l0, best, nil
}

// trace2recorder captures only the first transmission time.
type trace2recorder struct {
	firstTransmission int
	seen              bool
}

func (t *trace2recorder) OnEvent(ev core.Event) {
	if !t.seen {
		t.firstTransmission = -1
	}
	t.seen = true
	if _, ok := ev.Decision.Receiver(ev.It); ok && t.firstTransmission < 0 {
		t.firstTransmission = ev.T
	}
}

func (t *trace2recorder) OnDone(core.Result) {}

func e3() Experiment {
	return Experiment{
		ID:         "E3",
		Name:       "Underlying-graph knowledge is insufficient (4-node cycle)",
		PaperClaim: "Theorem 3: for every A ∈ DODA(Ḡ), an adaptive adversary on a cycle forces cost_A(I) = ∞",
		Run:        runE3,
	}
}

func runE3(cfg Config) (*Report, error) {
	r := &Report{ID: "E3", Name: "Underlying-graph knowledge is insufficient (4-node cycle)",
		PaperClaim: "Theorem 3: cost = ∞ on the cycle even knowing Ḡ"}
	horizons := []int{100, 1000, 10000}
	if cfg.scale() == ScaleFull {
		horizons = append(horizons, 100000)
	}
	tb := &Table{
		Title:   "Theorem 3 adversary vs Ḡ-aware algorithms (n=4)",
		Columns: []string{"algorithm", "horizon", "terminated", "T(i) computed"},
	}
	type mk struct {
		name string
		make func(g *graph.Undirected) (core.Algorithm, *knowledge.Bundle, error)
	}
	mks := []mk{
		{name: "spanning-tree", make: func(g *graph.Undirected) (core.Algorithm, *knowledge.Bundle, error) {
			b, err := knowledge.NewBundle(knowledge.WithUnderlying(g))
			return algorithms.NewSpanningTree(), b, err
		}},
		{name: "gathering", make: func(g *graph.Undirected) (core.Algorithm, *knowledge.Bundle, error) {
			b, err := knowledge.NewBundle(knowledge.WithUnderlying(g))
			return algorithms.NewGathering(), b, err
		}},
	}
	for _, m := range mks {
		for _, h := range horizons {
			adv, err := adversary.NewTheorem3(4, 0)
			if err != nil {
				return nil, err
			}
			g, err := adv.UnderlyingGraph()
			if err != nil {
				return nil, err
			}
			alg, know, err := m.make(g)
			if err != nil {
				return nil, err
			}
			rec := newRecording(adv, 4)
			res, err := core.RunOnce(core.Config{N: 4, MaxInteractions: h, Know: know}, alg, rec)
			if err != nil {
				return nil, err
			}
			emitted, err := rec.Sequence()
			if err != nil {
				return nil, err
			}
			clock, err := offline.NewClock(emitted, 0, emitted.Len())
			if err != nil {
				return nil, err
			}
			count := 0
			for {
				if _, ok := clock.T(count + 1); !ok {
					break
				}
				count++
			}
			tb.AddRow(m.name, h, res.Terminated, count)
			r.check(fmt.Sprintf("%s@%d not terminated", m.name, h), !res.Terminated,
				"terminated=%v", res.Terminated, "non-termination")
			r.check(fmt.Sprintf("%s@%d convergecasts possible", m.name, h), count >= h/20,
				"%d successive convergecasts", count, fmt.Sprintf(">= %d", h/20))
		}
		cfg.progressf("E3 %s done\n", m.name)
	}
	r.Tables = append(r.Tables, tb)
	return r, nil
}

func e4() Experiment {
	return Experiment{
		ID:         "E4",
		Name:       "Recurrent interactions: finite but unbounded cost",
		PaperClaim: "Theorem 4: with Ḡ known and recurrent interactions, cost is finite yet unbounded",
		Run:        runE4,
	}
}

func runE4(cfg Config) (*Report, error) {
	r := &Report{ID: "E4", Name: "Recurrent interactions: finite but unbounded cost",
		PaperClaim: "Theorem 4: spanning-tree algorithm has finite cost; delaying one tree edge makes it grow"}
	n := 12
	if cfg.scale() == ScaleFull {
		n = 24
	}
	repeats := []int{1, 4, 16, 64}
	src := rng.New(cfg.Seed ^ 0xe4)
	g, err := graph.RandomConnected(n, n/2, src)
	if err != nil {
		return nil, err
	}
	tree, err := g.SpanningTree(0)
	if err != nil {
		return nil, err
	}
	delayed, err := removableTreeEdge(g, tree)
	if err != nil {
		return nil, err
	}
	var frequent []graph.Edge
	for _, e := range g.Edges() {
		if e != delayed {
			frequent = append(frequent, e)
		}
	}
	tb := &Table{
		Title:   fmt.Sprintf("Theorem 4: spanning-tree cost vs delay factor (n=%d, |E|=%d, delayed edge %d-%d)", n, g.M(), delayed.U, delayed.V),
		Columns: []string{"delay repeat", "terminated", "duration", "cost"},
	}
	costs := make([]int, 0, len(repeats))
	for _, k := range repeats {
		adv, _, err := adversary.DelayedRecurrent(n, frequent, delayed, k)
		if err != nil {
			return nil, err
		}
		know, err := knowledge.NewBundle(knowledge.WithUnderlying(g))
		if err != nil {
			return nil, err
		}
		rec := newRecording(adv, n)
		cap := (k*len(frequent) + 1) * (n + 2) * 4
		res, err := core.RunOnce(core.Config{N: n, MaxInteractions: cap, Know: know},
			algorithms.NewSpanningTree(), rec)
		if err != nil {
			return nil, err
		}
		if !res.Terminated {
			tb.AddRow(k, false, "-", "-")
			r.check(fmt.Sprintf("repeat=%d terminated", k), false, "terminated=%v", false, "termination (finite cost)")
			continue
		}
		emitted, err := rec.Sequence()
		if err != nil {
			return nil, err
		}
		clock, err := offline.NewClock(emitted, 0, emitted.Len())
		if err != nil {
			return nil, err
		}
		cost, ok := clock.Cost(res.Duration)
		if !ok {
			// The recorded prefix ends at termination; the final
			// convergecast may not complete within it. Extend by one
			// round so T(i) can cross the duration.
			ext, _, err2 := adversary.DelayedRecurrent(n, frequent, delayed, k)
			if err2 != nil {
				return nil, err2
			}
			view := extendedView{rec: emitted, tail: ext}
			clock2, err2 := offline.NewClock(view, 0, emitted.Len()+(k*len(frequent)+1)*(n+2)*4)
			if err2 != nil {
				return nil, err2
			}
			cost, ok = clock2.Cost(res.Duration)
			if !ok {
				return nil, fmt.Errorf("experiments: E4 cost not computable for repeat=%d", k)
			}
		}
		tb.AddRow(k, res.Terminated, res.Duration, cost)
		costs = append(costs, cost)
		r.check(fmt.Sprintf("repeat=%d terminated", k), res.Terminated, "terminated=%v", res.Terminated, "termination (finite cost)")
		cfg.progressf("E4 repeat=%d cost=%d\n", k, cost)
	}
	r.Tables = append(r.Tables, tb)
	if len(costs) == len(repeats) {
		grew := costs[len(costs)-1] > costs[0]
		r.check("cost grows with delay", grew,
			"cost %v", costs, "increasing with the delay factor (unbounded cost)")
	}
	return r, nil
}

// extendedView glues a recorded finite prefix to a fresh adversary's
// stream so the offline clock can search past the recorded end.
type extendedView struct {
	rec  *seq.Sequence
	tail core.Adversary
}

func (v extendedView) N() int { return v.rec.N() }

func (v extendedView) Bound() (int, bool) { return 0, false }

func (v extendedView) At(t int) seq.Interaction {
	if t < v.rec.Len() {
		return v.rec.At(t)
	}
	it, _ := v.tail.Next(t, nil)
	return it
}

// removableTreeEdge returns a spanning-tree edge whose removal keeps the
// graph connected (it lies on a cycle), so the adversary can starve it
// while convergecasts remain possible.
func removableTreeEdge(g *graph.Undirected, tree *graph.Tree) (graph.Edge, error) {
	for _, e := range tree.Edges() {
		var rest []graph.Edge
		for _, o := range g.Edges() {
			if o != e {
				rest = append(rest, o)
			}
		}
		h, err := graph.FromEdges(g.N(), rest)
		if err != nil {
			return graph.Edge{}, err
		}
		if h.Connected() {
			return e, nil
		}
	}
	return graph.Edge{}, fmt.Errorf("experiments: no removable tree edge (graph is a tree)")
}

func e5() Experiment {
	return Experiment{
		ID:         "E5",
		Name:       "Tree underlying graph: spanning-tree algorithm is optimal",
		PaperClaim: "Theorem 5: if Ḡ is a tree, the wait-for-children algorithm achieves cost 1",
		Run:        runE5,
	}
}

func runE5(cfg Config) (*Report, error) {
	r := &Report{ID: "E5", Name: "Tree underlying graph: spanning-tree algorithm is optimal",
		PaperClaim: "Theorem 5: duration equals opt(0) on every recurrent tree schedule"}
	ns := sizes(cfg, []int{6, 12, 24}, []int{6, 12, 24, 48, 96})
	trials := reps(cfg, 20, 100)
	src := rng.New(cfg.Seed ^ 0xe5)
	tb := &Table{
		Title:   "Theorem 5: spanning-tree duration vs offline optimum on random trees",
		Columns: []string{"n", "trials", "optimal runs", "mean duration", "mean opt"},
	}
	for _, n := range ns {
		optimal := 0
		var durations, opts stats.Welford
		for trial := 0; trial < trials; trial++ {
			g, err := graph.RandomTree(n, src)
			if err != nil {
				return nil, err
			}
			edges := g.Edges()
			rng.Shuffle(src, edges)
			adv, _, err := adversary.Recurrent(n, edges)
			if err != nil {
				return nil, err
			}
			know, err := knowledge.NewBundle(knowledge.WithUnderlying(g))
			if err != nil {
				return nil, err
			}
			rec := newRecording(adv, n)
			res, err := core.RunOnce(core.Config{N: n, MaxInteractions: len(edges) * (n + 2) * 3, Know: know},
				algorithms.NewSpanningTree(), rec)
			if err != nil {
				return nil, err
			}
			if !res.Terminated {
				return nil, fmt.Errorf("experiments: E5 run did not terminate (n=%d)", n)
			}
			emitted, err := rec.Sequence()
			if err != nil {
				return nil, err
			}
			opt, ok := offline.Opt(emitted, 0, 0, emitted.Len())
			if !ok {
				return nil, fmt.Errorf("experiments: E5 no offline optimum (n=%d)", n)
			}
			if res.Duration == opt {
				optimal++
			}
			durations.Add(float64(res.Duration))
			opts.Add(float64(opt))
		}
		tb.AddRow(n, trials, optimal, durations.Mean(), opts.Mean())
		r.check(fmt.Sprintf("n=%d always optimal", n), optimal == trials,
			"%s optimal", fmt.Sprintf("%d/%d", optimal, trials), "all runs match opt(0) (cost 1)")
		cfg.progressf("E5 n=%d optimal=%d/%d\n", n, optimal, trials)
	}
	r.Tables = append(r.Tables, tb)
	return r, nil
}

func e6() Experiment {
	return Experiment{
		ID:         "E6",
		Name:       "Future knowledge bounds cost by n",
		PaperClaim: "Theorem 6: there is A ∈ DODA(future) with cost_A(I) ≤ n on every sequence",
		Run:        runE6,
	}
}

func runE6(cfg Config) (*Report, error) {
	r := &Report{ID: "E6", Name: "Future knowledge bounds cost by n",
		PaperClaim: "Theorem 6: gossip futures then play the optimal suffix schedule; cost ≤ n"}
	ns := sizes(cfg, []int{6, 10, 16}, []int{6, 10, 16, 24, 32})
	trials := reps(cfg, 15, 60)
	src := rng.New(cfg.Seed ^ 0xe6)
	tb := &Table{
		Title:   "Theorem 6: future-optimal cost on random and recurrent sequences",
		Columns: []string{"n", "sequence", "trials", "max cost", "bound n"},
	}
	for _, n := range ns {
		for _, kind := range []string{"uniform", "tree-recurrent"} {
			maxCost := 0
			for trial := 0; trial < trials; trial++ {
				var s *seq.Sequence
				var err error
				switch kind {
				case "uniform":
					length := int(6*float64(n)*expectedOffline(n)) + 2000
					s, err = seq.Uniform(n, length, src)
				default:
					g, errT := graph.RandomTree(n, src)
					if errT != nil {
						return nil, errT
					}
					edges := g.Edges()
					rng.Shuffle(src, edges)
					s, err = seq.RoundRobin(n, edges, 4*n)
				}
				if err != nil {
					return nil, err
				}
				know, err := knowledge.NewBundle(knowledge.WithFutures(s))
				if err != nil {
					return nil, err
				}
				adv, err := adversary.NewOblivious(kind, s)
				if err != nil {
					return nil, err
				}
				res, err := core.RunOnce(core.Config{N: n, MaxInteractions: s.Len(), Know: know},
					algorithms.NewFutureOptimal(s.Len()), adv)
				if err != nil {
					return nil, err
				}
				if !res.Terminated {
					return nil, fmt.Errorf("experiments: E6 %s n=%d did not terminate", kind, n)
				}
				clock, err := offline.NewClock(s, 0, s.Len())
				if err != nil {
					return nil, err
				}
				cost, ok := clock.Cost(res.Duration)
				if !ok {
					return nil, fmt.Errorf("experiments: E6 cost not computable")
				}
				if cost > maxCost {
					maxCost = cost
				}
			}
			tb.AddRow(n, kind, trials, maxCost, n)
			r.check(fmt.Sprintf("n=%d %s cost ≤ n", n, kind), maxCost <= n,
				"max cost %d", maxCost, fmt.Sprintf("≤ %d", n))
			cfg.progressf("E6 n=%d %s maxCost=%d\n", n, kind, maxCost)
		}
	}
	r.Tables = append(r.Tables, tb)
	return r, nil
}
