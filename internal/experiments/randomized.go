package experiments

// Experiments E7-E14: the randomized adversary results of Section 4 —
// lower bounds, the offline optimum, Waiting/Gathering closed forms,
// Lemma 1 concentration, Waiting Greedy, and future knowledge.

import (
	"fmt"
	"math"

	"doda/internal/adversary"
	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/graph"
	"doda/internal/knowledge"
	"doda/internal/offline"
	"doda/internal/rng"
	"doda/internal/stats"
)

func e7() Experiment {
	return Experiment{
		ID:         "E7",
		Name:       "Ω(n²) lower bound without knowledge",
		PaperClaim: "Theorem 7: the last transmission alone takes n(n-1)/2 expected interactions",
		Run:        runE7,
	}
}

func runE7(cfg Config) (*Report, error) {
	r := &Report{ID: "E7", Name: "Ω(n²) lower bound without knowledge",
		PaperClaim: "Theorem 7: E[final gap] = n(n-1)/2 for any no-knowledge algorithm"}
	ns := sizes(cfg, []int{16, 24, 32, 48}, []int{16, 32, 64, 128, 256})
	rep := reps(cfg, 120, 400)
	src := rng.New(cfg.Seed ^ 0xe7)
	tb := &Table{
		Title:   "Theorem 7: interactions consumed by the final transmission",
		Columns: []string{"algorithm", "n", "mean last gap", "n(n-1)/2", "ratio"},
	}
	type mk struct {
		name string
		make func() core.Algorithm
	}
	mks := []mk{
		{name: "gathering", make: func() core.Algorithm { return algorithms.NewGathering() }},
		{name: "waiting", make: func() core.Algorithm { return algorithms.Waiting{} }},
	}
	for _, m := range mks {
		var xs, ys []float64
		for _, n := range ns {
			var gaps stats.Welford
			for i := 0; i < rep; i++ {
				adv, _, err := adversary.Randomized(n, src.Uint64())
				if err != nil {
					return nil, err
				}
				res, err := core.RunOnce(core.Config{N: n, MaxInteractions: waitingCap(n)}, m.make(), adv)
				if err != nil {
					return nil, err
				}
				if !res.Terminated {
					return nil, fmt.Errorf("experiments: E7 %s n=%d did not terminate", m.name, n)
				}
				gaps.Add(float64(res.LastGap + 1)) // +1: the final transmission itself
			}
			expected := float64(n) * float64(n-1) / 2
			tb.AddRow(m.name, n, gaps.Mean(), expected, gaps.Mean()/expected)
			xs = append(xs, float64(n))
			ys = append(ys, gaps.Mean())
			r.meanRatioBand(fmt.Sprintf("%s n=%d final gap", m.name, n), gaps.Mean(), expected, 0.7, 1.4)
			cfg.progressf("E7 %s n=%d mean=%.0f\n", m.name, n, gaps.Mean())
		}
		r.exponentBand(fmt.Sprintf("%s final-gap exponent", m.name), xs, ys, 1.7, 2.3)
	}
	r.Tables = append(r.Tables, tb)
	return r, nil
}

func e8() Experiment {
	return Experiment{
		ID:         "E8",
		Name:       "Offline optimum is Θ(n log n)",
		PaperClaim: "Theorem 8: best full-knowledge algorithm finishes in (n-1)·H(n-1) expected interactions, w.h.p.",
		Run:        runE8,
	}
}

func runE8(cfg Config) (*Report, error) {
	r := &Report{ID: "E8", Name: "Offline optimum is Θ(n log n)",
		PaperClaim: "Theorem 8: E[opt] = (n-1)·H(n-1); concentration via Chebyshev"}
	ns := sizes(cfg, []int{16, 32, 64, 128}, []int{16, 32, 64, 128, 256, 512})
	rep := reps(cfg, 150, 500)
	src := rng.New(cfg.Seed ^ 0xe8)
	tb := &Table{
		Title:   "Theorem 8: optimal convergecast completion on uniform sequences",
		Columns: []string{"n", "mean opt", "(n-1)H(n-1)", "ratio", "stddev/mean"},
	}
	var xs, ys []float64
	for _, n := range ns {
		var opts stats.Welford
		for i := 0; i < rep; i++ {
			_, stream, err := adversary.Randomized(n, src.Uint64())
			if err != nil {
				return nil, err
			}
			end, ok := offline.Opt(stream, 0, 0, offlineHorizon(n))
			if !ok {
				return nil, fmt.Errorf("experiments: E8 no convergecast within horizon (n=%d)", n)
			}
			opts.Add(float64(end + 1))
		}
		expected := expectedOffline(n)
		cv := opts.StdDev() / opts.Mean()
		tb.AddRow(n, opts.Mean(), expected, opts.Mean()/expected, cv)
		xs = append(xs, float64(n))
		ys = append(ys, opts.Mean())
		r.meanRatioBand(fmt.Sprintf("n=%d mean", n), opts.Mean(), expected, 0.85, 1.15)
		r.check(fmt.Sprintf("n=%d concentrated", n), cv < 0.5,
			"stddev/mean %.3f", cv, "< 0.5 (w.h.p. concentration)")
		cfg.progressf("E8 n=%d mean=%.0f\n", n, opts.Mean())
	}
	// Near-linear growth: exponent of n log n on a log-log fit against n
	// lies slightly above 1.
	r.exponentBand("opt exponent", xs, ys, 1.0, 1.35)
	r.Tables = append(r.Tables, tb)
	return r, nil
}

func e9() Experiment {
	return Experiment{
		ID:         "E9",
		Name:       "Waiting: E = n(n-1)/2·H(n-1), Var ~ n⁴π²/24",
		PaperClaim: "Theorem 9 (Waiting): exact expectation and variance of the Waiting algorithm",
		Run:        runE9,
	}
}

func runE9(cfg Config) (*Report, error) {
	r := &Report{ID: "E9", Name: "Waiting: E = n(n-1)/2·H(n-1), Var ~ n⁴π²/24",
		PaperClaim: "Theorem 9: O(n² log n) interactions w.h.p. for Waiting"}
	ns := sizes(cfg, []int{16, 24, 32}, []int{16, 32, 64, 128})
	rep := reps(cfg, 200, 600)
	src := rng.New(cfg.Seed ^ 0xe9)
	tb := &Table{
		Title:   "Theorem 9 (Waiting) on uniform sequences",
		Columns: []string{"n", "mean", "theory mean", "ratio", "variance", "n⁴π²/24", "var ratio"},
	}
	var xs, ys []float64
	for _, n := range ns {
		var w stats.Welford
		for i := 0; i < rep; i++ {
			adv, _, err := adversary.Randomized(n, src.Uint64())
			if err != nil {
				return nil, err
			}
			res, err := core.RunOnce(core.Config{N: n, MaxInteractions: waitingCap(n)}, algorithms.Waiting{}, adv)
			if err != nil {
				return nil, err
			}
			if !res.Terminated {
				return nil, fmt.Errorf("experiments: E9 n=%d did not terminate", n)
			}
			w.Add(float64(res.Duration + 1))
		}
		expMean := expectedWaiting(n)
		expVar := math.Pow(float64(n), 4) * math.Pi * math.Pi / 24
		tb.AddRow(n, w.Mean(), expMean, w.Mean()/expMean, w.Variance(), expVar, w.Variance()/expVar)
		xs = append(xs, float64(n))
		ys = append(ys, w.Mean())
		r.meanRatioBand(fmt.Sprintf("n=%d mean", n), w.Mean(), expMean, 0.9, 1.1)
		r.check(fmt.Sprintf("n=%d variance", n), stats.WithinFactor(w.Variance(), expVar, 3),
			"var ratio %.3f", w.Variance()/expVar, "within 3x of n⁴π²/24 (asymptotic)")
		cfg.progressf("E9 n=%d mean=%.0f\n", n, w.Mean())
	}
	r.exponentBand("waiting exponent", xs, ys, 1.9, 2.4)
	r.Tables = append(r.Tables, tb)
	return r, nil
}

func e10() Experiment {
	return Experiment{
		ID:         "E10",
		Name:       "Gathering: E = (n-1)² exactly; optimal without knowledge",
		PaperClaim: "Theorem 9 (Gathering) + Corollary 2: O(n²), matching the Ω(n²) lower bound",
		Run:        runE10,
	}
}

func runE10(cfg Config) (*Report, error) {
	r := &Report{ID: "E10", Name: "Gathering: E = (n-1)² exactly; optimal without knowledge",
		PaperClaim: "Theorem 9: E[X_G] = n(n-1)·Σ 1/(i(i+1)) = (n-1)²; Corollary 2: optimal in DODA"}
	ns := sizes(cfg, []int{16, 24, 32, 48}, []int{16, 32, 64, 128, 256})
	rep := reps(cfg, 150, 500)
	src := rng.New(cfg.Seed ^ 0x10)
	tb := &Table{
		Title:   "Theorem 9 (Gathering) on uniform sequences",
		Columns: []string{"n", "mean", "(n-1)²", "ratio", "mean cost", "n/ln n"},
	}
	var xs, ys []float64
	for _, n := range ns {
		var w, costs stats.Welford
		for i := 0; i < rep; i++ {
			adv, stream, err := adversary.Randomized(n, src.Uint64())
			if err != nil {
				return nil, err
			}
			res, err := core.RunOnce(core.Config{N: n, MaxInteractions: gatheringCap(n)}, algorithms.NewGathering(), adv)
			if err != nil {
				return nil, err
			}
			if !res.Terminated {
				return nil, fmt.Errorf("experiments: E10 n=%d did not terminate", n)
			}
			w.Add(float64(res.Duration + 1))
			// Cost on a subsample (the clock is the expensive part).
			if i < rep/5+1 {
				clock, err := offline.NewClock(stream, 0, res.Duration+offlineHorizon(n))
				if err != nil {
					return nil, err
				}
				cost, ok := clock.Cost(res.Duration)
				if !ok {
					return nil, fmt.Errorf("experiments: E10 cost not computable (n=%d)", n)
				}
				costs.Add(float64(cost))
			}
		}
		expected := expectedGathering(n)
		tb.AddRow(n, w.Mean(), expected, w.Mean()/expected, costs.Mean(), float64(n)/lnF(n))
		xs = append(xs, float64(n))
		ys = append(ys, w.Mean())
		r.meanRatioBand(fmt.Sprintf("n=%d mean", n), w.Mean(), expected, 0.9, 1.1)
		r.check(fmt.Sprintf("n=%d cost ~ n/log n", n),
			stats.WithinFactor(costs.Mean(), float64(n)/lnF(n), 3),
			"mean cost %.2f", costs.Mean(), fmt.Sprintf("within 3x of n/ln n = %.2f", float64(n)/lnF(n)))
		cfg.progressf("E10 n=%d mean=%.0f cost=%.1f\n", n, w.Mean(), costs.Mean())
	}
	r.exponentBand("gathering exponent", xs, ys, 1.85, 2.15)
	r.Tables = append(r.Tables, tb)
	return r, nil
}

func e11() Experiment {
	return Experiment{
		ID:         "E11",
		Name:       "Sink meets Θ(f(n)) nodes in n·f(n) interactions",
		PaperClaim: "Lemma 1: E[interactions to meet f(n) distinct nodes] ~ n·f(n)/2, w.h.p.",
		Run:        runE11,
	}
}

func runE11(cfg Config) (*Report, error) {
	r := &Report{ID: "E11", Name: "Sink meets Θ(f(n)) nodes in n·f(n) interactions",
		PaperClaim: "Lemma 1: meeting f(n) distinct nodes takes ~ n·f(n)/2 interactions"}
	n := 128
	if cfg.scale() == ScaleFull {
		n = 512
	}
	rep := reps(cfg, 150, 500)
	src := rng.New(cfg.Seed ^ 0x11)
	fs := lemmaFChoices(n)
	tb := &Table{
		Title:   fmt.Sprintf("Lemma 1 at n=%d", n),
		Columns: []string{"f(n)", "value", "mean interactions", "n·f/2", "ratio"},
	}
	for _, fc := range fs {
		target := int(fc.value)
		if target < 1 {
			target = 1
		}
		var w stats.Welford
		for i := 0; i < rep; i++ {
			_, stream, err := adversary.Randomized(n, src.Uint64())
			if err != nil {
				return nil, err
			}
			seen := make(map[graph.NodeID]bool, target)
			steps := 0
			for len(seen) < target {
				it := stream.At(steps)
				steps++
				if other, ok := it.Other(0); ok {
					seen[other] = true
				}
			}
			w.Add(float64(steps))
		}
		expected := float64(n) * fc.value / 2
		tb.AddRow(fc.label, fc.value, w.Mean(), expected, w.Mean()/expected)
		r.meanRatioBand(fmt.Sprintf("f=%s", fc.label), w.Mean(), expected, 0.8, 1.3)
		cfg.progressf("E11 f=%s mean=%.0f\n", fc.label, w.Mean())
	}
	r.Tables = append(r.Tables, tb)
	return r, nil
}

type fChoice struct {
	label string
	value float64
}

func lemmaFChoices(n int) []fChoice {
	fn := float64(n)
	return []fChoice{
		{label: "n^1/4", value: math.Pow(fn, 0.25)},
		{label: "sqrt(n)", value: math.Sqrt(fn)},
		{label: "sqrt(n·ln n)", value: math.Sqrt(fn * math.Log(fn))},
		{label: "n^3/4", value: math.Pow(fn, 0.75)},
	}
}

func e12() Experiment {
	return Experiment{
		ID:         "E12",
		Name:       "Waiting Greedy terminates by τ w.h.p.; f* = √(n log n)",
		PaperClaim: "Theorem 10 + Corollary 3: τ = Θ(max(nf, n²log n/f)), minimised at τ* = Θ(n^{3/2}√log n)",
		Run:        runE12,
	}
}

func runE12(cfg Config) (*Report, error) {
	r := &Report{ID: "E12", Name: "Waiting Greedy terminates by τ w.h.p.; f* = √(n log n)",
		PaperClaim: "Theorem 10: WGτ with τ = max(nf, n²ln n/f) terminates within τ w.h.p."}
	n := 64
	if cfg.scale() == ScaleFull {
		n = 256
	}
	rep := reps(cfg, 60, 200)
	src := rng.New(cfg.Seed ^ 0x12)
	fs := lemmaFChoices(n)
	tb := &Table{
		Title:   fmt.Sprintf("Theorem 10 f-sweep at n=%d: τ(f) = max(n·f, n²·ln n / f)", n),
		Columns: []string{"f(n)", "τ", "success rate", "mean duration", "duration/τ"},
	}
	fn := float64(n)
	bestTau := math.Inf(1)
	var bestLabel string
	starTau := 0.0
	for _, fc := range fs {
		tau := int(math.Max(fn*fc.value, fn*fn*math.Log(fn)/fc.value))
		if float64(tau) < bestTau {
			bestTau, bestLabel = float64(tau), fc.label
		}
		if fc.label == "sqrt(n·ln n)" {
			starTau = float64(tau)
		}
		success := 0
		var durations stats.Welford
		for i := 0; i < rep; i++ {
			res, err := runWaitingGreedy(n, tau, src.Uint64())
			if err != nil {
				return nil, err
			}
			if res.Terminated && res.Duration < tau {
				success++
			}
			if res.Terminated {
				durations.Add(float64(res.Duration + 1))
			}
		}
		rate := float64(success) / float64(rep)
		tb.AddRow(fc.label, tau, rate, durations.Mean(), durations.Mean()/float64(tau))
		r.check(fmt.Sprintf("f=%s terminates by τ", fc.label), rate >= 0.8,
			"success rate %.3f", rate, ">= 0.8 (w.h.p.)")
		cfg.progressf("E12 f=%s τ=%d rate=%.2f\n", fc.label, tau, rate)
	}
	r.Tables = append(r.Tables, tb)
	r.check("τ minimised at f* = √(n ln n)", bestTau == starTau,
		"best f %s", bestLabel, "sqrt(n·ln n) (Corollary 3)")
	return r, nil
}

// runWaitingGreedy executes one WGτ run against a fresh randomized
// adversary.
func runWaitingGreedy(n, tau int, seed uint64) (core.Result, error) {
	adv, stream, err := adversary.Randomized(n, seed)
	if err != nil {
		return core.Result{}, err
	}
	cap := 3*tau + 12*n*n
	know, err := knowledge.NewBundle(knowledge.WithMeetTime(stream, 0, cap))
	if err != nil {
		return core.Result{}, err
	}
	return core.RunOnce(core.Config{N: n, MaxInteractions: cap, Know: know},
		algorithms.WaitingGreedy{Tau: tau}, adv)
}

func e13() Experiment {
	return Experiment{
		ID:         "E13",
		Name:       "Waiting Greedy is optimal in DODA(meetTime)",
		PaperClaim: "Theorem 11: WG(τ*) at Θ(n^{3/2}√log n) beats the Θ(n²) no-knowledge optimum",
		Run:        runE13,
	}
}

func runE13(cfg Config) (*Report, error) {
	r := &Report{ID: "E13", Name: "Waiting Greedy is optimal in DODA(meetTime)",
		PaperClaim: "Theorem 11: exponent separation 3/2 vs 2; WG wins for large n"}
	ns := sizes(cfg, []int{16, 32, 64, 96}, []int{16, 32, 64, 128, 256, 384})
	rep := reps(cfg, 60, 200)
	src := rng.New(cfg.Seed ^ 0x13)
	tb := &Table{
		Title:   "Theorem 11: mean interactions, Waiting vs Gathering vs WG(τ*)",
		Columns: []string{"n", "waiting", "gathering", "wg(τ*)", "gathering/wg"},
	}
	var xs, gys, wys []float64
	var lastRatio float64
	for _, n := range ns {
		var wWait, wGather, wWG stats.Welford
		for i := 0; i < rep; i++ {
			advW, _, err := adversary.Randomized(n, src.Uint64())
			if err != nil {
				return nil, err
			}
			resW, err := core.RunOnce(core.Config{N: n, MaxInteractions: waitingCap(n)}, algorithms.Waiting{}, advW)
			if err != nil {
				return nil, err
			}
			advG, _, err := adversary.Randomized(n, src.Uint64())
			if err != nil {
				return nil, err
			}
			resG, err := core.RunOnce(core.Config{N: n, MaxInteractions: gatheringCap(n)}, algorithms.NewGathering(), advG)
			if err != nil {
				return nil, err
			}
			resWG, err := runWaitingGreedy(n, algorithms.TauStar(n), src.Uint64())
			if err != nil {
				return nil, err
			}
			if !resW.Terminated || !resG.Terminated || !resWG.Terminated {
				return nil, fmt.Errorf("experiments: E13 n=%d some run did not terminate", n)
			}
			wWait.Add(float64(resW.Duration + 1))
			wGather.Add(float64(resG.Duration + 1))
			wWG.Add(float64(resWG.Duration + 1))
		}
		ratio := wGather.Mean() / wWG.Mean()
		lastRatio = ratio
		tb.AddRow(n, wWait.Mean(), wGather.Mean(), wWG.Mean(), ratio)
		xs = append(xs, float64(n))
		gys = append(gys, wGather.Mean())
		wys = append(wys, wWG.Mean())
		cfg.progressf("E13 n=%d g/wg=%.2f\n", n, ratio)
	}
	r.Tables = append(r.Tables, tb)
	r.exponentBand("gathering exponent", xs, gys, 1.85, 2.15)
	r.exponentBand("waiting-greedy exponent", xs, wys, 1.3, 1.85)
	r.check("WG beats Gathering at largest n", lastRatio > 1.2,
		"gathering/wg %.2f", lastRatio, "> 1.2 (meetTime knowledge pays off)")
	return r, nil
}

func e14() Experiment {
	return Experiment{
		ID:         "E14",
		Name:       "Future knowledge: Θ(n log n) under the randomized adversary",
		PaperClaim: "Corollary 1: DODA(future) terminates in Θ(n log n) interactions w.h.p.",
		Run:        runE14,
	}
}

func runE14(cfg Config) (*Report, error) {
	r := &Report{ID: "E14", Name: "Future knowledge: Θ(n log n) under the randomized adversary",
		PaperClaim: "Corollary 1: gossip futures (O(n log n)) then aggregate optimally (O(n log n))"}
	ns := sizes(cfg, []int{12, 16, 24, 32}, []int{16, 32, 64, 128})
	rep := reps(cfg, 25, 100)
	src := rng.New(cfg.Seed ^ 0x14)
	tb := &Table{
		Title:   "Corollary 1: future-optimal duration vs (n-1)H(n-1)",
		Columns: []string{"n", "mean duration", "(n-1)H(n-1)", "ratio"},
	}
	var xs, ys []float64
	for _, n := range ns {
		var w stats.Welford
		for i := 0; i < rep; i++ {
			_, stream, err := adversary.Randomized(n, src.Uint64())
			if err != nil {
				return nil, err
			}
			length := int(10*expectedOffline(n)) + 500
			prefix := stream.Prefix(length)
			know, err := knowledge.NewBundle(knowledge.WithFutures(prefix))
			if err != nil {
				return nil, err
			}
			adv, err := adversary.NewOblivious("randomized-prefix", prefix)
			if err != nil {
				return nil, err
			}
			res, err := core.RunOnce(core.Config{N: n, MaxInteractions: length, Know: know},
				algorithms.NewFutureOptimal(length), adv)
			if err != nil {
				return nil, err
			}
			if !res.Terminated {
				return nil, fmt.Errorf("experiments: E14 n=%d did not terminate", n)
			}
			w.Add(float64(res.Duration + 1))
		}
		expected := expectedOffline(n)
		tb.AddRow(n, w.Mean(), expected, w.Mean()/expected)
		xs = append(xs, float64(n))
		ys = append(ys, w.Mean())
		// Gossip + schedule is a small constant number of broadcast
		// phases: ratio to one convergecast stays bounded.
		r.check(fmt.Sprintf("n=%d within constant of n log n", n),
			stats.WithinFactor(w.Mean(), expected, 5),
			"ratio %.2f", w.Mean()/expected, "within 5x of (n-1)H(n-1)")
		cfg.progressf("E14 n=%d mean=%.0f\n", n, w.Mean())
	}
	// n·H(n) has local log-log slope 1 + 1/H(n) ≈ 1.28 at these sizes;
	// the gossip-completion constant drifts it slightly higher. Anything
	// clearly below Gathering's 2 confirms the Θ(n log n) claim.
	r.exponentBand("future-optimal exponent", xs, ys, 0.9, 1.6)
	r.Tables = append(r.Tables, tb)
	return r, nil
}
