package experiments

// Extension experiments beyond the paper's stated results:
//
//   X1 makes the paper's concluding open question 3 executable — "can
//   randomized adversaries that use a non-uniform probabilistic
//   distribution alter significantly the bounds presented here?" — by
//   sweeping skewed interaction distributions.
//
//   X2 summarises the paper's whole message in one table: the knowledge
//   hierarchy. More knowledge, strictly faster aggregation:
//   none (Waiting, Gathering) → meetTime (Waiting Greedy) → future
//   (future-gossip) → full sequence (offline optimum).

import (
	"fmt"
	"strings"

	"doda/internal/adversary"
	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/knowledge"
	"doda/internal/rng"
	"doda/internal/stats"
)

// formatMeans renders a slice of means compactly for check messages.
func formatMeans(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = formatFloat(x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func x1() Experiment {
	return Experiment{
		ID:         "X1",
		Name:       "Non-uniform randomized adversaries (open question 3)",
		PaperClaim: "§5 Q3: do non-uniform interaction distributions alter the bounds? (empirical answer: yes, via sink reachability)",
		Run:        runX1,
	}
}

func runX1(cfg Config) (*Report, error) {
	r := &Report{ID: "X1", Name: "Non-uniform randomized adversaries (open question 3)",
		PaperClaim: "§5 Q3: skewing the interaction distribution rescales the n² bounds by the sink's contact probability"}
	n := 64
	if cfg.scale() == ScaleFull {
		n = 128
	}
	rep := reps(cfg, 80, 250)
	src := rng.New(cfg.Seed ^ 0x51)

	// Part A: scale only the sink's weight. Waiting's expectation is a
	// sum of geometric sink-meeting times, so its mean must scale
	// inversely with the sink's contact probability.
	tbA := &Table{
		Title:   fmt.Sprintf("Sink-weight sweep at n=%d (weights uniform except the sink)", n),
		Columns: []string{"sink factor", "waiting mean", "gathering mean", "waiting vs uniform"},
	}
	factors := []float64{0.25, 1, 4}
	waitingMeans := make([]float64, 0, len(factors))
	var uniformWaiting float64
	for _, factor := range factors {
		ws, err := adversary.SinkScaledWeights(n, 0, factor)
		if err != nil {
			return nil, err
		}
		var wWait, wGather stats.Welford
		for i := 0; i < rep; i++ {
			advW, _, err := adversary.Weighted(ws, src.Uint64())
			if err != nil {
				return nil, err
			}
			resW, err := core.RunOnce(core.Config{N: n, MaxInteractions: 40 * waitingCap(n)},
				algorithms.Waiting{}, advW)
			if err != nil {
				return nil, err
			}
			advG, _, err := adversary.Weighted(ws, src.Uint64())
			if err != nil {
				return nil, err
			}
			resG, err := core.RunOnce(core.Config{N: n, MaxInteractions: 40 * waitingCap(n)},
				algorithms.NewGathering(), advG)
			if err != nil {
				return nil, err
			}
			if !resW.Terminated || !resG.Terminated {
				return nil, fmt.Errorf("experiments: X1 factor=%v did not terminate", factor)
			}
			wWait.Add(float64(resW.Duration + 1))
			wGather.Add(float64(resG.Duration + 1))
		}
		if factor == 1 {
			uniformWaiting = wWait.Mean()
		}
		waitingMeans = append(waitingMeans, wWait.Mean())
		tbA.AddRow(factor, wWait.Mean(), wGather.Mean(), "-")
		cfg.progressf("X1 factor=%v waiting=%.0f\n", factor, wWait.Mean())
	}
	// Fill the comparison column now that the uniform baseline is known.
	for i := range tbA.Rows {
		tbA.Rows[i][3] = formatFloat(waitingMeans[i] / uniformWaiting)
	}
	r.Tables = append(r.Tables, tbA)
	r.check("waiting is monotone in sink reachability",
		waitingMeans[0] > waitingMeans[1] && waitingMeans[1] > waitingMeans[2],
		"means %s", formatMeans(waitingMeans), "strictly decreasing in the sink factor")
	// A 4x easier sink should speed Waiting up by roughly the same
	// factor (each term of the paper's sum is a geometric sink-meeting
	// time): accept 2x-8x.
	speedup := waitingMeans[1] / waitingMeans[2]
	r.check("4x sink weight gives ~4x waiting speedup",
		speedup > 2 && speedup < 8,
		"speedup %.2f", speedup, "within [2, 8] (≈4 expected)")

	// Part B: Zipf-distributed weights with the sink as the heaviest
	// node. The sink becomes easier to reach than under uniform, so
	// aggregation accelerates — the bounds are not distribution-free.
	tbB := &Table{
		Title:   fmt.Sprintf("Zipf sweep at n=%d (w_i = (i+1)^-α, sink = heaviest node)", n),
		Columns: []string{"alpha", "gathering mean", "vs uniform (n-1)²"},
	}
	alphas := []float64{0, 0.5, 1}
	gatherMeans := make([]float64, 0, len(alphas))
	for _, alpha := range alphas {
		ws, err := adversary.ZipfWeights(n, alpha)
		if err != nil {
			return nil, err
		}
		var w stats.Welford
		for i := 0; i < rep; i++ {
			adv, _, err := adversary.Weighted(ws, src.Uint64())
			if err != nil {
				return nil, err
			}
			res, err := core.RunOnce(core.Config{N: n, MaxInteractions: 40 * waitingCap(n)},
				algorithms.NewGathering(), adv)
			if err != nil {
				return nil, err
			}
			if !res.Terminated {
				return nil, fmt.Errorf("experiments: X1 alpha=%v did not terminate", alpha)
			}
			w.Add(float64(res.Duration + 1))
		}
		gatherMeans = append(gatherMeans, w.Mean())
		tbB.AddRow(alpha, w.Mean(), w.Mean()/expectedGathering(n))
		cfg.progressf("X1 alpha=%v gathering=%.0f\n", alpha, w.Mean())
	}
	r.Tables = append(r.Tables, tbB)
	r.check("heavy sink accelerates gathering",
		gatherMeans[len(gatherMeans)-1] < gatherMeans[0],
		"means %s", formatMeans(gatherMeans), "alpha=1 below alpha=0 (uniform)")
	r.note("answer to §5 Q3: yes — the Θ(n²) constants follow the sink's contact probability, so non-uniform adversaries rescale every randomized bound")
	return r, nil
}

func x2() Experiment {
	return Experiment{
		ID:         "X2",
		Name:       "The knowledge hierarchy in one table",
		PaperClaim: "More knowledge, faster aggregation: none → meetTime → future → full sequence",
		Run:        runX2,
	}
}

func runX2(cfg Config) (*Report, error) {
	r := &Report{ID: "X2", Name: "The knowledge hierarchy in one table",
		PaperClaim: "Θ(n²) with no knowledge (Cor. 2), Θ(n^{3/2}√log n) with meetTime (Thm 11), Θ(n log n) with future (Cor. 1) or full knowledge (Thm 8)"}
	n := 48
	if cfg.scale() == ScaleFull {
		n = 128
	}
	rep := reps(cfg, 40, 150)
	src := rng.New(cfg.Seed ^ 0x52)
	tb := &Table{
		Title:   fmt.Sprintf("Mean interactions to aggregate at n=%d (%d runs each)", n, rep),
		Columns: []string{"algorithm", "knowledge", "mean interactions", "theory"},
	}

	type rung struct {
		name   string
		know   string
		theory string
		run    func(seed uint64) (core.Result, error)
	}
	horizon := int(12*expectedOffline(n)) + 1000
	rungs := []rung{
		{name: "waiting", know: "none", theory: "n(n-1)/2·H(n-1)", run: func(seed uint64) (core.Result, error) {
			adv, _, err := adversary.Randomized(n, seed)
			if err != nil {
				return core.Result{}, err
			}
			return core.RunOnce(core.Config{N: n, MaxInteractions: waitingCap(n)}, algorithms.Waiting{}, adv)
		}},
		{name: "gathering", know: "none", theory: "(n-1)²", run: func(seed uint64) (core.Result, error) {
			adv, _, err := adversary.Randomized(n, seed)
			if err != nil {
				return core.Result{}, err
			}
			return core.RunOnce(core.Config{N: n, MaxInteractions: gatheringCap(n)}, algorithms.NewGathering(), adv)
		}},
		{name: "waiting-greedy(τ*)", know: "meetTime", theory: "n^{3/2}√log n", run: func(seed uint64) (core.Result, error) {
			return runWaitingGreedy(n, algorithms.TauStar(n), seed)
		}},
		{name: "future-optimal", know: "future", theory: "Θ(n log n)", run: func(seed uint64) (core.Result, error) {
			_, stream, err := adversary.Randomized(n, seed)
			if err != nil {
				return core.Result{}, err
			}
			prefix := stream.Prefix(horizon)
			know, err := knowledge.NewBundle(knowledge.WithFutures(prefix))
			if err != nil {
				return core.Result{}, err
			}
			adv, err := adversary.NewOblivious("randomized-prefix", prefix)
			if err != nil {
				return core.Result{}, err
			}
			return core.RunOnce(core.Config{N: n, MaxInteractions: horizon, Know: know},
				algorithms.NewFutureOptimal(horizon), adv)
		}},
		{name: "full-knowledge", know: "full sequence", theory: "(n-1)·H(n-1)", run: func(seed uint64) (core.Result, error) {
			adv, stream, err := adversary.Randomized(n, seed)
			if err != nil {
				return core.Result{}, err
			}
			know, err := knowledge.NewBundle(knowledge.WithFullSequence(stream))
			if err != nil {
				return core.Result{}, err
			}
			return core.RunOnce(core.Config{N: n, MaxInteractions: horizon, Know: know},
				algorithms.NewFullKnowledge(horizon), adv)
		}},
	}

	means := make([]float64, 0, len(rungs))
	for _, rg := range rungs {
		var w stats.Welford
		for i := 0; i < rep; i++ {
			res, err := rg.run(src.Uint64())
			if err != nil {
				return nil, err
			}
			if !res.Terminated {
				return nil, fmt.Errorf("experiments: X2 %s did not terminate", rg.name)
			}
			w.Add(float64(res.Duration + 1))
		}
		means = append(means, w.Mean())
		tb.AddRow(rg.name, rg.know, w.Mean(), rg.theory)
		cfg.progressf("X2 %s mean=%.0f\n", rg.name, w.Mean())
	}
	r.Tables = append(r.Tables, tb)
	for i := 1; i < len(rungs); i++ {
		r.check(fmt.Sprintf("%s faster than %s", rungs[i].name, rungs[i-1].name),
			means[i] < means[i-1],
			"%.0f", means[i], fmt.Sprintf("< %.0f", means[i-1]))
	}
	return r, nil
}
