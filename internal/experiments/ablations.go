package experiments

// Ablations A1-A2: design-choice probes called out in DESIGN.md.

import (
	"fmt"
	"math"

	"doda/internal/adversary"
	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/rng"
	"doda/internal/stats"
)

func a1() Experiment {
	return Experiment{
		ID:         "A1",
		Name:       "Gathering tie-break ablation",
		PaperClaim: "The (n-1)² expectation does not depend on which data owner receives",
		Run:        runA1,
	}
}

func runA1(cfg Config) (*Report, error) {
	r := &Report{ID: "A1", Name: "Gathering tie-break ablation",
		PaperClaim: "Theorem 9's Gathering analysis counts owner pairs only; the receiver choice is irrelevant"}
	n := 32
	if cfg.scale() == ScaleFull {
		n = 96
	}
	rep := reps(cfg, 150, 500)
	src := rng.New(cfg.Seed ^ 0xa1)
	tb := &Table{
		Title:   fmt.Sprintf("Gathering variants at n=%d", n),
		Columns: []string{"tie-break", "mean", "(n-1)²", "ratio"},
	}
	variants := []struct {
		name string
		make func() (core.Algorithm, error)
	}{
		{name: "first-by-id", make: func() (core.Algorithm, error) { return algorithms.NewGathering(), nil }},
		{name: "second-by-id", make: func() (core.Algorithm, error) {
			return algorithms.NewGatheringTieBreak(algorithms.SecondByID, 0)
		}},
		{name: "random", make: func() (core.Algorithm, error) {
			return algorithms.NewGatheringTieBreak(algorithms.RandomTieBreak, src.Uint64())
		}},
	}
	for _, v := range variants {
		var w stats.Welford
		for i := 0; i < rep; i++ {
			alg, err := v.make()
			if err != nil {
				return nil, err
			}
			adv, _, err := adversary.Randomized(n, src.Uint64())
			if err != nil {
				return nil, err
			}
			res, err := core.RunOnce(core.Config{N: n, MaxInteractions: gatheringCap(n)}, alg, adv)
			if err != nil {
				return nil, err
			}
			if !res.Terminated {
				return nil, fmt.Errorf("experiments: A1 %s did not terminate", v.name)
			}
			w.Add(float64(res.Duration + 1))
		}
		expected := expectedGathering(n)
		tb.AddRow(v.name, w.Mean(), expected, w.Mean()/expected)
		r.meanRatioBand(fmt.Sprintf("%s mean", v.name), w.Mean(), expected, 0.9, 1.1)
		cfg.progressf("A1 %s mean=%.0f\n", v.name, w.Mean())
	}
	r.Tables = append(r.Tables, tb)
	return r, nil
}

func a2() Experiment {
	return Experiment{
		ID:         "A2",
		Name:       "Waiting Greedy τ sensitivity",
		PaperClaim: "Success within τ degrades below τ* and saturates above it",
		Run:        runA2,
	}
}

func runA2(cfg Config) (*Report, error) {
	r := &Report{ID: "A2", Name: "Waiting Greedy τ sensitivity",
		PaperClaim: "Corollary 3's τ* = n^{3/2}√log n is the knee of the success curve"}
	n := 64
	if cfg.scale() == ScaleFull {
		n = 192
	}
	rep := reps(cfg, 60, 200)
	src := rng.New(cfg.Seed ^ 0xa2)
	star := algorithms.TauStar(n)
	factors := []float64{0.25, 0.5, 1, 2, 4}
	tb := &Table{
		Title:   fmt.Sprintf("WGτ at n=%d, τ* = %d", n, star),
		Columns: []string{"τ/τ*", "τ", "success rate", "mean duration"},
	}
	rates := make([]float64, 0, len(factors))
	for _, c := range factors {
		tau := int(math.Round(c * float64(star)))
		success := 0
		var durations stats.Welford
		for i := 0; i < rep; i++ {
			res, err := runWaitingGreedy(n, tau, src.Uint64())
			if err != nil {
				return nil, err
			}
			if res.Terminated {
				durations.Add(float64(res.Duration + 1))
				if res.Duration < tau {
					success++
				}
			}
		}
		rate := float64(success) / float64(rep)
		rates = append(rates, rate)
		tb.AddRow(c, tau, rate, durations.Mean())
		cfg.progressf("A2 c=%.2f rate=%.2f\n", c, rate)
	}
	r.Tables = append(r.Tables, tb)
	r.check("success rate is monotone in τ", isNonDecreasing(rates),
		"rates %v", rates, "non-decreasing in τ")
	r.check("τ* succeeds w.h.p.", rates[2] >= 0.8, "rate %.3f", rates[2], ">= 0.8 at τ*")
	r.check("τ*/4 fails often", rates[0] <= 0.5, "rate %.3f", rates[0], "<= 0.5 at τ*/4")
	return r, nil
}

func isNonDecreasing(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1]-0.05 { // tolerate Monte-Carlo jitter
			return false
		}
	}
	return true
}
