package experiments

import (
	"fmt"
	"math"

	"doda/internal/core"
	"doda/internal/rng"
	"doda/internal/seq"
	"doda/internal/stats"
)

// recording wraps an adversary and materialises the interactions it
// actually emitted, so the offline clock can be evaluated on exactly the
// sequence an adaptive adversary produced.
type recording struct {
	inner core.Adversary
	n     int
	steps []seq.Interaction
}

func newRecording(inner core.Adversary, n int) *recording {
	return &recording{inner: inner, n: n}
}

// Name implements core.Adversary.
func (r *recording) Name() string { return r.inner.Name() + "+recorded" }

// Next implements core.Adversary, recording emissions.
func (r *recording) Next(t int, view core.ExecView) (seq.Interaction, bool) {
	it, ok := r.inner.Next(t, view)
	if ok {
		r.steps = append(r.steps, it)
	}
	return it, ok
}

// Sequence returns the emitted prefix as a finite sequence.
func (r *recording) Sequence() (*seq.Sequence, error) {
	return seq.NewSequence(r.n, r.steps)
}

// coinFlip is a representative oblivious randomized algorithm for the
// Theorem 2 experiment: whenever two data owners meet, it transmits with
// probability p — to the sink when present, otherwise to the
// smaller-identifier node. Memoryless (oblivious) and randomized, exactly
// the class Theorem 2 quantifies over.
type coinFlip struct {
	p   float64
	src *rng.Source
}

func newCoinFlip(p float64, seed uint64) *coinFlip {
	return &coinFlip{p: p, src: rng.New(seed)}
}

// Name implements core.Algorithm.
func (c *coinFlip) Name() string { return fmt.Sprintf("coin-flip(p=%.2f)", c.p) }

// Oblivious implements core.Algorithm.
func (c *coinFlip) Oblivious() bool { return true }

// Setup implements core.Algorithm.
func (c *coinFlip) Setup(*core.Env) error { return nil }

// Decide implements core.Algorithm.
func (c *coinFlip) Decide(env *core.Env, it seq.Interaction, _ int) core.Decision {
	if !c.src.Bernoulli(c.p) {
		return core.NoTransfer
	}
	switch env.Sink {
	case it.U:
		return core.FirstReceives
	case it.V:
		return core.SecondReceives
	default:
		return core.FirstReceives
	}
}

// meanRatioBand checks mean/expected ∈ [lo, hi] and records the verdict.
func (r *Report) meanRatioBand(name string, mean, expected, lo, hi float64) {
	ratio := stats.Ratio(mean, expected)
	r.check(name, ratio >= lo && ratio <= hi, "ratio %.3f", ratio,
		fmt.Sprintf("within [%.2f, %.2f]", lo, hi))
}

// exponentBand fits y ~ x^e on a sweep and checks e ∈ [lo, hi].
func (r *Report) exponentBand(name string, xs, ys []float64, lo, hi float64) {
	fit, err := stats.LogLogFit(xs, ys)
	if err != nil {
		r.check(name, false, "fit error: %v", err, "log-log fit")
		return
	}
	r.check(name, fit.Slope >= lo && fit.Slope <= hi, "exponent %.3f", fit.Slope,
		fmt.Sprintf("within [%.2f, %.2f]", lo, hi))
}

// sizes returns the node-count sweep for the scale.
func sizes(cfg Config, quick, full []int) []int {
	if cfg.scale() == ScaleFull {
		return full
	}
	return quick
}

// reps returns the repetition count for the scale.
func reps(cfg Config, quick, full int) int {
	if cfg.scale() == ScaleFull {
		return full
	}
	return quick
}

// expectedGathering is the paper's exact expectation (n-1)² for the
// Gathering algorithm's interaction count (Theorem 9).
func expectedGathering(n int) float64 {
	return float64(n-1) * float64(n-1)
}

// expectedWaiting is the paper's expectation n(n-1)/2 · H(n-1) for
// Waiting (Theorem 9).
func expectedWaiting(n int) float64 {
	return float64(n) * float64(n-1) / 2 * stats.Harmonic(n-1)
}

// expectedOffline is the paper's expectation (n-1)·H(n-1) for the optimal
// offline algorithm (Theorem 8's broadcast-reversal argument).
func expectedOffline(n int) float64 {
	return float64(n-1) * stats.Harmonic(n-1)
}

// gatheringCap is a safe interaction budget for Gathering-like runs.
func gatheringCap(n int) int {
	return 10*(n-1)*(n-1) + 4000
}

// waitingCap is a safe interaction budget for Waiting runs.
func waitingCap(n int) int {
	return int(12*expectedWaiting(n)) + 4000
}

// offlineHorizon is a safe window for one optimal convergecast.
func offlineHorizon(n int) int {
	return int(16*expectedOffline(n)) + 256
}

// lnF computes natural log as float of an int.
func lnF(n int) float64 { return math.Log(float64(n)) }
