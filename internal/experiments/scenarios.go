package experiments

// Scenario-sweep experiments: run the paper's algorithms against the
// workload generators of internal/scenario instead of the paper's own
// adversaries.
//
//   S1 sweeps every generative registry scenario under Waiting and
//   Gathering and checks the orderings that the contact structure
//   predicts: a Zipf-heavy sink accelerates aggregation, community
//   structure throttles it (cross-community merges are rare), and
//   uniform node churn leaves the *interaction-count* cost roughly
//   unchanged — time in the DODA model is counted in interactions, and
//   conditioning each interaction on both endpoints being online
//   rescales the numerator and denominator alike.
//
//   S2 sweeps the community model's mixing parameter: the scarcer the
//   cross-community contacts, the longer Gathering takes, monotonically.

import (
	"fmt"

	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/rng"
	"doda/internal/scenario"
	"doda/internal/stats"
)

func s1() Experiment {
	return Experiment{
		ID:         "S1",
		Name:       "Scenario sweep: algorithms × workload generators",
		PaperClaim: "beyond §4's uniform adversary: contact structure (skew, communities, churn) reshapes the Θ(n²) constants",
		Run:        runS1,
	}
}

// s1Workload builds one seeded workload for a registry scenario.
func s1Workload(name string, n int, seed uint64, params map[string]string) (*scenario.Workload, error) {
	spec, ok := scenario.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("experiments: scenario %q not registered", name)
	}
	return spec.Build(n, seed, params)
}

func runS1(cfg Config) (*Report, error) {
	r := &Report{ID: "S1", Name: "Scenario sweep: algorithms × workload generators",
		PaperClaim: "contact structure (skew, communities, churn) reshapes the Θ(n²) constants"}
	n := 32
	if cfg.scale() == ScaleFull {
		n = 64
	}
	rep := reps(cfg, 20, 80)
	src := rng.New(cfg.Seed ^ 0x53)

	sweep := []struct {
		name   string
		params map[string]string
	}{
		{name: "uniform"},
		{name: "zipf", params: map[string]string{"alpha": "1"}},
		{name: "edge-markovian", params: map[string]string{"p-up": "0.05", "p-down": "0.2"}},
		{name: "community", params: map[string]string{"communities": "4", "p-intra": "0.9"}},
		{name: "churn", params: map[string]string{"p-fail": "0.1", "p-recover": "0.1"}},
	}
	tb := &Table{
		Title:   fmt.Sprintf("Mean interactions to aggregate at n=%d (%d runs per cell)", n, rep),
		Columns: []string{"scenario", "waiting mean", "gathering mean", "gathering vs uniform"},
	}
	cap := 400*n*n + 40*waitingCap(n)
	gatherMeans := make(map[string]float64, len(sweep))
	for _, sc := range sweep {
		var wWait, wGather stats.Welford
		for i := 0; i < rep; i++ {
			for _, alg := range []core.Algorithm{algorithms.Waiting{}, algorithms.NewGathering()} {
				w, err := s1Workload(sc.name, n, src.Uint64(), sc.params)
				if err != nil {
					return nil, err
				}
				res, err := core.RunOnce(core.Config{N: w.N, MaxInteractions: cap}, alg, w.Adversary)
				if err != nil {
					return nil, err
				}
				if !res.Terminated {
					return nil, fmt.Errorf("experiments: S1 %s/%s did not terminate", sc.name, alg.Name())
				}
				if alg.Oblivious() && res.Transmissions != w.N-1 {
					return nil, fmt.Errorf("experiments: S1 %s lost data (%d transmissions)", sc.name, res.Transmissions)
				}
				if _, isWaiting := alg.(algorithms.Waiting); isWaiting {
					wWait.Add(float64(res.Duration + 1))
				} else {
					wGather.Add(float64(res.Duration + 1))
				}
			}
		}
		gatherMeans[sc.name] = wGather.Mean()
		tb.AddRow(sc.name, wWait.Mean(), wGather.Mean(), "-")
		cfg.progressf("S1 %s waiting=%.0f gathering=%.0f\n", sc.name, wWait.Mean(), wGather.Mean())
	}
	for i, sc := range sweep {
		tb.Rows[i][3] = formatFloat(gatherMeans[sc.name] / gatherMeans["uniform"])
	}
	r.Tables = append(r.Tables, tb)

	r.check("zipf-heavy sink accelerates gathering",
		gatherMeans["zipf"] < gatherMeans["uniform"],
		"%.0f", gatherMeans["zipf"], fmt.Sprintf("< %.0f (uniform)", gatherMeans["uniform"]))
	r.check("community structure throttles gathering",
		gatherMeans["community"] > 1.5*gatherMeans["uniform"],
		"%.0f", gatherMeans["community"], fmt.Sprintf("> 1.5× %.0f (uniform)", gatherMeans["uniform"]))
	churnRatio := gatherMeans["churn"] / gatherMeans["uniform"]
	r.check("uniform churn is interaction-count neutral",
		churnRatio > 0.4 && churnRatio < 2.5,
		"ratio %.2f", churnRatio, "within [0.4, 2.5] (≈1 expected)")
	r.note("churn neutrality is a model artifact worth knowing: duration counts interactions, and conditioning every interaction on both endpoints being online rescales meeting rates and opportunities alike")
	return r, nil
}

func s2() Experiment {
	return Experiment{
		ID:         "S2",
		Name:       "Community mixing sweep",
		PaperClaim: "the scarcer the cross-community contacts, the slower the aggregation (monotone in p-intra)",
		Run:        runS2,
	}
}

func runS2(cfg Config) (*Report, error) {
	r := &Report{ID: "S2", Name: "Community mixing sweep",
		PaperClaim: "gathering duration grows monotonically as cross-community contacts become rare"}
	n := 32
	if cfg.scale() == ScaleFull {
		n = 64
	}
	rep := reps(cfg, 20, 80)
	src := rng.New(cfg.Seed ^ 0x54)
	pIntras := []string{"0.5", "0.9", "0.99"}
	tb := &Table{
		Title:   fmt.Sprintf("Gathering at n=%d, 4 communities (%d runs per point)", n, rep),
		Columns: []string{"p-intra", "gathering mean", "vs uniform (n-1)²"},
	}
	cap := 4000*n*n + 40000
	means := make([]float64, 0, len(pIntras))
	for _, p := range pIntras {
		var w stats.Welford
		for i := 0; i < rep; i++ {
			wl, err := s1Workload("community", n, src.Uint64(),
				map[string]string{"communities": "4", "p-intra": p})
			if err != nil {
				return nil, err
			}
			res, err := core.RunOnce(core.Config{N: n, MaxInteractions: cap},
				algorithms.NewGathering(), wl.Adversary)
			if err != nil {
				return nil, err
			}
			if !res.Terminated {
				return nil, fmt.Errorf("experiments: S2 p-intra=%s did not terminate", p)
			}
			w.Add(float64(res.Duration + 1))
		}
		means = append(means, w.Mean())
		tb.AddRow(p, w.Mean(), w.Mean()/expectedGathering(n))
		cfg.progressf("S2 p-intra=%s gathering=%.0f\n", p, w.Mean())
	}
	r.Tables = append(r.Tables, tb)
	for i := 1; i < len(means); i++ {
		r.check(fmt.Sprintf("p-intra=%s slower than %s", pIntras[i], pIntras[i-1]),
			means[i] > means[i-1],
			"%.0f", means[i], fmt.Sprintf("> %.0f", means[i-1]))
	}
	return r, nil
}
