package experiments

// Scenario-sweep experiments: run the paper's algorithms against the
// workload generators of internal/scenario instead of the paper's own
// adversaries.
//
//   S1 sweeps every generative registry scenario under Waiting and
//   Gathering and checks the orderings that the contact structure
//   predicts: a Zipf-heavy sink accelerates aggregation, community
//   structure throttles it (cross-community merges are rare), and
//   uniform node churn leaves the *interaction-count* cost roughly
//   unchanged — time in the DODA model is counted in interactions, and
//   conditioning each interaction on both endpoints being online
//   rescales the numerator and denominator alike.
//
//   S2 sweeps the community model's mixing parameter: the scarcer the
//   cross-community contacts, the longer Gathering takes, monotonically.
//
// Both experiments delegate their grids to internal/sweep's sharded
// engine instead of hand-rolling per-adversary loops: cells run across
// all cores with per-cell deterministic seeds, so the reports stay
// reproducible for any worker count.

import (
	"fmt"
	"path/filepath"
	"strings"

	"doda/internal/sweep"
	"doda/internal/sweepd"
)

func s1() Experiment {
	return Experiment{
		ID:         "S1",
		Name:       "Scenario sweep: algorithms × workload generators",
		PaperClaim: "beyond §4's uniform adversary: contact structure (skew, communities, churn) reshapes the Θ(n²) constants",
		Run:        runS1,
	}
}

// runGrid executes one experiment grid, sharded across the cores. With
// cfg.CheckpointDir set it runs through the checkpointed sweep service —
// cells journal to <dir>/<name> and a restarted suite resumes past them
// (the directory keys on the experiment, the grid fingerprint rejects
// stale journals if the grid itself changed) — otherwise through plain
// sweep.Run. Results are identical either way.
func runGrid(cfg Config, name string, grid sweep.Grid) ([]sweep.CellResult, error) {
	if cfg.CheckpointDir == "" {
		results, _, err := sweep.Run(grid, sweep.Options{})
		return results, err
	}
	dir := filepath.Join(cfg.CheckpointDir, strings.ToLower(name))
	results, _, err := sweepd.Run(grid, dir, sweepd.Options{Resume: true})
	return results, err
}

// runSweep runs a grid via runGrid and indexes the cell results by
// (scenario name, algorithm), failing on any unterminated replica — the
// invariant both scenario experiments demand.
func runSweep(cfg Config, name string, grid sweep.Grid) (map[string]map[string]sweep.CellResult, error) {
	results, err := runGrid(cfg, name, grid)
	if err != nil {
		return nil, err
	}
	byCell := make(map[string]map[string]sweep.CellResult)
	for _, res := range results {
		if res.Terminated != res.Replicas {
			return nil, fmt.Errorf("experiments: %s/%s terminated only %d/%d replicas",
				res.Scenario, res.Algorithm, res.Terminated, res.Replicas)
		}
		if res.Transmissions != res.Replicas*(res.N-1) {
			return nil, fmt.Errorf("experiments: %s/%s lost data (%d transmissions)",
				res.Scenario, res.Algorithm, res.Transmissions)
		}
		if byCell[res.Scenario.Name] == nil {
			byCell[res.Scenario.Name] = make(map[string]sweep.CellResult)
		}
		byCell[res.Scenario.Name][res.Algorithm] = res
	}
	return byCell, nil
}

func runS1(cfg Config) (*Report, error) {
	r := &Report{ID: "S1", Name: "Scenario sweep: algorithms × workload generators",
		PaperClaim: "contact structure (skew, communities, churn) reshapes the Θ(n²) constants"}
	n := 32
	if cfg.scale() == ScaleFull {
		n = 64
	}
	rep := reps(cfg, 20, 80)

	scenarios := []sweep.ScenarioRef{
		{Name: "uniform"},
		{Name: "zipf", Params: map[string]string{"alpha": "1"}},
		{Name: "edge-markovian", Params: map[string]string{"p-up": "0.05", "p-down": "0.2"}},
		{Name: "community", Params: map[string]string{"communities": "4", "p-intra": "0.9"}},
		{Name: "churn", Params: map[string]string{"p-fail": "0.1", "p-recover": "0.1"}},
	}
	byCell, err := runSweep(cfg, "s1", sweep.Grid{
		Scenarios:       scenarios,
		Algorithms:      []string{"waiting", "gathering"},
		Sizes:           []int{n},
		Replicas:        rep,
		Seed:            cfg.Seed ^ 0x53,
		MaxInteractions: 400*n*n + 40*waitingCap(n),
	})
	if err != nil {
		return nil, err
	}

	tb := &Table{
		Title:   fmt.Sprintf("Mean interactions to aggregate at n=%d (%d runs per cell)", n, rep),
		Columns: []string{"scenario", "waiting mean", "gathering mean", "gathering vs uniform"},
	}
	gatherMeans := make(map[string]float64, len(scenarios))
	for _, sc := range scenarios {
		wait := byCell[sc.Name]["waiting"].Duration.Mean
		gather := byCell[sc.Name]["gathering"].Duration.Mean
		gatherMeans[sc.Name] = gather
		tb.AddRow(sc.Name, wait, gather, "-")
		cfg.progressf("S1 %s waiting=%.0f gathering=%.0f\n", sc.Name, wait, gather)
	}
	for i, sc := range scenarios {
		tb.Rows[i][3] = formatFloat(gatherMeans[sc.Name] / gatherMeans["uniform"])
	}
	r.Tables = append(r.Tables, tb)

	r.check("zipf-heavy sink accelerates gathering",
		gatherMeans["zipf"] < gatherMeans["uniform"],
		"%.0f", gatherMeans["zipf"], fmt.Sprintf("< %.0f (uniform)", gatherMeans["uniform"]))
	r.check("community structure throttles gathering",
		gatherMeans["community"] > 1.5*gatherMeans["uniform"],
		"%.0f", gatherMeans["community"], fmt.Sprintf("> 1.5× %.0f (uniform)", gatherMeans["uniform"]))
	churnRatio := gatherMeans["churn"] / gatherMeans["uniform"]
	r.check("uniform churn is interaction-count neutral",
		churnRatio > 0.4 && churnRatio < 2.5,
		"ratio %.2f", churnRatio, "within [0.4, 2.5] (≈1 expected)")
	r.note("churn neutrality is a model artifact worth knowing: duration counts interactions, and conditioning every interaction on both endpoints being online rescales meeting rates and opportunities alike")
	return r, nil
}

func s2() Experiment {
	return Experiment{
		ID:         "S2",
		Name:       "Community mixing sweep",
		PaperClaim: "the scarcer the cross-community contacts, the slower the aggregation (monotone in p-intra)",
		Run:        runS2,
	}
}

func runS2(cfg Config) (*Report, error) {
	r := &Report{ID: "S2", Name: "Community mixing sweep",
		PaperClaim: "gathering duration grows monotonically as cross-community contacts become rare"}
	n := 32
	if cfg.scale() == ScaleFull {
		n = 64
	}
	rep := reps(cfg, 20, 80)
	pIntras := []string{"0.5", "0.9", "0.99"}
	scenarios := make([]sweep.ScenarioRef, len(pIntras))
	for i, p := range pIntras {
		scenarios[i] = sweep.ScenarioRef{
			Name:   "community",
			Params: map[string]string{"communities": "4", "p-intra": p},
		}
	}
	results, err := runGrid(cfg, "s2", sweep.Grid{
		Scenarios:       scenarios,
		Algorithms:      []string{"gathering"},
		Sizes:           []int{n},
		Replicas:        rep,
		Seed:            cfg.Seed ^ 0x54,
		MaxInteractions: 4000*n*n + 40000,
	})
	if err != nil {
		return nil, err
	}

	tb := &Table{
		Title:   fmt.Sprintf("Gathering at n=%d, 4 communities (%d runs per point)", n, rep),
		Columns: []string{"p-intra", "gathering mean", "vs uniform (n-1)²"},
	}
	means := make([]float64, 0, len(pIntras))
	for i, res := range results {
		if res.Terminated != res.Replicas {
			return nil, fmt.Errorf("experiments: S2 p-intra=%s terminated only %d/%d replicas",
				pIntras[i], res.Terminated, res.Replicas)
		}
		means = append(means, res.Duration.Mean)
		tb.AddRow(pIntras[i], res.Duration.Mean, res.Duration.Mean/expectedGathering(n))
		cfg.progressf("S2 p-intra=%s gathering=%.0f\n", pIntras[i], res.Duration.Mean)
	}
	r.Tables = append(r.Tables, tb)
	for i := 1; i < len(means); i++ {
		r.check(fmt.Sprintf("p-intra=%s slower than %s", pIntras[i], pIntras[i-1]),
			means[i] > means[i-1],
			"%.0f", means[i], fmt.Sprintf("> %.0f", means[i-1]))
	}
	return r, nil
}
