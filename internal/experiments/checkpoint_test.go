package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"doda/internal/sweep"
)

// TestRunGridCheckpointedMatchesPlain pins the S1/S2 driver contract:
// with CheckpointDir set the grids run through the checkpointed sweep
// service, and the results — first run, and a resumed re-run that
// replays every cell from the journal — are identical to plain sweep.Run.
func TestRunGridCheckpointedMatchesPlain(t *testing.T) {
	grid := sweep.Grid{
		Scenarios:  []sweep.ScenarioRef{{Name: "uniform"}, {Name: "zipf", Params: map[string]string{"alpha": "1"}}},
		Algorithms: []string{"waiting", "gathering"},
		Sizes:      []int{8},
		Replicas:   3,
		Seed:       77,
	}
	plain, err := runGrid(Config{}, "S1", grid)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ck, err := runGrid(Config{CheckpointDir: dir}, "S1", grid)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, plain) {
		t.Error("checkpointed grid results differ from plain sweep.Run")
	}
	// The journal landed under the lower-cased experiment name.
	if fi, err := os.Stat(filepath.Join(dir, "s1")); err != nil || !fi.IsDir() {
		t.Fatalf("no checkpoint directory written: %v", err)
	}
	// A second run resumes: every cell replays from the journal, and the
	// results are still identical.
	again, err := runGrid(Config{CheckpointDir: dir}, "S1", grid)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, plain) {
		t.Error("resumed grid results differ from plain sweep.Run")
	}
}
