// Package experiments reproduces every quantitative and behavioural
// result of the paper as a runnable experiment. The paper has no
// numbered tables or figures — it is a theory paper — so each theorem,
// lemma and corollary becomes one experiment (E1–E14) whose report
// compares measured values against the paper's closed forms or
// asymptotic claims and issues a PASS/FAIL verdict. Two ablations (A1,
// A2) probe design choices, X1–X2 extend beyond the paper's
// adversaries, and S1–S2 sweep the scenario generators through
// internal/sweep.
//
// # Determinism
//
// Experiments are pure functions of Config: deterministic given (Scale,
// Seed), with every experiment deriving its own sub-seeds from
// Config.Seed so suites can run experiments concurrently (dodabench
// -parallel) without changing a single number. They run at two scales:
// ScaleQuick for tests and CI (seconds), ScaleFull for the
// paper-quality numbers recorded in EXPERIMENTS.md (minutes).
//
// # Checkpointing
//
// Config.CheckpointDir routes the sweep-backed experiments (S1/S2)
// through the resumable checkpoint service (internal/sweepd): grid
// cells journal under <dir>/<experiment> and a restarted suite resumes
// past them. Results are identical either way — the per-cell
// deterministic seed contract makes a resumed cell indistinguishable
// from a fresh one, and the grid fingerprint rejects a stale journal if
// the grid itself changed.
//
// The scaling-law reporting that rides on these experiments
// (`dodabench -report`) lives in internal/analysis; this package owns
// the point-wise PASS/FAIL verdicts.
package experiments
