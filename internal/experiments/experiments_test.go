package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableFormat(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"a", "bb"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("x", 12345.6)
	var buf bytes.Buffer
	if err := tb.Format(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "2.500") || !strings.Contains(out, "12346") {
		t.Errorf("output:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	tb.AddRow(1, 2)
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,b\n1,2\n" {
		t.Errorf("csv = %q", got)
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		give float64
		want string
	}{
		{give: 0, want: "0"},
		{give: 0.5, want: "0.500"},
		{give: 42.25, want: "42.2"},
		{give: 12345.9, want: "12346"},
	}
	for _, tt := range tests {
		if got := formatFloat(tt.give); got != tt.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestReportPassAndFormat(t *testing.T) {
	r := &Report{ID: "X", Name: "demo", PaperClaim: "claim"}
	r.check("first", true, "%v", 1, "1")
	if !r.Pass() {
		t.Error("should pass")
	}
	r.check("second", false, "%v", 2, "3")
	if r.Pass() {
		t.Error("should fail")
	}
	r.note("a note")
	var buf bytes.Buffer
	if err := r.Format(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FAIL", "demo", "claim", "a note", "[ok  ] first", "[FAIL] second"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestByIDAndIDs(t *testing.T) {
	e, ok := ByID("e10")
	if !ok || e.ID != "E10" {
		t.Errorf("ByID(e10) = %v,%v", e.ID, ok)
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id should not resolve")
	}
	ids := IDs()
	if len(ids) != len(All()) {
		t.Errorf("IDs() has %d entries, All() %d", len(ids), len(All()))
	}
}

func TestScaleString(t *testing.T) {
	if ScaleQuick.String() != "quick" || ScaleFull.String() != "full" {
		t.Error("scale names")
	}
	if Scale(9).String() != "Scale(9)" {
		t.Error("unknown scale")
	}
}

func TestAllHaveDistinctIDs(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range All() {
		if e.ID == "" || e.Name == "" || e.PaperClaim == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
}

// Per-experiment quick-scale runs. Each experiment's internal checks are
// the real assertions; the test fails if any check fails.
func runExperiment(t *testing.T, id string) {
	t.Helper()
	if testing.Short() {
		t.Skip("quick-scale experiment skipped in -short mode")
	}
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	rep, err := e.Run(Config{Scale: ScaleQuick, Seed: 12345})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		var buf bytes.Buffer
		if err := rep.Format(&buf); err != nil {
			t.Fatal(err)
		}
		t.Errorf("experiment %s failed:\n%s", id, buf.String())
	}
}

func TestE1(t *testing.T)  { runExperiment(t, "E1") }
func TestE2(t *testing.T)  { runExperiment(t, "E2") }
func TestE3(t *testing.T)  { runExperiment(t, "E3") }
func TestE4(t *testing.T)  { runExperiment(t, "E4") }
func TestE5(t *testing.T)  { runExperiment(t, "E5") }
func TestE6(t *testing.T)  { runExperiment(t, "E6") }
func TestE7(t *testing.T)  { runExperiment(t, "E7") }
func TestE8(t *testing.T)  { runExperiment(t, "E8") }
func TestE9(t *testing.T)  { runExperiment(t, "E9") }
func TestE10(t *testing.T) { runExperiment(t, "E10") }
func TestE11(t *testing.T) { runExperiment(t, "E11") }
func TestE12(t *testing.T) { runExperiment(t, "E12") }
func TestE13(t *testing.T) { runExperiment(t, "E13") }
func TestE14(t *testing.T) { runExperiment(t, "E14") }
func TestA1(t *testing.T)  { runExperiment(t, "A1") }
func TestA2(t *testing.T)  { runExperiment(t, "A2") }
func TestX1(t *testing.T)  { runExperiment(t, "X1") }
func TestX2(t *testing.T)  { runExperiment(t, "X2") }
func TestS1(t *testing.T)  { runExperiment(t, "S1") }
func TestS2(t *testing.T)  { runExperiment(t, "S2") }
