package algorithms

import (
	"strings"
	"testing"

	"doda/internal/adversary"
	"doda/internal/core"
	"doda/internal/graph"
	"doda/internal/knowledge"
	"doda/internal/seq"
)

// Stateful algorithm instances are single-run: reusing them would leak
// the previous run's plan or pending counters into the next execution.
// These tests pin the guard behaviour.

func TestSpanningTreeInstanceReuseRejected(t *testing.T) {
	g, err := graph.Path(4)
	if err != nil {
		t.Fatal(err)
	}
	know := mustBundle(t, knowledge.WithUnderlying(g))
	s := mustSequence(t, 4, []seq.Interaction{{U: 2, V: 3}, {U: 1, V: 2}, {U: 0, V: 1}})
	alg := NewSpanningTree()

	runWith := func(alg core.Algorithm) error {
		adv, err := adversary.NewOblivious("seq", s)
		if err != nil {
			t.Fatal(err)
		}
		_, err = core.RunOnce(core.Config{N: 4, MaxInteractions: s.Len(), Know: know}, alg, adv)
		return err
	}
	if err := runWith(alg); err != nil {
		t.Fatal(err)
	}
	err = runWith(alg)
	if err == nil || !strings.Contains(err.Error(), "single-run") {
		t.Errorf("reuse error = %v", err)
	}
}

func TestFullKnowledgeInstanceReuseRejected(t *testing.T) {
	s := mustSequence(t, 3, []seq.Interaction{{U: 1, V: 2}, {U: 0, V: 1}})
	know := mustBundle(t, knowledge.WithFullSequence(s))
	alg := NewFullKnowledge(s.Len())

	runWith := func(alg core.Algorithm) error {
		adv, err := adversary.NewOblivious("seq", s)
		if err != nil {
			t.Fatal(err)
		}
		_, err = core.RunOnce(core.Config{N: 3, MaxInteractions: s.Len(), Know: know}, alg, adv)
		return err
	}
	if err := runWith(alg); err != nil {
		t.Fatal(err)
	}
	if err := runWith(alg); err == nil || !strings.Contains(err.Error(), "single-run") {
		t.Errorf("reuse error = %v", err)
	}
}

func TestFutureOptimalInstanceReuseRejected(t *testing.T) {
	steps := []seq.Interaction{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 1},
	}
	s := mustSequence(t, 3, steps)
	know := mustBundle(t, knowledge.WithFutures(s))
	alg := NewFutureOptimal(s.Len())

	runWith := func(alg core.Algorithm) (core.Result, error) {
		adv, err := adversary.NewOblivious("seq", s)
		if err != nil {
			t.Fatal(err)
		}
		return core.RunOnce(core.Config{N: 3, MaxInteractions: s.Len(), Know: know}, alg, adv)
	}
	res, err := runWith(alg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("first run did not terminate: %+v", res)
	}
	if _, err := runWith(alg); err == nil || !strings.Contains(err.Error(), "single-run") {
		t.Errorf("reuse error = %v", err)
	}
}

// obliviousStatePoker claims to be oblivious but pokes node memory; the
// engine hands it a nil State slice, so the poke must be visible as nil.
type obliviousStatePoker struct {
	sawNilState bool
}

func (o *obliviousStatePoker) Name() string    { return "poker" }
func (o *obliviousStatePoker) Oblivious() bool { return true }
func (o *obliviousStatePoker) Setup(env *core.Env) error {
	o.sawNilState = env.State == nil
	return nil
}
func (o *obliviousStatePoker) Decide(*core.Env, seq.Interaction, int) core.Decision {
	return core.NoTransfer
}

func TestObliviousAlgorithmsGetNoState(t *testing.T) {
	s := mustSequence(t, 3, []seq.Interaction{{U: 0, V: 1}})
	adv, err := adversary.NewOblivious("seq", s)
	if err != nil {
		t.Fatal(err)
	}
	alg := &obliviousStatePoker{}
	if _, err := core.RunOnce(core.Config{N: 3, MaxInteractions: 1}, alg, adv); err != nil {
		t.Fatal(err)
	}
	if !alg.sawNilState {
		t.Error("oblivious algorithm was handed node memory")
	}
}

func TestStatefulAlgorithmsGetState(t *testing.T) {
	// FutureOptimal (non-oblivious) must receive a usable State slice.
	steps := []seq.Interaction{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 1},
	}
	s := mustSequence(t, 3, steps)
	know := mustBundle(t, knowledge.WithFutures(s))
	adv, err := adversary.NewOblivious("seq", s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunOnce(core.Config{N: 3, MaxInteractions: s.Len(), Know: know},
		NewFutureOptimal(s.Len()), adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Errorf("res = %+v", res)
	}
}
