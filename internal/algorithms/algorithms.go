// Package algorithms implements the DODA algorithms studied in the paper:
//
//   - Waiting (W ∈ D∅ODA): transmit only when interacting with the sink.
//   - Gathering (GA ∈ D∅ODA): transmit when interacting with the sink or
//     any node owning data; Corollary 2 shows it is optimal without
//     knowledge under the randomized adversary.
//   - Waiting Greedy (WGτ ∈ D∅ODA(meetTime)): the node with the greater
//     next-meeting time with the sink transmits, provided that meeting
//     time exceeds τ; Theorem 11 shows it is optimal in DODA(meetTime)
//     for τ = Θ(n^{3/2}√log n).
//   - SpanningTree (∈ D∅ODA(Ḡ)): wait for all children in a deterministic
//     spanning tree of the underlying graph, then transmit to the parent
//     (Theorems 4 and 5).
//   - FullKnowledge (∈ D∅ODA(full knowledge)): play the optimal offline
//     schedule (Theorem 8).
//   - FutureOptimal (∈ DODA(future)): gossip futures, agree on the time
//     everyone is informed, then play the optimal schedule computed on
//     the suffix (Theorem 6, Corollary 1).
package algorithms

import (
	"errors"
	"fmt"
	"math"

	"doda/internal/bitset"
	"doda/internal/core"
	"doda/internal/graph"
	"doda/internal/offline"
	"doda/internal/rng"
	"doda/internal/seq"
)

// Waiting is the paper's W algorithm: a node transmits only when it is
// connected to the sink.
type Waiting struct{}

var _ core.Algorithm = Waiting{}

// Name implements core.Algorithm.
func (Waiting) Name() string { return "waiting" }

// Oblivious reports membership in D∅ODA.
func (Waiting) Oblivious() bool { return true }

// Setup implements core.Algorithm; Waiting needs no knowledge.
func (Waiting) Setup(*core.Env) error { return nil }

// Decide transmits to the sink when present, else waits.
func (Waiting) Decide(env *core.Env, it seq.Interaction, _ int) core.Decision {
	switch env.Sink {
	case it.U:
		return core.FirstReceives
	case it.V:
		return core.SecondReceives
	default:
		return core.NoTransfer
	}
}

// TieBreak selects Gathering's receiver when neither endpoint is the
// sink. The paper fixes FirstByID ("u1 otherwise", nodes ordered by
// identifier); the alternatives exist for the A1 ablation, which checks
// that the (n-1)² expectation is tie-break independent.
type TieBreak int

const (
	// FirstByID designates the smaller identifier as receiver (paper).
	FirstByID TieBreak = iota + 1
	// SecondByID designates the larger identifier as receiver.
	SecondByID
	// RandomTieBreak flips a deterministic seeded coin per decision.
	RandomTieBreak
)

// Gathering is the paper's GA algorithm: a node transmits when connected
// to the sink or to another node owning data.
type Gathering struct {
	tie TieBreak
	src *rng.Source
}

var _ core.Algorithm = (*Gathering)(nil)

// NewGathering returns the paper's Gathering algorithm (FirstByID).
func NewGathering() *Gathering { return &Gathering{tie: FirstByID} }

// NewGatheringTieBreak returns a Gathering variant with the given
// tie-break; seed matters only for RandomTieBreak.
func NewGatheringTieBreak(tie TieBreak, seed uint64) (*Gathering, error) {
	switch tie {
	case FirstByID, SecondByID:
		return &Gathering{tie: tie}, nil
	case RandomTieBreak:
		return &Gathering{tie: tie, src: rng.New(seed)}, nil
	default:
		return nil, fmt.Errorf("algorithms: unknown tie-break %d", tie)
	}
}

// Name implements core.Algorithm.
func (g *Gathering) Name() string {
	switch g.tie {
	case SecondByID:
		return "gathering(second)"
	case RandomTieBreak:
		return "gathering(random)"
	default:
		return "gathering"
	}
}

// Oblivious reports membership in D∅ODA.
func (g *Gathering) Oblivious() bool { return true }

// Setup implements core.Algorithm; Gathering needs no knowledge.
func (g *Gathering) Setup(*core.Env) error { return nil }

// Decide always transfers: to the sink when present, else per tie-break.
func (g *Gathering) Decide(env *core.Env, it seq.Interaction, _ int) core.Decision {
	switch env.Sink {
	case it.U:
		return core.FirstReceives
	case it.V:
		return core.SecondReceives
	}
	switch g.tie {
	case SecondByID:
		return core.SecondReceives
	case RandomTieBreak:
		if g.src.Bool() {
			return core.SecondReceives
		}
		return core.FirstReceives
	default:
		return core.FirstReceives
	}
}

// WaitingGreedy is the paper's WGτ algorithm: with m1 = u1.meetTime(t)
// and m2 = u2.meetTime(t),
//
//	u1 receives if m1 <= m2 and τ < m2,
//	u2 receives if m1 >  m2 and τ < m1,
//	⊥ otherwise.
//
// A node whose next sink meeting is beyond τ (or nonexistent) hands its
// data to the node that will meet the sink sooner; after time τ it
// behaves like Gathering. Requires the meetTime oracle.
type WaitingGreedy struct {
	// Tau is the threshold parameter τ; Corollary 3 sets it to
	// Θ(n^{3/2}√log n).
	Tau int
}

var _ core.Algorithm = WaitingGreedy{}

// TauStar returns the optimal threshold of Corollary 3,
// ⌈n^{3/2}·√(log n)⌉ (natural logarithm).
func TauStar(n int) int {
	if n < 2 {
		return 0
	}
	fn := float64(n)
	return int(math.Ceil(fn * math.Sqrt(fn) * math.Sqrt(math.Log(fn))))
}

// Name implements core.Algorithm.
func (w WaitingGreedy) Name() string { return fmt.Sprintf("waiting-greedy(τ=%d)", w.Tau) }

// Oblivious reports membership in D∅ODA(meetTime): decisions use no node
// memory, only the oracle.
func (WaitingGreedy) Oblivious() bool { return true }

// Setup verifies the meetTime oracle is granted.
func (WaitingGreedy) Setup(env *core.Env) error {
	if !env.Know.HasMeetTime() {
		return errors.New("algorithms: waiting-greedy requires the meetTime oracle")
	}
	return nil
}

// Decide implements the WGτ rule; meetings beyond the oracle horizon are
// treated as +∞ (the node certainly cannot reach the sink before τ).
func (w WaitingGreedy) Decide(env *core.Env, it seq.Interaction, t int) core.Decision {
	m1 := meetOrInf(env, it.U, t)
	m2 := meetOrInf(env, it.V, t)
	switch {
	case m1 <= m2 && w.Tau < m2:
		return core.FirstReceives
	case m1 > m2 && w.Tau < m1:
		return core.SecondReceives
	default:
		return core.NoTransfer
	}
}

func meetOrInf(env *core.Env, u graph.NodeID, t int) int {
	m, ok, err := env.Know.MeetTime(u, t)
	if err != nil || !ok {
		return math.MaxInt
	}
	return m
}

// SpanningTree is the algorithm of Theorems 4 and 5: all nodes compute
// the same spanning tree of the underlying graph Ḡ (rooted at the sink),
// each waits for the data of all its children and then transmits to its
// parent at the first opportunity. Optimal when Ḡ is a tree (Theorem 5);
// finite but unbounded cost in general (Theorem 4). Requires Ḡ.
//
// A SpanningTree instance carries per-run state: use a fresh instance for
// each execution.
type SpanningTree struct {
	tree    *graph.Tree
	pending []int // per node: children whose data has not yet arrived
}

var _ core.Algorithm = (*SpanningTree)(nil)

// NewSpanningTree returns a fresh instance.
func NewSpanningTree() *SpanningTree { return &SpanningTree{} }

// Name implements core.Algorithm.
func (s *SpanningTree) Name() string { return "spanning-tree" }

// Oblivious reports that the algorithm keeps per-node state (the paper's
// Theorem 4/5 algorithm is presented memoryless given Ḡ, but counting
// received children requires memory in our engine model).
func (s *SpanningTree) Oblivious() bool { return false }

// Setup computes the shared spanning tree from Ḡ.
func (s *SpanningTree) Setup(env *core.Env) error {
	if s.tree != nil {
		return errors.New("algorithms: spanning-tree instances are single-run; create a new one")
	}
	g, err := env.Know.Underlying()
	if err != nil {
		return fmt.Errorf("algorithms: spanning-tree requires the underlying graph: %w", err)
	}
	if g.N() != env.N {
		return fmt.Errorf("algorithms: underlying graph has %d nodes, env has %d", g.N(), env.N)
	}
	tree, err := g.SpanningTree(env.Sink)
	if err != nil {
		return fmt.Errorf("algorithms: spanning-tree: %w", err)
	}
	s.tree = tree
	s.pending = make([]int, env.N)
	for u := 0; u < env.N; u++ {
		s.pending[u] = len(tree.Children(graph.NodeID(u)))
	}
	return nil
}

// Decide transmits child→parent once the child has gathered its whole
// subtree.
func (s *SpanningTree) Decide(_ *core.Env, it seq.Interaction, _ int) core.Decision {
	if s.tree.Parent[it.U] == it.V && s.pending[it.U] == 0 {
		s.pending[it.V]--
		return core.SecondReceives // U sends up to its parent V
	}
	if s.tree.Parent[it.V] == it.U && s.pending[it.V] == 0 {
		s.pending[it.U]--
		return core.FirstReceives // V sends up to its parent U
	}
	return core.NoTransfer
}

// FullKnowledge plays the optimal offline schedule, which nodes can all
// compute from full knowledge of the sequence (the setting of Theorem 8:
// Θ(n log n) interactions under the randomized adversary).
type FullKnowledge struct {
	// Horizon bounds the schedule search on unbounded sequences.
	Horizon int

	plan *offline.Schedule
}

var _ core.Algorithm = (*FullKnowledge)(nil)

// NewFullKnowledge returns a fresh instance with the given search
// horizon (for finite sequences the horizon is clamped to the length).
func NewFullKnowledge(horizon int) *FullKnowledge {
	return &FullKnowledge{Horizon: horizon}
}

// Name implements core.Algorithm.
func (f *FullKnowledge) Name() string { return "full-knowledge" }

// Oblivious reports membership in D∅ODA(full knowledge).
func (f *FullKnowledge) Oblivious() bool { return true }

// Setup computes the optimal schedule from the granted sequence.
func (f *FullKnowledge) Setup(env *core.Env) error {
	if f.plan != nil {
		return errors.New("algorithms: full-knowledge instances are single-run; create a new one")
	}
	view, err := env.Know.FullSequence()
	if err != nil {
		return fmt.Errorf("algorithms: full-knowledge requires the sequence: %w", err)
	}
	plan, err := offline.Plan(view, env.Sink, 0, f.Horizon)
	if err != nil {
		return fmt.Errorf("algorithms: full-knowledge: %w", err)
	}
	f.plan = plan
	return nil
}

// Decide follows the precomputed schedule.
func (f *FullKnowledge) Decide(_ *core.Env, it seq.Interaction, t int) core.Decision {
	if f.plan.SendTime[it.U] == t {
		return core.DecisionFor(it, f.plan.Receiver[it.U])
	}
	if f.plan.SendTime[it.V] == t {
		return core.DecisionFor(it, f.plan.Receiver[it.V])
	}
	return core.NoTransfer
}

// futureState is FutureOptimal's per-node memory: which nodes' futures
// this node has learned so far.
type futureState struct {
	known *bitset.Set
}

// FutureOptimal is the algorithm of Theorem 6: nodes gossip their futures
// as control information on every interaction; once a node knows every
// future it reconstructs the full sequence, deterministically derives the
// time T* at which *all* nodes are informed (by replaying the gossip),
// and plays the optimal offline schedule computed on the suffix after T*.
// All informed nodes derive the same T* and schedule, so transfers are
// consistent. Theorem 6: cost ≤ n on every sequence; Corollary 1:
// Θ(n log n) interactions under the randomized adversary.
//
// A FutureOptimal instance carries per-run state: use a fresh instance
// per execution. It requires the futures oracle over a finite sequence.
type FutureOptimal struct {
	// Horizon bounds the schedule search.
	Horizon int

	full  *seq.Sequence
	tstar int
	plan  *offline.Schedule
}

var _ core.Algorithm = (*FutureOptimal)(nil)
var _ core.Observer = (*FutureOptimal)(nil)

// NewFutureOptimal returns a fresh instance with the given search
// horizon.
func NewFutureOptimal(horizon int) *FutureOptimal {
	return &FutureOptimal{Horizon: horizon, tstar: -1}
}

// Name implements core.Algorithm.
func (f *FutureOptimal) Name() string { return "future-optimal" }

// Oblivious reports that nodes remember learned futures.
func (f *FutureOptimal) Oblivious() bool { return false }

// Setup initialises each node's knowledge to its own future.
func (f *FutureOptimal) Setup(env *core.Env) error {
	if f.plan != nil || f.full != nil {
		return errors.New("algorithms: future-optimal instances are single-run; create a new one")
	}
	if !env.Know.HasFutures() {
		return errors.New("algorithms: future-optimal requires the futures oracle")
	}
	for u := 0; u < env.N; u++ {
		st := &futureState{known: bitset.New(env.N)}
		st.known.Add(u)
		env.State[u] = st
	}
	return nil
}

// Observe exchanges control information: both endpoints learn the union
// of the futures either knows. When a node first becomes fully informed,
// it computes the global plan.
func (f *FutureOptimal) Observe(env *core.Env, it seq.Interaction, t int) {
	su, okU := env.State[it.U].(*futureState)
	sv, okV := env.State[it.V].(*futureState)
	if !okU || !okV {
		return // Setup not run; Decide will never transfer
	}
	su.known.UnionWith(sv.known)
	sv.known.UnionWith(su.known)
	if f.plan == nil && su.known.Full() {
		f.computePlan(env, t)
	}
}

// computePlan reconstructs the sequence from the futures, replays the
// gossip to find T* (when the last node becomes informed), and computes
// the optimal convergecast on the suffix. Any informed node performs the
// same deterministic computation.
func (f *FutureOptimal) computePlan(env *core.Env, now int) {
	full, err := reconstruct(env)
	if err != nil {
		return // inconsistent futures: refuse to transfer rather than guess
	}
	tstar, ok := gossipCompletion(full)
	if !ok || tstar < now {
		// Everyone informed means tstar is exactly the current time or
		// earlier is impossible; tolerate tstar == now.
		if !ok {
			return
		}
	}
	plan, err := offline.Plan(full, env.Sink, tstar+1, f.Horizon)
	if err != nil {
		return // no convergecast fits: keep waiting (cost stays finite only if one exists)
	}
	f.full = full
	f.tstar = tstar
	f.plan = plan
}

// Decide plays the agreed schedule after T*.
func (f *FutureOptimal) Decide(_ *core.Env, it seq.Interaction, t int) core.Decision {
	if f.plan == nil || t <= f.tstar {
		return core.NoTransfer
	}
	if f.plan.SendTime[it.U] == t {
		return core.DecisionFor(it, f.plan.Receiver[it.U])
	}
	if f.plan.SendTime[it.V] == t {
		return core.DecisionFor(it, f.plan.Receiver[it.V])
	}
	return core.NoTransfer
}

// reconstruct rebuilds the full finite sequence from the per-node
// futures: every interaction appears in exactly the two endpoint
// futures.
func reconstruct(env *core.Env) (*seq.Sequence, error) {
	length := 0
	type slot struct {
		it  seq.Interaction
		set bool
	}
	var slots []slot
	for u := 0; u < env.N; u++ {
		future, err := env.Know.FutureOf(graph.NodeID(u))
		if err != nil {
			return nil, err
		}
		for _, step := range future {
			if step.T >= length {
				length = step.T + 1
			}
			for len(slots) < length {
				slots = append(slots, slot{})
			}
			it, err := seq.NewInteraction(graph.NodeID(u), step.With)
			if err != nil {
				return nil, err
			}
			if slots[step.T].set && slots[step.T].it != it {
				return nil, fmt.Errorf("algorithms: conflicting futures at t=%d", step.T)
			}
			slots[step.T] = slot{it: it, set: true}
		}
	}
	steps := make([]seq.Interaction, len(slots))
	for t, s := range slots {
		if !s.set {
			return nil, fmt.Errorf("algorithms: no interaction recorded at t=%d", t)
		}
		steps[t] = s.it
	}
	return seq.NewSequence(env.N, steps)
}

// gossipCompletion replays the future-gossip over the full sequence and
// returns the first time at which every node knows every future.
func gossipCompletion(full *seq.Sequence) (int, bool) {
	n := full.N()
	known := make([]*bitset.Set, n)
	for u := range known {
		known[u] = bitset.New(n)
		known[u].Add(u)
	}
	fullCount := 0
	for u := range known {
		if known[u].Full() {
			fullCount++
		}
	}
	for t := 0; t < full.Len(); t++ {
		it := full.At(t)
		wasU, wasV := known[it.U].Full(), known[it.V].Full()
		known[it.U].UnionWith(known[it.V])
		known[it.V].UnionWith(known[it.U])
		if !wasU && known[it.U].Full() {
			fullCount++
		}
		if !wasV && known[it.V].Full() {
			fullCount++
		}
		if fullCount == n {
			return t, true
		}
	}
	return 0, false
}
