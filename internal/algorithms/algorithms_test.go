package algorithms

import (
	"math"
	"testing"

	"doda/internal/adversary"
	"doda/internal/core"
	"doda/internal/graph"
	"doda/internal/knowledge"
	"doda/internal/offline"
	"doda/internal/seq"
)

func mustSequence(t *testing.T, n int, steps []seq.Interaction) *seq.Sequence {
	t.Helper()
	s, err := seq.NewSequence(n, steps)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustBundle(t *testing.T, opts ...knowledge.Option) *knowledge.Bundle {
	t.Helper()
	b, err := knowledge.NewBundle(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func runOn(t *testing.T, alg core.Algorithm, s *seq.Sequence, know *knowledge.Bundle) core.Result {
	t.Helper()
	adv, err := adversary.NewOblivious("seq", s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunOnce(core.Config{
		N: s.N(), MaxInteractions: s.Len() + 1, Know: know, VerifyAggregate: true,
	}, alg, adv)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWaitingOnlyTransfersAtSink(t *testing.T) {
	// Non-sink interactions must be declined.
	s := mustSequence(t, 3, []seq.Interaction{
		{U: 1, V: 2}, {U: 1, V: 2}, {U: 0, V: 1}, {U: 0, V: 2},
	})
	res := runOn(t, Waiting{}, s, nil)
	if !res.Terminated {
		t.Fatalf("res = %+v", res)
	}
	if res.Declined != 2 || res.Transmissions != 2 || res.Duration != 3 {
		t.Errorf("res = %+v", res)
	}
}

func TestWaitingDoesNotTerminateWithoutSinkMeetings(t *testing.T) {
	s := mustSequence(t, 3, []seq.Interaction{{U: 1, V: 2}, {U: 1, V: 2}})
	res := runOn(t, Waiting{}, s, nil)
	if res.Terminated {
		t.Error("cannot terminate without sink contact")
	}
}

func TestGatheringAlwaysTransfers(t *testing.T) {
	s := mustSequence(t, 4, []seq.Interaction{
		{U: 1, V: 2}, // 1 receives (first by id)
		{U: 2, V: 3}, // both own? 2 transmitted its data to 1... no: 2 RECEIVED? FirstReceives means U receives.
	})
	// Careful: at t=0, receiver is node 1, sender node 2. At t=1 node 2
	// no longer owns data, so nothing happens.
	res := runOn(t, NewGathering(), s, nil)
	if res.Transmissions != 1 || res.Declined != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestGatheringSinkAlwaysReceives(t *testing.T) {
	s := mustSequence(t, 3, []seq.Interaction{
		{U: 0, V: 2}, // sink receives from 2
		{U: 0, V: 1}, // sink receives from 1 -> terminated
	})
	res := runOn(t, NewGathering(), s, nil)
	if !res.Terminated || res.Duration != 1 {
		t.Errorf("res = %+v", res)
	}
}

func TestGatheringTerminatesOnRandomSequence(t *testing.T) {
	adv, _, err := adversary.Randomized(16, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunOnce(core.Config{
		N: 16, MaxInteractions: 100000, VerifyAggregate: true,
	}, NewGathering(), adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("gathering did not terminate: %+v", res)
	}
	if res.Transmissions != 15 {
		t.Errorf("transmissions = %d", res.Transmissions)
	}
}

func TestGatheringTieBreaks(t *testing.T) {
	s := mustSequence(t, 4, []seq.Interaction{{U: 2, V: 3}})
	// FirstByID: node 2 receives.
	first := runOn(t, NewGathering(), s, nil)
	if first.Transmissions != 1 {
		t.Errorf("first: %+v", first)
	}
	second, err := NewGatheringTieBreak(SecondByID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if second.Name() != "gathering(second)" {
		t.Errorf("Name = %q", second.Name())
	}
	res := runOn(t, second, s, nil)
	if res.Transmissions != 1 {
		t.Errorf("second: %+v", res)
	}
	random, err := NewGatheringTieBreak(RandomTieBreak, 42)
	if err != nil {
		t.Fatal(err)
	}
	if random.Name() != "gathering(random)" {
		t.Errorf("Name = %q", random.Name())
	}
	if _, err := NewGatheringTieBreak(TieBreak(99), 0); err == nil {
		t.Error("want error for unknown tie-break")
	}
}

func TestTauStar(t *testing.T) {
	if TauStar(1) != 0 {
		t.Error("TauStar(1) should be 0")
	}
	// n^{3/2} sqrt(log n) for n = 100: 1000 * sqrt(4.605) ≈ 2146.
	got := TauStar(100)
	want := 100 * 10 * math.Sqrt(math.Log(100))
	if math.Abs(float64(got)-want) > 1 {
		t.Errorf("TauStar(100) = %d, want ~%v", got, want)
	}
	// Monotone in n.
	prev := 0
	for n := 2; n < 500; n += 13 {
		v := TauStar(n)
		if v <= prev {
			t.Fatalf("TauStar not increasing at %d", n)
		}
		prev = v
	}
}

func TestWaitingGreedyRequiresMeetTime(t *testing.T) {
	s := mustSequence(t, 3, []seq.Interaction{{U: 0, V: 1}})
	adv, _ := adversary.NewOblivious("seq", s)
	_, err := core.RunOnce(core.Config{N: 3, MaxInteractions: 5}, WaitingGreedy{Tau: 1}, adv)
	if err == nil {
		t.Error("setup should fail without meetTime oracle")
	}
}

func TestWaitingGreedySemantics(t *testing.T) {
	// Sink 0. meetTime(1, ·): {1,0} occurs at t=4; meetTime(2, ·): t=1.
	steps := []seq.Interaction{
		{U: 1, V: 2}, {U: 0, V: 2}, {U: 1, V: 3}, {U: 0, V: 3}, {U: 0, V: 1},
	}
	s := mustSequence(t, 4, steps)
	know := mustBundle(t, knowledge.WithMeetTime(s, 0, s.Len()))
	res := runOn(t, WaitingGreedy{Tau: 2}, s, know)
	if !res.Terminated {
		t.Fatalf("res = %+v", res)
	}
	// t=0: node 1 (meet 4 > τ) hands data to node 2 (meet 1).
	// t=1: node 2 -> sink. t=3: node 3 -> sink. Done at t=3.
	if res.Duration != 3 {
		t.Errorf("duration = %d, want 3", res.Duration)
	}
}

func TestWaitingGreedyWaitsWhileMeetingBeforeTau(t *testing.T) {
	// Node 1 meets the sink at t=0 and t=1. With τ=1, at t=0 its next
	// meeting (t=1) is not beyond τ, so it waits; at t=1 its next
	// meeting is ∞ > τ, so it transmits.
	steps := []seq.Interaction{
		{U: 0, V: 1}, {U: 0, V: 1}, {U: 0, V: 2},
	}
	s := mustSequence(t, 3, steps)
	know := mustBundle(t, knowledge.WithMeetTime(s, 0, s.Len()))
	res := runOn(t, WaitingGreedy{Tau: 1}, s, know)
	if !res.Terminated {
		t.Fatalf("res = %+v", res)
	}
	if res.Declined != 1 {
		t.Errorf("declined = %d, want 1 (the t=0 wait)", res.Declined)
	}
	if res.Duration != 2 {
		t.Errorf("duration = %d", res.Duration)
	}
}

func TestWaitingGreedyActsAsGatheringAfterTau(t *testing.T) {
	// After τ every encounter transfers: two non-sink nodes with no
	// future sink meetings must still exchange (toward smaller meet
	// time, both ∞ -> first receives).
	steps := []seq.Interaction{
		{U: 1, V: 2}, {U: 0, V: 1},
	}
	s := mustSequence(t, 3, steps)
	know := mustBundle(t, knowledge.WithMeetTime(s, 0, s.Len()))
	res := runOn(t, WaitingGreedy{Tau: 0}, s, know)
	if !res.Terminated || res.Duration != 1 {
		t.Errorf("res = %+v", res)
	}
}

func TestWaitingGreedyTerminatesOnRandomSequence(t *testing.T) {
	const n = 24
	adv, stream, err := adversary.Randomized(n, 11)
	if err != nil {
		t.Fatal(err)
	}
	cap := 40 * n * n
	know := mustBundle(t, knowledge.WithMeetTime(stream, 0, cap))
	res, err := core.RunOnce(core.Config{
		N: n, MaxInteractions: cap, Know: know, VerifyAggregate: true,
	}, WaitingGreedy{Tau: TauStar(n)}, adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("waiting-greedy did not terminate: %+v", res)
	}
}

func TestSpanningTreeRequiresUnderlying(t *testing.T) {
	s := mustSequence(t, 3, []seq.Interaction{{U: 0, V: 1}})
	adv, _ := adversary.NewOblivious("seq", s)
	_, err := core.RunOnce(core.Config{N: 3, MaxInteractions: 5}, NewSpanningTree(), adv)
	if err == nil {
		t.Error("setup should fail without underlying graph")
	}
}

func TestSpanningTreeLeafFirstRoundIsOptimal(t *testing.T) {
	// Path 0-1-2-3, edges scheduled deepest first: terminates in one
	// round, which is the optimal convergecast (Theorem 5: cost 1).
	steps := []seq.Interaction{{U: 2, V: 3}, {U: 1, V: 2}, {U: 0, V: 1}}
	s := mustSequence(t, 4, steps).Repeat(3)
	know := mustBundle(t, knowledge.WithUnderlying(s.UnderlyingGraph()))
	res := runOn(t, NewSpanningTree(), s, know)
	if !res.Terminated {
		t.Fatalf("res = %+v", res)
	}
	opt, ok := offline.Opt(s, 0, 0, s.Len())
	if !ok {
		t.Fatal("no offline optimum")
	}
	if res.Duration != opt {
		t.Errorf("duration %d != optimal %d", res.Duration, opt)
	}
}

func TestSpanningTreeWaitsForChildren(t *testing.T) {
	// Root-first edge order forces three rounds on the path graph.
	steps := []seq.Interaction{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}
	s := mustSequence(t, 4, steps).Repeat(4)
	know := mustBundle(t, knowledge.WithUnderlying(s.UnderlyingGraph()))
	res := runOn(t, NewSpanningTree(), s, know)
	if !res.Terminated {
		t.Fatalf("res = %+v", res)
	}
	if res.Duration != 6 { // 3->2 at t=2, 2->1 at t=4, 1->0 at t=6
		t.Errorf("duration = %d, want 6", res.Duration)
	}
}

func TestSpanningTreeOnNonTreeGraphStillTerminates(t *testing.T) {
	// Cycle graph: the BFS tree ignores one edge; recurrent schedule
	// still drives termination (Theorem 4: finite cost).
	g, err := graph.Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	adv, stream, err := adversary.Recurrent(5, g.Edges())
	if err != nil {
		t.Fatal(err)
	}
	know := mustBundle(t, knowledge.WithUnderlying(g))
	res, err := core.RunOnce(core.Config{
		N: 5, MaxInteractions: 200, Know: know, VerifyAggregate: true,
	}, NewSpanningTree(), adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("res = %+v", res)
	}
	_ = stream
}

func TestSpanningTreeMismatchedGraph(t *testing.T) {
	g, err := graph.Path(5) // 5 nodes, env has 3
	if err != nil {
		t.Fatal(err)
	}
	s := mustSequence(t, 3, []seq.Interaction{{U: 0, V: 1}})
	adv, _ := adversary.NewOblivious("seq", s)
	know := mustBundle(t, knowledge.WithUnderlying(g))
	_, err = core.RunOnce(core.Config{N: 3, MaxInteractions: 5, Know: know}, NewSpanningTree(), adv)
	if err == nil {
		t.Error("want setup error for node count mismatch")
	}
}

func TestFullKnowledgeMatchesOfflineOptimum(t *testing.T) {
	adv, stream, err := adversary.Randomized(12, 21)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 20000
	prefix := stream.Prefix(horizon)
	know := mustBundle(t, knowledge.WithFullSequence(prefix))
	res, err := core.RunOnce(core.Config{
		N: 12, MaxInteractions: horizon, Know: know, VerifyAggregate: true,
	}, NewFullKnowledge(horizon), adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("res = %+v", res)
	}
	opt, ok := offline.Opt(prefix, 0, 0, horizon)
	if !ok {
		t.Fatal("no offline optimum")
	}
	if res.Duration != opt {
		t.Errorf("full-knowledge duration %d != opt %d", res.Duration, opt)
	}
}

func TestFullKnowledgeRequiresSequence(t *testing.T) {
	s := mustSequence(t, 3, []seq.Interaction{{U: 0, V: 1}})
	adv, _ := adversary.NewOblivious("seq", s)
	_, err := core.RunOnce(core.Config{N: 3, MaxInteractions: 5}, NewFullKnowledge(5), adv)
	if err == nil {
		t.Error("setup should fail without full sequence")
	}
}

func TestFutureOptimalRequiresFutures(t *testing.T) {
	s := mustSequence(t, 3, []seq.Interaction{{U: 0, V: 1}})
	adv, _ := adversary.NewOblivious("seq", s)
	_, err := core.RunOnce(core.Config{N: 3, MaxInteractions: 5}, NewFutureOptimal(5), adv)
	if err == nil {
		t.Error("setup should fail without futures")
	}
}

func TestFutureOptimalTerminatesAndCostAtMostN(t *testing.T) {
	const n = 10
	adv, stream, err := adversary.Randomized(n, 33)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 50000
	prefix := stream.Prefix(horizon)
	know := mustBundle(t, knowledge.WithFutures(prefix))
	res, err := core.RunOnce(core.Config{
		N: n, MaxInteractions: horizon, Know: know, VerifyAggregate: true,
	}, NewFutureOptimal(horizon), adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("res = %+v", res)
	}
	clock, err := offline.NewClock(prefix, 0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	cost, ok := clock.Cost(res.Duration)
	if !ok {
		t.Fatal("cost should be finite")
	}
	if cost > n {
		t.Errorf("cost = %d > n = %d (violates Theorem 6)", cost, n)
	}
}

func TestFutureOptimalNoTransfersBeforeInformed(t *testing.T) {
	// On a short star sequence, gossip completes only after the sink has
	// met everyone... build a sequence where gossip completes at a known
	// time and check no transmissions happen before.
	// Path gossip: {0,1},{1,2},{2,3}: after t=2 node 3 knows (3,2,1,0)?
	// Gossip spreads pairwise unions; completion needs both directions.
	steps := []seq.Interaction{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, // 3 informed at t=2
		{U: 1, V: 2}, {U: 0, V: 1}, // backward wave: all informed at t=4
		// convergecast material:
		{U: 2, V: 3}, {U: 1, V: 2}, {U: 0, V: 1},
	}
	s := mustSequence(t, 4, steps)
	know := mustBundle(t, knowledge.WithFutures(s))
	alg := NewFutureOptimal(s.Len())
	res := runOn(t, alg, s, know)
	if !res.Terminated {
		t.Fatalf("res = %+v", res)
	}
	// All transmissions must occur after t=4 (gossip completion).
	if res.Duration-res.Transmissions+1 <= 4 {
		// The earliest transmission is at Duration - (something); check
		// via declined counts instead: interactions 0..4 have both
		// owners, so any transfer before t=5 would show up as fewer
		// declines.
		t.Logf("res = %+v", res)
	}
	if res.Duration != 7 {
		t.Errorf("duration = %d, want 7", res.Duration)
	}
	if alg.tstar != 4 {
		t.Errorf("tstar = %d, want 4", alg.tstar)
	}
}

func TestObliviousnessFlags(t *testing.T) {
	tests := []struct {
		alg  core.Algorithm
		want bool
	}{
		{alg: Waiting{}, want: true},
		{alg: NewGathering(), want: true},
		{alg: WaitingGreedy{Tau: 3}, want: true},
		{alg: NewSpanningTree(), want: false},
		{alg: NewFullKnowledge(10), want: true},
		{alg: NewFutureOptimal(10), want: false},
	}
	for _, tt := range tests {
		if got := tt.alg.Oblivious(); got != tt.want {
			t.Errorf("%s.Oblivious() = %v, want %v", tt.alg.Name(), got, tt.want)
		}
	}
}

func TestNames(t *testing.T) {
	for _, alg := range []core.Algorithm{
		Waiting{}, NewGathering(), WaitingGreedy{Tau: 5},
		NewSpanningTree(), NewFullKnowledge(1), NewFutureOptimal(1),
	} {
		if alg.Name() == "" {
			t.Errorf("%T has empty name", alg)
		}
	}
}
