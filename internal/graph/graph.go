// Package graph provides the static-graph substrate underneath the dynamic
// model: node identifiers, the underlying graph Ḡ of an interaction
// sequence (the paper's §3.2), connectivity queries, deterministic
// spanning-tree construction (all nodes must compute the *same* tree from
// Ḡ, as Theorem 4 requires), and graph generators for experiments and
// examples.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node. Nodes are numbered 0..n-1; by convention the
// sink is node 0 unless stated otherwise. The paper's node identifiers
// used for symmetry breaking are exactly these integers.
type NodeID int

// Edge is an unordered pair of distinct nodes, stored canonically with
// U < V.
type Edge struct {
	U, V NodeID
}

// NewEdge returns the canonical Edge for the unordered pair {a, b}.
// It returns an error if a == b (self-loops are meaningless interactions).
func NewEdge(a, b NodeID) (Edge, error) {
	if a == b {
		return Edge{}, fmt.Errorf("graph: self-loop on node %d", a)
	}
	if a > b {
		a, b = b, a
	}
	return Edge{U: a, V: b}, nil
}

// MustEdge is NewEdge for statically known distinct endpoints; it panics
// on a self-loop. Use only with literals in tests and generators.
func MustEdge(a, b NodeID) Edge {
	e, err := NewEdge(a, b)
	if err != nil {
		panic(err)
	}
	return e
}

// Other returns the endpoint of e that is not u, and reports whether u is
// an endpoint at all.
func (e Edge) Other(u NodeID) (NodeID, bool) {
	switch u {
	case e.U:
		return e.V, true
	case e.V:
		return e.U, true
	default:
		return 0, false
	}
}

// Undirected is a simple undirected graph over nodes 0..n-1.
//
// It is the representation of the paper's underlying graph Ḡ = (V, E)
// where E contains {u,v} iff u and v interact at least once.
type Undirected struct {
	n   int
	adj [][]NodeID
	set map[Edge]struct{}
}

// NewUndirected returns an empty graph on n nodes.
func NewUndirected(n int) (*Undirected, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: need at least one node, got %d", n)
	}
	return &Undirected{
		n:   n,
		adj: make([][]NodeID, n),
		set: make(map[Edge]struct{}),
	}, nil
}

// FromEdges builds a graph on n nodes from the given edges. Duplicate
// edges are ignored; out-of-range endpoints are an error.
func FromEdges(n int, edges []Edge) (*Undirected, error) {
	g, err := NewUndirected(n)
	if err != nil {
		return nil, err
	}
	for _, e := range edges {
		if err := g.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// N returns the number of nodes.
func (g *Undirected) N() int { return g.n }

// M returns the number of (distinct) edges.
func (g *Undirected) M() int { return len(g.set) }

// AddEdge inserts the undirected edge {a,b}. Inserting an existing edge
// is a no-op. Self-loops and out-of-range nodes are errors.
func (g *Undirected) AddEdge(a, b NodeID) error {
	if err := g.checkNode(a); err != nil {
		return err
	}
	if err := g.checkNode(b); err != nil {
		return err
	}
	e, err := NewEdge(a, b)
	if err != nil {
		return err
	}
	if _, dup := g.set[e]; dup {
		return nil
	}
	g.set[e] = struct{}{}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	return nil
}

func (g *Undirected) checkNode(u NodeID) error {
	if u < 0 || int(u) >= g.n {
		return fmt.Errorf("graph: node %d out of range [0,%d)", u, g.n)
	}
	return nil
}

// HasEdge reports whether {a,b} is an edge.
func (g *Undirected) HasEdge(a, b NodeID) bool {
	e, err := NewEdge(a, b)
	if err != nil {
		return false
	}
	_, ok := g.set[e]
	return ok
}

// Neighbors returns a copy of u's adjacency list, sorted by NodeID so all
// callers observe the same deterministic order regardless of insertion
// history.
func (g *Undirected) Neighbors(u NodeID) []NodeID {
	if u < 0 || int(u) >= g.n {
		return nil
	}
	out := make([]NodeID, len(g.adj[u]))
	copy(out, g.adj[u])
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns the degree of u (0 for out-of-range nodes).
func (g *Undirected) Degree(u NodeID) int {
	if u < 0 || int(u) >= g.n {
		return 0
	}
	return len(g.adj[u])
}

// Edges returns all edges sorted canonically ((U,V) lexicographic).
func (g *Undirected) Edges() []Edge {
	out := make([]Edge, 0, len(g.set))
	for e := range g.set {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Connected reports whether the graph is connected (true for n == 1).
func (g *Undirected) Connected() bool {
	return len(g.componentOf(0)) == g.n
}

// ComponentOf returns the nodes reachable from u, sorted.
func (g *Undirected) ComponentOf(u NodeID) []NodeID {
	if u < 0 || int(u) >= g.n {
		return nil
	}
	comp := g.componentOf(u)
	sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
	return comp
}

func (g *Undirected) componentOf(u NodeID) []NodeID {
	seen := make([]bool, g.n)
	queue := []NodeID{u}
	seen[u] = true
	var order []NodeID
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		order = append(order, x)
		for _, y := range g.adj[x] {
			if !seen[y] {
				seen[y] = true
				queue = append(queue, y)
			}
		}
	}
	return order
}

// IsTree reports whether the graph is a tree (connected, m == n-1).
func (g *Undirected) IsTree() bool {
	return g.M() == g.n-1 && g.Connected()
}

// Tree is a rooted spanning tree: Parent[root] == root.
type Tree struct {
	Root   NodeID
	Parent []NodeID
}

// ErrDisconnected reports that a spanning tree was requested on a
// disconnected graph.
var ErrDisconnected = errors.New("graph: graph is not connected")

// SpanningTree returns the BFS spanning tree rooted at root, visiting
// neighbours in increasing NodeID order. Because the order depends only
// on the edge set, every node that knows Ḡ computes the *same* tree —
// the property the Theorem 4/5 algorithm relies on ("they compute the
// same tree, using nodes identifiers").
func (g *Undirected) SpanningTree(root NodeID) (*Tree, error) {
	if err := g.checkNode(root); err != nil {
		return nil, err
	}
	parent := make([]NodeID, g.n)
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = root
	queue := []NodeID{root}
	visited := 1
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range g.Neighbors(x) {
			if parent[y] == -1 {
				parent[y] = x
				visited++
				queue = append(queue, y)
			}
		}
	}
	if visited != g.n {
		return nil, ErrDisconnected
	}
	return &Tree{Root: root, Parent: parent}, nil
}

// Children returns the children of u in the tree, sorted.
func (t *Tree) Children(u NodeID) []NodeID {
	var out []NodeID
	for v, p := range t.Parent {
		if p == u && NodeID(v) != t.Root {
			out = append(out, NodeID(v))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Depth returns the depth of u (root has depth 0), or -1 if u is not in
// the tree's node range.
func (t *Tree) Depth(u NodeID) int {
	if u < 0 || int(u) >= len(t.Parent) {
		return -1
	}
	d := 0
	for u != t.Root {
		u = t.Parent[u]
		d++
		if d > len(t.Parent) {
			return -1 // corrupted parent pointers; avoid spinning forever
		}
	}
	return d
}

// Edges returns the n-1 tree edges in canonical order.
func (t *Tree) Edges() []Edge {
	out := make([]Edge, 0, len(t.Parent)-1)
	for v, p := range t.Parent {
		if NodeID(v) == t.Root {
			continue
		}
		out = append(out, MustEdge(NodeID(v), p))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// SubtreeSizes returns, for every node, the size of its subtree
// (the root's entry equals n).
func (t *Tree) SubtreeSizes() []int {
	n := len(t.Parent)
	size := make([]int, n)
	// Process nodes by decreasing depth so children are final before
	// parents.
	order := make([]NodeID, n)
	for i := range order {
		order[i] = NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		return t.Depth(order[i]) > t.Depth(order[j])
	})
	for i := range size {
		size[i] = 1
	}
	for _, u := range order {
		if u != t.Root {
			size[t.Parent[u]] += size[u]
		}
	}
	return size
}
