package graph

import (
	"fmt"

	"doda/internal/rng"
)

// Path returns the path graph 0-1-2-...-(n-1).
func Path(n int) (*Undirected, error) {
	g, err := NewUndirected(n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n-1; i++ {
		if err := g.AddEdge(NodeID(i), NodeID(i+1)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Cycle returns the cycle graph on n >= 3 nodes.
func Cycle(n int) (*Undirected, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: cycle needs n >= 3, got %d", n)
	}
	g, err := Path(n)
	if err != nil {
		return nil, err
	}
	if err := g.AddEdge(NodeID(n-1), 0); err != nil {
		return nil, err
	}
	return g, nil
}

// Star returns the star graph with the given center.
func Star(n int, center NodeID) (*Undirected, error) {
	g, err := NewUndirected(n)
	if err != nil {
		return nil, err
	}
	if center < 0 || int(center) >= n {
		return nil, fmt.Errorf("graph: center %d out of range", center)
	}
	for i := 0; i < n; i++ {
		if NodeID(i) == center {
			continue
		}
		if err := g.AddEdge(center, NodeID(i)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Complete returns the complete graph K_n. This is the underlying graph of
// the randomized adversary (§4: "the underlying graph is a complete graph
// of n nodes").
func Complete(n int) (*Undirected, error) {
	g, err := NewUndirected(n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.AddEdge(NodeID(i), NodeID(j)); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// RandomTree returns a uniformly random labelled tree on n nodes, sampled
// via a random Prüfer sequence. For n <= 2 it returns the unique tree.
func RandomTree(n int, src *rng.Source) (*Undirected, error) {
	g, err := NewUndirected(n)
	if err != nil {
		return nil, err
	}
	if n == 1 {
		return g, nil
	}
	if n == 2 {
		if err := g.AddEdge(0, 1); err != nil {
			return nil, err
		}
		return g, nil
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = src.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	// Classic decoding: repeatedly attach the smallest leaf.
	for _, v := range prufer {
		for leaf := 0; leaf < n; leaf++ {
			if degree[leaf] == 1 {
				if err := g.AddEdge(NodeID(leaf), NodeID(v)); err != nil {
					return nil, err
				}
				degree[leaf]--
				degree[v]--
				break
			}
		}
	}
	// Two nodes of degree 1 remain; join them.
	u, v := -1, -1
	for i := 0; i < n; i++ {
		if degree[i] == 1 {
			if u == -1 {
				u = i
			} else {
				v = i
			}
		}
	}
	if err := g.AddEdge(NodeID(u), NodeID(v)); err != nil {
		return nil, err
	}
	return g, nil
}

// RandomConnected returns a random connected graph on n nodes with
// extra additional non-tree edges (clamped to the number of available
// slots). It starts from a random spanning tree, guaranteeing
// connectivity, then adds distinct random extra edges.
func RandomConnected(n, extra int, src *rng.Source) (*Undirected, error) {
	g, err := RandomTree(n, src)
	if err != nil {
		return nil, err
	}
	maxExtra := n*(n-1)/2 - (n - 1)
	if extra > maxExtra {
		extra = maxExtra
	}
	for added := 0; added < extra; {
		a, b := src.Pair(n)
		if g.HasEdge(NodeID(a), NodeID(b)) {
			continue
		}
		if err := g.AddEdge(NodeID(a), NodeID(b)); err != nil {
			return nil, err
		}
		added++
	}
	return g, nil
}
