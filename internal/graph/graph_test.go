package graph

import (
	"testing"
	"testing/quick"

	"doda/internal/rng"
)

func TestNewEdgeCanonical(t *testing.T) {
	e, err := NewEdge(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e.U != 2 || e.V != 5 {
		t.Errorf("edge not canonical: %+v", e)
	}
}

func TestNewEdgeSelfLoop(t *testing.T) {
	if _, err := NewEdge(3, 3); err == nil {
		t.Error("want error for self-loop")
	}
}

func TestEdgeOther(t *testing.T) {
	e := MustEdge(1, 4)
	if v, ok := e.Other(1); !ok || v != 4 {
		t.Errorf("Other(1) = %d,%v", v, ok)
	}
	if v, ok := e.Other(4); !ok || v != 1 {
		t.Errorf("Other(4) = %d,%v", v, ok)
	}
	if _, ok := e.Other(2); ok {
		t.Error("Other(2) should report not-an-endpoint")
	}
}

func TestAddEdgeAndQueries(t *testing.T) {
	g, err := NewUndirected(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err != nil { // duplicate, reversed
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("missing edge 0-1")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge 0-2")
	}
	if g.HasEdge(1, 1) {
		t.Error("self-loop reported present")
	}
	if d := g.Degree(1); d != 1 {
		t.Errorf("Degree(1) = %d", d)
	}
	if d := g.Degree(99); d != 0 {
		t.Errorf("Degree(out of range) = %d", d)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g, _ := NewUndirected(3)
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("want error for out-of-range node")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("want error for negative node")
	}
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("want error for self-loop")
	}
}

func TestNewUndirectedRejectsEmpty(t *testing.T) {
	if _, err := NewUndirected(0); err == nil {
		t.Error("want error for zero nodes")
	}
}

func TestNeighborsSortedCopy(t *testing.T) {
	g, _ := NewUndirected(5)
	for _, v := range []NodeID{4, 2, 3} {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	nb := g.Neighbors(0)
	want := []NodeID{2, 3, 4}
	if len(nb) != 3 {
		t.Fatalf("Neighbors = %v", nb)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v", nb, want)
		}
	}
	nb[0] = 99 // mutation must not leak into the graph
	if g.Neighbors(0)[0] != 2 {
		t.Error("Neighbors returned internal storage")
	}
}

func TestEdgesSorted(t *testing.T) {
	g, _ := FromEdges(4, []Edge{MustEdge(2, 3), MustEdge(0, 2), MustEdge(0, 1)})
	es := g.Edges()
	want := []Edge{{0, 1}, {0, 2}, {2, 3}}
	if len(es) != len(want) {
		t.Fatalf("Edges = %v", es)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", es, want)
		}
	}
}

func TestConnectivity(t *testing.T) {
	g, _ := FromEdges(4, []Edge{MustEdge(0, 1), MustEdge(1, 2)})
	if g.Connected() {
		t.Error("graph with isolated node reported connected")
	}
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Error("path graph reported disconnected")
	}
	comp := g.ComponentOf(3)
	if len(comp) != 4 {
		t.Errorf("ComponentOf(3) = %v", comp)
	}
}

func TestIsTree(t *testing.T) {
	path, _ := Path(5)
	if !path.IsTree() {
		t.Error("path should be a tree")
	}
	cyc, _ := Cycle(5)
	if cyc.IsTree() {
		t.Error("cycle should not be a tree")
	}
	disc, _ := FromEdges(4, []Edge{MustEdge(0, 1), MustEdge(2, 3), MustEdge(1, 2)})
	if !disc.IsTree() {
		t.Error("4-path should be a tree")
	}
	single, _ := NewUndirected(1)
	if !single.IsTree() {
		t.Error("single node should be a tree")
	}
}

func TestSpanningTreeDeterministicAndValid(t *testing.T) {
	src := rng.New(5)
	g, err := RandomConnected(20, 15, src)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := g.SpanningTree(0)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := g.SpanningTree(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range t1.Parent {
		if t1.Parent[i] != t2.Parent[i] {
			t.Fatalf("spanning tree not deterministic at node %d", i)
		}
	}
	// Every parent edge must exist in the graph; root points to itself.
	if t1.Parent[0] != 0 {
		t.Errorf("root parent = %d", t1.Parent[0])
	}
	for v, p := range t1.Parent {
		if NodeID(v) == t1.Root {
			continue
		}
		if !g.HasEdge(NodeID(v), p) {
			t.Errorf("tree edge %d-%d not in graph", v, p)
		}
	}
	if len(t1.Edges()) != g.N()-1 {
		t.Errorf("tree has %d edges, want %d", len(t1.Edges()), g.N()-1)
	}
}

func TestSpanningTreeDisconnected(t *testing.T) {
	g, _ := FromEdges(4, []Edge{MustEdge(0, 1)})
	if _, err := g.SpanningTree(0); err != ErrDisconnected {
		t.Errorf("err = %v, want ErrDisconnected", err)
	}
}

func TestSpanningTreeBadRoot(t *testing.T) {
	g, _ := Path(3)
	if _, err := g.SpanningTree(7); err == nil {
		t.Error("want error for out-of-range root")
	}
}

func TestTreeChildrenDepth(t *testing.T) {
	star, _ := Star(5, 0)
	tr, err := star.SpanningTree(0)
	if err != nil {
		t.Fatal(err)
	}
	kids := tr.Children(0)
	if len(kids) != 4 {
		t.Errorf("Children(0) = %v", kids)
	}
	for _, k := range kids {
		if tr.Depth(k) != 1 {
			t.Errorf("Depth(%d) = %d", k, tr.Depth(k))
		}
	}
	if tr.Depth(0) != 0 {
		t.Errorf("Depth(root) = %d", tr.Depth(0))
	}
	if tr.Depth(-1) != -1 {
		t.Error("Depth of out-of-range node should be -1")
	}
}

func TestTreeDepthOnPath(t *testing.T) {
	p, _ := Path(6)
	tr, err := p.SpanningTree(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if d := tr.Depth(NodeID(i)); d != i {
			t.Errorf("Depth(%d) = %d, want %d", i, d, i)
		}
	}
}

func TestSubtreeSizes(t *testing.T) {
	p, _ := Path(4)
	tr, _ := p.SpanningTree(0)
	sizes := tr.SubtreeSizes()
	want := []int{4, 3, 2, 1}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("SubtreeSizes = %v, want %v", sizes, want)
		}
	}
}

func TestGenerators(t *testing.T) {
	tests := []struct {
		name     string
		build    func() (*Undirected, error)
		wantErr  bool
		wantN    int
		wantM    int
		wantTree bool
	}{
		{name: "path5", build: func() (*Undirected, error) { return Path(5) }, wantN: 5, wantM: 4, wantTree: true},
		{name: "cycle5", build: func() (*Undirected, error) { return Cycle(5) }, wantN: 5, wantM: 5},
		{name: "cycle too small", build: func() (*Undirected, error) { return Cycle(2) }, wantErr: true},
		{name: "star center0", build: func() (*Undirected, error) { return Star(6, 0) }, wantN: 6, wantM: 5, wantTree: true},
		{name: "star bad center", build: func() (*Undirected, error) { return Star(4, 9) }, wantErr: true},
		{name: "complete4", build: func() (*Undirected, error) { return Complete(4) }, wantN: 4, wantM: 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := tt.build()
			if tt.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if g.N() != tt.wantN || g.M() != tt.wantM {
				t.Errorf("n=%d m=%d, want n=%d m=%d", g.N(), g.M(), tt.wantN, tt.wantM)
			}
			if tt.wantTree && !g.IsTree() {
				t.Error("expected a tree")
			}
			if !g.Connected() {
				t.Error("generator produced disconnected graph")
			}
		})
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	src := rng.New(11)
	for _, n := range []int{1, 2, 3, 10, 50} {
		g, err := RandomTree(n, src)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsTree() {
			t.Errorf("RandomTree(%d) is not a tree: m=%d connected=%v", n, g.M(), g.Connected())
		}
	}
}

func TestRandomConnectedEdgeCount(t *testing.T) {
	src := rng.New(13)
	g, err := RandomConnected(10, 5, src)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 14 { // 9 tree edges + 5 extra
		t.Errorf("M = %d, want 14", g.M())
	}
	if !g.Connected() {
		t.Error("disconnected")
	}
}

func TestRandomConnectedClampsExtra(t *testing.T) {
	src := rng.New(17)
	g, err := RandomConnected(4, 1000, src)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 6 { // complete graph K4
		t.Errorf("M = %d, want 6", g.M())
	}
}

func TestQuickRandomTreeAlwaysTree(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%63) + 1
		g, err := RandomTree(n, rng.New(seed))
		if err != nil {
			return false
		}
		return g.IsTree()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSpanningTreeDepthConsistent(t *testing.T) {
	// Parent depth is always child depth - 1.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		g, err := RandomConnected(12, src.Intn(10), src)
		if err != nil {
			return false
		}
		tr, err := g.SpanningTree(0)
		if err != nil {
			return false
		}
		for v := range tr.Parent {
			u := NodeID(v)
			if u == tr.Root {
				continue
			}
			if tr.Depth(u) != tr.Depth(tr.Parent[u])+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
