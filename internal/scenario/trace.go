package scenario

// Trace replay: parse a CSV contact trace (`time,u,v` rows, the common
// interchange shape of CRAWDAD-style mobility datasets) into a finite
// seq.Sequence, so recorded real-world workloads run through exactly the
// same engines, algorithms and oracles as the synthetic models.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"doda/internal/adversary"
	"doda/internal/core"
	"doda/internal/graph"
	"doda/internal/seq"
)

// ReplayTrace parses a contact trace from r into a Sequence. Each
// non-empty line is `time,u,v`: an integer timestamp and two distinct
// non-negative node identifiers. Lines starting with '#' are comments; a
// leading `time,u,v` header row is skipped. Rows are stably sorted by
// timestamp (ties keep file order), and the node count is inferred as the
// largest identifier plus one.
func ReplayTrace(r io.Reader) (*seq.Sequence, error) {
	type row struct {
		t    int64
		u, v graph.NodeID
	}
	var rows []row
	maxID := graph.NodeID(-1)
	seen := map[graph.NodeID]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("scenario: trace line %d: want 3 fields time,u,v, got %d", lineNo, len(fields))
		}
		for i := range fields {
			fields[i] = strings.TrimSpace(fields[i])
		}
		if len(rows) == 0 && strings.EqualFold(fields[0], "time") {
			continue // header row
		}
		t, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("scenario: trace line %d: bad time %q", lineNo, fields[0])
		}
		u, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("scenario: trace line %d: bad node %q", lineNo, fields[1])
		}
		v, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("scenario: trace line %d: bad node %q", lineNo, fields[2])
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("scenario: trace line %d: negative node id in %q", lineNo, line)
		}
		if u == v {
			return nil, fmt.Errorf("scenario: trace line %d: node %d contacts itself", lineNo, u)
		}
		rows = append(rows, row{t: t, u: graph.NodeID(u), v: graph.NodeID(v)})
		for _, id := range []graph.NodeID{rows[len(rows)-1].u, rows[len(rows)-1].v} {
			seen[id] = true
			if id > maxID {
				maxID = id
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scenario: reading trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("scenario: trace contains no contacts")
	}
	if maxID < 1 {
		return nil, fmt.Errorf("scenario: trace names fewer than 2 nodes")
	}
	// Node ids must be dense 0..maxID: a gap would create a phantom node
	// that owns a datum but never interacts, making every workload
	// silently unwinnable (the sink, node 0, is the common victim of
	// 1-based traces).
	for id := graph.NodeID(0); id <= maxID; id++ {
		if !seen[id] {
			return nil, fmt.Errorf("scenario: trace node ids are not contiguous: %d never appears (ids must be 0..%d; renumber 1-based traces)", id, maxID)
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].t < rows[j].t })
	steps := make([]seq.Interaction, len(rows))
	for i, rw := range rows {
		it, err := seq.NewInteraction(rw.u, rw.v)
		if err != nil {
			return nil, err // unreachable: u != v checked above
		}
		steps[i] = it
	}
	return seq.NewSequence(int(maxID)+1, steps)
}

// TraceAdversary wraps a replayed trace as a finite oblivious adversary.
func TraceAdversary(s *seq.Sequence) (core.Adversary, error) {
	return adversary.NewOblivious("trace", s)
}
