// Package scenario is the workload-generation layer: deterministic,
// seedable dynamic-graph contact models that go beyond the paper's own
// adversaries. Where package adversary implements the constructions the
// paper analyses (uniform/weighted randomized, recurrent, the
// impossibility sequences), this package generates the workloads the
// wider dynamic-network literature evaluates against — edge-Markovian
// dynamic graphs, community-structured contact patterns, node churn,
// and replayed real-world contact traces.
//
// # Determinism and seed derivation
//
// Every model is a pure function of (n, params, seed): same model, same
// seed ⇒ bit-for-bit the same interaction sequence, across runs and
// platforms, exactly like the rest of the repository's randomness
// (package rng). Models never consult ambient state; all randomness
// flows from the rng.Source a caller hands the generator, which is how
// the sweep layer can re-run any single cell of a grid in isolation and
// get the identical sequence.
//
// # Contract with the execution stack
//
// A Model is a generator of interactions that plugs into the existing
// stack unchanged: wrapped into a seq.Stream (so knowledge oracles can
// look ahead consistently) and exposed as an oblivious core.Adversary,
// or fed straight to the engine through adversary.Generated on the
// allocation-free fast path when no look-ahead is needed. Spec.Model is
// the generative fast path; Spec.Build the stream-backed general path
// (required for trace replay and for knowledge-consuming algorithms).
//
// The Registry (see registry.go) catalogues the built-in models with
// their parameters, defaults and citations; cmd/dodascen, the -scenario
// flags of the CLIs, and the sweep grid expander all resolve workloads
// through it, so adding one Spec lights a workload up across the whole
// stack. DefaultCap is the shared generous interaction budget for runs
// that must terminate.
package scenario
