package scenario

import (
	"math"
	"strings"
	"testing"

	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/graph"
	"doda/internal/rng"
	"doda/internal/seq"
)

// models returns one instance of every generative model for table tests.
func models(t *testing.T, n int) map[string]Model {
	t.Helper()
	uni, err := NewUniform(n)
	if err != nil {
		t.Fatal(err)
	}
	em, err := NewEdgeMarkovian(n, 0.1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := EvenSizes(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewCommunity(sizes, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := NewUniform(n)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChurn(inner, 0.05, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Model{"uniform": uni, "edge-markovian": em, "community": cm, "churn": ch}
}

func TestDeterminism(t *testing.T) {
	// Same model, same seed: bit-for-bit identical sequences. A different
	// seed must diverge somewhere in the prefix.
	const n, prefix = 16, 2000
	for name, m := range models(t, n) {
		t.Run(name, func(t *testing.T) {
			a, err := Stream(m, 42)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Stream(m, 42)
			if err != nil {
				t.Fatal(err)
			}
			c, err := Stream(m, 43)
			if err != nil {
				t.Fatal(err)
			}
			diverged := false
			for i := 0; i < prefix; i++ {
				if a.At(i) != b.At(i) {
					t.Fatalf("t=%d: same seed diverged: %v vs %v", i, a.At(i), b.At(i))
				}
				if a.At(i) != c.At(i) {
					diverged = true
				}
			}
			if !diverged {
				t.Error("seeds 42 and 43 produced identical prefixes")
			}
		})
	}
}

func TestGeneratedInteractionsAreValid(t *testing.T) {
	const n, prefix = 11, 3000
	for name, m := range models(t, n) {
		t.Run(name, func(t *testing.T) {
			st, err := Stream(m, 7)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < prefix; i++ {
				it := st.At(i)
				if it.U < 0 || int(it.V) >= n || it.U >= it.V {
					t.Fatalf("t=%d: invalid interaction %v", i, it)
				}
			}
		})
	}
}

func TestEdgeMarkovianValidation(t *testing.T) {
	for _, tt := range []struct {
		name       string
		n          int
		pUp, pDown float64
	}{
		{name: "too few nodes", n: 1, pUp: 0.5, pDown: 0.5},
		{name: "zero birth", n: 4, pUp: 0, pDown: 0.5},
		{name: "birth above one", n: 4, pUp: 1.5, pDown: 0.5},
		{name: "negative death", n: 4, pUp: 0.5, pDown: -0.1},
		{name: "death above one", n: 4, pUp: 0.5, pDown: 1.1},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewEdgeMarkovian(tt.n, tt.pUp, tt.pDown); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestEdgeMarkovianPersistence(t *testing.T) {
	// With births rare and the live set sparse (stationary density
	// ~0.04, i.e. two or three live edges), interactions should repeat
	// the same pair on consecutive steps far more often than the
	// memoryless uniform model's 1/66.
	m, err := NewEdgeMarkovian(12, 0.002, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Stream(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	repeats := 0
	const steps = 2000
	for i := 1; i < steps; i++ {
		if st.At(i) == st.At(i-1) {
			repeats++
		}
	}
	// Uniform would repeat with probability 1/66 (~30 of 2000); the
	// sparse, slowly-changing live set should repeat much more often.
	if repeats < 100 {
		t.Errorf("only %d/%d consecutive repeats; edge persistence looks broken", repeats, steps)
	}
}

func TestCommunityValidation(t *testing.T) {
	for _, tt := range []struct {
		name   string
		sizes  []int
		pIntra float64
	}{
		{name: "no communities", sizes: nil, pIntra: 0.5},
		{name: "empty community", sizes: []int{3, 0, 2}, pIntra: 0.5},
		{name: "single node", sizes: []int{1}, pIntra: 0.5},
		{name: "negative p", sizes: []int{2, 2}, pIntra: -0.1},
		{name: "p above one", sizes: []int{2, 2}, pIntra: 1.5},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewCommunity(tt.sizes, tt.pIntra); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestCommunityIntraFraction(t *testing.T) {
	// The realised intra-community fraction must track p-intra.
	sizes := []int{5, 5, 5}
	m, err := NewCommunity(sizes, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	commOf := func(u graph.NodeID) int { return int(u) / 5 }
	st, err := Stream(m, 11)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 20000
	intra := 0
	for i := 0; i < steps; i++ {
		it := st.At(i)
		if commOf(it.U) == commOf(it.V) {
			intra++
		}
	}
	frac := float64(intra) / steps
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("intra fraction %.3f, want ~0.75", frac)
	}
}

func TestCommunityDegenerateCases(t *testing.T) {
	// All-singleton communities leave no intra pairs: every interaction
	// must be inter-community even at p-intra = 1.
	m, err := NewCommunity([]int{1, 1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Stream(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		it := st.At(i)
		if it.U == it.V {
			t.Fatalf("self-interaction %v", it)
		}
	}
	// A single community has no inter pairs: p-intra = 0 must still
	// generate (intra) interactions.
	m2, err := NewCommunity([]int{4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Stream(m2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if it := st2.At(i); int(it.V) >= 4 {
			t.Fatalf("out of range interaction %v", it)
		}
	}
}

func TestEvenSizes(t *testing.T) {
	sizes, err := EvenSizes(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 3, 3}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
	if _, err := EvenSizes(2, 3); err == nil {
		t.Error("want error: more communities than nodes")
	}
	if _, err := EvenSizes(4, 0); err == nil {
		t.Error("want error: zero communities")
	}
}

func TestChurnValidation(t *testing.T) {
	inner, err := NewUniform(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []struct {
		name            string
		inner           Model
		pFail, pRecover float64
	}{
		{name: "nil inner", inner: nil, pFail: 0.1, pRecover: 0.5},
		{name: "negative fail", inner: inner, pFail: -0.1, pRecover: 0.5},
		{name: "fail above one", inner: inner, pFail: 1.1, pRecover: 0.5},
		{name: "zero recover", inner: inner, pFail: 0.1, pRecover: 0},
		{name: "recover above one", inner: inner, pFail: 0.1, pRecover: 1.5},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewChurn(tt.inner, tt.pFail, tt.pRecover); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestChurnHeavyOfflineStillProgresses(t *testing.T) {
	// Even with most nodes offline most of the time, the generator must
	// keep emitting valid interactions (progress is guaranteed by
	// p-recover > 0).
	inner, err := NewUniform(6)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewChurn(inner, 0.9, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Stream(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		it := st.At(i)
		if it.U < 0 || int(it.V) >= 6 || it.U >= it.V {
			t.Fatalf("t=%d: invalid interaction %v", i, it)
		}
	}
}

func TestReplayTrace(t *testing.T) {
	const trace = `# an example contact trace
time,u,v

3,2,0
1,4,1
1,0,1
2, 3 , 4
`
	s, err := ReplayTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 5 {
		t.Errorf("n = %d, want 5", s.N())
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
	// Stable sort by time: the two t=1 rows keep file order.
	want := []seq.Interaction{
		seq.MustInteraction(4, 1),
		seq.MustInteraction(0, 1),
		seq.MustInteraction(3, 4),
		seq.MustInteraction(2, 0),
	}
	for i, w := range want {
		if s.At(i) != w {
			t.Errorf("step %d = %v, want %v", i, s.At(i), w)
		}
	}
}

func TestReplayTraceErrors(t *testing.T) {
	for _, tt := range []struct {
		name, trace string
	}{
		{name: "empty", trace: ""},
		{name: "comments only", trace: "# nothing\n"},
		{name: "missing field", trace: "1,2\n"},
		{name: "extra field", trace: "1,2,3,4\n"},
		{name: "bad time", trace: "x,1,2\n"},
		{name: "bad node", trace: "1,a,2\n"},
		{name: "negative node", trace: "1,-1,2\n"},
		{name: "self contact", trace: "1,2,2\n"},
		{name: "single node", trace: "1,0,0\n"},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReplayTrace(strings.NewReader(tt.trace)); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestRegistryBuildAndRun(t *testing.T) {
	// Every generative scenario builds from its defaults and Gathering
	// terminates against it.
	for _, spec := range All() {
		if spec.Name == "trace" {
			continue // needs a file; covered by the dodascen CLI tests
		}
		t.Run(spec.Name, func(t *testing.T) {
			const n = 12
			w, err := spec.Build(n, 9, nil)
			if err != nil {
				t.Fatal(err)
			}
			if w.N != n {
				t.Fatalf("workload n = %d, want %d", w.N, n)
			}
			res, err := core.RunOnce(core.Config{N: w.N, MaxInteractions: 400 * n * n, VerifyAggregate: true},
				algorithms.NewGathering(), w.Adversary)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Terminated {
				t.Fatalf("gathering did not terminate: %+v", res)
			}
			if res.Transmissions != n-1 {
				t.Errorf("transmissions = %d, want %d", res.Transmissions, n-1)
			}
		})
	}
}

func TestRegistryLookup(t *testing.T) {
	if len(All()) < 4 {
		t.Fatalf("only %d registered scenarios, want >= 4", len(All()))
	}
	if _, ok := Lookup("edge-markovian"); !ok {
		t.Error("edge-markovian not registered")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("lookup of unknown scenario succeeded")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
}

func TestRegistryRejectsUnknownAndBadParams(t *testing.T) {
	spec, ok := Lookup("edge-markovian")
	if !ok {
		t.Fatal("edge-markovian not registered")
	}
	if _, err := spec.Build(8, 1, map[string]string{"bogus": "1"}); err == nil {
		t.Error("want error for unknown parameter")
	}
	if _, err := spec.Build(8, 1, map[string]string{"p-up": "zzz"}); err == nil {
		t.Error("want error for non-numeric parameter")
	}
	if _, err := spec.Build(8, 1, map[string]string{"p-up": "2"}); err == nil {
		t.Error("want error for out-of-range probability")
	}
	churn, ok := Lookup("churn")
	if !ok {
		t.Fatal("churn not registered")
	}
	if _, err := churn.Build(8, 1, map[string]string{"inner": "nope"}); err == nil {
		t.Error("want error for unknown inner model")
	}
	tr, ok := Lookup("trace")
	if !ok {
		t.Fatal("trace not registered")
	}
	if _, err := tr.Build(8, 1, nil); err == nil {
		t.Error("want error for missing trace file")
	}
}

func TestRegistryDeterministicAcrossBuilds(t *testing.T) {
	// The registry path must be as reproducible as the raw models: the
	// acceptance criterion "identical seeds reproduce identical
	// sequences" checked end to end.
	spec, ok := Lookup("edge-markovian")
	if !ok {
		t.Fatal("edge-markovian not registered")
	}
	runOnce := func() core.Result {
		w, err := spec.Build(16, 42, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.RunOnce(core.Config{N: w.N, MaxInteractions: 1 << 18},
			algorithms.NewGathering(), w.Adversary)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runOnce(), runOnce()
	// Compare scalar outcome fields (SinkValue holds a provenance
	// pointer, which never compares equal across runs).
	if a.Terminated != b.Terminated || a.Duration != b.Duration ||
		a.Interactions != b.Interactions || a.Transmissions != b.Transmissions ||
		a.Declined != b.Declined || a.LastGap != b.LastGap ||
		a.SinkValue.Num != b.SinkValue.Num || a.SinkValue.Count != b.SinkValue.Count {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestBernoulliIndicesTinyProbability(t *testing.T) {
	// A sub-denormal flip probability must not overflow the geometric
	// skip into a negative index (it used to panic downstream).
	src := rng.New(1)
	for i := 0; i < 100; i++ {
		if got := bernoulliIndices(src, 1<<20, 1e-300, nil); len(got) != 0 {
			for _, idx := range got {
				if idx < 0 || idx >= 1<<20 {
					t.Fatalf("index %d out of range", idx)
				}
			}
		}
	}
}

func TestReplayTraceRejectsGappyIDs(t *testing.T) {
	// 1-based trace: node 0 (the conventional sink) never appears.
	if _, err := ReplayTrace(strings.NewReader("1,1,2\n2,2,3\n")); err == nil {
		t.Error("want error for non-contiguous node ids")
	}
	// Gap in the middle: node 1 missing.
	if _, err := ReplayTrace(strings.NewReader("1,0,2\n")); err == nil {
		t.Error("want error for missing intermediate id")
	}
}

func TestParseParams(t *testing.T) {
	got, err := ParseParams(" p-up = 0.1 ,p-down=0.3")
	if err != nil {
		t.Fatal(err)
	}
	if got["p-up"] != "0.1" || got["p-down"] != "0.3" {
		t.Errorf("params = %v", got)
	}
	for _, bad := range []string{"novalue", "k=", "=v", ","} {
		if _, err := ParseParams(bad); err == nil {
			t.Errorf("ParseParams(%q): want error", bad)
		}
	}
	if got, err := ParseParams(""); err != nil || len(got) != 0 {
		t.Errorf("empty input: %v, %v", got, err)
	}
}

func TestExtremeProbabilitiesStayResponsive(t *testing.T) {
	// Near-zero birth/recovery probabilities must not stall the
	// generators: the fast-forward paths sample the next birth/recovery
	// directly instead of spinning through astronomically many ticks.
	em, err := NewEdgeMarkovian(8, 1e-18, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Stream(em, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if it := st.At(i); int(it.V) >= 8 {
			t.Fatalf("invalid interaction %v", it)
		}
	}
	inner, err := NewUniform(8)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChurn(inner, 1, 1e-18)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Stream(ch, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if it := st2.At(i); int(it.V) >= 8 {
			t.Fatalf("invalid interaction %v", it)
		}
	}
}

func TestNaNProbabilitiesRejected(t *testing.T) {
	nan := math.NaN()
	if _, err := NewEdgeMarkovian(8, nan, 0.2); err == nil {
		t.Error("edge-markovian accepted NaN birth probability")
	}
	if _, err := NewEdgeMarkovian(8, 0.2, nan); err == nil {
		t.Error("edge-markovian accepted NaN death probability")
	}
	if _, err := NewCommunity([]int{4, 4}, nan); err == nil {
		t.Error("community accepted NaN intra probability")
	}
	inner, err := NewUniform(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewChurn(inner, nan, 0.2); err == nil {
		t.Error("churn accepted NaN failure probability")
	}
	if _, err := NewChurn(inner, 0.2, nan); err == nil {
		t.Error("churn accepted NaN recovery probability")
	}
	// End to end: the CLI parameter path accepts the literal "NaN".
	spec, ok := Lookup("edge-markovian")
	if !ok {
		t.Fatal("edge-markovian not registered")
	}
	if _, err := spec.Build(8, 1, map[string]string{"p-up": "NaN"}); err == nil {
		t.Error("registry accepted p-up=NaN")
	}
}
