package scenario

// Uniform wraps the paper's randomized adversary (§4) as a Model so it
// sits in the same registry as the richer workloads and can serve as the
// inner contact model of Churn.

import (
	"fmt"

	"doda/internal/rng"
	"doda/internal/seq"
)

// Uniform draws every interaction uniformly over the n(n-1)/2 pairs.
type Uniform struct {
	n int
}

var _ Model = (*Uniform)(nil)

// NewUniform validates n >= 2.
func NewUniform(n int) (*Uniform, error) {
	if n < 2 {
		return nil, fmt.Errorf("scenario: uniform model needs at least 2 nodes, got %d", n)
	}
	return &Uniform{n: n}, nil
}

// Name implements Model.
func (m *Uniform) Name() string { return "uniform" }

// N implements Model.
func (m *Uniform) N() int { return m.n }

// Generator implements Model.
func (m *Uniform) Generator(src *rng.Source) func(t int) seq.Interaction {
	return seq.UniformGen(m.n, src)
}
