package scenario

// The scenario registry: a central catalogue of named workloads with
// their parameters, documentation and citations. cmd/dodascen, the
// -scenario flag of cmd/dodasim, and the experiment harness all resolve
// workloads through it, so adding one Spec here lights the workload up
// across the whole stack.

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"doda/internal/core"
	"doda/internal/seq"
)

// Param documents one scenario parameter.
type Param struct {
	// Name is the key accepted in the params map.
	Name string
	// Default is the value used when the key is absent ("" = required).
	Default string
	// Doc is a one-line description.
	Doc string
}

// Workload is a built scenario instance ready to execute: the adversary
// to play, the sequence view backing knowledge oracles (the same object
// the adversary reads), and the node count — which may differ from the
// requested one for trace replay, where the trace dictates it.
type Workload struct {
	Adversary core.Adversary
	View      seq.View
	N         int
}

// Spec is one registered scenario.
type Spec struct {
	// Name is the registry key (e.g. "edge-markovian").
	Name string
	// Description is a one-line summary of the contact model.
	Description string
	// Citation anchors the model in the literature.
	Citation string
	// Params documents the accepted parameters.
	Params []Param
	// Build instantiates the workload for n nodes and the given seed.
	// params may override the documented defaults; unknown keys are
	// rejected.
	Build func(n int, seed uint64, params map[string]string) (*Workload, error)
	// Model instantiates the bare generative model, when the scenario is
	// generative (nil for trace replay, whose sequence comes from a
	// file). Sweep hot loops prefer it over Build: a Model's generator
	// can feed the engine directly, without the O(T) stream caching that
	// Build's knowledge-oracle-ready Workload carries.
	Model func(n int, params map[string]string) (Model, error)
}

// All returns every registered scenario in display order.
func All() []Spec {
	return []Spec{
		uniformSpec(),
		zipfSpec(),
		edgeMarkovianSpec(),
		communitySpec(),
		churnSpec(),
		traceSpec(),
	}
}

// Lookup finds a scenario by name.
func Lookup(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// Documented scenario defaults. The Param.Default strings, the Build
// fallbacks, and churn's inner-model construction all derive from these
// constants, so they cannot drift apart.
const (
	defEMBirth      = 0.05
	defEMDeath      = 0.2
	defCommunities  = 4
	defCommIntra    = 0.9
	defChurnFail    = 0.02
	defChurnRecover = 0.2
	defZipfAlpha    = 1.0
)

// DefaultCap is the generous interaction budget the CLIs share for
// scenario runs when the user gives no explicit cap: scenario workloads
// (community, churn, ...) can be far slower than the uniform adversary,
// and both front-ends must agree on identical runs.
func DefaultCap(n int) int { return 400*n*n + 10000 }

// defaultInner builds the inner contact model churn wraps, using exactly
// the defaults the named spec documents.
func defaultInner(name string, n int) (Model, error) {
	switch name {
	case "uniform":
		return NewUniform(n)
	case "edge-markovian":
		return NewEdgeMarkovian(n, defEMBirth, defEMDeath)
	case "community":
		sizes, err := EvenSizes(n, defCommunities)
		if err != nil {
			return nil, err
		}
		return NewCommunity(sizes, defCommIntra)
	default:
		return nil, fmt.Errorf("scenario: unknown inner model %q (want uniform, edge-markovian or community)", name)
	}
}

// fv renders a default constant for Param.Default documentation.
func fv(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseParams splits a command-line "k=v,k2=v2" string into the params
// map Spec.Build accepts — the one parser both CLIs share, so parameter
// syntax cannot drift between them. Keys and values are trimmed; empty
// keys or values are rejected.
func ParseParams(raw string) (map[string]string, error) {
	params := map[string]string{}
	if raw == "" {
		return params, nil
	}
	for _, kv := range strings.Split(raw, ",") {
		k, v, ok := strings.Cut(kv, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("scenario: bad params entry %q (want key=value)", kv)
		}
		params[k] = v
	}
	return params, nil
}

// checkKnown rejects parameter keys the spec does not document.
func checkKnown(params map[string]string, known []Param) error {
	for k := range params {
		ok := false
		for _, p := range known {
			if p.Name == k {
				ok = true
				break
			}
		}
		if !ok {
			names := make([]string, len(known))
			for i, p := range known {
				names[i] = p.Name
			}
			return fmt.Errorf("scenario: unknown parameter %q (known: %v)", k, names)
		}
	}
	return nil
}

// floatParam reads params[name] as a float, falling back to def.
func floatParam(params map[string]string, name string, def float64) (float64, error) {
	raw, ok := params[name]
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("scenario: parameter %s=%q is not a number", name, raw)
	}
	return v, nil
}

// intParam reads params[name] as an int, falling back to def.
func intParam(params map[string]string, name string, def int) (int, error) {
	raw, ok := params[name]
	if !ok {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("scenario: parameter %s=%q is not an integer", name, raw)
	}
	return v, nil
}

// modelWorkload wraps a Model into a Workload via Adversary.
func modelWorkload(m Model, seed uint64) (*Workload, error) {
	adv, st, err := Adversary(m, seed)
	if err != nil {
		return nil, err
	}
	return &Workload{Adversary: adv, View: st, N: m.N()}, nil
}

// buildFromModel derives a Spec's Build from its Model constructor, so the
// two instantiation paths cannot disagree about parameters.
func buildFromModel(s *Spec) {
	s.Build = func(n int, seed uint64, params map[string]string) (*Workload, error) {
		m, err := s.Model(n, params)
		if err != nil {
			return nil, err
		}
		return modelWorkload(m, seed)
	}
}

func uniformSpec() Spec {
	s := Spec{
		Name:        "uniform",
		Description: "every interaction drawn uniformly over the n(n-1)/2 pairs (the paper's randomized adversary)",
		Citation:    "Bramas, Masuzawa, Tixeuil: Distributed Online Data Aggregation in Dynamic Graphs (ICDCS 2016), §4",
	}
	s.Model = func(n int, params map[string]string) (Model, error) {
		if err := checkKnown(params, s.Params); err != nil {
			return nil, err
		}
		return NewUniform(n)
	}
	buildFromModel(&s)
	return s
}

func zipfSpec() Spec {
	s := Spec{
		Name:        "zipf",
		Description: "endpoints drawn with Zipf(alpha) per-node weights, node 0 (the sink) heaviest",
		Citation:    "Bramas, Masuzawa, Tixeuil (ICDCS 2016), §5 open question 3",
		Params: []Param{
			{Name: "alpha", Default: fv(defZipfAlpha), Doc: "skew exponent; 0 recovers the uniform model"},
		},
	}
	s.Model = func(n int, params map[string]string) (Model, error) {
		if err := checkKnown(params, s.Params); err != nil {
			return nil, err
		}
		alpha, err := floatParam(params, "alpha", defZipfAlpha)
		if err != nil {
			return nil, err
		}
		return NewZipf(n, alpha)
	}
	buildFromModel(&s)
	return s
}

func edgeMarkovianSpec() Spec {
	s := Spec{
		Name:        "edge-markovian",
		Description: "every potential edge is a two-state Markov chain (birth p-up, death p-down); interactions are uniform over the live edges",
		Citation:    "Clementi, Macci, Monti, Pasquale, Silvestri: Flooding Time in Edge-Markovian Dynamic Graphs (PODC 2008)",
		Params: []Param{
			{Name: "p-up", Default: fv(defEMBirth), Doc: "per-step birth probability of an absent edge, in (0, 1]"},
			{Name: "p-down", Default: fv(defEMDeath), Doc: "per-step death probability of a present edge, in [0, 1]"},
		},
	}
	s.Model = func(n int, params map[string]string) (Model, error) {
		if err := checkKnown(params, s.Params); err != nil {
			return nil, err
		}
		pUp, err := floatParam(params, "p-up", defEMBirth)
		if err != nil {
			return nil, err
		}
		pDown, err := floatParam(params, "p-down", defEMDeath)
		if err != nil {
			return nil, err
		}
		return NewEdgeMarkovian(n, pUp, pDown)
	}
	buildFromModel(&s)
	return s
}

func communitySpec() Spec {
	s := Spec{
		Name:        "community",
		Description: "nodes partitioned into k communities; interactions are intra-community with probability p-intra, cross-community otherwise",
		Citation:    "Girvan, Newman: Community Structure in Social and Biological Networks (PNAS 2002)",
		Params: []Param{
			{Name: "communities", Default: strconv.Itoa(defCommunities), Doc: "number of (near-)equal-size communities"},
			{Name: "p-intra", Default: fv(defCommIntra), Doc: "probability an interaction stays within a community"},
		},
	}
	s.Model = func(n int, params map[string]string) (Model, error) {
		if err := checkKnown(params, s.Params); err != nil {
			return nil, err
		}
		k, err := intParam(params, "communities", defCommunities)
		if err != nil {
			return nil, err
		}
		pIntra, err := floatParam(params, "p-intra", defCommIntra)
		if err != nil {
			return nil, err
		}
		sizes, err := EvenSizes(n, k)
		if err != nil {
			return nil, err
		}
		return NewCommunity(sizes, pIntra)
	}
	buildFromModel(&s)
	return s
}

func churnSpec() Spec {
	s := Spec{
		Name:        "churn",
		Description: "per-node online/offline availability chains filtering an inner contact model; offline nodes meet nobody",
		Citation:    "Stutzbach, Rejaie: Understanding Churn in Peer-to-Peer Networks (IMC 2006)",
		Params: []Param{
			{Name: "p-fail", Default: fv(defChurnFail), Doc: "per-step probability an online node goes offline, in [0, 1]"},
			{Name: "p-recover", Default: fv(defChurnRecover), Doc: "per-step probability an offline node comes back, in (0, 1]"},
			{Name: "inner", Default: "uniform", Doc: "inner contact model: uniform | edge-markovian | community (with default parameters)"},
		},
	}
	s.Model = func(n int, params map[string]string) (Model, error) {
		if err := checkKnown(params, s.Params); err != nil {
			return nil, err
		}
		pFail, err := floatParam(params, "p-fail", defChurnFail)
		if err != nil {
			return nil, err
		}
		pRecover, err := floatParam(params, "p-recover", defChurnRecover)
		if err != nil {
			return nil, err
		}
		innerName := params["inner"]
		if innerName == "" {
			innerName = "uniform"
		}
		inner, err := defaultInner(innerName, n)
		if err != nil {
			return nil, err
		}
		return NewChurn(inner, pFail, pRecover)
	}
	buildFromModel(&s)
	return s
}

func traceSpec() Spec {
	s := Spec{
		Name:        "trace",
		Description: "replay a CSV contact trace (time,u,v rows); the trace dictates the node count and sequence length",
		Citation:    "Chaintreau, Hui, Crowcroft, Diot, Gass, Scott: Impact of Human Mobility on Opportunistic Forwarding Algorithms (INFOCOM 2006)",
		Params: []Param{
			{Name: "file", Default: "", Doc: "path to the CSV trace (required)"},
		},
	}
	s.Build = func(_ int, _ uint64, params map[string]string) (*Workload, error) {
		if err := checkKnown(params, s.Params); err != nil {
			return nil, err
		}
		path := params["file"]
		if path == "" {
			return nil, fmt.Errorf("scenario: the trace scenario requires file=<path>")
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		sq, err := ReplayTrace(f)
		if err != nil {
			return nil, err
		}
		adv, err := TraceAdversary(sq)
		if err != nil {
			return nil, err
		}
		return &Workload{Adversary: adv, View: sq, N: sq.N()}, nil
	}
	return s
}
