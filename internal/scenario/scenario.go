package scenario

import (
	"fmt"
	"math"

	"doda/internal/adversary"
	"doda/internal/core"
	"doda/internal/rng"
	"doda/internal/seq"
)

// Model is a seedable dynamic-graph workload generator. Implementations
// carry validated parameters; all randomness flows through the rng.Source
// handed to Generator, so one Model value can deterministically spawn any
// number of independent sequences.
type Model interface {
	// Name identifies the model (used as the adversary name in results).
	Name() string
	// N returns the number of nodes in the generated workloads.
	N() int
	// Generator returns a fresh interaction generator drawing all its
	// randomness from src. Generators are stateful and single-stream:
	// they must be called with t = 0, 1, 2, ... as seq.Stream does.
	Generator(src *rng.Source) func(t int) seq.Interaction
}

// Stream wraps a model into a lazily materialised unbounded sequence
// seeded with seed.
func Stream(m Model, seed uint64) (*seq.Stream, error) {
	if m == nil {
		return nil, fmt.Errorf("scenario: nil model")
	}
	return seq.NewStream(m.N(), m.Generator(rng.New(seed)))
}

// Adversary wraps a model into an oblivious adversary plus the stream
// backing it (hand the stream to knowledge oracles so that adversary and
// oracles agree on the sequence).
func Adversary(m Model, seed uint64) (core.Adversary, *seq.Stream, error) {
	st, err := Stream(m, seed)
	if err != nil {
		return nil, nil, err
	}
	adv, err := adversary.NewOblivious(m.Name(), st)
	if err != nil {
		return nil, nil, err
	}
	return adv, st, nil
}

// bernoulliIndices appends to out the indices i in [0, m) of an i.i.d.
// Bernoulli(p) trial sequence that came up true, using geometric skipping:
// expected cost O(1 + m·p) draws instead of m, which keeps per-tick edge
// and availability updates cheap when flip probabilities are small.
func bernoulliIndices(src *rng.Source, m int, p float64, out []int) []int {
	switch {
	case m <= 0 || p <= 0:
		return out
	case p >= 1:
		for i := 0; i < m; i++ {
			out = append(out, i)
		}
		return out
	}
	// Skip to the next success: K ~ Geometric(p) failures first, i.e.
	// K = floor(log(U) / log(1-p)) for U uniform in (0, 1].
	logq := math.Log1p(-p)
	i := 0
	for {
		u := 1 - src.Float64() // (0, 1]: avoids log(0)
		// Compare in float space before converting: for tiny p the skip
		// can exceed MaxInt64, and float-to-int overflow is undefined.
		skip := math.Log(u) / logq
		if skip >= float64(m-i) {
			return out
		}
		i += int(skip)
		if i >= m {
			return out
		}
		out = append(out, i)
		i++
	}
}
