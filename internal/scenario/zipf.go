package scenario

// Zipf packages the weighted randomized adversary with Zipf(alpha)
// per-node weights as a Model, so skewed contact patterns sit in the same
// registry (and the same fast sweep path) as the other generative
// workloads. Node 0 — the conventional sink — is the heaviest node.

import (
	"fmt"

	"doda/internal/adversary"
	"doda/internal/rng"
	"doda/internal/seq"
)

// Zipf draws both interaction endpoints with probability proportional to
// w_i = 1/(i+1)^alpha, without replacement.
type Zipf struct {
	n     int
	alpha float64
	ws    []float64
}

var _ Model = (*Zipf)(nil)

// NewZipf validates n >= 2 and alpha >= 0 (alpha = 0 recovers the
// uniform-weight model).
func NewZipf(n int, alpha float64) (*Zipf, error) {
	ws, err := adversary.ZipfWeights(n, alpha)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return &Zipf{n: n, alpha: alpha, ws: ws}, nil
}

// Name implements Model.
func (m *Zipf) Name() string { return "zipf" }

// N implements Model.
func (m *Zipf) N() int { return m.n }

// Generator implements Model.
func (m *Zipf) Generator(src *rng.Source) func(t int) seq.Interaction {
	gen, err := adversary.WeightedGen(m.ws, src)
	if err != nil {
		// Unreachable: NewZipf validated the weights.
		panic(err)
	}
	return gen
}
