package scenario

// Community-structured contacts: nodes are partitioned into communities
// and each interaction is intra-community with probability pIntra
// (uniform over all within-community pairs) and inter-community otherwise
// (uniform over all cross-community pairs). This generalises the paper's
// open question 3 beyond per-node weights: contact skew here is a
// property of node *groups*, the shape reported for human and animal
// contact networks (Girvan & Newman, PNAS 2002).

import (
	"fmt"

	"doda/internal/graph"
	"doda/internal/rng"
	"doda/internal/seq"
)

// Community is the clustered contact model. Nodes are numbered
// consecutively by community: sizes [3, 2] puts nodes 0-2 in community 0
// and nodes 3-4 in community 1.
type Community struct {
	sizes  []int
	starts []int // community -> first node id
	n      int
	pIntra float64

	intraPairs []int // community -> s(s-1)/2
	totalIntra int
	totalInter int // ordered cross-community picks: Σ_c s_c·(n - s_c)
}

var _ Model = (*Community)(nil)

// NewCommunity validates the partition: at least one community, no empty
// communities, at least 2 nodes in total, pIntra in [0, 1].
func NewCommunity(sizes []int, pIntra float64) (*Community, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("scenario: community model needs at least one community")
	}
	if !(pIntra >= 0 && pIntra <= 1) { // negated form also rejects NaN
		return nil, fmt.Errorf("scenario: intra-community probability %v outside [0, 1]", pIntra)
	}
	m := &Community{
		sizes:      append([]int(nil), sizes...),
		starts:     make([]int, len(sizes)),
		pIntra:     pIntra,
		intraPairs: make([]int, len(sizes)),
	}
	for c, s := range m.sizes {
		if s < 1 {
			return nil, fmt.Errorf("scenario: community %d is empty (size %d)", c, s)
		}
		m.starts[c] = m.n
		m.n += s
		m.intraPairs[c] = s * (s - 1) / 2
		m.totalIntra += m.intraPairs[c]
	}
	if m.n < 2 {
		return nil, fmt.Errorf("scenario: community model needs at least 2 nodes, got %d", m.n)
	}
	for _, s := range m.sizes {
		m.totalInter += s * (m.n - s)
	}
	return m, nil
}

// EvenSizes splits n nodes into k communities as evenly as possible (the
// first n mod k communities get the extra node).
func EvenSizes(n, k int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("scenario: need at least one community, got %d", k)
	}
	if n < k {
		return nil, fmt.Errorf("scenario: %d nodes cannot fill %d communities", n, k)
	}
	sizes := make([]int, k)
	for c := range sizes {
		sizes[c] = n / k
		if c < n%k {
			sizes[c]++
		}
	}
	return sizes, nil
}

// Name implements Model.
func (m *Community) Name() string { return "community" }

// N implements Model.
func (m *Community) N() int { return m.n }

// Generator implements Model.
func (m *Community) Generator(src *rng.Source) func(t int) seq.Interaction {
	return func(int) seq.Interaction {
		intra := m.totalInter == 0 ||
			(m.totalIntra > 0 && src.Bernoulli(m.pIntra))
		if intra {
			return m.pickIntra(src)
		}
		return m.pickInter(src)
	}
}

// pickIntra draws uniformly over all within-community pairs.
func (m *Community) pickIntra(src *rng.Source) seq.Interaction {
	k := src.Intn(m.totalIntra)
	for c, pairs := range m.intraPairs {
		if k >= pairs {
			k -= pairs
			continue
		}
		// k indexes the pairs {i, i+1..s-1} lexicographically, as in
		// rng.Pair.
		i, rowLen := 0, m.sizes[c]-1
		for k >= rowLen {
			k -= rowLen
			i++
			rowLen--
		}
		base := m.starts[c]
		return seq.Interaction{
			U: graph.NodeID(base + i),
			V: graph.NodeID(base + i + 1 + k),
		}
	}
	panic("scenario: intra pair index out of range") // unreachable
}

// pickInter draws uniformly over all cross-community pairs by drawing an
// ordered pick (u from community c, v outside c) and canonicalising.
func (m *Community) pickInter(src *rng.Source) seq.Interaction {
	k := src.Intn(m.totalInter)
	for c, s := range m.sizes {
		picks := s * (m.n - s)
		if k >= picks {
			k -= picks
			continue
		}
		out := m.n - s
		u := m.starts[c] + k/out
		v := k % out
		// v counts nodes outside community c in id order; skip over the
		// community's contiguous id range.
		if v >= m.starts[c] {
			v += s
		}
		a, b := graph.NodeID(u), graph.NodeID(v)
		if a > b {
			a, b = b, a
		}
		return seq.Interaction{U: a, V: b}
	}
	panic("scenario: inter pair index out of range") // unreachable
}
