package scenario

// Node churn: each node is an independent two-state availability chain
// (online/offline) and interactions produced by an inner contact model
// are filtered to pairs of online nodes — offline nodes simply do not
// meet anyone, the dominant failure shape of peer-to-peer and sensor
// deployments (Stutzbach & Rejaie, IMC 2006). Because the DODA model
// forbids a node from participating after transmitting anyway, churn
// composes cleanly: an offline data owner just holds its datum until it
// comes back.

import (
	"fmt"

	"doda/internal/rng"
	"doda/internal/seq"
)

// Churn decorates an inner Model with node availability.
type Churn struct {
	inner           Model
	pFail, pRecover float64
}

var _ Model = (*Churn)(nil)

// NewChurn validates the availability chain: pFail in [0, 1], pRecover in
// (0, 1] (a node that can never recover would silence its datum forever,
// making every workload unwinnable).
func NewChurn(inner Model, pFail, pRecover float64) (*Churn, error) {
	if inner == nil {
		return nil, fmt.Errorf("scenario: churn needs an inner contact model")
	}
	if !(pFail >= 0 && pFail <= 1) { // negated form also rejects NaN
		return nil, fmt.Errorf("scenario: failure probability %v outside [0, 1]", pFail)
	}
	if !(pRecover > 0 && pRecover <= 1) {
		return nil, fmt.Errorf("scenario: recovery probability %v outside (0, 1]", pRecover)
	}
	return &Churn{inner: inner, pFail: pFail, pRecover: pRecover}, nil
}

// Name implements Model.
func (m *Churn) Name() string { return "churn(" + m.inner.Name() + ")" }

// N implements Model.
func (m *Churn) N() int { return m.inner.N() }

// Generator implements Model. All nodes start online; the inner model
// draws from an independent sub-stream split off src so that churn and
// contacts do not perturb each other's randomness.
func (m *Churn) Generator(src *rng.Source) func(t int) seq.Interaction {
	n := m.inner.N()
	innerGen := m.inner.Generator(src.Split())
	online := make([]bool, n)
	up := make([]int, n) // node ids currently online
	down := make([]int, 0, n)
	pos := make([]int, n) // node -> index in up or down
	for u := range online {
		online[u] = true
		up[u] = u
		pos[u] = u
	}
	var scratch, flips []int
	move := func(from *[]int, to *[]int, id int) {
		s := *from
		i, last := pos[id], len(s)-1
		s[i] = s[last]
		pos[s[i]] = i
		*from = s[:last]
		pos[id] = len(*to)
		*to = append(*to, id)
	}
	tick := func() {
		flips = flips[:0]
		scratch = bernoulliIndices(src, len(up), m.pFail, scratch[:0])
		for _, i := range scratch {
			flips = append(flips, up[i])
		}
		fails := len(flips)
		scratch = bernoulliIndices(src, len(down), m.pRecover, scratch[:0])
		for _, i := range scratch {
			flips = append(flips, down[i])
		}
		for _, id := range flips[:fails] {
			move(&up, &down, id)
			online[id] = false
		}
		for _, id := range flips[fails:] {
			move(&down, &up, id)
			online[id] = true
		}
	}
	// revive fast-forwards the availability chains to their next
	// recovery when fewer than two nodes are online. Offline nodes share
	// pRecover, so the first to recover is uniform among them — sampling
	// it directly keeps even tiny recovery probabilities O(1) per
	// interaction instead of spinning ~1/(offline·pRecover) ticks.
	revive := func() {
		for len(up) < 2 {
			id := down[src.Intn(len(down))]
			move(&down, &up, id)
			online[id] = true
		}
	}
	innerT := 0
	return func(int) seq.Interaction {
		tick()
		for {
			revive()
			// Resample the inner model until it meets two online nodes;
			// periodically advance the availability chains so a draw
			// always becomes possible (eventually every node is online,
			// and then any inner draw is valid).
			for attempt := 0; attempt < 64; attempt++ {
				it := innerGen(innerT)
				innerT++
				if online[it.U] && online[it.V] {
					return it
				}
			}
			tick()
		}
	}
}
