package scenario

// Edge-Markovian dynamic graphs — the standard stochastic dynamic-graph
// model in the literature (Clementi et al., PODC 2008): every potential
// edge is an independent two-state Markov chain that appears with
// probability pUp per step when absent and disappears with probability
// pDown per step when present. Each generated interaction is one step of
// the chain followed by a uniform draw among the currently alive edges,
// so contact patterns are temporally correlated: an edge that exists now
// tends to keep existing (bursty repeated contacts), unlike the
// memoryless uniform adversary.

import (
	"fmt"

	"doda/internal/graph"
	"doda/internal/rng"
	"doda/internal/seq"
)

// EdgeMarkovian is the per-edge birth/death contact model.
type EdgeMarkovian struct {
	n          int
	pUp, pDown float64
}

var _ Model = (*EdgeMarkovian)(nil)

// NewEdgeMarkovian validates the parameters: n >= 2, probabilities in
// [0, 1], and pUp > 0 (a chain that can never create edges would leave
// the generator with nothing to emit).
func NewEdgeMarkovian(n int, pUp, pDown float64) (*EdgeMarkovian, error) {
	if n < 2 {
		return nil, fmt.Errorf("scenario: edge-markovian needs at least 2 nodes, got %d", n)
	}
	if !(pUp > 0 && pUp <= 1) { // negated form also rejects NaN
		return nil, fmt.Errorf("scenario: edge birth probability %v outside (0, 1]", pUp)
	}
	if !(pDown >= 0 && pDown <= 1) {
		return nil, fmt.Errorf("scenario: edge death probability %v outside [0, 1]", pDown)
	}
	return &EdgeMarkovian{n: n, pUp: pUp, pDown: pDown}, nil
}

// Name implements Model.
func (m *EdgeMarkovian) Name() string { return "edge-markovian" }

// N implements Model.
func (m *EdgeMarkovian) N() int { return m.n }

// emGen is the mutable chain state of one generated sequence.
type emGen struct {
	src        *rng.Source
	pUp, pDown float64
	pairs      []seq.Interaction // edge id -> endpoints
	isLive     []bool            // edge id -> state
	pos        []int             // edge id -> index in live or dead
	live, dead []int             // edge ids by state
	scratch    []int             // reused flip buffer
	ids        []int             // reused flip buffer
}

// Generator implements Model. The chain starts in its stationary
// distribution (each edge alive with probability pUp/(pUp+pDown)) so the
// sequence has no warm-up transient.
func (m *EdgeMarkovian) Generator(src *rng.Source) func(t int) seq.Interaction {
	edges := m.n * (m.n - 1) / 2
	g := &emGen{
		src:    src,
		pUp:    m.pUp,
		pDown:  m.pDown,
		pairs:  make([]seq.Interaction, 0, edges),
		isLive: make([]bool, edges),
		pos:    make([]int, edges),
	}
	for u := 0; u < m.n; u++ {
		for v := u + 1; v < m.n; v++ {
			g.pairs = append(g.pairs, seq.Interaction{U: graph.NodeID(u), V: graph.NodeID(v)})
		}
	}
	pStat := m.pUp / (m.pUp + m.pDown)
	born := bernoulliIndices(src, edges, pStat, nil)
	next := 0
	for id := 0; id < edges; id++ {
		if next < len(born) && born[next] == id {
			next++
			g.isLive[id] = true
			g.pos[id] = len(g.live)
			g.live = append(g.live, id)
		} else {
			g.pos[id] = len(g.dead)
			g.dead = append(g.dead, id)
		}
	}
	return func(int) seq.Interaction {
		g.tick()
		if len(g.live) == 0 {
			// No live edge: fast-forward the chain to its next birth.
			// Dead edges share pUp, so the first edge born in that wait
			// is uniform over them — sample it directly instead of
			// spinning ~1/(edges·pUp) ticks, which keeps even tiny
			// birth probabilities O(1) per interaction.
			id := g.dead[g.src.Intn(len(g.dead))]
			g.remove(&g.dead, id)
			g.isLive[id] = true
			g.pos[id] = len(g.live)
			g.live = append(g.live, id)
		}
		return g.pairs[g.live[g.src.Intn(len(g.live))]]
	}
}

// tick advances every edge chain one step: i.i.d. Bernoulli flips over the
// live set (deaths) and the dead set (births), both evaluated against the
// state at the start of the step.
func (g *emGen) tick() {
	g.ids = g.ids[:0]
	g.scratch = bernoulliIndices(g.src, len(g.live), g.pDown, g.scratch[:0])
	for _, i := range g.scratch {
		g.ids = append(g.ids, g.live[i])
	}
	deaths := len(g.ids)
	g.scratch = bernoulliIndices(g.src, len(g.dead), g.pUp, g.scratch[:0])
	for _, i := range g.scratch {
		g.ids = append(g.ids, g.dead[i])
	}
	for _, id := range g.ids[:deaths] {
		g.remove(&g.live, id)
		g.isLive[id] = false
		g.pos[id] = len(g.dead)
		g.dead = append(g.dead, id)
	}
	for _, id := range g.ids[deaths:] {
		g.remove(&g.dead, id)
		g.isLive[id] = true
		g.pos[id] = len(g.live)
		g.live = append(g.live, id)
	}
}

// remove swap-deletes edge id from the slice it currently occupies.
func (g *emGen) remove(from *[]int, id int) {
	s := *from
	i, last := g.pos[id], len(s)-1
	s[i] = s[last]
	g.pos[s[i]] = i
	*from = s[:last]
}
