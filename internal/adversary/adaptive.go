package adversary

// AdaptiveOwners is an adaptive online adversary that joins the engine's
// coarse-batched fast path. The paper's adaptive adversary may read the
// whole past execution; this one deliberately reads only the *coarse*
// ownership state — which nodes still own data — and derives all of its
// randomness from (seed, t). That makes every emission a pure function
// of (t, ownership state), exactly the core.CoarseBatchAdversary purity
// contract: the engine can drain whole batches of its interactions
// between transfers and replay them, and discarded drains are invisible.

import (
	"doda/internal/bitset"
	"doda/internal/core"
	"doda/internal/graph"
	"doda/internal/seq"
)

// AdaptiveOwners emits, at each time step, a uniformly random pair of
// distinct *current data owners*. Against the gathering family this is
// the strongest natural "keep the algorithm busy" schedule: every single
// interaction is between two owners, so a gathering run terminates in
// exactly n-1 interactions. It is also the adaptive counterpart of
// Randomized, restricted to the still-active part of the system.
type AdaptiveOwners struct {
	seed uint64
}

var (
	_ core.Adversary            = (*AdaptiveOwners)(nil)
	_ core.CoarseBatchAdversary = (*AdaptiveOwners)(nil)
)

// NewAdaptiveOwners returns the adversary with the given random seed.
func NewAdaptiveOwners(seed uint64) *AdaptiveOwners {
	return &AdaptiveOwners{seed: seed}
}

// Name identifies the adversary in results and traces.
func (a *AdaptiveOwners) Name() string { return "adaptive-owners" }

// mix is the splitmix64 finalizer (the same mixing rng.New seeds
// through): it turns (seed, t) into 64 independent-looking bits without
// any state, which is what keeps the adversary pure.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ranks returns the owner ranks (i, j), i != j, of the pair to emit at
// time t among nOwn owners. Both are uniform: i over [0, nOwn), j over
// the remaining nOwn-1 ranks.
func (a *AdaptiveOwners) ranks(t, nOwn int) (int, int) {
	h := mix(a.seed ^ uint64(t)*0x9e3779b97f4a7c15)
	i := int(h % uint64(nOwn))
	j := int((h >> 32) % uint64(nOwn-1))
	if j >= i {
		j++
	}
	return i, j
}

// Next implements core.Adversary. ok is false once fewer than two nodes
// own data (no valid owner pair exists; the run has terminated or failed
// anyway). Views exposing ownership words resolve ranks word-parallel;
// any other core.ExecView falls back to a linear owner scan with the
// same rank order, so both resolutions emit identical pairs.
func (a *AdaptiveOwners) Next(t int, view core.ExecView) (seq.Interaction, bool) {
	nOwn := view.OwnerCount()
	if nOwn < 2 {
		return seq.Interaction{}, false
	}
	i, j := a.ranks(t, nOwn)
	if wv, ok := view.(core.WordView); ok {
		words := wv.OwnerWords()
		return seq.Interaction{
			U: graph.NodeID(bitset.SelectWord(words, i)),
			V: graph.NodeID(bitset.SelectWord(words, j)),
		}, true
	}
	if j < i {
		i, j = j, i
	}
	var u, v graph.NodeID
	for id, rank := graph.NodeID(0), 0; ; id++ {
		if !view.Owns(id) {
			continue
		}
		if rank == i {
			u = id
		}
		if rank == j {
			v = id
			break
		}
		rank++
	}
	return seq.Interaction{U: u, V: v}, true
}

// NextCoarseBatch implements core.CoarseBatchAdversary: every interaction
// for times t, t+1, ... is computed against the same frozen ownership
// words, which is sound precisely because the engine discards the tail
// of the batch as soon as a transfer changes that state.
func (a *AdaptiveOwners) NextCoarseBatch(t int, view core.WordView, buf []seq.Interaction) int {
	nOwn := view.OwnerCount()
	if nOwn < 2 {
		return 0
	}
	words := view.OwnerWords()
	for k := range buf {
		i, j := a.ranks(t+k, nOwn)
		buf[k] = seq.Interaction{
			U: graph.NodeID(bitset.SelectWord(words, i)),
			V: graph.NodeID(bitset.SelectWord(words, j)),
		}
	}
	return len(buf)
}
