package adversary

import (
	"testing"

	"doda/internal/core"
	"doda/internal/graph"
	"doda/internal/offline"
	"doda/internal/rng"
	"doda/internal/seq"
)

// fakeView is a controllable core.ExecView.
type fakeView struct {
	n    int
	sink graph.NodeID
	owns []bool
}

func newFakeView(n int, sink graph.NodeID) *fakeView {
	v := &fakeView{n: n, sink: sink, owns: make([]bool, n)}
	for i := range v.owns {
		v.owns[i] = true
	}
	return v
}

func (v *fakeView) N() int             { return v.n }
func (v *fakeView) Sink() graph.NodeID { return v.sink }
func (v *fakeView) Owns(u graph.NodeID) bool {
	if u < 0 || int(u) >= v.n {
		return false
	}
	return v.owns[u]
}
func (v *fakeView) OwnerCount() int {
	c := 0
	for _, o := range v.owns {
		if o {
			c++
		}
	}
	return c
}

func TestObliviousFiniteSequence(t *testing.T) {
	s, err := seq.NewSequence(3, []seq.Interaction{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	adv, err := NewOblivious("test", s)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Name() != "test" {
		t.Errorf("Name = %q", adv.Name())
	}
	view := newFakeView(3, 0)
	it, ok := adv.Next(0, view)
	if !ok || it != (seq.Interaction{U: 0, V: 1}) {
		t.Errorf("Next(0) = %v,%v", it, ok)
	}
	if _, ok := adv.Next(2, view); ok {
		t.Error("should be exhausted")
	}
	if adv.View() != seq.View(s) {
		t.Error("View mismatch")
	}
}

func TestObliviousValidation(t *testing.T) {
	if _, err := NewOblivious("x", nil); err == nil {
		t.Error("want error for nil view")
	}
	s, _ := seq.NewSequence(3, nil)
	adv, err := NewOblivious("", s)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Name() != "oblivious" {
		t.Errorf("default name = %q", adv.Name())
	}
}

func TestRandomizedUniformAndDeterministic(t *testing.T) {
	adv1, st1, err := Randomized(5, 42)
	if err != nil {
		t.Fatal(err)
	}
	adv2, _, err := Randomized(5, 42)
	if err != nil {
		t.Fatal(err)
	}
	view := newFakeView(5, 0)
	for i := 0; i < 100; i++ {
		a, ok1 := adv1.Next(i, view)
		b, ok2 := adv2.Next(i, view)
		if !ok1 || !ok2 {
			t.Fatal("randomized adversary exhausted")
		}
		if a != b {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
		if a.U >= a.V || a.U < 0 || int(a.V) >= 5 {
			t.Fatalf("invalid interaction %v", a)
		}
	}
	if st1.MaterializedLen() != 100 {
		t.Errorf("stream materialised %d", st1.MaterializedLen())
	}
}

func TestRecurrentCycles(t *testing.T) {
	edges := []graph.Edge{graph.MustEdge(0, 1), graph.MustEdge(1, 2), graph.MustEdge(0, 2)}
	adv, _, err := Recurrent(3, edges)
	if err != nil {
		t.Fatal(err)
	}
	view := newFakeView(3, 0)
	for i := 0; i < 9; i++ {
		it, ok := adv.Next(i, view)
		if !ok {
			t.Fatal("recurrent adversary exhausted")
		}
		want := seq.Interaction{U: edges[i%3].U, V: edges[i%3].V}
		if it != want {
			t.Fatalf("Next(%d) = %v, want %v", i, it, want)
		}
	}
	if _, _, err := Recurrent(3, nil); err == nil {
		t.Error("want error for no edges")
	}
}

func TestDelayedRecurrent(t *testing.T) {
	frequent := []graph.Edge{graph.MustEdge(0, 1), graph.MustEdge(1, 2)}
	delayed := graph.MustEdge(2, 3)
	adv, _, err := DelayedRecurrent(4, frequent, delayed, 3)
	if err != nil {
		t.Fatal(err)
	}
	view := newFakeView(4, 0)
	// Round = frequent x3 then delayed: positions 0..5 frequent, 6 delayed.
	var got []seq.Interaction
	for i := 0; i < 7; i++ {
		it, ok := adv.Next(i, view)
		if !ok {
			t.Fatal("exhausted")
		}
		got = append(got, it)
	}
	if got[6] != (seq.Interaction{U: 2, V: 3}) {
		t.Errorf("delayed edge at wrong place: %v", got)
	}
	for i := 0; i < 6; i++ {
		if got[i] == (seq.Interaction{U: 2, V: 3}) {
			t.Errorf("delayed edge appeared early at %d", i)
		}
	}
	if _, _, err := DelayedRecurrent(4, frequent, delayed, 0); err == nil {
		t.Error("want error for repeat < 1")
	}
	if _, _, err := DelayedRecurrent(4, nil, delayed, 2); err == nil {
		t.Error("want error for empty frequent edges")
	}
}

func TestTheorem1Validation(t *testing.T) {
	if _, err := NewTheorem1(4, 0); err == nil {
		t.Error("want error for n != 3")
	}
	if _, err := NewTheorem1(3, 5); err == nil {
		t.Error("want error for bad sink")
	}
}

func TestTheorem1TrapAfterAB(t *testing.T) {
	// Nodes: sink=0, a=1, b=2. Algorithm: a transmits to b at the first
	// {a,b}. Adversary must lock into [{a,s},{a,b}] so b starves.
	th, err := NewTheorem1(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	view := newFakeView(3, 0)
	it, _ := th.Next(0, view)
	if it != (seq.Interaction{U: 1, V: 2}) {
		t.Fatalf("first probe = %v", it)
	}
	view.owns[1] = false // a transmitted
	lock0, _ := th.Next(1, view)
	lock1, _ := th.Next(2, view)
	lock2, _ := th.Next(3, view)
	if lock0 != lock2 {
		t.Errorf("lock not periodic: %v %v %v", lock0, lock1, lock2)
	}
	// The lock must never contain {b, s} = {0, 2}.
	for i := 1; i < 50; i++ {
		it, ok := th.Next(i, view)
		if !ok {
			t.Fatal("exhausted")
		}
		if it == (seq.Interaction{U: 0, V: 2}) {
			t.Fatalf("lock offered {b,s} at %d", i)
		}
	}
}

func TestTheorem1TrapAfterBS(t *testing.T) {
	// b transmits to s at the {b,s} probe: lock must starve a — never
	// offer {a, s} = {0, 1}.
	th, err := NewTheorem1(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	view := newFakeView(3, 0)
	_, _ = th.Next(0, view) // {a,b}: nobody transmits
	it, _ := th.Next(1, view)
	if it != (seq.Interaction{U: 0, V: 2}) {
		t.Fatalf("second probe = %v, want {0,2}", it)
	}
	view.owns[2] = false // b transmitted to s
	for i := 2; i < 50; i++ {
		it, ok := th.Next(i, view)
		if !ok {
			t.Fatal("exhausted")
		}
		if it == (seq.Interaction{U: 0, V: 1}) {
			t.Fatalf("lock offered {a,s} at %d", i)
		}
	}
}

func TestTheorem1ProbesForeverAgainstWaiting(t *testing.T) {
	// A stubborn algorithm that never transmits sees alternating probes.
	th, err := NewTheorem1(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	view := newFakeView(3, 0)
	for i := 0; i < 20; i++ {
		it, ok := th.Next(i, view)
		if !ok {
			t.Fatal("exhausted")
		}
		if i%2 == 0 && it != (seq.Interaction{U: 1, V: 2}) {
			t.Fatalf("probe %d = %v, want {a,b}", i, it)
		}
		if i%2 == 1 && it != (seq.Interaction{U: 0, V: 2}) {
			t.Fatalf("probe %d = %v, want {b,s}", i, it)
		}
	}
}

func TestTheorem3Validation(t *testing.T) {
	if _, err := NewTheorem3(3, 0); err == nil {
		t.Error("want error for n != 4")
	}
	if _, err := NewTheorem3(4, 9); err == nil {
		t.Error("want error for bad sink")
	}
}

func TestTheorem3UnderlyingGraphIsCycle(t *testing.T) {
	th, err := NewTheorem3(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := th.UnderlyingGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 4 || !g.Connected() {
		t.Errorf("Ḡ: m=%d connected=%v", g.M(), g.Connected())
	}
	for u := graph.NodeID(0); u < 4; u++ {
		if g.Degree(u) != 2 {
			t.Errorf("degree(%d) = %d, want 2 (cycle)", u, g.Degree(u))
		}
	}
}

func TestTheorem3TrapsAfterU2TransmitsToU1(t *testing.T) {
	th, err := NewTheorem3(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	view := newFakeView(4, 0)
	// Probe: {1,0}, {3,0}, {2,1}, {2,3}.
	for i := 0; i < 3; i++ {
		if _, ok := th.Next(i, view); !ok {
			t.Fatal("exhausted")
		}
	}
	// u2 transmitted to u1 during probe step {2,1} (pos now 3).
	view.owns[2] = false
	// Lock must never offer {u1, s} = {0,1} again.
	for i := 3; i < 60; i++ {
		it, ok := th.Next(i, view)
		if !ok {
			t.Fatal("exhausted")
		}
		if it == (seq.Interaction{U: 0, V: 1}) {
			t.Fatalf("lock offered {u1,s} at step %d", i)
		}
	}
}

func TestTheorem3TrapsAfterU2TransmitsToU3(t *testing.T) {
	th, err := NewTheorem3(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	view := newFakeView(4, 0)
	for i := 0; i < 4; i++ { // full probe round; pos wraps to 0
		if _, ok := th.Next(i, view); !ok {
			t.Fatal("exhausted")
		}
	}
	// u2 transmitted at the last probe step {2,3}.
	view.owns[2] = false
	for i := 4; i < 60; i++ {
		it, ok := th.Next(i, view)
		if !ok {
			t.Fatal("exhausted")
		}
		if it == (seq.Interaction{U: 0, V: 3}) {
			t.Fatalf("lock offered {u3,s} at step %d", i)
		}
	}
}

func TestTheorem3LockStillAllowsConvergecasts(t *testing.T) {
	// The cost definition needs convergecasts to remain possible in the
	// lock loop: check with the offline planner on a materialised lock.
	th, err := NewTheorem3(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	view := newFakeView(4, 0)
	for i := 0; i < 3; i++ {
		_, _ = th.Next(i, view)
	}
	view.owns[2] = false
	var steps []seq.Interaction
	for i := 3; i < 3+30; i++ {
		it, _ := th.Next(i, view)
		steps = append(steps, it)
	}
	s, err := seq.NewSequence(4, steps)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := offline.Opt(s, 0, 0, s.Len()); !ok {
		t.Error("no convergecast possible in lock loop")
	}
	// And repeatedly: T(i) keeps growing finitely.
	clock, err := offline.NewClock(s, 0, s.Len())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := clock.T(3); !ok {
		t.Error("T(3) should be finite in a 30-interaction lock window")
	}
}

func TestBuildTheorem2Shape(t *testing.T) {
	n, l0, d, loops := 5, 7, 2, 3
	s, err := BuildTheorem2(n, l0, d, loops)
	if err != nil {
		t.Fatal(err)
	}
	m := n - 1
	if s.Len() != l0+loops*m {
		t.Fatalf("Len = %d, want %d", s.Len(), l0+loops*m)
	}
	// Prefix: star interactions {u_{i mod m}, s}.
	for i := 0; i < l0; i++ {
		want := seq.MustInteraction(graph.NodeID(i%m+1), 0)
		if s.At(i) != want {
			t.Fatalf("prefix At(%d) = %v, want %v", i, s.At(i), want)
		}
	}
	// Each round has exactly one sink interaction, at offset d-1, with
	// u_{d-1}.
	for l := 0; l < loops; l++ {
		base := l0 + l*m
		sinkCount := 0
		for i := 0; i < m; i++ {
			it := s.At(base + i)
			if it.Involves(0) {
				sinkCount++
				if i != d-1 {
					t.Fatalf("round %d: sink interaction at offset %d, want %d", l, i, d-1)
				}
				if !it.Involves(graph.NodeID(d - 1 + 1)) {
					t.Fatalf("round %d: sink meets %v, want u_%d", l, it, d-1)
				}
			}
		}
		if sinkCount != 1 {
			t.Fatalf("round %d has %d sink interactions", l, sinkCount)
		}
	}
}

func TestBuildTheorem2Validation(t *testing.T) {
	if _, err := BuildTheorem2(2, 1, 0, 1); err == nil {
		t.Error("want error for n < 3")
	}
	if _, err := BuildTheorem2(5, -1, 0, 1); err == nil {
		t.Error("want error for negative l0")
	}
	if _, err := BuildTheorem2(5, 1, 4, 1); err == nil {
		t.Error("want error for d out of range")
	}
	if _, err := BuildTheorem2(5, 1, 0, -2); err == nil {
		t.Error("want error for negative loops")
	}
}

func TestBuildTheorem2DZeroWraps(t *testing.T) {
	// d = 0 places the sink interaction at offset (0-1) mod m = m-1.
	s, err := BuildTheorem2(4, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := 3
	for i := 0; i < m; i++ {
		it := s.At(i)
		if it.Involves(0) != (i == m-1) {
			t.Fatalf("offset %d: %v", i, it)
		}
	}
}

// Interface compliance.
var (
	_ core.Adversary = (*Oblivious)(nil)
	_ core.Adversary = (*Theorem1)(nil)
	_ core.Adversary = (*Theorem3)(nil)
)

func TestGeneratedAdversary(t *testing.T) {
	gen := seq.UniformGen(8, rng.New(4))
	adv, err := NewGenerated("", 8, gen)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Name() != "generated" || adv.N() != 8 {
		t.Errorf("name=%q n=%d", adv.Name(), adv.N())
	}
	for tt := 0; tt < 1000; tt++ {
		it, ok := adv.Next(tt, nil)
		if !ok {
			t.Fatal("generated adversary is unbounded")
		}
		if it.U == it.V || it.U < 0 || int(it.V) >= 8 {
			t.Fatalf("bad interaction %v", it)
		}
	}
}

// TestGeneratedMatchesStream pins the equivalence that justifies the
// sweep fast path: the same seeded generator produces the same sequence
// whether consumed through a caching stream or a Generated adversary.
func TestGeneratedMatchesStream(t *testing.T) {
	const n = 12
	st, err := seq.NewStream(n, seq.UniformGen(n, rng.New(9)))
	if err != nil {
		t.Fatal(err)
	}
	adv, err := NewGenerated("uniform", n, seq.UniformGen(n, rng.New(9)))
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 2000; tt++ {
		got, _ := adv.Next(tt, nil)
		if want := st.At(tt); got != want {
			t.Fatalf("t=%d: generated %v, stream %v", tt, got, want)
		}
	}
}

func TestGeneratedValidation(t *testing.T) {
	if _, err := NewGenerated("x", 1, seq.UniformGen(2, rng.New(1))); err == nil {
		t.Error("n < 2 should fail")
	}
	if _, err := NewGenerated("x", 2, nil); err == nil {
		t.Error("nil generator should fail")
	}
}

// TestObliviousNextBatchMatchesNext checks the batched drain of a finite
// sequence against the scalar path at every boundary offset.
func TestObliviousNextBatchMatchesNext(t *testing.T) {
	const n = 8
	gen := seq.UniformGen(n, rng.New(5))
	steps := make([]seq.Interaction, 20)
	for i := range steps {
		steps[i] = gen(i)
	}
	sq, err := seq.NewSequence(n, steps)
	if err != nil {
		t.Fatal(err)
	}
	for _, bufLen := range []int{1, 7, 20, 33} {
		adv, err := NewOblivious("finite", sq)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]seq.Interaction, bufLen)
		var drained []seq.Interaction
		t0 := 0
		for {
			k := adv.NextBatch(t0, nil, buf)
			drained = append(drained, buf[:k]...)
			t0 += k
			if k < bufLen {
				break
			}
		}
		if len(drained) != len(steps) {
			t.Fatalf("bufLen=%d: drained %d of %d", bufLen, len(drained), len(steps))
		}
		for i, it := range drained {
			want, _ := adv.Next(i, nil)
			if it != want {
				t.Fatalf("bufLen=%d: batch[%d] = %v, Next gives %v", bufLen, i, it, want)
			}
		}
		if k := adv.NextBatch(len(steps), nil, buf); k != 0 {
			t.Fatalf("bufLen=%d: exhausted sequence yielded %d more", bufLen, k)
		}
	}
}

// TestGeneratedNextBatchMatchesNext checks that one generator drained in
// batches replays the scalar stream of an identically seeded twin.
func TestGeneratedNextBatchMatchesNext(t *testing.T) {
	const n = 16
	batched, err := NewGenerated("u", n, seq.UniformGen(n, rng.New(9)))
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := NewGenerated("u", n, seq.UniformGen(n, rng.New(9)))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]seq.Interaction, 13)
	for t0 := 0; t0 < 13*8; t0 += 13 {
		if k := batched.NextBatch(t0, nil, buf); k != len(buf) {
			t.Fatalf("unbounded generator returned %d < %d", k, len(buf))
		}
		for i, it := range buf {
			want, ok := scalar.Next(t0+i, nil)
			if !ok || it != want {
				t.Fatalf("t=%d: batch %v, scalar %v", t0+i, it, want)
			}
		}
	}
}
