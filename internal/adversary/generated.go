package adversary

// Generated is the zero-overhead cousin of Oblivious: it feeds a
// generator's interactions straight to the engine without materialising
// them in a seq.Stream. Stream-backed adversaries cache every emitted
// interaction so knowledge oracles can look ahead consistently — O(T)
// memory and an amortised append per interaction. Algorithms that use no
// look-ahead (Waiting, Gathering, the whole D∅ODA class) don't need any
// of that, and sweep fleets run millions of interactions per cell, so the
// caching would dominate the measurement loop's allocation profile.

import (
	"fmt"

	"doda/internal/core"
	"doda/internal/seq"
)

// Generated adapts a raw generator function into an oblivious adversary
// with no sequence caching. Use it on hot measurement paths where no
// knowledge oracle needs to look ahead; use Oblivious + seq.Stream when
// oracles must observe the same sequence.
type Generated struct {
	name string
	n    int
	gen  func(t int) seq.Interaction
}

var (
	_ core.Adversary      = (*Generated)(nil)
	_ core.BatchAdversary = (*Generated)(nil)
)

// NewGenerated wraps gen, which must produce valid interactions over n
// nodes for t = 0, 1, 2, ... exactly as seq.NewStream would consume them.
func NewGenerated(name string, n int, gen func(t int) seq.Interaction) (*Generated, error) {
	if n < 2 {
		return nil, fmt.Errorf("adversary: need at least 2 nodes, got %d", n)
	}
	if gen == nil {
		return nil, fmt.Errorf("adversary: nil generator")
	}
	if name == "" {
		name = "generated"
	}
	return &Generated{name: name, n: n, gen: gen}, nil
}

// Name returns the adversary's display name.
func (g *Generated) Name() string { return g.name }

// N returns the node count of the generated workload.
func (g *Generated) N() int { return g.n }

// Next returns the generated interaction at time t; the sequence is
// unbounded.
func (g *Generated) Next(t int, _ core.ExecView) (seq.Interaction, bool) {
	return g.gen(t), true
}

// NextBatch implements core.BatchAdversary: one buffer fill per engine
// round trip instead of one interface call per interaction. The engine
// may stop mid-batch (termination, failure, the interaction cap), so the
// generator can be advanced past the last interaction actually played —
// fine for the measurement loops this type serves, where every run wraps
// a fresh seeded generator, but callers sharing one generator across runs
// that must match the scalar path bit-for-bit should not reuse it after a
// batched run.
func (g *Generated) NextBatch(t int, _ core.ExecView, buf []seq.Interaction) int {
	gen := g.gen
	for i := range buf {
		buf[i] = gen(t + i)
	}
	return len(buf)
}
