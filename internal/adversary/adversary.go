// Package adversary implements the paper's three adversary models (§2.2)
// and the explicit adversarial constructions used in the impossibility
// proofs:
//
//   - the oblivious adversary, which commits to a sequence before the
//     execution starts (any seq.View wrapped by Oblivious);
//   - the randomized adversary, which picks every interaction uniformly
//     at random among the n(n-1)/2 pairs (Randomized);
//   - adaptive online adversaries, which observe the past execution to
//     choose the next interaction: Theorem1 (defeats every DODA algorithm
//     on 3 nodes) and Theorem3 (defeats every algorithm knowing the
//     underlying graph, on a 4-node cycle);
//   - the Theorem 2 oblivious construction against oblivious randomized
//     algorithms (star prefix followed by a blocking-path loop).
package adversary

import (
	"fmt"

	"doda/internal/core"
	"doda/internal/graph"
	"doda/internal/rng"
	"doda/internal/seq"
)

// Oblivious adapts any interaction sequence view into an adversary that
// ignores the execution: the sequence is fixed up front.
type Oblivious struct {
	name string
	view seq.View
}

var (
	_ core.Adversary      = (*Oblivious)(nil)
	_ core.BatchAdversary = (*Oblivious)(nil)
)

// NewOblivious wraps view under the given display name.
func NewOblivious(name string, view seq.View) (*Oblivious, error) {
	if view == nil {
		return nil, fmt.Errorf("adversary: nil view")
	}
	if name == "" {
		name = "oblivious"
	}
	return &Oblivious{name: name, view: view}, nil
}

// Name returns the adversary's display name.
func (o *Oblivious) Name() string { return o.name }

// Next returns the pre-committed interaction at time t.
func (o *Oblivious) Next(t int, _ core.ExecView) (seq.Interaction, bool) {
	if b, finite := o.view.Bound(); finite && t >= b {
		return seq.Interaction{}, false
	}
	return o.view.At(t), true
}

// NextBatch implements core.BatchAdversary: the sequence is committed up
// front, so a whole buffer of interactions can be handed to the engine at
// once. Lazily materialised streams cache what they generate, so oracles
// reading the same view stay consistent even when the engine stops
// mid-batch.
func (o *Oblivious) NextBatch(t int, _ core.ExecView, buf []seq.Interaction) int {
	k := len(buf)
	if b, finite := o.view.Bound(); finite {
		if t >= b {
			return 0
		}
		if rem := b - t; rem < k {
			k = rem
		}
	}
	for i := 0; i < k; i++ {
		buf[i] = o.view.At(t + i)
	}
	return k
}

// View exposes the wrapped sequence, e.g. to grant knowledge oracles over
// the same sequence the adversary plays.
func (o *Oblivious) View() seq.View { return o.view }

// Randomized returns the randomized adversary on n nodes: a lazily
// materialised uniform interaction stream (so knowledge oracles can look
// ahead consistently) wrapped as an adversary. The stream is returned
// alongside for oracle construction.
func Randomized(n int, seed uint64) (*Oblivious, *seq.Stream, error) {
	src := rng.New(seed)
	st, err := seq.NewStream(n, seq.UniformGen(n, src))
	if err != nil {
		return nil, nil, err
	}
	adv, err := NewOblivious("randomized", st)
	if err != nil {
		return nil, nil, err
	}
	return adv, st, nil
}

// Recurrent returns an oblivious adversary cycling through edges forever
// (every interaction that occurs once occurs infinitely often — the
// hypothesis of Theorem 4). The returned stream backs knowledge oracles.
func Recurrent(n int, edges []graph.Edge) (*Oblivious, *seq.Stream, error) {
	gen, err := seq.RoundRobinGen(edges)
	if err != nil {
		return nil, nil, err
	}
	st, err := seq.NewStream(n, gen)
	if err != nil {
		return nil, nil, err
	}
	adv, err := NewOblivious("recurrent", st)
	if err != nil {
		return nil, nil, err
	}
	return adv, st, nil
}

// DelayedRecurrent returns a recurrent schedule in which every round
// plays the edges of `frequent` repeat times before playing `delayed`
// once. With frequent spanning the graph minus one tree edge, the
// spanning-tree algorithm's cost grows with repeat — the unboundedness
// half of Theorem 4.
func DelayedRecurrent(n int, frequent []graph.Edge, delayed graph.Edge, repeat int) (*Oblivious, *seq.Stream, error) {
	if repeat < 1 {
		return nil, nil, fmt.Errorf("adversary: repeat must be >= 1, got %d", repeat)
	}
	if len(frequent) == 0 {
		return nil, nil, fmt.Errorf("adversary: need at least one frequent edge")
	}
	round := make([]graph.Edge, 0, len(frequent)*repeat+1)
	for r := 0; r < repeat; r++ {
		round = append(round, frequent...)
	}
	round = append(round, delayed)
	adv, st, err := Recurrent(n, round)
	if err != nil {
		return nil, nil, err
	}
	adv.name = "delayed-recurrent"
	return adv, st, nil
}

// Theorem1 is the adaptive online adversary from the proof of Theorem 1.
// On V = {sink, a, b} it reacts to the algorithm's transmissions so that
// one non-sink node can never transmit, while a convergecast remains
// possible forever: cost_A(I) = ∞ for every algorithm A.
type Theorem1 struct {
	sink, a, b graph.NodeID
	// last tracks what the adversary emitted at t-1: 0 = nothing yet,
	// 1 = {a,b} probe, 2 = {b,s} probe.
	last int
	// lock holds the blocking loop once the trap has sprung.
	lock []seq.Interaction
}

var _ core.Adversary = (*Theorem1)(nil)

// NewTheorem1 builds the adversary for a 3-node system. The two non-sink
// nodes are the two smallest non-sink identifiers.
func NewTheorem1(n int, sink graph.NodeID) (*Theorem1, error) {
	if n != 3 {
		return nil, fmt.Errorf("adversary: Theorem 1 construction uses exactly 3 nodes, got %d", n)
	}
	if sink < 0 || int(sink) >= n {
		return nil, fmt.Errorf("adversary: sink %d out of range", sink)
	}
	var rest []graph.NodeID
	for u := graph.NodeID(0); u < 3; u++ {
		if u != sink {
			rest = append(rest, u)
		}
	}
	return &Theorem1{sink: sink, a: rest[0], b: rest[1]}, nil
}

// Name identifies the construction.
func (th *Theorem1) Name() string { return "theorem1-adaptive" }

// Next implements the reactive construction of the Theorem 1 proof.
func (th *Theorem1) Next(t int, view core.ExecView) (seq.Interaction, bool) {
	if th.lock != nil {
		return th.lock[t%len(th.lock)], true
	}
	switch th.last {
	case 1: // probe {a,b} just played
		switch {
		case !view.Owns(th.a):
			// a transmitted: alternate {a,s}, {a,b} so b starves.
			th.lock = []seq.Interaction{
				seq.MustInteraction(th.a, th.sink),
				seq.MustInteraction(th.a, th.b),
			}
			return th.lock[t%len(th.lock)], true
		case !view.Owns(th.b):
			// b transmitted: symmetric.
			th.lock = []seq.Interaction{
				seq.MustInteraction(th.b, th.sink),
				seq.MustInteraction(th.a, th.b),
			}
			return th.lock[t%len(th.lock)], true
		default:
			th.last = 2
			return seq.MustInteraction(th.b, th.sink), true
		}
	case 2: // probe {b,s} just played
		if !view.Owns(th.b) {
			// b transmitted to the sink: starve a with {a,b}, {b,s}.
			th.lock = []seq.Interaction{
				seq.MustInteraction(th.a, th.b),
				seq.MustInteraction(th.b, th.sink),
			}
			return th.lock[t%len(th.lock)], true
		}
		fallthrough
	default: // start, or restart the probe cycle
		th.last = 1
		return seq.MustInteraction(th.a, th.b), true
	}
}

// Theorem3 is the adaptive online adversary from the proof of Theorem 3:
// on the 4-node cycle s-u1-u2-u3-s it defeats every algorithm even when
// nodes know the underlying graph. It probes with the four interactions
// ({u1,s}, {u3,s}, {u2,u1}, {u2,u3}) and, as soon as u2 transmits towards
// u1 (resp. u3), locks into a loop in which the receiver can never reach
// the sink.
type Theorem3 struct {
	sink, u1, u2, u3 graph.NodeID

	probe []seq.Interaction
	pos   int // probe position to emit next
	lock  []seq.Interaction
	// lockT0 is the time the lock phase started, to index the loop.
	lockT0 int
}

var _ core.Adversary = (*Theorem3)(nil)

// NewTheorem3 builds the adversary for a 4-node system with the given
// sink; u1 < u2 < u3 are the remaining nodes (u2 is the cycle node
// opposite the sink).
func NewTheorem3(n int, sink graph.NodeID) (*Theorem3, error) {
	if n != 4 {
		return nil, fmt.Errorf("adversary: Theorem 3 construction uses exactly 4 nodes, got %d", n)
	}
	if sink < 0 || int(sink) >= n {
		return nil, fmt.Errorf("adversary: sink %d out of range", sink)
	}
	var rest []graph.NodeID
	for u := graph.NodeID(0); u < 4; u++ {
		if u != sink {
			rest = append(rest, u)
		}
	}
	th := &Theorem3{sink: sink, u1: rest[0], u2: rest[1], u3: rest[2]}
	th.probe = []seq.Interaction{
		seq.MustInteraction(th.u1, th.sink),
		seq.MustInteraction(th.u3, th.sink),
		seq.MustInteraction(th.u2, th.u1),
		seq.MustInteraction(th.u2, th.u3),
	}
	return th, nil
}

// Name identifies the construction.
func (th *Theorem3) Name() string { return "theorem3-adaptive" }

// UnderlyingGraph returns the cycle Ḡ the construction realises, which is
// what nodes are given as knowledge in Theorem 3's setting.
func (th *Theorem3) UnderlyingGraph() (*graph.Undirected, error) {
	g, err := graph.NewUndirected(4)
	if err != nil {
		return nil, err
	}
	for _, e := range [][2]graph.NodeID{
		{th.sink, th.u1}, {th.u1, th.u2}, {th.u2, th.u3}, {th.u3, th.sink},
	} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Next implements the reactive construction of the Theorem 3 proof.
func (th *Theorem3) Next(t int, view core.ExecView) (seq.Interaction, bool) {
	if th.lock != nil {
		return th.lock[(t-th.lockT0)%len(th.lock)], true
	}
	// React to the probe interaction emitted at t-1, if it was one of
	// u2's two chances to transmit.
	if th.pos == 3 && !view.Owns(th.u2) {
		// u2 transmitted to u1 at {u2,u1}: starve u1 by looping
		// {u1,u2}, {u2,u3}, {u3,s} — {u1,s} never occurs again.
		th.lock = []seq.Interaction{
			seq.MustInteraction(th.u1, th.u2),
			seq.MustInteraction(th.u2, th.u3),
			seq.MustInteraction(th.u3, th.sink),
		}
		th.lockT0 = t
		return th.lock[0], true
	}
	if th.pos == 0 && t > 0 && !view.Owns(th.u2) {
		// u2 transmitted to u3 at {u2,u3} (the probe wrapped around):
		// starve u3 by looping {u3,u2}, {u2,u1}, {u1,s}.
		th.lock = []seq.Interaction{
			seq.MustInteraction(th.u3, th.u2),
			seq.MustInteraction(th.u2, th.u1),
			seq.MustInteraction(th.u1, th.sink),
		}
		th.lockT0 = t
		return th.lock[0], true
	}
	it := th.probe[th.pos]
	th.pos = (th.pos + 1) % len(th.probe)
	return it, true
}

// BuildTheorem2 constructs the oblivious sequence from the proof of
// Theorem 2 against oblivious randomized algorithms: the star prefix I^l0
// (I_i = {u_{i mod n-1}, s}) followed by `loops` repetitions of the
// blocking round I' in which node u_{d} must route its data through a
// path containing a node that no longer owns data:
//
//	I'_i = {u_i, u_{i+1 mod n-1}}  for i in [0, n-2] \ {d-1}
//	I'_{d-1} = {u_{d-1}, s}
//
// Nodes are numbered with the sink = 0 and u_i = i+1.
func BuildTheorem2(n, l0, d, loops int) (*seq.Sequence, error) {
	if n < 3 {
		return nil, fmt.Errorf("adversary: Theorem 2 construction needs n >= 3, got %d", n)
	}
	if l0 < 0 || loops < 0 {
		return nil, fmt.Errorf("adversary: negative lengths (l0=%d, loops=%d)", l0, loops)
	}
	m := n - 1 // number of non-sink nodes u_0..u_{m-1}
	if d < 0 || d >= m {
		return nil, fmt.Errorf("adversary: d = %d out of range [0,%d)", d, m)
	}
	u := func(i int) graph.NodeID { return graph.NodeID(((i%m)+m)%m + 1) }
	steps := make([]seq.Interaction, 0, l0+loops*m)
	for i := 0; i < l0; i++ {
		steps = append(steps, seq.MustInteraction(u(i), 0))
	}
	round := make([]seq.Interaction, 0, m)
	for i := 0; i < m; i++ {
		if i == ((d-1)%m+m)%m {
			round = append(round, seq.MustInteraction(u(i), 0))
		} else {
			round = append(round, seq.MustInteraction(u(i), u(i+1)))
		}
	}
	for l := 0; l < loops; l++ {
		steps = append(steps, round...)
	}
	return seq.NewSequence(n, steps)
}
