package adversary

// Weighted randomized adversary. The paper's concluding remarks (§5, open
// question 3) ask whether "randomized adversaries that use a non-uniform
// probabilistic distribution alter significantly the bounds presented
// here". This adversary makes the question executable: interactions are
// drawn by picking the two endpoints with probability proportional to
// per-node weights (without replacement), so hubs interact often and
// peripheral nodes rarely — the contact-pattern shape of the paper's
// motivating scenarios (body-area sensors, vehicular networks).
//
// The uniform adversary is the special case of equal weights.

import (
	"fmt"
	"math"

	"doda/internal/graph"
	"doda/internal/rng"
	"doda/internal/seq"
)

// WeightedGen returns a generator drawing interactions from per-node
// weights: u is drawn with probability w_u / Σw, then v with probability
// w_v / (Σw - w_u). Weights must be positive and there must be at least
// two nodes.
//
// Both endpoints are sampled from a Vose alias table in O(1) and zero
// allocations per interaction. The second endpoint is drawn by rejection
// (redraw while it collides with the first), which realises exactly the
// without-replacement conditional w_v / (Σw - w_u); the expected number
// of redraws is w_u / (Σw - w_u), so draws stay O(1) unless a single
// node carries almost all the weight — a deterministic O(n) scan takes
// over after a bounded number of collisions to keep the worst case
// linear rather than unbounded.
func WeightedGen(weights []float64, src *rng.Source) (func(t int) seq.Interaction, error) {
	n := len(weights)
	if n < 2 {
		return nil, fmt.Errorf("adversary: need at least 2 weights, got %d", n)
	}
	total := 0.0
	for i, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("adversary: weight[%d] = %v must be positive and finite", i, w)
		}
		total += w
	}
	table, err := rng.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("adversary: %w", err)
	}
	cp := make([]float64, n)
	copy(cp, weights)
	// scanExcluding is the exact linear fallback: a CDF walk over the
	// weights with `excluded` removed from the distribution.
	scanExcluding := func(excluded int) int {
		x := src.Float64() * (total - cp[excluded])
		for i, w := range cp {
			if i == excluded {
				continue
			}
			x -= w
			if x < 0 {
				return i
			}
		}
		for i := n - 1; i >= 0; i-- { // float round-off
			if i != excluded {
				return i
			}
		}
		return 0 // unreachable for n >= 2
	}
	const maxRejects = 32
	return func(int) seq.Interaction {
		a := table.Draw(src)
		b := table.Draw(src)
		for tries := 0; b == a; tries++ {
			if tries == maxRejects {
				b = scanExcluding(a)
				break
			}
			b = table.Draw(src)
		}
		if a > b {
			a, b = b, a
		}
		return seq.Interaction{U: graph.NodeID(a), V: graph.NodeID(b)}
	}, nil
}

// Weighted returns the non-uniform randomized adversary with the given
// per-node weights, plus its backing stream for knowledge oracles.
func Weighted(weights []float64, seed uint64) (*Oblivious, *seq.Stream, error) {
	gen, err := WeightedGen(weights, rng.New(seed))
	if err != nil {
		return nil, nil, err
	}
	st, err := seq.NewStream(len(weights), gen)
	if err != nil {
		return nil, nil, err
	}
	adv, err := NewOblivious("weighted", st)
	if err != nil {
		return nil, nil, err
	}
	return adv, st, nil
}

// ZipfWeights returns weights w_i = 1/(i+1)^alpha — a standard skewed
// contact distribution. alpha = 0 recovers the uniform adversary; larger
// alpha concentrates interactions on low-identifier nodes. Node 0 (the
// conventional sink) is the heaviest node.
func ZipfWeights(n int, alpha float64) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("adversary: need at least 2 nodes, got %d", n)
	}
	if alpha < 0 {
		return nil, fmt.Errorf("adversary: negative alpha %v", alpha)
	}
	ws := make([]float64, n)
	for i := range ws {
		ws[i] = math.Pow(float64(i+1), -alpha)
	}
	return ws, nil
}

// SinkScaledWeights returns uniform weights with the sink's weight
// multiplied by factor: a single-knob model of a sink that is easier
// (factor > 1) or harder (factor < 1) to reach than everyone else.
func SinkScaledWeights(n int, sink graph.NodeID, factor float64) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("adversary: need at least 2 nodes, got %d", n)
	}
	if sink < 0 || int(sink) >= n {
		return nil, fmt.Errorf("adversary: sink %d out of range", sink)
	}
	if factor <= 0 {
		return nil, fmt.Errorf("adversary: factor %v must be positive", factor)
	}
	ws := make([]float64, n)
	for i := range ws {
		ws[i] = 1
	}
	ws[sink] = factor
	return ws, nil
}
