package adversary

import (
	"testing"

	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/graph"
	"doda/internal/seq"
)

// TestAdaptiveOwnersCoarseMatchesScalar is the differential gate for the
// adversary's two paths: the engine's coarse-batched drain (with its
// replay-and-discard loop) must produce the same Result as the scalar
// one-Next-per-interaction path.
func TestAdaptiveOwnersCoarseMatchesScalar(t *testing.T) {
	for _, n := range []int{2, 3, 16, 65, 200} {
		for _, mode := range []core.ProvenanceMode{core.ProvenanceFull, core.ProvenanceCount, core.ProvenanceOff} {
			var results [2]core.Result
			for i, disable := range []bool{false, true} {
				cfg := core.Config{
					N: n, MaxInteractions: 4 * n,
					VerifyAggregate: true, Provenance: mode,
					DisableBatch: disable,
				}
				res, err := core.RunOnce(cfg, algorithms.NewGathering(), NewAdaptiveOwners(uint64(n)*3+uint64(mode)))
				if err != nil {
					t.Fatalf("n=%d mode=%v disable=%v: %v", n, mode, disable, err)
				}
				results[i] = res
			}
			coarse, scalar := results[0], results[1]
			if !resEqual(coarse, scalar) {
				t.Errorf("n=%d mode=%v: coarse %+v != scalar %+v", n, mode, coarse, scalar)
			}
			if !coarse.Terminated {
				t.Errorf("n=%d mode=%v: did not terminate", n, mode)
			}
			// Every emitted pair both-owns, so gathering needs exactly
			// n-1 interactions.
			if coarse.Interactions != n-1 {
				t.Errorf("n=%d mode=%v: %d interactions, want %d", n, mode, coarse.Interactions, n-1)
			}
		}
	}
}

// TestAdaptiveOwnersWaitingMatches drives the Waiting algorithm, which
// declines every interaction not involving the sink: most coarse batches
// are consumed deep before a transfer invalidates them, exercising the
// replay-and-discard loop far from the batch boundaries.
func TestAdaptiveOwnersWaitingMatches(t *testing.T) {
	const n = 48
	var results [2]core.Result
	for i, disable := range []bool{false, true} {
		cfg := core.Config{N: n, MaxInteractions: 1 << 20, DisableBatch: disable}
		res, err := core.RunOnce(cfg, algorithms.Waiting{}, NewAdaptiveOwners(11))
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	if !resEqual(results[0], results[1]) {
		t.Errorf("coarse %+v != scalar %+v", results[0], results[1])
	}
	if !results[0].Terminated || results[0].Declined == 0 {
		t.Errorf("unexpected run shape: %+v", results[0])
	}
}

// resEqual compares every scalar Result field plus the sink value.
func resEqual(a, b core.Result) bool {
	return a.Terminated == b.Terminated && a.Failed == b.Failed &&
		a.FailReason == b.FailReason && a.Duration == b.Duration &&
		a.Interactions == b.Interactions && a.Transmissions == b.Transmissions &&
		a.Declined == b.Declined && a.LastGap == b.LastGap &&
		a.SinkValue.Num == b.SinkValue.Num && a.SinkValue.Count == b.SinkValue.Count
}

// TestAdaptiveOwnersPurity re-drains the same (t, state) twice and at
// varying batch sizes: the emissions must be byte-identical prefixes.
func TestAdaptiveOwnersPurity(t *testing.T) {
	eng, err := core.NewEngine(core.Config{N: 37, MaxInteractions: 1000})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAdaptiveOwners(99)
	big := make([]seq.Interaction, 256)
	if got := a.NextCoarseBatch(5, eng, big); got != len(big) {
		t.Fatalf("NextCoarseBatch = %d", got)
	}
	for _, size := range []int{1, 7, 64, 256} {
		small := make([]seq.Interaction, size)
		if got := a.NextCoarseBatch(5, eng, small); got != size {
			t.Fatalf("size %d: NextCoarseBatch = %d", size, got)
		}
		for i := range small {
			if small[i] != big[i] {
				t.Fatalf("size %d: emission %d = %v, want %v", size, i, small[i], big[i])
			}
		}
	}
}

// TestAdaptiveOwnersFallbackMatchesWordPath runs the rank resolution
// through a plain ExecView (no OwnerWords) and through the engine's word
// view: the emitted pair must be the same set.
func TestAdaptiveOwnersFallbackMatchesWordPath(t *testing.T) {
	v := newFakeView(40, 0)
	for _, u := range []graph.NodeID{3, 7, 20, 39} {
		v.owns[u] = false
	}
	eng, err := core.NewEngine(core.Config{N: 40, MaxInteractions: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Mirror the fake view's ownership into the engine via a restored
	// stream-like trick is overkill; instead compare both against a
	// direct rank walk. The word path is exercised with full ownership.
	a := NewAdaptiveOwners(4)
	for tt := 0; tt < 50; tt++ {
		itWord, ok1 := a.Next(tt, eng)
		itFall, ok2 := a.Next(tt, plainView{eng})
		if !ok1 || !ok2 {
			t.Fatalf("t=%d: not ok (%v, %v)", tt, ok1, ok2)
		}
		if canon(itWord) != canon(itFall) {
			t.Errorf("t=%d: word path %v != fallback %v", tt, itWord, itFall)
		}
		// And on the fake view with holes, the pair must be two distinct
		// owners.
		it, ok := a.Next(tt, v)
		if !ok {
			t.Fatalf("t=%d: fake view not ok", tt)
		}
		if it.U == it.V || !v.owns[it.U] || !v.owns[it.V] {
			t.Errorf("t=%d: pair %v not a distinct owner pair", tt, it)
		}
	}
}

func canon(it seq.Interaction) seq.Interaction {
	if it.U > it.V {
		it.U, it.V = it.V, it.U
	}
	return it
}

// plainView strips the WordView extension off a view, forcing the
// fallback rank scan.
type plainView struct{ inner core.ExecView }

func (p plainView) N() int                   { return p.inner.N() }
func (p plainView) Sink() graph.NodeID       { return p.inner.Sink() }
func (p plainView) Owns(u graph.NodeID) bool { return p.inner.Owns(u) }
func (p plainView) OwnerCount() int          { return p.inner.OwnerCount() }

// TestAdaptiveOwnersExhausted pins the <2 owners behaviour on both paths.
func TestAdaptiveOwnersExhausted(t *testing.T) {
	v := newFakeView(5, 0)
	for u := 1; u < 5; u++ {
		v.owns[u] = false
	}
	a := NewAdaptiveOwners(1)
	if _, ok := a.Next(0, v); ok {
		t.Error("Next with a single owner should report exhaustion")
	}
	eng, err := core.NewEngine(core.Config{N: 2, MaxInteractions: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(algorithms.NewGathering(), a)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated || res.Interactions != 1 {
		t.Errorf("n=2 run: %+v", res)
	}
}

// TestAdaptiveOwnersUniform sanity-checks the rank distribution: over
// many draws with frozen ownership every pair of 4 owners appears, with
// no pair taking more than half the mass.
func TestAdaptiveOwnersUniform(t *testing.T) {
	eng, err := core.NewEngine(core.Config{N: 4, MaxInteractions: 10})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAdaptiveOwners(123)
	counts := map[seq.Interaction]int{}
	const draws = 6000
	for tt := 0; tt < draws; tt++ {
		it, ok := a.Next(tt, eng)
		if !ok {
			t.Fatal("exhausted")
		}
		counts[canon(it)]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct pairs, want 6: %v", len(counts), counts)
	}
	for it, c := range counts {
		if c > draws/2 {
			t.Errorf("pair %v drew %d of %d", it, c, draws)
		}
	}
}
