package adversary

import (
	"math"
	"testing"

	"doda/internal/graph"
	"doda/internal/rng"
	"doda/internal/seq"
)

func TestWeightedGenValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := WeightedGen([]float64{1}, src); err == nil {
		t.Error("want error for single weight")
	}
	if _, err := WeightedGen([]float64{1, -1}, src); err == nil {
		t.Error("want error for negative weight")
	}
	if _, err := WeightedGen([]float64{1, 0}, src); err == nil {
		t.Error("want error for zero weight")
	}
	if _, err := WeightedGen([]float64{1, math.NaN()}, src); err == nil {
		t.Error("want error for NaN weight")
	}
	if _, err := WeightedGen([]float64{1, math.Inf(1)}, src); err == nil {
		t.Error("want error for infinite weight")
	}
}

func TestWeightedUniformMatchesFrequencies(t *testing.T) {
	// Equal weights: every pair should appear with frequency ~ 2/(n(n-1)).
	ws, err := ZipfWeights(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := WeightedGen(ws, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	const draws = 60000
	counts := make(map[seq.Interaction]int)
	for i := 0; i < draws; i++ {
		it := gen(i)
		if it.U >= it.V {
			t.Fatalf("non-canonical %v", it)
		}
		counts[it]++
	}
	if len(counts) != 15 {
		t.Fatalf("saw %d pairs, want 15", len(counts))
	}
	want := float64(draws) / 15
	for it, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("pair %v count %d, want ~%.0f", it, c, want)
		}
	}
}

func TestWeightedSkewedFrequencies(t *testing.T) {
	// Node 0 weighted 10x: its participation rate must far exceed the
	// others'.
	ws, err := SinkScaledWeights(8, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := WeightedGen(ws, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	const draws = 40000
	participation := make([]int, 8)
	for i := 0; i < draws; i++ {
		it := gen(i)
		participation[it.U]++
		participation[it.V]++
	}
	if participation[0] < 3*participation[1] {
		t.Errorf("hub participation %d vs %d: skew not realised", participation[0], participation[1])
	}
}

func TestWeightedAdversaryDeterministic(t *testing.T) {
	ws, err := ZipfWeights(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	a1, _, err := Weighted(ws, 9)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := Weighted(ws, 9)
	if err != nil {
		t.Fatal(err)
	}
	view := newFakeView(6, 0)
	for i := 0; i < 200; i++ {
		x, ok1 := a1.Next(i, view)
		y, ok2 := a2.Next(i, view)
		if !ok1 || !ok2 || x != y {
			t.Fatalf("diverged at %d: %v vs %v", i, x, y)
		}
	}
}

func TestZipfWeights(t *testing.T) {
	ws, err := ZipfWeights(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.5, 1.0 / 3, 0.25}
	for i := range want {
		if math.Abs(ws[i]-want[i]) > 1e-12 {
			t.Errorf("ZipfWeights[%d] = %v, want %v", i, ws[i], want[i])
		}
	}
	if _, err := ZipfWeights(1, 1); err == nil {
		t.Error("want error for n < 2")
	}
	if _, err := ZipfWeights(4, -1); err == nil {
		t.Error("want error for negative alpha")
	}
}

func TestSinkScaledWeights(t *testing.T) {
	ws, err := SinkScaledWeights(4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ws[2] != 5 || ws[0] != 1 || ws[1] != 1 || ws[3] != 1 {
		t.Errorf("weights = %v", ws)
	}
	if _, err := SinkScaledWeights(1, 0, 2); err == nil {
		t.Error("want error for n < 2")
	}
	if _, err := SinkScaledWeights(4, 9, 2); err == nil {
		t.Error("want error for bad sink")
	}
	if _, err := SinkScaledWeights(4, 0, 0); err == nil {
		t.Error("want error for zero factor")
	}
}

func TestWeightedStreamInRange(t *testing.T) {
	ws, err := ZipfWeights(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := Weighted(ws, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		it := st.At(i)
		if it.U < 0 || it.U >= it.V || int(it.V) >= 10 {
			t.Fatalf("invalid interaction %v", it)
		}
	}
	_ = graph.NodeID(0)
}
